// Fig 7: 2.5 Gbps eye diagram of the Optical Test Bed transmitter.
//
// Paper: PRBS from an LFSR in the DLC, serialized by the PECL chain with
// SiGe output buffers; jitter at the crossover 46.7 ps p-p, usable eye
// opening 0.88 UI.
#include "bench_eye_common.hpp"

using namespace mgt;

namespace {

void bm_eye_acquisition_2g5(benchmark::State& state) {
  core::TestSystem sys(core::presets::optical_testbed(), 42);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  for (auto _ : state) {
    auto eye = sys.measure_eye(2000);
    benchmark::DoNotOptimize(eye);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(bm_eye_acquisition_2g5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Fig 7 - 2.5 Gbps PRBS eye, optical test bed TX (target rate)");
  bench::run_eye_reproduction(table,
                              core::presets::optical_testbed(GbitsPerSec{2.5}),
                              bench::EyeSpec{.paper_tj_pp_ps = 46.7,
                                             .paper_opening_ui = 0.88},
                              /*seed=*/42);
  bench::run_render_cache_report(table,
                                 core::presets::optical_testbed(GbitsPerSec{2.5}),
                                 /*seed=*/42);
  return bench::finish(table, argc, argv);
}
