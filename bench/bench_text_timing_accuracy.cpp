// Text claims (Sections 1, 3, 4 and Summary): 10 ps programmable timing
// resolution over a 10 ns range, with about +-25 ps placement accuracy.
//
// Characterizes the programmable delay line the way an ATE calibration
// pass would: sweep every code, fit the transfer curve, report step size,
// range, INL/DNL, monotonicity and worst placement error — then verify
// edge placement through the whole signal chain.
#include "analysis/timing.hpp"
#include "bench_common.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "pecl/delayline.hpp"
#include "signal/sinks.hpp"
#include "util/rng.hpp"

using namespace mgt;

namespace {

void run_reproduction(ReportTable& table) {
  pecl::ProgrammableDelay delay(pecl::ProgrammableDelay::Config{}, Rng(42));

  std::vector<double> codes;
  std::vector<Picoseconds> delays;
  for (std::size_t c = 0; c < delay.code_count(); ++c) {
    codes.push_back(static_cast<double>(c));
    delays.push_back(delay.actual_delay(c));
  }
  const auto fit = ana::fit_delay_linearity(codes, delays);

  table.add_comparison("programmable resolution", "10 ps",
                       fmt_unit(fit.gain_ps_per_code, "ps/code", 3),
                       bench::verdict(fit.gain_ps_per_code, 10.0, 0.1));
  table.add_comparison("programmable range", "10 ns",
                       fmt_unit(delay.full_range().ns(), "ns", 2),
                       bench::verdict(delay.full_range().ns(), 10.0, 0.5));
  table.add_comparison("placement accuracy (worst code)", "about +-25 ps",
                       fmt_unit(delay.worst_case_error().ps(), "ps", 1),
                       delay.worst_case_error().ps() <= 25.0
                           ? "OK (within spec)"
                           : "DEVIATES");
  table.add_comparison("integral nonlinearity", "(not quoted)",
                       fmt_unit(fit.max_inl.ps(), "ps", 1), "-");
  table.add_comparison("monotonic", "required for vernier use",
                       fit.monotonic ? "yes" : "no",
                       fit.monotonic ? "OK (shape holds)" : "DEVIATES");

  // Through-chain placement: program edges on a grid and measure where the
  // serialized, buffered signal actually crosses threshold.
  core::TestSystem sys(core::presets::optical_testbed(), 42);
  sys.program_pattern(BitVector::alternating(16));
  sys.start();
  const auto stim = sys.generate(4096);
  sig::CrossingRecorder recorder(
      sig::attenuated(stim.levels, stim.chain.gain()).midpoint());
  sig::RenderConfig render_config{.levels = stim.levels};
  sig::render(stim.edges, stim.chain, render_config,
              Picoseconds{stim.t0.ps() + 16.0 * stim.ui.ps()},
              Picoseconds{stim.t0.ps() + 4095.0 * stim.ui.ps()},
              {&recorder});
  // Standard ATE deskew: calibrate out the fixed pipeline offset (first
  // pass measures it), then report residual placement error.
  auto programmed = stim.boundary_grid(4096);
  const auto raw = ana::measure_placement(recorder.crossings(), programmed);
  for (auto& t : programmed) {
    t += raw.mean_error;
  }
  const auto placement =
      ana::measure_placement(recorder.crossings(), programmed);
  table.add_comparison("edge placement after deskew cal",
                       "about +-25 ps",
                       fmt_unit(placement.max_abs_error.ps(), "ps", 1),
                       placement.within(Picoseconds{28.0})
                           ? "OK (within spec+jitter)"
                           : "DEVIATES");
  table.add_comparison("  ... rms placement error", "(not quoted)",
                       fmt_unit(placement.rms_error.ps(), "ps", 1), "-");
}

void bm_delay_calibration_sweep(benchmark::State& state) {
  pecl::ProgrammableDelay delay(pecl::ProgrammableDelay::Config{}, Rng(42));
  for (auto _ : state) {
    double sum = 0.0;
    for (std::size_t c = 0; c < delay.code_count(); ++c) {
      sum += delay.actual_delay(c).ps();
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(bm_delay_calibration_sweep);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Text - 10 ps resolution / +-25 ps accuracy over 10 ns range");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
