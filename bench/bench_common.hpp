// Shared scaffolding for the reproduction benches.
//
// Every bench binary prints a "paper vs measured" ReportTable for its
// figure (always, so `for b in build/bench/*; do $b; done` regenerates the
// whole evaluation), writes a structured BENCH_<name>.json document
// (schema "mgt-bench-v1": the table plus the obs metrics snapshot — see
// EXPERIMENTS.md), then runs any registered google-benchmark timings of
// the underlying simulation machinery.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>
#include <string>

#include "obs/benchjson.hpp"
#include "util/table.hpp"

namespace mgt::bench {

/// Standard four-column reproduction table.
inline ReportTable make_table(const std::string& title) {
  return ReportTable(title, {"metric", "paper", "measured", "verdict"});
}

/// Verdict string: OK when |measured - target| <= tolerance.
inline std::string verdict(double measured, double target, double tolerance) {
  return std::abs(measured - target) <= tolerance ? "OK (shape holds)"
                                                  : "DEVIATES";
}

/// Verdict for range specs like "70-75 ps".
inline std::string verdict_range(double measured, double lo, double hi) {
  return (measured >= lo && measured <= hi) ? "OK (in band)" : "DEVIATES";
}

/// Prints the table, writes BENCH_<name>.json, and runs benchmarks. Call at
/// the end of main().
inline int finish(ReportTable& table, int argc, char** argv) {
  table.print(std::cout);
  // Exported before RunSpecifiedBenchmarks(): the table phase drives the
  // simulation deterministically, while gbench picks iteration counts from
  // wall time — running it first would leak that into the metrics section.
  const std::string json_path =
      obs::write_bench_json(table, obs::bench_name_from_argv0(argv[0]));
  if (!json_path.empty()) {
    std::cout << "bench json: " << json_path << "\n";
  }
  std::cout.flush();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace mgt::bench
