// Fig 19: 5.0 Gbps eye diagram from the miniature WLP tester (the
// application's target rate).
//
// Paper: the ~50 ps jitter is proportionately larger at the 200 ps bit
// period, decreasing the eye opening to about 0.75 UI — but the eyes stay
// open. With 10 ps strobe resolution and ~+-25 ps accuracy this is the
// timing-critical operating point of the whole system (Summary).
#include "bench_eye_common.hpp"

using namespace mgt;

namespace {

void bm_minitester_eye_5g0(benchmark::State& state) {
  core::TestSystem sys(core::presets::minitester(GbitsPerSec{5.0}), 99);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  for (auto _ : state) {
    auto eye = sys.measure_eye(2000);
    benchmark::DoNotOptimize(eye);
  }
}
BENCHMARK(bm_minitester_eye_5g0)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Fig 19 - 5.0 Gbps eye, miniature WLP tester (target rate)");
  bench::run_eye_reproduction(table,
                              core::presets::minitester(GbitsPerSec{5.0}),
                              bench::EyeSpec{.paper_tj_pp_ps = 50.0,
                                             .paper_opening_ui = 0.75,
                                             .tj_tolerance_ps = 7.0,
                                             .ui_tolerance = 0.03},
                              /*seed=*/99);
  bench::run_render_cache_report(table,
                                 core::presets::minitester(GbitsPerSec{5.0}),
                                 /*seed=*/99);
  return bench::finish(table, argc, argv);
}
