// Fig 17: 2.5 Gbps eye diagram from the miniature WLP tester.
//
// Paper: eye opening slightly smaller than at 1.0 Gbps, about 0.87 UI.
#include "bench_eye_common.hpp"

using namespace mgt;

namespace {

void bm_minitester_eye_2g5(benchmark::State& state) {
  core::TestSystem sys(core::presets::minitester(GbitsPerSec{2.5}), 99);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  for (auto _ : state) {
    auto eye = sys.measure_eye(2000);
    benchmark::DoNotOptimize(eye);
  }
}
BENCHMARK(bm_minitester_eye_2g5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Fig 17 - 2.5 Gbps eye, miniature WLP tester");
  bench::run_eye_reproduction(table,
                              core::presets::minitester(GbitsPerSec{2.5}),
                              bench::EyeSpec{.paper_tj_pp_ps = -1.0,
                                             .paper_opening_ui = 0.87,
                                             .ui_tolerance = 0.025},
                              /*seed=*/99);
  return bench::finish(table, argc, argv);
}
