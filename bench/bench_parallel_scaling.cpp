// Parallel scaling of the deterministic execution layer (util/parallel).
//
// Times the two heaviest pipelines — eye accumulation over a multi-chunk
// acquisition and a 16-site probe-array wafer pass — at 1, 2, 4 and 8
// worker threads, reporting wall time and speedup versus 1 thread. The
// determinism contract means every row computes byte-identical results;
// only the wall clock may change. Speedup is bounded by the host's core
// count (a single-core host shows ~1.0x everywhere, honestly).
#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "minitester/array.hpp"
#include "util/parallel.hpp"

using namespace mgt;

namespace {

constexpr std::size_t kThreadSteps[] = {1, 2, 4, 8};

double time_s(const std::function<void()>& work) {
  const auto begin = std::chrono::steady_clock::now();
  work();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - begin).count();
}

double eye_pass(std::size_t threads) {
  util::ScopedThreads scoped(threads);
  core::TestSystem sys(core::presets::optical_testbed(), 42);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  return time_s([&] {
    const auto eye = sys.acquire_eye(4000);  // 3.2 M samples, multi-chunk
    benchmark::DoNotOptimize(&eye);
  });
}

double probe_pass(std::size_t threads) {
  util::ScopedThreads scoped(threads);
  minitester::TesterArray::Config config;
  config.testers = 16;
  config.defect_rate = 0.08;
  config.bist_bits = 256;
  minitester::TesterArray array(config, 7);
  return time_s([&] {
    const auto wafer = array.probe_wafer(64);
    benchmark::DoNotOptimize(&wafer);
  });
}

void scaling_rows(ReportTable& table, const char* what,
                  double (*pass)(std::size_t)) {
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const double t1 = pass(1);
  for (std::size_t threads : kThreadSteps) {
    const double t = threads == 1 ? t1 : pass(threads);
    const double speedup = t == 0.0 ? 0.0 : t1 / t;
    std::string expect = "-";
    std::string verdict = "-";
    if (threads == 4) {
      expect = ">= 2x (needs >= 4 cores)";
      verdict = cores >= 4 ? (speedup >= 2.0 ? "OK (scales)" : "DEVIATES")
                           : "- (" + std::to_string(cores) + "-core host)";
    }
    table.add_comparison(
        std::string(what) + ", " + std::to_string(threads) + " thread" +
            (threads == 1 ? "" : "s"),
        expect, fmt(t, 3) + " s  (x" + fmt(speedup, 2) + ")", verdict);
  }
}

void run_reproduction(ReportTable& table) {
  scaling_rows(table, "eye accumulation (4k bits)", eye_pass);
  scaling_rows(table, "16-site probe array (64 dies)", probe_pass);
}

void bm_eye_accumulation(benchmark::State& state) {
  util::ScopedThreads scoped(static_cast<std::size_t>(state.range(0)));
  core::TestSystem sys(core::presets::optical_testbed(), 42);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  for (auto _ : state) {
    auto eye = sys.acquire_eye(2000);
    benchmark::DoNotOptimize(eye);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(bm_eye_accumulation)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void bm_wafer_probe(benchmark::State& state) {
  util::ScopedThreads scoped(static_cast<std::size_t>(state.range(0)));
  minitester::TesterArray::Config config;
  config.testers = 16;
  config.bist_bits = 128;
  minitester::TesterArray array(config, 7);
  for (auto _ : state) {
    auto wafer = array.probe_wafer(32);
    benchmark::DoNotOptimize(wafer);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(bm_wafer_probe)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Parallel scaling - deterministic thread pool (MGT_THREADS)");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
