// Fig 10: programmable high logic level, stepped down in 100 mV
// increments, observed on a 1.25 Gbps signal.
//
// Paper: "the high logic level is shown at its maximum value and at three
// lower values in 100 mV steps"; this programmability lets the Data Vortex
// be characterized under non-ideal signal conditions.
#include "bench_common.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"

using namespace mgt;

namespace {

void run_reproduction(ReportTable& table) {
  core::TestSystem sys(core::presets::optical_testbed(GbitsPerSec{1.25}), 42);
  sys.program_pattern(BitVector::from_string("11110000"));
  sys.start();

  const double voh_max = sys.buffer().levels().voh.mv();
  const double hookup_gain = 0.97;  // SMA cable AC loss
  for (int step = 0; step <= 3; ++step) {
    const double programmed = voh_max - 100.0 * step;
    sys.buffer().set_voh(Millivolts{programmed});
    const auto amp = sys.measure_amplitude(4096);
    const double mid = sys.buffer().levels().midpoint().mv();
    const double expected = mid + hookup_gain * (programmed - mid);
    table.add_comparison(
        "VOH step " + std::to_string(step) + " (programmed " +
            fmt(programmed, 0) + " mV)",
        "steps of -100 mV", fmt_unit(amp.settled_high.mv(), "mV", 0),
        bench::verdict(amp.settled_high.mv(), expected, 25.0));
  }

  // The staircase property itself: successive measured highs ~100 mV apart.
  sys.buffer().set_voh(Millivolts{voh_max});
  const double high0 = sys.measure_amplitude(4096).settled_high.mv();
  sys.buffer().set_voh(Millivolts{voh_max - 100.0});
  const double high1 = sys.measure_amplitude(4096).settled_high.mv();
  table.add_comparison("step size realized", "100 mV",
                       fmt_unit(high0 - high1, "mV", 0),
                       bench::verdict(high0 - high1, 97.0, 15.0));
}

void bm_amplitude_measurement(benchmark::State& state) {
  core::TestSystem sys(core::presets::optical_testbed(GbitsPerSec{1.25}), 42);
  sys.program_pattern(BitVector::from_string("11110000"));
  sys.start();
  for (auto _ : state) {
    auto amp = sys.measure_amplitude(1024);
    benchmark::DoNotOptimize(amp);
  }
}
BENCHMARK(bm_amplitude_measurement)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Fig 10 - high logic level control in 100 mV steps (1.25 Gbps)");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
