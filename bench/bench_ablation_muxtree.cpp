// Ablation A1: serializer-tree architecture versus output jitter.
//
// Design question behind Fig 15: reaching 5 Gbps needs 16 DLC lanes; is it
// better to use one deep tree stage or two shallow ones, and what does
// each stage's skew cost? This sweep isolates the DJ contribution of the
// mux tree from the Gaussian budget.
#include "bench_common.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "pecl/mux.hpp"
#include "util/rng.hpp"

using namespace mgt;

namespace {

core::ChannelConfig with_tree(pecl::SerializerTree::Config tree) {
  auto config = core::presets::minitester(GbitsPerSec{5.0});
  config.serializer = std::move(tree);
  return config;
}

void run_reproduction(ReportTable& table) {
  // Architecture variants at a fixed 5 Gbps output rate.
  struct Variant {
    const char* name;
    pecl::SerializerTree::Config tree;
  };
  std::vector<Variant> variants;

  variants.push_back({"2:1 + 8:1 (paper, Fig 15)",
                      pecl::SerializerTree::minitester_16to1()});

  {
    pecl::SerializerTree::Config flat;  // single 16:1 (hypothetical part)
    flat.stages = {pecl::MuxStage{.fan_in = 16,
                                  .skew_pp = Picoseconds{30.0},
                                  .rj_sigma = Picoseconds{1.8},
                                  .prop_delay = Picoseconds{260.0}}};
    variants.push_back({"single 16:1 (more inputs to match)", flat});
  }
  {
    pecl::SerializerTree::Config deep;  // 2:1 * 4 stages of binary muxing
    deep.stages.assign(4, pecl::MuxStage{.fan_in = 2,
                                         .skew_pp = Picoseconds{10.0},
                                         .rj_sigma = Picoseconds{1.4},
                                         .prop_delay = Picoseconds{180.0}});
    variants.push_back({"4x binary 2:1 (jitter accumulates)", deep});
  }

  for (const auto& variant : variants) {
    core::TestSystem sys(with_tree(variant.tree), 1234);
    sys.program_prbs(7, 0xACE1);
    sys.start();
    const auto eye = sys.measure_eye(12000);
    pecl::SerializerTree probe(variant.tree, Rng(1234));
    table.add_comparison(
        variant.name,
        "lower DJ -> wider eye",
        "TJ " + fmt(eye.jitter.peak_to_peak.ps(), 1) + " ps, eye " +
            fmt(eye.eye_opening.ui(), 3) + " UI, RJ(sigma) " +
            fmt(probe.total_rj_sigma().ps(), 2) + " ps",
        "-");
  }

  // Skew sweep on the paper's architecture: DJ scales with stage skew.
  double prev_tj = 0.0;
  bool monotone = true;
  for (double scale : {0.0, 1.0, 2.0}) {
    auto tree = pecl::SerializerTree::minitester_16to1();
    for (auto& stage : tree.stages) {
      stage.skew_pp = Picoseconds{stage.skew_pp.ps() * scale};
    }
    core::TestSystem sys(with_tree(tree), 77);
    sys.program_prbs(7, 0xACE1);
    sys.start();
    const auto eye = sys.measure_eye(12000);
    const double tj = eye.jitter.peak_to_peak.ps();
    if (scale > 0.0) {
      monotone &= tj > prev_tj;
    }
    prev_tj = tj;
    table.add_comparison("stage skew x" + fmt(scale, 1),
                         "TJ grows with skew",
                         "TJ " + fmt(tj, 1) + " ps, eye " +
                             fmt(eye.eye_opening.ui(), 3) + " UI",
                         "-");
  }
  table.add_comparison("skew -> TJ monotonicity", "expected", "-",
                       monotone ? "OK (shape holds)" : "DEVIATES");
}

void bm_serialize_16to1(benchmark::State& state) {
  pecl::SerializerTree tree(pecl::SerializerTree::minitester_16to1(), Rng(5));
  Rng rng(6);
  const auto bits = BitVector::random(16384, rng);
  for (auto _ : state) {
    auto edges = tree.serialize(bits, GbitsPerSec{5.0});
    benchmark::DoNotOptimize(edges);
  }
  state.SetItemsProcessed(state.iterations() * 16384);
}
BENCHMARK(bm_serialize_16to1);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Ablation A1 - mux-tree architecture vs jitter at 5 Gbps");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
