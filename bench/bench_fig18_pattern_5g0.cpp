// Fig 18: example 5.0 Gbps bit patterns from the miniature WLP tester.
//
// Paper: at the 200 ps bit period, the I/O buffers' 120 ps (20-80 %) rise
// time "begins to limit amplitude swing" — single-bit pulses no longer
// reach the rails, yet the data remains recoverable (Fig 19's eye stays
// open).
#include "bench_common.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"

using namespace mgt;

namespace {

void run_reproduction(ReportTable& table) {
  core::TestSystem sys(core::presets::minitester(GbitsPerSec{5.0}), 99);
  sys.program_prbs(7, 0xACE1);
  sys.start();

  // Rise time of the mini-tester's output stage, measured on an isolated
  // (settled) transition: use a slow square pattern.
  core::TestSystem slow(core::presets::minitester(GbitsPerSec{1.0}), 99);
  slow.program_pattern(BitVector::from_string("1111111100000000"));
  slow.start();
  const auto rf = slow.measure_risefall(4096);
  table.add_comparison("20-80 % rise time (I/O buffer)", "120 ps",
                       fmt_unit(rf.rise_mean.ps(), "ps", 1),
                       bench::verdict(rf.rise_mean.ps(), 120.0, 10.0));

  // Amplitude limiting at 5 Gbps: compare the swing an alternating
  // (010101) pattern reaches against the swing of the slow pattern.
  core::TestSystem fast(core::presets::minitester(GbitsPerSec{5.0}), 99);
  fast.program_pattern(BitVector::alternating(16));
  fast.start();
  const auto fast_amp = fast.measure_amplitude(4096);
  const auto slow_amp = slow.measure_amplitude(4096);
  // Typical (settled-sample) amplitude, not the jitter-inflated extreme.
  const double ratio =
      (fast_amp.settled_high.mv() - fast_amp.settled_low.mv()) /
      (slow_amp.settled_high.mv() - slow_amp.settled_low.mv());
  table.add_comparison("alternating-bit swing vs settled swing",
                       "reduced (rise time limits it)",
                       fmt(ratio * 100.0, 0) + " %",
                       ratio < 0.97 && ratio > 0.55 ? "OK (shape holds)"
                                                    : "DEVIATES");

  // The patterns themselves stay recoverable at 5 Gbps.
  const auto stim = sys.generate(4096);
  const auto recovered = stim.edges.to_bits(
      4096, stim.ui,
      Picoseconds{stim.t0.ps() - stim.chain.group_delay().ps()});
  std::size_t errors = recovered.hamming_distance(stim.bits);
  table.add_comparison("bit pattern integrity at 5 Gbps", "patterns visible",
                       std::to_string(errors) + " errors / 4096 bits",
                       errors == 0 ? "OK (shape holds)" : "DEVIATES");
  table.add_comparison("bit period", "200 ps",
                       fmt_unit(stim.ui.ps(), "ps", 0),
                       bench::verdict(stim.ui.ps(), 200.0, 1e-9));
}

void bm_pattern_generation_5g0(benchmark::State& state) {
  core::TestSystem sys(core::presets::minitester(GbitsPerSec{5.0}), 99);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  for (auto _ : state) {
    auto stim = sys.generate(4096);
    benchmark::DoNotOptimize(stim);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(bm_pattern_generation_5g0);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Fig 18 - 5.0 Gbps bit patterns, miniature WLP tester");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
