// Fig 11: programmable amplitude swing, stepped in 200 mV increments at a
// constant midpoint bias, observed on a 2.5 Gbps signal.
#include "bench_common.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"

using namespace mgt;

namespace {

void run_reproduction(ReportTable& table) {
  core::TestSystem sys(core::presets::optical_testbed(GbitsPerSec{2.5}), 42);
  sys.program_pattern(BitVector::from_string("11110000"));
  sys.start();

  const double mid = sys.buffer().levels().midpoint().mv();
  const double hookup_gain = 0.97;
  for (double swing : {800.0, 600.0, 400.0, 200.0}) {
    sys.buffer().set_swing(Millivolts{swing});
    const auto amp = sys.measure_amplitude(4096);
    const double measured = amp.settled_high.mv() - amp.settled_low.mv();
    table.add_comparison(
        "swing programmed " + fmt(swing, 0) + " mV", "steps of 200 mV",
        fmt_unit(measured, "mV", 0),
        bench::verdict(measured, hookup_gain * swing, 40.0));

    const double measured_mid =
        (amp.settled_high.mv() + amp.settled_low.mv()) / 2.0;
    table.add_comparison("  ... midpoint bias", "constant",
                         fmt_unit(measured_mid, "mV", 0),
                         bench::verdict(measured_mid, mid, 25.0));
  }
}

void bm_swing_programming(benchmark::State& state) {
  core::TestSystem sys(core::presets::optical_testbed(), 42);
  sys.program_pattern(BitVector::from_string("11110000"));
  sys.start();
  double swing = 800.0;
  for (auto _ : state) {
    sys.buffer().set_swing(Millivolts{swing});
    auto amp = sys.measure_amplitude(1024);
    benchmark::DoNotOptimize(amp);
    swing = swing > 300.0 ? swing - 200.0 : 800.0;
  }
}
BENCHMARK(bm_swing_programming)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Fig 11 - amplitude swing control in 200 mV steps (2.5 Gbps)");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
