// Service-layer throughput: 1200 queued test sessions through the
// multi-tenant scheduler, clean and under a seeded chaos plan.
//
// The paper's Fig-13 scale-out argument is that cheap replicated tester
// sites turn test time into a queueing problem; this bench measures the
// session layer that owns that queue. It submits 1200 plans (eye scans,
// shmoo grids, fault sweeps, link soaks) from six tenants against an
// 8-site fleet, drains to completion in virtual time, and reports
// admission-to-completion latency quantiles (p50/p95/p99 in ticks),
// chunk throughput per tick, and the exact-accounting identity — then
// repeats the run under a chaos plan (site hang + spurious busy + slow
// site) to price the resilience machinery: retry pressure, breaker
// trips, and the p99 shift. The JSON document is BENCH_service.json.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/fault.hpp"
#include "service/plan.hpp"
#include "service/scheduler.hpp"

using namespace mgt;

namespace {

constexpr std::size_t kSessions = 1200;
constexpr std::size_t kTenants = 6;

fault::FaultPlan chaos_plan() {
  fault::FaultPlan plan(9090);
  plan.schedule({.kind = fault::FaultKind::kSiteHang,
                 .component = "site",
                 .index = 0,
                 .start = 50,
                 .duration = 400});
  plan.schedule({.kind = fault::FaultKind::kSpuriousBusy,
                 .component = "site",
                 .index = 3,
                 .severity = 0.25,
                 .start = 0,
                 .duration = 2000});
  plan.schedule({.kind = fault::FaultKind::kSiteSlow,
                 .component = "site",
                 .index = 5,
                 .severity = 1.0,
                 .start = 0,
                 .duration = fault::FaultSpec::kForever});
  return plan;
}

service::Scheduler::Config make_config(bool chaos) {
  service::Scheduler::Config config;
  config.fleet.sites = 8;
  config.fleet.slow_multiplier = 4;
  if (chaos) {
    config.fleet.faults = chaos_plan();
  }
  config.tenant_queue_limit = 400;   // the whole backlog must admit
  config.global_queue_limit = 2048;
  config.hang_budget_ticks = 4;
  config.breaker.failure_threshold = 3;
  config.breaker.quarantine_ticks = 32;
  config.breaker.max_quarantine_ticks = 256;
  config.work_iterations = 64;
  return config;
}

service::TestPlan session(std::size_t i) {
  service::TestPlan p;
  p.kind = static_cast<service::PlanKind>(i % 4);
  p.tenant = "tenant" + std::to_string(i % kTenants);
  p.shards = 1 + i % 4;
  p.chunks_per_shard = 2 + i % 3;
  p.chunk_cost_ticks = 1 + i % 2;
  p.seed_salt = i;  // distinct results; dedup is exercised in tests
  return p;
}

struct RunResult {
  service::ServiceStats stats;
  std::uint64_t ticks = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  bool accounting_exact = false;
};

RunResult run(bool chaos) {
  service::Scheduler sched(make_config(chaos), /*seed=*/4242);
  for (std::size_t i = 0; i < kSessions; ++i) {
    if (!sched.submit(session(i)).accepted) {
      continue;  // shed sessions are counted in stats
    }
  }
  const bool drained = sched.drain(1'000'000);

  std::vector<std::uint64_t> latencies;
  bool exact = drained;
  for (const service::PlanResult& r : sched.finished_results()) {
    latencies.push_back(r.finished_tick - r.admitted_tick);
    exact = exact && r.accounting_exact();
  }
  std::sort(latencies.begin(), latencies.end());
  auto quantile = [&](double q) {
    if (latencies.empty()) {
      return 0.0;
    }
    const std::size_t at = std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(latencies.size())));
    return static_cast<double>(latencies[at]);
  };

  RunResult out;
  out.stats = sched.stats();
  out.ticks = sched.tick();
  out.p50 = quantile(0.50);
  out.p95 = quantile(0.95);
  out.p99 = quantile(0.99);
  out.accounting_exact =
      exact && out.stats.admitted ==
                   out.stats.completed + out.stats.partial + out.stats.abandoned;
  return out;
}

void add_run_rows(ReportTable& table, const char* label, const RunResult& r) {
  const std::string prefix = std::string(label) + " ";
  table.add_comparison(
      prefix + "sessions", "1000+ queued",
      std::to_string(r.stats.admitted) + " admitted / " +
          std::to_string(r.stats.completed) + " completed / " +
          std::to_string(r.stats.partial) + " partial / " +
          std::to_string(r.stats.abandoned) + " abandoned",
      r.stats.admitted >= 1000 ? "OK (queued)" : "DEVIATES");
  table.add_comparison(
      prefix + "accounting", "admitted == finished, per-plan exact",
      r.accounting_exact ? "identity holds" : "identity BROKEN",
      r.accounting_exact ? "OK (exact)" : "DEVIATES");
  table.add_comparison(
      prefix + "latency", "bounded tail",
      "p50 " + fmt(r.p50, 0) + " / p95 " + fmt(r.p95, 0) + " / p99 " +
          fmt(r.p99, 0) + " ticks",
      "");
  const double per_tick =
      r.ticks == 0 ? 0.0
                   : static_cast<double>(r.stats.chunks_completed) /
                         static_cast<double>(r.ticks);
  table.add_comparison(
      prefix + "throughput", "~sites chunks/tick",
      fmt(per_tick, 2) + " chunks/tick over " + std::to_string(r.ticks) +
          " ticks",
      "");
}

void run_reproduction(ReportTable& table) {
  const RunResult clean = run(/*chaos=*/false);
  const RunResult chaos = run(/*chaos=*/true);
  add_run_rows(table, "clean", clean);
  add_run_rows(table, "chaos", chaos);
  table.add_comparison(
      "chaos pressure", "retries > 0, breakers trip",
      std::to_string(chaos.stats.chunks_retried) + " retries, " +
          std::to_string(chaos.stats.breaker_trips) + " trips, " +
          std::to_string(chaos.stats.breaker_reinstated) + " reinstated, " +
          std::to_string(chaos.stats.probes) + " probes",
      chaos.stats.chunks_retried > 0 && chaos.stats.breaker_trips > 0
          ? "OK (chaos bit)"
          : "DEVIATES");
  table.add_comparison(
      "chaos p99 cost", "graceful (bounded inflation)",
      fmt(clean.p99, 0) + " -> " + fmt(chaos.p99, 0) + " ticks",
      chaos.p99 >= clean.p99 ? "OK (priced)" : "DEVIATES");
}

void bm_drain_clean(benchmark::State& state) {
  for (auto _ : state) {
    service::Scheduler sched(make_config(false), 4242);
    for (std::size_t i = 0; i < 200; ++i) {
      (void)sched.submit(session(i));
    }
    benchmark::DoNotOptimize(sched.drain(1'000'000));
  }
}
BENCHMARK(bm_drain_clean)->Unit(benchmark::kMillisecond);

void bm_drain_chaos(benchmark::State& state) {
  for (auto _ : state) {
    service::Scheduler sched(make_config(true), 4242);
    for (std::size_t i = 0; i < 200; ++i) {
      (void)sched.submit(session(i));
    }
    benchmark::DoNotOptimize(sched.drain(1'000'000));
  }
}
BENCHMARK(bm_drain_chaos)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  ReportTable table =
      bench::make_table("Service throughput: 1200 sessions, clean vs chaos");
  run_reproduction(table);
  table.print(std::cout);
  // Exported under the explicit name "service" (not the binary name) so the
  // document is BENCH_service.json, next to the table the obs snapshot with
  // the service.* counters and the latency histogram.
  const std::string json_path = obs::write_bench_json(table, "service");
  if (!json_path.empty()) {
    std::cout << "bench json: " << json_path << "\n";
  }
  std::cout.flush();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
