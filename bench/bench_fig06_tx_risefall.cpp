// Fig 6: 2.5 Gbps transmitter data signals for the Optical Test Bed.
//
// Paper: four data words serialized by the PECL chain at 2.5 Gbps; the
// 20-80 % rise and fall times measure 70-75 ps thanks to SiGe buffers in
// the final output stage.
#include "bench_common.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "testbed/framing.hpp"
#include "testbed/transmitter.hpp"

using namespace mgt;

namespace {

void run_reproduction(ReportTable& table) {
  core::TestSystem sys(core::presets::optical_testbed(), 42);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  const auto rf = sys.measure_risefall(8192);

  table.add_comparison("20-80 % rise time", "70-75 ps",
                       fmt_unit(rf.rise_mean.ps(), "ps", 1),
                       bench::verdict_range(rf.rise_mean.ps(), 68.0, 77.0));
  table.add_comparison("20-80 % fall time", "70-75 ps",
                       fmt_unit(rf.fall_mean.ps(), "ps", 1),
                       bench::verdict_range(rf.fall_mean.ps(), 68.0, 77.0));
  table.add_comparison("rise spread (min..max)", "tight (SiGe)",
                       fmt(rf.rise_min.ps(), 1) + ".." +
                           fmt_unit(rf.rise_max.ps(), "ps", 1),
                       rf.rise_max.ps() - rf.rise_min.ps() < 15.0
                           ? "OK (shape holds)"
                           : "DEVIATES");
  table.add_comparison("transitions measured",
                       "scope acquisition", std::to_string(rf.rise_count),
                       "-");

  // Fig 6 shows four synchronously produced data words: verify the four
  // transmitter channels carry coherent slot data.
  testbed::OpticalTransmitter tx(
      testbed::OpticalTransmitter::Config{
          .channel = core::presets::optical_testbed()},
      43);
  Rng rng(44);
  testbed::TestbedPacket packet;
  for (auto& lane : packet.payload) {
    lane = BitVector::random(32, rng);
  }
  const auto out = tx.transmit(packet, Picoseconds{0.0});
  bool coherent = true;
  for (std::size_t ch = 0; ch < testbed::kDataChannels; ++ch) {
    coherent &= out.data[ch].to_bits(64, out.ui, out.grid_origin) ==
                out.bits.data[ch];
  }
  table.add_comparison("4 synchronous data channels", "aligned to clock",
                       coherent ? "all coherent" : "corrupted",
                       coherent ? "OK (shape holds)" : "DEVIATES");
}

void bm_risefall_measurement(benchmark::State& state) {
  core::TestSystem sys(core::presets::optical_testbed(), 42);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  for (auto _ : state) {
    auto rf = sys.measure_risefall(2048);
    benchmark::DoNotOptimize(rf);
  }
}
BENCHMARK(bm_risefall_measurement)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Fig 6 - 2.5 Gbps TX transition times (SiGe output stage)");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
