// Link-layer recovery: residual FER after ARQ versus injected severity.
//
// The robustness headline of the link layer: walk the per-bit corruption
// severity of the forward channel from healthy to heavily damaged and chart
// raw (on-the-wire) frame error rate against residual (post-ARQ) frame
// error rate. The reproduction table asserts the layer's three contracts —
// exact accounting at every point, residual strictly below raw wherever the
// channel injects damage, and a zero-cost clean path — then google-benchmark
// times a full transfer at a moderate severity and on the clean channel.
#include <vector>

#include "analysis/faultsweep.hpp"
#include "bench_common.hpp"
#include "fault/fault.hpp"
#include "link/link.hpp"
#include "util/rng.hpp"

using namespace mgt;

namespace {

constexpr std::size_t kPayloads = 48;

fault::FaultPlan make_plan(double severity) {
  fault::FaultPlan plan(707);
  plan.schedule({.kind = fault::FaultKind::kFrameCorruption,
                 .component = "link.fwd",
                 .severity = severity});
  return plan;
}

link::LinkChannel make_channel(const fault::FaultPlan& plan) {
  link::ArqConfig arq;
  arq.max_retries = 6;
  link::LinkChannel::Config config;
  config.arq = arq;
  return link::LinkChannel(config,
                           link::make_fault_transport(plan, "link.fwd"),
                           link::make_fault_transport(plan, "link.rev"));
}

std::vector<BitVector> make_payloads(std::size_t user_bits) {
  Rng rng(33);
  std::vector<BitVector> payloads;
  payloads.reserve(kPayloads);
  for (std::size_t i = 0; i < kPayloads; ++i) {
    payloads.push_back(BitVector::random(user_bits, rng));
  }
  return payloads;
}

ana::LinkSweepPoint measure_at(double severity) {
  const fault::FaultPlan plan = make_plan(severity);
  link::LinkChannel channel = make_channel(plan);
  (void)channel.transfer(make_payloads(channel.codec().user_bits()));
  const link::LinkStats stats = channel.stats();
  ana::LinkSweepPoint point;
  point.raw_fer = stats.raw_fer();
  point.residual_fer = stats.residual_fer();
  point.offered = stats.offered;
  point.delivered = stats.delivered;
  point.abandoned = stats.abandoned;
  point.retransmissions = stats.retransmissions;
  return point;
}

void run_reproduction(ReportTable& table) {
  const std::vector<double> severities{0.0, 0.001, 0.003, 0.005, 0.01};
  const auto sweep = ana::link_fault_sweep(severities, measure_at);

  for (const auto& point : sweep) {
    table.add_comparison(
        "FER @ severity " + fmt(point.severity, 3),
        point.severity == 0.0 ? "0 raw, 0 residual" : "residual < raw",
        "raw " + fmt(point.raw_fer, 3) + " -> residual " +
            fmt(point.residual_fer, 3) + " (" +
            std::to_string(point.retransmissions) + " retx)",
        point.accounting_closed() ? "" : "ACCOUNTING BROKEN");
  }
  const bool holds = ana::residual_below_raw(sweep);
  table.add_comparison("ARQ recovery", "residual strictly below raw",
                       holds ? "residual < raw at every severity"
                             : "RESIDUAL NOT BELOW RAW",
                       holds ? "OK (retries mask the channel)" : "DEVIATES");
}

// Timing: a full 48-payload transfer over a channel damaging roughly a
// third of all frames (per-bit severity 0.003 over ~132 frame bits).
void bm_transfer_corrupted(benchmark::State& state) {
  const fault::FaultPlan plan = make_plan(0.003);
  for (auto _ : state) {
    link::LinkChannel channel = make_channel(plan);
    benchmark::DoNotOptimize(
        channel.transfer(make_payloads(channel.codec().user_bits())));
  }
}
BENCHMARK(bm_transfer_corrupted)->Unit(benchmark::kMillisecond);

// Timing: the empty-plan guarantee — same transfer, no scheduled faults.
// The delta against bm_transfer_corrupted is the whole cost of recovery.
void bm_transfer_clean(benchmark::State& state) {
  const fault::FaultPlan empty;
  for (auto _ : state) {
    link::LinkChannel channel = make_channel(empty);
    benchmark::DoNotOptimize(
        channel.transfer(make_payloads(channel.codec().user_bits())));
  }
}
BENCHMARK(bm_transfer_clean)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Link recovery: residual FER after bounded ARQ vs injected severity");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
