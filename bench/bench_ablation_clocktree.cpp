// Ablation A5: clock distribution tree shape vs timing budget.
//
// Both boards distribute the RF reference to many loads (Figs 1, 15). For
// a fixed load count the designer trades buffer fanout against tree
// depth: shallow trees need exotic wide parts, deep trees accumulate skew
// and jitter. This sweep quantifies that trade with the same per-buffer
// parameters everywhere.
#include "bench_common.hpp"
#include "pecl/clocktree.hpp"
#include "util/rng.hpp"

using namespace mgt;

namespace {

void run_reproduction(ReportTable& table) {
  constexpr std::size_t kLoads = 16;
  double prev_spread = -1.0;
  bool spread_monotone = true;
  for (std::size_t fanout : {16u, 4u, 2u}) {
    pecl::ClockTree::Config config;
    config.loads = kLoads;
    config.fanout_per_buffer = fanout;
    pecl::ClockTree tree(config, Rng(42));
    table.add_comparison(
        "fanout " + std::to_string(fanout) + " per buffer",
        "deeper -> more skew/jitter",
        "depth " + std::to_string(tree.depth()) + ", " +
            std::to_string(tree.buffer_count()) + " buffers, skew " +
            fmt(tree.skew_spread_pp().ps(), 1) + " ps p-p, path RJ " +
            fmt(tree.path_rj_sigma().ps(), 2) + " ps rms",
        "-");
    if (prev_spread >= 0.0) {
      spread_monotone &= tree.skew_spread_pp().ps() >= prev_spread;
    }
    prev_spread = tree.skew_spread_pp().ps();
  }
  table.add_comparison("skew grows with depth", "expected", "-",
                       spread_monotone ? "OK (shape holds)" : "DEVIATES");

  // Context: the paper's +-25 ps placement budget has to absorb the
  // distribution skew; a binary tree at 16 loads already eats most of it.
  pecl::ClockTree deep(pecl::ClockTree::Config{.loads = kLoads,
                                               .fanout_per_buffer = 2},
                       Rng(42));
  table.add_comparison(
      "binary-tree skew vs +-25 ps budget", "must leave delay-line margin",
      fmt(deep.skew_spread_pp().ps(), 1) + " ps of 50 ps window",
      deep.skew_spread_pp().ps() < 50.0 ? "OK (fits)" : "DEVIATES");
}

void bm_clocktree_drive(benchmark::State& state) {
  pecl::ClockTree tree(pecl::ClockTree::Config{.loads = 16,
                                               .fanout_per_buffer = 4},
                       Rng(1));
  const auto clk = sig::EdgeStream::clock(Picoseconds{800.0}, 4096);
  std::size_t load = 0;
  for (auto _ : state) {
    auto out = tree.drive(clk, load);
    benchmark::DoNotOptimize(out);
    load = (load + 1) % 16;
  }
}
BENCHMARK(bm_clocktree_drive)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Ablation A5 - clock distribution: fanout vs depth at 16 loads");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
