// Fig 4: the Optical Test Bed packet slot format.
//
// Regenerates every timing callout printed on the paper's Fig 4 from the
// SlotFormat implementation and verifies a built slot realizes them.
#include "bench_common.hpp"
#include "testbed/framing.hpp"
#include "util/rng.hpp"

using namespace mgt;

namespace {

void run_reproduction(ReportTable& table) {
  const testbed::SlotFormat fmt;
  fmt.validate();

  table.add_comparison("packet slot time", "64 x 400 ps = 25.6 ns",
                       fmt_unit(fmt.slot_duration().ns(), "ns", 1),
                       bench::verdict(fmt.slot_duration().ns(), 25.6, 1e-9));
  table.add_comparison("valid data window", "32 x 400 ps = 12.8 ns",
                       fmt_unit(fmt.data_duration().ns(), "ns", 1),
                       bench::verdict(fmt.data_duration().ns(), 12.8, 1e-9));
  table.add_comparison("max clock/data window", "46 x 400 ps = 18.4 ns",
                       fmt_unit(fmt.window_duration().ns(), "ns", 1),
                       bench::verdict(fmt.window_duration().ns(), 18.4, 1e-9));
  table.add_comparison(
      "guard time (each side)", "5 x 400 ps = 2.0 ns",
      fmt_unit(static_cast<double>(fmt.guard_bits) * fmt.ui.ns(), "ns", 1),
      bench::verdict(static_cast<double>(fmt.guard_bits) * fmt.ui.ps(),
                     2000.0, 1e-9));
  table.add_comparison(
      "dead time", "8 x 400 ps = 3.2 ns",
      fmt_unit(static_cast<double>(fmt.dead_bits) * fmt.ui.ns(), "ns", 1),
      bench::verdict(static_cast<double>(fmt.dead_bits) * fmt.ui.ps(),
                     3200.0, 1e-9));

  // Realize a slot and count what the channels actually carry.
  Rng rng(1);
  testbed::TestbedPacket packet;
  for (auto& lane : packet.payload) {
    lane = BitVector::random(fmt.data_bits, rng);
  }
  packet.header = 0xA;
  const auto slot = testbed::build_slot(fmt, packet);
  table.add_comparison("clock edges in window", "46 (pre+data+post)",
                       std::to_string(slot.clock.transition_count()),
                       slot.clock.transition_count() == 46
                           ? "OK (shape holds)"
                           : "DEVIATES");
  table.add_comparison("frame bit coverage", "32 bits (valid data)",
                       std::to_string(slot.frame.popcount()),
                       slot.frame.popcount() == 32 ? "OK (shape holds)"
                                                   : "DEVIATES");
  const auto parsed = testbed::parse_slot(fmt, slot);
  table.add_comparison("header round trip", "4-bit routing address",
                       parsed.header == packet.header ? "recovered"
                                                      : "corrupted",
                       parsed.header == packet.header ? "OK (shape holds)"
                                                      : "DEVIATES");
}

void bm_build_slot(benchmark::State& state) {
  const testbed::SlotFormat fmt;
  Rng rng(2);
  testbed::TestbedPacket packet;
  for (auto& lane : packet.payload) {
    lane = BitVector::random(fmt.data_bits, rng);
  }
  for (auto _ : state) {
    auto slot = testbed::build_slot(fmt, packet);
    benchmark::DoNotOptimize(slot);
  }
}
BENCHMARK(bm_build_slot);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Fig 4 - Optical Test Bed packet slot format (2.5 Gbps)");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
