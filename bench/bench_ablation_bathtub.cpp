// Ablation A3: strobe bathtub scans of the mini-tester capture path.
//
// The production meaning of Figs 16-19: the usable strobe window (BER
// floor of the bathtub) shrinks as the data rate rises, tracking the eye
// openings the paper reports. Also demonstrates the 10 ps strobe
// resolution doing real work: the bathtub walls are resolved in single
// delay codes.
#include "analysis/ber.hpp"
#include "bench_common.hpp"
#include "core/presets.hpp"
#include "minitester/minitester.hpp"

using namespace mgt;

namespace {

void run_reproduction(ReportTable& table) {
  double prev_opening_ui = 1.0;
  bool shrinking = true;
  for (double rate : {1.0, 2.5, 5.0}) {
    minitester::MiniTester::Config config;
    config.channel = core::presets::minitester(GbitsPerSec{rate});
    minitester::MiniTester tester(config, 21);
    tester.program_prbs(7, 0xACE1);
    tester.start();

    const auto scan = tester.bathtub(1024, 1);
    const auto opening = ana::bathtub_opening(scan, 1e-6);
    const double ui_ps = 1000.0 / rate;
    const double opening_ui = opening.ps() / ui_ps;
    shrinking &= opening_ui <= prev_opening_ui + 0.02;
    prev_opening_ui = opening_ui;

    // The paper's eye openings at these rates: 0.95 / 0.87 / 0.75 UI.
    // A strobed BER floor is narrower than the scope eye (sampler aperture
    // and strobe RJ eat into it); the shape must track.
    table.add_comparison(
        "bathtub floor at " + fmt(rate, 1) + " Gbps",
        "tracks eye: 0.95/0.87/0.75 UI",
        fmt(opening.ps(), 0) + " ps = " + fmt(opening_ui, 2) + " UI (" +
            std::to_string(scan.size()) + " strobe codes)",
        opening_ui > 0.4 && opening_ui < 1.0 ? "OK (open floor)"
                                             : "DEVIATES");
  }
  table.add_comparison("floor shrinks with rate", "expected", "-",
                       shrinking ? "OK (shape holds)" : "DEVIATES");

  // Wall sharpness at 5 Gbps: BER transitions from floor to >1 % within a
  // few 10 ps codes.
  minitester::MiniTester tester(minitester::MiniTester::Config{}, 22);
  tester.program_prbs(7, 0xACE1);
  tester.start();
  const auto scan = tester.bathtub(2048, 1);
  std::size_t wall_codes = 0;
  for (const auto& p : scan) {
    if (p.ber > 1e-6 && p.ber < 0.01) {
      ++wall_codes;
    }
  }
  table.add_comparison("wall width (transition codes)",
                       "few codes (10 ps resolution useful)",
                       std::to_string(wall_codes) + " codes",
                       wall_codes <= 6 ? "OK (sharp walls)" : "DEVIATES");
}

void bm_bathtub_scan(benchmark::State& state) {
  minitester::MiniTester tester(minitester::MiniTester::Config{}, 23);
  tester.program_prbs(7, 0xACE1);
  tester.start();
  for (auto _ : state) {
    auto scan = tester.bathtub(256, 2);
    benchmark::DoNotOptimize(scan);
  }
}
BENCHMARK(bm_bathtub_scan)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Ablation A3 - capture-strobe bathtub vs data rate");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
