// Fig 8: the same optical-test-bed channel pushed to 4.0 Gbps.
//
// Paper: 47.2 ps p-p crossover jitter, 0.81 UI opening, no visible
// attenuation; this rate is at the upper limit of the PECL parts (the
// per-lane FPGA I/O rate leaves the 400 Mbps design margin but stays
// within the 800 Mbps capability).
#include "bench_eye_common.hpp"
#include "digital/dlc.hpp"

using namespace mgt;

namespace {

void bm_eye_acquisition_4g0(benchmark::State& state) {
  core::TestSystem sys(core::presets::optical_testbed(GbitsPerSec{4.0}), 42);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  for (auto _ : state) {
    auto eye = sys.measure_eye(2000);
    benchmark::DoNotOptimize(eye);
  }
}
BENCHMARK(bm_eye_acquisition_4g0)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Fig 8 - 4.0 Gbps eye, optical test bed TX (above target rate)");
  const auto config = core::presets::optical_testbed(GbitsPerSec{4.0});
  bench::run_eye_reproduction(table, config,
                              bench::EyeSpec{.paper_tj_pp_ps = 47.2,
                                             .paper_opening_ui = 0.81},
                              /*seed=*/42);
  // Document the margin situation the paper mentions.
  dig::Dlc dlc(config.dlc_spec);
  dlc.regs().write(dig::reg::kLaneCount, 8);
  table.add_comparison(
      "per-lane I/O rate", "500 Mbps (above 400 Mbps margin)",
      fmt_unit(dlc.check_lane_rate(GbitsPerSec{4.0}).mbps(), "Mbps", 0),
      dlc.within_margin(GbitsPerSec{4.0}) ? "DEVIATES"
                                          : "OK (margin consumed)");
  return bench::finish(table, argc, argv);
}
