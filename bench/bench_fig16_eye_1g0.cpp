// Fig 16: 1.0 Gbps eye diagram produced by the miniature WLP tester.
//
// Paper: wide eye opening, sharp transitions, ~50 ps p-p jitter, eye
// opening about 0.95 UI.
#include "bench_eye_common.hpp"

using namespace mgt;

namespace {

void bm_minitester_eye_1g0(benchmark::State& state) {
  core::TestSystem sys(core::presets::minitester(GbitsPerSec{1.0}), 99);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  for (auto _ : state) {
    auto eye = sys.measure_eye(2000);
    benchmark::DoNotOptimize(eye);
  }
}
BENCHMARK(bm_minitester_eye_1g0)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Fig 16 - 1.0 Gbps eye, miniature WLP tester");
  bench::run_eye_reproduction(table,
                              core::presets::minitester(GbitsPerSec{1.0}),
                              bench::EyeSpec{.paper_tj_pp_ps = 50.0,
                                             .paper_opening_ui = 0.95,
                                             .tj_tolerance_ps = 7.0,
                                             .ui_tolerance = 0.02},
                              /*seed=*/99);
  return bench::finish(table, argc, argv);
}
