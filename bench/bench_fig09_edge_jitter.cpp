// Fig 9: jitter of a single falling transition edge.
//
// Paper: 24 ps peak-to-peak and about 3.2 ps rms. Unlike the eye diagrams
// this excludes data-dependent effects, so it isolates the random jitter
// of the internal clock and logic chain.
#include "bench_common.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "signal/jitter.hpp"

using namespace mgt;

namespace {

void run_reproduction(ReportTable& table) {
  core::TestSystem sys(core::presets::optical_testbed(), 42);
  sys.program_prbs(7, 1);
  sys.start();
  const auto falling = sys.measure_single_edge_jitter(10000, false);

  table.add_comparison("single-edge jitter p-p", "24 ps",
                       fmt_unit(falling.peak_to_peak.ps(), "ps", 1),
                       bench::verdict(falling.peak_to_peak.ps(), 24.0, 4.0));
  table.add_comparison("single-edge jitter rms", "~3.2 ps",
                       fmt_unit(falling.rms.ps(), "ps", 2),
                       bench::verdict(falling.rms.ps(), 3.2, 0.5));
  const double ratio = falling.peak_to_peak.ps() / falling.rms.ps();
  table.add_comparison("p-p / rms ratio", "7.5 (Gaussian, 10^4 edges)",
                       fmt(ratio, 2), bench::verdict(ratio, 7.5, 1.2));

  // Cross-check against extreme-value theory for pure Gaussian RJ.
  const double theory =
      sig::expected_gaussian_pp(falling.count, falling.rms.ps());
  table.add_comparison("extreme-value prediction", "p-p consistent with rms",
                       fmt_unit(theory, "ps", 1),
                       bench::verdict(theory, falling.peak_to_peak.ps(), 4.0));

  // Rising edges of the same chain behave identically (no quoted number).
  const auto rising = sys.measure_single_edge_jitter(10000, true);
  table.add_comparison("rising-edge jitter p-p", "(not quoted)",
                       fmt_unit(rising.peak_to_peak.ps(), "ps", 1),
                       bench::verdict(rising.peak_to_peak.ps(),
                                      falling.peak_to_peak.ps(), 5.0));
}

void bm_single_edge_jitter(benchmark::State& state) {
  core::TestSystem sys(core::presets::optical_testbed(), 42);
  sys.program_prbs(7, 1);
  sys.start();
  for (auto _ : state) {
    auto j = sys.measure_single_edge_jitter(500);
    benchmark::DoNotOptimize(j);
  }
}
BENCHMARK(bm_single_edge_jitter)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Fig 9 - single-transition jitter (random jitter only)");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
