// Section 2 claims about the Digital Logic Core: a 1-million-gate FPGA
// with ~200 general-purpose I/O, each capable of 800 Mbps but typically
// run at 300-400 Mbps for design margin — which is exactly why the PECL
// serializer trees are needed to reach multi-Gbps rates.
#include "bench_common.hpp"
#include "digital/bitstream.hpp"
#include "digital/dlc.hpp"
#include "pecl/mux.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace mgt;

namespace {

void run_reproduction(ReportTable& table) {
  dig::Dlc dlc;
  const auto& spec = dlc.spec();

  table.add_comparison("general-purpose I/O", "~200 signals",
                       std::to_string(spec.io_count),
                       spec.io_count >= 200 ? "OK (shape holds)"
                                            : "DEVIATES");
  table.add_comparison("I/O capability", "800 Mbps each",
                       fmt_unit(spec.io_max_mbps, "Mbps", 0),
                       bench::verdict(spec.io_max_mbps, 800.0, 1e-9));
  table.add_comparison("I/O design margin", "300-400 Mbps used",
                       fmt_unit(spec.io_margin_mbps, "Mbps", 0),
                       bench::verdict_range(spec.io_margin_mbps, 300.0,
                                            400.0));
  table.add_comparison("gate budget", "1 million gates (XC2V1000)",
                       std::to_string(spec.gate_budget),
                       spec.gate_budget == 1'000'000 ? "OK (shape holds)"
                                                     : "DEVIATES");

  // Why the mux trees are needed: lane rates per architecture.
  struct Case {
    const char* name;
    double rate_gbps;
    std::size_t lanes;
  };
  for (const Case& c : {Case{"testbed 2.5 Gbps via 8:1", 2.5, 8},
                        Case{"testbed 4.0 Gbps via 8:1", 4.0, 8},
                        Case{"mini-tester 5.0 Gbps via 2x8:1 + 2:1", 5.0, 16}}) {
    dlc.regs().write(dig::reg::kLaneCount,
                     static_cast<std::uint32_t>(c.lanes));
    const auto lane_rate = dlc.check_lane_rate(GbitsPerSec{c.rate_gbps});
    const bool margin = dlc.within_margin(GbitsPerSec{c.rate_gbps});
    table.add_comparison(c.name, "FPGA lane rate feasible",
                         fmt_unit(lane_rate.mbps(), "Mbps/lane", 0),
                         margin ? "OK (within margin)"
                                : "OK (margin consumed)");
  }

  // And the counter-example: 5 Gbps straight out of 8 lanes is impossible.
  dlc.regs().write(dig::reg::kLaneCount, 8);
  bool rejected = false;
  try {
    dlc.check_lane_rate(GbitsPerSec{8.0});
  } catch (const Error&) {
    rejected = true;
  }
  table.add_comparison("8 Gbps via 8:1 (1 Gbps/lane)", "beyond FPGA I/O",
                       rejected ? "rejected" : "accepted",
                       rejected ? "OK (shape holds)" : "DEVIATES");
}

void bm_dlc_prbs_generation(benchmark::State& state) {
  dig::Dlc dlc;
  dig::Bitstream bitstream;
  bitstream.design_name = "bench";
  dlc.configure(bitstream);
  dlc.regs().write(dig::reg::kPrbsOrder, 23);
  for (auto _ : state) {
    auto bits = dlc.expected_serial(65536);
    benchmark::DoNotOptimize(bits);
  }
  state.SetItemsProcessed(state.iterations() * 65536);
}
BENCHMARK(bm_dlc_prbs_generation);

void bm_serializer_edges(benchmark::State& state) {
  pecl::SerializerTree tree(pecl::SerializerTree::testbed_8to1(), Rng(1));
  dig::Dlc dlc;
  dig::Bitstream bitstream;
  bitstream.design_name = "bench";
  dlc.configure(bitstream);
  const auto bits = dlc.expected_serial(65536);
  for (auto _ : state) {
    auto edges = tree.serialize(bits, GbitsPerSec{2.5});
    benchmark::DoNotOptimize(edges);
  }
  state.SetItemsProcessed(state.iterations() * 65536);
}
BENCHMARK(bm_serializer_edges);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Text (Section 2) - DLC I/O capability and serializer necessity");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
