// Ablation A2: Data Vortex fabric characterization (substrate for the
// Optical Test Bed; refs [4], [5]).
//
// The test bed exists to exercise exactly these properties: latency and
// deflection ("virtual buffering") behavior of the deflection-routed
// fabric as offered load rises, for the 16-port geometry implied by the
// four header channels of Fig 4.
#include "bench_common.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "vortex/fabric.hpp"

using namespace mgt;

namespace {

struct LoadResult {
  double throughput = 0.0;   // delivered per port per slot
  double latency = 0.0;      // mean slots
  double deflections = 0.0;  // mean per packet
  double block_rate = 0.0;   // injection backpressure
};

LoadResult run_load(double load, std::size_t slots, std::uint64_t seed) {
  vortex::DataVortex fabric(vortex::Geometry::for_heights(16, 4));
  Rng rng(seed);
  std::uint64_t id = 1;
  RunningStats latency;
  RunningStats deflections;
  std::uint64_t attempts = 0;
  std::uint64_t blocked = 0;

  std::vector<vortex::Delivery> deliveries;
  for (std::size_t slot = 0; slot < slots; ++slot) {
    for (std::size_t port = 0; port < 16; ++port) {
      if (!rng.chance(load)) {
        continue;
      }
      ++attempts;
      vortex::Packet p;
      p.id = id++;
      p.destination = static_cast<std::uint32_t>(rng.below(16));
      if (!fabric.inject(std::move(p), port)) {
        ++blocked;
      }
    }
    for (auto& d : fabric.step()) {
      latency.add(static_cast<double>(d.latency_slots()));
      deflections.add(static_cast<double>(d.packet.deflections));
    }
  }
  std::vector<vortex::Delivery> tail;
  fabric.drain(tail, 100000);
  for (auto& d : tail) {
    latency.add(static_cast<double>(d.latency_slots()));
    deflections.add(static_cast<double>(d.packet.deflections));
  }

  LoadResult out;
  out.throughput = static_cast<double>(fabric.stats().delivered) /
                   static_cast<double>(slots) / 16.0;
  out.latency = latency.mean();
  out.deflections = deflections.mean();
  out.block_rate = attempts == 0
                       ? 0.0
                       : static_cast<double>(blocked) /
                             static_cast<double>(attempts);
  return out;
}

void run_reproduction(ReportTable& table) {
  double prev_latency = 0.0;
  bool latency_monotone = true;
  double low_latency = 0.0;
  for (double load : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const auto r = run_load(load, 600, 42);
    if (load > 0.1) {
      latency_monotone &= r.latency >= prev_latency - 0.05;
    } else {
      low_latency = r.latency;
    }
    prev_latency = r.latency;
    table.add_comparison(
        "offered load " + fmt(load, 1),
        "latency/deflections rise with load",
        "thr " + fmt(r.throughput, 3) + "/port/slot, lat " +
            fmt(r.latency, 2) + " slots, defl " + fmt(r.deflections, 2) +
            ", blocked " + fmt(r.block_rate * 100.0, 1) + " %",
        "-");
  }
  table.add_comparison("latency monotone in load", "expected", "-",
                       latency_monotone ? "OK (shape holds)" : "DEVIATES");
  table.add_comparison("uncontended latency", ">= cylinder count (5)",
                       fmt(low_latency, 2) + " slots",
                       low_latency >= 5.0 ? "OK (shape holds)"
                                          : "DEVIATES");
  table.add_comparison("low-latency small-packet transfer",
                       "paper's stated objective (Section 1)",
                       fmt(low_latency * 25.6, 0) +
                           " ns at 25.6 ns/slot, light load",
                       low_latency * 25.6 < 300.0 ? "OK (sub-300 ns)"
                                                  : "DEVIATES");
}

void bm_fabric_step_loaded(benchmark::State& state) {
  vortex::DataVortex fabric(vortex::Geometry::for_heights(16, 4));
  Rng rng(7);
  std::uint64_t id = 1;
  for (auto _ : state) {
    for (std::size_t port = 0; port < 16; ++port) {
      if (rng.chance(0.5)) {
        vortex::Packet p;
        p.id = id++;
        p.destination = static_cast<std::uint32_t>(rng.below(16));
        fabric.inject(std::move(p), port);
      }
    }
    auto out = fabric.step();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_fabric_step_loaded);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Ablation A2 - Data Vortex load/latency/deflection characterization");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
