// Ablation A4: Data Vortex behavior across traffic patterns.
//
// The test bed exists to evaluate signaling protocols over the fabric
// (Section 1); this ablation characterizes the substrate under the
// standard interconnection-network patterns, including the adversarial
// ones, with fairness accounting.
#include "bench_common.hpp"
#include "vortex/traffic.hpp"

using namespace mgt;

namespace {

void run_reproduction(ReportTable& table) {
  const auto geometry = vortex::Geometry::for_heights(16, 4);
  const double load = 0.5;

  struct Case {
    const char* name;
    vortex::TrafficPattern pattern;
  };
  double uniform_latency = 0.0;
  double hotspot_throughput = 0.0;
  double uniform_throughput = 0.0;
  for (const Case& c :
       {Case{"uniform random", vortex::TrafficPattern::Uniform},
        Case{"hotspot (70% -> port 0)", vortex::TrafficPattern::Hotspot},
        Case{"bit reverse (permutation)", vortex::TrafficPattern::BitReverse},
        Case{"neighbor (permutation)", vortex::TrafficPattern::Neighbor},
        Case{"tornado (adversarial)", vortex::TrafficPattern::Tornado}}) {
    const auto r =
        vortex::run_traffic(geometry, c.pattern, load, 600, 42, 0.7);
    if (c.pattern == vortex::TrafficPattern::Uniform) {
      uniform_latency = r.mean_latency_slots;
      uniform_throughput = r.throughput_per_port;
    }
    if (c.pattern == vortex::TrafficPattern::Hotspot) {
      hotspot_throughput = r.throughput_per_port;
    }
    table.add_comparison(
        c.name, "offered 0.5/port/slot",
        "thr " + fmt(r.throughput_per_port, 3) + ", lat " +
            fmt(r.mean_latency_slots, 2) + " (p99 " +
            fmt(r.p99_latency_slots, 0) + "), defl " +
            fmt(r.mean_deflections, 2) + ", fair " + fmt(r.fairness, 2) +
            ", reorder " + fmt(r.reorder_rate * 100.0, 1) + " %",
        "-");
  }

  table.add_comparison("hotspot throughput collapse",
                       "output port saturates at 1/slot",
                       fmt(hotspot_throughput, 3) + " vs uniform " +
                           fmt(uniform_throughput, 3),
                       hotspot_throughput < 0.6 * uniform_throughput
                           ? "OK (shape holds)"
                           : "DEVIATES");
  table.add_comparison("uncontended-ish uniform latency",
                       ">= cylinder count", fmt(uniform_latency, 2),
                       uniform_latency >= 5.0 ? "OK (shape holds)"
                                              : "DEVIATES");
}

void bm_uniform_traffic(benchmark::State& state) {
  const auto geometry = vortex::Geometry::for_heights(16, 4);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    auto r = vortex::run_traffic(geometry, vortex::TrafficPattern::Uniform,
                                 0.5, 100, seed++);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(bm_uniform_traffic)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Ablation A4 - Data Vortex under standard traffic patterns");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
