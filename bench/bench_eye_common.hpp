// Shared eye-diagram reproduction logic for Figs 7, 8, 16, 17 and 19.
#pragma once

#include "analysis/decompose.hpp"
#include "analysis/eye.hpp"
#include "bench_common.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"

namespace mgt::bench {

struct EyeSpec {
  double paper_tj_pp_ps;      // <= 0: paper gives no number for this figure
  double paper_opening_ui;
  double tj_tolerance_ps = 6.0;
  double ui_tolerance = 0.03;
};

/// Runs a PRBS eye on `config`, appends paper-vs-measured rows, prints the
/// folded eye as ASCII art (our stand-in for the paper's scope photo).
inline void run_eye_reproduction(ReportTable& table,
                                 const core::ChannelConfig& config,
                                 const EyeSpec& spec, std::uint64_t seed,
                                 std::size_t n_bits = 20000) {
  core::TestSystem sys(config, seed);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  const auto eye = sys.acquire_eye(n_bits);
  const auto metrics = eye.metrics();

  if (spec.paper_tj_pp_ps > 0.0) {
    table.add_comparison(
        "crossover jitter p-p", fmt_unit(spec.paper_tj_pp_ps, "ps", 1),
        fmt_unit(metrics.jitter.peak_to_peak.ps(), "ps", 1),
        verdict(metrics.jitter.peak_to_peak.ps(), spec.paper_tj_pp_ps,
                spec.tj_tolerance_ps));
  } else {
    table.add_comparison("crossover jitter p-p", "(not quoted)",
                         fmt_unit(metrics.jitter.peak_to_peak.ps(), "ps", 1),
                         "-");
  }
  table.add_comparison(
      "usable eye opening", fmt_unit(spec.paper_opening_ui, "UI", 2),
      fmt_unit(metrics.eye_opening.ui(), "UI", 3),
      verdict(metrics.eye_opening.ui(), spec.paper_opening_ui,
              spec.ui_tolerance));
  table.add_comparison("eye height (vertical)", "open",
                       fmt_unit(metrics.eye_height.mv(), "mV", 0),
                       metrics.eye_height.mv() > 0.0 ? "OK (open)"
                                                     : "DEVIATES");
  table.add_comparison("crossings folded", "~10^4-edge acquisition",
                       std::to_string(metrics.jitter.count), "-");

  // Dual-Dirac decomposition of the same acquisition: ties the eye's TJ to
  // the Fig 9 single-edge RJ budget.
  const auto decomposition =
      ana::decompose_jitter(eye.crossings(), eye.config().ui,
                            eye.config().t_ref);
  if (decomposition.valid) {
    table.add_comparison(
        "RJ / DJ split (dual-Dirac)", "RJ ~3.2 ps rms (Fig 9) + mux DJ",
        "RJ " + fmt(decomposition.rj_sigma.ps(), 2) + " ps, DJ " +
            fmt(decomposition.dj_pp.ps(), 1) + " ps",
        "-");
  }

  std::cout << "\nFolded eye (2 UI wide, density-shaded):\n"
            << eye.ascii_art(72, 18) << "\n";
}

}  // namespace mgt::bench
