// Shared eye-diagram reproduction logic for Figs 7, 8, 16, 17 and 19.
#pragma once

#include <bit>
#include <chrono>

#include "analysis/decompose.hpp"
#include "analysis/eye.hpp"
#include "bench_common.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "obs/obs.hpp"
#include "signal/render_cache.hpp"

namespace mgt::bench {

struct EyeSpec {
  double paper_tj_pp_ps;      // <= 0: paper gives no number for this figure
  double paper_opening_ui;
  double tj_tolerance_ps = 6.0;
  double ui_tolerance = 0.03;
};

/// Runs a PRBS eye on `config`, appends paper-vs-measured rows, prints the
/// folded eye as ASCII art (our stand-in for the paper's scope photo).
inline void run_eye_reproduction(ReportTable& table,
                                 const core::ChannelConfig& config,
                                 const EyeSpec& spec, std::uint64_t seed,
                                 std::size_t n_bits = 20000) {
  core::TestSystem sys(config, seed);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  const auto eye = sys.acquire_eye(n_bits);
  const auto metrics = eye.metrics();

  if (spec.paper_tj_pp_ps > 0.0) {
    table.add_comparison(
        "crossover jitter p-p", fmt_unit(spec.paper_tj_pp_ps, "ps", 1),
        fmt_unit(metrics.jitter.peak_to_peak.ps(), "ps", 1),
        verdict(metrics.jitter.peak_to_peak.ps(), spec.paper_tj_pp_ps,
                spec.tj_tolerance_ps));
  } else {
    table.add_comparison("crossover jitter p-p", "(not quoted)",
                         fmt_unit(metrics.jitter.peak_to_peak.ps(), "ps", 1),
                         "-");
  }
  table.add_comparison(
      "usable eye opening", fmt_unit(spec.paper_opening_ui, "UI", 2),
      fmt_unit(metrics.eye_opening.ui(), "UI", 3),
      verdict(metrics.eye_opening.ui(), spec.paper_opening_ui,
              spec.ui_tolerance));
  table.add_comparison("eye height (vertical)", "open",
                       fmt_unit(metrics.eye_height.mv(), "mV", 0),
                       metrics.eye_height.mv() > 0.0 ? "OK (open)"
                                                     : "DEVIATES");
  table.add_comparison("crossings folded", "~10^4-edge acquisition",
                       std::to_string(metrics.jitter.count), "-");

  // Dual-Dirac decomposition of the same acquisition: ties the eye's TJ to
  // the Fig 9 single-edge RJ budget.
  const auto decomposition =
      ana::decompose_jitter(eye.crossings(), eye.config().ui,
                            eye.config().t_ref);
  if (decomposition.valid) {
    table.add_comparison(
        "RJ / DJ split (dual-Dirac)", "RJ ~3.2 ps rms (Fig 9) + mux DJ",
        "RJ " + fmt(decomposition.rj_sigma.ps(), 2) + " ps, DJ " +
            fmt(decomposition.dj_pp.ps(), 1) + " ps",
        "-");
  }

  std::cout << "\nFolded eye (2 UI wide, density-shaded):\n"
            << eye.ascii_art(72, 18) << "\n";
}

/// Demonstrates the content-addressed render cache on the figure's channel:
/// one FIXED stimulus (a repeated acquisition of the same programmed
/// pattern renders the same edges through the same chain — the shmoo-grid
/// situation the cache exists for) accumulated cold (all misses) and warm
/// (all hits) with byte-identical metrics; the wall-clock ratio is the
/// measured speedup. The hit/miss counters also land in the
/// BENCH_<name>.json obs section via the registry. Wall-clock here is
/// bench-only reporting; it never feeds the deterministic metrics.
inline void run_render_cache_report(ReportTable& table,
                                    const core::ChannelConfig& config,
                                    std::uint64_t seed,
                                    std::size_t n_bits = 10000) {
  using clock = std::chrono::steady_clock;
  core::TestSystem sys(config, seed);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  const core::Stimulus stim = sys.generate(n_bits);

  const double margin = 0.25 * stim.levels.swing().mv();
  const ana::EyeDiagram::Config eye_config{
      .ui = stim.ui,
      .t_ref = stim.t0,
      .v_lo = Millivolts{stim.levels.vol.mv() - margin},
      .v_hi = Millivolts{stim.levels.voh.mv() + margin},
      .threshold = stim.levels.midpoint(),
  };
  sig::RenderConfig render_config;
  render_config.levels = stim.levels;
  const Picoseconds begin = stim.t0;
  const Picoseconds end{stim.t0.ps() +
                        static_cast<double>(n_bits) * stim.ui.ps()};

  sig::ScopedRenderCache cache_on(true);
  sig::RenderCache::instance().clear();
  auto& reg = obs::registry();
  const auto hits0 = reg.counter("render_cache.hits").value();
  const auto miss0 = reg.counter("render_cache.misses").value();

  const auto t0 = clock::now();
  const auto cold = ana::accumulate_eye(stim.edges, stim.chain, render_config,
                                        begin, end, eye_config)
                        .metrics();
  const auto t1 = clock::now();
  const auto miss_delta = reg.counter("render_cache.misses").value() - miss0;

  const auto warm = ana::accumulate_eye(stim.edges, stim.chain, render_config,
                                        begin, end, eye_config)
                        .metrics();
  const auto t2 = clock::now();
  const auto hit_delta = reg.counter("render_cache.hits").value() - hits0;

  const double cold_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double warm_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count();
  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;

  const bool identical =
      std::bit_cast<std::uint64_t>(cold.jitter.peak_to_peak.ps()) ==
          std::bit_cast<std::uint64_t>(warm.jitter.peak_to_peak.ps()) &&
      std::bit_cast<std::uint64_t>(cold.eye_opening.ui()) ==
          std::bit_cast<std::uint64_t>(warm.eye_opening.ui()) &&
      std::bit_cast<std::uint64_t>(cold.eye_height.mv()) ==
          std::bit_cast<std::uint64_t>(warm.eye_height.mv()) &&
      std::bit_cast<std::uint64_t>(cold.level_high.mv()) ==
          std::bit_cast<std::uint64_t>(warm.level_high.mv()) &&
      std::bit_cast<std::uint64_t>(cold.level_low.mv()) ==
          std::bit_cast<std::uint64_t>(warm.level_low.mv());

  table.add_comparison("render cache cold pass", "populates cache",
                       std::to_string(miss_delta) + " misses, " +
                           fmt(cold_ms, 1) + " ms",
                       miss_delta > 0 ? "OK" : "DEVIATES");
  table.add_comparison("render cache warm pass", "replays cache",
                       std::to_string(hit_delta) + " hits, " + fmt(warm_ms, 1) +
                           " ms (" + fmt(speedup, 1) + "x)",
                       hit_delta == miss_delta ? "OK" : "DEVIATES");
  table.add_comparison("cache replay identity", "byte-identical metrics",
                       identical ? "bitwise equal" : "MISMATCH",
                       identical ? "OK" : "DEVIATES");
}

}  // namespace mgt::bench
