// Ablation A6: jitter instrumentation cross-check.
//
// The paper separates "random jitter in the internal clock and the logic
// circuitry" (Fig 9) from the data-dependent and bounded contributions
// seen in the eyes (Figs 7/8). This bench runs the full instrumentation
// stack on controlled inputs: dual-Dirac decomposition recovers injected
// RJ/DJ, and the TIE spectrum localizes an injected periodic tone — then
// both run on the real test-bed channel.
#include "analysis/decompose.hpp"
#include "analysis/spectrum.hpp"
#include "bench_common.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "signal/jitter.hpp"
#include "signal/render.hpp"
#include "signal/sinks.hpp"

using namespace mgt;

namespace {

std::vector<sig::Crossing> controlled_edges(std::size_t n, double ui,
                                            const sig::JitterSpec& spec,
                                            Rng rng) {
  sig::JitterSource source(spec, rng);
  std::vector<sig::Crossing> out;
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const Picoseconds nominal{static_cast<double>(k + 1) * ui};
    out.push_back({nominal + source.offset(true, nominal), true});
  }
  return out;
}

void run_reproduction(ReportTable& table) {
  // Controlled input: RJ 3.2 ps + DJ 20 ps + 4 ps PJ at 40 MHz.
  sig::JitterSpec spec;
  spec.rj_sigma = Picoseconds{3.2};
  spec.dj_pp = Picoseconds{20.0};
  spec.pj_amplitude = Picoseconds{4.0};
  spec.pj_frequency = Gigahertz{0.04};
  const auto crossings = controlled_edges(16384, 400.0, spec, Rng(5));

  const auto decomposition =
      ana::decompose_jitter(crossings, Picoseconds{400.0});
  // Known dual-Dirac bias: unresolved sinusoidal PJ inflates the fitted
  // Gaussian sigma (its density peaks at the extremes), so the estimate
  // lands between the true RJ and RJ+PJ.
  const bool rj_ok = decomposition.rj_sigma.ps() >= 3.2 - 0.5 &&
                     decomposition.rj_sigma.ps() <= 3.2 + 4.0 / 2.0;
  table.add_comparison("decomposed RJ (injected 3.2 ps + 4 ps PJ)",
                       "in [RJ, RJ + PJ/2] (PJ inflates the tails)",
                       fmt_unit(decomposition.rj_sigma.ps(), "ps", 2),
                       rj_ok ? "OK (known PJ bias)" : "DEVIATES");
  table.add_comparison(
      "decomposed DJ (injected 20 ps dual-Dirac + PJ)",
      "DJ(dd) <= injected bounded jitter",
      fmt_unit(decomposition.dj_pp.ps(), "ps", 1),
      decomposition.dj_pp.ps() > 14.0 && decomposition.dj_pp.ps() < 30.0
          ? "OK (shape holds)"
          : "DEVIATES");

  const auto tie = ana::extract_tie(crossings, Picoseconds{400.0});
  const auto tones = ana::find_tones(ana::jitter_spectrum(tie, 512));
  if (!tones.empty()) {
    table.add_comparison("strongest TIE tone (injected 40 MHz, 4 ps)",
                         "tone localized",
                         fmt(tones.front().frequency.mhz(), 1) + " MHz, " +
                             fmt(tones.front().amplitude.ps(), 1) + " ps",
                         bench::verdict(tones.front().frequency.mhz(), 40.0,
                                        4.0));
  } else {
    table.add_comparison("strongest TIE tone", "tone localized", "none",
                         "DEVIATES");
  }

  // The real channel: decomposition of the Fig 7 acquisition plus a
  // spectral check that the chain itself carries no periodic tones.
  core::TestSystem sys(core::presets::optical_testbed(), 42);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  const auto stim = sys.generate(16384);
  const sig::PeclLevels rails = sig::attenuated(stim.levels,
                                                stim.chain.gain());
  sig::CrossingRecorder recorder(rails.midpoint());
  sig::render(stim.edges, stim.chain,
              sig::RenderConfig{.levels = stim.levels},
              Picoseconds{stim.t0.ps() + 16.0 * stim.ui.ps()},
              Picoseconds{stim.t0.ps() + 16383.0 * stim.ui.ps()},
              {&recorder});
  const auto real_d =
      ana::decompose_jitter(recorder.crossings(), stim.ui, stim.t0);
  table.add_comparison("test-bed channel RJ (Fig 9 budget: 3.2 ps)",
                       "chain RJ consistent with Fig 9",
                       fmt_unit(real_d.rj_sigma.ps(), "ps", 2),
                       bench::verdict(real_d.rj_sigma.ps(), 3.2, 1.5));
  const auto real_tie =
      ana::extract_tie(recorder.crossings(), stim.ui, stim.t0);
  const auto real_tones =
      ana::find_tones(ana::jitter_spectrum(real_tie, 256), 8.0);
  table.add_comparison("test-bed channel periodic tones",
                       "none (clean supplies/RF source)",
                       real_tones.empty()
                           ? "none detected"
                           : fmt(real_tones.front().amplitude.ps(), 1) +
                                 " ps tone",
                       real_tones.empty() ? "OK (clean)" : "DEVIATES");
}

void bm_spectrum_16k(benchmark::State& state) {
  sig::JitterSpec spec;
  spec.rj_sigma = Picoseconds{3.0};
  const auto crossings = controlled_edges(4096, 400.0, spec, Rng(9));
  const auto tie = ana::extract_tie(crossings, Picoseconds{400.0});
  for (auto _ : state) {
    auto spectrum = ana::jitter_spectrum(tie, 256);
    benchmark::DoNotOptimize(spectrum);
  }
}
BENCHMARK(bm_spectrum_16k)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Ablation A6 - jitter instrumentation cross-check (RJ/DJ/PJ)");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
