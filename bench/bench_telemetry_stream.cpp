// Telemetry streaming: encode/decode throughput, overload shedding, and
// the constant-memory soak behind the hardened-decoder claims.
//
// The paper's testers only scale if results stream off the instrument
// while it runs; this bench prices that path end to end. It pushes a
// mixed record stream (waveform chunks, metric snapshots, plan summaries)
// through encoder -> faulty channel -> hardened decoder four ways:
//
//   clean      empty fault plan: byte-perfect channel, zero rejections
//   corrupted  seeded corruption + truncation + reorder faults: the
//              decoder's typed-error breakdown and resync survival rate
//   overload   offers far beyond the ring bound: shed rate and the exact
//              offered == encoded + shed + pending identity
//   soak       a billion-sample acquisition (2^30 samples, decimated)
//              streamed through bounded rings: the pending/reassembly
//              high-water marks stay at their configured bounds
//
// The JSON document is BENCH_telemetry.json (explicit name "telemetry").
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/fault.hpp"
#include "telemetry/channel.hpp"
#include "telemetry/decoder.hpp"
#include "telemetry/encoder.hpp"
#include "telemetry/wire.hpp"
#include "util/rng.hpp"

using namespace mgt;

namespace {

constexpr std::size_t kStreamRecords = 4000;

telemetry::Record make_record(Rng& rng, std::uint64_t tick) {
  telemetry::Record r;
  r.tick = tick;
  switch (rng.below(3)) {
    case 0: {
      telemetry::WaveformChunk wf;
      wf.channel = static_cast<std::uint16_t>(rng.below(8));
      wf.decimation = 64;
      wf.t0_ps = static_cast<double>(tick);
      wf.dt_ps = 0.5;
      wf.samples.assign(128, 0.0);
      for (double& s : wf.samples) {
        s = rng.gaussian(2000.0, 400.0);
      }
      r.body = std::move(wf);
      break;
    }
    case 1: {
      telemetry::MetricSnapshot ms;
      for (int i = 0; i < 6; ++i) {
        ms.entries.push_back(telemetry::MetricEntry::counter(
            "bench.metric." + std::to_string(i), rng.next()));
      }
      r.body = std::move(ms);
      break;
    }
    default: {
      telemetry::PlanSummary ps;
      ps.plan_id = tick;
      ps.tenant = "bench";
      ps.shards = 4;
      ps.shards_completed = 4;
      ps.chunks_completed = 16;
      ps.finished_tick = tick;
      ps.digest = rng.next();
      r.body = std::move(ps);
      break;
    }
  }
  return r;
}

fault::FaultPlan hostile_plan() {
  fault::FaultPlan plan(7171);
  // Corrupt 1-in-some packets over a third of the stream, truncate over
  // another third, and reorder a short window; windows overlap so the
  // decoder sees compound damage too.
  plan.schedule({.kind = fault::FaultKind::kTelemetryCorruption,
                 .component = "telemetry",
                 .severity = 0.5,
                 .start = 200,
                 .duration = 1200});
  plan.schedule({.kind = fault::FaultKind::kTelemetryTruncation,
                 .component = "telemetry",
                 .severity = 0.4,
                 .start = 1000,
                 .duration = 1200});
  plan.schedule({.kind = fault::FaultKind::kTelemetryReorder,
                 .component = "telemetry",
                 .severity = 1.0,
                 .start = 2400,
                 .duration = 64});
  return plan;
}

struct StreamResult {
  telemetry::StreamStats encoder;
  telemetry::FaultyChannel::Stats channel;
  telemetry::DecoderStats decoder;
  std::size_t decoder_high_water = 0;
  std::size_t decoder_cap = 0;
};

/// Streams kStreamRecords records encoder -> channel -> decoder, draining
/// the ring every `drain_every` offers (the backpressure cadence).
StreamResult run_stream(const fault::ComponentFaults& faults,
                        std::size_t capacity_records,
                        std::size_t drain_every) {
  telemetry::StreamEncoder enc({/*stream_id=*/1, "bench", capacity_records});
  telemetry::FaultyChannel channel{faults};
  telemetry::Decoder decoder(telemetry::Decoder::Config{},
                             [](const telemetry::PacketHeader&,
                                const telemetry::Record&) {});
  const auto to_decoder = [&](std::vector<std::uint8_t>&& p) {
    decoder.feed(p);
  };
  Rng rng(2026);
  for (std::size_t i = 0; i < kStreamRecords; ++i) {
    enc.offer(make_record(rng, i));
    if ((i + 1) % drain_every == 0) {
      enc.drain([&](std::vector<std::uint8_t>&& p) {
        channel.send(std::move(p), to_decoder);
      });
    }
  }
  enc.drain([&](std::vector<std::uint8_t>&& p) {
    channel.send(std::move(p), to_decoder);
  });
  channel.flush(to_decoder);
  decoder.flush();

  StreamResult out;
  out.encoder = enc.stats();
  out.channel = channel.stats();
  out.decoder = decoder.stats();
  out.decoder_high_water = decoder.buffered_high_water();
  out.decoder_cap = decoder.config().buffer_cap_bytes;
  return out;
}

std::string error_breakdown(const telemetry::DecoderStats& s) {
  std::string out;
  for (std::size_t i = 0; i < telemetry::kDecodeErrorCount; ++i) {
    if (s.errors[i] == 0) {
      continue;
    }
    if (!out.empty()) {
      out += ", ";
    }
    out += std::string(
               telemetry::to_string(static_cast<telemetry::DecodeError>(i))) +
           " " + std::to_string(s.errors[i]);
  }
  return out.empty() ? "none" : out;
}

void add_stream_rows(ReportTable& table, const char* label,
                     const StreamResult& r) {
  const std::string prefix = std::string(label) + " ";
  const bool exact =
      r.encoder.accounting_exact() && r.decoder.accounting_exact();
  table.add_comparison(
      prefix + "accounting",
      "offered==encoded+shed+pending; received==decoded+rejected",
      exact ? "both identities hold" : "identity BROKEN",
      exact ? "OK (exact)" : "DEVIATES");
  table.add_comparison(
      prefix + "stream",
      std::to_string(kStreamRecords) + " records",
      std::to_string(r.encoder.encoded) + " packets, " +
          std::to_string(r.decoder.decoded) + " decoded / " +
          std::to_string(r.decoder.rejected) + " rejected",
      "");
  table.add_comparison(prefix + "decoder errors", "typed, counted",
                       error_breakdown(r.decoder), "");
}

void run_reproduction(ReportTable& table) {
  // Clean channel: everything offered is decoded, nothing rejected.
  const StreamResult clean =
      run_stream(fault::ComponentFaults{}, /*capacity_records=*/512,
                 /*drain_every=*/64);
  add_stream_rows(table, "clean", clean);
  table.add_comparison(
      "clean losslessness", "decoded == encoded, 0 rejected",
      std::to_string(clean.decoder.decoded) + " == " +
          std::to_string(clean.encoder.encoded) + ", " +
          std::to_string(clean.decoder.rejected) + " rejected",
      clean.decoder.decoded == clean.encoder.encoded &&
              clean.decoder.rejected == 0
          ? "OK (lossless)"
          : "DEVIATES");

  // Hostile channel: typed rejections, but the stream survives.
  const fault::FaultPlan plan = hostile_plan();
  const StreamResult hostile =
      run_stream(plan.component("telemetry"), /*capacity_records=*/512,
                 /*drain_every=*/64);
  add_stream_rows(table, "corrupted", hostile);
  const double survival =
      hostile.encoder.encoded == 0
          ? 0.0
          : 100.0 * static_cast<double>(hostile.decoder.decoded) /
                static_cast<double>(hostile.encoder.encoded);
  table.add_comparison(
      "corrupted survival", "resync keeps intact packets",
      fmt(survival, 1) + "% decoded, " +
          std::to_string(hostile.decoder.resyncs) + " resyncs, " +
          std::to_string(hostile.channel.corrupted) + " corrupted / " +
          std::to_string(hostile.channel.truncated) + " truncated / " +
          std::to_string(hostile.channel.reordered) + " reordered",
      hostile.decoder.rejected > 0 && survival > 50.0 ? "OK (survives)"
                                                      : "DEVIATES");

  // Overload: a small ring under sustained pressure sheds loudly.
  const StreamResult overload =
      run_stream(fault::ComponentFaults{}, /*capacity_records=*/64,
                 /*drain_every=*/1024);
  const double shed_rate =
      100.0 * static_cast<double>(overload.encoder.shed) /
      static_cast<double>(overload.encoder.offered);
  table.add_comparison(
      "overload shedding", "oldest-first, counted, never silent",
      fmt(shed_rate, 1) + "% shed (" + std::to_string(overload.encoder.shed) +
          " of " + std::to_string(overload.encoder.offered) + ")",
      overload.encoder.accounting_exact() && overload.encoder.shed > 0
          ? "OK (exact)"
          : "DEVIATES");

  // Soak: a billion-sample acquisition decimated into the stream. Memory
  // on both ends must be flat: the encoder ring bound and the decoder's
  // construction-time reservation are the high-water marks.
  constexpr std::uint64_t kSoakSamples = 1ull << 30;
  constexpr std::uint64_t kDecimation = 64;
  constexpr std::size_t kChunk = 512;
  const std::uint64_t chunks = kSoakSamples / kDecimation / kChunk;  // 32768
  telemetry::StreamEncoder enc({/*stream_id=*/1, "soak", 256});
  telemetry::Decoder decoder(telemetry::Decoder::Config{},
                             [](const telemetry::PacketHeader&,
                                const telemetry::Record&) {});
  Rng rng(31);
  std::vector<double> samples(kChunk);
  for (std::uint64_t c = 0; c < chunks; ++c) {
    telemetry::Record r;
    r.tick = c * kChunk * kDecimation;
    telemetry::WaveformChunk wf;
    wf.decimation = kDecimation;
    wf.t0_ps = static_cast<double>(r.tick);
    wf.dt_ps = 0.5;
    for (double& s : samples) {
      s = rng.gaussian(2000.0, 400.0);
    }
    wf.samples = samples;
    r.body = std::move(wf);
    enc.offer(std::move(r));
    if ((c + 1) % 128 == 0) {
      enc.drain([&](std::vector<std::uint8_t>&& p) { decoder.feed(p); });
    }
  }
  enc.drain([&](std::vector<std::uint8_t>&& p) { decoder.feed(p); });
  decoder.flush();
  const bool soak_ok =
      enc.stats().accounting_exact() && decoder.stats().accounting_exact() &&
      decoder.stats().rejected == 0 &&
      decoder.buffered_high_water() <= decoder.config().buffer_cap_bytes;
  table.add_comparison(
      "soak scale", "2^30 samples",
      std::to_string(kSoakSamples) + " samples -> " +
          std::to_string(decoder.stats().decoded) + " packets decoded",
      soak_ok ? "OK (lossless)" : "DEVIATES");
  table.add_comparison(
      "soak memory", "constant (bounded rings)",
      "encoder pending high-water " +
          std::to_string(enc.stats().pending_bytes_high_water) +
          " B, decoder reassembly high-water " +
          std::to_string(decoder.buffered_high_water()) + " B (cap " +
          std::to_string(decoder.config().buffer_cap_bytes) + " B)",
      soak_ok ? "OK (flat)" : "DEVIATES");
}

void bm_encode_stream(benchmark::State& state) {
  Rng rng(1);
  std::vector<telemetry::Record> records;
  for (std::size_t i = 0; i < 256; ++i) {
    records.push_back(make_record(rng, i));
  }
  for (auto _ : state) {
    std::vector<std::uint8_t> bytes;
    for (std::size_t i = 0; i < records.size(); ++i) {
      telemetry::encode_packet(records[i], 1, static_cast<std::uint32_t>(i),
                               bytes);
    }
    benchmark::DoNotOptimize(bytes.data());
  }
}
BENCHMARK(bm_encode_stream)->Unit(benchmark::kMicrosecond);

void bm_decode_stream(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::uint8_t> bytes;
  for (std::size_t i = 0; i < 256; ++i) {
    telemetry::encode_packet(make_record(rng, i), 1,
                             static_cast<std::uint32_t>(i), bytes);
  }
  for (auto _ : state) {
    telemetry::Decoder decoder(telemetry::Decoder::Config{},
                               [](const telemetry::PacketHeader&,
                                  const telemetry::Record&) {});
    decoder.feed(bytes);
    decoder.flush();
    benchmark::DoNotOptimize(decoder.stats().decoded);
  }
}
BENCHMARK(bm_decode_stream)->Unit(benchmark::kMicrosecond);

void bm_decode_garbage(benchmark::State& state) {
  Rng rng(2);
  std::vector<std::uint8_t> junk(1 << 16);
  for (auto& b : junk) {
    b = rng.chance(0.25) ? 0x4D : static_cast<std::uint8_t>(rng.below(256));
  }
  for (auto _ : state) {
    telemetry::Decoder decoder;
    decoder.feed(junk);
    decoder.flush();
    benchmark::DoNotOptimize(decoder.stats().bytes_skipped);
  }
}
BENCHMARK(bm_decode_garbage)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  ReportTable table = bench::make_table(
      "Telemetry stream: clean vs corrupted channel, shedding, 2^30 soak");
  run_reproduction(table);
  table.print(std::cout);
  // Exported under the explicit name "telemetry" (not the binary name) so
  // the document is BENCH_telemetry.json; the obs snapshot carries the
  // telemetry.<stream>.offered/shed/encoded counters alongside the table.
  const std::string json_path = obs::write_bench_json(table, "telemetry");
  if (!json_path.empty()) {
    std::cout << "bench json: " << json_path << "\n";
  }
  std::cout.flush();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
