// Extension study: the paper's stated scale-up target (Section 1).
//
// "The end-application will require extending the word width to at least
// 64 bits, and increasing channel data rates to 10 Gbps at each
// wavelength, so that the aggregate data rate will be of the order of a
// Terabit-per-second."
//
// The architecture extends naturally: a 4:1 + 8:1 tree gives 32 DLC lanes
// at 312.5 Mbps for a 10 Gbps serial stream — still inside the FPGA's
// I/O budget. What does NOT extend is the 2005 analog chain, so this bench
// runs a full scenario matrix through core::TestSystem:
//
//   rate {5, 10 Gbps} x mux tree {16:1 flat, 2:1+8:1, 4:1+8:1/32 lanes}
//     x timing mode {stepped 10 ps, vernier 0.67 ps} x skew stress
//     {nominal, 1.5x, 2x}
//
// Every cell emits one "matrix-cell" row into BENCH_extension_10gbps.json
// (schema mgt-bench-v1): analog eye at the output plane plus the
// error-free strobe window a capture strobe placed through the selected
// timing mode actually finds. Physics cross-checks ride along: the eye in
// UI must be non-increasing in rate and in skew severity, a mux-dropout
// BER sweep must be monotone, and the golden-pin guarantees (MGT_THREADS
// 0/1/8 byte-identity, empty-fault-plan byte-identity, vernier == stepped
// at exactly coinciding delay codes) are asserted on real acquisitions.
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/ber.hpp"
#include "analysis/faultsweep.hpp"
#include "bench_common.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "digital/dlc.hpp"
#include "pecl/delayline.hpp"
#include "pecl/mux.hpp"
#include "pecl/sampler.hpp"
#include "util/parallel.hpp"

using namespace mgt;

namespace {

constexpr std::uint64_t kSeed = 77;
constexpr std::size_t kWarmupBits = 16;
constexpr std::size_t kStrobeBits = 256;   // multiple of every lane count
constexpr std::size_t kEyeBits = 1536;     // multiple of every lane count

// -- Matrix axes ------------------------------------------------------------

struct TreeAxis {
  const char* name;
  pecl::SerializerTree::Config (*build)(double skew_scale);
};

constexpr TreeAxis kTrees[] = {
    {"16to1-flat", &pecl::SerializerTree::serializer_16to1},
    {"2to1+8to1", nullptr},  // built via from_fan_ins below
    {"4to1+8to1-32lane", &pecl::SerializerTree::extension_32lane},
};

pecl::SerializerTree::Config build_tree(const TreeAxis& tree,
                                        double skew_scale) {
  if (tree.build != nullptr) {
    return tree.build(skew_scale);
  }
  return pecl::SerializerTree::from_fan_ins({2, 8}, skew_scale);
}

constexpr double kRates[] = {5.0, 10.0};
constexpr double kSeverities[] = {0.0, 0.5, 1.0};
constexpr pecl::TimingMode kModes[] = {pecl::TimingMode::kStepped,
                                       pecl::TimingMode::kVernier};

/// The improved analog chain (35 ps rise) the 2005 study concluded the
/// extension needs; severity stresses the mux skew (1 + severity scale).
core::ChannelConfig matrix_config(double rate_gbps, const TreeAxis& tree,
                                  double severity) {
  core::ChannelConfig config;
  config.rate = GbitsPerSec{rate_gbps};
  config.design_name = "tenGig-extension";
  config.serializer = build_tree(tree, 1.0 + severity);
  config.buffer.rise_2080 = Picoseconds{35.0};
  config.buffer.rj_sigma = Picoseconds{1.8};
  config.clock.frequency = Gigahertz{rate_gbps / 4.0};  // instrument ceiling
  config.clock.rj_sigma = Picoseconds{0.8};
  config.hookup = sig::Channel::ideal().config();
  return config;
}

// -- Strobed capture rig ----------------------------------------------------

/// Error count of one strobed acquisition with the strobe placed
/// `delay.actual_delay(code)` past the warmup boundary (the capture side
/// of the mini-tester, pointed at a TestSystem stimulus).
std::size_t errors_at_code(const core::Stimulus& stim,
                           pecl::PeclSampler& sampler,
                           const pecl::ProgrammableDelay& delay,
                           std::size_t code, const BitVector& expected) {
  const Picoseconds first{stim.t0.ps() +
                          static_cast<double>(kWarmupBits) * stim.ui.ps() +
                          delay.actual_delay(code).ps()};
  const auto strobes =
      pecl::PeclSampler::strobe_schedule(first, stim.ui, expected.size());
  const auto capture =
      sampler.capture(stim.edges, stim.chain, stim.levels, strobes);
  return ana::compare_bits_aligned(capture.bits, expected, 4).errors;
}

struct StrobeWindow {
  double window_ps = 0.0;
  double step_ps = 0.0;
  std::size_t captures = 0;
};

/// Width of the error-free strobe window across one UI, measured at the
/// timing mode's own placement granularity: a coarse scan finds the clean
/// band, then the band edges are refined code-by-code at the native step.
/// This is where the vernier mode earns its keep — the stepped line cannot
/// resolve the window edge below its 10 ps pitch.
StrobeWindow measure_strobe_window(const core::Stimulus& stim,
                                   pecl::TimingMode mode,
                                   std::uint64_t rig_seed) {
  auto delay_config = core::presets::strobe_delay(mode);
  pecl::ProgrammableDelay delay(delay_config, Rng(rig_seed));
  pecl::PeclSampler sampler(pecl::PeclSampler::Config{},
                            Rng(rig_seed ^ 0x5A3B1EULL));
  sampler.set_threshold(stim.levels.midpoint());
  const BitVector expected =
      stim.bits.slice(kWarmupBits, kStrobeBits - kWarmupBits - 1);

  StrobeWindow out;
  out.step_ps = delay.step().ps();
  const auto max_code = static_cast<std::size_t>(
      std::ceil(stim.ui.ps() / out.step_ps));
  const std::size_t stride = std::max<std::size_t>(1, max_code / 16);

  auto clean = [&](std::size_t code) {
    ++out.captures;
    return errors_at_code(stim, sampler, delay, code, expected) == 0;
  };

  // Coarse scan: longest clean run across one UI of codes.
  std::vector<std::size_t> codes;
  std::vector<bool> ok;
  for (std::size_t code = 0; code <= max_code; code += stride) {
    codes.push_back(code);
    ok.push_back(clean(code));
  }
  std::size_t best_lo = 0;
  std::size_t best_hi = 0;
  bool found = false;
  for (std::size_t i = 0; i < codes.size();) {
    if (!ok[i]) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j + 1 < codes.size() && ok[j + 1]) {
      ++j;
    }
    if (!found || codes[j] - codes[i] >= best_hi - best_lo) {
      best_lo = codes[i];
      best_hi = codes[j];
      found = true;
    }
    i = j + 1;
  }
  if (!found) {
    return out;  // no clean strobe position anywhere: window 0
  }

  // Edge refinement at the native step, bounded by one coarse stride.
  std::size_t lo = best_lo;
  for (std::size_t k = 1; k < stride && lo > 0; ++k) {
    if (!clean(lo - 1)) {
      break;
    }
    --lo;
  }
  std::size_t hi = best_hi;
  for (std::size_t k = 1; k < stride && hi < max_code; ++k) {
    if (!clean(hi + 1)) {
      break;
    }
    ++hi;
  }
  out.window_ps = static_cast<double>(hi - lo) * out.step_ps;
  return out;
}

// -- Byte-identity helpers --------------------------------------------------

bool same_stimulus(const core::Stimulus& a, const core::Stimulus& b) {
  if (a.bits != b.bits ||
      a.edges.transitions().size() != b.edges.transitions().size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.edges.transitions().size(); ++i) {
    if (a.edges.transitions()[i].time.ps() !=
            b.edges.transitions()[i].time.ps() ||
        a.edges.transitions()[i].level != b.edges.transitions()[i].level) {
      return false;
    }
  }
  return true;
}

core::Stimulus reference_stimulus(const fault::FaultPlan& plan) {
  core::ChannelConfig config = matrix_config(10.0, kTrees[2], 0.0);
  config.faults = plan;
  core::TestSystem sys(config, kSeed);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  return sys.generate(kStrobeBits);
}

// -- Report sections --------------------------------------------------------

void run_feasibility(ReportTable& table) {
  dig::Dlc dlc;
  dlc.regs().write(dig::reg::kLaneCount, 32);
  const auto lane_rate = dlc.check_lane_rate(GbitsPerSec{10.0});
  table.add_comparison("10 Gbps via 4:1 + 8:1 (32 lanes)",
                       "FPGA I/O must keep its margin",
                       fmt_unit(lane_rate.mbps(), "Mbps/lane", 0),
                       dlc.within_margin(GbitsPerSec{10.0})
                           ? "OK (within margin)"
                           : "DEVIATES");

  // The 2005 parts at 10 Gbps: the negative result motivating the matrix.
  core::ChannelConfig legacy = matrix_config(10.0, kTrees[2], 0.0);
  legacy.buffer.rise_2080 = Picoseconds{100.0};
  legacy.buffer.rj_sigma = Picoseconds{2.6};
  core::TestSystem sys(legacy, kSeed);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  const auto eye = sys.measure_eye(4096);
  const bool usable = eye.eye_opening.ui() >= 0.5 && eye.eye_height.mv() > 0;
  table.add_comparison("2005 mini-tester parts (120 ps rise) at 10 Gbps",
                       "expected NOT usable at UI = 100 ps",
                       "eye " + fmt(eye.eye_opening.ui(), 2) + " UI, height " +
                           fmt(eye.eye_height.mv(), 0) + " mV",
                       usable ? "DEVIATES" : "OK (as expected)");

  const double aggregate_gbps = 64.0 * 10.0;
  table.add_comparison("64 channels x 10 Gbps", "order of Tbps aggregate",
                       fmt(aggregate_gbps / 1000.0, 2) + " Tbps",
                       aggregate_gbps >= 500.0 ? "OK (shape holds)"
                                               : "DEVIATES");
}

void run_matrix(ReportTable& table) {
  std::vector<ana::ScenarioCell> cells;
  for (const double rate : kRates) {
    for (const TreeAxis& tree : kTrees) {
      for (const double severity : kSeverities) {
        core::TestSystem sys(matrix_config(rate, tree, severity), kSeed);
        sys.program_prbs(7, 0xACE1);
        sys.start();
        const auto eye = sys.measure_eye(kEyeBits);
        const core::Stimulus stim = sys.generate(kStrobeBits);
        for (const pecl::TimingMode mode : kModes) {
          const std::uint64_t rig_seed = util::mix_seed(
              kSeed, (static_cast<std::uint64_t>(cells.size()) << 1) |
                         static_cast<std::uint64_t>(mode ==
                                                    pecl::TimingMode::kVernier));
          const StrobeWindow window =
              measure_strobe_window(stim, mode, rig_seed);
          ana::ScenarioCell cell;
          cell.rate = GbitsPerSec{rate};
          cell.tree = tree.name;
          cell.timing_mode = std::string(pecl::to_string(mode));
          cell.severity = severity;
          cell.eye = eye.eye_opening;
          cells.push_back(cell);
          table.add_comparison(
              "matrix-cell " + std::string(tree.name) + " @ " + fmt(rate, 0) +
                  " Gbps, skew x" + fmt(1.0 + severity, 1) + ", " +
                  std::string(pecl::to_string(mode)),
              "shmoo cell",
              "eye " + fmt(eye.eye_opening.ui(), 2) + " UI / " +
                  fmt(eye.eye_width.ps(), 1) + " ps, height " +
                  fmt(eye.eye_height.mv(), 0) + " mV, strobe window " +
                  fmt(window.window_ps, 1) + " ps @ " +
                  fmt(window.step_ps, 2) + " ps step",
              "recorded");
        }
      }
    }
  }

  // Physics cross-checks over the full matrix. The mux skew and jitter are
  // fixed time quantities, so the eye in UI cannot improve as the rate
  // rises or the skew stress grows.
  const UnitIntervals tol{0.05};
  table.add_comparison("matrix monotone in rate",
                       "eye (UI) non-increasing as rate rises",
                       fmt(cells.size(), 0) + " cells checked",
                       ana::eye_nonincreasing_in_rate(cells, tol)
                           ? "OK (monotone)"
                           : "DEVIATES");
  table.add_comparison("matrix monotone in skew severity",
                       "eye (UI) non-increasing as skew stress grows",
                       fmt(cells.size(), 0) + " cells checked",
                       ana::eye_nonincreasing_in_severity(cells, tol)
                           ? "OK (monotone)"
                           : "DEVIATES");
}

void run_dropout_sweep(ReportTable& table) {
  // Mux-dropout fault plan swept through the strobed capture path: more
  // dropped lanes must never *lower* the BER. The sweep starts at serial
  // bit 0 on purpose — it pins the dropout hold-state seeding (a dropout
  // on bit 0 holds the stream's initial level, not a hard zero).
  const std::vector<double> severities = {0.0, 0.25, 0.5, 0.75, 1.0};
  const auto run = [&](double severity) {
    fault::FaultPlan plan(kSeed);
    if (severity > 0.0) {
      plan.schedule({.kind = fault::FaultKind::kMuxDropout,
                     .component = "serializer",
                     .index = fault::FaultSpec::kAllIndices,
                     .severity = severity,
                     .start = 0});
    }
    const core::Stimulus stim = reference_stimulus(plan);
    pecl::ProgrammableDelay delay(
        core::presets::strobe_delay(pecl::TimingMode::kStepped), Rng(kSeed));
    pecl::PeclSampler sampler(pecl::PeclSampler::Config{}, Rng(kSeed ^ 0xBEu));
    sampler.set_threshold(stim.levels.midpoint());
    const BitVector expected =
        stim.bits.slice(kWarmupBits, kStrobeBits - kWarmupBits - 1);
    // Strobe at mid-UI: errors then come from the data, not the placement.
    const auto mid_code = static_cast<std::size_t>(stim.ui.ps() / 2.0 /
                                                   delay.step().ps());
    const Picoseconds first{stim.t0.ps() +
                            static_cast<double>(kWarmupBits) * stim.ui.ps() +
                            delay.actual_delay(mid_code).ps()};
    const auto strobes =
        pecl::PeclSampler::strobe_schedule(first, stim.ui, expected.size());
    const auto capture =
        sampler.capture(stim.edges, stim.chain, stim.levels, strobes);
    return ana::compare_bits_aligned(capture.bits, expected, 4);
  };
  const auto sweep = ana::fault_sweep(severities, run);
  std::string trace;
  for (const auto& p : sweep) {
    trace += (trace.empty() ? "" : " -> ") + fmt(p.ber, 3);
  }
  table.add_comparison("mux dropout BER sweep", "monotone non-decreasing",
                       trace,
                       ana::ber_monotonic_nondecreasing(sweep, 0.02)
                           ? "OK (monotone)"
                           : "DEVIATES");
}

void run_identity_checks(ReportTable& table) {
  // Golden-pin guarantee 1: MGT_THREADS 0/1/8 byte-identity of a vernier
  // cell (stimulus and strobed capture bytes, not summary statistics).
  {
    auto acquire = [&](std::size_t threads) {
      util::ScopedThreads scoped(threads);
      core::Stimulus stim = reference_stimulus(fault::FaultPlan{});
      pecl::ProgrammableDelay delay(
          core::presets::strobe_delay(pecl::TimingMode::kVernier), Rng(kSeed));
      pecl::PeclSampler sampler(pecl::PeclSampler::Config{},
                                Rng(kSeed ^ 0xBEu));
      sampler.set_threshold(stim.levels.midpoint());
      const BitVector expected =
          stim.bits.slice(kWarmupBits, kStrobeBits - kWarmupBits - 1);
      const auto mid_code = static_cast<std::size_t>(stim.ui.ps() / 2.0 /
                                                     delay.step().ps());
      const Picoseconds first{stim.t0.ps() +
                              static_cast<double>(kWarmupBits) *
                                  stim.ui.ps() +
                              delay.actual_delay(mid_code).ps()};
      const auto strobes = pecl::PeclSampler::strobe_schedule(
          first, stim.ui, expected.size());
      const auto capture =
          sampler.capture(stim.edges, stim.chain, stim.levels, strobes);
      return std::make_pair(std::move(stim), capture.bits);
    };
    const auto serial = acquire(0);
    const auto one = acquire(1);
    const auto eight = acquire(8);
    const bool identical = same_stimulus(serial.first, one.first) &&
                           same_stimulus(serial.first, eight.first) &&
                           serial.second == one.second &&
                           serial.second == eight.second;
    table.add_comparison("vernier cell at MGT_THREADS 0/1/8",
                         "byte-identical stimulus + capture",
                         identical ? "all three runs identical" : "diverged",
                         identical ? "OK (deterministic)" : "DEVIATES");
  }

  // Golden-pin guarantee 2: an empty (but seeded) fault plan is
  // byte-identical to no plan at all.
  {
    const core::Stimulus healthy = reference_stimulus(fault::FaultPlan{});
    const core::Stimulus empty_plan =
        reference_stimulus(fault::FaultPlan{12345});
    const bool identical = same_stimulus(healthy, empty_plan);
    table.add_comparison("empty fault plan", "byte-identical to no plan",
                         identical ? "stimulus identical" : "diverged",
                         identical ? "OK (inert)" : "DEVIATES");
  }

  // Golden-pin guarantee 3: with the error models zeroed and binary-exact
  // steps (10 ps vs 0.625 ps), stepped code s and vernier code 16 s
  // program the same delay, so captures at coinciding codes match bytes.
  {
    pecl::ProgrammableDelay::Config stepped_cfg;
    stepped_cfg.step = Picoseconds{10.0};
    stepped_cfg.code_count = 16;
    stepped_cfg.offset_error = Picoseconds{0.0};
    stepped_cfg.gain_error = 0.0;
    stepped_cfg.inl_bound = Picoseconds{0.0};
    stepped_cfg.rj_sigma = Picoseconds{0.0};

    pecl::ProgrammableDelay::Config vernier_cfg = stepped_cfg;
    vernier_cfg.mode = pecl::TimingMode::kVernier;
    vernier_cfg.vernier.step = Picoseconds{0.625};
    vernier_cfg.vernier.code_count = 256;
    vernier_cfg.vernier.ratio_error = 0.0;
    vernier_cfg.vernier.walk_sigma = Picoseconds{0.0};
    vernier_cfg.vernier.walk_bound = Picoseconds{0.0};

    pecl::ProgrammableDelay stepped(stepped_cfg, Rng(kSeed));
    pecl::ProgrammableDelay vernier(vernier_cfg, Rng(kSeed));

    const core::Stimulus stim = reference_stimulus(fault::FaultPlan{});
    const BitVector expected =
        stim.bits.slice(kWarmupBits, kStrobeBits - kWarmupBits - 1);
    bool identical = true;
    for (std::size_t code = 0; code < stepped_cfg.code_count; ++code) {
      if (stepped.actual_delay(code).ps() !=
          vernier.actual_delay(16 * code).ps()) {
        identical = false;
        break;
      }
    }
    if (identical) {
      pecl::PeclSampler sampler_s(pecl::PeclSampler::Config{},
                                  Rng(kSeed ^ 0xBEu));
      pecl::PeclSampler sampler_v(pecl::PeclSampler::Config{},
                                  Rng(kSeed ^ 0xBEu));
      sampler_s.set_threshold(stim.levels.midpoint());
      sampler_v.set_threshold(stim.levels.midpoint());
      const Picoseconds first_s{stim.t0.ps() +
                                static_cast<double>(kWarmupBits) *
                                    stim.ui.ps() +
                                stepped.actual_delay(5).ps()};
      const Picoseconds first_v{stim.t0.ps() +
                                static_cast<double>(kWarmupBits) *
                                    stim.ui.ps() +
                                vernier.actual_delay(80).ps()};
      const auto strobes_s = pecl::PeclSampler::strobe_schedule(
          first_s, stim.ui, expected.size());
      const auto strobes_v = pecl::PeclSampler::strobe_schedule(
          first_v, stim.ui, expected.size());
      identical = sampler_s
                      .capture(stim.edges, stim.chain, stim.levels, strobes_s)
                      .bits ==
                  sampler_v
                      .capture(stim.edges, stim.chain, stim.levels, strobes_v)
                      .bits;
    }
    table.add_comparison("vernier == stepped at coinciding codes",
                         "byte-identical capture (16 x 0.625 ps = 10 ps)",
                         identical ? "delays and capture identical"
                                   : "diverged",
                         identical ? "OK (modes agree)" : "DEVIATES");
  }
}

void bm_eye_10gbps(benchmark::State& state) {
  core::TestSystem sys(matrix_config(10.0, kTrees[2], 0.0), kSeed);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  for (auto _ : state) {
    auto eye = sys.measure_eye(2048);
    benchmark::DoNotOptimize(eye);
  }
}
BENCHMARK(bm_eye_10gbps)->Unit(benchmark::kMillisecond);

void bm_strobe_window_vernier(benchmark::State& state) {
  core::Stimulus stim = reference_stimulus(fault::FaultPlan{});
  for (auto _ : state) {
    auto window =
        measure_strobe_window(stim, pecl::TimingMode::kVernier, kSeed);
    benchmark::DoNotOptimize(window);
  }
}
BENCHMARK(bm_strobe_window_vernier)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Extension - 10 Gbps scenario matrix (Section 1 target)");
  run_feasibility(table);
  run_matrix(table);
  run_dropout_sweep(table);
  run_identity_checks(table);
  return bench::finish(table, argc, argv);
}
