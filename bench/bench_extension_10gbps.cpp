// Extension study: the paper's stated scale-up target (Section 1).
//
// "The end-application will require extending the word width to at least
// 64 bits, and increasing channel data rates to 10 Gbps at each
// wavelength, so that the aggregate data rate will be of the order of a
// Terabit-per-second."
//
// The architecture extends naturally: a 4:1 + 8:1 tree gives 32 DLC lanes
// at 312.5 Mbps for a 10 Gbps serial stream — still inside the FPGA's
// I/O budget. What does NOT extend is the 2005 analog chain: this bench
// quantifies how much faster the output stage and how much tighter the
// mux skew must get before the 100 ps unit interval has a usable eye.
#include "bench_common.hpp"
#include "core/test_system.hpp"
#include "digital/dlc.hpp"
#include "pecl/mux.hpp"

using namespace mgt;

namespace {

core::ChannelConfig ten_gig_config(Picoseconds buffer_rise,
                                   double skew_scale, Picoseconds buffer_rj) {
  core::ChannelConfig config;
  config.rate = GbitsPerSec{10.0};
  config.design_name = "tenGig-extension";

  pecl::SerializerTree::Config tree;
  tree.stages = {pecl::MuxStage{.fan_in = 4,
                                .skew_pp = Picoseconds{12.0 * skew_scale},
                                .rj_sigma = Picoseconds{1.4},
                                .prop_delay = Picoseconds{160.0}},
                 pecl::MuxStage{.fan_in = 8,
                                .skew_pp = Picoseconds{22.0 * skew_scale},
                                .rj_sigma = Picoseconds{1.2},
                                .prop_delay = Picoseconds{220.0}}};
  tree.clock_rj_sigma = Picoseconds{1.0};
  config.serializer = tree;

  config.buffer.rise_2080 = buffer_rise;
  config.buffer.rj_sigma = buffer_rj;
  config.clock.frequency = Gigahertz{2.5};  // rate/4: instrument's ceiling
  config.clock.rj_sigma = Picoseconds{0.8};
  config.hookup = sig::Channel::ideal().config();
  return config;
}

void run_reproduction(ReportTable& table) {
  // Feasibility of the digital side.
  dig::Dlc dlc;
  dlc.regs().write(dig::reg::kLaneCount, 32);
  const auto lane_rate = dlc.check_lane_rate(GbitsPerSec{10.0});
  table.add_comparison("10 Gbps via 4:1 + 8:1 (32 lanes)",
                       "FPGA I/O must keep its margin",
                       fmt_unit(lane_rate.mbps(), "Mbps/lane", 0),
                       dlc.within_margin(GbitsPerSec{10.0})
                           ? "OK (within margin)"
                           : "DEVIATES");

  // Analog chain variants at 10 Gbps.
  struct Variant {
    const char* name;
    Picoseconds rise;
    double skew_scale;
    Picoseconds rj;
  };
  for (const Variant& v :
       {Variant{"2005 mini-tester parts (120 ps rise)", Picoseconds{100.0},
                1.0, Picoseconds{2.6}},
        Variant{"2005 SiGe testbed parts (72 ps rise)", Picoseconds{60.0},
                1.0, Picoseconds{2.4}},
        Variant{"improved: 35 ps rise, same skew", Picoseconds{35.0}, 1.0,
                Picoseconds{1.8}},
        Variant{"improved: 35 ps rise, half skew", Picoseconds{35.0}, 0.5,
                Picoseconds{1.8}}}) {
    core::TestSystem sys(ten_gig_config(v.rise, v.skew_scale, v.rj), 77);
    sys.program_prbs(7, 0xACE1);
    sys.start();
    const auto eye = sys.measure_eye(20000);
    const bool usable = eye.eye_opening.ui() >= 0.5 && eye.eye_height.mv() > 0;
    table.add_comparison(
        v.name, "usable eye at UI = 100 ps?",
        "TJ " + fmt(eye.jitter.peak_to_peak.ps(), 1) + " ps, eye " +
            fmt(eye.eye_opening.ui(), 2) + " UI, height " +
            fmt(eye.eye_height.mv(), 0) + " mV",
        usable ? "usable" : "NOT usable");
  }

  // Aggregate arithmetic of the end application.
  const double aggregate_gbps = 64.0 * 10.0;
  table.add_comparison("64 channels x 10 Gbps", "order of Tbps aggregate",
                       fmt(aggregate_gbps / 1000.0, 2) + " Tbps",
                       aggregate_gbps >= 500.0 ? "OK (shape holds)"
                                               : "DEVIATES");
}

void bm_eye_10gbps(benchmark::State& state) {
  core::TestSystem sys(
      ten_gig_config(Picoseconds{35.0}, 0.5, Picoseconds{1.8}), 77);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  for (auto _ : state) {
    auto eye = sys.measure_eye(2048);
    benchmark::DoNotOptimize(eye);
  }
}
BENCHMARK(bm_eye_10gbps)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Extension - 10 Gbps channels / Terabit aggregate (Section 1 target)");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
