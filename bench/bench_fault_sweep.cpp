// Fault sweep: link BER versus injected fault severity.
//
// The robustness counterpart of the bathtub benches: walk the stuck-lane
// fraction of the mini-tester serializer from healthy (0.0) to fully stuck
// (1.0) and chart how the measured loopback BER degrades. The fault layer's
// two contracts are benchmarked alongside: the sweep must be monotonic
// (severity-selected lane sets are nested) and an EMPTY plan must add zero
// cost to the healthy stimulus path.
#include <vector>

#include "analysis/faultsweep.hpp"
#include "bench_common.hpp"
#include "fault/fault.hpp"
#include "minitester/minitester.hpp"
#include "util/rng.hpp"

using namespace mgt;

namespace {

minitester::MiniTester make_tester(double severity, bool with_plan) {
  minitester::MiniTester::Config config;
  if (with_plan) {
    fault::FaultPlan plan(90);
    plan.schedule({.kind = fault::FaultKind::kMuxStuckAt,
                   .component = "serializer",
                   .severity = severity,
                   .stuck_high = true});
    config.channel.faults = plan;
  }
  return minitester::MiniTester(config, 91);
}

ana::BerResult measure_at(double severity) {
  auto tester = make_tester(severity, true);
  tester.program_prbs(7, 0xACE1F00D);
  tester.start();
  return tester.run_loopback(2048);
}

void run_reproduction(ReportTable& table) {
  const std::vector<double> severities{0.0, 0.125, 0.25, 0.5, 0.75, 1.0};
  const auto sweep = ana::fault_sweep(severities, measure_at);

  for (const auto& point : sweep) {
    table.add_comparison(
        "BER @ stuck-lane fraction " + fmt(point.severity, 2),
        point.severity == 0.0 ? "0 (healthy floor)" : "grows with severity",
        fmt(point.ber, 4) + " (" + std::to_string(point.errors) + "/" +
            std::to_string(point.bits) + ")",
        point.severity == 0.0 ? (point.errors == 0 ? "OK (error free)"
                                                   : "DEVIATES")
                              : "");
  }
  table.add_comparison(
      "BER monotonic in severity", "nondecreasing",
      ana::ber_monotonic_nondecreasing(sweep, 0.02) ? "nondecreasing"
                                                    : "NON-MONOTONIC",
      ana::ber_monotonic_nondecreasing(sweep, 0.02) ? "OK (nested lane sets)"
                                                    : "DEVIATES");
}

// Timing: a full six-point severity sweep (six tester bring-ups plus six
// 2048-bit loopback measurements).
void bm_fault_sweep(benchmark::State& state) {
  const std::vector<double> severities{0.0, 0.125, 0.25, 0.5, 0.75, 1.0};
  for (auto _ : state) {
    const auto sweep = ana::fault_sweep(severities, measure_at);
    benchmark::DoNotOptimize(sweep);
  }
}
BENCHMARK(bm_fault_sweep)->Unit(benchmark::kMillisecond);

// Timing: the empty-plan guarantee. Both loops run the identical healthy
// loopback; the only difference is whether an (empty) FaultPlan object is
// carried in the config. The two timings should be indistinguishable.
void bm_loopback_no_plan(benchmark::State& state) {
  auto tester = make_tester(0.0, false);
  tester.program_prbs(7, 0xACE1F00D);
  tester.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tester.run_loopback(2048));
  }
}
BENCHMARK(bm_loopback_no_plan)->Unit(benchmark::kMillisecond);

void bm_loopback_empty_plan(benchmark::State& state) {
  minitester::MiniTester::Config config;
  config.channel.faults = fault::FaultPlan(12345);  // seeded, no specs
  minitester::MiniTester tester(config, 91);
  tester.program_prbs(7, 0xACE1F00D);
  tester.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tester.run_loopback(2048));
  }
}
BENCHMARK(bm_loopback_empty_plan)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Fault sweep - loopback BER vs stuck-lane severity (5 Gbps tester)");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
