// Fig 13 / Section 4: parallel high-speed wafer probing with arrays of
// miniature testers.
//
// Paper: replicating the mini-tester across die sites lets functional
// testing run in parallel, "increasing production throughput by an order
// of magnitude". Each tester needs only power, one RF clock and USB, and
// leans on the DUT's BIST so few signals per site are required.
#include "bench_common.hpp"
#include "minitester/array.hpp"

using namespace mgt;

namespace {

void run_reproduction(ReportTable& table) {
  constexpr std::size_t kDies = 256;
  constexpr double kTouchdownS = 1.5;
  constexpr double kDieTestS = 0.8;

  const double t1 =
      minitester::TesterArray::wafer_time_s(kDies, 1, kTouchdownS, kDieTestS);
  for (std::size_t sites : {1u, 4u, 16u, 64u}) {
    const double t = minitester::TesterArray::wafer_time_s(
        kDies, sites, kTouchdownS, kDieTestS);
    const double speedup = t1 / t;
    table.add_comparison(
        std::to_string(sites) + "-site array, 256-die wafer",
        sites == 16 ? "order-of-magnitude speedup" : "-",
        fmt(t, 0) + " s  (x" + fmt(speedup, 1) + ")",
        sites == 16 ? (speedup >= 10.0 ? "OK (>= 10x)" : "DEVIATES") : "-");
  }

  // Full-fidelity probe of a small wafer: every die's BIST actually runs
  // through the 5 Gbps signal chain, with defects injected.
  minitester::TesterArray::Config config;
  config.testers = 16;
  config.defect_rate = 0.08;
  config.bist_bits = 256;
  minitester::TesterArray array(config, 7);
  const auto wafer = array.probe_wafer(64);

  table.add_comparison("64-die wafer probed (16 sites)",
                       "parallel functional test",
                       std::to_string(wafer.touchdowns) + " touchdowns, " +
                           fmt(wafer.total_time_s, 1) + " s",
                       wafer.touchdowns == 4 ? "OK (shape holds)"
                                             : "DEVIATES");
  table.add_comparison("defective dies caught", "BIST-based screen",
                       std::to_string(wafer.fails) + " fails, " +
                           std::to_string(wafer.overkills) + " overkill",
                       wafer.overkills == 0 ? "OK (no overkill)"
                                            : "DEVIATES");
  table.add_comparison("throughput", "-",
                       fmt(wafer.dies_per_hour(), 0) + " dies/hour", "-");
}

void bm_bist_per_die(benchmark::State& state) {
  minitester::MiniTester tester(minitester::MiniTester::Config{}, 3);
  tester.program_prbs(7, 0xACE1);
  tester.start();
  for (auto _ : state) {
    auto result = tester.run_bist(256);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(bm_bist_per_die)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto table = bench::make_table(
      "Fig 13 - parallel wafer probing with mini-tester arrays");
  run_reproduction(table);
  return bench::finish(table, argc, argv);
}
