// Quickstart: bring up a multi-gigahertz test system, program a PRBS
// through the USB control path, and take the scope measurements the DATE
// 2005 paper reports.
//
//   $ ./quickstart
//
// Walks the whole architecture: FLASH is programmed over IEEE 1149.1, the
// FPGA boots from it, registers are written over the USB protocol model,
// the DLC's LFSR feeds the PECL 8:1 serializer and SiGe output buffer, and
// the analysis library folds the result into an eye diagram.
#include <cstdio>

#include "core/presets.hpp"
#include "core/test_system.hpp"

int main() {
  using namespace mgt;

  std::printf("== mgt quickstart: optical test bed channel at 2.5 Gbps ==\n\n");

  // 1. Build the tester. The constructor performs the real bring-up
  //    sequence: bitstream -> JTAG -> FLASH -> FPGA boot -> USB check.
  core::TestSystem system(core::presets::optical_testbed(), /*seed=*/2005);
  std::printf("FPGA configured with design '%s'\n",
              system.dlc().design_name().c_str());
  std::printf("USB link alive, DLC ID = 0x%08X\n\n",
              system.usb().read_register(dig::reg::kId));

  // 2. Program a PRBS-7 source and start the pattern engine.
  system.program_prbs(7, 0xACE1);
  system.start();

  // 3. Acquire an eye diagram, exactly like Fig 7 of the paper.
  auto eye = system.acquire_eye(20000);
  const auto metrics = eye.metrics();
  std::printf("Eye at 2.5 Gbps over %zu crossings:\n", metrics.jitter.count);
  std::printf("  crossover jitter : %.1f ps p-p, %.2f ps rms\n",
              metrics.jitter.peak_to_peak.ps(), metrics.jitter.rms.ps());
  std::printf("  usable opening   : %.3f UI (paper: 0.88 UI)\n",
              metrics.eye_opening.ui());
  std::printf("  vertical opening : %.0f mV\n\n", metrics.eye_height.mv());
  std::printf("%s\n", eye.ascii_art(72, 18).c_str());

  // 4. Scope the transition times (Fig 6) and the isolated-edge jitter
  //    (Fig 9).
  const auto rf = system.measure_risefall(4096);
  std::printf("20-80%% transitions: rise %.1f ps, fall %.1f ps "
              "(paper: 70-75 ps)\n",
              rf.rise_mean.ps(), rf.fall_mean.ps());
  const auto edge = system.measure_single_edge_jitter(10000);
  std::printf("single falling edge: %.1f ps p-p / %.2f ps rms "
              "(paper: 24 ps / 3.2 ps)\n",
              edge.peak_to_peak.ps(), edge.rms.ps());

  // 5. Exercise the programmable output stage (Figs 10-11).
  system.program_pattern(BitVector::from_string("11110000"));
  system.start();
  system.buffer().set_swing(Millivolts{400.0});
  const auto amp = system.measure_amplitude(2048);
  std::printf("swing programmed to 400 mV -> measured %.0f mV "
              "(hookup loss included)\n",
              amp.settled_high.mv() - amp.settled_low.mv());
  return 0;
}
