// Data Vortex routing demo: watches one packet spiral through the
// cylinders, then characterizes the fabric under load (refs [4], [5]).
#include <cstdio>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "vortex/fabric.hpp"

int main() {
  using namespace mgt;
  using namespace mgt::vortex;

  std::printf("== Data Vortex: multiple-level minimum-logic network ==\n\n");

  const auto geometry = Geometry::for_heights(16, 4);
  std::printf("Geometry: %zu heights x %zu angles x %zu cylinders "
              "(%zu nodes, 4 routing header bits)\n\n",
              geometry.height_count, geometry.angle_count,
              geometry.cylinder_count, geometry.node_count());

  // --- Trace one packet -----------------------------------------------------
  DataVortex fabric(geometry);
  Packet p;
  p.id = 1;
  p.destination = 0b1011;  // port 11
  fabric.inject(std::move(p), /*port=*/2);
  std::printf("Packet 1: injected at port 2, addressed to port 11 "
              "(header 1011):\n");
  for (int slot = 0; fabric.occupancy() > 0 && slot < 32; ++slot) {
    for (const auto& [node, id] : fabric.snapshot()) {
      std::printf("  slot %2d: cylinder %zu, angle %zu, height %2zu "
                  "(%s)\n",
                  slot, node.cylinder, node.angle, node.height,
                  node.cylinder + 1 == geometry.cylinder_count
                      ? "awaiting ejection"
                      : "routing");
    }
    const auto delivered = fabric.step();
    for (const auto& d : delivered) {
      std::printf("  slot %2d: EJECTED at port %u after %u hops, "
                  "%u deflections\n",
                  slot, d.output_port, d.packet.hops, d.packet.deflections);
    }
  }

  // --- Load characterization -------------------------------------------------
  std::printf("\nLoad sweep (16 ports, 600 slots each):\n");
  std::printf("  %-6s %-12s %-12s %-12s\n", "load", "thr/port", "latency",
              "deflections");
  for (double load : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    DataVortex f(geometry);
    Rng rng(42);
    std::uint64_t id = 1;
    RunningStats latency;
    RunningStats deflections;
    for (int slot = 0; slot < 600; ++slot) {
      for (std::size_t port = 0; port < 16; ++port) {
        if (rng.chance(load)) {
          Packet q;
          q.id = id++;
          q.destination = static_cast<std::uint32_t>(rng.below(16));
          f.inject(std::move(q), port);
        }
      }
      for (const auto& d : f.step()) {
        latency.add(static_cast<double>(d.latency_slots()));
        deflections.add(static_cast<double>(d.packet.deflections));
      }
    }
    std::vector<Delivery> tail;
    f.drain(tail, 100000);
    for (const auto& d : tail) {
      latency.add(static_cast<double>(d.latency_slots()));
      deflections.add(static_cast<double>(d.packet.deflections));
    }
    std::printf("  %-6.1f %-12.3f %-12.2f %-12.2f\n", load,
                static_cast<double>(f.stats().delivered) / 600.0 / 16.0,
                latency.mean(), deflections.mean());
  }
  std::printf("\nEvery packet was delivered to its addressed port; "
              "deflection laps are the only buffering in the fabric.\n");
  return 0;
}
