// Jitter laboratory: the measurement instruments of the analysis library
// applied to the test-bed channel, the way a bring-up engineer works
// through a jitter problem.
//
//   1. take an eye and read total jitter (Fig 7 style),
//   2. isolate a single edge (Fig 9 style) for the RJ floor,
//   3. decompose the eye's TJ into RJ and DJ (dual-Dirac),
//   4. extrapolate the deep-BER eye from a bathtub fit,
//   5. scan the TIE spectrum for periodic tones (clean here; a deliberate
//      tone is injected on a synthetic channel to show detection).
#include <cstdio>

#include "analysis/berextrap.hpp"
#include "analysis/decompose.hpp"
#include "analysis/spectrum.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "minitester/minitester.hpp"
#include "signal/jitter.hpp"
#include "signal/render.hpp"
#include "signal/sinks.hpp"

int main() {
  using namespace mgt;

  std::printf("== Jitter lab: working a 2.5 Gbps channel ==\n\n");

  core::TestSystem sys(core::presets::optical_testbed(), 2005);
  sys.program_prbs(7, 0xACE1);
  sys.start();

  // 1. Total jitter from the eye.
  const auto eye = sys.measure_eye(20000);
  std::printf("1. eye:   TJ %.1f ps p-p over %zu edges -> %.3f UI opening\n",
              eye.jitter.peak_to_peak.ps(), eye.jitter.count,
              eye.eye_opening.ui());

  // 2. RJ floor from an isolated edge.
  const auto edge = sys.measure_single_edge_jitter(10000);
  std::printf("2. edge:  isolated falling edge %.1f ps p-p / %.2f ps rms "
              "(pure RJ)\n",
              edge.peak_to_peak.ps(), edge.rms.ps());

  // 3. Dual-Dirac decomposition of the eye acquisition (back on PRBS —
  //    step 2 reprogrammed the DLC with its isolated-edge pattern).
  sys.program_prbs(7, 0xACE1);
  sys.start();
  const auto stim = sys.generate(24000);
  const sig::PeclLevels rails =
      sig::attenuated(stim.levels, stim.chain.gain());
  sig::CrossingRecorder recorder(rails.midpoint());
  sig::render(stim.edges, stim.chain,
              sig::RenderConfig{.levels = stim.levels},
              Picoseconds{stim.t0.ps() + 16.0 * stim.ui.ps()},
              Picoseconds{stim.t0.ps() + 23999.0 * stim.ui.ps()},
              {&recorder});
  const auto split =
      ana::decompose_jitter(recorder.crossings(), stim.ui, stim.t0);
  std::printf("3. split: RJ %.2f ps rms + DJ(dd) %.1f ps  "
              "(RJ matches step 2: the mux skew is the DJ)\n",
              split.rj_sigma.ps(), split.dj_pp.ps());
  std::printf("          TJ extrapolated to BER 1e-12: %.1f ps\n",
              split.tj_at_ber(1e-12).ps());

  // 4. Bathtub fit on the mini-tester capture path.
  minitester::MiniTester probe(minitester::MiniTester::Config{}, 2005);
  probe.program_prbs(7, 0xACE1);
  probe.start();
  const auto scan = probe.bathtub(4096, 1);
  const auto fit = ana::fit_bathtub(scan, 1e-5);
  if (fit.valid()) {
    std::printf("4. bathtub fit (5 Gbps capture): RJ %.2f ps, eye at BER "
                "1e-12 = %.0f ps of the 200 ps UI\n",
                fit.rj_sigma().ps(), fit.eye_at_ber(1e-12).ps());
  }

  // 5. TIE spectrum: the real channel is clean; a synthetic channel with
  //    a 4 ps tone at 25 MHz shows what contamination looks like.
  const auto clean_tie =
      ana::extract_tie(recorder.crossings(), stim.ui, stim.t0);
  const auto clean_tones =
      ana::find_tones(ana::jitter_spectrum(clean_tie, 256), 8.0);
  std::printf("5. TIE spectrum of the channel: %s\n",
              clean_tones.empty() ? "no periodic tones (clean)"
                                  : "tones detected!");

  sig::JitterSpec dirty;
  dirty.rj_sigma = Picoseconds{2.0};
  dirty.pj_amplitude = Picoseconds{4.0};
  dirty.pj_frequency = Gigahertz{0.025};
  sig::JitterSource source(dirty, Rng(7));
  std::vector<sig::Crossing> contaminated;
  for (std::size_t k = 0; k < 8192; ++k) {
    const Picoseconds nominal{static_cast<double>(k + 1) * 400.0};
    contaminated.push_back({nominal + source.offset(true, nominal), true});
  }
  const auto dirty_tones = ana::find_tones(ana::jitter_spectrum(
      ana::extract_tie(contaminated, Picoseconds{400.0}), 512));
  if (!dirty_tones.empty()) {
    std::printf("   injected 4 ps @ 25 MHz tone -> detected %.1f ps @ "
                "%.1f MHz\n",
                dirty_tones.front().amplitude.ps(),
                dirty_tones.front().frequency.mhz());
  }
  return 0;
}
