// Link resilience demo: CRC framing, ARQ recovery, sync-loss hunting, and
// degraded-mode rate fallback.
//
// Walks the resilient link layer end to end over deterministic fault
// channels: a clean transfer (byte-identical, zero retries), a corrupted
// channel the ARQ fully masks, a sync-loss outage the receiver hunts
// through and re-locks after, a channel bad enough to force the rate
// fallback, and finally the link health report merged into the system
// self-test the way a controlling PC would read it.
#include <cstdio>
#include <vector>

#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "link/link.hpp"
#include "util/rng.hpp"

int main() {
  using namespace mgt;
  using fault::FaultKind;
  using fault::FaultPlan;

  std::printf("== Resilient link layer over the Fig 4 slot format ==\n\n");

  auto make_channel = [](const FaultPlan& plan, link::LinkChannel::Config c) {
    return link::LinkChannel(c, link::make_fault_transport(plan, "link.fwd"),
                             link::make_fault_transport(plan, "link.rev"));
  };
  auto make_payloads = [](std::size_t n, std::size_t bits) {
    Rng rng(7);
    std::vector<BitVector> payloads;
    for (std::size_t i = 0; i < n; ++i) {
      payloads.push_back(BitVector::random(bits, rng));
    }
    return payloads;
  };
  auto show = [](const char* what, const link::LinkChannel& ch) {
    const link::LinkStats s = ch.stats();
    std::printf("%s\n", what);
    std::printf(
        "  offered %llu = delivered %llu + abandoned %llu | retx %llu, "
        "timeouts %llu\n",
        static_cast<unsigned long long>(s.offered),
        static_cast<unsigned long long>(s.delivered),
        static_cast<unsigned long long>(s.abandoned),
        static_cast<unsigned long long>(s.retransmissions),
        static_cast<unsigned long long>(s.timeouts));
    std::printf(
        "  raw FER %.3f -> residual FER %.3f | sync losses %llu, relocks "
        "%llu | %llu slots\n\n",
        s.raw_fer(), s.residual_fer(),
        static_cast<unsigned long long>(s.sync_losses),
        static_cast<unsigned long long>(s.relocks),
        static_cast<unsigned long long>(s.slots));
  };

  // --- 1. Clean channel: byte-identical, zero protocol overhead ----------
  {
    const FaultPlan empty;
    link::LinkChannel ch = make_channel(empty, {});
    const auto payloads = make_payloads(32, ch.codec().user_bits());
    const auto results = ch.transfer(payloads);
    const bool identical = ch.delivered_payloads() == payloads;
    std::printf("Clean channel: %zu/%zu delivered, byte-identical: %s\n",
                results.size(), payloads.size(), identical ? "yes" : "NO");
    show("", ch);
  }

  // --- 2. Corrupted channel: the ARQ masks every damaged frame -----------
  {
    FaultPlan plan(42);
    plan.schedule({.kind = FaultKind::kFrameCorruption,
                   .component = "link.fwd",
                   .severity = 0.003});
    link::LinkChannel ch = make_channel(plan, {});
    const auto payloads = make_payloads(48, ch.codec().user_bits());
    (void)ch.transfer(payloads);
    std::printf("Per-bit corruption 0.003 (~1/3 of frames ruined), "
                "byte-identical after ARQ: %s\n",
                ch.delivered_payloads() == payloads ? "yes" : "NO");
    show("", ch);
  }

  // --- 3. Sync loss: hunt on the guard pattern, then re-lock -------------
  {
    FaultPlan plan(17);
    plan.schedule({.kind = FaultKind::kSyncLoss,
                   .component = "link.fwd",
                   .start = 4,
                   .duration = 8});
    link::LinkChannel::Config config;
    config.sync.hunt_after = 2;
    link::LinkChannel ch = make_channel(plan, config);
    const auto payloads = make_payloads(24, ch.codec().user_bits());
    (void)ch.transfer(payloads);
    std::printf("8-slot frame-bit outage: receiver state '%s'\n",
                std::string(to_string(ch.sync().state())).c_str());
    show("", ch);
  }

  // --- 4. Heavy damage: degraded-mode rate fallback ----------------------
  {
    FaultPlan plan(77);
    plan.schedule({.kind = FaultKind::kFrameCorruption,
                   .component = "link.fwd",
                   .severity = 0.02});
    link::ArqConfig arq;
    arq.max_retries = 2;
    link::LinkChannel::Config config;
    config.arq = arq;
    config.degrade_window = 4;
    link::LinkChannel ch = make_channel(plan, config);
    const auto payloads = make_payloads(32, ch.codec().user_bits());
    (void)ch.transfer(payloads);
    std::printf("Severity 0.02: stepped down %zu rate step(s), UI %.0f ps "
                "-> %.0f ps (%.2f -> %.2f Gbps)\n",
                ch.rate_steps(), ch.config().format.ui.ps(),
                ch.current_ui().ps(),
                GbitsPerSec::from_ui(ch.config().format.ui).gbps(),
                ch.current_rate().gbps());
    show("", ch);

    // --- 5. The health report a controlling PC reads ---------------------
    core::TestSystem sys(core::presets::optical_testbed(), 80);
    fault::HealthReport report = sys.self_test();
    report.merge(ch.health(), "link.");
    std::printf("System self-test with the degraded link merged in:\n%s",
                report.to_string().c_str());
    std::printf("  worst status: %s\n",
                std::string(fault::to_string(report.worst())).c_str());
  }

  return 0;
}
