// Pattern-source engines of the DLC (Section 2).
//
// Three ways the DLC synthesizes stimulus, shown side by side:
//   1. algorithmic state machines (the microcoded sequencer),
//   2. on-chip pattern memory (BRAM banks),
//   3. the optional external SRAM port for patterns too big for BRAM.
// Ends by pushing a sequencer-built pattern through the full 2.5 Gbps
// signal chain.
#include <cstdio>

#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "digital/sequencer.hpp"
#include "digital/sram.hpp"

int main() {
  using namespace mgt;
  using namespace mgt::dig;

  std::printf("== DLC pattern engines ==\n\n");

  // --- 1. Microcoded sequencer ---------------------------------------------
  // A burst test: 8 packets of (preamble "1100" x2, payload PRBS-ish bank,
  // inter-packet gap of 8 zeros), all from a 7-instruction program.
  std::map<std::uint32_t, BitVector> banks;
  banks[0] = BitVector::from_string("1011011000111010");  // payload cell
  TestSequencer sequencer(
      {
          seq::loop_begin(8),
          seq::emit_literal(0b0011, 4),  // preamble "1100" (LSB first)
          seq::emit_literal(0b0011, 4),
          seq::emit_pattern(0, 2),       // payload
          seq::emit_literal(0, 8),       // gap
          seq::loop_end(),
          seq::halt(),
      },
      banks);
  const auto burst = sequencer.run();
  std::printf("sequencer: %zu instructions executed -> %zu bits\n",
              sequencer.steps_executed(), burst.size());
  std::printf("  first packet: %s...\n",
              burst.slice(0, 48).to_string().c_str());

  // --- 2. Pattern memory -----------------------------------------------------
  PatternMemory bram(64 * 1024);
  bram.load(burst.slice(0, 48));
  std::printf("BRAM bank: %zu-bit pattern, looped to 96 bits: tail %s\n",
              bram.pattern().size(),
              bram.read(96).slice(48, 48).to_string().c_str());

  // --- 3. External SRAM -------------------------------------------------------
  SyncSram sram;
  SramPatternStore store(sram);
  std::printf("SRAM port: capacity %.1f Mbit, read latency %zu cycles\n",
              static_cast<double>(store.capacity_bits()) / 1e6,
              sram.config().read_latency);
  const auto cycles_to_store = store.store(0, burst);
  std::uint64_t cycles_to_load = 0;
  const auto reloaded = store.load(0, burst.size(), &cycles_to_load);
  std::printf("  stored %zu bits in %llu cycles, streamed back in %llu "
              "cycles (%s)\n\n",
              burst.size(),
              static_cast<unsigned long long>(cycles_to_store),
              static_cast<unsigned long long>(cycles_to_load),
              reloaded == burst ? "bit-exact" : "MISMATCH");

  // --- Through the full 2.5 Gbps chain ---------------------------------------
  core::TestSystem system(core::presets::optical_testbed(), 42);
  system.program_pattern(burst.slice(0, 160));
  system.start();
  const auto stim = system.generate(1600);
  std::printf("Serialized the sequencer's burst at 2.5 Gbps: %zu edges, "
              "%s\n",
              stim.edges.size(),
              stim.edges.well_formed() ? "well-formed" : "CORRUPT");
  const auto eye = system.measure_eye(12000);
  std::printf("burst-pattern eye: %.1f ps p-p jitter, %.3f UI opening\n",
              eye.jitter.peak_to_peak.ps(), eye.eye_opening.ui());
  return 0;
}
