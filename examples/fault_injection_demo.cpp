// Fault injection demo: deterministic faults, graceful degradation,
// self-test.
//
// Real multi-gigahertz test hardware is characterized by how it fails:
// PECL mux lanes go stuck, probe contacts lift, optical links go dark,
// fabric nodes die. This demo walks the fault layer end to end: a seeded
// FaultPlan scheduling faults across the chain, the self_test() health
// report that spots them, calibration that masks a dead channel instead
// of asserting, a testbed run that reroutes around failed fabric nodes
// with exact packet accounting, a wafer probe that masks a dead pin, and
// a BER-vs-severity sweep showing monotonic degradation.
#include <cstdio>

#include "analysis/faultsweep.hpp"
#include "core/test_system.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "minitester/array.hpp"
#include "minitester/minitester.hpp"
#include "testbed/calibration.hpp"
#include "testbed/testbed.hpp"

int main() {
  using namespace mgt;
  using fault::FaultKind;
  using fault::FaultPlan;

  std::printf("== Deterministic fault injection across the signal chain ==\n\n");

  // --- Self-test: healthy vs faulted stimulus channel --------------------
  // Every block runs a loopback-style check and contributes a verdict; a
  // controlling PC reads the report instead of debugging a silent box.
  {
    core::ChannelConfig healthy = core::presets::optical_testbed();
    core::TestSystem sys(healthy, 11);
    std::printf("Self-test, healthy channel:\n%s\n",
                sys.self_test().to_string().c_str());

    core::ChannelConfig faulted = core::presets::optical_testbed();
    faulted.faults = FaultPlan(42).schedule({.kind = FaultKind::kMuxStuckAt,
                                            .component = "serializer",
                                            .severity = 1.0,
                                            .stuck_high = true});
    core::TestSystem bad(faulted, 11);
    const auto report = bad.self_test();
    std::printf("Self-test, every serializer lane stuck high:\n%s",
                report.to_string().c_str());
    std::printf("  worst status: %s\n\n",
                std::string(fault::to_string(report.worst())).c_str());
  }

  // --- Calibration that masks a dead channel ------------------------------
  // Channel 1's serializer drops out entirely (no transitions). Plain
  // calibrate_transmitter would throw; the recovery variant excludes the
  // dead channel, aligns the rest, and reports what it masked.
  {
    testbed::OpticalTransmitter::Config tx_config;
    tx_config.channel = core::presets::optical_testbed();
    tx_config.channel.faults =
        FaultPlan(7).schedule({.kind = FaultKind::kMuxDropout,
                               .component = "tx.ch1.serializer",
                               .severity = 1.0});
    testbed::OpticalTransmitter tx(tx_config, 123);
    const auto outcome = testbed::calibrate_with_recovery(tx);
    std::printf("Calibration with a dead data channel:\n");
    std::printf("  converged %s after %zu attempt(s), averaging %zu slots\n",
                outcome.converged ? "yes" : "no", outcome.attempts,
                outcome.averaging_slots_used);
    std::printf("  dead channels masked:");
    for (const std::size_t ch : outcome.dead_channels) {
      std::printf(" ch%zu", ch);
    }
    std::printf("\n  healthy() = %s (degraded but usable)\n\n",
                outcome.healthy() ? "true" : "false");
  }

  // --- Testbed run that degrades instead of dying --------------------------
  // 20 % of the vortex nodes fail and one optical channel loses signal.
  // Packets reroute around the dead nodes; every packet is accounted for
  // (injected == delivered + dropped) and the dark channel flatlines
  // instead of aborting the capture.
  {
    testbed::OpticalTestbed::Config config;
    config.faults = FaultPlan(100)
                        .schedule({.kind = FaultKind::kNodeFailure,
                                   .component = "fabric",
                                   .severity = 0.2})
                        .schedule({.kind = FaultKind::kLossOfSignal,
                                   .component = "optics",
                                   .index = 1,
                                   .severity = 1.0});
    testbed::OpticalTestbed bed(config, 31);
    const auto stats = bed.run(0.4, 24);
    std::printf("Testbed run, 20%% failed fabric nodes + dark channel 1:\n");
    std::printf("  injected %llu = delivered %llu + dropped %llu + "
                "in flight %llu (rejected at input: %llu)\n",
                static_cast<unsigned long long>(stats.fabric.injected),
                static_cast<unsigned long long>(stats.fabric.delivered),
                static_cast<unsigned long long>(stats.fabric.dropped),
                static_cast<unsigned long long>(stats.fabric.in_flight()),
                static_cast<unsigned long long>(
                    stats.fabric.rejected_injections));
    std::printf("  signal checks %zu, loss-of-signal events %llu, "
                "payload BER %.4f\n\n",
                stats.signal_checks,
                static_cast<unsigned long long>(stats.los_events),
                stats.payload_ber());
  }

  // --- Wafer probe with a dead pin -----------------------------------------
  // Site 3's pin electronics are dead for the whole run: its dies are
  // masked (flagged for retest), the other 15 sites keep probing.
  {
    minitester::TesterArray::Config config;
    config.faults = FaultPlan(55).schedule({.kind = FaultKind::kDeadPin,
                                            .component = "array",
                                            .index = 3,
                                            .severity = 1.0});
    minitester::TesterArray array(config, 5);
    const auto wafer = array.probe_wafer(64);
    std::printf("Wafer probe, dead pin at site 3 of %zu:\n", config.testers);
    std::printf("  dies %zu, touchdowns %zu, masked for retest %zu, "
                "fails %zu\n\n",
                wafer.dies, wafer.touchdowns, wafer.masked, wafer.fails);
  }

  // --- BER vs fault severity ----------------------------------------------
  // Severity selects a nested set of stuck serializer lanes, so the
  // measured loopback BER must degrade monotonically.
  {
    const std::vector<double> severities{0.0, 0.25, 0.5, 1.0};
    const auto sweep = ana::fault_sweep(severities, [](double severity) {
      minitester::MiniTester::Config config;
      fault::FaultPlan plan(90);
      plan.schedule({.kind = FaultKind::kMuxStuckAt,
                     .component = "serializer",
                     .severity = severity,
                     .stuck_high = true});
      config.channel.faults = plan;
      minitester::MiniTester tester(config, 91);
      tester.program_prbs(7, 0xACE1F00D);
      tester.start();
      return tester.run_loopback(512);
    });
    std::printf("Loopback BER vs stuck-lane fraction:\n");
    for (const auto& point : sweep) {
      std::printf("  severity %.2f -> BER %.4f (%zu/%zu bits)\n",
                  point.severity, point.ber, point.errors, point.bits);
    }
    std::printf("  monotonic nondecreasing: %s\n",
                ana::ber_monotonic_nondecreasing(sweep, 0.02) ? "yes" : "NO");
  }

  return 0;
}
