// Optical Test Bed demo (Section 3 of the paper).
//
// Emulates a parallel slice of a processor-to-memory channel: packets are
// framed per Fig 4, serialized onto five wavelengths at 2.5 Gbps, pushed
// through the Data Vortex optical switching fabric, and recovered by the
// source-synchronous receiver. Prints the slot format, one narrated
// packet journey, and a loaded-fabric run with end-to-end bit accounting.
#include <cstdio>

#include "testbed/calibration.hpp"
#include "testbed/testbed.hpp"
#include "util/rng.hpp"

int main() {
  using namespace mgt;
  using namespace mgt::testbed;

  std::printf("== Optical Test Bed: DLC + PECL driving a Data Vortex ==\n\n");

  // --- The Fig 4 slot format ---------------------------------------------
  const SlotFormat fmt;
  fmt.validate();
  std::printf("Packet slot format (Fig 4):\n");
  std::printf("  slot %.1f ns = dead %.1f + guard %.1f + window %.1f + "
              "guard %.1f\n",
              fmt.slot_duration().ns(),
              static_cast<double>(fmt.dead_bits) * fmt.ui.ns(),
              static_cast<double>(fmt.guard_bits) * fmt.ui.ns(),
              fmt.window_duration().ns(),
              static_cast<double>(fmt.guard_bits) * fmt.ui.ns());
  std::printf("  window = %zu pre-clocks + %zu data bits + %zu post-clocks\n\n",
              fmt.pre_clock_bits, fmt.data_bits, fmt.post_clock_bits);

  // --- Channel deskew calibration ------------------------------------------
  // Bring-up step: align the five high-speed channels with their 10 ps
  // delay lines before trusting any data (Section 3's timing-accuracy
  // requirement in action).
  {
    OpticalTransmitter::Config tx_config;
    tx_config.channel = core::presets::optical_testbed();
    OpticalTransmitter tx(tx_config, 123);
    for (std::size_t ch = 0; ch < kHighSpeedChannels; ++ch) {
      tx.set_channel_delay_code(ch, (ch * 61) % 120);  // as-built skew
    }
    const auto report = calibrate_transmitter(tx);
    std::printf("Channel deskew calibration:\n");
    for (std::size_t ch = 0; ch < kHighSpeedChannels; ++ch) {
      std::printf("  ch%zu: skew %+7.1f ps -> code %4zu -> residual "
                  "%+5.1f ps\n",
                  ch, report.initial_skew[ch].ps(),
                  report.programmed_codes[ch], report.residual_skew[ch].ps());
    }
    std::printf("  worst residual %.1f ps (paper's accuracy target: "
                "+-25 ps)\n\n",
                report.worst_residual().ps());
  }

  // --- One packet, end to end --------------------------------------------
  OpticalTestbed testbed(OpticalTestbed::Config{}, /*seed=*/7);
  Rng rng(99);
  TestbedPacket packet;
  for (auto& lane : packet.payload) {
    lane = BitVector::random(fmt.data_bits, rng);
  }
  packet.header = 0xB;

  const auto budget = vortex::compute_link_budget(
      testbed.config().laser, testbed.config().path,
      testbed.config().detector);
  std::printf("Optical link budget: launch %+.1f dBm, loss %.2f dB, "
              "received %+.2f dBm, margin %.1f dB\n",
              budget.launch_dbm, budget.loss_db, budget.received_dbm,
              budget.margin_db());

  const auto single = testbed.send_one(packet);
  std::printf("Single packet to port %u: captured=%s frame=%s header=%s, "
              "%zu payload bit errors in %zu bits\n\n",
              packet.header, single.captured ? "yes" : "no",
              single.frame_ok ? "ok" : "BAD",
              single.header_ok ? "ok" : "BAD", single.payload_bit_errors,
              kDataChannels * fmt.data_bits);

  // --- Loaded fabric run ---------------------------------------------------
  std::printf("Running 400 slots of random traffic at 50%% offered load...\n");
  const auto stats = testbed.run(0.5, 400);
  std::printf("  injected  : %llu packets\n",
              static_cast<unsigned long long>(stats.fabric.injected));
  std::printf("  delivered : %llu (every packet at its addressed port)\n",
              static_cast<unsigned long long>(stats.fabric.delivered));
  std::printf("  latency   : mean %.2f slots (%.0f ns), min %llu, max %llu\n",
              stats.mean_latency_slots,
              stats.mean_latency_slots * fmt.slot_duration().ns(),
              static_cast<unsigned long long>(stats.min_latency_slots),
              static_cast<unsigned long long>(stats.max_latency_slots));
  std::printf("  deflection: mean %.2f per packet (virtual buffering)\n",
              stats.mean_deflections);
  std::printf("  signal-path checks: %zu packets re-sent through the full\n"
              "  TX -> E/O -> fiber -> O/E -> RX chain: %zu bit errors "
              "(BER %.2e)\n",
              stats.signal_checks, stats.payload_bit_errors,
              stats.payload_ber());

  // --- Degraded signaling study (what the test bed is *for*) ---------------
  std::printf("\nCharacterizing under reduced swing "
              "(Fig 11-style stress):\n");
  for (double swing : {800.0, 400.0, 200.0}) {
    // Rebuild the test bed with the TX output buffers programmed to a
    // reduced swing (the Fig 11 control used as a stress knob).
    OpticalTestbed::Config config;
    config.channel.buffer.levels =
        sig::PeclLevels{}.with_swing(Millivolts{swing});
    OpticalTestbed stressed(config, 11);
    TestbedPacket probe;
    Rng prng(5);
    for (auto& lane : probe.payload) {
      lane = BitVector::random(fmt.data_bits, prng);
    }
    probe.header = 0x5;
    const auto result = stressed.send_one(probe);
    std::printf("  swing %.0f mV: %zu bit errors, frame %s\n", swing,
                result.payload_bit_errors, result.frame_ok ? "ok" : "lost");
  }
  return 0;
}
