// Miniature wafer-probe tester demo (Section 4 of the paper).
//
// The self-contained tester on the probe card: 5 Gbps stimulus through the
// 2x8:1 + 2:1 PECL mux tree, capture by the picosecond sampling circuit,
// strobe centering, bathtub scan, BIST production screen on good and
// defective dies, a shmoo plot, and a parallel-array wafer probe.
#include <cstdio>

#include "minitester/array.hpp"
#include "minitester/minitester.hpp"
#include "minitester/shmoo.hpp"
#include "minitester/wafermap.hpp"

int main() {
  using namespace mgt;
  using namespace mgt::minitester;

  std::printf("== Miniature WLP tester: 5 Gbps on the probe card ==\n\n");

  MiniTester tester(MiniTester::Config{}, /*seed=*/2005);
  tester.program_prbs(7, 0xACE1);
  tester.start();

  // --- Strobe centering -----------------------------------------------------
  const auto code = tester.center_strobe();
  std::printf("Strobe centered at delay code %zu (%zu x 10 ps into the "
              "200 ps UI)\n",
              code, code);
  const auto ber = tester.run_loopback(4096);
  std::printf("Loopback through the compliant leads: %zu errors in %zu bits "
              "(BER %.1e)\n\n",
              ber.errors, ber.bits_compared, ber.ber());

  // --- Bathtub ---------------------------------------------------------------
  std::printf("Bathtub scan (strobe swept across the UI in 10 ps codes):\n");
  const auto scan = tester.bathtub(1024, 1);
  for (const auto& p : scan) {
    const int bars = p.ber <= 0.0 ? 0 : static_cast<int>(p.ber * 40.0) + 1;
    std::printf("  %3.0f ps |%-12s| BER %.3f\n", p.strobe_offset.ps(),
                std::string(static_cast<std::size_t>(bars), '#').c_str(),
                p.ber);
  }
  std::printf("\n");

  // --- Eye through the DUT -----------------------------------------------
  const auto eye = tester.measure_loopback_eye(12000);
  std::printf("Loopback eye at 5 Gbps: %.1f ps p-p jitter, %.3f UI opening\n"
              "(bare TX eye in the paper's Fig 19: 0.75 UI; the DUT's leads "
              "cost a little more)\n\n",
              eye.jitter.peak_to_peak.ps(), eye.eye_opening.ui());

  // --- BIST production screen ----------------------------------------------
  std::printf("BIST screen (MISR signature compare):\n");
  struct Die {
    const char* label;
    Defect defect;
  };
  for (const Die& die : {Die{"good die", Defect::None},
                         Die{"stuck-low lead", Defect::StuckLow},
                         Die{"cracked (slow) lead", Defect::SlowLead},
                         Die{"weak driver", Defect::WeakDrive}}) {
    MiniTester::Config config;
    config.dut.defect = die.defect;
    MiniTester site(config, 77);
    site.program_prbs(7, 0xBEEF);
    site.start();
    const auto bist = site.run_bist(512);
    std::printf("  %-20s signature %04X vs golden %04X -> %s\n", die.label,
                bist.actual, bist.expected, bist.pass() ? "PASS" : "FAIL");
  }
  std::printf("\n");

  // --- Shmoo: strobe position vs swing --------------------------------------
  std::printf("Shmoo: strobe code (x) vs programmed swing (y), '.'=pass:\n");
  std::vector<double> xs;
  for (double c = 0.0; c <= 20.0; c += 2.0) {
    xs.push_back(c);
  }
  const auto shmoo = run_shmoo(
      "strobe code", xs, "swing mV", {800.0, 600.0, 400.0, 200.0},
      [](double strobe_code, double swing) {
        MiniTester::Config config;
        config.channel.buffer.levels =
            sig::PeclLevels{}.with_swing(Millivolts{swing});
        MiniTester site(config, 13);
        site.program_prbs(7, 0xACE1);
        site.start();
        site.set_strobe_code(static_cast<std::size_t>(strobe_code));
        return site.run_loopback(512).ber();
      });
  std::printf("%s  pass fraction: %.0f %%\n\n",
              shmoo.ascii_art(1e-6).c_str(),
              100.0 * shmoo.pass_fraction(1e-6));

  // --- Parallel wafer probing (Fig 13) ---------------------------------------
  TesterArray::Config array_config;
  array_config.testers = 16;
  array_config.defect_rate = 0.06;
  array_config.bist_bits = 256;
  TesterArray array(array_config, 2005);
  const auto wafer = array.probe_wafer(128);
  const double serial_time = TesterArray::wafer_time_s(
      128, 1, array_config.touchdown_overhead_s, array_config.per_die_test_s);
  std::printf("Parallel probe of a 128-die wafer with a 16-site array:\n");
  std::printf("  %zu touchdowns, %.0f s total (vs %.0f s single-site: "
              "x%.1f throughput)\n",
              wafer.touchdowns, wafer.total_time_s, serial_time,
              serial_time / wafer.total_time_s);
  std::printf("  %zu fails, %zu overkills, %zu escapes, %.0f dies/hour\n\n",
              wafer.fails, wafer.overkills, wafer.escapes,
              wafer.dies_per_hour());

  // --- Wafer map with clustered defects --------------------------------------
  WaferMap::Config map_config;
  map_config.diameter_dies = 24;
  map_config.background_defect_rate = 0.02;
  map_config.cluster_count = 2;
  WaferMap map(map_config, Rng(77));
  const auto outcome = map.probe(16, [](Defect defect) {
    // The BIST screen catches everything except marginal weak drivers.
    return defect == Defect::None || defect == Defect::WeakDrive;
  });
  std::printf("Wafer map (%zu dies, %zu defective, clustered):\n%s",
              map.die_count(), map.defect_count(),
              outcome.ascii_art().c_str());
  std::printf("yield %.1f %% over %zu touchdowns\n", outcome.yield * 100.0,
              outcome.touchdowns);
  return 0;
}
