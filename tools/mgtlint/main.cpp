// mgtlint CLI: walks the given files/directories, reads every .cpp/.hpp/.h
// once, runs the per-file rules on each buffer plus the cross-TU rule
// families over the combined project index, and prints findings as
// `file:line:col: [rule] message`.
//
//   mgtlint [options] <file-or-dir>...
//
//   --list-rules            print the rule catalog and exit
//   --stats                 print per-rule finding counts and parse timing
//   --sarif FILE            also write the findings as SARIF 2.1.0 JSON
//   --baseline FILE         suppress findings fingerprinted in FILE
//   --write-baseline FILE   snapshot current findings to FILE and exit 0
//   --fix                   apply mechanical fixes for fixable rules in place
//   --quiet                 suppress the summary line
//
// Exit codes: 0 = clean (or baseline written / fixes applied), 1 = findings
// remain after baseline filtering, 2 = usage or I/O error.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.hpp"
#include "lint.hpp"
#include "sarif.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

void collect(const fs::path& root, std::vector<std::string>& files) {
  if (fs::is_directory(root)) {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        files.push_back(entry.path().generic_string());
      }
    }
  } else {
    files.push_back(root.generic_string());
  }
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << content;
  return out.good();
}

void usage() {
  std::printf(
      "usage: mgtlint [options] <file-or-dir>...\n"
      "  --list-rules            print the rule catalog and exit\n"
      "  --stats                 print per-rule counts and timing\n"
      "  --sarif FILE            write findings as SARIF 2.1.0 JSON\n"
      "  --baseline FILE         suppress findings listed in FILE\n"
      "  --write-baseline FILE   snapshot findings to FILE, exit 0\n"
      "  --fix                   apply mechanical fixes in place\n"
      "  --quiet                 suppress the summary line\n"
      "exit codes: 0 clean, 1 findings, 2 usage/io error\n");
}

/// Applies fixes back-to-front per file so earlier byte offsets stay valid,
/// then rewrites the files. Returns the number of fixes applied.
std::size_t apply_fixes(const std::vector<mgtlint::Diagnostic>& diags,
                        std::map<std::string, std::string>& contents) {
  std::map<std::string, std::vector<const mgtlint::Diagnostic*>> by_file;
  for (const auto& d : diags) {
    if (d.fix) {
      by_file[d.file].push_back(&d);
    }
  }
  std::size_t applied = 0;
  for (auto& [file, list] : by_file) {
    auto it = contents.find(file);
    if (it == contents.end()) {
      continue;
    }
    std::sort(list.begin(), list.end(),
              [](const mgtlint::Diagnostic* a, const mgtlint::Diagnostic* b) {
                return a->fix->begin > b->fix->begin;
              });
    std::string& src = it->second;
    for (const auto* d : list) {
      if (d->fix->end > src.size() || d->fix->begin > d->fix->end) {
        continue;  // stale offsets: never corrupt a file
      }
      src.replace(d->fix->begin, d->fix->end - d->fix->begin,
                  d->fix->replacement);
      ++applied;
    }
    if (!write_file(file, src)) {
      std::fprintf(stderr, "mgtlint: cannot rewrite %s\n", file.c_str());
    }
  }
  return applied;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  bool quiet = false;
  bool stats = false;
  bool fix = false;
  std::string sarif_path;
  std::string baseline_path;
  std::string write_baseline_path;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--list-rules") {
      for (const auto& r : mgtlint::rule_catalog()) {
        std::printf("%-32.*s %s%s%.*s\n", static_cast<int>(r.id.size()),
                    r.id.data(), r.fixable ? "[fixable] " : "",
                    r.cross_tu ? "[cross-tu] " : "",
                    static_cast<int>(r.summary.size()), r.summary.data());
      }
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    if (arg == "--stats") {
      stats = true;
      continue;
    }
    if (arg == "--fix") {
      fix = true;
      continue;
    }
    if (arg == "--sarif" || arg == "--baseline" || arg == "--write-baseline") {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "mgtlint: %s needs a file argument\n",
                     arg.c_str());
        return 2;
      }
      const std::string value = argv[++a];
      if (arg == "--sarif") {
        sarif_path = value;
      } else if (arg == "--baseline") {
        baseline_path = value;
      } else {
        write_baseline_path = value;
      }
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    }
    if (!fs::exists(arg)) {
      std::fprintf(stderr, "mgtlint: no such path: %s\n", arg.c_str());
      return 2;
    }
    collect(arg, files);
  }
  if (files.empty()) {
    std::fprintf(stderr, "mgtlint: no input files (see --help)\n");
    return 2;
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // One read per file: lint_project wants every buffer at once so the
  // cross-TU index sees the whole project.
  std::vector<mgtlint::ProjectInput> inputs;
  std::map<std::string, std::string> contents;
  for (const auto& file : files) {
    std::string text;
    if (!read_file(file, text)) {
      std::fprintf(stderr, "mgtlint: cannot read %s\n", file.c_str());
      return 2;
    }
    contents[file] = text;
    inputs.push_back({file, std::move(text)});
  }

  // Timing for --stats only; everything the linter *reports* is
  // deterministic, the wall clock never reaches a finding.
  const auto t0 = std::chrono::steady_clock::now();  // mgtlint:allow(no-wall-clock)
  std::vector<mgtlint::Diagnostic> diags = mgtlint::lint_project(inputs);
  const auto t1 = std::chrono::steady_clock::now();  // mgtlint:allow(no-wall-clock)

  if (!write_baseline_path.empty()) {
    if (!write_file(write_baseline_path, mgtlint::write_baseline(diags))) {
      std::fprintf(stderr, "mgtlint: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    if (!quiet) {
      std::fprintf(stderr, "mgtlint: baselined %zu finding(s) to %s\n",
                   diags.size(), write_baseline_path.c_str());
    }
    return 0;
  }

  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, text)) {
      std::fprintf(stderr, "mgtlint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    diags = mgtlint::apply_baseline(diags, mgtlint::parse_baseline(text));
  }

  for (const auto& diag : diags) {
    const std::string text = mgtlint::format_diagnostic(diag);
    std::printf("%s\n", text.c_str());
  }

  if (!sarif_path.empty() &&
      !write_file(sarif_path, mgtlint::to_sarif(diags))) {
    std::fprintf(stderr, "mgtlint: cannot write %s\n", sarif_path.c_str());
    return 2;
  }

  std::size_t fixed = 0;
  if (fix) {
    fixed = apply_fixes(diags, contents);
  }

  if (stats) {
    std::map<std::string, std::size_t> per_rule;
    for (const auto& d : diags) {
      ++per_rule[d.rule];
    }
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        t1 - t0)
                        .count();
    std::fprintf(stderr, "mgtlint stats:\n");
    std::fprintf(stderr, "  files scanned : %zu\n", files.size());
    std::fprintf(stderr, "  lint+parse    : %lld ms\n",
                 static_cast<long long>(ms));
    std::fprintf(stderr, "  findings      : %zu\n", diags.size());
    for (const auto& [rule, n] : per_rule) {
      std::fprintf(stderr, "    %-32s %zu\n", rule.c_str(), n);
    }
    if (fix) {
      std::fprintf(stderr, "  fixes applied : %zu\n", fixed);
    }
  }
  if (!quiet) {
    std::fprintf(stderr, "mgtlint: %zu file(s), %zu finding(s)%s\n",
                 files.size(), diags.size(),
                 fix ? (", " + std::to_string(fixed) + " fixed").c_str()
                     : "");
  }
  return diags.empty() ? 0 : 1;
}
