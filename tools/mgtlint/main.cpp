// mgtlint CLI: walks the given files/directories, lints every .cpp/.hpp/.h,
// prints findings as `file:line:col: [rule] message`, and exits non-zero
// when anything fired. Usage:
//
//   mgtlint [--list-rules] [--quiet] <file-or-dir>...
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h";
}

void collect(const fs::path& root, std::vector<std::string>& files) {
  if (fs::is_directory(root)) {
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        files.push_back(entry.path().generic_string());
      }
    }
  } else {
    files.push_back(root.generic_string());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  bool quiet = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--list-rules") {
      for (const auto rule : mgtlint::all_rules()) {
        std::printf("%.*s\n", static_cast<int>(rule.size()), rule.data());
      }
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: mgtlint [--list-rules] [--quiet] <file-or-dir>...\n");
      return 0;
    }
    if (!fs::exists(arg)) {
      std::fprintf(stderr, "mgtlint: no such path: %s\n", arg.c_str());
      return 2;
    }
    collect(arg, files);
  }
  if (files.empty()) {
    std::fprintf(stderr, "mgtlint: no input files (see --help)\n");
    return 2;
  }
  std::sort(files.begin(), files.end());

  std::size_t findings = 0;
  for (const auto& file : files) {
    for (const auto& diag : mgtlint::lint_file(file)) {
      ++findings;
      const std::string text = mgtlint::format_diagnostic(diag);
      std::printf("%s\n", text.c_str());
    }
  }
  if (!quiet) {
    std::fprintf(stderr, "mgtlint: %zu file(s), %zu finding(s)\n",
                 files.size(), findings);
  }
  return findings == 0 ? 0 : 1;
}
