// mgtlint baseline files: checked-in suppression of known findings.
//
// A baseline entry fingerprints one finding as
//
//   (rule, repo-relative path, FNV-1a hash of the trimmed source line,
//    occurrence ordinal among findings sharing that triple)
//
// which survives unrelated edits moving the finding to a different line
// number. The file format is line-oriented and diff-friendly:
//
//   # mgtlint baseline v1
//   <rule> <path> <hash16hex> <ordinal>
//
// Workflow: `mgtlint --write-baseline mgtlint.baseline <paths>` snapshots
// the current findings; later runs with `--baseline mgtlint.baseline`
// report only findings not in the snapshot, so CI fails on *new* debt
// while existing debt is paid down incrementally (shrink-only file).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lint.hpp"

namespace mgtlint {

struct BaselineEntry {
  std::string rule;
  std::string path;  // repo-relative
  std::uint64_t line_hash = 0;
  std::size_t ordinal = 0;
};

/// Parses a baseline document. Unparseable lines are skipped (a stale or
/// hand-mangled entry must never turn the linter off wholesale); comments
/// (#) and blank lines are ignored.
std::vector<BaselineEntry> parse_baseline(std::string_view text);

/// Serializes findings to baseline format, sorted, with the v1 header.
std::string write_baseline(const std::vector<Diagnostic>& diags);

/// Drops every diagnostic matched by the baseline. Matching assigns
/// ordinals per (rule, path, hash) key in diagnostic order, mirroring
/// write_baseline, so k baselined occurrences of an identical line
/// suppress exactly the first k.
std::vector<Diagnostic> apply_baseline(
    const std::vector<Diagnostic>& diags,
    const std::vector<BaselineEntry>& baseline);

}  // namespace mgtlint
