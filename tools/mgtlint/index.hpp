// mgtlint cross-TU index: the project-wide half of the v2 analyzer.
//
// lint_project parses every input buffer (parse.hpp), hands the parsed
// units here, and this module builds one symbol index over all of them —
// function declarations by name, taint facts (which functions derive values
// from wall-clock/rand sources, transitively through value-returning
// calls), global-mutation facts, and the set of strong unit types — then
// runs the three cross-TU rule families against it:
//
//   no-shared-mutation-in-parallel  a lambda handed to util::parallel_for /
//                                   ThreadPool::run mutates shared state
//                                   without the per-task-slot idiom, either
//                                   directly or by calling a function (any
//                                   file) that writes a TU global / local
//                                   static
//   no-nondet-flow                  a deterministic sink (obs metric update,
//                                   Rng seeding) consumes the value of a
//                                   function that — possibly several calls
//                                   and files away — reads the wall clock
//                                   or libc rand
//   unit-flow-raw-double            a call passes a unit-carrying value
//                                   (`t.ps()`, `delay_ps`) to a raw double
//                                   parameter of a function declared in a
//                                   header, i.e. a unit-blind public API
//
// Every rule here fails silent on parse uncertainty: no resolution, no
// finding.
#pragma once

#include <vector>

#include "lint.hpp"
#include "parse.hpp"

namespace mgtlint {

/// One parsed buffer plus its repo classification.
struct ParsedUnit {
  ParsedFile parsed;
  FileKind kind;
};

/// Runs the cross-TU rule families over the whole project. Diagnostics
/// respect `mgtlint:allow(...)` comments at the reported line.
std::vector<Diagnostic> run_project_rules(const std::vector<ParsedUnit>& units);

}  // namespace mgtlint
