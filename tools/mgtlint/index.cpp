#include "index.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace mgtlint {

namespace {

// --------------------------------------------------------------- helpers --

bool in_src(FileKind k) {
  return k == FileKind::kSourceHeader || k == FileKind::kSourceImpl;
}

bool wallclock_source(std::string_view name) {
  return name == "steady_clock" || name == "system_clock" ||
         name == "high_resolution_clock" || name == "clock_gettime" ||
         name == "gettimeofday" || name == "rdtsc" || name == "__rdtsc" ||
         name == "random_device";
}

/// Generic container/observer method names that resolve to many unrelated
/// classes; the unit-flow rule never fires through them (a histogram may
/// legitimately observe picosecond values).
bool generic_method_name(std::string_view name) {
  static const std::set<std::string_view> kGeneric = {
      "observe", "add",     "set",     "record",  "push_back", "emplace_back",
      "insert",  "push",    "emplace", "count",   "resize",    "reserve",
      "fill",    "assign",  "append",  "at",      "store",     "exchange",
  };
  return kGeneric.count(name) != 0U;
}

// ------------------------------------------------------- the symbol index --

/// Facts merged per unqualified function name across every TU. Merging by
/// unqualified name over-approximates (overloads and same-named methods
/// share facts), which is safe for taint (worst case: an extra finding a
/// human reviews) and is compensated in unit-flow by demanding that every
/// known declaration agrees before firing.
struct FuncFact {
  bool returns_value = false;
  // Determinism taint: depth 0 = body reads a clock/rand source itself,
  // depth n = calls a value-returning function of depth n-1.
  int taint_depth = -1;
  std::string taint_source;  // "steady_clock", "rand", ...
  std::string taint_source_file;
  std::size_t taint_source_line = 0;
  std::string taint_via;  // callee that carried the taint (depth > 0)
  // Shared-state mutation: the function writes a namespace-scope variable
  // or a function-local static.
  std::string mutates;  // variable name, "" if none
  std::string mutates_file;
  std::size_t mutates_line = 0;
  std::set<std::string> called;  // union over defs with this name
};

struct DeclSig {
  std::string file;
  FileKind kind;
  std::size_t line;
  std::vector<Param> params;
};

struct Index {
  std::map<std::string, FuncFact> facts;
  std::map<std::string, std::vector<DeclSig>> decls;
  std::set<std::string> unit_types;
};

/// Direct taint: does this body read a nondeterminism source? Fills
/// source/file/line on the first hit.
/// Names declared with std::atomic anywhere in the buffer. Mutating an
/// atomic from parallel tasks is race-free (and the repo only uses atomics
/// for commutative counters), so the mutation family exempts them.
std::set<std::string> atomic_names(const ParsedFile& f) {
  std::set<std::string> out;
  const auto& toks = f.lexed.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdent || toks[i].text != "atomic") {
      continue;
    }
    // atomic<int> name{0};  /  atomic_bool name = ...;
    std::size_t k = i + 1;
    if (k < toks.size() && toks[k].text == "<") {
      int depth = 0;
      for (; k < toks.size(); ++k) {
        if (toks[k].text == "<") {
          ++depth;
        } else if (toks[k].text == ">" && --depth == 0) {
          ++k;
          break;
        }
      }
    }
    if (k < toks.size() && toks[k].kind == TokKind::kIdent) {
      out.insert(std::string(toks[k].text));
    }
  }
  return out;
}

bool scan_direct_taint(const ParsedFile& f, const FunctionInfo& fn,
                       FuncFact& fact) {
  const auto& toks = f.lexed.tokens;
  for (std::size_t i = fn.body_begin; i < fn.body_end && i < toks.size();
       ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) {
      continue;
    }
    const bool member = i > 0 && (toks[i - 1].text == "." ||
                                  toks[i - 1].text == "->");
    const bool call_next =
        i + 1 < toks.size() && toks[i + 1].text == "(";
    const bool libc_source =
        (t.text == "time" || t.text == "rand" || t.text == "srand") &&
        call_next && !member;
    if (wallclock_source(t.text) || libc_source) {
      fact.taint_depth = 0;
      fact.taint_source = std::string(t.text);
      fact.taint_source_file = repo_relative(f.path);
      fact.taint_source_line = t.line;
      return true;
    }
  }
  return false;
}

Index build_index(const std::vector<ParsedUnit>& units) {
  Index idx;
  // Builtin seed: the strong types of util/units.hpp, so the rules work
  // even when units.hpp is outside the linted file set.
  for (const char* t : {"Picoseconds", "Millivolts", "Gigahertz",
                        "UnitIntervals", "MvPerPs", "GbitsPerSec"}) {
    idx.unit_types.insert(t);
  }
  for (const auto& u : units) {
    for (const auto& t : u.parsed.unit_types) {
      idx.unit_types.insert(t);
    }
    const std::set<std::string> atomics = atomic_names(u.parsed);
    for (const auto& fn : u.parsed.functions) {
      FuncFact& fact = idx.facts[fn.name];
      if (!fn.returns_void) {
        fact.returns_value = true;
      }
      fact.called.insert(fn.called.begin(), fn.called.end());
      if (fn.has_body && fact.taint_depth != 0) {
        scan_direct_taint(u.parsed, fn, fact);
      }
      if (fact.mutates.empty()) {
        if (!fn.writes_global.empty() &&
            atomics.count(fn.writes_global) == 0U) {
          fact.mutates = fn.writes_global;
          fact.mutates_file = repo_relative(u.parsed.path);
          fact.mutates_line = fn.line;
        } else if (!fn.writes_static_local.empty() &&
                   atomics.count(fn.writes_static_local) == 0U) {
          fact.mutates = fn.writes_static_local;
          fact.mutates_file = repo_relative(u.parsed.path);
          fact.mutates_line = fn.line;
        }
      }
      idx.decls[fn.name].push_back({u.parsed.path, u.kind, fn.line,
                                    fn.params});
    }
  }
  // Transitive taint: caller inherits taint from any value-returning
  // callee. Bounded fixpoint — depth beyond a handful adds no information.
  for (int pass = 0; pass < 8; ++pass) {
    bool changed = false;
    for (auto& [name, fact] : idx.facts) {
      for (const auto& callee : fact.called) {
        const auto it = idx.facts.find(callee);
        if (it == idx.facts.end() || it->second.taint_depth < 0 ||
            !it->second.returns_value || callee == name) {
          continue;
        }
        const int depth = it->second.taint_depth + 1;
        if (fact.taint_depth < 0 || depth < fact.taint_depth) {
          fact.taint_depth = depth;
          fact.taint_source = it->second.taint_source;
          fact.taint_source_file = it->second.taint_source_file;
          fact.taint_source_line = it->second.taint_source_line;
          fact.taint_via = callee;
          changed = true;
        }
      }
    }
    if (!changed) {
      break;
    }
  }
  return idx;
}

// ---------------------------------------------------------- rule running --

class ProjectRules {
 public:
  explicit ProjectRules(const std::vector<ParsedUnit>& units)
      : units_(units), idx_(build_index(units)) {}

  std::vector<Diagnostic> run() {
    for (const auto& u : units_) {
      check_parallel_lambdas(u);
      check_sinks(u);
      check_unit_flow(u);
    }
    return std::move(diags_);
  }

 private:
  void report(const ParsedUnit& u, std::size_t line, std::size_t column,
              std::string_view rule, std::string message) {
    const auto it = u.parsed.lexed.allow.find(line);
    if (it != u.parsed.lexed.allow.end() &&
        it->second.count(std::string(rule))) {
      return;
    }
    diags_.push_back({u.parsed.path, line, column, std::string(rule),
                      std::move(message),
                      hash_source_line(*u.parsed.source, line),
                      std::nullopt});
  }

  // --- family 1: parallel-capture discipline ---

  static bool is_parallel_submit(const LambdaSite& lam) {
    if (lam.passed_to == "parallel_for" || lam.passed_to == "parallel_map" ||
        lam.passed_to == "parallel_ordered_reduce") {
      return true;
    }
    // ThreadPool::run(n, task) / executor submit().
    return (lam.passed_to == "run" || lam.passed_to == "submit") &&
           lam.passed_member;
  }

  void check_parallel_lambdas(const ParsedUnit& u) {
    std::set<std::string> tu_globals;
    for (const auto& g : u.parsed.globals) {
      tu_globals.insert(g.name);
    }
    const std::set<std::string> atomics = atomic_names(u.parsed);
    for (std::size_t li = 0; li < u.parsed.lambdas.size(); ++li) {
      const LambdaSite& lam = u.parsed.lambdas[li];
      if (!is_parallel_submit(lam)) {
        continue;
      }
      // (a) Direct mutation of shared state in the body. Writes through a
      // `[index]` subscript never land here: that is the sanctioned
      // per-task-slot idiom of parallel_ordered_reduce.
      for (const auto& w : lam.unsubscripted_writes) {
        if (atomics.count(w) != 0U) {
          continue;  // race-free by construction
        }
        const bool ref_captured =
            lam.default_ref ||
            std::find(lam.ref_captures.begin(), lam.ref_captures.end(), w) !=
                lam.ref_captures.end();
        const bool copy_captured =
            std::find(lam.copy_captures.begin(), lam.copy_captures.end(),
                      w) != lam.copy_captures.end();
        if (copy_captured) {
          continue;  // mutable copy: task-local, deterministic
        }
        if (ref_captured) {
          report(u, lam.line, lam.column, rules::kParallelMutation,
                 "lambda passed to " + lam.passed_to +
                     " mutates captured '" + w +
                     "' without per-task indexing; write to a per-task slot "
                     "('" + w + "[task]') and reduce in index order");
        } else if (tu_globals.count(w) != 0U) {
          report(u, lam.line, lam.column, rules::kParallelMutation,
                 "lambda passed to " + lam.passed_to +
                     " mutates file-scope '" + w +
                     "'; shared state under the pool races and breaks "
                     "serial==parallel identity");
        }
      }
      // (b) Call-mediated mutation: the body calls a function — possibly
      // defined in another translation unit — that writes a TU global or a
      // local static. This is the class a per-file linter provably cannot
      // see.
      for (const auto& cs : u.parsed.calls) {
        if (cs.lambda != static_cast<int>(li) || cs.member) {
          continue;
        }
        const auto it = idx_.facts.find(cs.callee);
        if (it == idx_.facts.end() || it->second.mutates.empty()) {
          continue;
        }
        report(u, cs.line, cs.column, rules::kParallelMutation,
               "lambda passed to " + lam.passed_to + " calls '" + cs.callee +
                   "' which writes shared state '" + it->second.mutates +
                   "' (" + it->second.mutates_file + ":" +
                   std::to_string(it->second.mutates_line) +
                   "); tasks must only touch per-task slots and task_rng "
                   "streams");
      }
    }
  }

  // --- family 2: determinism escape (nondet flow into sinks) ---

  /// Deterministic sinks: obs metric updates and Rng seeding. profile_add
  /// is deliberately absent — it is the quarantined wall-clock channel.
  bool is_sink_call(const ParsedUnit& u, const CallSite& cs) const {
    if (!cs.member) {
      return cs.callee == "add_counter" || cs.callee == "set_gauge" ||
             cs.callee == "observe" || cs.callee == "record_span" ||
             cs.callee == "Rng" || cs.callee == "task_rng" ||
             cs.callee == "mix_seed";
    }
    if (cs.callee != "add" && cs.callee != "set" && cs.callee != "observe") {
      return false;
    }
    // `registry().counter("x").add(v)`: walk back over the accessor's
    // balanced parens to the identifier naming it.
    const auto& toks = u.parsed.lexed.tokens;
    if (cs.tok < 2 || toks[cs.tok - 2].text != ")") {
      return false;
    }
    std::size_t k = cs.tok - 2;
    int depth = 0;
    while (true) {
      if (toks[k].text == ")") {
        ++depth;
      } else if (toks[k].text == "(" && --depth == 0) {
        break;
      }
      if (k == 0) {
        return false;
      }
      --k;
    }
    return k >= 1 && (toks[k - 1].text == "counter" ||
                      toks[k - 1].text == "gauge" ||
                      toks[k - 1].text == "histogram");
  }

  void check_sinks(const ParsedUnit& u) {
    if (!in_src(u.kind) && u.kind != FileKind::kExampleFile) {
      return;  // sinks only matter where deterministic outputs are produced
    }
    const auto& toks = u.parsed.lexed.tokens;
    for (const auto& cs : u.parsed.calls) {
      if (!is_sink_call(u, cs)) {
        continue;
      }
      for (const auto& arg : cs.args) {
        // A call inside the argument whose (transitive) body reads a
        // nondeterminism source poisons the sink.
        for (std::size_t k = arg.first_tok;
             k < arg.first_tok + arg.ntoks && k < toks.size(); ++k) {
          if (toks[k].kind != TokKind::kIdent ||
              k + 1 >= toks.size() || toks[k + 1].text != "(") {
            continue;
          }
          const auto it = idx_.facts.find(std::string(toks[k].text));
          if (it == idx_.facts.end() || it->second.taint_depth < 0 ||
              !it->second.returns_value) {
            continue;
          }
          const FuncFact& fact = it->second;
          std::string chain = "'" + std::string(toks[k].text) + "'";
          if (!fact.taint_via.empty()) {
            chain += " (via '" + fact.taint_via + "')";
          }
          report(u, cs.line, cs.column, rules::kNondetFlow,
                 "deterministic sink '" + cs.callee + "' consumes " + chain +
                     " which derives from '" + fact.taint_source + "' (" +
                     fact.taint_source_file + ":" +
                     std::to_string(fact.taint_source_line) +
                     "); wall-clock/rand values must stay in the profile "
                     "quarantine");
          break;  // one finding per sink argument list is enough
        }
      }
    }
  }

  // --- family 3: unit-safety flow across declarations ---

  void check_unit_flow(const ParsedUnit& u) {
    if (!in_src(u.kind) && u.kind != FileKind::kExampleFile) {
      return;
    }
    for (const auto& cs : u.parsed.calls) {
      if (generic_method_name(cs.callee)) {
        continue;
      }
      // Lane kernels (sig::kern::*) operate on raw double lanes; units are
      // erased at the kernel boundary by design.
      if (cs.qualifier == "kern") {
        continue;
      }
      const auto dit = idx_.decls.find(cs.callee);
      if (dit == idx_.decls.end()) {
        continue;
      }
      for (std::size_t a = 0; a < cs.args.size(); ++a) {
        const CallArg& arg = cs.args[a];
        if (arg.unit_hint.empty()) {
          continue;
        }
        // Every known declaration with enough parameters must agree that
        // this position is a raw double, and at least one of them must sit
        // in a header (the public API surface). Disagreement or a strong
        // type anywhere → no finding.
        bool header_decl = false;
        bool all_raw_double = true;
        std::size_t considered = 0;
        const DeclSig* example = nullptr;
        for (const auto& d : dit->second) {
          if (a >= d.params.size()) {
            continue;
          }
          ++considered;
          const std::string& ty = d.params[a].type;
          if (ty != "double" && ty != "float") {
            all_raw_double = false;
            break;
          }
          // src/util/ is the unit-agnostic numeric substrate (rng, digest,
          // hashing): raw doubles there are the contract, not an omission.
          if (d.kind == FileKind::kSourceHeader &&
              repo_relative(d.file).rfind("src/util/", 0) != 0) {
            header_decl = true;
            example = &d;
          }
        }
        if (considered == 0 || !all_raw_double || !header_decl) {
          continue;
        }
        report(u, cs.line, cs.column, rules::kUnitFlow,
               "unit-carrying value (" + arg.unit_hint + ") passed to raw "
                   "double parameter " + std::to_string(a + 1) + " of '" +
                   cs.callee + "' (" + repo_relative(example->file) + ":" +
                   std::to_string(example->line) +
                   "); take " + arg.unit_hint + " in the API so the unit "
                   "survives the call boundary");
      }
    }
  }

  const std::vector<ParsedUnit>& units_;
  Index idx_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::vector<Diagnostic> run_project_rules(
    const std::vector<ParsedUnit>& units) {
  return ProjectRules(units).run();
}

}  // namespace mgtlint
