// mgtlint: repo-specific static analysis for the mgt reproduction.
//
// A fast token-level checker (no libclang) enforcing the three invariant
// families every ps-resolution result in this repo depends on:
//
//   determinism      - no wall-clock seeding or ambient randomness
//   unit safety      - no raw double/float carrying a unit-suffixed name
//   contract hygiene - MGT_CHECK over assert, explicit ctors, clean headers
//
// The library half (this header) lints in-memory buffers so the rules are
// unit-testable; main.cpp wraps it in a directory walker.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mgtlint {

/// Where a file sits in the repo; controls which rules apply.
enum class FileKind {
  kSourceHeader,  // .hpp under src/ (public API surface)
  kSourceImpl,    // .cpp under src/
  kTestFile,      // tests/
  kBenchFile,     // bench/ (wall-clock timing of benchmarks is allowed)
  kExampleFile,   // examples/
  kToolFile,      // tools/
  kOtherHeader,   // any other .hpp/.h
  kOtherImpl,     // any other .cpp
};

/// Classifies a path by its repo-relative location and extension.
FileKind classify_path(std::string_view path);

/// One finding. `rule` is the stable kebab-case id usable in
/// `// mgtlint:allow(<rule>)` suppressions.
struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::size_t column = 0;
  std::string rule;
  std::string message;
};

/// Stable rule ids (see docs/README for the catalog).
namespace rules {
inline constexpr std::string_view kRandomDevice = "no-random-device";
inline constexpr std::string_view kRand = "no-rand";
inline constexpr std::string_view kTime = "no-time";
inline constexpr std::string_view kWallClock = "no-wall-clock";
inline constexpr std::string_view kUnorderedIter = "no-unordered-iter";
inline constexpr std::string_view kUnitDouble = "unit-suffix-double";
inline constexpr std::string_view kFloat = "no-float";
inline constexpr std::string_view kAssert = "no-assert";
inline constexpr std::string_view kUsingNamespace = "no-using-namespace-header";
inline constexpr std::string_view kExplicitCtor = "explicit-ctor";
inline constexpr std::string_view kCatchIgnore = "no-catch-ignore";
inline constexpr std::string_view kCatchByValue = "catch-by-reference";
inline constexpr std::string_view kUncheckedStatus = "no-unchecked-status";
inline constexpr std::string_view kWallclockMetric = "no-wallclock-metric";
inline constexpr std::string_view kIntrinsics =
    "no-intrinsics-outside-kernels";
}  // namespace rules

/// All rule ids, for --list-rules and the fixture suite.
const std::vector<std::string_view>& all_rules();

/// Lints one in-memory buffer. `path` is used for classification (unless
/// `kind_override` >= 0) and for the diagnostics' file field.
std::vector<Diagnostic> lint_source(std::string_view path,
                                    std::string_view content);
std::vector<Diagnostic> lint_source(std::string_view path,
                                    std::string_view content, FileKind kind);

/// Reads and lints a file on disk. Missing/unreadable files produce a
/// single diagnostic with rule "io-error".
std::vector<Diagnostic> lint_file(const std::string& path);

/// Formats a diagnostic as "file:line:col: [rule] message".
std::string format_diagnostic(const Diagnostic& d);

}  // namespace mgtlint
