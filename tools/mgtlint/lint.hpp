// mgtlint: repo-specific static analysis for the mgt reproduction.
//
// v2 is a two-layer analyzer:
//
//   per-file rules   - the fast token-level checks of v1 (determinism,
//                      unit safety, contract hygiene), one buffer at a time
//   cross-TU rules   - a project-wide pass over a symbol index built from
//                      every file of one invocation: parallel-capture
//                      discipline, determinism escape analysis, and
//                      unit-safety flow across declaration boundaries
//
// The library half (this header) lints in-memory buffers so the rules are
// unit-testable; main.cpp wraps it in a directory walker, SARIF writer,
// baseline filter and fixer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mgtlint {

/// Where a file sits in the repo; controls which rules apply.
enum class FileKind {
  kSourceHeader,  // .hpp under src/ (public API surface)
  kSourceImpl,    // .cpp under src/
  kTestFile,      // tests/
  kBenchFile,     // bench/ (wall-clock timing of benchmarks is allowed)
  kExampleFile,   // examples/
  kToolFile,      // tools/
  kOtherHeader,   // any other .hpp/.h
  kOtherImpl,     // any other .cpp
};

/// Classifies a path by its repo-relative location and extension.
FileKind classify_path(std::string_view path);

/// Path with everything left of the repo anchor (src/, tests/, bench/,
/// examples/, tools/) stripped: "/root/repo/src/pecl/mux.hpp" ->
/// "src/pecl/mux.hpp". Used for baseline keys and SARIF artifact URIs so
/// findings survive a checkout moving.
std::string repo_relative(std::string_view path);

/// A mechanical, compile-safe replacement for a finding: replace source
/// bytes [begin, end) with `replacement`. Only rules whose catalog entry is
/// `fixable` emit one.
struct FixIt {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::string replacement;
};

/// One finding. `rule` is the stable kebab-case id usable in
/// `// mgtlint:allow(<rule>)` suppressions.
struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::size_t column = 0;
  std::string rule;
  std::string message;
  /// FNV-1a of the trimmed source line text; with (rule, repo-relative
  /// file) and an occurrence ordinal this forms the baseline fingerprint,
  /// which survives unrelated edits moving the finding's line number.
  std::uint64_t line_hash = 0;
  std::optional<FixIt> fix;
};

/// Stable rule ids (see README for the catalog).
namespace rules {
inline constexpr std::string_view kRandomDevice = "no-random-device";
inline constexpr std::string_view kRand = "no-rand";
inline constexpr std::string_view kTime = "no-time";
inline constexpr std::string_view kWallClock = "no-wall-clock";
inline constexpr std::string_view kUnorderedIter = "no-unordered-iter";
inline constexpr std::string_view kUnitDouble = "unit-suffix-double";
inline constexpr std::string_view kFloat = "no-float";
inline constexpr std::string_view kAssert = "no-assert";
inline constexpr std::string_view kUsingNamespace = "no-using-namespace-header";
inline constexpr std::string_view kExplicitCtor = "explicit-ctor";
inline constexpr std::string_view kCatchIgnore = "no-catch-ignore";
inline constexpr std::string_view kCatchByValue = "catch-by-reference";
inline constexpr std::string_view kUncheckedStatus = "no-unchecked-status";
inline constexpr std::string_view kUncheckedDecode = "no-unchecked-decode";
inline constexpr std::string_view kWallclockMetric = "no-wallclock-metric";
inline constexpr std::string_view kIntrinsics =
    "no-intrinsics-outside-kernels";
inline constexpr std::string_view kUnboundedWait = "no-unbounded-wait";
// Cross-TU families (v2): these need the whole-project index and only fire
// from lint_project, never from single-buffer lint_source.
inline constexpr std::string_view kParallelMutation =
    "no-shared-mutation-in-parallel";
inline constexpr std::string_view kNondetFlow = "no-nondet-flow";
inline constexpr std::string_view kUnitFlow = "unit-flow-raw-double";
}  // namespace rules

/// Rule metadata, consumed by --list-rules, the SARIF tool.driver.rules
/// array, and the fixer.
struct RuleInfo {
  std::string_view id;
  std::string_view summary;  // one line, imperative
  bool fixable = false;      // --fix can rewrite findings mechanically
  bool cross_tu = false;     // needs the project index (lint_project only)
};

/// The full catalog, one entry per rule, stable order.
const std::vector<RuleInfo>& rule_catalog();

/// All rule ids, for --list-rules and the fixture suite.
const std::vector<std::string_view>& all_rules();

/// Lints one in-memory buffer with the per-file rules. `path` is used for
/// classification (unless a kind is passed) and for the diagnostics' file
/// field.
std::vector<Diagnostic> lint_source(std::string_view path,
                                    std::string_view content);
std::vector<Diagnostic> lint_source(std::string_view path,
                                    std::string_view content, FileKind kind);

/// One input buffer of a project-wide invocation.
struct ProjectInput {
  std::string path;
  std::string content;
};

/// Lints a whole project in one invocation: per-file rules on every buffer
/// plus the cross-TU rule families over the combined symbol index. Results
/// are sorted by (file, line, column, rule).
std::vector<Diagnostic> lint_project(const std::vector<ProjectInput>& files);

/// Reads and lints a file on disk (per-file rules only). Missing/unreadable
/// files produce a single diagnostic with rule "io-error".
std::vector<Diagnostic> lint_file(const std::string& path);

/// Formats a diagnostic as "file:line:col: [rule] message".
std::string format_diagnostic(const Diagnostic& d);

/// FNV-1a 64-bit over the trimmed text of `line` (1-based) in `content`;
/// the line-identity half of a baseline fingerprint.
std::uint64_t hash_source_line(std::string_view content, std::size_t line);

}  // namespace mgtlint
