#include "sarif.hpp"

#include <cstdint>
#include <cstdio>
#include <sstream>

namespace mgtlint {

namespace {

/// JSON string escaping: control chars, quote, backslash.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string to_sarif(const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  os << "{\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"mgtlint\",\n"
     << "          \"informationUri\": "
        "\"https://example.invalid/mgt/tools/mgtlint\",\n"
     << "          \"version\": \"2.0.0\",\n"
     << "          \"rules\": [\n";
  const auto& catalog = rule_catalog();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const RuleInfo& r = catalog[i];
    os << "            {\n"
       << "              \"id\": \"" << json_escape(r.id) << "\",\n"
       << "              \"shortDescription\": { \"text\": \""
       << json_escape(r.summary) << "\" },\n"
       << "              \"properties\": { \"fixable\": "
       << (r.fixable ? "true" : "false") << ", \"crossTu\": "
       << (r.cross_tu ? "true" : "false") << " }\n"
       << "            }" << (i + 1 < catalog.size() ? "," : "") << "\n";
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    os << "        {\n"
       << "          \"ruleId\": \"" << json_escape(d.rule) << "\",\n"
       << "          \"level\": \"error\",\n"
       << "          \"message\": { \"text\": \"" << json_escape(d.message)
       << "\" },\n"
       << "          \"locations\": [\n"
       << "            {\n"
       << "              \"physicalLocation\": {\n"
       << "                \"artifactLocation\": { \"uri\": \""
       << json_escape(repo_relative(d.file)) << "\" },\n"
       << "                \"region\": { \"startLine\": " << d.line
       << ", \"startColumn\": " << d.column << " }\n"
       << "              }\n"
       << "            }\n"
       << "          ],\n"
       << "          \"partialFingerprints\": { \"mgtlintLineHash/v1\": \""
       << hex16(d.line_hash) << "\" }\n"
       << "        }" << (i + 1 < diags.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace mgtlint
