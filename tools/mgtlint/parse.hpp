// mgtlint parse layer: lexer + a lightweight heuristic C++ parser.
//
// v1 of mgtlint was a pure token scanner; the cross-TU rules of v2 need a
// little more shape: which functions exist (with qualified names and
// parameter lists), what each body calls, which lambdas are handed to the
// parallel layer and what they capture/mutate, and which namespace-scope
// mutable variables a translation unit owns. This header provides exactly
// that — a best-effort single-pass parse, not a conforming C++ front end.
// Rules built on it must therefore be written to fail *silent* (no finding)
// when the parse is unsure, never to fail noisy.
//
// Lifetime: Token::text is a view into the source buffer. ParsedFile pins
// the buffer via a shared_ptr so parsed units can be moved around freely.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace mgtlint {

// ------------------------------------------------------------------ lexer --

enum class TokKind { kIdent, kNumber, kPunct, kString };

struct Token {
  TokKind kind;
  std::string_view text;
  std::size_t line;
  std::size_t column;
  std::size_t offset;  // byte offset of the token's first char in the source
};

/// Lexer output: tokens plus the per-line suppression table built from
/// `// mgtlint:allow(rule-a, rule-b)` comments. An allow comment suppresses
/// matching findings on the line the directive appears on and on the
/// following line, so it works both trailing the offending code and on the
/// line above it. Inside a multi-line /* */ comment the directive is
/// attributed to the line it is *written* on, not the comment's first line.
struct LexResult {
  std::vector<Token> tokens;
  std::map<std::size_t, std::set<std::string>> allow;  // line -> rule ids
};

LexResult lex(std::string_view src);

// ----------------------------------------------------------------- parser --

/// One declared parameter of a function. `type` is the last type-ish
/// identifier of the parameter's declarator ("Picoseconds", "double"),
/// which is what the unit-flow rules key on.
struct Param {
  std::string type;
  std::string name;
  bool is_const = false;
  bool is_reference = false;
  bool is_pointer = false;
  bool has_default = false;
};

/// One top-level argument of a call site, summarized for the flow rules.
struct CallArg {
  std::size_t first_tok = 0;  // token index into ParsedFile::lexed.tokens
  std::size_t ntoks = 0;
  bool bare_number = false;  // a plain numeric literal (no unit suffix)
  /// Strong unit type implied by the argument's spelling: `t.ps()` implies
  /// Picoseconds, an identifier ending in `_mv` implies Millivolts, ...
  /// Empty when the argument carries no unit evidence.
  std::string unit_hint;
};

struct CallSite {
  std::string callee;     // unqualified name
  std::string qualifier;  // identifier left of a `::` ("util", "obs"), or ""
  bool member = false;    // preceded by `.` or `->`
  std::size_t tok = 0;    // token index of the callee identifier
  std::size_t line = 0;
  std::size_t column = 0;
  std::vector<CallArg> args;
  int lambda = -1;    // index into ParsedFile::lambdas when inside one
  int function = -1;  // index into ParsedFile::functions whose body holds it
};

/// A lambda expression and what the parallel-discipline rules need from it.
struct LambdaSite {
  bool default_ref = false;   // [&]
  bool default_copy = false;  // [=]
  std::vector<std::string> ref_captures;   // [&x] explicit by-ref captures
  std::vector<std::string> copy_captures;  // [x] explicit by-value captures
  std::string index_param;  // first parameter name (the task index, if any)
  std::string passed_to;    // callee of the enclosing call, or ""
  std::string passed_qualifier;  // qualifier of that callee ("util", ...)
  bool passed_member = false;    // enclosing call was a member call (.run())
  std::size_t tok = 0;  // token index of the `[` introducer
  std::size_t line = 0;
  std::size_t column = 0;
  std::size_t body_begin = 0;  // token range of the body, [begin, end)
  std::size_t body_end = 0;
  /// Identifiers assigned / compound-assigned / incremented in the body
  /// without an index subscript, excluding the lambda's own parameters and
  /// locals it declares. These are the shared-mutation suspects.
  std::vector<std::string> unsubscripted_writes;
};

struct FunctionInfo {
  std::string name;       // unqualified ("render_chunk")
  std::string qualified;  // best-effort scope-qualified ("signal::render_chunk")
  std::size_t tok = 0;    // token index of the name
  std::size_t line = 0;
  std::vector<Param> params;
  bool has_body = false;
  bool returns_void = false;
  bool is_member = false;  // declared at class scope or with A::b qualifier
  std::size_t body_begin = 0;  // token range of the body, [begin, end)
  std::size_t body_end = 0;
  /// Unqualified names of non-member functions the body calls.
  std::set<std::string> called;
  /// Body writes a namespace-scope mutable variable of this TU (the named
  /// one), or "" when it doesn't. Cross-file callers of such functions from
  /// parallel lambdas are the races a per-file linter cannot see.
  std::string writes_global;
  std::size_t writes_global_line = 0;
  /// Body declares and mutates a function-local `static` — shared state in
  /// disguise, same hazard as a global under parallel_for.
  std::string writes_static_local;
};

/// Namespace-scope (or file-static) mutable variable.
struct GlobalVar {
  std::string name;
  std::size_t line = 0;
};

struct ParsedFile {
  std::string path;
  std::shared_ptr<const std::string> source;  // pins Token::text views
  LexResult lexed;
  std::vector<FunctionInfo> functions;
  std::vector<CallSite> calls;
  std::vector<LambdaSite> lambdas;
  std::vector<GlobalVar> globals;
  /// Names of structs/classes declared in this file that derive from the
  /// strong-unit CRTP base (`detail::Scalar<...>`), e.g. Picoseconds.
  std::vector<std::string> unit_types;
};

/// Parses one buffer. Never fails: on confusing input the result simply
/// carries fewer facts.
ParsedFile parse_source(std::string path, std::string content);

/// Strong unit type implied by a unit-suffixed identifier (`delay_ps` ->
/// "Picoseconds") or by a unit accessor name (`ps` -> "Picoseconds").
/// Returns "" when the name implies nothing.
std::string unit_from_suffix(std::string_view ident);
std::string unit_from_accessor(std::string_view accessor);

}  // namespace mgtlint
