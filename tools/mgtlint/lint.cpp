#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "index.hpp"
#include "parse.hpp"

namespace mgtlint {

namespace {

// ------------------------------------------------------------- rule logic --

bool has_unit_suffix(std::string_view name) {
  for (const std::string_view s :
       {"_ps", "_mv", "_gbps", "_ghz", "_ui"}) {
    if (name.size() > s.size() && name.ends_with(s)) {
      return true;
    }
  }
  return false;
}

bool is_header(FileKind k) {
  return k == FileKind::kSourceHeader || k == FileKind::kOtherHeader;
}

bool in_src(FileKind k) {
  return k == FileKind::kSourceHeader || k == FileKind::kSourceImpl;
}

class Linter {
public:
  Linter(std::string_view path, std::string_view content, FileKind kind)
      : path_(path), content_(content), kind_(kind), lexed_(lex(content)) {}

  std::vector<Diagnostic> run() {
    collect_unordered_names();
    const auto& toks = lexed_.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      check_determinism(i);
      check_wallclock_metric(i);
      check_units(i);
      check_contracts(i);
      check_intrinsics(i);
      check_unbounded_wait(i);
      track_classes(i);
    }
    return std::move(diags_);
  }

private:
  const Token& tok(std::size_t i) const { return lexed_.tokens[i]; }
  std::size_t size() const { return lexed_.tokens.size(); }

  bool next_is(std::size_t i, std::string_view text) const {
    return i + 1 < size() && tok(i + 1).text == text;
  }
  bool prev_is(std::size_t i, std::string_view text) const {
    return i > 0 && tok(i - 1).text == text;
  }
  bool member_access_before(std::size_t i) const {
    return prev_is(i, ".") || prev_is(i, "->");
  }

  void report(std::size_t i, std::string_view rule, std::string message,
              std::optional<FixIt> fix = std::nullopt) {
    const Token& t = tok(i);
    const auto it = lexed_.allow.find(t.line);
    if (it != lexed_.allow.end() && it->second.count(std::string(rule))) {
      return;
    }
    diags_.push_back({std::string(path_), t.line, t.column, std::string(rule),
                      std::move(message), hash_source_line(content_, t.line),
                      std::move(fix)});
  }

  // --- determinism ---

  void check_determinism(std::size_t i) {
    const Token& t = tok(i);
    if (t.kind != TokKind::kIdent) {
      return;
    }
    if (t.text == "random_device") {
      report(i, rules::kRandomDevice,
             "std::random_device is non-deterministic; seed an mgt::Rng "
             "explicitly");
    }
    if ((t.text == "rand" || t.text == "srand") && next_is(i, "(") &&
        !member_access_before(i)) {
      report(i, rules::kRand,
             std::string(t.text) +
                 "() uses hidden global state; use mgt::Rng streams");
    }
    if (kind_ != FileKind::kBenchFile) {
      if (t.text == "time" && next_is(i, "(") && !member_access_before(i)) {
        report(i, rules::kTime,
               "time() reads the wall clock; results must not depend on it "
               "outside bench/");
      }
      if (t.text == "system_clock" || t.text == "steady_clock") {
        report(i, rules::kWallClock,
               "std::chrono::" + std::string(t.text) +
                   " is wall-clock state; only bench/ may time itself");
      }
    }
    // Range-for (or explicit .begin()) over an unordered container declared
    // in this file: iteration order is unspecified, which silently breaks
    // ordered reductions.
    if (unordered_names_.count(std::string(t.text)) != 0U) {
      const bool range_for = prev_is(i, ":");
      const bool begin_call =
          next_is(i, ".") && i + 2 < size() &&
          (tok(i + 2).text == "begin" || tok(i + 2).text == "cbegin");
      if (range_for || begin_call) {
        report(i, rules::kUnorderedIter,
               "iterating unordered container '" + std::string(t.text) +
                   "' has unspecified order; use a sorted/ordered container "
                   "in reduction paths");
      }
    }
  }

  // --- vendor intrinsics containment ---

  // SIMD intrinsics and vector types may only appear in the dedicated batch
  // kernel translation units (src/signal/batch_kernels.*). Everywhere else
  // must go through the dispatching kernels, so the scalar fallback stays
  // the single source of truth for results and the equivalence suite only
  // has one boundary to gate.
  void check_intrinsics(std::size_t i) {
    const Token& t = tok(i);
    if (t.kind != TokKind::kIdent) {
      return;
    }
    if (path_.find("batch_kernels") != std::string_view::npos) {
      return;
    }
    const std::string_view s = t.text;
    const bool intrinsic_call = s.rfind("_mm_", 0) == 0 ||
                                s.rfind("_mm256_", 0) == 0 ||
                                s.rfind("_mm512_", 0) == 0;
    const bool vector_type = s.rfind("__m128", 0) == 0 ||
                             s.rfind("__m256", 0) == 0 ||
                             s.rfind("__m512", 0) == 0;
    if (intrinsic_call || vector_type) {
      report(i, rules::kIntrinsics,
             "vendor intrinsic '" + std::string(s) +
                 "' outside src/signal/batch_kernels.*; call the "
                 "dispatching kernels in batch_kernels.hpp instead");
    }
  }

  // --- unbounded blocking waits ---

  /// Blocking member calls with no deadline in src/: `cv.wait(...)`,
  /// `thread.join()`, `future.wait()`, `semaphore.acquire()`. The session
  /// layer's rule is that every wait is bounded — either by a virtual-tick
  /// budget at the scheduler level or by a *_for/*_until variant at the
  /// primitive level — so one hung site or worker can never hang the
  /// process. Intentionally indefinite waits (a pool's idle workers parked
  /// on a condition variable) carry a mgtlint:allow with a justification.
  void check_unbounded_wait(std::size_t i) {
    const Token& t = tok(i);
    if (t.kind != TokKind::kIdent || !in_src(kind_)) {
      return;
    }
    if (!member_access_before(i) || !next_is(i, "(")) {
      return;
    }
    if (t.text != "wait" && t.text != "join" && t.text != "acquire") {
      return;
    }
    report(i, rules::kUnboundedWait,
           "blocking '" + std::string(t.text) +
               "()' has no deadline; bound it (wait_for/wait_until, a tick "
               "budget) or justify with mgtlint:allow(no-unbounded-wait)");
  }

  // --- wall-clock into metrics ---

  static bool wallclock_source(std::string_view name) {
    return name == "steady_clock" || name == "system_clock" ||
           name == "high_resolution_clock" || name == "clock_gettime" ||
           name == "gettimeofday" || name == "rdtsc" || name == "__rdtsc";
  }

  /// Wall-clock values flowing into an obs metric sink. The obs snapshot is
  /// contractually deterministic, so a clock read anywhere in the argument
  /// list of add_counter/set_gauge/observe/record_span — or of a chained
  /// counter()/gauge()/histogram() update — poisons it. Unlike the broad
  /// no-wall-clock rule this applies to EVERY file kind, bench/ included:
  /// benches may time themselves, but never through a metric. profile_add
  /// is exempt by construction — it is the designated wall-clock channel.
  void check_wallclock_metric(std::size_t i) {
    const Token& t = tok(i);
    if (t.kind != TokKind::kIdent || !next_is(i, "(")) {
      return;
    }
    bool sink = !member_access_before(i) &&
                (t.text == "add_counter" || t.text == "set_gauge" ||
                 t.text == "observe" || t.text == "record_span");
    if (!sink && member_access_before(i) &&
        (t.text == "add" || t.text == "set" || t.text == "observe")) {
      // `registry().counter("x").add(v)`: walk back over the accessor's
      // balanced parens to the identifier naming it.
      const std::size_t dot = i - 1;
      if (dot >= 1 && tok(dot - 1).text == ")") {
        std::size_t k = dot - 1;
        int depth = 0;
        while (true) {
          if (tok(k).text == ")") {
            ++depth;
          } else if (tok(k).text == "(" && --depth == 0) {
            break;
          }
          if (k == 0) {
            return;
          }
          --k;
        }
        if (k >= 1 && (tok(k - 1).text == "counter" ||
                       tok(k - 1).text == "gauge" ||
                       tok(k - 1).text == "histogram")) {
          sink = true;
        }
      }
    }
    if (!sink) {
      return;
    }
    std::size_t j = i + 1;  // at '('
    int depth = 0;
    for (; j < size(); ++j) {
      if (tok(j).text == "(") {
        ++depth;
        continue;
      }
      if (tok(j).text == ")") {
        if (--depth == 0) {
          break;
        }
        continue;
      }
      if (depth >= 1 && tok(j).kind == TokKind::kIdent) {
        const std::string_view x = tok(j).text;
        const bool time_call =
            x == "time" && next_is(j, "(") && !member_access_before(j);
        if (wallclock_source(x) || time_call) {
          report(i, rules::kWallclockMetric,
                 "wall-clock value '" + std::string(x) +
                     "' feeds metric sink '" + std::string(t.text) +
                     "'; obs metrics must be simulation-derived (profile "
                     "scopes are the wall-clock channel)");
          return;
        }
      }
    }
  }

  // --- unit safety ---

  void check_units(std::size_t i) {
    const Token& t = tok(i);
    if (t.kind != TokKind::kIdent) {
      return;
    }
    if (t.text == "float" && in_src(kind_)) {
      report(i, rules::kFloat,
             "float narrows ps-resolution math; use double or a strong unit "
             "type");
      return;  // also suppresses a duplicate unit-suffix hit below
    }
    if ((t.text == "double" || t.text == "float") &&
        kind_ == FileKind::kSourceHeader) {
      // Skip cv/ref/pointer decoration between the type and the name.
      std::size_t j = i + 1;
      while (j < size() && (tok(j).text == "const" || tok(j).text == "*" ||
                            tok(j).text == "&")) {
        ++j;
      }
      if (j < size() && tok(j).kind == TokKind::kIdent &&
          has_unit_suffix(tok(j).text) && !next_is(j, "(")) {
        report(j, rules::kUnitDouble,
               "raw " + std::string(t.text) + " '" + std::string(tok(j).text) +
                   "' carries a unit suffix; use the strong type from "
                   "util/units.hpp");
      }
    }
  }

  // --- contract hygiene ---

  void check_contracts(std::size_t i) {
    const Token& t = tok(i);
    if (t.kind != TokKind::kIdent) {
      return;
    }
    if (t.text == "assert" && next_is(i, "(") && !member_access_before(i) &&
        !prev_is(i, "::")) {
      report(i, rules::kAssert,
             "assert() compiles out under NDEBUG; use MGT_CHECK so contracts "
             "hold in every build");
    }
    if (t.text == "using" && next_is(i, "namespace") && is_header(kind_)) {
      report(i, rules::kUsingNamespace,
             "'using namespace' in a header pollutes every includer");
    }
    if (t.text == "catch" && next_is(i, "(") && in_src(kind_)) {
      check_catch(i);
    }
    if (next_is(i, "(") && is_must_use_call(t.text)) {
      check_discarded_status(i, rules::kUncheckedStatus,
                             "check the returned status");
    }
    if (next_is(i, "(") && in_src(kind_) && is_decode_call(t.text)) {
      check_discarded_status(i, rules::kUncheckedDecode,
                             "a decode/parse result carries the only "
                             "evidence the input was valid");
    }
    if (!class_stack_.empty() && t.text == class_stack_.back().name &&
        next_is(i, "(") && brace_depth_ == class_stack_.back().member_depth) {
      check_ctor(i);
    }
  }

  /// Calls whose return value is a health/delivery verdict that must not
  /// be silently dropped: self-test reports and the ARQ send-result types.
  static bool is_must_use_call(std::string_view name) {
    return name == "self_test" || name == "send_payload" ||
           name == "transfer" || name == "inject_with_retry";
  }

  /// Decoders/parsers are total over arbitrary input only because they
  /// *report* failure instead of trusting the bytes; dropping that report
  /// turns hostile input into silent garbage. Applies to any call whose
  /// name starts with decode/parse in src/ (telemetry::decode_payload,
  /// util::parse_env_u64, sig::parse_simd_backend, ...).
  static bool is_decode_call(std::string_view name) {
    return name.size() >= 6 &&
           (name.substr(0, 6) == "decode" || name.substr(0, 5) == "parse");
  }

  /// A must-use call whose result is discarded as a bare statement:
  /// `sys.self_test();`. Consuming the result in any way — assignment,
  /// member access on the returned object, a surrounding expression,
  /// `return`, or an explicit `(void)` cast — is fine.
  void check_discarded_status(std::size_t i, std::string_view rule,
                              std::string_view why) {
    // The full-expression must end right after the call's closing paren.
    std::size_t j = i + 1;  // at '('
    int depth = 0;
    for (; j < size(); ++j) {
      if (tok(j).text == "(") {
        ++depth;
      } else if (tok(j).text == ")") {
        if (--depth == 0) {
          break;
        }
      }
    }
    if (j + 1 >= size() || tok(j + 1).text != ";") {
      return;  // result feeds a larger expression (.worst(), comparison...)
    }
    // Walk the object chain back to the start of the statement:
    // `a.b->c.self_test();` starts at `a`.
    std::size_t head = i;
    while (head >= 2 &&
           (tok(head - 1).text == "." || tok(head - 1).text == "->" ||
            tok(head - 1).text == "::") &&
           tok(head - 2).kind == TokKind::kIdent) {
      head -= 2;
    }
    if (head == 0) {
      return;  // nothing before: can't prove it's a statement
    }
    const std::string_view before = tok(head - 1).text;
    // `(void)chain.call();` is an explicit, reviewable discard.
    if (before == ")" && head >= 3 && tok(head - 2).text == "void" &&
        tok(head - 3).text == "(") {
      return;
    }
    if (before == ";" || before == "{" || before == "}") {
      // Mechanical fix: make the discard explicit. (Checking the status is
      // better, but that needs a human; (void) at least survives review.)
      FixIt fix{tok(head).offset, tok(head).offset, "(void)"};
      report(i, rule,
             "discarded result of '" + std::string(tok(i).text) + "()'; " +
                 std::string(why) + " (or cast to (void) / mgtlint:allow(" +
                 std::string(rule) + "))",
             fix);
    }
  }

  /// catch clause in src/: the handler must not swallow the exception
  /// silently (empty body) and must not catch by value (slicing loses the
  /// derived type, e.g. RecoverableError decays to Error).
  void check_catch(std::size_t i) {
    // Parse the exception declaration between the parens.
    std::size_t j = i + 1;  // at '('
    int depth = 0;
    bool by_reference = false;
    for (; j < size(); ++j) {
      const std::string_view x = tok(j).text;
      if (x == "(") {
        ++depth;
        continue;
      }
      if (x == ")") {
        if (--depth == 0) {
          break;
        }
        continue;
      }
      // `...` lexes as three '.' puncts; pointers are odd but don't slice.
      if (x == "." || x == "&" || x == "*") {
        by_reference = true;
      }
    }
    if (!by_reference) {
      report(i, rules::kCatchByValue,
             "catching an exception by value slices the object; catch by "
             "const reference",
             catch_fix(i + 1, j));
    }
    // Body: an empty brace pair (comments are stripped by the lexer) means
    // the exception vanishes without a trace.
    std::size_t k = j + 1;  // expected '{'
    if (k >= size() || tok(k).text != "{") {
      return;  // malformed or macro trickery; leave it to the compiler
    }
    int braces = 0;
    std::size_t body_tokens = 0;
    for (; k < size(); ++k) {
      const std::string_view x = tok(k).text;
      if (x == "{") {
        ++braces;
        continue;
      }
      if (x == "}") {
        if (--braces == 0) {
          break;
        }
        continue;
      }
      if (braces >= 1) {
        ++body_tokens;
      }
    }
    if (body_tokens == 0) {
      report(i, rules::kCatchIgnore,
             "empty catch block swallows the exception; record or translate "
             "the failure (or suppress with mgtlint:allow)");
    }
  }

  /// Mechanical fix for catch-by-value: rewrite `catch (Type name)` /
  /// `catch (ns::Type)` as a const-reference declaration. Returns nullopt
  /// for anything fancier than ident/`::` sequences (no fix is safer than a
  /// wrong fix).
  std::optional<FixIt> catch_fix(std::size_t open, std::size_t close) {
    if (close <= open + 1 || close >= size()) {
      return std::nullopt;
    }
    std::vector<std::size_t> parts;
    for (std::size_t k = open + 1; k < close; ++k) {
      if (tok(k).kind == TokKind::kIdent || tok(k).text == "::") {
        parts.push_back(k);
      } else {
        return std::nullopt;
      }
    }
    if (parts.empty()) {
      return std::nullopt;
    }
    // Name present iff the last two parts are adjacent identifiers.
    std::string name;
    std::size_t type_end = parts.size();
    if (parts.size() >= 2 &&
        tok(parts[parts.size() - 1]).kind == TokKind::kIdent &&
        tok(parts[parts.size() - 2]).kind == TokKind::kIdent) {
      name = std::string(tok(parts.back()).text);
      type_end = parts.size() - 1;
    }
    std::string type;
    for (std::size_t p = 0; p < type_end; ++p) {
      type += std::string(tok(parts[p]).text);
    }
    std::string repl = "const " + type + "&";
    if (!name.empty()) {
      repl += " " + name;
    }
    const Token& first = tok(open + 1);
    const Token& last = tok(close - 1);
    return FixIt{first.offset, last.offset + last.text.size(),
                 std::move(repl)};
  }

  /// Candidate constructor at member level: flag single-argument-callable
  /// ctors that are not marked explicit (copy/move/self excluded).
  void check_ctor(std::size_t i) {
    // Reject destructors, qualified names, and member-init-list delegation
    // (`: Name(...)` — unless the `:` is an access specifier's).
    if (prev_is(i, "~") || prev_is(i, "::")) {
      return;
    }
    if (prev_is(i, ":") && i >= 2 && tok(i - 2).text != "public" &&
        tok(i - 2).text != "protected" && tok(i - 2).text != "private") {
      return;
    }
    if (prev_is(i, ",")) {
      return;  // second entry of a member-init list
    }
    // Look back for `explicit` (possibly through constexpr/inline).
    std::size_t back = i;
    while (back > 0) {
      const std::string_view p = tok(back - 1).text;
      if (p == "constexpr" || p == "inline") {
        --back;
        continue;
      }
      if (p == "explicit") {
        return;  // already explicit
      }
      break;
    }
    // Parse the parameter list.
    std::size_t j = i + 1;  // at '('
    int depth = 0;
    std::vector<std::vector<std::size_t>> params;
    std::vector<std::size_t> current;
    for (; j < size(); ++j) {
      const std::string_view x = tok(j).text;
      if (x == "(" || x == "[" || x == "{" || x == "<") {
        ++depth;
        if (depth == 1) {
          continue;
        }
      } else if (x == ")" || x == "]" || x == "}" || x == ">") {
        --depth;
        if (depth == 0) {
          break;
        }
      } else if (x == "," && depth == 1) {
        params.push_back(current);
        current.clear();
        continue;
      }
      if (depth >= 1) {
        current.push_back(j);
      }
    }
    if (!current.empty()) {
      params.push_back(current);
    }
    if (params.empty()) {
      return;  // default ctor
    }
    // Callable with one argument: one param, or trailing params defaulted.
    bool one_arg = params.size() == 1;
    if (!one_arg) {
      one_arg = true;
      for (std::size_t p = 1; p < params.size(); ++p) {
        bool has_default = false;
        for (const std::size_t ti : params[p]) {
          if (tok(ti).text == "=") {
            has_default = true;
            break;
          }
        }
        if (!has_default) {
          one_arg = false;
          break;
        }
      }
    }
    if (!one_arg) {
      return;
    }
    // Copy/move/self-converting ctors are fine.
    for (const std::size_t ti : params[0]) {
      if (tok(ti).text == class_stack_.back().name) {
        return;
      }
    }
    report(i, rules::kExplicitCtor,
           "single-argument constructor of '" + class_stack_.back().name +
               "' should be explicit (implicit conversions hide unit "
               "mistakes)");
  }

  // --- class tracking for explicit-ctor ---

  void track_classes(std::size_t i) {
    const Token& t = tok(i);
    if (t.text == "{") {
      ++brace_depth_;
      if (pending_class_ && pending_class_depth_ == 0) {
        class_stack_.push_back({pending_class_name_, brace_depth_});
        pending_class_ = false;
      }
      return;
    }
    if (t.text == "}") {
      if (!class_stack_.empty() &&
          brace_depth_ == class_stack_.back().member_depth) {
        class_stack_.pop_back();
      }
      --brace_depth_;
      return;
    }
    if (pending_class_) {
      // Between `class Name` and its `{`: a `;` means forward declaration;
      // track <> nesting in base-clause templates.
      if (t.text == ";" && pending_class_depth_ == 0) {
        pending_class_ = false;
      } else if (t.text == "<") {
        ++pending_class_depth_;
      } else if (t.text == ">") {
        --pending_class_depth_;
      }
      return;
    }
    if ((t.text == "class" || t.text == "struct") && i + 1 < size() &&
        tok(i + 1).kind == TokKind::kIdent && !prev_is(i, "enum")) {
      // The class name is the last identifier before `{`, `;` or `:` —
      // skips attribute/export macros between the keyword and the name.
      std::size_t j = i + 1;
      std::string name;
      while (j < size() && tok(j).kind == TokKind::kIdent) {
        name = std::string(tok(j).text);
        ++j;
      }
      if (j < size() && (tok(j).text == "{" || tok(j).text == ":" ||
                         tok(j).text == "final")) {
        pending_class_ = true;
        pending_class_name_ = name;
        pending_class_depth_ = 0;
      }
    }
  }

  /// Names of variables declared with an unordered container type anywhere
  /// in this translation unit.
  void collect_unordered_names() {
    const auto& toks = lexed_.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent ||
          !toks[i].text.starts_with("unordered_")) {
        continue;
      }
      std::size_t j = i + 1;
      if (j < toks.size() && toks[j].text == "<") {
        int depth = 0;
        for (; j < toks.size(); ++j) {
          if (toks[j].text == "<") {
            ++depth;
          } else if (toks[j].text == ">") {
            if (--depth == 0) {
              ++j;
              break;
            }
          }
        }
      }
      while (j < toks.size() &&
             (toks[j].text == "&" || toks[j].text == "*" ||
              toks[j].text == "const")) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == TokKind::kIdent &&
          !(j + 1 < toks.size() && toks[j + 1].text == "(")) {
        unordered_names_.insert(std::string(toks[j].text));
      }
    }
  }

  struct ClassScope {
    std::string name;
    int member_depth;  // brace depth at which members appear
  };

  std::string_view path_;
  std::string_view content_;
  FileKind kind_;
  LexResult lexed_;
  std::vector<Diagnostic> diags_;
  std::set<std::string> unordered_names_;
  std::vector<ClassScope> class_stack_;
  bool pending_class_ = false;
  std::string pending_class_name_;
  int pending_class_depth_ = 0;
  int brace_depth_ = 0;
};

}  // namespace

// ------------------------------------------------------------- public API --

FileKind classify_path(std::string_view path) {
  const bool header = path.ends_with(".hpp") || path.ends_with(".h");
  auto in_dir = [&](std::string_view dir) {
    return path.find(std::string(dir) + "/") != std::string_view::npos ||
           path.starts_with(dir);
  };
  if (in_dir("bench")) {
    return FileKind::kBenchFile;
  }
  if (in_dir("tests")) {
    return FileKind::kTestFile;
  }
  if (in_dir("examples")) {
    return FileKind::kExampleFile;
  }
  if (in_dir("tools")) {
    return FileKind::kToolFile;
  }
  if (in_dir("src")) {
    return header ? FileKind::kSourceHeader : FileKind::kSourceImpl;
  }
  return header ? FileKind::kOtherHeader : FileKind::kOtherImpl;
}

std::string repo_relative(std::string_view path) {
  for (const std::string_view anchor :
       {"src/", "tests/", "bench/", "examples/", "tools/"}) {
    if (path.starts_with(anchor)) {
      return std::string(path);
    }
    const std::string probe = "/" + std::string(anchor);
    const auto pos = path.rfind(probe);
    if (pos != std::string_view::npos) {
      return std::string(path.substr(pos + 1));
    }
  }
  return std::string(path);
}

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {rules::kRandomDevice,
       "std::random_device is non-deterministic; seed mgt::Rng explicitly",
       false, false},
      {rules::kRand, "rand()/srand() use hidden global state", false, false},
      {rules::kTime, "time() reads the wall clock outside bench/", false,
       false},
      {rules::kWallClock,
       "std::chrono wall clocks outside bench/ break determinism", false,
       false},
      {rules::kUnorderedIter,
       "iterating an unordered container has unspecified order", false,
       false},
      {rules::kUnitDouble,
       "raw double with a unit-suffixed name; use a strong unit type", false,
       false},
      {rules::kFloat, "float narrows ps-resolution math in src/", false,
       false},
      {rules::kAssert, "assert() compiles out under NDEBUG; use MGT_CHECK",
       false, false},
      {rules::kUsingNamespace,
       "'using namespace' in a header pollutes every includer", false,
       false},
      {rules::kExplicitCtor,
       "single-argument constructors must be explicit", false, false},
      {rules::kCatchIgnore, "empty catch block swallows the exception",
       false, false},
      {rules::kCatchByValue,
       "catching an exception by value slices; catch by const reference",
       true, false},
      {rules::kUncheckedStatus,
       "status-bearing call result discarded as a bare statement", true,
       false},
      {rules::kUncheckedDecode,
       "decode*/parse* call result discarded in src/; the result is the "
       "only evidence the input was valid",
       true, false},
      {rules::kWallclockMetric,
       "wall-clock value feeds a deterministic obs metric sink", false,
       false},
      {rules::kIntrinsics,
       "vendor intrinsics outside src/signal/batch_kernels.*", false, false},
      {rules::kUnboundedWait,
       "blocking wait/join without a deadline in src/", false, false},
      {rules::kParallelMutation,
       "lambda under parallel_for mutates shared state (possibly via a "
       "function in another file)",
       false, true},
      {rules::kNondetFlow,
       "wall-clock/rand-derived value flows into a deterministic sink "
       "across file boundaries",
       false, true},
      {rules::kUnitFlow,
       "unit-carrying value passed to a raw double parameter of a public "
       "API declared elsewhere",
       false, true},
  };
  return kCatalog;
}

const std::vector<std::string_view>& all_rules() {
  static const std::vector<std::string_view> kRules = [] {
    std::vector<std::string_view> ids;
    for (const auto& r : rule_catalog()) {
      ids.push_back(r.id);
    }
    return ids;
  }();
  return kRules;
}

std::uint64_t hash_source_line(std::string_view content, std::size_t line) {
  std::size_t begin = 0;
  for (std::size_t l = 1; l < line && begin < content.size(); ++begin) {
    if (content[begin] == '\n') {
      ++l;
    }
  }
  std::size_t end = begin;
  while (end < content.size() && content[end] != '\n') {
    ++end;
  }
  std::string_view text = content.substr(begin, end - begin);
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a 64
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<Diagnostic> lint_source(std::string_view path,
                                    std::string_view content, FileKind kind) {
  return Linter(path, content, kind).run();
}

std::vector<Diagnostic> lint_source(std::string_view path,
                                    std::string_view content) {
  return lint_source(path, content, classify_path(path));
}

std::vector<Diagnostic> lint_project(const std::vector<ProjectInput>& files) {
  std::vector<Diagnostic> diags;
  std::vector<ParsedUnit> units;
  units.reserve(files.size());
  for (const auto& f : files) {
    const FileKind kind = classify_path(f.path);
    auto file_diags = lint_source(f.path, f.content, kind);
    diags.insert(diags.end(),
                 std::make_move_iterator(file_diags.begin()),
                 std::make_move_iterator(file_diags.end()));
    units.push_back({parse_source(f.path, f.content), kind});
  }
  auto project_diags = run_project_rules(units);
  diags.insert(diags.end(),
               std::make_move_iterator(project_diags.begin()),
               std::make_move_iterator(project_diags.end()));
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.column, a.rule, a.message) <
                     std::tie(b.file, b.line, b.column, b.rule, b.message);
            });
  return diags;
}

std::vector<Diagnostic> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {{path, 0, 0, "io-error", "cannot open file", 0, std::nullopt}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();
  return lint_source(path, content);
}

std::string format_diagnostic(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ":" +
         std::to_string(d.column) + ": [" + d.rule + "] " + d.message;
}

}  // namespace mgtlint
