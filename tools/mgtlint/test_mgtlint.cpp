// Fixture suite for mgtlint: every rule gets at least one known-bad snippet
// (must fire) and one allowlisted snippet (must stay silent), plus lexer and
// scoping edge cases. The snippets live in raw strings, which the lexer
// skips — so this file itself lints clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using mgtlint::Diagnostic;
using mgtlint::FileKind;
using mgtlint::lint_source;

std::vector<std::string> fired_rules(std::string_view path,
                                     std::string_view code) {
  std::vector<std::string> rules;
  for (const auto& d : lint_source(path, code)) {
    rules.push_back(d.rule);
  }
  return rules;
}

bool fires(std::string_view path, std::string_view code,
           std::string_view rule) {
  const auto rules = fired_rules(path, code);
  return std::find(rules.begin(), rules.end(), std::string(rule)) !=
         rules.end();
}

// ------------------------------------------------------------ determinism --

TEST(MgtlintDeterminism, RandomDeviceBad) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    #include <random>
    int seed() { std::random_device rd; return (int)rd(); }
  )",
                    "no-random-device"));
}

TEST(MgtlintDeterminism, RandomDeviceAllowlisted) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    int seed() {
      std::random_device rd;  // mgtlint:allow(no-random-device)
      return (int)rd();
    }
  )",
                     "no-random-device"));
}

TEST(MgtlintDeterminism, AllowOnPreviousLine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    // mgtlint:allow(no-random-device)
    std::random_device rd;
  )",
                     "no-random-device"));
}

TEST(MgtlintDeterminism, RandAndSrandBad) {
  const char* code = R"(
    int roll() { srand(7); return rand(); }
  )";
  EXPECT_TRUE(fires("src/a.cpp", code, "no-rand"));
  const auto rules = fired_rules("src/a.cpp", code);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "no-rand"), 2);
}

TEST(MgtlintDeterminism, RandAllowlistedAndMembersExempt) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    int roll(Rng& rng) { return (int)rng.rand(); }
    int legacy() { return rand(); }  // mgtlint:allow(no-rand)
  )",
                     "no-rand"));
}

TEST(MgtlintDeterminism, RandomizeIdentifierNotConfusedWithRand) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void randomize_codes(int n);
    int strand(int x) { return x; }
  )",
                     "no-rand"));
}

TEST(MgtlintDeterminism, TimeBadOutsideBench) {
  EXPECT_TRUE(fires("src/a.cpp", "long now() { return time(nullptr); }",
                    "no-time"));
  EXPECT_TRUE(fires("tests/t.cpp", "long now() { return time(nullptr); }",
                    "no-time"));
}

TEST(MgtlintDeterminism, TimeAllowedInBenchAndAsMember) {
  EXPECT_FALSE(fires("bench/b.cpp", "long now() { return time(nullptr); }",
                     "no-time"));
  EXPECT_FALSE(fires("src/a.cpp", "auto t = sim.time();", "no-time"));
  EXPECT_FALSE(fires("src/a.cpp",
                     "double rise_time(int code); auto x = rise_time(3);",
                     "no-time"));
}

TEST(MgtlintDeterminism, TimeAllowlisted) {
  EXPECT_FALSE(fires("src/a.cpp",
                     "long now() { return time(nullptr); }  "
                     "// mgtlint:allow(no-time)",
                     "no-time"));
}

TEST(MgtlintDeterminism, WallClockBadOutsideBench) {
  EXPECT_TRUE(fires("src/a.cpp",
                    "auto t = std::chrono::steady_clock::now();",
                    "no-wall-clock"));
  EXPECT_TRUE(fires("examples/e.cpp",
                    "auto t = std::chrono::system_clock::now();",
                    "no-wall-clock"));
}

TEST(MgtlintDeterminism, WallClockAllowedInBenchAndAllowlisted) {
  EXPECT_FALSE(fires("bench/b.cpp",
                     "auto t = std::chrono::steady_clock::now();",
                     "no-wall-clock"));
  EXPECT_FALSE(fires("src/a.cpp",
                     "auto t = std::chrono::steady_clock::now();  "
                     "// mgtlint:allow(no-wall-clock)",
                     "no-wall-clock"));
}

TEST(MgtlintDeterminism, UnorderedIterationBad) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    #include <unordered_map>
    double total(const std::unordered_map<int, double>& weights) {
      double sum = 0.0;
      for (const auto& kv : weights) { sum += kv.second; }
      return sum;
    }
  )",
                    "no-unordered-iter"));
}

TEST(MgtlintDeterminism, UnorderedBeginCallBad) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    std::unordered_set<int> pool;
    auto it = pool.begin();
  )",
                    "no-unordered-iter"));
}

TEST(MgtlintDeterminism, UnorderedIterationAllowlistedAndLookupFine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    std::unordered_map<int, double> weights;
    double w = weights.at(3);          // keyed lookup: order-independent
    // mgtlint:allow(no-unordered-iter)
    for (const auto& kv : weights) { use(kv); }
  )",
                     "no-unordered-iter"));
}

TEST(MgtlintDeterminism, OrderedContainerIterationFine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    std::map<int, double> weights;
    for (const auto& kv : weights) { use(kv); }
  )",
                     "no-unordered-iter"));
}

// --------------------------------------------------- wall-clock -> metrics --

TEST(MgtlintWallclockMetric, ClockIntoFreeHelperBad) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f() {
      obs::add_counter("x", std::chrono::steady_clock::now()
                                .time_since_epoch().count());
    }
  )",
                    "no-wallclock-metric"));
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f() { obs::set_gauge("t", (double)time(nullptr)); }
  )",
                    "no-wallclock-metric"));
}

TEST(MgtlintWallclockMetric, ClockIntoChainedUpdateBad) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f() {
      obs::registry().counter("x").add(clock_gettime(0, nullptr));
    }
  )",
                    "no-wallclock-metric"));
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f() {
      obs::registry().histogram("h", 0.0, 1.0, 8).observe(rdtsc());
    }
  )",
                    "no-wallclock-metric"));
}

TEST(MgtlintWallclockMetric, FiresInBenchFilesToo) {
  // The broad no-wall-clock rule exempts bench/; this one does not — a
  // bench may time itself, but never through a metric.
  EXPECT_TRUE(fires("bench/bench_x.cpp", R"(
    void f() {
      obs::add_counter("x", std::chrono::steady_clock::now()
                                .time_since_epoch().count());
    }
  )",
                    "no-wallclock-metric"));
}

TEST(MgtlintWallclockMetric, SimValuesMembersAndProfileFine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f(std::uint64_t n) { obs::add_counter("x", n); }
  )",
                     "no-wallclock-metric"));
  // `.time()` is a member read, not the libc wall clock.
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f(const Span& s) { obs::set_gauge("t", s.time()); }
  )",
                     "no-wallclock-metric"));
  // profile_add is the designated wall-clock channel (quarantined from the
  // deterministic snapshot), so it is exempt by construction.
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f(std::uint64_t wall_ns) {
      obs::registry().profile_add("scope", 1, 0, wall_ns);
    }
  )",
                     "no-wallclock-metric"));
  // An unrelated call chain ending in .add() is not a metric sink.
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f() { widget().add(std::chrono::steady_clock::now()); }
  )",
                     "no-wallclock-metric"));
}

TEST(MgtlintWallclockMetric, Allowlisted) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f() {
      // mgtlint:allow(no-wallclock-metric)
      obs::add_counter("x", (unsigned long long)time(nullptr));
    }
  )",
                     "no-wallclock-metric"));
}

// ------------------------------------------------------------ unit safety --

TEST(MgtlintUnits, RawDoubleParameterBad) {
  EXPECT_TRUE(fires("src/pecl/x.hpp", "void set_delay(double delay_ps);",
                    "unit-suffix-double"));
  EXPECT_TRUE(fires("src/signal/x.hpp", "void drive(double swing_mv);",
                    "unit-suffix-double"));
  EXPECT_TRUE(fires("src/a.hpp", "struct S { double rate_gbps = 0.0; };",
                    "unit-suffix-double"));
  EXPECT_TRUE(fires("src/a.hpp", "struct S { double f_ghz; };",
                    "unit-suffix-double"));
  EXPECT_TRUE(fires("src/a.hpp", "struct S { double opening_ui; };",
                    "unit-suffix-double"));
}

TEST(MgtlintUnits, RawDoubleAllowlisted) {
  EXPECT_FALSE(fires("src/a.hpp",
                     "void set_delay(double delay_ps);  "
                     "// mgtlint:allow(unit-suffix-double)",
                     "unit-suffix-double"));
}

TEST(MgtlintUnits, StrongTypesAndImplFilesFine) {
  // Strong types carry the unit; the suffix rule only bites raw doubles.
  EXPECT_FALSE(fires("src/a.hpp", "void set_delay(Picoseconds delay);",
                     "unit-suffix-double"));
  // Function *names* with a unit suffix document their return value.
  EXPECT_FALSE(fires("src/a.hpp", "double worst_residual_ps() const;",
                     "unit-suffix-double"));
  // The rule covers the public API surface (headers), not .cpp internals.
  EXPECT_FALSE(fires("src/a.cpp", "void set_delay(double delay_ps) {}",
                     "unit-suffix-double"));
}

TEST(MgtlintUnits, FloatInSrcBad) {
  EXPECT_TRUE(fires("src/a.cpp", "float gain = 1.0f;", "no-float"));
  EXPECT_TRUE(fires("src/a.hpp", "float gain();", "no-float"));
}

TEST(MgtlintUnits, FloatAllowlistedAndOutsideSrcFine) {
  EXPECT_FALSE(fires("src/a.cpp",
                     "float gain = 1.0f;  // mgtlint:allow(no-float)",
                     "no-float"));
  EXPECT_FALSE(fires("bench/b.cpp", "float gain = 1.0f;", "no-float"));
  // Words containing "float" are not the keyword.
  EXPECT_FALSE(fires("src/a.cpp", "bool floating_output = false;",
                     "no-float"));
}

// ------------------------------------------------------- contract hygiene --

TEST(MgtlintContracts, AssertBad) {
  EXPECT_TRUE(fires("src/a.cpp", "void f(int n) { assert(n > 0); }",
                    "no-assert"));
}

TEST(MgtlintContracts, AssertAllowlistedAndRelativesFine) {
  EXPECT_FALSE(fires("src/a.cpp",
                     "void f(int n) { assert(n > 0); }  "
                     "// mgtlint:allow(no-assert)",
                     "no-assert"));
  EXPECT_FALSE(fires("src/a.cpp", "static_assert(sizeof(int) == 4);",
                     "no-assert"));
  EXPECT_FALSE(fires("tests/t.cpp", "ASSERT_EQ(a, b); MGT_CHECK(a > 0);",
                     "no-assert"));
}

TEST(MgtlintContracts, UsingNamespaceHeaderBad) {
  EXPECT_TRUE(fires("src/a.hpp", "using namespace std;",
                    "no-using-namespace-header"));
}

TEST(MgtlintContracts, UsingNamespaceCppFineAndAllowlisted) {
  EXPECT_FALSE(fires("src/a.cpp", "using namespace mgt;",
                     "no-using-namespace-header"));
  EXPECT_FALSE(fires("src/a.hpp",
                     "using namespace std;  "
                     "// mgtlint:allow(no-using-namespace-header)",
                     "no-using-namespace-header"));
  EXPECT_FALSE(fires("src/a.hpp", "using mgt::Picoseconds;",
                     "no-using-namespace-header"));
}

TEST(MgtlintContracts, NonExplicitSingleArgCtorBad) {
  EXPECT_TRUE(fires("src/a.hpp", R"(
    class Delay {
    public:
      Delay(double ps);
    };
  )",
                    "explicit-ctor"));
  // Trailing defaulted params still make it single-argument callable.
  EXPECT_TRUE(fires("src/a.hpp", R"(
    struct Delay {
      Delay(double ps, int taps = 4);
    };
  )",
                    "explicit-ctor"));
}

TEST(MgtlintContracts, ExplicitCtorAndSpecialMembersFine) {
  EXPECT_FALSE(fires("src/a.hpp", R"(
    class Delay {
    public:
      Delay() = default;
      explicit Delay(double ps);
      constexpr explicit Delay(int code);
      Delay(const Delay& other) = default;
      Delay(Delay&& other) = default;
      Delay(double ps, int taps);
      ~Delay();
    private:
      double ps_ = 0.0;
    };
  )",
                     "explicit-ctor"));
}

TEST(MgtlintContracts, CtorAllowlisted) {
  EXPECT_FALSE(fires("src/a.hpp", R"(
    class Delay {
    public:
      Delay(double ps);  // mgtlint:allow(explicit-ctor)
    };
  )",
                     "explicit-ctor"));
}

TEST(MgtlintContracts, MemberInitListDelegationNotFlagged) {
  EXPECT_FALSE(fires("src/a.hpp", R"(
    class Delay {
    public:
      explicit Delay(double ps) : ps_(ps) {}
      Delay(int code, double step) : Delay(code * step) {}
    private:
      double ps_;
    };
  )",
                     "explicit-ctor"));
}

TEST(MgtlintContracts, NestedClassTracking) {
  EXPECT_TRUE(fires("src/a.hpp", R"(
    class Outer {
    public:
      struct Config {
        Config(int bins);
      };
      explicit Outer(Config c);
    };
  )",
                    "explicit-ctor"));
}

TEST(MgtlintContracts, EmptyCatchBad) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f() {
      try { g(); } catch (...) {}
    }
  )",
                    "no-catch-ignore"));
  // A comment is not handling: the lexer strips it, the body stays empty.
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f() {
      try { g(); } catch (const Error&) { /* best effort */ }
    }
  )",
                    "no-catch-ignore"));
}

TEST(MgtlintContracts, NonEmptyCatchAndAllowlistedFine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f() {
      try { g(); } catch (const Error& e) { ++failures; }
    }
  )",
                     "no-catch-ignore"));
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f() {
      // mgtlint:allow(no-catch-ignore)
      try { g(); } catch (...) {}
    }
  )",
                     "no-catch-ignore"));
  // Outside src/ the rule stays quiet (tests legitimately probe throws).
  EXPECT_FALSE(fires("tests/a.cpp", R"(
    void f() {
      try { g(); } catch (...) {}
    }
  )",
                     "no-catch-ignore"));
}

TEST(MgtlintContracts, CatchByValueBad) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f() {
      try { g(); } catch (Error e) { log(e); }
    }
  )",
                    "catch-by-reference"));
}

TEST(MgtlintContracts, CatchByReferenceEllipsisAndAllowlistedFine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f() {
      try { g(); } catch (const Error& e) { log(e); }
    }
  )",
                     "catch-by-reference"));
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f() {
      try { g(); } catch (...) { ++failures; }
    }
  )",
                     "catch-by-reference"));
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f() {
      // mgtlint:allow(catch-by-reference)
      try { g(); } catch (Error e) { log(e); }
    }
  )",
                     "catch-by-reference"));
}

TEST(MgtlintContracts, UncheckedStatusBad) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f(core::TestSystem& sys) {
      sys.self_test();
    }
  )",
                    "no-unchecked-status"));
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f(link::LinkChannel& ch, const BitVector& p) {
      ch.send_payload(p);
    }
  )",
                    "no-unchecked-status"));
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f(Deep& d) {
      d.sys->inner.self_test();
    }
  )",
                    "no-unchecked-status"));
}

TEST(MgtlintContracts, UncheckedStatusConsumedResultFine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    bool f(core::TestSystem& sys) {
      const auto report = sys.self_test();
      return sys.self_test().worst() == fault::HealthStatus::kOk;
    }
  )",
                     "no-unchecked-status"));
  EXPECT_FALSE(fires("src/a.cpp", R"(
    fault::HealthReport f(core::TestSystem& sys) {
      return sys.self_test();
    }
  )",
                     "no-unchecked-status"));
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f(link::LinkChannel& ch, const std::vector<BitVector>& ps) {
      const auto results = ch.transfer(ps);
      if (ch.send_payload(ps[0]).delivered) { note(); }
    }
  )",
                     "no-unchecked-status"));
}

TEST(MgtlintContracts, UncheckedStatusVoidCastAndAllowlistedFine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f(core::TestSystem& sys) {
      (void)sys.self_test();
    }
  )",
                     "no-unchecked-status"));
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f(link::LinkChannel& ch, const BitVector& p) {
      ch.send_payload(p);  // mgtlint:allow(no-unchecked-status)
    }
  )",
                     "no-unchecked-status"));
}

// ------------------------------------------------------------------ lexer --

TEST(MgtlintLexer, StringsCommentsAndIncludesAreSkipped) {
  EXPECT_FALSE(fires("src/a.cpp", R"__(
    #include <ctime>
    const char* label = "guard time (each side)";
    // calling time() here would be bad
    /* std::random_device in prose */
    char c = '"';
  )__",
                     "no-time"));
  EXPECT_FALSE(fires("src/a.cpp", "const char* s = \"rand()\";", "no-rand"));
  EXPECT_FALSE(fires("src/a.cpp",
                     "const char* s = R\"(std::random_device)\";",
                     "no-random-device"));
}

TEST(MgtlintLexer, AllowListsMultipleRules) {
  EXPECT_TRUE(fired_rules("src/a.cpp",
                          "// mgtlint:allow(no-rand, no-time)\n"
                          "int x = rand() + (int)time(nullptr);")
                  .empty());
}

TEST(MgtlintLexer, AllowOfOneRuleDoesNotSuppressAnother) {
  EXPECT_TRUE(fires("src/a.cpp",
                    "int x = rand();  // mgtlint:allow(no-time)", "no-rand"));
}

TEST(MgtlintLexer, DiagnosticPositionsAreOneBased) {
  const auto diags = lint_source("src/a.cpp", "int x = rand();");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 1u);
  EXPECT_EQ(diags[0].column, 9u);
  EXPECT_EQ(mgtlint::format_diagnostic(diags[0]).substr(0, 14),
            "src/a.cpp:1:9:");
}

// ------------------------------------------------------------------ misc --

TEST(MgtlintMisc, ClassifyPath) {
  EXPECT_EQ(mgtlint::classify_path("src/pecl/mux.hpp"),
            FileKind::kSourceHeader);
  EXPECT_EQ(mgtlint::classify_path("/root/repo/src/pecl/mux.cpp"),
            FileKind::kSourceImpl);
  EXPECT_EQ(mgtlint::classify_path("bench/bench_common.hpp"),
            FileKind::kBenchFile);
  EXPECT_EQ(mgtlint::classify_path("tests/test_core.cpp"),
            FileKind::kTestFile);
  EXPECT_EQ(mgtlint::classify_path("examples/quickstart.cpp"),
            FileKind::kExampleFile);
  EXPECT_EQ(mgtlint::classify_path("tools/mgtlint/lint.cpp"),
            FileKind::kToolFile);
}

// ------------------------------------------------- intrinsics containment --

TEST(MgtlintIntrinsics, IntrinsicOutsideKernelsBad) {
  EXPECT_TRUE(fires("src/signal/render.cpp", R"(
    #include <emmintrin.h>
    double sum2(const double* v) {
      __m128d x = _mm_loadu_pd(v);
      x = _mm_add_pd(x, x);
      double out[2];
      _mm_storeu_pd(out, x);
      return out[0];
    }
  )",
                    "no-intrinsics-outside-kernels"));
}

TEST(MgtlintIntrinsics, VectorTypeInHeaderBad) {
  EXPECT_TRUE(fires("src/analysis/eye.hpp", R"(
    struct Acc { __m256d lanes; };
  )",
                    "no-intrinsics-outside-kernels"));
}

TEST(MgtlintIntrinsics, KernelTranslationUnitAllowed) {
  EXPECT_FALSE(fires("src/signal/batch_kernels.cpp", R"(
    #include <emmintrin.h>
    void k(const double* v, double* out) {
      __m128d x = _mm_min_pd(_mm_loadu_pd(v), _mm_loadu_pd(v + 2));
      _mm_storeu_pd(out, x);
    }
  )",
                     "no-intrinsics-outside-kernels"));
}

TEST(MgtlintIntrinsics, KernelHeaderAllowed) {
  EXPECT_FALSE(fires("src/signal/batch_kernels.hpp", R"(
    void range_minmax_sse2(const double* v, unsigned long n, double* lo,
                           double* hi);
  )",
                     "no-intrinsics-outside-kernels"));
}

TEST(MgtlintIntrinsics, AllowlistSuppresses) {
  EXPECT_FALSE(fires("src/signal/render.cpp", R"(
    __m128d x;  // mgtlint:allow(no-intrinsics-outside-kernels)
  )",
                     "no-intrinsics-outside-kernels"));
}

TEST(MgtlintIntrinsics, PlainIdentifiersDoNotFire) {
  EXPECT_FALSE(fires("src/signal/render.cpp", R"(
    int mm_total = 0;
    void bump(int _mmio) { mm_total += _mmio; }
  )",
                     "no-intrinsics-outside-kernels"));
}

TEST(MgtlintMisc, AllRulesListsEveryRuleOnce) {
  const auto& rules = mgtlint::all_rules();
  EXPECT_EQ(rules.size(), 15u);
  for (const auto rule : rules) {
    EXPECT_EQ(std::count(rules.begin(), rules.end(), rule), 1)
        << std::string(rule);
  }
}

TEST(MgtlintMisc, MissingFileReportsIoError) {
  const auto diags = mgtlint::lint_file("definitely/not/a/file.cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "io-error");
}

}  // namespace
