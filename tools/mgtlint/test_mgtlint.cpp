// Fixture suite for mgtlint: every rule gets at least one known-bad snippet
// (must fire) and one allowlisted snippet (must stay silent), plus lexer and
// scoping edge cases. The snippets live in raw strings, which the lexer
// skips — so this file itself lints clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baseline.hpp"
#include "lint.hpp"
#include "sarif.hpp"

namespace {

using mgtlint::Diagnostic;
using mgtlint::FileKind;
using mgtlint::lint_source;

std::vector<std::string> fired_rules(std::string_view path,
                                     std::string_view code) {
  std::vector<std::string> rules;
  for (const auto& d : lint_source(path, code)) {
    rules.push_back(d.rule);
  }
  return rules;
}

bool fires(std::string_view path, std::string_view code,
           std::string_view rule) {
  const auto rules = fired_rules(path, code);
  return std::find(rules.begin(), rules.end(), std::string(rule)) !=
         rules.end();
}

// ------------------------------------------------------------ determinism --

TEST(MgtlintDeterminism, RandomDeviceBad) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    #include <random>
    int seed() { std::random_device rd; return (int)rd(); }
  )",
                    "no-random-device"));
}

TEST(MgtlintDeterminism, RandomDeviceAllowlisted) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    int seed() {
      std::random_device rd;  // mgtlint:allow(no-random-device)
      return (int)rd();
    }
  )",
                     "no-random-device"));
}

TEST(MgtlintDeterminism, AllowOnPreviousLine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    // mgtlint:allow(no-random-device)
    std::random_device rd;
  )",
                     "no-random-device"));
}

TEST(MgtlintDeterminism, RandAndSrandBad) {
  const char* code = R"(
    int roll() { srand(7); return rand(); }
  )";
  EXPECT_TRUE(fires("src/a.cpp", code, "no-rand"));
  const auto rules = fired_rules("src/a.cpp", code);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), "no-rand"), 2);
}

TEST(MgtlintDeterminism, RandAllowlistedAndMembersExempt) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    int roll(Rng& rng) { return (int)rng.rand(); }
    int legacy() { return rand(); }  // mgtlint:allow(no-rand)
  )",
                     "no-rand"));
}

TEST(MgtlintDeterminism, RandomizeIdentifierNotConfusedWithRand) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void randomize_codes(int n);
    int strand(int x) { return x; }
  )",
                     "no-rand"));
}

TEST(MgtlintDeterminism, TimeBadOutsideBench) {
  EXPECT_TRUE(fires("src/a.cpp", "long now() { return time(nullptr); }",
                    "no-time"));
  EXPECT_TRUE(fires("tests/t.cpp", "long now() { return time(nullptr); }",
                    "no-time"));
}

TEST(MgtlintDeterminism, TimeAllowedInBenchAndAsMember) {
  EXPECT_FALSE(fires("bench/b.cpp", "long now() { return time(nullptr); }",
                     "no-time"));
  EXPECT_FALSE(fires("src/a.cpp", "auto t = sim.time();", "no-time"));
  EXPECT_FALSE(fires("src/a.cpp",
                     "double rise_time(int code); auto x = rise_time(3);",
                     "no-time"));
}

TEST(MgtlintDeterminism, TimeAllowlisted) {
  EXPECT_FALSE(fires("src/a.cpp",
                     "long now() { return time(nullptr); }  "
                     "// mgtlint:allow(no-time)",
                     "no-time"));
}

TEST(MgtlintDeterminism, WallClockBadOutsideBench) {
  EXPECT_TRUE(fires("src/a.cpp",
                    "auto t = std::chrono::steady_clock::now();",
                    "no-wall-clock"));
  EXPECT_TRUE(fires("examples/e.cpp",
                    "auto t = std::chrono::system_clock::now();",
                    "no-wall-clock"));
}

TEST(MgtlintDeterminism, WallClockAllowedInBenchAndAllowlisted) {
  EXPECT_FALSE(fires("bench/b.cpp",
                     "auto t = std::chrono::steady_clock::now();",
                     "no-wall-clock"));
  EXPECT_FALSE(fires("src/a.cpp",
                     "auto t = std::chrono::steady_clock::now();  "
                     "// mgtlint:allow(no-wall-clock)",
                     "no-wall-clock"));
}

TEST(MgtlintDeterminism, UnorderedIterationBad) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    #include <unordered_map>
    double total(const std::unordered_map<int, double>& weights) {
      double sum = 0.0;
      for (const auto& kv : weights) { sum += kv.second; }
      return sum;
    }
  )",
                    "no-unordered-iter"));
}

TEST(MgtlintDeterminism, UnorderedBeginCallBad) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    std::unordered_set<int> pool;
    auto it = pool.begin();
  )",
                    "no-unordered-iter"));
}

TEST(MgtlintDeterminism, UnorderedIterationAllowlistedAndLookupFine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    std::unordered_map<int, double> weights;
    double w = weights.at(3);          // keyed lookup: order-independent
    // mgtlint:allow(no-unordered-iter)
    for (const auto& kv : weights) { use(kv); }
  )",
                     "no-unordered-iter"));
}

TEST(MgtlintDeterminism, OrderedContainerIterationFine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    std::map<int, double> weights;
    for (const auto& kv : weights) { use(kv); }
  )",
                     "no-unordered-iter"));
}

// --------------------------------------------------- wall-clock -> metrics --

TEST(MgtlintWallclockMetric, ClockIntoFreeHelperBad) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f() {
      obs::add_counter("x", std::chrono::steady_clock::now()
                                .time_since_epoch().count());
    }
  )",
                    "no-wallclock-metric"));
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f() { obs::set_gauge("t", (double)time(nullptr)); }
  )",
                    "no-wallclock-metric"));
}

TEST(MgtlintWallclockMetric, ClockIntoChainedUpdateBad) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f() {
      obs::registry().counter("x").add(clock_gettime(0, nullptr));
    }
  )",
                    "no-wallclock-metric"));
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f() {
      obs::registry().histogram("h", 0.0, 1.0, 8).observe(rdtsc());
    }
  )",
                    "no-wallclock-metric"));
}

TEST(MgtlintWallclockMetric, FiresInBenchFilesToo) {
  // The broad no-wall-clock rule exempts bench/; this one does not — a
  // bench may time itself, but never through a metric.
  EXPECT_TRUE(fires("bench/bench_x.cpp", R"(
    void f() {
      obs::add_counter("x", std::chrono::steady_clock::now()
                                .time_since_epoch().count());
    }
  )",
                    "no-wallclock-metric"));
}

TEST(MgtlintWallclockMetric, SimValuesMembersAndProfileFine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f(std::uint64_t n) { obs::add_counter("x", n); }
  )",
                     "no-wallclock-metric"));
  // `.time()` is a member read, not the libc wall clock.
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f(const Span& s) { obs::set_gauge("t", s.time()); }
  )",
                     "no-wallclock-metric"));
  // profile_add is the designated wall-clock channel (quarantined from the
  // deterministic snapshot), so it is exempt by construction.
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f(std::uint64_t wall_ns) {
      obs::registry().profile_add("scope", 1, 0, wall_ns);
    }
  )",
                     "no-wallclock-metric"));
  // An unrelated call chain ending in .add() is not a metric sink.
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f() { widget().add(std::chrono::steady_clock::now()); }
  )",
                     "no-wallclock-metric"));
}

TEST(MgtlintWallclockMetric, Allowlisted) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f() {
      // mgtlint:allow(no-wallclock-metric)
      obs::add_counter("x", (unsigned long long)time(nullptr));
    }
  )",
                     "no-wallclock-metric"));
}

// ------------------------------------------------------------ unit safety --

TEST(MgtlintUnits, RawDoubleParameterBad) {
  EXPECT_TRUE(fires("src/pecl/x.hpp", "void set_delay(double delay_ps);",
                    "unit-suffix-double"));
  EXPECT_TRUE(fires("src/signal/x.hpp", "void drive(double swing_mv);",
                    "unit-suffix-double"));
  EXPECT_TRUE(fires("src/a.hpp", "struct S { double rate_gbps = 0.0; };",
                    "unit-suffix-double"));
  EXPECT_TRUE(fires("src/a.hpp", "struct S { double f_ghz; };",
                    "unit-suffix-double"));
  EXPECT_TRUE(fires("src/a.hpp", "struct S { double opening_ui; };",
                    "unit-suffix-double"));
}

TEST(MgtlintUnits, RawDoubleAllowlisted) {
  EXPECT_FALSE(fires("src/a.hpp",
                     "void set_delay(double delay_ps);  "
                     "// mgtlint:allow(unit-suffix-double)",
                     "unit-suffix-double"));
}

TEST(MgtlintUnits, StrongTypesAndImplFilesFine) {
  // Strong types carry the unit; the suffix rule only bites raw doubles.
  EXPECT_FALSE(fires("src/a.hpp", "void set_delay(Picoseconds delay);",
                     "unit-suffix-double"));
  // Function *names* with a unit suffix document their return value.
  EXPECT_FALSE(fires("src/a.hpp", "double worst_residual_ps() const;",
                     "unit-suffix-double"));
  // The rule covers the public API surface (headers), not .cpp internals.
  EXPECT_FALSE(fires("src/a.cpp", "void set_delay(double delay_ps) {}",
                     "unit-suffix-double"));
}

TEST(MgtlintUnits, FloatInSrcBad) {
  EXPECT_TRUE(fires("src/a.cpp", "float gain = 1.0f;", "no-float"));
  EXPECT_TRUE(fires("src/a.hpp", "float gain();", "no-float"));
}

TEST(MgtlintUnits, FloatAllowlistedAndOutsideSrcFine) {
  EXPECT_FALSE(fires("src/a.cpp",
                     "float gain = 1.0f;  // mgtlint:allow(no-float)",
                     "no-float"));
  EXPECT_FALSE(fires("bench/b.cpp", "float gain = 1.0f;", "no-float"));
  // Words containing "float" are not the keyword.
  EXPECT_FALSE(fires("src/a.cpp", "bool floating_output = false;",
                     "no-float"));
}

// ------------------------------------------------------- contract hygiene --

TEST(MgtlintContracts, AssertBad) {
  EXPECT_TRUE(fires("src/a.cpp", "void f(int n) { assert(n > 0); }",
                    "no-assert"));
}

TEST(MgtlintContracts, AssertAllowlistedAndRelativesFine) {
  EXPECT_FALSE(fires("src/a.cpp",
                     "void f(int n) { assert(n > 0); }  "
                     "// mgtlint:allow(no-assert)",
                     "no-assert"));
  EXPECT_FALSE(fires("src/a.cpp", "static_assert(sizeof(int) == 4);",
                     "no-assert"));
  EXPECT_FALSE(fires("tests/t.cpp", "ASSERT_EQ(a, b); MGT_CHECK(a > 0);",
                     "no-assert"));
}

TEST(MgtlintContracts, UsingNamespaceHeaderBad) {
  EXPECT_TRUE(fires("src/a.hpp", "using namespace std;",
                    "no-using-namespace-header"));
}

TEST(MgtlintContracts, UsingNamespaceCppFineAndAllowlisted) {
  EXPECT_FALSE(fires("src/a.cpp", "using namespace mgt;",
                     "no-using-namespace-header"));
  EXPECT_FALSE(fires("src/a.hpp",
                     "using namespace std;  "
                     "// mgtlint:allow(no-using-namespace-header)",
                     "no-using-namespace-header"));
  EXPECT_FALSE(fires("src/a.hpp", "using mgt::Picoseconds;",
                     "no-using-namespace-header"));
}

TEST(MgtlintContracts, NonExplicitSingleArgCtorBad) {
  EXPECT_TRUE(fires("src/a.hpp", R"(
    class Delay {
    public:
      Delay(double ps);
    };
  )",
                    "explicit-ctor"));
  // Trailing defaulted params still make it single-argument callable.
  EXPECT_TRUE(fires("src/a.hpp", R"(
    struct Delay {
      Delay(double ps, int taps = 4);
    };
  )",
                    "explicit-ctor"));
}

TEST(MgtlintContracts, ExplicitCtorAndSpecialMembersFine) {
  EXPECT_FALSE(fires("src/a.hpp", R"(
    class Delay {
    public:
      Delay() = default;
      explicit Delay(double ps);
      constexpr explicit Delay(int code);
      Delay(const Delay& other) = default;
      Delay(Delay&& other) = default;
      Delay(double ps, int taps);
      ~Delay();
    private:
      double ps_ = 0.0;
    };
  )",
                     "explicit-ctor"));
}

TEST(MgtlintContracts, CtorAllowlisted) {
  EXPECT_FALSE(fires("src/a.hpp", R"(
    class Delay {
    public:
      Delay(double ps);  // mgtlint:allow(explicit-ctor)
    };
  )",
                     "explicit-ctor"));
}

TEST(MgtlintContracts, MemberInitListDelegationNotFlagged) {
  EXPECT_FALSE(fires("src/a.hpp", R"(
    class Delay {
    public:
      explicit Delay(double ps) : ps_(ps) {}
      Delay(int code, double step) : Delay(code * step) {}
    private:
      double ps_;
    };
  )",
                     "explicit-ctor"));
}

TEST(MgtlintContracts, NestedClassTracking) {
  EXPECT_TRUE(fires("src/a.hpp", R"(
    class Outer {
    public:
      struct Config {
        Config(int bins);
      };
      explicit Outer(Config c);
    };
  )",
                    "explicit-ctor"));
}

TEST(MgtlintContracts, EmptyCatchBad) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f() {
      try { g(); } catch (...) {}
    }
  )",
                    "no-catch-ignore"));
  // A comment is not handling: the lexer strips it, the body stays empty.
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f() {
      try { g(); } catch (const Error&) { /* best effort */ }
    }
  )",
                    "no-catch-ignore"));
}

TEST(MgtlintContracts, NonEmptyCatchAndAllowlistedFine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f() {
      try { g(); } catch (const Error& e) { ++failures; }
    }
  )",
                     "no-catch-ignore"));
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f() {
      // mgtlint:allow(no-catch-ignore)
      try { g(); } catch (...) {}
    }
  )",
                     "no-catch-ignore"));
  // Outside src/ the rule stays quiet (tests legitimately probe throws).
  EXPECT_FALSE(fires("tests/a.cpp", R"(
    void f() {
      try { g(); } catch (...) {}
    }
  )",
                     "no-catch-ignore"));
}

TEST(MgtlintContracts, CatchByValueBad) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f() {
      try { g(); } catch (Error e) { log(e); }
    }
  )",
                    "catch-by-reference"));
}

TEST(MgtlintContracts, CatchByReferenceEllipsisAndAllowlistedFine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f() {
      try { g(); } catch (const Error& e) { log(e); }
    }
  )",
                     "catch-by-reference"));
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f() {
      try { g(); } catch (...) { ++failures; }
    }
  )",
                     "catch-by-reference"));
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f() {
      // mgtlint:allow(catch-by-reference)
      try { g(); } catch (Error e) { log(e); }
    }
  )",
                     "catch-by-reference"));
}

TEST(MgtlintContracts, UncheckedStatusBad) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f(core::TestSystem& sys) {
      sys.self_test();
    }
  )",
                    "no-unchecked-status"));
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f(link::LinkChannel& ch, const BitVector& p) {
      ch.send_payload(p);
    }
  )",
                    "no-unchecked-status"));
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f(Deep& d) {
      d.sys->inner.self_test();
    }
  )",
                    "no-unchecked-status"));
}

TEST(MgtlintContracts, UncheckedStatusConsumedResultFine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    bool f(core::TestSystem& sys) {
      const auto report = sys.self_test();
      return sys.self_test().worst() == fault::HealthStatus::kOk;
    }
  )",
                     "no-unchecked-status"));
  EXPECT_FALSE(fires("src/a.cpp", R"(
    fault::HealthReport f(core::TestSystem& sys) {
      return sys.self_test();
    }
  )",
                     "no-unchecked-status"));
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f(link::LinkChannel& ch, const std::vector<BitVector>& ps) {
      const auto results = ch.transfer(ps);
      if (ch.send_payload(ps[0]).delivered) { note(); }
    }
  )",
                     "no-unchecked-status"));
}

TEST(MgtlintContracts, UncheckedStatusVoidCastAndAllowlistedFine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f(core::TestSystem& sys) {
      (void)sys.self_test();
    }
  )",
                     "no-unchecked-status"));
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f(link::LinkChannel& ch, const BitVector& p) {
      ch.send_payload(p);  // mgtlint:allow(no-unchecked-status)
    }
  )",
                     "no-unchecked-status"));
}

TEST(MgtlintContracts, UncheckedDecodeBad) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f(const std::uint8_t* p, std::size_t n, Record& out) {
      telemetry::decode_payload(PacketType::kWaveformChunk, p, n, out);
    }
  )",
                    "no-unchecked-decode"));
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f(const char* raw) {
      util::parse_env_u64(raw);
    }
  )",
                    "no-unchecked-decode"));
  EXPECT_TRUE(fires("src/a.cpp", R"(
    void f(Frame& frame, const Bytes& b) {
      frame.decoder.decode_frame(b);
    }
  )",
                    "no-unchecked-decode"));
}

TEST(MgtlintContracts, UncheckedDecodeCheckedResultFine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    bool f(const std::uint8_t* p, std::size_t n, Record& out) {
      if (!telemetry::decode_payload(PacketType::kWaveformChunk, p, n, out)) {
        return false;
      }
      const auto v = util::parse_env_u64(raw);
      return parse_env_flag(raw).has_value();
    }
  )",
                     "no-unchecked-decode"));
}

TEST(MgtlintContracts, UncheckedDecodeVoidCastAllowAndNonSrcFine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f(const char* raw) {
      (void)util::parse_env_u64(raw);
    }
  )",
                     "no-unchecked-decode"));
  EXPECT_FALSE(fires("src/a.cpp", R"(
    void f(const char* raw) {
      util::parse_env_u64(raw);  // mgtlint:allow(no-unchecked-decode)
    }
  )",
                     "no-unchecked-decode"));
  // Outside src/ the rule stays quiet: tests/benches legitimately call
  // decoders for side effects on counters.
  EXPECT_FALSE(fires("tests/t.cpp", R"(
    void f(const char* raw) {
      util::parse_env_u64(raw);
    }
  )",
                     "no-unchecked-decode"));
}

// ------------------------------------------------------------------ lexer --

TEST(MgtlintLexer, StringsCommentsAndIncludesAreSkipped) {
  EXPECT_FALSE(fires("src/a.cpp", R"__(
    #include <ctime>
    const char* label = "guard time (each side)";
    // calling time() here would be bad
    /* std::random_device in prose */
    char c = '"';
  )__",
                     "no-time"));
  EXPECT_FALSE(fires("src/a.cpp", "const char* s = \"rand()\";", "no-rand"));
  EXPECT_FALSE(fires("src/a.cpp",
                     "const char* s = R\"(std::random_device)\";",
                     "no-random-device"));
}

TEST(MgtlintLexer, AllowListsMultipleRules) {
  EXPECT_TRUE(fired_rules("src/a.cpp",
                          "// mgtlint:allow(no-rand, no-time)\n"
                          "int x = rand() + (int)time(nullptr);")
                  .empty());
}

TEST(MgtlintLexer, AllowOfOneRuleDoesNotSuppressAnother) {
  EXPECT_TRUE(fires("src/a.cpp",
                    "int x = rand();  // mgtlint:allow(no-time)", "no-rand"));
}

TEST(MgtlintLexer, DiagnosticPositionsAreOneBased) {
  const auto diags = lint_source("src/a.cpp", "int x = rand();");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 1u);
  EXPECT_EQ(diags[0].column, 9u);
  EXPECT_EQ(mgtlint::format_diagnostic(diags[0]).substr(0, 14),
            "src/a.cpp:1:9:");
}

// ------------------------------------------------------------------ misc --

TEST(MgtlintMisc, ClassifyPath) {
  EXPECT_EQ(mgtlint::classify_path("src/pecl/mux.hpp"),
            FileKind::kSourceHeader);
  EXPECT_EQ(mgtlint::classify_path("/root/repo/src/pecl/mux.cpp"),
            FileKind::kSourceImpl);
  EXPECT_EQ(mgtlint::classify_path("bench/bench_common.hpp"),
            FileKind::kBenchFile);
  EXPECT_EQ(mgtlint::classify_path("tests/test_core.cpp"),
            FileKind::kTestFile);
  EXPECT_EQ(mgtlint::classify_path("examples/quickstart.cpp"),
            FileKind::kExampleFile);
  EXPECT_EQ(mgtlint::classify_path("tools/mgtlint/lint.cpp"),
            FileKind::kToolFile);
}

// ------------------------------------------------- intrinsics containment --

TEST(MgtlintIntrinsics, IntrinsicOutsideKernelsBad) {
  EXPECT_TRUE(fires("src/signal/render.cpp", R"(
    #include <emmintrin.h>
    double sum2(const double* v) {
      __m128d x = _mm_loadu_pd(v);
      x = _mm_add_pd(x, x);
      double out[2];
      _mm_storeu_pd(out, x);
      return out[0];
    }
  )",
                    "no-intrinsics-outside-kernels"));
}

TEST(MgtlintIntrinsics, VectorTypeInHeaderBad) {
  EXPECT_TRUE(fires("src/analysis/eye.hpp", R"(
    struct Acc { __m256d lanes; };
  )",
                    "no-intrinsics-outside-kernels"));
}

TEST(MgtlintIntrinsics, KernelTranslationUnitAllowed) {
  EXPECT_FALSE(fires("src/signal/batch_kernels.cpp", R"(
    #include <emmintrin.h>
    void k(const double* v, double* out) {
      __m128d x = _mm_min_pd(_mm_loadu_pd(v), _mm_loadu_pd(v + 2));
      _mm_storeu_pd(out, x);
    }
  )",
                     "no-intrinsics-outside-kernels"));
}

TEST(MgtlintIntrinsics, KernelHeaderAllowed) {
  EXPECT_FALSE(fires("src/signal/batch_kernels.hpp", R"(
    void range_minmax_sse2(const double* v, unsigned long n, double* lo,
                           double* hi);
  )",
                     "no-intrinsics-outside-kernels"));
}

TEST(MgtlintIntrinsics, AllowlistSuppresses) {
  EXPECT_FALSE(fires("src/signal/render.cpp", R"(
    __m128d x;  // mgtlint:allow(no-intrinsics-outside-kernels)
  )",
                     "no-intrinsics-outside-kernels"));
}

TEST(MgtlintIntrinsics, PlainIdentifiersDoNotFire) {
  EXPECT_FALSE(fires("src/signal/render.cpp", R"(
    int mm_total = 0;
    void bump(int _mmio) { mm_total += _mmio; }
  )",
                     "no-intrinsics-outside-kernels"));
}

// -------------------------------------------------------- unbounded wait --

TEST(MgtlintUnboundedWait, CondVarWaitBad) {
  EXPECT_TRUE(fires("src/util/pool.cpp", R"(
    void block(std::condition_variable& cv, std::unique_lock<std::mutex>& l) {
      cv.wait(l);
    }
  )",
                    "no-unbounded-wait"));
}

TEST(MgtlintUnboundedWait, ThreadJoinAndSemaphoreAcquireBad) {
  EXPECT_TRUE(fires("src/service/scheduler.cpp", R"(
    void stop(std::thread& t) { t.join(); }
  )",
                    "no-unbounded-wait"));
  EXPECT_TRUE(fires("src/service/scheduler.cpp", R"(
    void take(std::counting_semaphore<4>& s) { s.acquire(); }
  )",
                    "no-unbounded-wait"));
}

TEST(MgtlintUnboundedWait, ArrowAccessBad) {
  EXPECT_TRUE(fires("src/util/pool.cpp", R"(
    void block(std::condition_variable* cv,
               std::unique_lock<std::mutex>& l) { cv->wait(l); }
  )",
                    "no-unbounded-wait"));
}

TEST(MgtlintUnboundedWait, DeadlineVariantsFine) {
  EXPECT_FALSE(fires("src/util/pool.cpp", R"(
    bool block(std::condition_variable& cv, std::unique_lock<std::mutex>& l,
               std::chrono::milliseconds d) {
      return cv.wait_for(l, d) == std::cv_status::no_timeout;
    }
    bool take(std::counting_semaphore<4>& s, std::chrono::milliseconds d) {
      return s.try_acquire_for(d);
    }
  )",
                     "no-unbounded-wait"));
}

TEST(MgtlintUnboundedWait, FreeFunctionsAndOtherTreesFine) {
  // A free function named wait() is not a blocking primitive call, and the
  // rule only polices src/ (tests and benches may block indefinitely).
  EXPECT_FALSE(fires("src/core/sim.cpp", R"(
    void wait(int ticks);
    void run() { wait(4); }
  )",
                     "no-unbounded-wait"));
  EXPECT_FALSE(fires("tests/test_pool.cpp", R"(
    void stop(std::thread& t) { t.join(); }
  )",
                     "no-unbounded-wait"));
}

TEST(MgtlintUnboundedWait, AllowlistSuppresses) {
  EXPECT_FALSE(fires("src/util/pool.cpp", R"(
    void stop(std::thread& t) {
      t.join();  // mgtlint:allow(no-unbounded-wait)
    }
  )",
                     "no-unbounded-wait"));
}

TEST(MgtlintMisc, AllRulesListsEveryRuleOnce) {
  const auto& rules = mgtlint::all_rules();
  EXPECT_EQ(rules.size(), 20u);
  for (const auto rule : rules) {
    EXPECT_EQ(std::count(rules.begin(), rules.end(), rule), 1)
        << std::string(rule);
  }
}

TEST(MgtlintMisc, CatalogMarksCrossTuAndFixableRules) {
  int cross_tu = 0;
  int fixable = 0;
  for (const auto& r : mgtlint::rule_catalog()) {
    cross_tu += r.cross_tu ? 1 : 0;
    fixable += r.fixable ? 1 : 0;
  }
  EXPECT_EQ(cross_tu, 3);
  EXPECT_EQ(fixable, 3);
}

TEST(MgtlintMisc, MissingFileReportsIoError) {
  const auto diags = mgtlint::lint_file("definitely/not/a/file.cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "io-error");
}

// ------------------------------------------- allow directive attribution --

// Regression: a directive inside a multi-line /* */ comment must be
// attributed to the line it is *written* on, not the comment's first line.
TEST(MgtlintAllow, DirectiveOnLastCommentLineCoversNextLine) {
  EXPECT_FALSE(fires("src/a.cpp", R"(
    /* legacy seeding, scheduled for removal
       mgtlint:allow(no-rand) */
    int r() { return rand(); }
  )",
                     "no-rand"));
}

TEST(MgtlintAllow, DirectiveOnFirstCommentLineDoesNotReachPastComment) {
  EXPECT_TRUE(fires("src/a.cpp", R"(
    /* mgtlint:allow(no-rand)
       two more lines of prose push the code
       out of the directive's reach */
    int r() { return rand(); }
  )",
                    "no-rand"));
}

// ----------------------------------------------------- cross-TU: helpers --

std::vector<Diagnostic> project(
    std::vector<mgtlint::ProjectInput> files) {
  return mgtlint::lint_project(std::move(files));
}

bool project_fires(std::vector<mgtlint::ProjectInput> files,
                   std::string_view rule) {
  for (const auto& d : project(std::move(files))) {
    if (d.rule == rule) {
      return true;
    }
  }
  return false;
}

// ------------------------------------- cross-TU: parallel-capture family --

// The headline case: each file lints clean in isolation (what v1 saw), yet
// the pair is a race — the lambda calls a function defined in another TU
// that increments a file-scope counter.
TEST(MgtlintCrossTu, LambdaCallingGlobalMutatorAcrossFilesFires) {
  const char* stats = R"(
    namespace mgt {
    int g_hits = 0;
    void bump() { g_hits += 1; }
    }  // namespace mgt
  )";
  const char* render = R"(
    namespace mgt {
    void render(std::size_t n) {
      util::parallel_for(n, [&](std::size_t i) { bump(); });
    }
    }  // namespace mgt
  )";
  // Per-file pass (v1's whole view): silent on both halves.
  EXPECT_TRUE(fired_rules("src/stats.cpp", stats).empty());
  EXPECT_TRUE(fired_rules("src/render.cpp", render).empty());
  // Project pass: the index connects bump() to g_hits.
  const auto diags = project({{"src/stats.cpp", stats},
                              {"src/render.cpp", render}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "no-shared-mutation-in-parallel");
  EXPECT_EQ(diags[0].file, "src/render.cpp");
  EXPECT_NE(diags[0].message.find("bump"), std::string::npos);
  EXPECT_NE(diags[0].message.find("g_hits"), std::string::npos);
  EXPECT_NE(diags[0].message.find("src/stats.cpp"), std::string::npos);
}

TEST(MgtlintCrossTu, DirectCapturedAccumulatorFires) {
  EXPECT_TRUE(project_fires({{"src/sum.cpp", R"(
    double sum(const std::vector<double>& v) {
      double total = 0.0;
      util::parallel_for(v.size(), [&](std::size_t i) { total += v[i]; });
      return total;
    }
  )"}},
                            "no-shared-mutation-in-parallel"));
}

TEST(MgtlintCrossTu, PerTaskSlotIdiomStaysSilent) {
  EXPECT_FALSE(project_fires({{"src/sum.cpp", R"(
    void produce(std::vector<double>& partial) {
      util::parallel_for(partial.size(),
                         [&](std::size_t i) { partial[i] = work(i); });
    }
  )"}},
                             "no-shared-mutation-in-parallel"));
}

TEST(MgtlintCrossTu, AtomicCounterStaysSilent) {
  EXPECT_FALSE(project_fires({{"src/count.cpp", R"(
    int count(std::size_t n) {
      std::atomic<int> done{0};
      util::parallel_for(n, [&](std::size_t) { ++done; });
      return done.load();
    }
  )"}},
                             "no-shared-mutation-in-parallel"));
}

TEST(MgtlintCrossTu, LocalStaticMutatorFires) {
  EXPECT_TRUE(project_fires({{"src/memo.cpp", R"(
    int next_id() {
      static int counter = 0;
      counter += 1;
      return counter;
    }
  )"},
                             {"src/tag.cpp", R"(
    void tag_all(std::size_t n) {
      util::parallel_for(n, [&](std::size_t i) { stamp(i, next_id()); });
    }
  )"}},
                            "no-shared-mutation-in-parallel"));
}

TEST(MgtlintCrossTu, SerialLambdaMutationStaysSilent) {
  // Mutation is only a hazard under the parallel layer; a lambda handed to
  // a plain algorithm may accumulate freely.
  EXPECT_FALSE(project_fires({{"src/serial.cpp", R"(
    double sum(const std::vector<double>& v) {
      double total = 0.0;
      std::for_each(v.begin(), v.end(), [&](double x) { total += x; });
      return total;
    }
  )"}},
                             "no-shared-mutation-in-parallel"));
}

TEST(MgtlintCrossTu, ParallelMutationAllowDirectiveSuppresses) {
  EXPECT_FALSE(project_fires({{"src/sum.cpp", R"(
    double sum(const std::vector<double>& v) {
      double total = 0.0;
      // disjoint by construction  mgtlint:allow(no-shared-mutation-in-parallel)
      util::parallel_for(v.size(), [&](std::size_t i) { total += v[i]; });
      return total;
    }
  )"}},
                             "no-shared-mutation-in-parallel"));
}

// ---------------------------------------- cross-TU: nondet-flow family --

// The wall-clock read hides in another file behind a sanctioned
// mgtlint:allow — v1 is silent on both files, the taint still flows.
TEST(MgtlintCrossTu, WallClockFlowsIntoCounterAcrossFilesFires) {
  const char* boot = R"(
    std::uint64_t boot_ns() {
      // startup stamp, quarantined  mgtlint:allow(no-wall-clock)
      auto t = std::chrono::steady_clock::now();
      return (std::uint64_t)t.time_since_epoch().count();
    }
  )";
  const char* metrics = R"(
    void snapshot() { obs::add_counter("boot_ns", boot_ns()); }
  )";
  EXPECT_TRUE(fired_rules("src/boot.cpp", boot).empty());
  EXPECT_TRUE(fired_rules("src/metrics.cpp", metrics).empty());
  const auto diags = project({{"src/boot.cpp", boot},
                              {"src/metrics.cpp", metrics}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "no-nondet-flow");
  EXPECT_EQ(diags[0].file, "src/metrics.cpp");
  EXPECT_NE(diags[0].message.find("steady_clock"), std::string::npos);
  EXPECT_NE(diags[0].message.find("src/boot.cpp"), std::string::npos);
}

TEST(MgtlintCrossTu, NondetFlowIsTransitiveThroughWrappers) {
  const auto diags = project({{"src/boot.cpp", R"(
    std::uint64_t boot_ns() {
      // mgtlint:allow(no-wall-clock)
      auto t = std::chrono::steady_clock::now();
      return (std::uint64_t)t.time_since_epoch().count();
    }
  )"},
                              {"src/uptime.cpp", R"(
    std::uint64_t uptime_ns() { return boot_ns(); }
  )"},
                              {"src/metrics.cpp", R"(
    void snapshot() {
      obs::registry().gauge("uptime").set((double)uptime_ns());
    }
  )"}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "no-nondet-flow");
  EXPECT_NE(diags[0].message.find("uptime_ns"), std::string::npos);
  EXPECT_NE(diags[0].message.find("via"), std::string::npos);
}

TEST(MgtlintCrossTu, RngSeedFromRandFires) {
  EXPECT_TRUE(project_fires({{"src/seed.cpp", R"(
    std::uint64_t entropy() { return (std::uint64_t)rand(); }
  )"},
                             {"src/run.cpp", R"(
    void run(std::size_t i) {
      auto rng = util::task_rng(entropy(), i);
      use(rng);
    }
  )"}},
                            "no-nondet-flow"));
}

TEST(MgtlintCrossTu, DeterministicHelperIntoCounterStaysSilent) {
  EXPECT_FALSE(project_fires({{"src/edges.cpp", R"(
    std::uint64_t count_edges() { return 42; }
  )"},
                              {"src/metrics.cpp", R"(
    void snapshot() { obs::add_counter("edges", count_edges()); }
  )"}},
                             "no-nondet-flow"));
}

TEST(MgtlintCrossTu, ProfileChannelIsQuarantinedNotFlagged) {
  // profile_add is the designated wall-clock channel; routing a timestamp
  // there is the *fix* for this rule, so it must stay silent.
  EXPECT_FALSE(project_fires({{"src/boot.cpp", R"(
    std::uint64_t boot_ns() {
      // mgtlint:allow(no-wall-clock)
      auto t = std::chrono::steady_clock::now();
      return (std::uint64_t)t.time_since_epoch().count();
    }
  )"},
                              {"src/metrics.cpp", R"(
    void snapshot() { obs::registry().profile_add("boot", boot_ns()); }
  )"}},
                             "no-nondet-flow"));
}

TEST(MgtlintCrossTu, NondetFlowInBenchFilesStaysSilent) {
  // Benches time themselves on purpose; the sinks only matter in src/.
  EXPECT_FALSE(project_fires({{"src/boot.cpp", R"(
    std::uint64_t boot_ns() {
      // mgtlint:allow(no-wall-clock)
      auto t = std::chrono::steady_clock::now();
      return (std::uint64_t)t.time_since_epoch().count();
    }
  )"},
                              {"bench/bench_x.cpp", R"(
    void record() { obs::add_counter("boot", boot_ns()); }
  )"}},
                             "no-nondet-flow"));
}

// ------------------------------------------- cross-TU: unit-flow family --

// Declaration in one header, unit-carrying call in another file: neither
// buffer alone betrays the mismatch (the parameter has no unit suffix for
// v1's unit-suffix-double rule to catch).
TEST(MgtlintCrossTu, UnitValueIntoRawDoubleHeaderParamFires) {
  const char* hdr = R"(
    namespace pll {
    void set_phase(double x);
    }  // namespace pll
  )";
  const char* impl = R"(
    void tune(Picoseconds step) { pll::set_phase(step.ps()); }
  )";
  EXPECT_TRUE(fired_rules("src/pll/phase.hpp", hdr).empty());
  EXPECT_TRUE(fired_rules("src/pll/tune.cpp", impl).empty());
  const auto diags = project({{"src/pll/phase.hpp", hdr},
                              {"src/pll/tune.cpp", impl}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "unit-flow-raw-double");
  EXPECT_EQ(diags[0].file, "src/pll/tune.cpp");
  EXPECT_NE(diags[0].message.find("Picoseconds"), std::string::npos);
  EXPECT_NE(diags[0].message.find("set_phase"), std::string::npos);
  EXPECT_NE(diags[0].message.find("src/pll/phase.hpp"), std::string::npos);
}

TEST(MgtlintCrossTu, UnitSuffixedIdentifierAlsoCarriesEvidence) {
  EXPECT_TRUE(project_fires({{"src/pll/phase.hpp", R"(
    void set_phase(double x);
  )"},
                             {"src/pll/tune.cpp", R"(
    void tune(double jitter_ps) { set_phase(jitter_ps); }
  )"}},
                            "unit-flow-raw-double"));
}

TEST(MgtlintCrossTu, StrongTypedParameterStaysSilent) {
  EXPECT_FALSE(project_fires({{"src/pll/phase.hpp", R"(
    void set_phase(Picoseconds x);
  )"},
                              {"src/pll/tune.cpp", R"(
    void tune(Picoseconds step) { set_phase(step); }
  )"}},
                             "unit-flow-raw-double"));
}

TEST(MgtlintCrossTu, UtilNumericSubstrateIsExempt) {
  // rng/digest/hashing deliberately erase units; gaussian(mean, sigma) on
  // raw doubles is the contract there, not an omission.
  EXPECT_FALSE(project_fires({{"src/util/rng.hpp", R"(
    double gaussian(double mean, double sigma);
  )"},
                              {"src/pll/tune.cpp", R"(
    double jitter(Rng& rng, Picoseconds sigma) {
      return gaussian(0.0, sigma.ps());
    }
  )"}},
                             "unit-flow-raw-double"));
}

TEST(MgtlintCrossTu, ImplOnlyDeclarationStaysSilent) {
  // No header declaration -> not a public API boundary; a TU-local helper
  // taking a raw double is fine.
  EXPECT_FALSE(project_fires({{"src/pll/tune.cpp", R"(
    static void set_phase_impl(double x) { poke(x); }
    void tune(Picoseconds step) { set_phase_impl(step.ps()); }
  )"}},
                             "unit-flow-raw-double"));
}

// --------------------------------------------------------------- fixes --

TEST(MgtlintFix, CatchByValueFixRewritesToConstRef) {
  const std::string code = R"(
    void f() {
      try { g(); } catch (std::runtime_error e) { log(e); }
    }
  )";
  const auto diags = lint_source("src/a.cpp", code);
  ASSERT_EQ(diags.size(), 1u);
  ASSERT_TRUE(diags[0].fix.has_value());
  std::string fixed = code;
  fixed.replace(diags[0].fix->begin, diags[0].fix->end - diags[0].fix->begin,
                diags[0].fix->replacement);
  EXPECT_NE(fixed.find("catch (const std::runtime_error& e)"),
            std::string::npos);
  EXPECT_TRUE(lint_source("src/a.cpp", fixed).empty());
}

TEST(MgtlintFix, DiscardedStatusFixInsertsVoidCast) {
  const std::string code = R"(
    void f(System& sys) {
      sys.self_test();
    }
  )";
  const auto diags = lint_source("src/a.cpp", code);
  ASSERT_EQ(diags.size(), 1u);
  ASSERT_TRUE(diags[0].fix.has_value());
  std::string fixed = code;
  fixed.replace(diags[0].fix->begin, diags[0].fix->end - diags[0].fix->begin,
                diags[0].fix->replacement);
  EXPECT_NE(fixed.find("(void)sys.self_test();"), std::string::npos);
  EXPECT_TRUE(lint_source("src/a.cpp", fixed).empty());
}

// ------------------------------------------------------------- baseline --

TEST(MgtlintBaseline, RoundTripSuppressesExactlyTheSnapshot) {
  const std::vector<mgtlint::ProjectInput> files = {
      {"src/sum.cpp", R"(
    double sum(const std::vector<double>& v) {
      double total = 0.0;
      util::parallel_for(v.size(), [&](std::size_t i) { total += v[i]; });
      return total;
    }
  )"}};
  const auto diags = project(files);
  ASSERT_EQ(diags.size(), 1u);
  const std::string text = mgtlint::write_baseline(diags);
  EXPECT_NE(text.find("# mgtlint baseline v1"), std::string::npos);
  const auto entries = mgtlint::parse_baseline(text);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].rule, "no-shared-mutation-in-parallel");
  EXPECT_EQ(entries[0].path, "src/sum.cpp");
  EXPECT_EQ(entries[0].line_hash, diags[0].line_hash);
  EXPECT_TRUE(mgtlint::apply_baseline(diags, entries).empty());
}

TEST(MgtlintBaseline, FingerprintSurvivesLineDrift) {
  const char* v1_code = R"(
    double sum(const std::vector<double>& v) {
      double total = 0.0;
      util::parallel_for(v.size(), [&](std::size_t i) { total += v[i]; });
      return total;
    }
  )";
  // Same finding, pushed three lines down by an unrelated edit.
  const char* v2_code = R"(
    // A header comment added later,
    // spanning several lines,
    // moves everything below it.
    double sum(const std::vector<double>& v) {
      double total = 0.0;
      util::parallel_for(v.size(), [&](std::size_t i) { total += v[i]; });
      return total;
    }
  )";
  const auto baseline = mgtlint::parse_baseline(
      mgtlint::write_baseline(project({{"src/sum.cpp", v1_code}})));
  const auto drifted = project({{"src/sum.cpp", v2_code}});
  ASSERT_EQ(drifted.size(), 1u);
  EXPECT_TRUE(mgtlint::apply_baseline(drifted, baseline).empty());
}

TEST(MgtlintBaseline, NewFindingIsNotSuppressed) {
  const auto baseline = mgtlint::parse_baseline("# mgtlint baseline v1\n");
  const auto diags = project({{"src/sum.cpp", R"(
    double sum(const std::vector<double>& v) {
      double total = 0.0;
      util::parallel_for(v.size(), [&](std::size_t i) { total += v[i]; });
      return total;
    }
  )"}});
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(mgtlint::apply_baseline(diags, baseline).size(), 1u);
}

TEST(MgtlintBaseline, MalformedLinesAreSkippedNotFatal) {
  const auto entries = mgtlint::parse_baseline(
      "# comment\n"
      "\n"
      "just-a-rule\n"
      "rule path nothex 0\n"
      "rule path 00000000000000ff notanumber\n"
      "good-rule src/a.cpp 00000000000000ff 2\n");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].rule, "good-rule");
  EXPECT_EQ(entries[0].line_hash, 0xffu);
  EXPECT_EQ(entries[0].ordinal, 2u);
}

// ---------------------------------------------------------------- SARIF --

TEST(MgtlintSarif, GoldenSingleResult) {
  mgtlint::Diagnostic d;
  d.file = "src/pll/tune.cpp";
  d.line = 3;
  d.column = 7;
  d.rule = "unit-flow-raw-double";
  d.message = "a \"quoted\" message";
  d.line_hash = 0x1234abcd5678ef00ull;
  const std::string sarif = mgtlint::to_sarif({d});
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"mgtlint\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"unit-flow-raw-double\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/pll/tune.cpp\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 3, \"startColumn\": 7"),
            std::string::npos);
  EXPECT_NE(sarif.find("a \\\"quoted\\\" message"), std::string::npos);
  EXPECT_NE(sarif.find("\"mgtlintLineHash/v1\": \"1234abcd5678ef00\""),
            std::string::npos);
  // Every catalog rule appears in tool.driver.rules.
  for (const auto& r : mgtlint::rule_catalog()) {
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(r.id) + "\""),
              std::string::npos)
        << std::string(r.id);
  }
}

TEST(MgtlintSarif, EmptyRunHasEmptyResults) {
  const std::string sarif = mgtlint::to_sarif({});
  EXPECT_NE(sarif.find("\"results\": [\n      ]"), std::string::npos);
}

}  // namespace
