#include "baseline.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

namespace mgtlint {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// The per-finding fingerprint key, ordinal excluded.
std::string key_of(const std::string& rule, const std::string& rel_path,
                   std::uint64_t hash) {
  return rule + " " + rel_path + " " + hex16(hash);
}

}  // namespace

std::vector<BaselineEntry> parse_baseline(std::string_view text) {
  std::vector<BaselineEntry> out;
  std::istringstream is{std::string(text)};
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    BaselineEntry e;
    std::string hash;
    std::string ordinal;
    if (!(ls >> e.rule >> e.path >> hash >> ordinal)) {
      continue;  // malformed: skip, never fail open
    }
    char* end = nullptr;
    e.line_hash = std::strtoull(hash.c_str(), &end, 16);
    if (end == nullptr || *end != '\0') {
      continue;
    }
    e.ordinal = std::strtoull(ordinal.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      continue;
    }
    out.push_back(std::move(e));
  }
  return out;
}

std::string write_baseline(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> lines;
  std::map<std::string, std::size_t> ordinals;
  for (const Diagnostic& d : diags) {
    const std::string rel = repo_relative(d.file);
    const std::string key = key_of(d.rule, rel, d.line_hash);
    const std::size_t ordinal = ordinals[key]++;
    lines.push_back(d.rule + " " + rel + " " + hex16(d.line_hash) + " " +
                    std::to_string(ordinal));
  }
  std::sort(lines.begin(), lines.end());
  std::string out = "# mgtlint baseline v1\n";
  out +=
      "# <rule> <repo-relative-path> <line-hash> <ordinal>; regenerate "
      "with --write-baseline\n";
  for (const auto& l : lines) {
    out += l;
    out += "\n";
  }
  return out;
}

std::vector<Diagnostic> apply_baseline(
    const std::vector<Diagnostic>& diags,
    const std::vector<BaselineEntry>& baseline) {
  // key -> set of baselined ordinals
  std::map<std::string, std::set<std::size_t>> suppressed;
  for (const auto& e : baseline) {
    suppressed[key_of(e.rule, e.path, e.line_hash)].insert(e.ordinal);
  }
  std::vector<Diagnostic> out;
  std::map<std::string, std::size_t> ordinals;
  for (const Diagnostic& d : diags) {
    const std::string key = key_of(d.rule, repo_relative(d.file),
                                   d.line_hash);
    const std::size_t ordinal = ordinals[key]++;
    const auto it = suppressed.find(key);
    if (it != suppressed.end() && it->second.count(ordinal) != 0U) {
      continue;
    }
    out.push_back(d);
  }
  return out;
}

}  // namespace mgtlint
