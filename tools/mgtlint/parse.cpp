#include "parse.hpp"

#include <algorithm>
#include <cctype>

namespace mgtlint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Registers the rules named in an allow directive found in `comment`.
/// `comment_line` is the line the comment *starts* on; the directive itself
/// is attributed to the line it appears on inside the comment, so an allow
/// written at the end of a multi-line /* */ block suppresses the code that
/// follows the block rather than the code next to the block's first line.
void parse_allow(std::string_view comment, std::size_t comment_line,
                 LexResult& out) {
  const std::string_view tag = "mgtlint:allow(";
  const auto pos = comment.find(tag);
  if (pos == std::string_view::npos) {
    return;
  }
  const std::size_t line =
      comment_line +
      static_cast<std::size_t>(
          std::count(comment.begin(), comment.begin() + pos, '\n'));
  const auto open = pos + tag.size();
  const auto close = comment.find(')', open);
  if (close == std::string_view::npos) {
    return;
  }
  std::string_view list = comment.substr(open, close - open);
  while (!list.empty()) {
    const auto comma = list.find(',');
    std::string_view item = list.substr(0, comma);
    while (!item.empty() &&
           std::isspace(static_cast<unsigned char>(item.front()))) {
      item.remove_prefix(1);
    }
    while (!item.empty() &&
           std::isspace(static_cast<unsigned char>(item.back()))) {
      item.remove_suffix(1);
    }
    if (!item.empty()) {
      out.allow[line].insert(std::string(item));
      out.allow[line + 1].insert(std::string(item));
    }
    if (comma == std::string_view::npos) {
      break;
    }
    list.remove_prefix(comma + 1);
  }
}

}  // namespace

LexResult lex(std::string_view src) {
  LexResult out;
  std::size_t i = 0;
  std::size_t line = 1;
  std::size_t col = 1;
  bool at_line_start = true;

  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
        at_line_start = true;
      } else {
        ++col;
      }
    }
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n' || std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Preprocessor: swallow #include/#pragma lines whole (their operands
    // are paths/pragmas, not code); other directives lex normally so
    // #define bodies stay checked.
    if (c == '#' && at_line_start) {
      std::size_t j = i + 1;
      while (j < src.size() &&
             std::isspace(static_cast<unsigned char>(src[j])) &&
             src[j] != '\n') {
        ++j;
      }
      std::size_t k = j;
      while (k < src.size() && ident_char(src[k])) {
        ++k;
      }
      const std::string_view kw = src.substr(j, k - j);
      if (kw == "include" || kw == "pragma") {
        while (i < src.size() && src[i] != '\n') {
          advance(1);
        }
        continue;
      }
      out.tokens.push_back({TokKind::kPunct, src.substr(i, 1), line, col, i});
      advance(1);
      at_line_start = false;
      continue;
    }
    at_line_start = false;
    // Comments (and allow directives).
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      const std::size_t start = i;
      const std::size_t start_line = line;
      while (i < src.size() && src[i] != '\n') {
        advance(1);
      }
      parse_allow(src.substr(start, i - start), start_line, out);
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      const std::size_t start = i;
      const std::size_t start_line = line;
      advance(2);
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        advance(1);
      }
      advance(2);
      parse_allow(src.substr(start, i - start), start_line, out);
      continue;
    }
    // Raw strings: R"delim( ... )delim".
    if (c == 'R' && i + 1 < src.size() && src[i + 1] == '"') {
      std::size_t j = i + 2;
      while (j < src.size() && src[j] != '(' && src[j] != '"' &&
             src[j] != '\n') {
        ++j;
      }
      if (j < src.size() && src[j] == '(') {
        const std::string close =
            ")" + std::string(src.substr(i + 2, j - (i + 2))) + "\"";
        const auto end = src.find(close, j + 1);
        const std::size_t stop =
            end == std::string_view::npos ? src.size() : end + close.size();
        out.tokens.push_back(
            {TokKind::kString, src.substr(i, stop - i), line, col, i});
        advance(stop - i);
        continue;
      }
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t start = i;
      const std::size_t start_line = line;
      const std::size_t start_col = col;
      advance(1);
      while (i < src.size() && src[i] != quote) {
        advance(src[i] == '\\' ? 2 : 1);
      }
      advance(1);
      out.tokens.push_back({TokKind::kString, src.substr(start, i - start),
                            start_line, start_col, start});
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      const std::size_t start_col = col;
      while (i < src.size() && ident_char(src[i])) {
        advance(1);
      }
      out.tokens.push_back({TokKind::kIdent, src.substr(start, i - start),
                            line, start_col, start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::size_t start = i;
      const std::size_t start_col = col;
      while (i < src.size() &&
             (ident_char(src[i]) || src[i] == '.' ||
              ((src[i] == '+' || src[i] == '-') && i > start &&
               (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        advance(1);
      }
      out.tokens.push_back({TokKind::kNumber, src.substr(start, i - start),
                            line, start_col, start});
      continue;
    }
    // Multi-char punctuation we care about: -> and ::.
    if (c == '-' && i + 1 < src.size() && src[i + 1] == '>') {
      out.tokens.push_back({TokKind::kPunct, src.substr(i, 2), line, col, i});
      advance(2);
      continue;
    }
    if (c == ':' && i + 1 < src.size() && src[i + 1] == ':') {
      out.tokens.push_back({TokKind::kPunct, src.substr(i, 2), line, col, i});
      advance(2);
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, src.substr(i, 1), line, col, i});
    advance(1);
  }
  return out;
}

// ----------------------------------------------------------- unit lookups --

std::string unit_from_suffix(std::string_view ident) {
  struct Entry {
    std::string_view suffix;
    std::string_view type;
  };
  static constexpr Entry kMap[] = {
      {"_ps", "Picoseconds"},   {"_mv", "Millivolts"},
      {"_ghz", "Gigahertz"},    {"_gbps", "GbitsPerSec"},
      {"_ui", "UnitIntervals"},
  };
  for (const auto& e : kMap) {
    if (ident.size() > e.suffix.size() && ident.ends_with(e.suffix)) {
      return std::string(e.type);
    }
  }
  return {};
}

std::string unit_from_accessor(std::string_view accessor) {
  struct Entry {
    std::string_view name;
    std::string_view type;
  };
  static constexpr Entry kMap[] = {
      {"ps", "Picoseconds"},     {"ns", "Picoseconds"},
      {"us", "Picoseconds"},     {"mv", "Millivolts"},
      {"volts", "Millivolts"},   {"ghz", "Gigahertz"},
      {"mhz", "Gigahertz"},      {"ui", "UnitIntervals"},
      {"mv_per_ps", "MvPerPs"},  {"gbps", "GbitsPerSec"},
      {"mbps", "GbitsPerSec"},
  };
  for (const auto& e : kMap) {
    if (accessor == e.name) {
      return std::string(e.type);
    }
  }
  return {};
}

// ----------------------------------------------------------------- parser --

namespace {

bool is_keyword(std::string_view s) {
  static const std::set<std::string_view> kKeywords = {
      "if",       "for",      "while",   "switch",   "return",  "catch",
      "sizeof",   "alignof",  "new",     "delete",   "throw",   "case",
      "do",       "else",     "goto",    "break",    "continue", "co_return",
      "static_cast", "const_cast", "dynamic_cast", "reinterpret_cast",
      "static_assert", "decltype", "noexcept", "alignas", "typeid",
  };
  return kKeywords.count(s) != 0U;
}

bool is_type_decoration(std::string_view s) {
  return s == "const" || s == "constexpr" || s == "volatile" ||
         s == "static" || s == "inline" || s == "unsigned" || s == "signed" ||
         s == "typename" || s == "mutable" || s == "register" ||
         s == "thread_local";
}

/// The parser proper: a single forward walk with explicit recursion for
/// namespace / class / function-body scopes. Everything it cannot place it
/// skips; the goal is facts-with-locations, not a syntax tree.
class Parser {
 public:
  explicit Parser(ParsedFile& out) : out_(out), toks_(out.lexed.tokens) {}

  void run() {
    std::vector<std::string> scope;
    parse_scope(0, toks_.size(), scope, /*class_scope=*/false);
  }

 private:
  const Token& tok(std::size_t i) const { return toks_[i]; }
  std::size_t n() const { return toks_.size(); }
  std::string_view text(std::size_t i) const {
    return i < n() ? toks_[i].text : std::string_view{};
  }

  /// Index just past the group opened by the bracket at `i` ('(' '[' '{').
  /// Angle brackets are not matched here (ambiguous with comparisons);
  /// callers that need template args handle '<' themselves.
  std::size_t skip_group(std::size_t i) const {
    const std::string_view open = text(i);
    std::string_view close;
    if (open == "(") {
      close = ")";
    } else if (open == "[") {
      close = "]";
    } else if (open == "{") {
      close = "}";
    } else {
      return i + 1;
    }
    int depth = 0;
    for (; i < n(); ++i) {
      if (text(i) == open) {
        ++depth;
      } else if (text(i) == close && --depth == 0) {
        return i + 1;
      }
    }
    return n();
  }

  /// Best-effort skip of a template argument group starting at '<'.
  std::size_t skip_angles(std::size_t i) const {
    int depth = 0;
    for (; i < n(); ++i) {
      const std::string_view x = text(i);
      if (x == "<") {
        ++depth;
      } else if (x == ">") {
        if (--depth <= 0) {
          return i + 1;
        }
      } else if (x == ";" || x == "{") {
        return i;  // gave up: it was a comparison after all
      }
    }
    return n();
  }

  // ---- declaration scope (namespace or class body) ----

  void parse_scope(std::size_t begin, std::size_t end,
                   std::vector<std::string>& scope, bool class_scope) {
    std::size_t i = begin;
    std::size_t stmt = begin;  // first token of the current declaration
    while (i < end) {
      const std::string_view x = text(i);
      if (x == "namespace") {
        // `namespace a::b {` or `namespace {`.
        std::size_t j = i + 1;
        std::vector<std::string> names;
        while (j < end && tok(j).kind == TokKind::kIdent) {
          names.emplace_back(text(j));
          j += text(j + 1) == "::" ? 2 : 1;
        }
        if (j < end && text(j) == "{") {
          const std::size_t close = skip_group(j);
          for (const auto& s : names) {
            scope.push_back(s);
          }
          parse_scope(j + 1, close - 1, scope, /*class_scope=*/false);
          scope.resize(scope.size() - names.size());
          i = stmt = close;
          continue;
        }
        i = j + 1;
        continue;
      }
      if ((x == "class" || x == "struct") && i + 1 < end &&
          tok(i + 1).kind == TokKind::kIdent &&
          (i == begin || text(i - 1) != "enum")) {
        i = parse_class(i, end, scope);
        stmt = i;
        continue;
      }
      if (x == "enum") {
        // Skip `enum [class] Name [: base] { ... };` or fwd decl.
        std::size_t j = i + 1;
        while (j < end && text(j) != "{" && text(j) != ";") {
          ++j;
        }
        i = stmt = text(j) == "{" ? skip_group(j) : j + 1;
        continue;
      }
      if (x == "template") {
        i = text(i + 1) == "<" ? skip_angles(i + 1) : i + 1;
        continue;
      }
      if (x == "using" || x == "typedef" || x == "friend" ||
          x == "extern") {
        // `extern "C" { ... }` keeps its block parsed; aliases skip to ';'.
        if (x == "extern" && i + 1 < end &&
            tok(i + 1).kind == TokKind::kString && text(i + 2) == "{") {
          i = i + 3;
          stmt = i;
          continue;
        }
        while (i < end && text(i) != ";") {
          ++i;
        }
        i = stmt = i + 1;
        continue;
      }
      if (x == ";") {
        i = stmt = i + 1;
        continue;
      }
      if (x == "}") {
        ++i;
        stmt = i;
        continue;
      }
      if (x == "public" || x == "protected" || x == "private") {
        i += text(i + 1) == ":" ? 2 : 1;
        stmt = i;
        continue;
      }
      // Candidate function: identifier followed by '(' with no '=' earlier
      // in the declaration (excludes `int x = f();`).
      if (tok(i).kind == TokKind::kIdent && text(i + 1) == "(" &&
          !is_keyword(x) && !equals_since(stmt, i)) {
        const std::size_t after = try_function(stmt, i, end, scope,
                                               class_scope);
        if (after != 0) {
          i = stmt = after;
          continue;
        }
      }
      if (x == "{") {
        // A brace we did not claim (array init, unrecognized construct):
        // skip it wholesale rather than misreading its body as decls.
        i = stmt = skip_group(i);
        continue;
      }
      if (x == "=") {
        // Variable initializer: note the variable, then skip to ';'.
        if (!class_scope) {
          note_global(stmt, i);
        }
        while (i < end && text(i) != ";" && text(i) != "{") {
          ++i;
        }
        if (text(i) == "{") {
          i = skip_group(i);
        }
        continue;
      }
      ++i;
    }
  }

  bool equals_since(std::size_t stmt, std::size_t i) const {
    for (std::size_t k = stmt; k < i; ++k) {
      if (text(k) == "=") {
        return true;
      }
    }
    return false;
  }

  /// `class Name [final] [: bases] { ... };` — records unit types (bases
  /// containing Scalar) and parses the body as a class scope. Returns the
  /// index just past the body (or the fwd-decl ';').
  std::size_t parse_class(std::size_t i, std::size_t end,
                          std::vector<std::string>& scope) {
    std::size_t j = i + 1;
    std::string name;
    while (j < end && tok(j).kind == TokKind::kIdent) {
      name = std::string(text(j));
      ++j;
    }
    bool derives_scalar = false;
    while (j < end && text(j) != "{" && text(j) != ";") {
      if (text(j) == "Scalar") {
        derives_scalar = true;
      }
      if (text(j) == "(") {  // a macro call in the head; bail out
        return j;
      }
      ++j;
    }
    if (j >= end || text(j) == ";") {
      return j + 1;  // forward declaration
    }
    if (derives_scalar && !name.empty()) {
      out_.unit_types.push_back(name);
    }
    const std::size_t close = skip_group(j);
    scope.push_back(name);
    parse_scope(j + 1, close - 1, scope, /*class_scope=*/true);
    scope.pop_back();
    return close;
  }

  /// Attempts to read a function declaration/definition whose name is the
  /// identifier at `name_i` (declaration starts at `stmt`). Returns the
  /// index just past the declaration, or 0 if this is not a function.
  std::size_t try_function(std::size_t stmt, std::size_t name_i,
                           std::size_t end, std::vector<std::string>& scope,
                           bool class_scope) {
    const std::size_t params_open = name_i + 1;
    const std::size_t params_close = skip_group(params_open) - 1;
    if (params_close >= end || text(params_close) != ")") {
      return 0;
    }
    // After the parameter list: cv/ref/noexcept/attributes, then one of
    // `{` (definition), `;` (declaration), `:` (ctor init list), `=` (pure,
    // default, delete), or `->` (trailing return). Anything else (`,`, an
    // operator, ...) means this was an initializer or macro, not a function.
    std::size_t j = params_close + 1;
    while (j < end) {
      const std::string_view x = text(j);
      if (x == "const" || x == "noexcept" || x == "override" ||
          x == "final" || x == "&" || x == "&&" || x == "try") {
        ++j;
        continue;
      }
      if (x == "(") {  // noexcept(...)
        j = skip_group(j);
        continue;
      }
      if (x == "[") {  // [[nodiscard]] after params (rare)
        j = skip_group(j);
        continue;
      }
      if (x == "->") {  // trailing return type: skip to body/semicolon
        while (j < end && text(j) != "{" && text(j) != ";") {
          ++j;
        }
        continue;
      }
      break;
    }
    const std::string_view next = text(j);
    const bool is_def = next == "{" || next == ":";
    const bool is_decl = next == ";" || next == "=";
    if (!is_def && !is_decl) {
      return 0;
    }

    FunctionInfo fn;
    fn.name = std::string(text(name_i));
    fn.tok = name_i;
    fn.line = tok(name_i).line;
    fn.is_member = class_scope;
    // Qualified name: scope stack plus any explicit A::B:: before the name.
    std::vector<std::string> quals;
    std::size_t q = name_i;
    while (q >= 2 && text(q - 1) == "::" &&
           tok(q - 2).kind == TokKind::kIdent) {
      quals.insert(quals.begin(), std::string(text(q - 2)));
      q -= 2;
      fn.is_member = true;
    }
    std::string full;
    for (const auto& s : scope) {
      if (!s.empty()) {
        full += s + "::";
      }
    }
    for (const auto& s : quals) {
      full += s + "::";
    }
    fn.qualified = full + fn.name;
    // Return type: a `void` token in the declaration specifiers (before any
    // explicit qualifier), not followed by `*`.
    for (std::size_t k = stmt; k < q; ++k) {
      if (text(k) == "void" && text(k + 1) != "*") {
        fn.returns_void = true;
      }
    }
    // Constructors/destructors return nothing either.
    if (!scope.empty() && (fn.name == scope.back() || text(stmt) == "~")) {
      fn.returns_void = true;
    }
    parse_params(params_open, params_close, fn.params);

    std::size_t after = j;
    if (is_decl) {
      while (after < end && text(after) != ";") {
        ++after;
      }
      ++after;
    } else {
      // Skip a ctor-init list to the body brace.
      while (after < end && text(after) != "{") {
        ++after;
      }
      const std::size_t close = skip_group(after);
      fn.has_body = true;
      fn.body_begin = after + 1;
      fn.body_end = close > 0 ? close - 1 : after + 1;
      after = close;
    }
    out_.functions.push_back(std::move(fn));
    const int fn_idx = static_cast<int>(out_.functions.size()) - 1;
    if (out_.functions[fn_idx].has_body) {
      parse_body(out_.functions[fn_idx].body_begin,
                 out_.functions[fn_idx].body_end, fn_idx);
      analyze_function_body(fn_idx);
    }
    return after;
  }

  void parse_params(std::size_t open, std::size_t close,
                    std::vector<Param>& out) {
    if (open + 1 >= close) {
      return;
    }
    std::size_t start = open + 1;
    int depth = 0;
    for (std::size_t i = open + 1; i <= close; ++i) {
      const std::string_view x = text(i);
      if (x == "(" || x == "[" || x == "{" || x == "<") {
        ++depth;
      } else if (x == ")" || x == "]" || x == "}" || x == ">") {
        --depth;
      }
      const bool at_end = i == close;
      if ((x == "," && depth == 0) || at_end) {
        if (i > start) {
          out.push_back(parse_one_param(start, i));
        }
        start = i + 1;
      }
    }
  }

  Param parse_one_param(std::size_t begin, std::size_t end_tok) {
    Param p;
    std::vector<std::size_t> idents;
    for (std::size_t i = begin; i < end_tok; ++i) {
      const std::string_view x = text(i);
      if (x == "=") {
        p.has_default = true;
        break;
      }
      if (x == "const") {
        p.is_const = true;
        continue;
      }
      if (x == "&") {
        p.is_reference = true;
        continue;
      }
      if (x == "*") {
        p.is_pointer = true;
        continue;
      }
      if (x == "<") {  // template args contribute nothing we key on
        i = skip_angles(i) - 1;
        continue;
      }
      if (tok(i).kind == TokKind::kIdent && !is_type_decoration(x)) {
        idents.push_back(i);
      }
    }
    if (idents.empty()) {
      return p;
    }
    if (idents.size() == 1) {
      p.type = std::string(text(idents[0]));  // unnamed parameter
      return p;
    }
    // Name = last identifier; type = the identifier before it, skipping a
    // `::` chain back to its head is unnecessary (the last component is
    // what the rules compare against).
    p.name = std::string(text(idents.back()));
    p.type = std::string(text(idents[idents.size() - 2]));
    return p;
  }

  // ---- function bodies: calls and lambdas ----

  struct OpenCall {
    std::string callee;
    std::string qualifier;
    bool member = false;
    int depth;  // paren depth at which this call's '(' sits
  };

  void parse_body(std::size_t begin, std::size_t end_tok, int fn_idx) {
    std::vector<OpenCall> call_stack;
    int paren_depth = 0;
    for (std::size_t i = begin; i < end_tok; ++i) {
      const std::string_view x = text(i);
      if (x == "(") {
        ++paren_depth;
        continue;
      }
      if (x == ")") {
        while (!call_stack.empty() &&
               call_stack.back().depth == paren_depth) {
          call_stack.pop_back();
        }
        --paren_depth;
        continue;
      }
      // Lambda introducer: '[' not preceded by a value expression.
      if (x == "[" && is_lambda_intro(i, begin)) {
        i = parse_lambda(i, end_tok, fn_idx, call_stack) - 1;
        continue;
      }
      if (x == "[") {
        i = skip_group(i) - 1;  // subscript: contents are expressions we
        continue;               // still want? calls inside are rare; skip
      }
      if (tok(i).kind == TokKind::kIdent && text(i + 1) == "(" &&
          !is_keyword(x) && !is_type_decoration(x)) {
        record_call(i, fn_idx, /*lambda_idx=*/-1, call_stack);
        call_stack.push_back(make_open_call(i, paren_depth + 1));
        // fall through: the '(' itself is handled next iteration
      }
    }
  }

  OpenCall make_open_call(std::size_t i, int depth) {
    OpenCall oc;
    oc.callee = std::string(text(i));
    oc.member = i >= 1 && (text(i - 1) == "." || text(i - 1) == "->");
    if (i >= 2 && text(i - 1) == "::" &&
        tok(i - 2).kind == TokKind::kIdent) {
      oc.qualifier = std::string(text(i - 2));
    }
    oc.depth = depth;
    return oc;
  }

  bool is_lambda_intro(std::size_t i, std::size_t begin) const {
    if (i == begin) {
      return true;
    }
    const Token& p = tok(i - 1);
    if (p.kind == TokKind::kIdent) {
      // After a plain identifier the '[' is a subscript; only the keyword
      // `return` puts it back in expression position.
      return p.text == "return";
    }
    if (p.kind == TokKind::kNumber || p.kind == TokKind::kString) {
      return false;
    }
    const std::string_view x = p.text;
    // After a closing bracket the '[' is a subscript ( a()[0], b[1][2] ).
    if (x == ")" || x == "]") {
      return false;
    }
    // `[[nodiscard]]`-style attributes: treat the second '[' as part of the
    // attribute, and the first as non-lambda only when followed by '['.
    if (text(i + 1) == "[" || x == "[") {
      return false;
    }
    return true;  // ( , = { ; && || return — expression position
  }

  /// Parses a lambda starting at '['. Records the site and scans the body.
  /// Returns the index just past the body.
  std::size_t parse_lambda(std::size_t i, std::size_t end_tok, int fn_idx,
                           const std::vector<OpenCall>& call_stack) {
    LambdaSite lam;
    lam.tok = i;
    lam.line = tok(i).line;
    lam.column = tok(i).column;
    if (!call_stack.empty()) {
      lam.passed_to = call_stack.back().callee;
      lam.passed_qualifier = call_stack.back().qualifier;
      lam.passed_member = call_stack.back().member;
    }
    // Capture list.
    const std::size_t cap_close = skip_group(i) - 1;
    for (std::size_t k = i + 1; k < cap_close; ++k) {
      const std::string_view x = text(k);
      if (x == "&") {
        if (tok(k + 1).kind == TokKind::kIdent) {
          lam.ref_captures.emplace_back(text(k + 1));
          ++k;
        } else {
          lam.default_ref = true;
        }
      } else if (x == "=") {
        lam.default_copy = true;
      } else if (tok(k).kind == TokKind::kIdent && x != "this") {
        lam.copy_captures.emplace_back(x);
      }
    }
    std::size_t j = cap_close + 1;
    std::set<std::string> locals;
    if (text(j) == "(") {
      const std::size_t close = skip_group(j) - 1;
      std::vector<Param> params;
      parse_params(j, close, params);
      for (const auto& p : params) {
        if (!p.name.empty()) {
          locals.insert(p.name);
        }
      }
      if (!params.empty() && !params[0].name.empty()) {
        lam.index_param = params[0].name;
      }
      j = close + 1;
    }
    while (j < end_tok && text(j) != "{" && text(j) != ";") {
      ++j;  // mutable / noexcept / -> ret
    }
    if (j >= end_tok || text(j) != "{") {
      out_.lambdas.push_back(std::move(lam));
      return j;
    }
    const std::size_t body_close = skip_group(j);
    const std::size_t body_begin = j + 1;
    const std::size_t body_end = body_close > 0 ? body_close - 1 : j + 1;
    lam.body_begin = body_begin;
    lam.body_end = body_end;
    const std::string index_param = lam.index_param;
    out_.lambdas.push_back(std::move(lam));
    const int lam_idx = static_cast<int>(out_.lambdas.size()) - 1;
    // NOTE: nested parse_lambda calls below may grow out_.lambdas and
    // invalidate references into it — always re-index, never hold one.

    // Body: record calls (tagged with this lambda) and mutations.
    collect_locals(body_begin, body_end, locals);
    std::vector<OpenCall> inner_stack;
    int depth = 0;
    for (std::size_t k = body_begin; k < body_end; ++k) {
      const std::string_view x = text(k);
      if (x == "(") {
        ++depth;
        continue;
      }
      if (x == ")") {
        while (!inner_stack.empty() && inner_stack.back().depth == depth) {
          inner_stack.pop_back();
        }
        --depth;
        continue;
      }
      if (x == "[" && is_lambda_intro(k, body_begin)) {
        k = parse_lambda(k, body_end, fn_idx, inner_stack) - 1;
        continue;
      }
      if (tok(k).kind == TokKind::kIdent && text(k + 1) == "(" &&
          !is_keyword(x) && !is_type_decoration(x)) {
        record_call(k, fn_idx, lam_idx, inner_stack);
        inner_stack.push_back(make_open_call(k, depth + 1));
      }
    }
    std::vector<std::string> writes;
    collect_writes(body_begin, body_end, locals, index_param, writes);
    out_.lambdas[lam_idx].unsubscripted_writes = std::move(writes);
    return body_close;
  }

  void record_call(std::size_t i, int fn_idx, int lambda_idx,
                   const std::vector<OpenCall>&) {
    CallSite cs;
    cs.callee = std::string(text(i));
    cs.tok = i;
    cs.line = tok(i).line;
    cs.column = tok(i).column;
    cs.member = i >= 1 && (text(i - 1) == "." || text(i - 1) == "->");
    if (i >= 2 && text(i - 1) == "::" &&
        tok(i - 2).kind == TokKind::kIdent) {
      cs.qualifier = std::string(text(i - 2));
    }
    cs.function = fn_idx;
    cs.lambda = lambda_idx;
    parse_call_args(i + 1, cs.args);
    const bool member = cs.member;
    out_.calls.push_back(std::move(cs));
    if (fn_idx >= 0 && !member) {
      out_.functions[fn_idx].called.insert(out_.calls.back().callee);
    }
  }

  void parse_call_args(std::size_t open, std::vector<CallArg>& out) {
    const std::size_t close = skip_group(open) - 1;
    if (close <= open + 1) {
      return;  // no args
    }
    std::size_t start = open + 1;
    int depth = 0;
    for (std::size_t i = open + 1; i <= close; ++i) {
      const std::string_view x = text(i);
      if (x == "(" || x == "[" || x == "{") {
        ++depth;
      } else if (x == ")" || x == "]" || x == "}") {
        --depth;
      }
      if ((x == "," && depth == 0) || i == close) {
        if (i > start) {
          out.push_back(summarize_arg(start, i));
        }
        start = i + 1;
      }
    }
  }

  CallArg summarize_arg(std::size_t begin, std::size_t end_tok) {
    CallArg a;
    a.first_tok = begin;
    a.ntoks = end_tok - begin;
    // Bare numeric literal: `3.5`, `- 3.5` — one number token with no
    // user-defined suffix (the lexer folds `10.0_ps` into one token).
    const bool neg = a.ntoks == 2 && (text(begin) == "-" ||
                                      text(begin) == "+");
    const std::size_t num = neg ? begin + 1 : begin;
    if ((a.ntoks == 1 || neg) && tok(num).kind == TokKind::kNumber &&
        text(num).find('_') == std::string_view::npos) {
      a.bare_number = true;
    }
    // Unit evidence: `expr.ps()` / `expr->mv()` tail, or a unit-suffixed
    // identifier as the whole argument.
    if (a.ntoks >= 4 && text(end_tok - 1) == ")" &&
        text(end_tok - 2) == "(" &&
        tok(end_tok - 3).kind == TokKind::kIdent &&
        (text(end_tok - 4) == "." || text(end_tok - 4) == "->")) {
      a.unit_hint = unit_from_accessor(text(end_tok - 3));
    } else if (a.ntoks == 1 && tok(begin).kind == TokKind::kIdent) {
      a.unit_hint = unit_from_suffix(text(begin));
    }
    return a;
  }

  // ---- write/local analysis ----

  /// Heuristic local-declaration collection: any `Type name` pair where the
  /// name is followed by a declarator-ish token. Over-collecting is safe
  /// (it only ever silences a finding).
  void collect_locals(std::size_t begin, std::size_t end_tok,
                      std::set<std::string>& locals) {
    for (std::size_t i = begin; i + 1 < end_tok; ++i) {
      if (tok(i).kind != TokKind::kIdent || is_keyword(text(i))) {
        continue;
      }
      std::size_t j = i + 1;
      while (j < end_tok && (text(j) == "&" || text(j) == "*" ||
                             text(j) == "const")) {
        ++j;
      }
      if (j < end_tok && tok(j).kind == TokKind::kIdent &&
          !is_keyword(text(j))) {
        const std::string_view after = text(j + 1);
        if (after == "=" || after == ";" || after == "," || after == ":" ||
            after == "{" || after == ")") {
          locals.insert(std::string(text(j)));
        }
      }
    }
  }

  /// Collects identifiers written in [begin, end) without an index
  /// subscript: `x = v`, `x += v`, `++x`, `x++`, and `x.field = v` (the
  /// chain head is charged). Writes through `x[i]` are the sanctioned
  /// per-task-slot idiom and are not collected.
  void collect_writes(std::size_t begin, std::size_t end_tok,
                      const std::set<std::string>& locals,
                      const std::string& index_param,
                      std::vector<std::string>& out) {
    (void)index_param;
    std::set<std::string> seen;
    for (std::size_t i = begin; i < end_tok; ++i) {
      if (tok(i).kind != TokKind::kIdent || is_keyword(text(i))) {
        continue;
      }
      // Chain head only: `a.b.c = v` charges `a`; skip non-head members.
      if (i >= 1 && (text(i - 1) == "." || text(i - 1) == "->")) {
        continue;
      }
      const std::string head(text(i));
      // Walk forward over `.member` / `->member` chains.
      std::size_t j = i + 1;
      bool subscripted = false;
      while (j < end_tok) {
        if (text(j) == "[") {
          subscripted = true;
          j = skip_group(j);
          continue;
        }
        if ((text(j) == "." || text(j) == "->") && j + 1 < end_tok &&
            tok(j + 1).kind == TokKind::kIdent) {
          j += 2;
          continue;
        }
        break;
      }
      if (subscripted) {
        continue;
      }
      bool write = false;
      const std::string_view a = text(j);
      const std::string_view b = text(j + 1);
      if (a == "=" && b != "=" &&
          (i == begin || (text(i - 1) != "=" && text(i - 1) != "<" &&
                          text(i - 1) != ">" && text(i - 1) != "!"))) {
        write = true;
      } else if ((a == "+" || a == "-" || a == "*" || a == "/" ||
                  a == "%" || a == "&" || a == "|" || a == "^") &&
                 b == "=") {
        write = true;
      } else if ((a == "+" && b == "+") || (a == "-" && b == "-")) {
        write = true;
      } else if (i >= 2 && ((text(i - 1) == "+" && text(i - 2) == "+") ||
                            (text(i - 1) == "-" && text(i - 2) == "-"))) {
        write = true;
      }
      if (!write || locals.count(head) != 0U) {
        continue;
      }
      if (seen.insert(head).second) {
        out.push_back(head);
      }
    }
  }

  /// Post-pass over a parsed function body: does it write a TU global or a
  /// function-local static? (Fills FunctionInfo::writes_global / _static.)
  void analyze_function_body(int fn_idx) {
    FunctionInfo& fn = out_.functions[fn_idx];
    std::set<std::string> locals;
    for (const auto& p : fn.params) {
      if (!p.name.empty()) {
        locals.insert(p.name);
      }
    }
    // Function-local statics are shared state: declare them, then *remove*
    // them from locals so writes to them register.
    std::set<std::string> statics;
    for (std::size_t i = fn.body_begin; i + 2 < fn.body_end; ++i) {
      if (text(i) != "static" || text(i + 1) == "const" ||
          text(i + 1) == "constexpr") {
        continue;
      }
      // `static Type name ...`: name is the last ident before = ; ( [
      std::size_t j = i + 1;
      std::string name;
      while (j < fn.body_end && (tok(j).kind == TokKind::kIdent ||
                                 text(j) == "::" || text(j) == "<" ||
                                 text(j) == ">" || text(j) == "&" ||
                                 text(j) == "*" || text(j) == ",")) {
        if (tok(j).kind == TokKind::kIdent && !is_type_decoration(text(j))) {
          name = std::string(text(j));
        }
        ++j;
      }
      if (!name.empty()) {
        statics.insert(name);
      }
    }
    collect_locals(fn.body_begin, fn.body_end, locals);
    for (const auto& s : statics) {
      locals.erase(s);
    }
    std::vector<std::string> writes;
    collect_writes(fn.body_begin, fn.body_end, locals, "", writes);
    for (const auto& w : writes) {
      if (statics.count(w) != 0U && fn.writes_static_local.empty()) {
        fn.writes_static_local = w;
      }
      for (const auto& g : out_.globals) {
        if (g.name == w && fn.writes_global.empty()) {
          fn.writes_global = w;
          fn.writes_global_line = g.line;
        }
      }
    }
  }

  /// Namespace-scope variable declaration ending in `= ...;` — extract the
  /// name (the identifier right before the `=`). Const/constexpr/reference
  /// declarations and anything containing parens are not mutable globals.
  void note_global(std::size_t stmt, std::size_t eq) {
    std::string name;
    for (std::size_t i = stmt; i < eq; ++i) {
      const std::string_view x = text(i);
      if (x == "const" || x == "constexpr" || x == "(" || x == ")" ||
          x == "using" || x == "extern") {
        return;
      }
      if (tok(i).kind == TokKind::kIdent && !is_type_decoration(x)) {
        name = std::string(x);
      }
    }
    // Require at least `Type name`: two identifiers.
    std::size_t idents = 0;
    for (std::size_t i = stmt; i < eq; ++i) {
      if (tok(i).kind == TokKind::kIdent && !is_type_decoration(text(i))) {
        ++idents;
      }
    }
    if (!name.empty() && idents >= 2) {
      out_.globals.push_back({name, tok(eq).line});
    }
  }

  ParsedFile& out_;
  const std::vector<Token>& toks_;
};

}  // namespace

ParsedFile parse_source(std::string path, std::string content) {
  ParsedFile out;
  out.path = std::move(path);
  out.source = std::make_shared<const std::string>(std::move(content));
  out.lexed = lex(*out.source);
  Parser(out).run();
  return out;
}

}  // namespace mgtlint
