// SARIF 2.1.0 serialization for mgtlint findings.
//
// Emits one run with the full rule catalog under tool.driver.rules and one
// result per diagnostic, carrying the baseline fingerprint in
// partialFingerprints so SARIF consumers can track findings across commits
// the same way the local baseline file does.
#pragma once

#include <string>
#include <vector>

#include "lint.hpp"

namespace mgtlint {

/// Renders the diagnostics as a SARIF 2.1.0 document. Artifact URIs are
/// emitted repo-relative (see repo_relative) so the log is stable across
/// checkouts.
std::string to_sarif(const std::vector<Diagnostic>& diags);

}  // namespace mgtlint
