# Empty compiler generated dependencies file for bench_ablation_muxtree.
# This may be replaced when dependencies are built.
