file(REMOVE_RECURSE
  "../bench/bench_ablation_muxtree"
  "../bench/bench_ablation_muxtree.pdb"
  "CMakeFiles/bench_ablation_muxtree.dir/bench_ablation_muxtree.cpp.o"
  "CMakeFiles/bench_ablation_muxtree.dir/bench_ablation_muxtree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_muxtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
