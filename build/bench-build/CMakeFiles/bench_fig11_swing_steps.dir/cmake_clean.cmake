file(REMOVE_RECURSE
  "../bench/bench_fig11_swing_steps"
  "../bench/bench_fig11_swing_steps.pdb"
  "CMakeFiles/bench_fig11_swing_steps.dir/bench_fig11_swing_steps.cpp.o"
  "CMakeFiles/bench_fig11_swing_steps.dir/bench_fig11_swing_steps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_swing_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
