# Empty compiler generated dependencies file for bench_fig11_swing_steps.
# This may be replaced when dependencies are built.
