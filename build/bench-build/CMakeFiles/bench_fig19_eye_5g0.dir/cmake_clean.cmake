file(REMOVE_RECURSE
  "../bench/bench_fig19_eye_5g0"
  "../bench/bench_fig19_eye_5g0.pdb"
  "CMakeFiles/bench_fig19_eye_5g0.dir/bench_fig19_eye_5g0.cpp.o"
  "CMakeFiles/bench_fig19_eye_5g0.dir/bench_fig19_eye_5g0.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_eye_5g0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
