# Empty dependencies file for bench_fig19_eye_5g0.
# This may be replaced when dependencies are built.
