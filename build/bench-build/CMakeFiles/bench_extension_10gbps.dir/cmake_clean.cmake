file(REMOVE_RECURSE
  "../bench/bench_extension_10gbps"
  "../bench/bench_extension_10gbps.pdb"
  "CMakeFiles/bench_extension_10gbps.dir/bench_extension_10gbps.cpp.o"
  "CMakeFiles/bench_extension_10gbps.dir/bench_extension_10gbps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_10gbps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
