# Empty dependencies file for bench_extension_10gbps.
# This may be replaced when dependencies are built.
