# Empty dependencies file for bench_ablation_bathtub.
# This may be replaced when dependencies are built.
