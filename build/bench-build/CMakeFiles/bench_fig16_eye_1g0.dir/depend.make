# Empty dependencies file for bench_fig16_eye_1g0.
# This may be replaced when dependencies are built.
