file(REMOVE_RECURSE
  "../bench/bench_ablation_vortex"
  "../bench/bench_ablation_vortex.pdb"
  "CMakeFiles/bench_ablation_vortex.dir/bench_ablation_vortex.cpp.o"
  "CMakeFiles/bench_ablation_vortex.dir/bench_ablation_vortex.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vortex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
