# Empty dependencies file for bench_ablation_vortex.
# This may be replaced when dependencies are built.
