file(REMOVE_RECURSE
  "../bench/bench_fig09_edge_jitter"
  "../bench/bench_fig09_edge_jitter.pdb"
  "CMakeFiles/bench_fig09_edge_jitter.dir/bench_fig09_edge_jitter.cpp.o"
  "CMakeFiles/bench_fig09_edge_jitter.dir/bench_fig09_edge_jitter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_edge_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
