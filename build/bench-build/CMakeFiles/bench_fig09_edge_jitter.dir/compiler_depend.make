# Empty compiler generated dependencies file for bench_fig09_edge_jitter.
# This may be replaced when dependencies are built.
