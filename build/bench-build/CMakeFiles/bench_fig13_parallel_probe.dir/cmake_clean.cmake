file(REMOVE_RECURSE
  "../bench/bench_fig13_parallel_probe"
  "../bench/bench_fig13_parallel_probe.pdb"
  "CMakeFiles/bench_fig13_parallel_probe.dir/bench_fig13_parallel_probe.cpp.o"
  "CMakeFiles/bench_fig13_parallel_probe.dir/bench_fig13_parallel_probe.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_parallel_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
