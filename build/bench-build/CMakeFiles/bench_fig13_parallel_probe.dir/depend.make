# Empty dependencies file for bench_fig13_parallel_probe.
# This may be replaced when dependencies are built.
