# Empty compiler generated dependencies file for bench_fig17_eye_2g5.
# This may be replaced when dependencies are built.
