file(REMOVE_RECURSE
  "../bench/bench_ablation_traffic"
  "../bench/bench_ablation_traffic.pdb"
  "CMakeFiles/bench_ablation_traffic.dir/bench_ablation_traffic.cpp.o"
  "CMakeFiles/bench_ablation_traffic.dir/bench_ablation_traffic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
