file(REMOVE_RECURSE
  "../bench/bench_fig04_framing"
  "../bench/bench_fig04_framing.pdb"
  "CMakeFiles/bench_fig04_framing.dir/bench_fig04_framing.cpp.o"
  "CMakeFiles/bench_fig04_framing.dir/bench_fig04_framing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_framing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
