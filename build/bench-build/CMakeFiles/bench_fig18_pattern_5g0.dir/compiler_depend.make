# Empty compiler generated dependencies file for bench_fig18_pattern_5g0.
# This may be replaced when dependencies are built.
