# Empty compiler generated dependencies file for bench_fig10_voh_steps.
# This may be replaced when dependencies are built.
