file(REMOVE_RECURSE
  "../bench/bench_fig10_voh_steps"
  "../bench/bench_fig10_voh_steps.pdb"
  "CMakeFiles/bench_fig10_voh_steps.dir/bench_fig10_voh_steps.cpp.o"
  "CMakeFiles/bench_fig10_voh_steps.dir/bench_fig10_voh_steps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_voh_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
