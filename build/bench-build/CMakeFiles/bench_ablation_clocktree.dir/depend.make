# Empty dependencies file for bench_ablation_clocktree.
# This may be replaced when dependencies are built.
