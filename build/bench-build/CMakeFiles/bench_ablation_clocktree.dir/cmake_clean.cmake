file(REMOVE_RECURSE
  "../bench/bench_ablation_clocktree"
  "../bench/bench_ablation_clocktree.pdb"
  "CMakeFiles/bench_ablation_clocktree.dir/bench_ablation_clocktree.cpp.o"
  "CMakeFiles/bench_ablation_clocktree.dir/bench_ablation_clocktree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_clocktree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
