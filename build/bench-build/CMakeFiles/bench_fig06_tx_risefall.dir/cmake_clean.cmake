file(REMOVE_RECURSE
  "../bench/bench_fig06_tx_risefall"
  "../bench/bench_fig06_tx_risefall.pdb"
  "CMakeFiles/bench_fig06_tx_risefall.dir/bench_fig06_tx_risefall.cpp.o"
  "CMakeFiles/bench_fig06_tx_risefall.dir/bench_fig06_tx_risefall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_tx_risefall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
