# Empty compiler generated dependencies file for bench_fig06_tx_risefall.
# This may be replaced when dependencies are built.
