# Empty compiler generated dependencies file for bench_text_timing_accuracy.
# This may be replaced when dependencies are built.
