file(REMOVE_RECURSE
  "../bench/bench_text_timing_accuracy"
  "../bench/bench_text_timing_accuracy.pdb"
  "CMakeFiles/bench_text_timing_accuracy.dir/bench_text_timing_accuracy.cpp.o"
  "CMakeFiles/bench_text_timing_accuracy.dir/bench_text_timing_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_text_timing_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
