# Empty dependencies file for bench_fig08_eye_4g0.
# This may be replaced when dependencies are built.
