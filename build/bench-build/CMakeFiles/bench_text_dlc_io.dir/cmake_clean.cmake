file(REMOVE_RECURSE
  "../bench/bench_text_dlc_io"
  "../bench/bench_text_dlc_io.pdb"
  "CMakeFiles/bench_text_dlc_io.dir/bench_text_dlc_io.cpp.o"
  "CMakeFiles/bench_text_dlc_io.dir/bench_text_dlc_io.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_text_dlc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
