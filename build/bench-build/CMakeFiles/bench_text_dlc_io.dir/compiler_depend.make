# Empty compiler generated dependencies file for bench_text_dlc_io.
# This may be replaced when dependencies are built.
