# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_signal[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_digital[1]_include.cmake")
include("/root/repo/build/tests/test_pecl[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_vortex[1]_include.cmake")
include("/root/repo/build/tests/test_testbed[1]_include.cmake")
include("/root/repo/build/tests/test_minitester[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_extensions2[1]_include.cmake")
include("/root/repo/build/tests/test_extensions3[1]_include.cmake")
include("/root/repo/build/tests/test_edgecases[1]_include.cmake")
