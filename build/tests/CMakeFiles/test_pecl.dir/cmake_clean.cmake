file(REMOVE_RECURSE
  "CMakeFiles/test_pecl.dir/test_pecl.cpp.o"
  "CMakeFiles/test_pecl.dir/test_pecl.cpp.o.d"
  "test_pecl"
  "test_pecl.pdb"
  "test_pecl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pecl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
