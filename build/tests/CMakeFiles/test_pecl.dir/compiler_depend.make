# Empty compiler generated dependencies file for test_pecl.
# This may be replaced when dependencies are built.
