file(REMOVE_RECURSE
  "CMakeFiles/test_edgecases.dir/test_edgecases.cpp.o"
  "CMakeFiles/test_edgecases.dir/test_edgecases.cpp.o.d"
  "test_edgecases"
  "test_edgecases.pdb"
  "test_edgecases[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edgecases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
