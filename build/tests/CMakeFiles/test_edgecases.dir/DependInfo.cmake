
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_edgecases.cpp" "tests/CMakeFiles/test_edgecases.dir/test_edgecases.cpp.o" "gcc" "tests/CMakeFiles/test_edgecases.dir/test_edgecases.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/mgt_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/minitester/CMakeFiles/mgt_minitester.dir/DependInfo.cmake"
  "/root/repo/build/src/vortex/CMakeFiles/mgt_vortex.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mgt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pecl/CMakeFiles/mgt_pecl.dir/DependInfo.cmake"
  "/root/repo/build/src/digital/CMakeFiles/mgt_digital.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mgt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/mgt_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mgt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
