file(REMOVE_RECURSE
  "CMakeFiles/test_minitester.dir/test_minitester.cpp.o"
  "CMakeFiles/test_minitester.dir/test_minitester.cpp.o.d"
  "test_minitester"
  "test_minitester.pdb"
  "test_minitester[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minitester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
