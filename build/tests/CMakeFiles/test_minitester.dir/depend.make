# Empty dependencies file for test_minitester.
# This may be replaced when dependencies are built.
