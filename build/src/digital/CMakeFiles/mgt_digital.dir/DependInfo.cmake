
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/digital/bitstream.cpp" "src/digital/CMakeFiles/mgt_digital.dir/bitstream.cpp.o" "gcc" "src/digital/CMakeFiles/mgt_digital.dir/bitstream.cpp.o.d"
  "/root/repo/src/digital/dlc.cpp" "src/digital/CMakeFiles/mgt_digital.dir/dlc.cpp.o" "gcc" "src/digital/CMakeFiles/mgt_digital.dir/dlc.cpp.o.d"
  "/root/repo/src/digital/flash.cpp" "src/digital/CMakeFiles/mgt_digital.dir/flash.cpp.o" "gcc" "src/digital/CMakeFiles/mgt_digital.dir/flash.cpp.o.d"
  "/root/repo/src/digital/jtag.cpp" "src/digital/CMakeFiles/mgt_digital.dir/jtag.cpp.o" "gcc" "src/digital/CMakeFiles/mgt_digital.dir/jtag.cpp.o.d"
  "/root/repo/src/digital/lfsr.cpp" "src/digital/CMakeFiles/mgt_digital.dir/lfsr.cpp.o" "gcc" "src/digital/CMakeFiles/mgt_digital.dir/lfsr.cpp.o.d"
  "/root/repo/src/digital/pattern.cpp" "src/digital/CMakeFiles/mgt_digital.dir/pattern.cpp.o" "gcc" "src/digital/CMakeFiles/mgt_digital.dir/pattern.cpp.o.d"
  "/root/repo/src/digital/registers.cpp" "src/digital/CMakeFiles/mgt_digital.dir/registers.cpp.o" "gcc" "src/digital/CMakeFiles/mgt_digital.dir/registers.cpp.o.d"
  "/root/repo/src/digital/sequencer.cpp" "src/digital/CMakeFiles/mgt_digital.dir/sequencer.cpp.o" "gcc" "src/digital/CMakeFiles/mgt_digital.dir/sequencer.cpp.o.d"
  "/root/repo/src/digital/sram.cpp" "src/digital/CMakeFiles/mgt_digital.dir/sram.cpp.o" "gcc" "src/digital/CMakeFiles/mgt_digital.dir/sram.cpp.o.d"
  "/root/repo/src/digital/usb.cpp" "src/digital/CMakeFiles/mgt_digital.dir/usb.cpp.o" "gcc" "src/digital/CMakeFiles/mgt_digital.dir/usb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mgt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
