file(REMOVE_RECURSE
  "CMakeFiles/mgt_digital.dir/bitstream.cpp.o"
  "CMakeFiles/mgt_digital.dir/bitstream.cpp.o.d"
  "CMakeFiles/mgt_digital.dir/dlc.cpp.o"
  "CMakeFiles/mgt_digital.dir/dlc.cpp.o.d"
  "CMakeFiles/mgt_digital.dir/flash.cpp.o"
  "CMakeFiles/mgt_digital.dir/flash.cpp.o.d"
  "CMakeFiles/mgt_digital.dir/jtag.cpp.o"
  "CMakeFiles/mgt_digital.dir/jtag.cpp.o.d"
  "CMakeFiles/mgt_digital.dir/lfsr.cpp.o"
  "CMakeFiles/mgt_digital.dir/lfsr.cpp.o.d"
  "CMakeFiles/mgt_digital.dir/pattern.cpp.o"
  "CMakeFiles/mgt_digital.dir/pattern.cpp.o.d"
  "CMakeFiles/mgt_digital.dir/registers.cpp.o"
  "CMakeFiles/mgt_digital.dir/registers.cpp.o.d"
  "CMakeFiles/mgt_digital.dir/sequencer.cpp.o"
  "CMakeFiles/mgt_digital.dir/sequencer.cpp.o.d"
  "CMakeFiles/mgt_digital.dir/sram.cpp.o"
  "CMakeFiles/mgt_digital.dir/sram.cpp.o.d"
  "CMakeFiles/mgt_digital.dir/usb.cpp.o"
  "CMakeFiles/mgt_digital.dir/usb.cpp.o.d"
  "libmgt_digital.a"
  "libmgt_digital.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgt_digital.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
