file(REMOVE_RECURSE
  "libmgt_digital.a"
)
