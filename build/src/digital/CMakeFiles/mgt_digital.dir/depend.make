# Empty dependencies file for mgt_digital.
# This may be replaced when dependencies are built.
