file(REMOVE_RECURSE
  "CMakeFiles/mgt_pecl.dir/buffer.cpp.o"
  "CMakeFiles/mgt_pecl.dir/buffer.cpp.o.d"
  "CMakeFiles/mgt_pecl.dir/clocksource.cpp.o"
  "CMakeFiles/mgt_pecl.dir/clocksource.cpp.o.d"
  "CMakeFiles/mgt_pecl.dir/clocktree.cpp.o"
  "CMakeFiles/mgt_pecl.dir/clocktree.cpp.o.d"
  "CMakeFiles/mgt_pecl.dir/delayline.cpp.o"
  "CMakeFiles/mgt_pecl.dir/delayline.cpp.o.d"
  "CMakeFiles/mgt_pecl.dir/fanout.cpp.o"
  "CMakeFiles/mgt_pecl.dir/fanout.cpp.o.d"
  "CMakeFiles/mgt_pecl.dir/mux.cpp.o"
  "CMakeFiles/mgt_pecl.dir/mux.cpp.o.d"
  "CMakeFiles/mgt_pecl.dir/sampler.cpp.o"
  "CMakeFiles/mgt_pecl.dir/sampler.cpp.o.d"
  "libmgt_pecl.a"
  "libmgt_pecl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgt_pecl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
