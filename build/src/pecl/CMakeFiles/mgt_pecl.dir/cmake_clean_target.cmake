file(REMOVE_RECURSE
  "libmgt_pecl.a"
)
