
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pecl/buffer.cpp" "src/pecl/CMakeFiles/mgt_pecl.dir/buffer.cpp.o" "gcc" "src/pecl/CMakeFiles/mgt_pecl.dir/buffer.cpp.o.d"
  "/root/repo/src/pecl/clocksource.cpp" "src/pecl/CMakeFiles/mgt_pecl.dir/clocksource.cpp.o" "gcc" "src/pecl/CMakeFiles/mgt_pecl.dir/clocksource.cpp.o.d"
  "/root/repo/src/pecl/clocktree.cpp" "src/pecl/CMakeFiles/mgt_pecl.dir/clocktree.cpp.o" "gcc" "src/pecl/CMakeFiles/mgt_pecl.dir/clocktree.cpp.o.d"
  "/root/repo/src/pecl/delayline.cpp" "src/pecl/CMakeFiles/mgt_pecl.dir/delayline.cpp.o" "gcc" "src/pecl/CMakeFiles/mgt_pecl.dir/delayline.cpp.o.d"
  "/root/repo/src/pecl/fanout.cpp" "src/pecl/CMakeFiles/mgt_pecl.dir/fanout.cpp.o" "gcc" "src/pecl/CMakeFiles/mgt_pecl.dir/fanout.cpp.o.d"
  "/root/repo/src/pecl/mux.cpp" "src/pecl/CMakeFiles/mgt_pecl.dir/mux.cpp.o" "gcc" "src/pecl/CMakeFiles/mgt_pecl.dir/mux.cpp.o.d"
  "/root/repo/src/pecl/sampler.cpp" "src/pecl/CMakeFiles/mgt_pecl.dir/sampler.cpp.o" "gcc" "src/pecl/CMakeFiles/mgt_pecl.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/signal/CMakeFiles/mgt_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mgt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
