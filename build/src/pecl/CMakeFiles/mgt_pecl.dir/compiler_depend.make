# Empty compiler generated dependencies file for mgt_pecl.
# This may be replaced when dependencies are built.
