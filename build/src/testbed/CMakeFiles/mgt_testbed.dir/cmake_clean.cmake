file(REMOVE_RECURSE
  "CMakeFiles/mgt_testbed.dir/analog_receiver.cpp.o"
  "CMakeFiles/mgt_testbed.dir/analog_receiver.cpp.o.d"
  "CMakeFiles/mgt_testbed.dir/calibration.cpp.o"
  "CMakeFiles/mgt_testbed.dir/calibration.cpp.o.d"
  "CMakeFiles/mgt_testbed.dir/framing.cpp.o"
  "CMakeFiles/mgt_testbed.dir/framing.cpp.o.d"
  "CMakeFiles/mgt_testbed.dir/receiver.cpp.o"
  "CMakeFiles/mgt_testbed.dir/receiver.cpp.o.d"
  "CMakeFiles/mgt_testbed.dir/testbed.cpp.o"
  "CMakeFiles/mgt_testbed.dir/testbed.cpp.o.d"
  "CMakeFiles/mgt_testbed.dir/transmitter.cpp.o"
  "CMakeFiles/mgt_testbed.dir/transmitter.cpp.o.d"
  "libmgt_testbed.a"
  "libmgt_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgt_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
