file(REMOVE_RECURSE
  "libmgt_testbed.a"
)
