# Empty compiler generated dependencies file for mgt_testbed.
# This may be replaced when dependencies are built.
