file(REMOVE_RECURSE
  "CMakeFiles/mgt_util.dir/bitvec.cpp.o"
  "CMakeFiles/mgt_util.dir/bitvec.cpp.o.d"
  "CMakeFiles/mgt_util.dir/rng.cpp.o"
  "CMakeFiles/mgt_util.dir/rng.cpp.o.d"
  "CMakeFiles/mgt_util.dir/stats.cpp.o"
  "CMakeFiles/mgt_util.dir/stats.cpp.o.d"
  "CMakeFiles/mgt_util.dir/table.cpp.o"
  "CMakeFiles/mgt_util.dir/table.cpp.o.d"
  "libmgt_util.a"
  "libmgt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
