file(REMOVE_RECURSE
  "libmgt_util.a"
)
