# Empty dependencies file for mgt_util.
# This may be replaced when dependencies are built.
