# CMake generated Testfile for 
# Source directory: /root/repo/src/minitester
# Build directory: /root/repo/build/src/minitester
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
