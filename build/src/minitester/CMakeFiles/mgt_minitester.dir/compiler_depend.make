# Empty compiler generated dependencies file for mgt_minitester.
# This may be replaced when dependencies are built.
