file(REMOVE_RECURSE
  "CMakeFiles/mgt_minitester.dir/array.cpp.o"
  "CMakeFiles/mgt_minitester.dir/array.cpp.o.d"
  "CMakeFiles/mgt_minitester.dir/dut.cpp.o"
  "CMakeFiles/mgt_minitester.dir/dut.cpp.o.d"
  "CMakeFiles/mgt_minitester.dir/minitester.cpp.o"
  "CMakeFiles/mgt_minitester.dir/minitester.cpp.o.d"
  "CMakeFiles/mgt_minitester.dir/shmoo.cpp.o"
  "CMakeFiles/mgt_minitester.dir/shmoo.cpp.o.d"
  "CMakeFiles/mgt_minitester.dir/wafermap.cpp.o"
  "CMakeFiles/mgt_minitester.dir/wafermap.cpp.o.d"
  "libmgt_minitester.a"
  "libmgt_minitester.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgt_minitester.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
