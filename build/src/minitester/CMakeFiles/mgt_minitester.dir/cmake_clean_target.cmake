file(REMOVE_RECURSE
  "libmgt_minitester.a"
)
