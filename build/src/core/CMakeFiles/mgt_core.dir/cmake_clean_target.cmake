file(REMOVE_RECURSE
  "libmgt_core.a"
)
