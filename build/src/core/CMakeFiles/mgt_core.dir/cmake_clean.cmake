file(REMOVE_RECURSE
  "CMakeFiles/mgt_core.dir/presets.cpp.o"
  "CMakeFiles/mgt_core.dir/presets.cpp.o.d"
  "CMakeFiles/mgt_core.dir/test_system.cpp.o"
  "CMakeFiles/mgt_core.dir/test_system.cpp.o.d"
  "libmgt_core.a"
  "libmgt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
