# Empty compiler generated dependencies file for mgt_core.
# This may be replaced when dependencies are built.
