# Empty dependencies file for mgt_signal.
# This may be replaced when dependencies are built.
