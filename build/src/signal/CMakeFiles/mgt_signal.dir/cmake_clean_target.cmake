file(REMOVE_RECURSE
  "libmgt_signal.a"
)
