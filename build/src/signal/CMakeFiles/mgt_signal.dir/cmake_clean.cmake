file(REMOVE_RECURSE
  "CMakeFiles/mgt_signal.dir/channel.cpp.o"
  "CMakeFiles/mgt_signal.dir/channel.cpp.o.d"
  "CMakeFiles/mgt_signal.dir/edge.cpp.o"
  "CMakeFiles/mgt_signal.dir/edge.cpp.o.d"
  "CMakeFiles/mgt_signal.dir/filter.cpp.o"
  "CMakeFiles/mgt_signal.dir/filter.cpp.o.d"
  "CMakeFiles/mgt_signal.dir/jitter.cpp.o"
  "CMakeFiles/mgt_signal.dir/jitter.cpp.o.d"
  "CMakeFiles/mgt_signal.dir/render.cpp.o"
  "CMakeFiles/mgt_signal.dir/render.cpp.o.d"
  "CMakeFiles/mgt_signal.dir/sinks.cpp.o"
  "CMakeFiles/mgt_signal.dir/sinks.cpp.o.d"
  "libmgt_signal.a"
  "libmgt_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgt_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
