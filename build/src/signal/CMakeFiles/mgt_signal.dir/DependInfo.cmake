
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/signal/channel.cpp" "src/signal/CMakeFiles/mgt_signal.dir/channel.cpp.o" "gcc" "src/signal/CMakeFiles/mgt_signal.dir/channel.cpp.o.d"
  "/root/repo/src/signal/edge.cpp" "src/signal/CMakeFiles/mgt_signal.dir/edge.cpp.o" "gcc" "src/signal/CMakeFiles/mgt_signal.dir/edge.cpp.o.d"
  "/root/repo/src/signal/filter.cpp" "src/signal/CMakeFiles/mgt_signal.dir/filter.cpp.o" "gcc" "src/signal/CMakeFiles/mgt_signal.dir/filter.cpp.o.d"
  "/root/repo/src/signal/jitter.cpp" "src/signal/CMakeFiles/mgt_signal.dir/jitter.cpp.o" "gcc" "src/signal/CMakeFiles/mgt_signal.dir/jitter.cpp.o.d"
  "/root/repo/src/signal/render.cpp" "src/signal/CMakeFiles/mgt_signal.dir/render.cpp.o" "gcc" "src/signal/CMakeFiles/mgt_signal.dir/render.cpp.o.d"
  "/root/repo/src/signal/sinks.cpp" "src/signal/CMakeFiles/mgt_signal.dir/sinks.cpp.o" "gcc" "src/signal/CMakeFiles/mgt_signal.dir/sinks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mgt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
