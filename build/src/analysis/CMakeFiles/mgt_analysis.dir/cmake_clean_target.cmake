file(REMOVE_RECURSE
  "libmgt_analysis.a"
)
