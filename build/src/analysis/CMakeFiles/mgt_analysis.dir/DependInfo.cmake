
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ber.cpp" "src/analysis/CMakeFiles/mgt_analysis.dir/ber.cpp.o" "gcc" "src/analysis/CMakeFiles/mgt_analysis.dir/ber.cpp.o.d"
  "/root/repo/src/analysis/berextrap.cpp" "src/analysis/CMakeFiles/mgt_analysis.dir/berextrap.cpp.o" "gcc" "src/analysis/CMakeFiles/mgt_analysis.dir/berextrap.cpp.o.d"
  "/root/repo/src/analysis/decompose.cpp" "src/analysis/CMakeFiles/mgt_analysis.dir/decompose.cpp.o" "gcc" "src/analysis/CMakeFiles/mgt_analysis.dir/decompose.cpp.o.d"
  "/root/repo/src/analysis/eye.cpp" "src/analysis/CMakeFiles/mgt_analysis.dir/eye.cpp.o" "gcc" "src/analysis/CMakeFiles/mgt_analysis.dir/eye.cpp.o.d"
  "/root/repo/src/analysis/risefall.cpp" "src/analysis/CMakeFiles/mgt_analysis.dir/risefall.cpp.o" "gcc" "src/analysis/CMakeFiles/mgt_analysis.dir/risefall.cpp.o.d"
  "/root/repo/src/analysis/spectrum.cpp" "src/analysis/CMakeFiles/mgt_analysis.dir/spectrum.cpp.o" "gcc" "src/analysis/CMakeFiles/mgt_analysis.dir/spectrum.cpp.o.d"
  "/root/repo/src/analysis/timing.cpp" "src/analysis/CMakeFiles/mgt_analysis.dir/timing.cpp.o" "gcc" "src/analysis/CMakeFiles/mgt_analysis.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/signal/CMakeFiles/mgt_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mgt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
