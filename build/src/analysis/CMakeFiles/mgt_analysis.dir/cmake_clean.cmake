file(REMOVE_RECURSE
  "CMakeFiles/mgt_analysis.dir/ber.cpp.o"
  "CMakeFiles/mgt_analysis.dir/ber.cpp.o.d"
  "CMakeFiles/mgt_analysis.dir/berextrap.cpp.o"
  "CMakeFiles/mgt_analysis.dir/berextrap.cpp.o.d"
  "CMakeFiles/mgt_analysis.dir/decompose.cpp.o"
  "CMakeFiles/mgt_analysis.dir/decompose.cpp.o.d"
  "CMakeFiles/mgt_analysis.dir/eye.cpp.o"
  "CMakeFiles/mgt_analysis.dir/eye.cpp.o.d"
  "CMakeFiles/mgt_analysis.dir/risefall.cpp.o"
  "CMakeFiles/mgt_analysis.dir/risefall.cpp.o.d"
  "CMakeFiles/mgt_analysis.dir/spectrum.cpp.o"
  "CMakeFiles/mgt_analysis.dir/spectrum.cpp.o.d"
  "CMakeFiles/mgt_analysis.dir/timing.cpp.o"
  "CMakeFiles/mgt_analysis.dir/timing.cpp.o.d"
  "libmgt_analysis.a"
  "libmgt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
