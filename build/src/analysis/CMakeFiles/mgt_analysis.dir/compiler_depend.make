# Empty compiler generated dependencies file for mgt_analysis.
# This may be replaced when dependencies are built.
