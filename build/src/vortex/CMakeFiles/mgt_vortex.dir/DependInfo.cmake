
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vortex/fabric.cpp" "src/vortex/CMakeFiles/mgt_vortex.dir/fabric.cpp.o" "gcc" "src/vortex/CMakeFiles/mgt_vortex.dir/fabric.cpp.o.d"
  "/root/repo/src/vortex/node.cpp" "src/vortex/CMakeFiles/mgt_vortex.dir/node.cpp.o" "gcc" "src/vortex/CMakeFiles/mgt_vortex.dir/node.cpp.o.d"
  "/root/repo/src/vortex/optics.cpp" "src/vortex/CMakeFiles/mgt_vortex.dir/optics.cpp.o" "gcc" "src/vortex/CMakeFiles/mgt_vortex.dir/optics.cpp.o.d"
  "/root/repo/src/vortex/packet.cpp" "src/vortex/CMakeFiles/mgt_vortex.dir/packet.cpp.o" "gcc" "src/vortex/CMakeFiles/mgt_vortex.dir/packet.cpp.o.d"
  "/root/repo/src/vortex/traffic.cpp" "src/vortex/CMakeFiles/mgt_vortex.dir/traffic.cpp.o" "gcc" "src/vortex/CMakeFiles/mgt_vortex.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/signal/CMakeFiles/mgt_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mgt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
