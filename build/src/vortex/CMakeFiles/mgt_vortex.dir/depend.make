# Empty dependencies file for mgt_vortex.
# This may be replaced when dependencies are built.
