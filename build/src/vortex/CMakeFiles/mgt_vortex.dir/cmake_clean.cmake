file(REMOVE_RECURSE
  "CMakeFiles/mgt_vortex.dir/fabric.cpp.o"
  "CMakeFiles/mgt_vortex.dir/fabric.cpp.o.d"
  "CMakeFiles/mgt_vortex.dir/node.cpp.o"
  "CMakeFiles/mgt_vortex.dir/node.cpp.o.d"
  "CMakeFiles/mgt_vortex.dir/optics.cpp.o"
  "CMakeFiles/mgt_vortex.dir/optics.cpp.o.d"
  "CMakeFiles/mgt_vortex.dir/packet.cpp.o"
  "CMakeFiles/mgt_vortex.dir/packet.cpp.o.d"
  "CMakeFiles/mgt_vortex.dir/traffic.cpp.o"
  "CMakeFiles/mgt_vortex.dir/traffic.cpp.o.d"
  "libmgt_vortex.a"
  "libmgt_vortex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgt_vortex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
