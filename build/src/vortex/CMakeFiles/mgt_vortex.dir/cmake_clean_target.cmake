file(REMOVE_RECURSE
  "libmgt_vortex.a"
)
