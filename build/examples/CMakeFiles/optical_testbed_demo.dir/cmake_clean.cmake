file(REMOVE_RECURSE
  "CMakeFiles/optical_testbed_demo.dir/optical_testbed_demo.cpp.o"
  "CMakeFiles/optical_testbed_demo.dir/optical_testbed_demo.cpp.o.d"
  "optical_testbed_demo"
  "optical_testbed_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optical_testbed_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
