# Empty dependencies file for optical_testbed_demo.
# This may be replaced when dependencies are built.
