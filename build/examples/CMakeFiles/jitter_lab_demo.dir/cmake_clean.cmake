file(REMOVE_RECURSE
  "CMakeFiles/jitter_lab_demo.dir/jitter_lab_demo.cpp.o"
  "CMakeFiles/jitter_lab_demo.dir/jitter_lab_demo.cpp.o.d"
  "jitter_lab_demo"
  "jitter_lab_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitter_lab_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
