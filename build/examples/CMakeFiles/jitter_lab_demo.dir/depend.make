# Empty dependencies file for jitter_lab_demo.
# This may be replaced when dependencies are built.
