file(REMOVE_RECURSE
  "CMakeFiles/wafer_probe_demo.dir/wafer_probe_demo.cpp.o"
  "CMakeFiles/wafer_probe_demo.dir/wafer_probe_demo.cpp.o.d"
  "wafer_probe_demo"
  "wafer_probe_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wafer_probe_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
