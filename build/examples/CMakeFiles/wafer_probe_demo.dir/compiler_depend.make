# Empty compiler generated dependencies file for wafer_probe_demo.
# This may be replaced when dependencies are built.
