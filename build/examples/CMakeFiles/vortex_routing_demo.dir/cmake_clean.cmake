file(REMOVE_RECURSE
  "CMakeFiles/vortex_routing_demo.dir/vortex_routing_demo.cpp.o"
  "CMakeFiles/vortex_routing_demo.dir/vortex_routing_demo.cpp.o.d"
  "vortex_routing_demo"
  "vortex_routing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vortex_routing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
