# Empty dependencies file for vortex_routing_demo.
# This may be replaced when dependencies are built.
