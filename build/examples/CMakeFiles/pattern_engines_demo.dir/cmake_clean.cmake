file(REMOVE_RECURSE
  "CMakeFiles/pattern_engines_demo.dir/pattern_engines_demo.cpp.o"
  "CMakeFiles/pattern_engines_demo.dir/pattern_engines_demo.cpp.o.d"
  "pattern_engines_demo"
  "pattern_engines_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_engines_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
