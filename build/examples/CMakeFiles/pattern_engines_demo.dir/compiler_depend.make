# Empty compiler generated dependencies file for pattern_engines_demo.
# This may be replaced when dependencies are built.
