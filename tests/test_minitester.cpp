// Tests for src/minitester: MISR/BIST, DUT model, loopback/bathtub/eye,
// shmoo plots, and the parallel tester array.
#include <gtest/gtest.h>

#include <cmath>

#include "minitester/array.hpp"
#include "minitester/dut.hpp"
#include "minitester/minitester.hpp"
#include "minitester/shmoo.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mgt::minitester {
namespace {

using mgt::BitVector;
using mgt::Error;
using mgt::Rng;

// ------------------------------------------------------------------ misr --

TEST(Misr, DeterministicAndSeedSensitive) {
  const auto bits = BitVector::from_string("1101001010111001");
  EXPECT_EQ(misr_signature(bits), misr_signature(bits));
  EXPECT_NE(misr_signature(bits, 0xFFFF), misr_signature(bits, 0x1234));
}

TEST(Misr, SensitiveToSingleBitFlip) {
  Rng rng(1);
  const auto bits = BitVector::random(512, rng);
  const auto golden = misr_signature(bits);
  for (std::size_t i = 0; i < bits.size(); i += 37) {
    auto flipped = bits;
    flipped.set(i, !flipped.get(i));
    EXPECT_NE(misr_signature(flipped), golden) << "flip at " << i;
  }
}

TEST(Misr, SensitiveToBitOrder) {
  const auto a = BitVector::from_string("1100");
  const auto b = BitVector::from_string("0011");
  EXPECT_NE(misr_signature(a), misr_signature(b));
}

// ------------------------------------------------------------------- dut --

TEST(WlpDut, LoopbackDelayIsSumOfPath) {
  const WlpDut dut(WlpDut::Config{});
  const auto& c = dut.config();
  EXPECT_DOUBLE_EQ(dut.loopback_delay().ps(),
                   c.interposer.delay.ps() + c.lead_in.delay.ps() +
                       c.lead_out.delay.ps() + c.internal_delay.ps());
}

TEST(WlpDut, RespondShiftsEdges) {
  const WlpDut dut(WlpDut::Config{});
  const auto in = sig::EdgeStream::from_bits(BitVector::from_string("01"),
                                             Picoseconds{200.0});
  const auto out = dut.respond(in);
  EXPECT_DOUBLE_EQ(out.transitions()[0].time.ps(),
                   200.0 + dut.loopback_delay().ps());
}

TEST(WlpDut, StuckFaultsPinTheOutput) {
  WlpDut::Config config;
  config.defect = Defect::StuckLow;
  const WlpDut low(config);
  const auto in = sig::EdgeStream::clock(Picoseconds{200.0}, 8);
  EXPECT_TRUE(low.respond(in).empty());
  EXPECT_FALSE(low.respond(in).initial_level());

  config.defect = Defect::StuckHigh;
  const WlpDut high(config);
  EXPECT_TRUE(high.respond(in).empty());
  EXPECT_TRUE(high.respond(in).initial_level());
}

TEST(WlpDut, DefectsDegradeTheChain) {
  sig::FilterChain healthy_chain;
  WlpDut(WlpDut::Config{}).contribute(healthy_chain, Millivolts{2000.0});

  WlpDut::Config slow;
  slow.defect = Defect::SlowLead;
  sig::FilterChain slow_chain;
  WlpDut(slow).contribute(slow_chain, Millivolts{2000.0});
  EXPECT_GT(slow_chain.pole_count(), healthy_chain.pole_count());

  WlpDut::Config weak;
  weak.defect = Defect::WeakDrive;
  sig::FilterChain weak_chain;
  WlpDut(weak).contribute(weak_chain, Millivolts{2000.0});
  EXPECT_LT(weak_chain.gain(), 0.5 * healthy_chain.gain());
}

TEST(WlpDut, BistSignatureMatchesMisr) {
  Rng rng(2);
  const auto bits = BitVector::random(256, rng);
  EXPECT_EQ(WlpDut(WlpDut::Config{}).bist_signature(bits),
            misr_signature(bits));
  WlpDut::Config stuck;
  stuck.defect = Defect::StuckLow;
  EXPECT_EQ(WlpDut(stuck).bist_signature(bits),
            misr_signature(BitVector(256, false)));
}

// ------------------------------------------------------------- minitester --

class LoopbackAtRate : public ::testing::TestWithParam<double> {};

TEST_P(LoopbackAtRate, CenterStrobeIsErrorFree) {
  MiniTester::Config config;
  config.channel = core::presets::minitester(GbitsPerSec{GetParam()});
  MiniTester tester(config, 3);
  tester.program_prbs(7, 0xACE1);
  tester.start();
  const auto ber = tester.run_loopback(2048);
  EXPECT_EQ(ber.errors, 0u) << "rate " << GetParam();
  EXPECT_GT(ber.bits_compared, 1500u);
}

INSTANTIATE_TEST_SUITE_P(Rates, LoopbackAtRate,
                         ::testing::Values(1.0, 2.5, 5.0));

TEST(MiniTester, BathtubHasFloorAndWalls) {
  MiniTester tester(MiniTester::Config{}, 4);
  tester.program_prbs(7, 0xACE1);
  tester.start();
  const auto scan = tester.bathtub(768, 1);
  ASSERT_GT(scan.size(), 10u);

  // The floor: a contiguous error-free region of meaningful width.
  const auto opening = ana::bathtub_opening(scan, 1e-6);
  EXPECT_GT(opening.ps(), 80.0);   // > 0.4 UI at 5 Gbps
  EXPECT_LT(opening.ps(), 200.0);  // cannot exceed the UI

  // The walls: some strobe position shows real errors.
  double worst = 0.0;
  for (const auto& p : scan) {
    worst = std::max(worst, p.ber);
  }
  EXPECT_GT(worst, 0.05);
}

TEST(MiniTester, CenterStrobeLandsMidEye) {
  MiniTester tester(MiniTester::Config{}, 5);
  tester.program_prbs(7, 0xACE1);
  tester.start();
  const auto code = tester.center_strobe(640);
  // 5 Gbps UI = 200 ps = 20 codes; the center should be 6..14.
  EXPECT_GE(code, 4u);
  EXPECT_LE(code, 16u);
  EXPECT_EQ(tester.strobe_code(), code);
  EXPECT_EQ(tester.run_loopback(1024).errors, 0u);
}

TEST(MiniTester, StrobeAtEyeEdgeFails) {
  MiniTester tester(MiniTester::Config{}, 6);
  tester.program_prbs(7, 0xACE1);
  tester.start();
  tester.center_strobe(640);
  const auto centered = tester.run_loopback(768);
  EXPECT_EQ(centered.errors, 0u);
  // Move the strobe ~half a UI off center: massive errors.
  tester.set_strobe_code(tester.strobe_code() + 10);
  const auto off = tester.run_loopback(768);
  EXPECT_GT(off.ber(), 0.02);
}

TEST(MiniTester, BistPassesOnGoodDie) {
  MiniTester tester(MiniTester::Config{}, 7);
  tester.program_prbs(7, 0xBEEF);
  tester.start();
  const auto result = tester.run_bist(512);
  EXPECT_TRUE(result.pass());
}

class BistDefects : public ::testing::TestWithParam<Defect> {};

TEST_P(BistDefects, BistCatchesDefect) {
  MiniTester::Config config;
  config.dut.defect = GetParam();
  MiniTester tester(config, 8);
  tester.program_prbs(7, 0xBEEF);
  tester.start();
  EXPECT_FALSE(tester.run_bist(512).pass());
}

INSTANTIATE_TEST_SUITE_P(Defects, BistDefects,
                         ::testing::Values(Defect::StuckLow,
                                           Defect::StuckHigh,
                                           Defect::SlowLead));

TEST(MiniTester, Fig19LoopbackEyeAt5G) {
  MiniTester tester(MiniTester::Config{}, 9);
  tester.program_prbs(7, 0xACE1);
  tester.start();
  const auto eye = tester.measure_loopback_eye(12000);
  // Through the DUT leads the eye is a touch smaller than the bare Fig 19
  // output (0.75 UI) but must remain clearly open.
  EXPECT_GT(eye.eye_opening.ui(), 0.6);
  EXPECT_LT(eye.eye_opening.ui(), 0.85);
}

TEST(MiniTester, StuckDutEyeThrows) {
  MiniTester::Config config;
  config.dut.defect = Defect::StuckLow;
  MiniTester tester(config, 10);
  tester.program_prbs(7, 1);
  tester.start();
  EXPECT_THROW(tester.measure_loopback_eye(512), Error);
}

// ----------------------------------------------------------------- shmoo --

TEST(Shmoo, GridAndPassFraction) {
  const auto shmoo = run_shmoo(
      "x", {0.0, 1.0, 2.0, 3.0}, "y", {0.0, 1.0},
      [](double x, double) { return x < 2.0 ? 0.0 : 0.5; });
  ASSERT_EQ(shmoo.ber.size(), 2u);
  ASSERT_EQ(shmoo.ber[0].size(), 4u);
  EXPECT_DOUBLE_EQ(shmoo.pass_fraction(1e-3), 0.5);
  const auto art = shmoo.ascii_art(1e-3);
  EXPECT_NE(art.find('.'), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Shmoo, EmptyAxesThrow) {
  EXPECT_THROW(run_shmoo("x", {}, "y", {1.0},
                         [](double, double) { return 0.0; }),
               Error);
}

TEST(Shmoo, StrobeVersusRateShowsShrinkingEye) {
  // A coarse real shmoo: strobe offset (x) against data rate (y); the
  // passing band must narrow as the rate rises (the paper's Fig 16 -> 19
  // progression).
  std::vector<double> codes;
  for (double c = 0; c <= 20; c += 4) {
    codes.push_back(c);
  }
  const auto shmoo = run_shmoo(
      "strobe code", codes, "rate Gbps", {1.0, 5.0},
      [](double code, double rate) {
        MiniTester::Config config;
        config.channel = core::presets::minitester(GbitsPerSec{rate});
        MiniTester tester(config, 11);
        tester.program_prbs(7, 0xACE1);
        tester.start();
        // Scale the code to the rate's UI so x spans one UI at every rate.
        const double ui_codes = 100.0 / rate / 1.0;  // UI in 10 ps codes
        const auto scaled = static_cast<std::size_t>(
            code / 20.0 * ui_codes);
        tester.set_strobe_code(scaled);
        return tester.run_loopback(512).ber();
      });
  std::size_t pass_low = 0;
  std::size_t pass_high = 0;
  for (std::size_t i = 0; i < shmoo.xs.size(); ++i) {
    pass_low += shmoo.ber[0][i] <= 1e-6 ? 1 : 0;
    pass_high += shmoo.ber[1][i] <= 1e-6 ? 1 : 0;
  }
  EXPECT_GE(pass_low, pass_high);  // 1 Gbps band at least as wide as 5 Gbps
  EXPECT_GT(pass_low, 3u);
}

// ----------------------------------------------------------------- array --

TEST(TesterArray, ThroughputModelScalesWithSites) {
  const double t1 = TesterArray::wafer_time_s(256, 1, 1.5, 0.8);
  const double t16 = TesterArray::wafer_time_s(256, 16, 1.5, 0.8);
  EXPECT_NEAR(t1 / t16, 16.0, 0.5);  // the paper's order-of-magnitude claim
  EXPECT_DOUBLE_EQ(t1, 256.0 * 2.3);
}

TEST(TesterArray, WaferProbeFindsDefects) {
  TesterArray::Config config;
  config.testers = 8;
  config.defect_rate = 0.25;
  config.bist_bits = 256;
  TesterArray array(config, 12);
  const auto result = array.probe_wafer(64);

  EXPECT_EQ(result.dies, 64u);
  EXPECT_EQ(result.touchdowns, 8u);
  // Roughly a quarter of dies fail and no good die is failed. WeakDrive
  // parts can escape the threshold-centered BIST (they are caught by the
  // amplitude screen instead), so a bounded escape count is expected.
  EXPECT_GT(result.fails, 5u);
  EXPECT_LT(result.fails, 30u);
  EXPECT_EQ(result.overkills, 0u);
  EXPECT_LE(result.escapes, 10u);
  EXPECT_GT(result.dies_per_hour(), 0.0);
}

TEST(TesterArray, CleanWaferAllPasses) {
  TesterArray::Config config;
  config.testers = 4;
  config.defect_rate = 0.0;
  config.bist_bits = 256;
  TesterArray array(config, 13);
  const auto result = array.probe_wafer(16);
  EXPECT_EQ(result.fails, 0u);
  EXPECT_EQ(result.overkills, 0u);
  EXPECT_EQ(result.escapes, 0u);
}

}  // namespace
}  // namespace mgt::minitester
