// Cross-module integration tests: full control-plane round trips, the two
// applications sharing one architecture, and determinism guarantees.
#include <gtest/gtest.h>

#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "minitester/minitester.hpp"
#include "testbed/testbed.hpp"
#include "util/rng.hpp"

namespace mgt {
namespace {

TEST(Integration, SameSeedSameMeasurement) {
  // Everything stochastic is seeded: identical configurations must yield
  // bit-identical measurements (the repo's reproducibility contract).
  auto run = [] {
    core::TestSystem sys(core::presets::optical_testbed(), 12345);
    sys.program_prbs(7, 0xACE1);
    sys.start();
    return sys.measure_eye(6000);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.jitter.peak_to_peak.ps(), b.jitter.peak_to_peak.ps());
  EXPECT_DOUBLE_EQ(a.jitter.rms.ps(), b.jitter.rms.ps());
  EXPECT_DOUBLE_EQ(a.eye_opening.ui(), b.eye_opening.ui());
}

TEST(Integration, DifferentSeedsSimilarStatistics) {
  double pp[2];
  int i = 0;
  for (std::uint64_t seed : {111ull, 999ull}) {
    core::TestSystem sys(core::presets::optical_testbed(), seed);
    sys.program_prbs(7, 0xACE1);
    sys.start();
    pp[i++] = sys.measure_eye(12000).jitter.peak_to_peak.ps();
  }
  EXPECT_NE(pp[0], pp[1]);          // different parts, different numbers
  EXPECT_NEAR(pp[0], pp[1], 12.0);  // same population
}

TEST(Integration, UsbProgrammingMatchesDirectRegisterAccess) {
  // The full control path (USB packets -> device -> register file) must
  // be equivalent to direct register pokes.
  core::TestSystem via_usb(core::presets::optical_testbed(), 77);
  via_usb.program_prbs(23, 0x5EED);
  via_usb.start();

  core::TestSystem direct(core::presets::optical_testbed(), 77);
  direct.dlc().regs().write(dig::reg::kPrbsOrder, 23);
  direct.dlc().regs().write(dig::reg::kSeedLo, 0x5EED);
  direct.dlc().regs().write(dig::reg::kSeedHi, 0);
  direct.dlc().regs().write(dig::reg::kCtrl, dig::reg::kCtrlStart);

  EXPECT_EQ(via_usb.generate(1024).bits, direct.generate(1024).bits);
}

TEST(Integration, TestbedAndMinitesterShareTheArchitecture) {
  // One DLC design drives both applications; both must come up, run, and
  // produce open eyes at their respective target rates.
  core::TestSystem testbed_chan(core::presets::optical_testbed(), 5);
  testbed_chan.program_prbs(7, 1);
  testbed_chan.start();
  const auto testbed_eye = testbed_chan.measure_eye(8000);

  minitester::MiniTester mini(minitester::MiniTester::Config{}, 5);
  mini.program_prbs(7, 1);
  mini.start();
  const auto mini_eye = mini.measure_loopback_eye(8000);

  EXPECT_GT(testbed_eye.eye_opening.ui(), 0.8);   // 2.5 Gbps channel
  EXPECT_GT(mini_eye.eye_opening.ui(), 0.6);      // 5.0 Gbps through the DUT
  // The faster channel pays proportionally more of its UI to jitter.
  EXPECT_GT(testbed_eye.eye_opening.ui(), mini_eye.eye_opening.ui());
}

TEST(Integration, TestbedPacketsSurviveFabricContention) {
  testbed::OpticalTestbed::Config config;
  config.signal_check_period = 2;
  testbed::OpticalTestbed tb(config, 31);
  const auto stats = tb.run(0.8, 100);  // heavy load
  EXPECT_EQ(stats.fabric.delivered, stats.fabric.injected);
  EXPECT_EQ(stats.payload_bit_errors, 0u);
  EXPECT_GT(stats.mean_deflections, 0.0);  // contention really happened
}

TEST(Integration, MinitesterStrobeCalibrationTransfersAcrossPatterns) {
  // Center the strobe on PRBS7, then run a different pattern without
  // recalibrating: the eye center must still be valid.
  minitester::MiniTester mini(minitester::MiniTester::Config{}, 13);
  mini.program_prbs(7, 0xACE1);
  mini.start();
  mini.center_strobe(640);
  mini.program_prbs(15, 0x0F0F);
  mini.start();
  EXPECT_EQ(mini.run_loopback(2048).errors, 0u);
}

}  // namespace
}  // namespace mgt
