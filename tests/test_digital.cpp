// Unit tests for src/digital: LFSR/PRBS, pattern memory, register file,
// bitstream/FLASH, IEEE 1149.1 TAP, USB protocol, and the DLC.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "digital/bitstream.hpp"
#include "digital/dlc.hpp"
#include "digital/flash.hpp"
#include "digital/jtag.hpp"
#include "digital/lfsr.hpp"
#include "digital/pattern.hpp"
#include "digital/registers.hpp"
#include "digital/usb.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mgt::dig {
namespace {

using mgt::BitVector;
using mgt::Error;
using mgt::Rng;

/// Builds a minimal named bitstream (avoids aggregate-init warnings).
Bitstream named_bitstream(const char* name) {
  Bitstream b;
  b.design_name = name;
  return b;
}

// ----------------------------------------------------------------- lfsr --

class PrbsPeriod : public ::testing::TestWithParam<unsigned> {};

TEST_P(PrbsPeriod, FullMaximalPeriod) {
  const unsigned order = GetParam();
  Lfsr lfsr = Lfsr::prbs(order, 1);
  const std::uint64_t start = lfsr.state();
  std::uint64_t period = 0;
  do {
    lfsr.next();
    ++period;
  } while (lfsr.state() != start && period <= lfsr.max_period());
  EXPECT_EQ(period, lfsr.max_period());
}

INSTANTIATE_TEST_SUITE_P(Orders, PrbsPeriod, ::testing::Values(7u, 15u));

TEST(Lfsr, Prbs7IsBalanced) {
  Lfsr lfsr = Lfsr::prbs7();
  const auto bits = lfsr.generate(127);
  // Maximal-length sequences have 2^(n-1) ones and 2^(n-1)-1 zeros.
  EXPECT_EQ(bits.popcount(), 64u);
  EXPECT_EQ(bits.longest_run(), 7u);
}

TEST(Lfsr, ZeroSeedIsRescued) {
  Lfsr lfsr(7, 6, 0);
  EXPECT_NE(lfsr.state(), 0u);
  // Must still advance (the all-zero lockup state is unreachable).
  lfsr.next();
  EXPECT_NE(lfsr.state(), 0u);
}

TEST(Lfsr, SameSeedSameSequence) {
  Lfsr a = Lfsr::prbs23(0xACE1);
  Lfsr b = Lfsr::prbs23(0xACE1);
  EXPECT_EQ(a.generate(1000), b.generate(1000));
}

TEST(Lfsr, InvalidParametersThrow) {
  EXPECT_THROW(Lfsr(1, 1, 1), Error);
  EXPECT_THROW(Lfsr(64, 1, 1), Error);
  EXPECT_THROW(Lfsr(7, 7, 1), Error);
  EXPECT_THROW(Lfsr(7, 0, 1), Error);
  EXPECT_THROW(Lfsr::prbs(9), Error);
}

// -------------------------------------------------------------- pattern --

TEST(PatternMemory, LoadAndLoopedRead) {
  PatternMemory mem(64);
  mem.load(BitVector::from_string("1101"));
  EXPECT_EQ(mem.read(10).to_string(), "1101110111");
}

TEST(PatternMemory, DepthLimitEnforced) {
  PatternMemory mem(8);
  EXPECT_THROW(mem.load(BitVector(9)), Error);
  EXPECT_THROW(mem.load(BitVector()), Error);
  EXPECT_THROW(mem.read(1), Error);  // nothing loaded
}

TEST(Patterns, Generators) {
  EXPECT_EQ(patterns::alternating(6).to_string(), "010101");
  EXPECT_EQ(patterns::square(8, 2).to_string(), "00110011");
  const auto comma = patterns::comma(40);
  EXPECT_EQ(comma.size(), 40u);
  EXPECT_EQ(comma.slice(0, 20), comma.slice(20, 20));
  EXPECT_EQ(comma.longest_run(), 5u);
  const auto walk = patterns::walking_one(16, 4);
  EXPECT_EQ(walk.popcount(), 4u);
}

// ------------------------------------------------------------ registers --

TEST(RegisterFile, DefineReadWrite) {
  RegisterFile regs;
  regs.define(0x10, 42);
  EXPECT_EQ(regs.read(0x10), 42u);
  regs.write(0x10, 7);
  EXPECT_EQ(regs.read(0x10), 7u);
}

TEST(RegisterFile, ReadOnlyRejectsBusWrites) {
  RegisterFile regs;
  regs.define_ro(0x00, 0xD1C20050);
  EXPECT_EQ(regs.read(0x00), 0xD1C20050u);
  EXPECT_THROW(regs.write(0x00, 1), Error);
  regs.poke(0x00, 5);  // hardware-side update is allowed
  EXPECT_EQ(regs.read(0x00), 5u);
}

TEST(RegisterFile, UndefinedAddressThrows) {
  RegisterFile regs;
  EXPECT_THROW((void)regs.read(0x99), Error);
  EXPECT_THROW(regs.write(0x99, 0), Error);
}

TEST(RegisterFile, HooksFire) {
  RegisterFile regs;
  regs.define(0x01);
  std::uint32_t observed = 0;
  regs.on_write(0x01, [&](std::uint16_t, std::uint32_t v) { observed = v; });
  regs.on_read(0x01, [](std::uint16_t) { return 123u; });
  regs.write(0x01, 55);
  EXPECT_EQ(observed, 55u);
  EXPECT_EQ(regs.read(0x01), 123u);
}

TEST(RegisterFile, DoubleDefineThrows) {
  RegisterFile regs;
  regs.define(0x01);
  EXPECT_THROW(regs.define(0x01), Error);
}

// ------------------------------------------------------------ bitstream --

TEST(Bitstream, SerializeRoundTrip) {
  Bitstream bs;
  bs.design_name = "optical-testbed-tx";
  bs.version = 3;
  bs.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  const auto image = bs.serialize();
  EXPECT_EQ(Bitstream::deserialize(image), bs);
}

TEST(Bitstream, CorruptionIsDetectedEverywhere) {
  Bitstream bs;
  bs.design_name = "x";
  bs.payload = {1, 2, 3, 4, 5};
  const auto image = bs.serialize();
  // Flip one bit in every byte position; all must be caught.
  for (std::size_t i = 0; i < image.size(); ++i) {
    auto bad = image;
    bad[i] ^= 0x01;
    EXPECT_THROW(Bitstream::deserialize(bad), Error) << "byte " << i;
  }
}

TEST(Bitstream, TruncationIsDetected) {
  Bitstream bs;
  bs.payload = {1, 2, 3};
  auto image = bs.serialize();
  image.resize(image.size() - 3);
  EXPECT_THROW(Bitstream::deserialize(image), Error);
}

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926.
  const std::vector<std::uint8_t> data = {'1', '2', '3', '4', '5',
                                          '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

// ---------------------------------------------------------------- flash --

TEST(Flash, NorProgrammingSemantics) {
  FlashMemory flash(2, 16);
  EXPECT_EQ(flash.read(0), 0xFF);
  flash.program(0, 0xF0);
  EXPECT_EQ(flash.read(0), 0xF0);
  flash.program(0, 0x0F);  // AND semantics: only 1->0 transitions
  EXPECT_EQ(flash.read(0), 0x00);
  flash.erase_sector(0);
  EXPECT_EQ(flash.read(0), 0xFF);
  EXPECT_EQ(flash.wear(0), 1u);
  EXPECT_EQ(flash.wear(1), 0u);
}

TEST(Flash, WriteImageSpansSectors) {
  FlashMemory flash(4, 8);
  std::vector<std::uint8_t> image(20, 0xAB);
  flash.write_image(4, image);
  EXPECT_EQ(flash.read_image(4, 20), image);
  // Sectors 0..2 were erased (the image touches bytes 4..23).
  EXPECT_EQ(flash.wear(0), 1u);
  EXPECT_EQ(flash.wear(1), 1u);
  EXPECT_EQ(flash.wear(2), 1u);
  EXPECT_EQ(flash.wear(3), 0u);
}

TEST(Flash, OutOfRangeThrows) {
  FlashMemory flash(1, 8);
  EXPECT_THROW((void)flash.read(8), Error);
  EXPECT_THROW(flash.program(8, 0), Error);
  EXPECT_THROW(flash.erase_sector(1), Error);
  EXPECT_THROW(flash.write_image(4, std::vector<std::uint8_t>(5)), Error);
}

// ----------------------------------------------------------------- jtag --

TEST(Tap, ResetFromAnyStateInFiveTmsOnes) {
  // From every reachable state, five TMS=1 clocks must land in
  // Test-Logic-Reset (the defining property of the TAP state machine).
  for (int start = 0; start < 16; ++start) {
    auto state = static_cast<TapState>(start);
    for (int i = 0; i < 5; ++i) {
      state = tap_next_state(state, true);
    }
    EXPECT_EQ(state, TapState::TestLogicReset)
        << "from " << tap_state_name(static_cast<TapState>(start));
  }
}

TEST(Tap, CanonicalPathToShiftDr) {
  auto s = TapState::RunTestIdle;
  s = tap_next_state(s, true);   // Select-DR
  EXPECT_EQ(s, TapState::SelectDrScan);
  s = tap_next_state(s, false);  // Capture-DR
  EXPECT_EQ(s, TapState::CaptureDr);
  s = tap_next_state(s, false);  // Shift-DR
  EXPECT_EQ(s, TapState::ShiftDr);
  s = tap_next_state(s, true);   // Exit1-DR
  s = tap_next_state(s, true);   // Update-DR
  EXPECT_EQ(s, TapState::UpdateDr);
  s = tap_next_state(s, false);  // Run-Test/Idle
  EXPECT_EQ(s, TapState::RunTestIdle);
}

TEST(Tap, PauseAndResumeShifting) {
  auto s = TapState::ShiftDr;
  s = tap_next_state(s, true);   // Exit1-DR
  s = tap_next_state(s, false);  // Pause-DR
  EXPECT_EQ(s, TapState::PauseDr);
  s = tap_next_state(s, false);  // stay paused
  EXPECT_EQ(s, TapState::PauseDr);
  s = tap_next_state(s, true);   // Exit2-DR
  s = tap_next_state(s, false);  // back to Shift-DR
  EXPECT_EQ(s, TapState::ShiftDr);
}

TEST(Jtag, ReadIdcode) {
  TapDevice tap(0x2005DA7E, nullptr);
  JtagHost host(tap);
  EXPECT_EQ(host.read_idcode(), 0x2005DA7Eu);
  // Reset selects IDCODE automatically; read again without shift_ir.
  host.reset();
  const auto bits = host.shift_dr(std::vector<bool>(32, false));
  std::uint32_t id = 0;
  for (int i = 0; i < 32; ++i) {
    id |= static_cast<std::uint32_t>(bits[i]) << i;
  }
  EXPECT_EQ(id, 0x2005DA7Eu);
}

TEST(Jtag, BypassIsOneBit) {
  TapDevice tap(1, nullptr);
  JtagHost host(tap);
  host.shift_ir(tap_ins::kBypass);
  // Shifting N bits through a 1-bit bypass returns them delayed by one.
  const std::vector<bool> in = {true, false, true, true, false};
  const auto out = host.shift_dr(in);
  for (std::size_t i = 1; i < in.size(); ++i) {
    EXPECT_EQ(out[i], in[i - 1]);
  }
}

TEST(Jtag, UnknownInstructionSelectsBypass) {
  TapDevice tap(1, nullptr);
  JtagHost host(tap);
  host.shift_ir(0x5A);
  const auto out = host.shift_dr({true, false, true});
  EXPECT_EQ(out[1], true);
  EXPECT_EQ(out[2], false);
}

TEST(Jtag, FlashProgramAndVerify) {
  FlashMemory flash(8, 256);
  TapDevice tap(1, &flash);
  JtagHost host(tap);
  std::vector<std::uint8_t> image = {0x10, 0x20, 0x55, 0xAA, 0x00, 0xFF};
  host.program_flash_image(0, image, flash.sector_size());
  EXPECT_EQ(flash.read_image(0, image.size()), image);
}

TEST(Jtag, FlashVerifyCatchesFailure) {
  FlashMemory flash(8, 256);
  TapDevice tap(1, &flash);
  JtagHost host(tap);
  // Pre-program a zero byte; without an erase, 0xFF cannot be written back,
  // so programming an image without covering erase must fail verify...
  flash.program(3, 0x00);
  // ...but program_flash_image erases first, so it succeeds:
  std::vector<std::uint8_t> image = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_NO_THROW(host.program_flash_image(0, image, flash.sector_size()));
  // Direct streaming without erase fails to flip 0 -> 1:
  flash.program(1, 0x00);
  host.write_flash_address(0);
  host.program_flash_bytes({0xFF, 0xFF});
  EXPECT_EQ(flash.read(1), 0x00);
}

TEST(Jtag, BoundaryScanSampleAndExtest) {
  TapDevice tap(1, nullptr, 4);
  JtagHost host(tap);
  tap.set_pins({true, false, true, true});
  host.shift_ir(tap_ins::kSample);
  const auto sampled = host.shift_dr(std::vector<bool>(4, false));
  EXPECT_EQ(sampled, (std::vector<bool>{true, false, true, true}));

  host.shift_ir(tap_ins::kExtest);
  host.shift_dr({false, true, false, true});
  EXPECT_EQ(tap.driven_pins(), (std::vector<bool>{false, true, false, true}));
}

// ------------------------------------------------------------------ usb --

TEST(Usb, Crc5MatchesSpecExamples) {
  // USB 2.0 spec examples: addr=0x15 endp=0xE -> CRC5 0x17 is a classic
  // check; verify self-consistency + complement property instead of
  // memorized constants: received (data | crc) must validate.
  for (std::uint16_t field = 0; field < 0x800; field += 37) {
    const std::uint8_t crc = usb_crc5(field);
    EXPECT_LT(crc, 32);
    TokenPacket token;
    token.address = field & 0x7F;
    token.endpoint = (field >> 7) & 0xF;
    const auto wire = token.serialize();
    EXPECT_TRUE(TokenPacket::deserialize(wire).has_value());
  }
}

TEST(Usb, PidByteComplementChecked) {
  EXPECT_TRUE(decode_pid(pid_byte(Pid::Setup)).has_value());
  EXPECT_EQ(*decode_pid(pid_byte(Pid::Ack)), Pid::Ack);
  EXPECT_FALSE(decode_pid(0xFF).has_value());
  EXPECT_FALSE(decode_pid(pid_byte(Pid::Setup) ^ 0x10).has_value());
}

TEST(Usb, TokenRoundTripAndCorruption) {
  TokenPacket token{.pid = Pid::In, .address = 42, .endpoint = 3};
  auto wire = token.serialize();
  const auto back = TokenPacket::deserialize(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->address, 42);
  EXPECT_EQ(back->endpoint, 3);
  wire[1] ^= 0x04;
  EXPECT_FALSE(TokenPacket::deserialize(wire).has_value());
}

TEST(Usb, DataRoundTripAndCorruption) {
  DataPacket data{.pid = Pid::Data1, .payload = {1, 2, 3, 4, 5}};
  auto wire = data.serialize();
  const auto back = DataPacket::deserialize(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->payload, data.payload);
  EXPECT_EQ(back->pid, Pid::Data1);
  wire[3] ^= 0x80;
  EXPECT_FALSE(DataPacket::deserialize(wire).has_value());
}

TEST(Usb, RegisterReadWriteThroughProtocol) {
  Dlc dlc;
  UsbDevice device(5, dlc.usb_handler());
  UsbHost host(device);
  host.write_register(reg::kScratch, 0xCAFEF00D);
  EXPECT_EQ(host.read_register(reg::kScratch), 0xCAFEF00Du);
  EXPECT_EQ(host.read_register(reg::kId), reg::kIdValue);
}

TEST(Usb, RetriesThroughNoisyLink) {
  Dlc dlc;
  UsbDevice device(5, dlc.usb_handler());
  UsbHost host(device);
  // Corrupt every third packet on the wire.
  int counter = 0;
  host.set_corruptor([&](Wire& wire) {
    if (++counter % 3 == 0 && !wire.empty()) {
      wire[wire.size() / 2] ^= 0x40;
    }
  });
  for (std::uint32_t i = 0; i < 50; ++i) {
    host.write_register(reg::kScratch, i);
    EXPECT_EQ(host.read_register(reg::kScratch), i);
  }
  EXPECT_GT(host.retries(), 0u);
}

TEST(Usb, HopelessLinkThrows) {
  Dlc dlc;
  UsbDevice device(5, dlc.usb_handler());
  UsbHost host(device);
  host.set_corruptor([](Wire& wire) {
    for (auto& b : wire) {
      b ^= 0xFF;
    }
  });
  EXPECT_THROW(host.write_register(reg::kScratch, 1), Error);
}

TEST(Usb, WrongAddressIgnored) {
  Dlc dlc;
  UsbDevice device(5, dlc.usb_handler());
  TokenPacket token{.pid = Pid::Setup, .address = 9, .endpoint = 0};
  DataPacket data{.pid = Pid::Data0, .payload = usbreq::make_read(0)};
  EXPECT_FALSE(device.on_setup(token.serialize(), data.serialize()).has_value());
}

// ------------------------------------------------------------------ dlc --

TEST(Dlc, BootFromFlashHappyPath) {
  Dlc dlc;
  EXPECT_FALSE(dlc.configured());
  Bitstream bs;
  bs.design_name = "wlp-minitester";
  bs.payload.assign(64, 0x11);
  FlashMemory flash;
  const auto image = bs.serialize();
  flash.write_image(0, image);
  dlc.boot_from_flash(flash, 0, image.size());
  EXPECT_TRUE(dlc.configured());
  EXPECT_EQ(dlc.design_name(), "wlp-minitester");
}

TEST(Dlc, CorruptedFlashFailsBoot) {
  Dlc dlc;
  Bitstream bs;
  bs.payload.assign(16, 0x22);
  FlashMemory flash;
  auto image = bs.serialize();
  flash.write_image(0, image);
  flash.program(20, 0x00);  // corrupt a payload byte (0x22 -> 0x00) in place
  EXPECT_THROW(dlc.boot_from_flash(flash, 0, image.size()), Error);
  EXPECT_FALSE(dlc.configured());
}

TEST(Dlc, CannotStartUnconfigured) {
  Dlc dlc;
  EXPECT_THROW(dlc.regs().write(reg::kCtrl, reg::kCtrlStart), Error);
}

TEST(Dlc, StartStopStatus) {
  Dlc dlc;
  dlc.configure(named_bitstream("x"));
  EXPECT_EQ(dlc.status(), reg::kStatusIdle);
  dlc.regs().write(reg::kCtrl, reg::kCtrlStart);
  EXPECT_EQ(dlc.status(), reg::kStatusRunning);
  dlc.regs().write(reg::kCtrl, reg::kCtrlStop);
  EXPECT_EQ(dlc.status(), reg::kStatusIdle);
}

TEST(Dlc, LaneRateEnforcement) {
  Dlc dlc;  // default margin 400 Mbps, max 800 Mbps, 8 lanes
  dlc.regs().write(reg::kLaneCount, 8);
  EXPECT_NO_THROW(dlc.check_lane_rate(GbitsPerSec{2.5}));
  EXPECT_TRUE(dlc.within_margin(GbitsPerSec{2.5}));      // 312 Mbps/lane
  EXPECT_FALSE(dlc.within_margin(GbitsPerSec{4.0}));     // 500 Mbps/lane
  EXPECT_THROW(dlc.check_lane_rate(GbitsPerSec{8.0}), Error);  // 1 Gbps/lane
}

TEST(Dlc, PrbsSerialMatchesLfsr) {
  Dlc dlc;
  dlc.configure(named_bitstream("x"));
  dlc.regs().write(reg::kPrbsOrder, 15);
  dlc.regs().write(reg::kSeedLo, 0x1234);
  dlc.regs().write(reg::kSeedHi, 0);
  Lfsr reference = Lfsr::prbs15(0x1234);
  EXPECT_EQ(dlc.expected_serial(4096), reference.generate(4096));
}

TEST(Dlc, GenerateLanesInterleavesBackToSerial) {
  Dlc dlc;
  dlc.configure(named_bitstream("x"));
  dlc.regs().write(reg::kLaneCount, 8);
  dlc.regs().write(reg::kCtrl, reg::kCtrlStart);
  const auto lanes = dlc.generate_lanes(1024, GbitsPerSec{2.5});
  ASSERT_EQ(lanes.size(), 8u);
  EXPECT_EQ(BitVector::interleave(lanes), dlc.expected_serial(1024));
}

TEST(Dlc, GenerateRequiresRunning) {
  Dlc dlc;
  dlc.configure(named_bitstream("x"));
  EXPECT_THROW(dlc.generate_lanes(64, GbitsPerSec{2.5}), Error);
}

TEST(Dlc, PatternBanksArePerChannel) {
  Dlc dlc;
  dlc.configure(named_bitstream("x"));
  auto upload = [&](std::uint32_t channel, std::uint32_t word,
                    std::uint32_t len) {
    dlc.regs().write(reg::kChannelSel, channel);
    dlc.regs().write(reg::kPatternAddr, 0);
    dlc.regs().write(reg::kPatternData, word);
    dlc.regs().write(reg::kPatternLen, len);
  };
  upload(0, 0x0000000F, 8);  // 11110000
  upload(1, 0x000000F0, 8);  // 00001111
  dlc.regs().write(reg::kCtrl, reg::kCtrlModePattern);

  dlc.regs().write(reg::kChannelSel, 0);
  EXPECT_EQ(dlc.expected_serial(8).to_string(), "11110000");
  dlc.regs().write(reg::kChannelSel, 1);
  EXPECT_EQ(dlc.expected_serial(8).to_string(), "00001111");
}

TEST(Dlc, PatternModeWithoutUploadThrows) {
  Dlc dlc;
  dlc.configure(named_bitstream("x"));
  dlc.regs().write(reg::kCtrl, reg::kCtrlModePattern);
  EXPECT_THROW(dlc.expected_serial(8), Error);
}

TEST(Dlc, OversizedBitstreamRejected) {
  DlcSpec spec;
  spec.bitstream_max_bytes = 16;
  Dlc dlc(spec);
  Bitstream bs;
  bs.payload.assign(17, 0);
  EXPECT_THROW(dlc.configure(bs), Error);
}

}  // namespace
}  // namespace mgt::dig
