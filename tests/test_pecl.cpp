// Unit tests for src/pecl: clock source, fanout/dividers/XOR, delay lines,
// serializer trees, output buffers, and the sampling circuit.
#include <gtest/gtest.h>

#include <cmath>

#include "pecl/buffer.hpp"
#include "pecl/clocksource.hpp"
#include "pecl/delayline.hpp"
#include "pecl/fanout.hpp"
#include "pecl/mux.hpp"
#include "pecl/sampler.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace mgt::pecl {
namespace {

using mgt::BitVector;
using mgt::Error;
using mgt::Rng;
using mgt::RunningStats;

// ----------------------------------------------------------- ClockSource --

TEST(ClockSource, FrequencyRangeEnforced) {
  ClockSource::Config config;
  config.frequency = Gigahertz{1.25};
  ClockSource clock(config, Rng(1));
  EXPECT_NO_THROW(clock.set_frequency(Gigahertz{2.5}));
  EXPECT_NO_THROW(clock.set_frequency(Gigahertz{0.5}));
  EXPECT_THROW(clock.set_frequency(Gigahertz{3.0}), Error);
  EXPECT_THROW(clock.set_frequency(Gigahertz{0.1}), Error);
}

TEST(ClockSource, PeriodAndGrid) {
  ClockSource::Config config;
  config.frequency = Gigahertz{1.25};
  ClockSource clock(config, Rng(2));
  EXPECT_DOUBLE_EQ(clock.period().ps(), 800.0);
  const auto grid = clock.rising_edge_grid(3, Picoseconds{100.0});
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_DOUBLE_EQ(grid[0].ps(), 100.0);
  EXPECT_DOUBLE_EQ(grid[2].ps(), 1700.0);
}

TEST(ClockSource, JitterSigmaIsRealized) {
  ClockSource::Config config;
  config.frequency = Gigahertz{1.0};
  config.rj_sigma = Picoseconds{2.0};
  ClockSource clock(config, Rng(3));
  const auto edges = clock.generate(20000);
  RunningStats deviation;
  std::size_t k = 0;
  for (const auto& tr : edges.transitions()) {
    const double nominal = static_cast<double>(k) * 500.0;
    deviation.add(tr.time.ps() - nominal);
    ++k;
  }
  EXPECT_NEAR(deviation.stddev(), 2.0, 0.1);
}

TEST(ClockSource, ZeroJitterIsExact) {
  ClockSource::Config config;
  config.frequency = Gigahertz{1.0};
  config.rj_sigma = Picoseconds{0.0};
  ClockSource clock(config, Rng(4));
  const auto edges = clock.generate(10);
  EXPECT_DOUBLE_EQ(edges.transitions()[3].time.ps(), 1500.0);
}

// --------------------------------------------------------------- fanout --

TEST(Fanout, SkewIsFixedPerOutput) {
  ClockFanout::Config config;
  config.outputs = 4;
  config.skew_pp = Picoseconds{8.0};
  config.rj_sigma = Picoseconds{0.0};
  ClockFanout fanout(config, Rng(5));
  const auto clk = sig::EdgeStream::clock(Picoseconds{800.0}, 10);
  for (std::size_t out = 0; out < 4; ++out) {
    const auto driven = fanout.drive(clk, out);
    EXPECT_LE(std::abs(fanout.skew_of(out).ps()), 4.0);
    // Every edge shifted by exactly prop_delay + skew.
    const double expected =
        config.prop_delay.ps() + fanout.skew_of(out).ps();
    for (std::size_t i = 0; i < clk.size(); ++i) {
      EXPECT_NEAR(driven.transitions()[i].time.ps() -
                      clk.transitions()[i].time.ps(),
                  expected, 1e-9);
    }
  }
  EXPECT_THROW(fanout.drive(clk, 4), Error);
}

class DivideClock : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DivideClock, DividesRisingEdgeRate) {
  const std::size_t divisor = GetParam();
  const auto clk = sig::EdgeStream::clock(Picoseconds{400.0}, 64);
  const auto divided = divide_clock(clk, divisor);
  // Input has 64 rising edges; output toggles on every divisor-th one
  // (divide-by-1 passes the input through untouched).
  EXPECT_EQ(divided.size(), divisor == 1 ? clk.size() : 64 / divisor);
  EXPECT_TRUE(divided.well_formed());
  if (divisor >= 2 && divided.size() >= 2) {
    // Output toggles every divisor-th rising edge: its full period is
    // 2 * divisor input periods.
    const double period = (divided.transitions()[1].time -
                           divided.transitions()[0].time).ps() * 2.0;
    EXPECT_DOUBLE_EQ(period, 400.0 * 2.0 * static_cast<double>(divisor));
  }
}

INSTANTIATE_TEST_SUITE_P(Divisors, DivideClock, ::testing::Values(1, 2, 4, 8));

TEST(XorGate, DoubleClockDoublesEdgeCount) {
  XorGate::Config config;
  config.rj_sigma = Picoseconds{0.0};
  XorGate gate(config, Rng(6));
  const auto clk = sig::EdgeStream::clock(Picoseconds{800.0}, 16);
  const auto doubled = gate.double_clock(clk, Picoseconds{200.0});
  EXPECT_TRUE(doubled.well_formed());
  // XOR with quarter-period delayed copy: twice the transitions (edges at
  // both input edges and delayed edges).
  EXPECT_NEAR(static_cast<double>(doubled.size()),
              2.0 * static_cast<double>(clk.size()), 2.0);
}

// ------------------------------------------------------------ delayline --

TEST(DelayLine, ProgrammedVsActualWithinAccuracy) {
  // The headline spec: 10 ps resolution, ~+-25 ps accuracy (Sections 1, 4).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ProgrammableDelay delay(ProgrammableDelay::Config{}, Rng(seed));
    EXPECT_LE(delay.worst_case_error().ps(), 25.0) << "part " << seed;
    EXPECT_GT(delay.worst_case_error().ps(), 1.0);  // real parts aren't ideal
  }
}

TEST(DelayLine, CodeZeroIsCalibrationReference) {
  // actual_delay is documented relative to code 0: exactly zero there, with
  // the part's fixed insertion-delay error reported separately.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ProgrammableDelay stepped(ProgrammableDelay::Config{}, Rng(seed));
    EXPECT_EQ(stepped.actual_delay(0).ps(), 0.0) << "part " << seed;
    EXPECT_LE(std::abs(stepped.insertion_offset().ps()),
              stepped.config().offset_error.ps());

    ProgrammableDelay::Config vconfig;
    vconfig.mode = TimingMode::kVernier;
    ProgrammableDelay vernier(vconfig, Rng(seed));
    EXPECT_EQ(vernier.actual_delay(0).ps(), 0.0) << "part " << seed;
  }
}

TEST(DelayLine, TenPicosecondResolutionRealized) {
  ProgrammableDelay delay(ProgrammableDelay::Config{}, Rng(7));
  std::vector<double> codes;
  std::vector<Picoseconds> delays;
  for (std::size_t c = 0; c < delay.code_count(); c += 16) {
    codes.push_back(static_cast<double>(c));
    delays.push_back(delay.actual_delay(c));
  }
  // Linear fit: step within 1 % of 10 ps/code.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < codes.size(); ++i) {
    sx += codes[i];
    sy += delays[i].ps();
    sxx += codes[i] * codes[i];
    sxy += codes[i] * delays[i].ps();
  }
  const double n = static_cast<double>(codes.size());
  const double gain = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  EXPECT_NEAR(gain, 10.0, 0.1);
}

TEST(DelayLine, FullRangeCoversTenNanoseconds) {
  ProgrammableDelay delay(ProgrammableDelay::Config{}, Rng(8));
  EXPECT_NEAR(delay.full_range().ns(), 10.23, 0.01);
}

TEST(DelayLine, ApplyShiftsEdges) {
  ProgrammableDelay::Config config;
  config.rj_sigma = Picoseconds{0.0};
  ProgrammableDelay delay(config, Rng(9));
  delay.set_code(100);
  const auto in = sig::EdgeStream::clock(Picoseconds{800.0}, 4);
  const auto out = delay.apply(in);
  const double shift =
      out.transitions()[0].time.ps() - in.transitions()[0].time.ps();
  EXPECT_NEAR(shift,
              config.insertion_delay.ps() + delay.insertion_offset().ps() +
                  delay.actual_delay(100).ps(),
              1e-9);
  // Same shift on every edge (deterministic part).
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(out.transitions()[i].time.ps() -
                    in.transitions()[i].time.ps(),
                shift, 1e-9);
  }
}

TEST(DelayLine, CodeRangeEnforced) {
  ProgrammableDelay delay(ProgrammableDelay::Config{}, Rng(10));
  EXPECT_THROW(delay.set_code(delay.code_count()), Error);
  EXPECT_THROW(delay.actual_delay(delay.code_count()), Error);
}

TEST(DelayLine, InstancesDiffer) {
  ProgrammableDelay a(ProgrammableDelay::Config{}, Rng(11));
  ProgrammableDelay b(ProgrammableDelay::Config{}, Rng(12));
  EXPECT_NE(a.actual_delay(500).ps(), b.actual_delay(500).ps());
}

// ------------------------------------------------------------------ mux --

TEST(SerializerTree, LaneCounts) {
  SerializerTree testbed(SerializerTree::testbed_8to1(), Rng(13));
  EXPECT_EQ(testbed.total_lanes(), 8u);
  SerializerTree mini(SerializerTree::minitester_16to1(), Rng(14));
  EXPECT_EQ(mini.total_lanes(), 16u);
}

TEST(SerializerTree, DistributeInterleaveRoundTrip) {
  SerializerTree tree(SerializerTree::minitester_16to1(), Rng(15));
  Rng rng(16);
  const auto serial = BitVector::random(1600, rng);
  const auto lanes = tree.distribute(serial);
  ASSERT_EQ(lanes.size(), 16u);
  EXPECT_EQ(BitVector::interleave(lanes), serial);
}

TEST(SerializerTree, SerializedBitsRecoverable) {
  SerializerTree tree(SerializerTree::testbed_8to1(), Rng(17));
  Rng rng(18);
  const auto bits = BitVector::random(4096, rng);
  const auto edges = tree.serialize(bits, GbitsPerSec{2.5});
  EXPECT_TRUE(edges.well_formed());
  // Sampling at bit centers (offset by the tree's propagation delay)
  // recovers the data: jitter+skew are far below UI/2.
  EXPECT_EQ(edges.to_bits(4096, Picoseconds{400.0}, tree.total_prop_delay()),
            bits);
}

TEST(SerializerTree, SkewProfilePeriodicInLaneCount) {
  SerializerTree tree(SerializerTree::minitester_16to1(), Rng(19));
  for (std::size_t k = 0; k < 64; ++k) {
    EXPECT_DOUBLE_EQ(tree.skew_for_bit(k).ps(),
                     tree.skew_for_bit(k + 16).ps());
  }
}

TEST(SerializerTree, SkewBoundedByConfig) {
  const auto config = SerializerTree::minitester_16to1();
  SerializerTree tree(config, Rng(20));
  double bound = 0.0;
  for (const auto& stage : config.stages) {
    bound += stage.skew_pp.ps();  // worst case: extremes add
  }
  EXPECT_LE(tree.skew_profile_pp().ps(), bound);
  EXPECT_GT(tree.skew_profile_pp().ps(), 0.0);
}

TEST(SerializerTree, TotalRjIsRssOfStages) {
  SerializerTree::Config config;
  config.clock_rj_sigma = Picoseconds{3.0};
  config.stages = {MuxStage{.fan_in = 2, .rj_sigma = Picoseconds{4.0}}};
  SerializerTree tree(config, Rng(21));
  EXPECT_NEAR(tree.total_rj_sigma().ps(), 5.0, 1e-9);  // 3-4-5 triangle
}

TEST(SerializerTree, InvalidConfigThrows) {
  SerializerTree::Config empty;
  EXPECT_THROW(SerializerTree(empty, Rng(22)), Error);
  SerializerTree::Config bad;
  bad.stages = {MuxStage{.fan_in = 1}};
  EXPECT_THROW(SerializerTree(bad, Rng(23)), Error);
}

TEST(SerializerTree, BuildersValidateStageLists) {
  EXPECT_THROW(SerializerTree::from_fan_ins({}), Error);
  EXPECT_THROW(SerializerTree::from_fan_ins({1}), Error);        // too narrow
  EXPECT_THROW(SerializerTree::from_fan_ins({65}), Error);       // too wide
  EXPECT_THROW(SerializerTree::from_fan_ins({2, 2, 2, 2, 2, 2, 2}),
               Error);                                           // too deep
  EXPECT_THROW(SerializerTree::from_fan_ins({64, 64, 2}), Error);  // lanes
  EXPECT_THROW(SerializerTree::stage_for_fan_in(4, -1.0), Error);
  EXPECT_NO_THROW(SerializerTree::from_fan_ins({64, 64}));  // exactly 4096
}

TEST(SerializerTree, BuilderMatchesPresetFamily) {
  // The parameterized part family reproduces the known presets' shape:
  // the 32-lane extension tree and a single-stage 16:1.
  const auto ext = SerializerTree::extension_32lane();
  ASSERT_EQ(ext.stages.size(), 2u);
  EXPECT_EQ(ext.stages[0].fan_in, 4u);
  EXPECT_EQ(ext.stages[1].fan_in, 8u);
  SerializerTree ext_tree(ext, Rng(24));
  EXPECT_EQ(ext_tree.total_lanes(), 32u);

  const auto flat = SerializerTree::serializer_16to1();
  ASSERT_EQ(flat.stages.size(), 1u);
  EXPECT_EQ(flat.stages[0].fan_in, 16u);

  // skew_scale stresses only the deterministic skew, linearly.
  const auto nominal = SerializerTree::stage_for_fan_in(8);
  const auto stressed = SerializerTree::stage_for_fan_in(8, 2.0);
  EXPECT_DOUBLE_EQ(stressed.skew_pp.ps(), 2.0 * nominal.skew_pp.ps());
  EXPECT_DOUBLE_EQ(stressed.rj_sigma.ps(), nominal.rj_sigma.ps());
  EXPECT_DOUBLE_EQ(stressed.prop_delay.ps(), nominal.prop_delay.ps());
}

TEST(SerializerTree, MixedRadixLaneAndSkewConsistency) {
  // Non-uniform trees: a 4:1 + 8:1 and a three-stage 2:1 + 4:1 + 8:1.
  for (const auto& fan_ins :
       {std::vector<std::size_t>{4, 8}, std::vector<std::size_t>{2, 4, 8}}) {
    SerializerTree tree(SerializerTree::from_fan_ins(fan_ins), Rng(40));
    const std::size_t lanes = tree.total_lanes();
    const std::size_t final_fan = fan_ins.front();
    for (std::size_t k = 0; k < 3 * lanes; ++k) {
      // The lane map is the serial index modulo the lane count, and skew is
      // a pure function of the lane.
      EXPECT_EQ(tree.lane_for_bit(k), k % lanes);
      EXPECT_DOUBLE_EQ(tree.skew_for_bit(k).ps(),
                       tree.skew_for_bit(k % lanes).ps());
    }
    // Mixed-radix decomposition: skews of the stages add independently, so
    // skew(a + F*b) == skew(a) + skew(F*b) - skew(0) with F the final
    // stage's fan-in (input a on the final stage, b on the inner tree).
    for (std::size_t a = 0; a < final_fan; ++a) {
      for (std::size_t b = 0; b < lanes / final_fan; ++b) {
        EXPECT_NEAR(tree.skew_for_bit(a + final_fan * b).ps(),
                    tree.skew_for_bit(a).ps() +
                        tree.skew_for_bit(final_fan * b).ps() -
                        tree.skew_for_bit(0).ps(),
                    1e-12);
      }
    }
  }
}

TEST(SerializerTree, MixedRadixSerializeDistributeRoundTrip) {
  for (const auto& fan_ins :
       {std::vector<std::size_t>{4, 8}, std::vector<std::size_t>{2, 4, 8}}) {
    SerializerTree tree(SerializerTree::from_fan_ins(fan_ins), Rng(41));
    const std::size_t lanes = tree.total_lanes();
    Rng rng(42);
    const auto serial = BitVector::random(lanes * 24, rng);

    const auto per_lane = tree.distribute(serial);
    ASSERT_EQ(per_lane.size(), lanes);
    EXPECT_EQ(BitVector::interleave(per_lane), serial);

    const auto edges = tree.serialize(serial, GbitsPerSec{2.5});
    EXPECT_TRUE(edges.well_formed());
    EXPECT_EQ(edges.to_bits(serial.size(), Picoseconds{400.0},
                            tree.total_prop_delay()),
              serial);
  }
}

TEST(SerializerTree, DropoutOnBitZeroHoldsInitialLevel) {
  // Regression: a dropout active from serial bit 0 must hold the stream's
  // initial level (EdgeStream::from_bits seeds it from bit 0's own value),
  // not force a hard zero.
  SerializerTree::Config config;
  config.stages = {MuxStage{.fan_in = 2,
                            .skew_pp = Picoseconds{0.0},
                            .rj_sigma = Picoseconds{0.0},
                            .prop_delay = Picoseconds{0.0}}};
  config.clock_rj_sigma = Picoseconds{0.0};

  fault::FaultPlan plan(7);
  plan.schedule({.kind = fault::FaultKind::kMuxDropout,
                 .component = "serializer",
                 .index = 0,
                 .start = 0});

  // All-ones data, lane 0 dropped out from bit 0: every held value is 1,
  // so the stream must come back unchanged (pre-fix, bit 0 flipped to 0).
  SerializerTree tree(config, Rng(43));
  tree.set_faults(plan.component("serializer"));
  const auto ones = BitVector::from_string("11111111");
  const auto edges = tree.serialize(ones, GbitsPerSec{2.5});
  EXPECT_EQ(edges.to_bits(ones.size(), Picoseconds{400.0},
                          tree.total_prop_delay()),
            ones);

  // Full-bus dropout on alternating data starting with 1: every bit holds
  // the value before it, which collapses the stream to the initial level.
  fault::FaultPlan all_plan(8);
  all_plan.schedule({.kind = fault::FaultKind::kMuxDropout,
                     .component = "serializer",
                     .index = fault::FaultSpec::kAllIndices,
                     .severity = 1.0,
                     .start = 0});
  SerializerTree held(config, Rng(44));
  held.set_faults(all_plan.component("serializer"));
  const auto alternating = BitVector::from_string("10101010");
  const auto held_edges = held.serialize(alternating, GbitsPerSec{2.5});
  EXPECT_EQ(held_edges.to_bits(alternating.size(), Picoseconds{400.0},
                               held.total_prop_delay()),
            BitVector::from_string("11111111"));
}

// ---------------------------------------------------------------- buffer --

TEST(OutputBuffer, DacSnapsToGrid) {
  OutputBuffer buffer(OutputBuffer::Config{}, Rng(24));
  buffer.set_voh(Millivolts{2309.0});
  EXPECT_DOUBLE_EQ(buffer.levels().voh.mv(), 2300.0);  // 20 mV grid
  buffer.set_vol(Millivolts{1611.0});
  EXPECT_DOUBLE_EQ(buffer.levels().vol.mv(), 1620.0);
}

TEST(OutputBuffer, Fig10StyleVohSteps) {
  OutputBuffer buffer(OutputBuffer::Config{}, Rng(25));
  const double start = buffer.levels().voh.mv();
  for (int step = 1; step <= 3; ++step) {
    buffer.set_voh(Millivolts{start - 100.0 * step});
    EXPECT_DOUBLE_EQ(buffer.levels().voh.mv(), start - 100.0 * step);
  }
}

TEST(OutputBuffer, Fig11StyleSwingSteps) {
  OutputBuffer buffer(OutputBuffer::Config{}, Rng(26));
  const double mid = buffer.levels().midpoint().mv();
  for (double swing : {800.0, 600.0, 400.0, 200.0}) {
    buffer.set_swing(Millivolts{swing});
    EXPECT_NEAR(buffer.levels().swing().mv(), swing, 1e-9);
    EXPECT_NEAR(buffer.levels().midpoint().mv(), mid, 1e-9);
  }
}

TEST(OutputBuffer, MidpointMove) {
  OutputBuffer buffer(OutputBuffer::Config{}, Rng(27));
  buffer.set_midpoint(Millivolts{1800.0});
  EXPECT_NEAR(buffer.levels().midpoint().mv(), 1800.0, 10.0);
}

TEST(OutputBuffer, ComplianceRangeEnforced) {
  OutputBuffer buffer(OutputBuffer::Config{}, Rng(28));
  EXPECT_THROW(buffer.set_voh(Millivolts{3500.0}), Error);
  EXPECT_THROW(buffer.set_vol(Millivolts{500.0}), Error);
}

TEST(OutputBuffer, ApplyAddsDelayAndJitter) {
  OutputBuffer::Config config;
  config.rj_sigma = Picoseconds{2.0};
  OutputBuffer buffer(config, Rng(29));
  const auto in = sig::EdgeStream::clock(Picoseconds{800.0}, 5000);
  const auto out = buffer.apply(in);
  RunningStats deviation;
  for (std::size_t i = 0; i < in.size(); ++i) {
    deviation.add(out.transitions()[i].time.ps() -
                  in.transitions()[i].time.ps());
  }
  EXPECT_NEAR(deviation.mean(), config.prop_delay.ps(), 0.2);
  EXPECT_NEAR(deviation.stddev(), 2.0, 0.2);
}

TEST(OutputBuffer, ChainHasConfiguredPoles) {
  OutputBuffer::Config config;
  config.pole_count = 2;
  OutputBuffer buffer(config, Rng(30));
  EXPECT_EQ(buffer.make_chain().pole_count(), 2u);
  EXPECT_NEAR(buffer.realized_rise_2080().ps(), config.rise_2080.ps(), 1.0);
}

// --------------------------------------------------------------- sampler --

TEST(Sampler, StrobeSchedule) {
  const auto strobes = PeclSampler::strobe_schedule(Picoseconds{100.0},
                                                    Picoseconds{200.0}, 4);
  ASSERT_EQ(strobes.size(), 4u);
  EXPECT_DOUBLE_EQ(strobes[0].ps(), 100.0);
  EXPECT_DOUBLE_EQ(strobes[3].ps(), 700.0);
}

TEST(Sampler, CapturesKnownPattern) {
  PeclSampler::Config config;
  config.threshold = Millivolts{2000.0};
  config.strobe_rj_sigma = Picoseconds{0.0};
  config.aperture = Picoseconds{0.0};
  PeclSampler sampler(config, Rng(31));

  const auto bits = BitVector::from_string("1100101001110100");
  const Picoseconds ui{200.0};
  const auto edges = sig::EdgeStream::from_bits(bits, ui);
  sig::FilterChain chain;
  chain.add_pole_rise_2080(Picoseconds{40.0});
  const sig::PeclLevels levels{Millivolts{2400.0}, Millivolts{1600.0}};

  const auto strobes = PeclSampler::strobe_schedule(
      Picoseconds{100.0 + chain.group_delay().ps()}, ui, bits.size());
  const auto capture = sampler.capture(edges, chain, levels, strobes);
  EXPECT_EQ(capture.bits, bits);
  ASSERT_EQ(capture.analog.size(), bits.size());
  EXPECT_GT(capture.analog[0].mv(), 2300.0);  // settled high
}

TEST(Sampler, ApertureCausesMetastabilityOnEdges) {
  PeclSampler::Config config;
  config.aperture = Picoseconds{20.0};
  config.strobe_rj_sigma = Picoseconds{0.0};
  PeclSampler sampler(config, Rng(32));

  // Strobe exactly on the data edges: captures must be a random mix.
  const auto bits = BitVector::alternating(2000);
  const Picoseconds ui{200.0};
  const auto edges = sig::EdgeStream::from_bits(bits, ui);
  sig::FilterChain chain;
  chain.add_pole_rise_2080(Picoseconds{40.0});
  const sig::PeclLevels levels{Millivolts{2400.0}, Millivolts{1600.0}};

  // Group delay puts the 50 % point near tau*ln2 after the boundary.
  const auto strobes = PeclSampler::strobe_schedule(
      Picoseconds{200.0 + chain.group_delay().ps() * std::log(2.0)}, ui,
      bits.size() - 2);
  const auto capture = sampler.capture(edges, chain, levels, strobes);
  const double ones = static_cast<double>(capture.bits.popcount()) /
                      static_cast<double>(capture.bits.size());
  EXPECT_GT(ones, 0.15);
  EXPECT_LT(ones, 0.85);
}

TEST(Sampler, EmptyStrobesThrow) {
  PeclSampler sampler(PeclSampler::Config{}, Rng(33));
  sig::FilterChain chain;
  EXPECT_THROW(sampler.capture(sig::EdgeStream{false}, chain,
                               sig::PeclLevels{}, {}),
               Error);
}

}  // namespace
}  // namespace mgt::pecl
