// Edge-case and negative-path tests across modules: the corners the main
// suites don't reach.
#include <gtest/gtest.h>

#include "digital/dlc.hpp"
#include "digital/jtag.hpp"
#include "digital/sequencer.hpp"
#include "digital/usb.hpp"
#include "minitester/minitester.hpp"
#include "signal/edge.hpp"
#include "signal/filter.hpp"
#include "signal/render.hpp"
#include "signal/sinks.hpp"
#include "testbed/framing.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "vortex/fabric.hpp"

namespace mgt {
namespace {

// ----------------------------------------------------------------- signal --

TEST(EdgeCases, XorCoincidentEdgesCancel) {
  // Two streams toggling at exactly the same instants XOR to a constant.
  const auto a = sig::EdgeStream::from_bits(BitVector::alternating(50),
                                            Picoseconds{100.0});
  const auto x = a.xor_with(a);
  EXPECT_TRUE(x.empty());
  EXPECT_FALSE(x.initial_level());
  EXPECT_TRUE(x.well_formed());
}

TEST(EdgeCases, XorWithConstantIsIdentityOrInversion) {
  const auto a = sig::EdgeStream::from_bits(BitVector::alternating(20),
                                            Picoseconds{100.0});
  const sig::EdgeStream zeros(false);
  const sig::EdgeStream ones(true);
  const auto same = a.xor_with(zeros);
  EXPECT_EQ(same.size(), a.size());
  EXPECT_EQ(same.initial_level(), a.initial_level());
  const auto inverted = a.xor_with(ones);
  EXPECT_EQ(inverted.initial_level(), !a.initial_level());
}

TEST(EdgeCases, EmptyBitVectorMakesEmptyStream) {
  const auto s = sig::EdgeStream::from_bits(BitVector{}, Picoseconds{100.0});
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.level_at(Picoseconds{0.0}));
}

TEST(EdgeCases, FilterChainWithNoPolesIsPassthrough) {
  sig::FilterChain chain;
  chain.reset(Millivolts{1234.0});
  EXPECT_DOUBLE_EQ(chain.output().mv(), 1234.0);
  chain.step(Millivolts{5678.0}, Picoseconds{1.0});
  EXPECT_DOUBLE_EQ(chain.output().mv(), 5678.0);
  EXPECT_DOUBLE_EQ(chain.group_delay().ps(), 0.0);
  EXPECT_DOUBLE_EQ(chain.rise_2080_estimate().ps(), 0.0);
}

TEST(EdgeCases, RenderConstantLineProducesNoCrossings) {
  const sig::EdgeStream flat(true);
  sig::FilterChain chain;
  chain.add_pole_rise_2080(Picoseconds{60.0});
  sig::CrossingRecorder recorder(Millivolts{2000.0});
  sig::render(flat, chain, sig::RenderConfig{}, Picoseconds{0.0},
              Picoseconds{5000.0}, {&recorder});
  EXPECT_TRUE(recorder.crossings().empty());
}

TEST(EdgeCases, AmplitudeTrackerWithoutSettledSamples) {
  sig::AmplitudeTracker tracker(Millivolts{2000.0},
                                MvPerPs{1e-9});  // nothing settles
  tracker.on_sample(Picoseconds{0.0}, Millivolts{1600.0});
  tracker.on_sample(Picoseconds{1.0}, Millivolts{2400.0});
  EXPECT_DOUBLE_EQ(tracker.settled_high().mv(), 0.0);  // empty stats
  EXPECT_DOUBLE_EQ(tracker.peak_to_peak().mv(), 800.0);
}

// ---------------------------------------------------------------- digital --

TEST(EdgeCases, DlcLaneCountOutOfRangeThrows) {
  dig::Dlc dlc;
  dlc.regs().write(dig::reg::kLaneCount, 0);
  EXPECT_THROW((void)dlc.lane_count(), Error);
  dlc.regs().write(dig::reg::kLaneCount, 999);
  EXPECT_THROW((void)dlc.lane_count(), Error);
}

TEST(EdgeCases, UsbInWithoutPendingResponseNaks) {
  dig::Dlc dlc;
  dig::UsbDevice device(5, dlc.usb_handler());
  dig::TokenPacket in{.pid = dig::Pid::In, .address = 5, .endpoint = 0};
  const auto wire = device.on_in(in.serialize());
  ASSERT_TRUE(wire.has_value());
  ASSERT_EQ(wire->size(), 1u);
  EXPECT_EQ(dig::decode_pid((*wire)[0]), dig::Pid::Nak);
}

TEST(EdgeCases, UsbDeviceRejectsBadAddress) {
  EXPECT_THROW(dig::UsbDevice(200, [](const auto&) {
                 return std::vector<std::uint8_t>{};
               }),
               Error);
}

TEST(EdgeCases, JtagTckCyclesAccumulate) {
  dig::TapDevice tap(1, nullptr);
  dig::JtagHost host(tap);
  const auto after_reset = host.tck_cycles();
  EXPECT_GE(after_reset, 6u);  // 5 reset clocks + idle entry
  host.read_idcode();
  EXPECT_GT(host.tck_cycles(), after_reset + 32);
}

TEST(EdgeCases, SequencerEmitLiteralWidthValidation) {
  EXPECT_THROW(dig::TestSequencer({dig::seq::emit_literal(1, 0),
                                   dig::seq::halt()})
                   .run(),
               Error);
  EXPECT_THROW(dig::TestSequencer({dig::seq::emit_literal(1, 33),
                                   dig::seq::halt()})
                   .run(),
               Error);
}

// ---------------------------------------------------------------- framing --

TEST(EdgeCases, ParseSlotDetectsMissingFrame) {
  const testbed::SlotFormat fmt;
  Rng rng(1);
  testbed::TestbedPacket packet;
  for (auto& lane : packet.payload) {
    lane = BitVector::random(32, rng);
  }
  auto slot = testbed::build_slot(fmt, packet);
  slot.frame = BitVector(fmt.slot_bits);  // frame channel stuck low
  EXPECT_THROW(testbed::parse_slot(fmt, slot), Error);
}

TEST(EdgeCases, ParseSlotDetectsFrameOutsideWindow) {
  const testbed::SlotFormat fmt;
  Rng rng(2);
  testbed::TestbedPacket packet;
  for (auto& lane : packet.payload) {
    lane = BitVector::random(32, rng);
  }
  auto slot = testbed::build_slot(fmt, packet);
  slot.frame = BitVector(fmt.slot_bits, true);  // stuck high everywhere
  EXPECT_THROW(testbed::parse_slot(fmt, slot), Error);
}

// ----------------------------------------------------------------- fabric --

TEST(EdgeCases, DrainGivesUpWhenBudgetTooSmall) {
  vortex::DataVortex fabric(vortex::Geometry::for_heights(16, 4));
  vortex::Packet p;
  p.destination = 9;
  fabric.inject(std::move(p), 0);
  std::vector<vortex::Delivery> out;
  EXPECT_FALSE(fabric.drain(out, 2));  // needs >= 5 slots to traverse
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(fabric.occupancy(), 1u);
  EXPECT_TRUE(fabric.drain(out, 100));
  EXPECT_EQ(out.size(), 1u);
}

TEST(EdgeCases, SnapshotTracksThePacket) {
  vortex::DataVortex fabric(vortex::Geometry::for_heights(8, 4));
  vortex::Packet p;
  p.id = 42;
  p.destination = 3;
  fabric.inject(std::move(p), 1);
  auto snap = fabric.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].second, 42u);
  EXPECT_EQ(snap[0].first.cylinder, 0u);
  EXPECT_EQ(snap[0].first.height, 1u);
  fabric.step();
  snap = fabric.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_GE(snap[0].first.cylinder + snap[0].first.angle, 1u);  // it moved
}

// -------------------------------------------------------------- minitester --

TEST(EdgeCases, LoopbackNeedsEnoughBits) {
  minitester::MiniTester tester(minitester::MiniTester::Config{}, 3);
  tester.program_prbs(7, 1);
  tester.start();
  // Fewer bits than warmup + 1: the slice is invalid and must throw, not
  // underflow.
  EXPECT_THROW(tester.run_loopback(16), Error);
}

TEST(EdgeCases, StuckDutLoopbackIsAllErrors) {
  minitester::MiniTester::Config config;
  config.dut.defect = minitester::Defect::StuckLow;
  minitester::MiniTester tester(config, 4);
  tester.program_prbs(7, 0xACE1);
  tester.start();
  const auto ber = tester.run_loopback(512);
  // PRBS7 is balanced: a stuck-low line is wrong about half the time.
  EXPECT_NEAR(ber.ber(), 0.5, 0.08);
}

// ------------------------------------------------------------------- stats --

TEST(EdgeCases, HistogramReset) {
  Histogram h(0.0, 10.0, 10);
  h.add(5.0);
  h.add(-1.0);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.bin(5), 0u);
}

TEST(EdgeCases, RunningStatsSingleSample) {
  RunningStats s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.peak_to_peak(), 0.0);
  EXPECT_DOUBLE_EQ(s.rms(), 7.0);
}

}  // namespace
}  // namespace mgt
