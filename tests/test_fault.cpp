// Tests for the deterministic fault-injection layer (src/fault) and the
// graceful-degradation paths it drives across the signal chain.
//
// The two contract pillars (see fault/fault.hpp):
//   1. An empty FaultPlan changes nothing — outputs stay byte-identical.
//   2. Fault decisions depend only on (plan seed, component, tick), so a
//      faulted run reproduces exactly at every MGT_THREADS setting.
// Plus the degradation behaviors themselves: masked dead pins, calibration
// retries, fabric rerouting, LOS flatlines, and the self-test report.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/faultsweep.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "link/link.hpp"
#include "minitester/array.hpp"
#include "minitester/minitester.hpp"
#include "pecl/clocksource.hpp"
#include "pecl/delayline.hpp"
#include "pecl/mux.hpp"
#include "testbed/calibration.hpp"
#include "testbed/testbed.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "vortex/fabric.hpp"

namespace mgt {
namespace {

using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultSpec;
using fault::HealthStatus;

// Restores the ambient thread configuration when a test body returns.
struct ThreadOverrideGuard {
  ~ThreadOverrideGuard() { util::clear_thread_override(); }
};

void expect_streams_identical(const sig::EdgeStream& a,
                              const sig::EdgeStream& b, const char* what) {
  EXPECT_EQ(a.initial_level(), b.initial_level()) << what;
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.transitions()[i].time.ps(), b.transitions()[i].time.ps())
        << what << " transition " << i;
    ASSERT_EQ(a.transitions()[i].level, b.transitions()[i].level)
        << what << " transition " << i;
  }
}

testbed::TestbedPacket test_packet(Rng& rng) {
  testbed::TestbedPacket packet;
  for (auto& lane : packet.payload) {
    lane = BitVector::random(testbed::SlotFormat{}.data_bits, rng);
  }
  packet.header = 0b0101;
  return packet;
}

// ------------------------------------------------------------- plan model --

TEST(FaultPlan, WindowsAndElementMatching) {
  FaultSpec spec;
  spec.kind = FaultKind::kLossOfSignal;
  spec.component = "optics";
  spec.index = 2;
  spec.start = 10;
  spec.duration = 5;

  EXPECT_FALSE(spec.active_at(9));
  EXPECT_TRUE(spec.active_at(10));
  EXPECT_TRUE(spec.active_at(14));
  EXPECT_FALSE(spec.active_at(15));
  EXPECT_TRUE(spec.applies(12, 2));
  EXPECT_FALSE(spec.applies(12, 3));

  FaultSpec forever;
  EXPECT_TRUE(forever.active_at(~static_cast<std::uint64_t>(0) - 1));
  EXPECT_TRUE(forever.applies(0, 12345));  // kAllIndices wildcard
}

TEST(FaultPlan, ComponentSlicingIsExact) {
  FaultPlan plan(7);
  plan.schedule({.kind = FaultKind::kMuxStuckAt, .component = "serializer"})
      .schedule({.kind = FaultKind::kDelayDrift,
                 .component = "strobe",
                 .severity = 0.5})
      .schedule({.kind = FaultKind::kDelayDrift,
                 .component = "strobe",
                 .severity = 0.8});
  EXPECT_EQ(plan.size(), 3u);

  const auto strobe = plan.component("strobe");
  EXPECT_TRUE(strobe.any());
  EXPECT_TRUE(strobe.any(FaultKind::kDelayDrift));
  EXPECT_FALSE(strobe.any(FaultKind::kMuxStuckAt));
  EXPECT_EQ(strobe.specs().size(), 2u);
  // Largest severity among active matching specs.
  EXPECT_DOUBLE_EQ(strobe.severity(FaultKind::kDelayDrift, 0), 0.8);

  // Exact-name slicing: no prefix aliasing, unknown names are healthy.
  EXPECT_FALSE(plan.component("strobe2").any());
  EXPECT_FALSE(plan.component("stro").any());
  EXPECT_FALSE(FaultPlan{}.component("serializer").any());
}

TEST(FaultPlan, ComponentRngDependsOnlyOnSeedNameAndSalt) {
  FaultPlan plan_a(99);
  plan_a.schedule({.kind = FaultKind::kNodeFailure, .component = "fabric"});
  FaultPlan plan_b(99);
  plan_b.schedule({.kind = FaultKind::kNodeFailure, .component = "fabric"})
      .schedule({.kind = FaultKind::kLossOfSignal, .component = "optics"});

  // The "fabric" stream ignores scheduling order and unrelated specs.
  Rng a = plan_a.component("fabric").rng(42);
  Rng b = plan_b.component("fabric").rng(42);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  // Different salts and different component names give different streams.
  EXPECT_NE(plan_a.component("fabric").rng(42).next(),
            plan_a.component("fabric").rng(43).next());
  FaultPlan plan_c(99);
  plan_c.schedule({.kind = FaultKind::kNodeFailure, .component = "optics"});
  EXPECT_NE(plan_a.component("fabric").rng(42).next(),
            plan_c.component("optics").rng(42).next());
}

TEST(FaultPlan, ScheduleValidatesSpecs) {
  FaultPlan plan;
  EXPECT_THROW(plan.schedule({.kind = FaultKind::kDeadPin, .component = ""}),
               Error);
  EXPECT_THROW(plan.schedule({.kind = FaultKind::kDelayDrift,
                              .component = "strobe",
                              .severity = 1.5}),
               Error);
}

// --------------------------------------------------- empty-plan identity --

TEST(FaultEquivalence, EmptyPlanLeavesStimulusByteIdentical) {
  // A plan object with a seed but no scheduled specs must be
  // indistinguishable from no plan at all, down to the last double.
  core::ChannelConfig healthy = core::presets::optical_testbed();
  core::ChannelConfig planned = core::presets::optical_testbed();
  planned.faults = FaultPlan(123456);

  core::TestSystem sys_a(healthy, 11);
  core::TestSystem sys_b(planned, 11);
  for (auto* sys : {&sys_a, &sys_b}) {
    sys->program_prbs(7, 0xACE1);
    sys->start();
  }
  const auto stim_a = sys_a.generate(256);
  const auto stim_b = sys_b.generate(256);
  EXPECT_EQ(stim_a.bits, stim_b.bits);
  expect_streams_identical(stim_a.edges, stim_b.edges, "stimulus");
}

TEST(FaultEquivalence, EmptyPlanLeavesDelayLineByteIdentical) {
  pecl::ProgrammableDelay::Config config;
  pecl::ProgrammableDelay healthy(config, Rng(5));
  pecl::ProgrammableDelay planned(config, Rng(5));
  planned.set_faults(FaultPlan(77).component("strobe"));

  sig::EdgeStream input(false);
  for (int i = 1; i <= 16; ++i) {
    input.push(Picoseconds{static_cast<double>(i) * 400.0}, (i % 2) != 0);
  }
  healthy.set_code(50);
  planned.set_code(50);
  expect_streams_identical(healthy.apply(input), planned.apply(input),
                           "delay line");
  EXPECT_EQ(planned.fault_drift().ps(), 0.0);
}

// ------------------------------------------------------------ pecl faults --

TEST(PeclFaults, MuxStuckAtPinsTheLane) {
  auto make_tree = [](FaultPlan plan) {
    pecl::SerializerTree tree(pecl::SerializerTree::testbed_8to1(), Rng(3));
    tree.set_faults(plan.component("serializer"));
    return tree;
  };
  FaultPlan plan(1);
  plan.schedule({.kind = FaultKind::kMuxStuckAt,
                 .component = "serializer",
                 .index = 2,
                 .stuck_high = true});
  auto tree = make_tree(plan);

  const std::size_t n = 64;
  const BitVector zeros(n);  // all-zero pattern: only the stuck lane fires
  const GbitsPerSec rate{2.5};
  const auto edges = tree.serialize(zeros, rate);
  const BitVector recovered =
      edges.to_bits(n, rate.unit_interval(), tree.total_prop_delay());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_EQ(recovered[k], tree.lane_for_bit(k) == 2u) << "bit " << k;
  }
}

TEST(PeclFaults, MuxDropoutHoldsPreviousSerialValue) {
  pecl::SerializerTree tree(pecl::SerializerTree::testbed_8to1(), Rng(4));
  FaultPlan plan(2);
  plan.schedule(
      {.kind = FaultKind::kMuxDropout, .component = "serializer"});
  tree.set_faults(plan.component("serializer"));

  // Every lane dropped: the serial line never changes state again.
  const auto edges =
      tree.serialize(BitVector::alternating(64, true), GbitsPerSec{2.5});
  EXPECT_TRUE(edges.empty());
}

TEST(PeclFaults, MuxSeverityFractionsAreNested) {
  // kAllIndices + severity = stuck lane fraction; the affected lane sets
  // grow with severity, so the error count cannot shrink.
  auto errors_at = [](double severity) {
    pecl::SerializerTree tree(pecl::SerializerTree::testbed_8to1(), Rng(6));
    FaultPlan plan(3);
    plan.schedule({.kind = FaultKind::kMuxStuckAt,
                   .component = "serializer",
                   .severity = severity,
                   .stuck_high = true});
    tree.set_faults(plan.component("serializer"));
    const std::size_t n = 128;
    const BitVector bits(n);
    const GbitsPerSec rate{2.5};
    const auto recovered = tree.serialize(bits, rate).to_bits(
        n, rate.unit_interval(), tree.total_prop_delay());
    return recovered.hamming_distance(bits);
  };
  std::size_t previous = errors_at(0.0);
  EXPECT_EQ(previous, 0u);
  for (const double severity : {0.25, 0.5, 0.75, 1.0}) {
    const std::size_t now = errors_at(severity);
    EXPECT_GE(now, previous) << "severity " << severity;
    previous = now;
  }
  EXPECT_EQ(previous, 128u);  // all lanes stuck high on an all-zero word
}

TEST(PeclFaults, DelayDriftShiftsEveryEdgeWithoutExtraRngDraws) {
  pecl::ProgrammableDelay::Config config;
  pecl::ProgrammableDelay healthy(config, Rng(8));
  pecl::ProgrammableDelay drifting(config, Rng(8));
  FaultPlan plan(4);
  plan.schedule({.kind = FaultKind::kDelayDrift,
                 .component = "strobe",
                 .severity = 0.5});
  drifting.set_faults(plan.component("strobe"));
  EXPECT_DOUBLE_EQ(drifting.fault_drift().ps(),
                   0.5 * pecl::ProgrammableDelay::kDriftFullScalePs);

  sig::EdgeStream input(false);
  for (int i = 1; i <= 12; ++i) {
    input.push(Picoseconds{static_cast<double>(i) * 400.0}, (i % 2) != 0);
  }
  const auto base = healthy.apply(input);
  const auto shifted = drifting.apply(input);
  // Same RNG consumption on both paths: the faulted stream is the healthy
  // stream displaced by exactly the drift, edge for edge.
  ASSERT_EQ(base.size(), shifted.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_DOUBLE_EQ(
        shifted.transitions()[i].time.ps(),
        base.transitions()[i].time.ps() + drifting.fault_drift().ps())
        << "edge " << i;
  }
}

TEST(PeclFaults, ClockGlitchIsDeterministicAndDisplacesEdges) {
  pecl::ClockSource::Config config;
  FaultPlan plan(5);
  plan.schedule({.kind = FaultKind::kClockGlitch,
                 .component = "clock",
                 .severity = 1.0});

  pecl::ClockSource glitchy_a(config, Rng(9));
  glitchy_a.set_faults(plan.component("clock"));
  pecl::ClockSource glitchy_b(config, Rng(9));
  glitchy_b.set_faults(plan.component("clock"));
  pecl::ClockSource healthy(config, Rng(9));

  const std::size_t cycles = 512;
  const auto a = glitchy_a.generate(cycles);
  expect_streams_identical(a, glitchy_b.generate(cycles), "glitchy clock");

  // Same construction seed: the only differences come from the glitches.
  const auto clean = healthy.generate(cycles);
  ASSERT_EQ(a.size(), clean.size());
  std::size_t displaced = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.transitions()[i].time.ps() != clean.transitions()[i].time.ps()) {
      ++displaced;
    }
  }
  EXPECT_GT(displaced, 0u);
  EXPECT_LT(displaced, a.size() / 2);  // sporadic, not wholesale
  EXPECT_TRUE(a.well_formed());
}

// ---------------------------------------------------------- fabric faults --

TEST(FabricFaults, InjectionAtFailedEntryNodeIsRejected) {
  const auto geometry = vortex::Geometry::for_heights(16, 4);
  vortex::DataVortex fabric(geometry);
  FaultPlan plan(6);
  // Entry nodes live on the outer cylinder at the (fixed) injection angle.
  plan.schedule({.kind = FaultKind::kNodeFailure,
                 .component = "fabric",
                 .index = geometry.flat_index({0, 0, 3})});
  fabric.set_faults(plan.component("fabric"));

  EXPECT_FALSE(fabric.can_inject(3));
  EXPECT_TRUE(fabric.can_inject(4));
  vortex::Packet p;
  p.id = 1;
  p.destination = 9;
  EXPECT_FALSE(fabric.inject(p, 3));
  EXPECT_EQ(fabric.stats().rejected_injections, 1u);
  EXPECT_EQ(fabric.stats().injected, 0u);
  EXPECT_TRUE(fabric.inject(std::move(p), 4));
}

TEST(FabricFaults, SeveritySelectedFailureSetsAreNested) {
  const auto geometry = vortex::Geometry::for_heights(16, 4);
  auto failed_set = [&](double severity) {
    vortex::DataVortex fabric(geometry);
    FaultPlan plan(40);
    plan.schedule({.kind = FaultKind::kNodeFailure,
                   .component = "fabric",
                   .severity = severity});
    fabric.set_faults(plan.component("fabric"));
    std::vector<bool> failed(geometry.node_count());
    for (std::size_t c = 0; c < geometry.cylinder_count; ++c) {
      for (std::size_t a = 0; a < geometry.angle_count; ++a) {
        for (std::size_t h = 0; h < geometry.height_count; ++h) {
          failed[geometry.flat_index({c, a, h})] =
              fabric.node_failed({c, a, h});
        }
      }
    }
    return failed;
  };
  const auto at_02 = failed_set(0.2);
  const auto at_05 = failed_set(0.5);
  std::size_t n_02 = 0;
  std::size_t n_05 = 0;
  for (std::size_t i = 0; i < at_02.size(); ++i) {
    n_02 += at_02[i] ? 1 : 0;
    n_05 += at_05[i] ? 1 : 0;
    // Every node failed at 0.2 is also failed at 0.5 (same uniform draw).
    EXPECT_LE(at_02[i], at_05[i]) << "node " << i;
  }
  EXPECT_GT(n_02, 0u);
  EXPECT_GT(n_05, n_02);
  EXPECT_LT(n_05, at_05.size());
}

TEST(FabricFaults, ReroutesAroundFailuresAndAccountsEveryPacket) {
  vortex::DataVortex fabric(vortex::Geometry::for_heights(16, 4));
  FaultPlan plan(41);
  plan.schedule({.kind = FaultKind::kNodeFailure,
                 .component = "fabric",
                 .severity = 0.25});
  fabric.set_faults(plan.component("fabric"));

  Rng rng(42);
  std::uint64_t attempts = 0;
  std::vector<vortex::Delivery> deliveries;
  for (int slot = 0; slot < 200; ++slot) {
    for (std::size_t port = 0; port < 16; ++port) {
      if (!rng.chance(0.5)) {
        continue;
      }
      vortex::Packet p;
      p.id = attempts + 1;
      p.destination = static_cast<std::uint32_t>(rng.below(16));
      ++attempts;
      (void)fabric.inject(std::move(p), port);
    }
    const auto out = fabric.step();
    deliveries.insert(deliveries.end(), out.begin(), out.end());
  }
  fabric.drain(deliveries, 500);

  const auto& stats = fabric.stats();
  // Full conservation: offered = accepted + rejected; accepted packets end
  // delivered, dropped, or still inside.
  EXPECT_EQ(attempts, stats.injected + stats.rejected_injections);
  EXPECT_EQ(stats.injected,
            stats.delivered + stats.dropped + fabric.occupancy());
  EXPECT_EQ(stats.delivered, deliveries.size());
  // A quarter of the fabric is dead, yet traffic still flows.
  EXPECT_GT(stats.delivered, 0u);
  EXPECT_GT(stats.rejected_injections, 0u);
}

// --------------------------------------------------------- testbed faults --

TEST(TestbedFaults, ScheduledLosDarkensOneChannelGracefully) {
  testbed::OpticalTestbed::Config config;
  FaultPlan plan(50);
  plan.schedule({.kind = FaultKind::kLossOfSignal,
                 .component = "optics",
                 .index = 2});
  config.faults = plan;
  testbed::OpticalTestbed tb(config, 51);
  Rng rng(52);

  const auto result = tb.send_one(test_packet(rng));
  // One dark payload channel: its bits are garbage, the rest of the
  // transfer completes (the clock channel still carries strobes).
  EXPECT_EQ(result.los_channels, 1u);
  EXPECT_TRUE(result.captured);
  EXPECT_GT(result.payload_bit_errors, 0u);
  EXPECT_LE(result.payload_bit_errors, testbed::SlotFormat{}.data_bits);
}

TEST(TestbedFaults, LosWindowCoversExactlyItsTicks) {
  testbed::OpticalTestbed::Config config;
  FaultPlan plan(53);
  plan.schedule({.kind = FaultKind::kLossOfSignal,
                 .component = "optics",
                 .index = 0,
                 .start = 1,
                 .duration = 1});
  config.faults = plan;
  testbed::OpticalTestbed tb(config, 54);
  Rng rng(55);

  EXPECT_EQ(tb.send_one(test_packet(rng)).los_channels, 0u);  // tick 0
  EXPECT_EQ(tb.send_one(test_packet(rng)).los_channels, 1u);  // tick 1
  EXPECT_EQ(tb.send_one(test_packet(rng)).los_channels, 0u);  // tick 2
}

TEST(TestbedFaults, LosOnClockChannelMeansNoCapture) {
  testbed::OpticalTestbed::Config config;
  FaultPlan plan(56);
  plan.schedule({.kind = FaultKind::kLossOfSignal,
                 .component = "optics",
                 .index = testbed::kClockChannel});
  config.faults = plan;
  testbed::OpticalTestbed tb(config, 57);
  Rng rng(58);
  const auto result = tb.send_one(test_packet(rng));
  EXPECT_EQ(result.los_channels, 1u);
  EXPECT_FALSE(result.captured);
}

// ------------------------------------------------------------ calibration --

TEST(CalibrationRecovery, RetriesWithDeeperAveragingThenReportsFailure) {
  testbed::OpticalTransmitter::Config config;
  config.channel = core::presets::optical_testbed();
  testbed::OpticalTransmitter tx(config, 60);

  testbed::CalibrationOptions options;
  options.averaging_slots = 2;
  options.max_attempts = 3;
  options.residual_bound = Picoseconds{0.0};  // unreachable on purpose
  const auto outcome = testbed::calibrate_with_recovery(tx, options);
  EXPECT_FALSE(outcome.converged);
  EXPECT_FALSE(outcome.healthy());
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_EQ(outcome.averaging_slots_used, 8u);  // 2 -> 4 -> 8
  EXPECT_TRUE(outcome.dead_channels.empty());
}

TEST(CalibrationRecovery, ConvergesWithDefaultBound) {
  testbed::OpticalTransmitter::Config config;
  config.channel = core::presets::optical_testbed();
  testbed::OpticalTransmitter tx(config, 61);
  const auto outcome = testbed::calibrate_with_recovery(tx);
  EXPECT_TRUE(outcome.converged);
  EXPECT_TRUE(outcome.healthy());
  EXPECT_LE(outcome.report.worst_residual().ps(), 25.0);
}

TEST(CalibrationRecovery, MasksDeadDataChannelAndKeepsGoing) {
  testbed::OpticalTransmitter::Config config;
  config.channel = core::presets::optical_testbed();
  // Channel 1's serializer drops every lane: no edges, ever.
  FaultPlan plan(62);
  plan.schedule(
      {.kind = FaultKind::kMuxDropout, .component = "tx.ch1.serializer"});
  config.channel.faults = plan;
  testbed::OpticalTransmitter tx(config, 63);

  const auto outcome = testbed::calibrate_with_recovery(tx);
  ASSERT_EQ(outcome.dead_channels.size(), 1u);
  EXPECT_EQ(outcome.dead_channels[0], 1u);
  // The alive channels still meet the bound; healthy() reports the mask.
  EXPECT_TRUE(outcome.converged);
  EXPECT_FALSE(outcome.healthy());
}

TEST(CalibrationRecovery, DeadClockChannelAbortsEarly) {
  testbed::OpticalTransmitter::Config config;
  config.channel = core::presets::optical_testbed();
  FaultPlan plan(64);
  plan.schedule({.kind = FaultKind::kMuxDropout,
                 .component = "tx.ch4.serializer"});  // the clock channel
  config.channel.faults = plan;
  testbed::OpticalTransmitter tx(config, 65);

  const auto outcome = testbed::calibrate_with_recovery(tx);
  EXPECT_FALSE(outcome.converged);
  ASSERT_EQ(outcome.dead_channels.size(), 1u);
  EXPECT_EQ(outcome.dead_channels[0], testbed::kClockChannel);
}

// ------------------------------------------------------------ tester array --

TEST(ArrayFaults, DeadPinMasksItsSiteAcrossEveryTouchdown) {
  minitester::TesterArray::Config config;
  config.testers = 4;
  config.defect_rate = 0.0;
  config.bist_bits = 256;
  FaultPlan plan(70);
  plan.schedule(
      {.kind = FaultKind::kDeadPin, .component = "array", .index = 3});
  config.faults = plan;
  minitester::TesterArray array(config, 71);

  const auto result = array.probe_wafer(16);
  // Site 3 is dead in all four touchdowns; the other 12 dies still test.
  EXPECT_EQ(result.masked, 4u);
  EXPECT_EQ(result.fails, 0u);
  EXPECT_EQ(result.overkills, 0u);
  EXPECT_EQ(result.dies, 16u);
}

TEST(ArrayFaults, ProbeContactLossMasksOneTouchdownOnly) {
  minitester::TesterArray::Config config;
  config.testers = 4;
  config.defect_rate = 0.0;
  config.bist_bits = 256;
  FaultPlan plan(72);
  plan.schedule({.kind = FaultKind::kProbeContactLoss,
                 .component = "array",
                 .start = 1,
                 .duration = 1});  // all sites, touchdown 1 only
  config.faults = plan;
  minitester::TesterArray array(config, 73);

  const auto result = array.probe_wafer(16);
  EXPECT_EQ(result.masked, 4u);  // dies 4..7
  EXPECT_EQ(result.fails, 0u);
}

TEST(ArrayFaults, UnmaskedDiesMatchTheHealthyRun) {
  minitester::TesterArray::Config config;
  config.testers = 4;
  config.defect_rate = 0.3;
  config.bist_bits = 256;
  minitester::TesterArray healthy(config, 74);
  const auto base = healthy.probe_wafer(12);

  FaultPlan plan(75);
  plan.schedule(
      {.kind = FaultKind::kDeadPin, .component = "array", .index = 2});
  config.faults = plan;
  minitester::TesterArray faulted(config, 74);
  const auto masked = faulted.probe_wafer(12);

  // Masking skips dies without disturbing the others' Rng streams, so the
  // faulted run can only lose outcomes, never change them.
  EXPECT_EQ(masked.masked, 3u);
  EXPECT_LE(masked.fails, base.fails);
  EXPECT_LE(masked.escapes, base.escapes);
  EXPECT_LE(masked.overkills, base.overkills);
}

// --------------------------------------------------------------- self-test --

TEST(SelfTest, HealthySystemReportsAllOk) {
  core::TestSystem sys(core::presets::optical_testbed(), 80);
  const auto report = sys.self_test();
  EXPECT_TRUE(report.all_ok()) << report.to_string();
  EXPECT_EQ(report.worst(), HealthStatus::kOk);
  for (const char* component :
       {"usb", "dlc", "clock", "serializer", "buffer", "hookup"}) {
    ASSERT_NE(report.find(component), nullptr) << component;
    EXPECT_EQ(report.find(component)->status, HealthStatus::kOk) << component;
  }
}

TEST(SelfTest, FlagsAFaultedSerializer) {
  core::ChannelConfig config = core::presets::optical_testbed();
  FaultPlan plan(81);
  plan.schedule({.kind = FaultKind::kMuxStuckAt,
                 .component = "serializer",
                 .stuck_high = true});
  config.faults = plan;
  core::TestSystem sys(config, 82);

  const auto report = sys.self_test();
  EXPECT_FALSE(report.all_ok());
  ASSERT_NE(report.find("serializer"), nullptr);
  EXPECT_EQ(report.find("serializer")->status, HealthStatus::kFailed)
      << report.to_string();
  // The rest of the chain still checks out.
  EXPECT_EQ(report.find("usb")->status, HealthStatus::kOk);
  EXPECT_EQ(report.find("dlc")->status, HealthStatus::kOk);
}

TEST(SelfTest, HealthReportAggregates) {
  fault::HealthReport report;
  report.add("clock", HealthStatus::kOk);
  report.add("serializer", HealthStatus::kDegraded, "2 slow lanes");
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.worst(), HealthStatus::kDegraded);

  fault::HealthReport sub;
  sub.add("detector", HealthStatus::kFailed);
  report.merge(sub, "rx.");
  EXPECT_EQ(report.worst(), HealthStatus::kFailed);
  ASSERT_NE(report.find("rx.detector"), nullptr);
  EXPECT_NE(report.to_string().find("rx.detector"), std::string::npos);
}

TEST(SelfTest, EmptyHealthReportIsVacuouslyOk) {
  const fault::HealthReport report;
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.worst(), HealthStatus::kOk);
  EXPECT_EQ(report.find("anything"), nullptr);
  EXPECT_TRUE(report.components().empty());
  // Merging an empty report into an empty report stays empty.
  fault::HealthReport into;
  into.merge(report, "sub.");
  EXPECT_TRUE(into.components().empty());
}

TEST(SelfTest, MergedPrefixReportsKeepOrderAndDistinguishNames) {
  // Two subsystems may use the same component names; prefixes must keep
  // their entries distinct and ordered (first-added first).
  fault::HealthReport tx;
  tx.add("serializer", HealthStatus::kOk);
  fault::HealthReport rx;
  rx.add("serializer", HealthStatus::kDegraded, "slow lane");

  fault::HealthReport report;
  report.merge(tx, "tx.");
  report.merge(rx, "rx.");
  ASSERT_EQ(report.components().size(), 2u);
  EXPECT_EQ(report.components()[0].component, "tx.serializer");
  EXPECT_EQ(report.components()[1].component, "rx.serializer");
  EXPECT_EQ(report.find("tx.serializer")->status, HealthStatus::kOk);
  EXPECT_EQ(report.find("rx.serializer")->status, HealthStatus::kDegraded);
  EXPECT_EQ(report.find("serializer"), nullptr)
      << "unprefixed name must not resolve after a prefixed merge";
  // Empty prefix merges keep the original names.
  fault::HealthReport flat;
  flat.merge(rx);
  EXPECT_NE(flat.find("serializer"), nullptr);
}

TEST(SelfTest, LinkDegradedModeRoundTripsThroughSystemReport) {
  // A degraded link (rate fallback engaged) must surface in the same
  // report a controlling PC reads from TestSystem::self_test().
  FaultPlan plan(4242);
  FaultSpec corrupt;
  corrupt.kind = FaultKind::kFrameCorruption;
  corrupt.component = "link.fwd";
  corrupt.severity = 0.5;
  plan.schedule(corrupt);

  link::ArqConfig arq;
  arq.max_retries = 2;
  link::LinkChannel::Config config;
  config.arq = arq;
  config.degrade_window = 4;
  config.degrade_fer_threshold = 0.25;
  link::LinkChannel channel(
      config, link::make_fault_transport(plan, "link.fwd"),
      link::make_fault_transport(plan, "link.rev"));

  Rng rng(11);
  std::vector<BitVector> payloads;
  for (std::size_t i = 0; i < 16; ++i) {
    payloads.push_back(BitVector::random(channel.codec().user_bits(), rng));
  }
  (void)channel.transfer(payloads);
  ASSERT_GT(channel.rate_steps(), 0u) << "fallback must have engaged";

  core::TestSystem sys(core::presets::optical_testbed(), 80);
  fault::HealthReport report = sys.self_test();
  report.merge(channel.health(), "link.");

  EXPECT_EQ(report.worst(), HealthStatus::kDegraded) << report.to_string();
  ASSERT_NE(report.find("link.rate"), nullptr);
  EXPECT_EQ(report.find("link.rate")->status, HealthStatus::kDegraded);
  ASSERT_NE(report.find("link.arq"), nullptr);
  EXPECT_EQ(report.find("link.arq")->status, HealthStatus::kDegraded);
  // The signal-chain entries are untouched by the merge.
  EXPECT_EQ(report.find("serializer")->status, HealthStatus::kOk);
}

// ------------------------------------------------------------ fault sweep --

TEST(FaultSweep, BerDegradesMonotonicallyWithStuckLaneFraction) {
  // The acceptance sweep: walk the stuck-lane fraction of the mini-tester
  // serializer from healthy to fully stuck and require the measured BER
  // to be nondecreasing (the severity-selected lane sets are nested).
  const auto run = [](double severity) {
    minitester::MiniTester::Config config;
    FaultPlan plan(90);
    plan.schedule({.kind = FaultKind::kMuxStuckAt,
                   .component = "serializer",
                   .severity = severity,
                   .stuck_high = true});
    config.channel.faults = plan;
    minitester::MiniTester tester(config, 91);
    tester.program_prbs(7, 0xACE1F00D);
    tester.start();
    return tester.run_loopback(512);
  };
  const std::vector<double> severities{0.0, 0.25, 0.5, 0.75, 1.0};
  const auto sweep = ana::fault_sweep(severities, run);

  ASSERT_EQ(sweep.size(), severities.size());
  EXPECT_TRUE(ana::ber_monotonic_nondecreasing(sweep, 0.02));
  EXPECT_DOUBLE_EQ(sweep.front().ber, 0.0);   // healthy floor
  EXPECT_GT(sweep.back().ber, 0.3);           // fully stuck: ~half wrong
  for (const auto& point : sweep) {
    EXPECT_GT(point.bits, 0u);
  }
}

TEST(FaultSweep, MonotoneCheckerCatchesRegressions) {
  std::vector<ana::FaultSweepPoint> good(3);
  good[0].ber = 0.0;
  good[1].ber = 0.1;
  good[2].ber = 0.1;
  EXPECT_TRUE(ana::ber_monotonic_nondecreasing(good));
  std::vector<ana::FaultSweepPoint> bad = good;
  bad[2].ber = 0.05;
  EXPECT_FALSE(ana::ber_monotonic_nondecreasing(bad));
  EXPECT_TRUE(ana::ber_monotonic_nondecreasing(bad, 0.06));  // within slack
}

// ------------------------------------------------- thread reproducibility --

TEST(FaultDeterminism, FaultedTestbedRunsIdenticalAtEveryThreadCount) {
  ThreadOverrideGuard guard;
  testbed::OpticalTestbed::Config config;
  FaultPlan plan(100);
  plan.schedule({.kind = FaultKind::kNodeFailure,
                 .component = "fabric",
                 .severity = 0.2})
      .schedule({.kind = FaultKind::kLossOfSignal,
                 .component = "optics",
                 .index = 1})
      .schedule({.kind = FaultKind::kMuxStuckAt,
                 .component = "serializer",
                 .severity = 0.25,
                 .stuck_high = true});
  config.faults = plan;
  config.channel.faults = plan;

  auto run_at = [&](std::size_t threads) {
    util::set_thread_override(threads);
    testbed::OpticalTestbed tb(config, 101);
    return tb.run(0.4, 24);
  };
  const auto reference = run_at(0);
  EXPECT_GT(reference.fabric.delivered, 0u);
  for (const std::size_t threads : {1, 2, 8}) {
    const auto stats = run_at(threads);
    EXPECT_EQ(stats.fabric.injected, reference.fabric.injected) << threads;
    EXPECT_EQ(stats.fabric.delivered, reference.fabric.delivered) << threads;
    EXPECT_EQ(stats.fabric.dropped, reference.fabric.dropped) << threads;
    EXPECT_EQ(stats.fabric.rejected_injections,
              reference.fabric.rejected_injections)
        << threads;
    EXPECT_EQ(stats.fabric.deflections, reference.fabric.deflections)
        << threads;
    EXPECT_EQ(stats.payload_bit_errors, reference.payload_bit_errors)
        << threads;
    EXPECT_EQ(stats.los_events, reference.los_events) << threads;
    EXPECT_EQ(stats.header_errors, reference.header_errors) << threads;
    EXPECT_EQ(stats.signal_checks, reference.signal_checks) << threads;
  }
}

TEST(FaultDeterminism, MaskedWaferProbeIdenticalAtEveryThreadCount) {
  ThreadOverrideGuard guard;
  minitester::TesterArray::Config config;
  config.testers = 4;
  config.defect_rate = 0.25;
  config.bist_bits = 256;
  FaultPlan plan(102);
  plan.schedule(
      {.kind = FaultKind::kDeadPin, .component = "array", .index = 1});
  config.faults = plan;

  auto run_at = [&](std::size_t threads) {
    util::set_thread_override(threads);
    minitester::TesterArray array(config, 103);
    return array.probe_wafer(12);
  };
  const auto reference = run_at(0);
  EXPECT_EQ(reference.masked, 3u);
  for (const std::size_t threads : {1, 2, 8}) {
    const auto result = run_at(threads);
    EXPECT_EQ(result.masked, reference.masked) << threads;
    EXPECT_EQ(result.fails, reference.fails) << threads;
    EXPECT_EQ(result.escapes, reference.escapes) << threads;
    EXPECT_EQ(result.overkills, reference.overkills) << threads;
  }
}

}  // namespace
}  // namespace mgt
