// Tests for the extension modules: SRAM pattern store, microcoded test
// sequencer, dual-Dirac BER extrapolation, traffic patterns, wafer maps,
// and transmitter deskew calibration.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/berextrap.hpp"
#include "digital/sequencer.hpp"
#include "digital/sram.hpp"
#include "minitester/minitester.hpp"
#include "minitester/wafermap.hpp"
#include "testbed/calibration.hpp"
#include "testbed/receiver.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "vortex/traffic.hpp"

namespace mgt {
namespace {

// ------------------------------------------------------------------ sram --

TEST(SyncSram, ReadLatencyIsHonored) {
  dig::SyncSram sram(dig::SyncSram::Config{.depth_words = 16,
                                           .read_latency = 3});
  sram.write_word(2, 0xDEADBEEF);
  // Issue the read manually and count cycles to data.
  auto r0 = sram.clock(dig::SyncSram::Command{.write = false, .address = 2});
  EXPECT_FALSE(r0.has_value());
  auto r1 = sram.clock(std::nullopt);
  EXPECT_FALSE(r1.has_value());
  auto r2 = sram.clock(std::nullopt);
  EXPECT_FALSE(r2.has_value());
  auto r3 = sram.clock(std::nullopt);
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(*r3, 0xDEADBEEFu);
}

TEST(SyncSram, BlockingHelpersRoundTrip) {
  dig::SyncSram sram;
  for (std::uint32_t a = 0; a < 64; ++a) {
    sram.write_word(a, a * 0x01010101u);
  }
  for (std::uint32_t a = 0; a < 64; ++a) {
    EXPECT_EQ(sram.read_word(a), a * 0x01010101u);
  }
}

TEST(SyncSram, OutOfRangeThrows) {
  dig::SyncSram sram(dig::SyncSram::Config{.depth_words = 4});
  EXPECT_THROW(sram.write_word(4, 0), Error);
}

TEST(SramPatternStore, StoreLoadRoundTrip) {
  dig::SyncSram sram;
  dig::SramPatternStore store(sram);
  Rng rng(1);
  const auto pattern = BitVector::random(10000, rng);
  store.store(100, pattern);
  std::uint64_t cycles = 0;
  const auto back = store.load(100, 10000, &cycles);
  EXPECT_EQ(back, pattern);
  // Pipelined streaming: N words in ~N + latency cycles, not N * latency.
  const std::uint64_t words = (10000 + 31) / 32;
  EXPECT_LE(cycles, words + 8);
}

TEST(SramPatternStore, CapacityEnforced) {
  dig::SyncSram sram(dig::SyncSram::Config{.depth_words = 4});
  dig::SramPatternStore store(sram);
  EXPECT_EQ(store.capacity_bits(), 128u);
  EXPECT_THROW(store.store(0, BitVector(129, true)), Error);
  EXPECT_THROW(store.load(3, 64), Error);
}

// -------------------------------------------------------------- sequencer --

TEST(Sequencer, EmitLiteral) {
  dig::TestSequencer sequencer({dig::seq::emit_literal(0b1011, 4),
                                dig::seq::halt()});
  EXPECT_EQ(sequencer.run().to_string(), "1101");  // LSB first
}

TEST(Sequencer, NestedLoopsMultiply) {
  // for 3: { for 2: emit "10" } -> "10" * 6
  dig::TestSequencer sequencer({
      dig::seq::loop_begin(3),
      dig::seq::loop_begin(2),
      dig::seq::emit_literal(0b01, 2),
      dig::seq::loop_end(),
      dig::seq::loop_end(),
      dig::seq::halt(),
  });
  EXPECT_EQ(sequencer.run().to_string(), "101010101010");
}

TEST(Sequencer, PatternBankReference) {
  std::map<std::uint32_t, BitVector> banks;
  banks[7] = BitVector::from_string("11001");
  dig::TestSequencer sequencer({dig::seq::emit_pattern(7, 2),
                                dig::seq::halt()},
                               banks);
  EXPECT_EQ(sequencer.run().to_string(), "1100111001");
}

TEST(Sequencer, CallAndReturn) {
  // main: call 3; emit "0"; halt.   sub@3: emit "11"; ret.
  dig::TestSequencer sequencer({
      dig::seq::call(3),
      dig::seq::emit_literal(0, 1),
      dig::seq::halt(),
      dig::seq::emit_literal(0b11, 2),
      dig::seq::ret(),
  });
  EXPECT_EQ(sequencer.run().to_string(), "110");
}

TEST(Sequencer, EquivalentToAlgorithmicPattern) {
  // A loop emitting 4 ones then 4 zeros == patterns::square.
  dig::TestSequencer sequencer({
      dig::seq::loop_begin(10),
      dig::seq::emit_literal(0x0, 4),
      dig::seq::emit_literal(0xF, 4),
      dig::seq::loop_end(),
      dig::seq::halt(),
  });
  EXPECT_EQ(sequencer.run(), dig::patterns::square(80, 4));
}

TEST(Sequencer, MalformedProgramsThrow) {
  EXPECT_THROW(dig::TestSequencer({dig::seq::loop_end(), dig::seq::halt()})
                   .run(),
               Error);
  EXPECT_THROW(dig::TestSequencer({dig::seq::ret(), dig::seq::halt()}).run(),
               Error);
  EXPECT_THROW(dig::TestSequencer({dig::seq::emit_literal(1, 1)}).run(),
               Error);  // runs off the end
  EXPECT_THROW(dig::TestSequencer({dig::seq::loop_begin(2),
                                   dig::seq::halt()})
                   .run(),
               Error);  // halt inside open loop
  EXPECT_THROW(dig::TestSequencer({dig::seq::emit_pattern(9, 1),
                                   dig::seq::halt()})
                   .run(),
               Error);  // missing bank
}

TEST(Sequencer, WatchdogCatchesRunaway) {
  dig::SequencerLimits limits;
  limits.max_steps = 100;
  // Infinite subroutine recursion is cut by the call-stack bound; a giant
  // loop is cut by the watchdog.
  dig::TestSequencer sequencer({
      dig::seq::loop_begin(1u << 30),
      dig::seq::emit_literal(1, 1),
      dig::seq::loop_end(),
      dig::seq::halt(),
  },
                               {}, limits);
  EXPECT_THROW(sequencer.run(), Error);
}

TEST(Sequencer, LoopStackOverflowDetected) {
  std::vector<dig::SeqInstruction> program;
  for (int i = 0; i < 10; ++i) {
    program.push_back(dig::seq::loop_begin(1));
  }
  program.push_back(dig::seq::halt());
  EXPECT_THROW(dig::TestSequencer(program).run(), Error);
}

// ------------------------------------------------------------- berextrap --

TEST(BerExtrap, InverseNormalCdfAccuracy) {
  EXPECT_NEAR(ana::inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(ana::inverse_normal_cdf(0.8413447460685429), 1.0, 1e-6);
  EXPECT_NEAR(ana::inverse_normal_cdf(0.9986501019683699), 3.0, 1e-6);
  EXPECT_NEAR(ana::inverse_normal_cdf(1.0 - 0.9986501019683699), -3.0, 1e-6);
  EXPECT_THROW(ana::inverse_normal_cdf(0.0), Error);
  EXPECT_THROW(ana::inverse_normal_cdf(1.0), Error);
}

TEST(BerExtrap, QOfBer) {
  EXPECT_NEAR(ana::q_of_ber(0.5), 0.0, 1e-9);
  // BER 1e-12 corresponds to Q ~= 7.03.
  EXPECT_NEAR(ana::q_of_ber(1e-12), 7.034, 0.01);
}

TEST(BerExtrap, FitRecoversSyntheticDualDirac) {
  // Construct an ideal bathtub: edges at mu_l=20 ps and mu_r=180 ps with
  // sigma = 4 ps on both sides.
  const double sigma = 4.0;
  const double mu_l = 20.0;
  const double mu_r = 180.0;
  std::vector<ana::BathtubPoint> scan;
  for (double x = 0.0; x <= 200.0; x += 5.0) {
    // BER on each side is the Gaussian tail beyond the strobe.
    const double ql = (x - mu_l) / sigma;
    const double qr = (mu_r - x) / sigma;
    const double ber_l = 0.5 * std::erfc(ql / std::numbers::sqrt2);
    const double ber_r = 0.5 * std::erfc(qr / std::numbers::sqrt2);
    ana::BathtubPoint p;
    p.strobe_offset = Picoseconds{x};
    p.ber = std::min(0.5, ber_l + ber_r);
    scan.push_back(p);
  }
  const auto fit = ana::fit_bathtub(scan, 1e-9);
  ASSERT_TRUE(fit.valid());
  EXPECT_NEAR(fit.left_sigma.ps(), sigma, 0.5);
  EXPECT_NEAR(fit.right_sigma.ps(), sigma, 0.5);
  EXPECT_NEAR(fit.left_mu.ps(), mu_l, 2.0);
  EXPECT_NEAR(fit.right_mu.ps(), mu_r, 2.0);
  // Eye at BER 1e-12: (mu_r - Q*sigma) - (mu_l + Q*sigma).
  const double expected = (mu_r - mu_l) - 2.0 * 7.034 * sigma;
  EXPECT_NEAR(fit.eye_at_ber(1e-12).ps(), expected, 3.0);
}

TEST(BerExtrap, FitOnRealMinitesterBathtub) {
  minitester::MiniTester tester(minitester::MiniTester::Config{}, 5);
  tester.program_prbs(7, 0xACE1);
  tester.start();
  const auto scan = tester.bathtub(4096, 1);
  const auto fit = ana::fit_bathtub(scan, 1e-5);
  ASSERT_TRUE(fit.valid());
  // Extrapolated deep-BER eye is narrower than the raw floor but positive.
  const double floor_ps = ana::bathtub_opening(scan, 1e-6).ps();
  const double deep = fit.eye_at_ber(1e-12).ps();
  EXPECT_GT(deep, 0.0);
  EXPECT_LT(deep, floor_ps + 10.0);
}

TEST(BerExtrap, DegenerateScanIsInvalid) {
  EXPECT_FALSE(ana::fit_bathtub({}).valid());
  std::vector<ana::BathtubPoint> flat(10);
  for (std::size_t i = 0; i < flat.size(); ++i) {
    flat[i].strobe_offset = Picoseconds{static_cast<double>(i) * 10.0};
    flat[i].ber = 0.0;
  }
  EXPECT_FALSE(ana::fit_bathtub(flat).valid());
}

// --------------------------------------------------------------- traffic --

TEST(Traffic, DestinationsAreValidAndPatternShaped) {
  Rng rng(1);
  for (std::size_t src = 0; src < 16; ++src) {
    EXPECT_EQ(vortex::traffic_destination(vortex::TrafficPattern::Neighbor,
                                          src, 16, rng),
              (src + 1) % 16);
    EXPECT_EQ(vortex::traffic_destination(vortex::TrafficPattern::Tornado,
                                          src, 16, rng),
              (src + 7) % 16);
    const auto uniform = vortex::traffic_destination(
        vortex::TrafficPattern::Uniform, src, 16, rng);
    EXPECT_LT(uniform, 16u);
  }
  // Bit reverse of 0b0001 in 4 bits is 0b1000.
  EXPECT_EQ(vortex::traffic_destination(vortex::TrafficPattern::BitReverse,
                                        1, 16, rng),
            8u);
}

TEST(Traffic, HotspotSkewsDestinations) {
  Rng rng(2);
  std::size_t hits = 0;
  for (int i = 0; i < 1000; ++i) {
    if (vortex::traffic_destination(vortex::TrafficPattern::Hotspot, 3, 16,
                                    rng, 0.5, 0) == 0) {
      ++hits;
    }
  }
  // 50 % direct + 1/16 of the uniform remainder ~ 53 %.
  EXPECT_GT(hits, 400u);
  EXPECT_LT(hits, 650u);
}

TEST(Traffic, UniformIsFairHotspotIsNot) {
  const auto geometry = vortex::Geometry::for_heights(16, 4);
  const auto uniform = vortex::run_traffic(
      geometry, vortex::TrafficPattern::Uniform, 0.4, 500, 42);
  const auto hotspot = vortex::run_traffic(
      geometry, vortex::TrafficPattern::Hotspot, 0.4, 500, 42, 0.7);
  EXPECT_GT(uniform.fairness, 0.95);
  EXPECT_LT(hotspot.fairness, 0.6);
  // The hot output port saturates: delivered throughput drops and packets
  // spend laps waiting (virtual buffering).
  EXPECT_LT(hotspot.throughput_per_port, uniform.throughput_per_port);
  EXPECT_GT(hotspot.mean_latency_slots, uniform.mean_latency_slots);
}

TEST(Traffic, PermutationPatternsDeliverEverything) {
  const auto geometry = vortex::Geometry::for_heights(16, 4);
  for (auto pattern : {vortex::TrafficPattern::Neighbor,
                       vortex::TrafficPattern::BitReverse,
                       vortex::TrafficPattern::Tornado}) {
    const auto result = vortex::run_traffic(geometry, pattern, 0.5, 300, 7);
    // Permutations have no output contention: near-offered throughput and
    // high fairness.
    EXPECT_NEAR(result.throughput_per_port, 0.5, 0.05);
    EXPECT_GT(result.fairness, 0.95);
    EXPECT_GE(result.p99_latency_slots, result.mean_latency_slots);
  }
}

// -------------------------------------------------------------- wafermap --

TEST(WaferMap, GeometryIsCircular) {
  minitester::WaferMap map(minitester::WaferMap::Config{}, Rng(1));
  // Corners are outside, center is inside.
  EXPECT_FALSE(map.in_wafer(0, 0));
  EXPECT_FALSE(map.in_wafer(19, 19));
  EXPECT_TRUE(map.in_wafer(10, 10));
  // Die count is close to pi*r^2.
  const double expected = 3.14159 * 10.0 * 10.0;
  EXPECT_NEAR(static_cast<double>(map.die_count()), expected,
              expected * 0.1);
}

TEST(WaferMap, ClustersRaiseLocalDefectDensity) {
  minitester::WaferMap::Config config;
  config.background_defect_rate = 0.0;
  config.cluster_count = 1;
  config.cluster_radius_dies = 3.0;
  config.cluster_defect_rate = 1.0;
  minitester::WaferMap map(config, Rng(7));
  // All defects (if any landed on the wafer) are inside one disc of
  // radius 3 -> a bounding box of ~7x7 dies.
  std::size_t min_x = 99, max_x = 0, min_y = 99, max_y = 0;
  std::size_t defects = 0;
  for (std::size_t y = 0; y < 20; ++y) {
    for (std::size_t x = 0; x < 20; ++x) {
      if (map.in_wafer(x, y) &&
          map.defect_at(x, y) != minitester::Defect::None) {
        ++defects;
        min_x = std::min(min_x, x);
        max_x = std::max(max_x, x);
        min_y = std::min(min_y, y);
        max_y = std::max(max_y, y);
      }
    }
  }
  ASSERT_GT(defects, 0u);
  EXPECT_LE(max_x - min_x, 7u);
  EXPECT_LE(max_y - min_y, 7u);
}

TEST(WaferMap, ProbeFindsExactlyTheDefects) {
  minitester::WaferMap map(minitester::WaferMap::Config{}, Rng(3));
  const auto outcome = map.probe(16, [](minitester::Defect defect) {
    return defect == minitester::Defect::None;  // ideal screen
  });
  EXPECT_EQ(outcome.tested, map.die_count());
  EXPECT_EQ(outcome.fails, map.defect_count());
  EXPECT_NEAR(outcome.yield,
              1.0 - static_cast<double>(map.defect_count()) /
                        static_cast<double>(map.die_count()),
              1e-9);
  const auto art = outcome.ascii_art();
  EXPECT_NE(art.find('.'), std::string::npos);
  EXPECT_NE(art.find(' '), std::string::npos);
}

// ------------------------------------------------------------ calibration --

TEST(Calibration, ReducesChannelSkewWithinSpec) {
  testbed::OpticalTransmitter::Config config;
  config.channel = core::presets::optical_testbed();
  testbed::OpticalTransmitter tx(config, 99);
  // Start badly misaligned: stagger the channels by 0..4 ns.
  for (std::size_t ch = 0; ch < testbed::kHighSpeedChannels; ++ch) {
    tx.set_channel_delay_code(ch, ch * 100);
  }
  const auto before = testbed::measure_channel_skew(tx);
  double worst_before = 0.0;
  for (const Picoseconds s : before) {
    worst_before = std::max(worst_before, std::abs(s.ps()));
  }
  EXPECT_GT(worst_before, 900.0);  // ~1 ns of deliberate skew

  const auto report = testbed::calibrate_transmitter(tx);
  EXPECT_TRUE(report.within(Picoseconds{25.0}))
      << "worst residual " << report.worst_residual().ps() << " ps";
  EXPECT_GT(report.worst_residual().ps(), 0.0);  // real parts, real residue
}

TEST(Calibration, CalibratedBusReceivesCleanly) {
  testbed::OpticalTransmitter::Config config;
  config.channel = core::presets::optical_testbed();
  testbed::OpticalTransmitter tx(config, 55);
  for (std::size_t ch = 0; ch < testbed::kHighSpeedChannels; ++ch) {
    tx.set_channel_delay_code(ch, (ch * 37) % 80);
  }
  testbed::calibrate_transmitter(tx);

  testbed::Receiver rx(testbed::Receiver::Config{});
  Rng rng(5);
  testbed::TestbedPacket packet;
  for (auto& lane : packet.payload) {
    lane = BitVector::random(32, rng);
  }
  packet.header = 0x9;
  const auto out = tx.transmit(packet, Picoseconds{0.0});
  const auto result = rx.receive(out, Picoseconds{0.0});
  ASSERT_TRUE(result.captured);
  for (std::size_t ch = 0; ch < testbed::kDataChannels; ++ch) {
    EXPECT_EQ(result.packet.payload[ch], packet.payload[ch]);
  }
}

}  // namespace
}  // namespace mgt
