// Observability-layer suite (`ctest -L obs`).
//
// Three families:
//  - regression tests for the histogram quantile/mode fixes and the strict
//    MGT_THREADS parser (each written to fail against the pre-fix code),
//  - registry semantics: registration, reset, disabled mode, spans,
//    profile scopes, the bench JSON document,
//  - the determinism contract itself: a mixed workload (eye acquisition,
//    wafer probing, link ARQ, vortex routing) must yield byte-identical
//    snapshots at MGT_THREADS 0/1/8, and identical simulation results with
//    the obs layer enabled and disabled.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "fault/fault.hpp"
#include "link/link.hpp"
#include "minitester/array.hpp"
#include "obs/benchjson.hpp"
#include "obs/obs.hpp"
#include "signal/render_cache.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "vortex/fabric.hpp"

namespace mgt {
namespace {

/// Restores the enabled flag and clears values around every test so suites
/// can run in any order.
class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    obs::registry().set_enabled(true);
    obs::registry().reset();
  }
  void TearDown() override {
    obs::registry().set_enabled(true);
    obs::registry().reset();
  }
};

// ------------------------------------------------- quantile regressions --

TEST(HistogramQuantile, SkipsLeadingAndTrailingEmptyBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(7.2);
  h.add(7.5);
  h.add(7.8);  // all mass in bin 7 = [7, 8)
  // Pre-fix, q=0 interpolated into the empty bin 0 (0/0 division); the
  // support of the recorded samples is [7, 8).
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.5);
  EXPECT_EQ(h.mode_bin(), 7u);
}

TEST(HistogramQuantile, SkipsInteriorEmptyBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(1.5);  // bin 1
  h.add(8.5);  // bin 8; bins 2..7 empty
  // q=0.5 -> target = 1.0, satisfied exactly at the end of bin 1: the
  // pre-fix loop could report a value inside the empty gap. Both 50% marks
  // must land within populated bins.
  const double q50 = h.quantile(0.5);
  EXPECT_GE(q50, 1.0);
  EXPECT_LE(q50, 2.0);
  const double q75 = h.quantile(0.75);
  EXPECT_GE(q75, 8.0);
  EXPECT_LE(q75, 9.0);
}

TEST(HistogramQuantile, SingleSampleNeverInterpolatesOutOfSupport) {
  Histogram h(-5.0, 5.0, 20);  // width 0.5
  h.add(0.2);                  // bin 10 = [0, 0.5)
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, 0.0) << "q=" << q;
    EXPECT_LE(v, 0.5) << "q=" << q;
  }
}

TEST(HistogramQuantile, GoldenUniformRampUnchanged) {
  // The existing calibration shape: quantiles of a dense uniform ramp are
  // the identity. The empty-bin fix must not disturb the populated case.
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<double>(i) + 0.5);
  }
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(HistogramQuantile, OutOfRangeMassOnlyStillThrows) {
  Histogram h(0.0, 1.0, 4);
  h.add(-3.0);  // underflow
  h.add(7.0);   // overflow
  EXPECT_THROW((void)h.quantile(0.5), Error);
  // Pre-fix, mode_bin of an empty histogram silently reported bin 0.
  EXPECT_THROW((void)h.mode_bin(), Error);
}

// ----------------------------------------------- MGT_THREADS parsing fix --

TEST(ParseThreadCount, AcceptsPlainCounts) {
  EXPECT_EQ(util::parse_thread_count("8"), 8u);
  EXPECT_EQ(util::parse_thread_count("0"), 0u);
  EXPECT_EQ(util::parse_thread_count("+4"), 4u);
  EXPECT_EQ(util::parse_thread_count("16"), 16u);
}

TEST(ParseThreadCount, UnsetMeansZero) {
  EXPECT_EQ(util::parse_thread_count(nullptr), 0u);
  EXPECT_EQ(util::parse_thread_count(""), 0u);
}

TEST(ParseThreadCount, RejectsTrailingGarbage) {
  // Pre-fix, strtol silently truncated "8x" to 8 and " 8 " to 8.
  EXPECT_FALSE(util::parse_thread_count("8x").has_value());
  EXPECT_FALSE(util::parse_thread_count("8 ").has_value());
  EXPECT_FALSE(util::parse_thread_count("1.5").has_value());
  EXPECT_FALSE(util::parse_thread_count("x").has_value());
  EXPECT_FALSE(util::parse_thread_count("eight").has_value());
}

TEST(ParseThreadCount, RejectsNegativeAndOutOfRange) {
  EXPECT_FALSE(util::parse_thread_count("-1").has_value());
  // Pre-fix, strtol saturated this to LONG_MAX and the cast accepted it.
  EXPECT_FALSE(
      util::parse_thread_count("99999999999999999999999999").has_value());
  EXPECT_FALSE(
      util::parse_thread_count("-99999999999999999999999999").has_value());
}

TEST(ParseThreadCount, HexIsGarbageNotBase16) {
  // Base-10 parse: "0x8" stops at 'x', which is trailing garbage.
  EXPECT_FALSE(util::parse_thread_count("0x8").has_value());
}

// ------------------------------------------------------ registry basics --

TEST_F(ObsTest, CountersAccumulateAndExpose) {
  obs::add_counter("t.alpha");
  obs::add_counter("t.alpha", 4);
  obs::add_counter("t.beta", 2);
  EXPECT_EQ(obs::registry().counter("t.alpha").value(), 5u);
  EXPECT_EQ(obs::registry().counter("t.beta").value(), 2u);
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  obs::set_gauge("t.level", 1.5);
  obs::set_gauge("t.level", -2.25);
  EXPECT_DOUBLE_EQ(obs::registry().gauge("t.level").value(), -2.25);
}

TEST_F(ObsTest, HistogramRegistrationIsFirstComeFixed) {
  obs::observe("t.h", 0.0, 10.0, 10, 3.5);
  // A later caller with different bounds gets the existing histogram.
  obs::observe("t.h", -100.0, 100.0, 4, 3.5);
  const Histogram snap = obs::registry().histogram("t.h", 0.0, 10.0, 10)
                             .snapshot();
  EXPECT_DOUBLE_EQ(snap.lo(), 0.0);
  EXPECT_DOUBLE_EQ(snap.hi(), 10.0);
  EXPECT_EQ(snap.bin_count(), 10u);
  EXPECT_EQ(snap.total(), 2u);
}

TEST_F(ObsTest, ResetZeroesValuesButKeepsRegistrations) {
  obs::Counter& c = obs::registry().counter("t.keep");
  c.add(7);
  obs::registry().reset();
  // The reference stays valid and the entry is still listed.
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  const auto counters = obs::registry().counter_values();
  bool found = false;
  for (const auto& [name, v] : counters) {
    if (name == "t.keep") {
      found = true;
      EXPECT_EQ(v, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, DisabledHelpersAreNoOpsAndRegisterNothing) {
  obs::registry().set_enabled(false);
  obs::add_counter("t.ghost");
  obs::set_gauge("t.ghost.g", 1.0);
  obs::observe("t.ghost.h", 0.0, 1.0, 4, 0.5);
  obs::record_span("t.ghost.s", 0, 10);
  for (const auto& [name, v] : obs::registry().counter_values()) {
    EXPECT_NE(name, "t.ghost");
  }
  for (const auto& [name, v] : obs::registry().gauge_values()) {
    EXPECT_NE(name, "t.ghost.g");
  }
  EXPECT_TRUE(obs::registry().spans().empty());
}

TEST_F(ObsTest, SnapshotIsSortedAndVersioned) {
  obs::add_counter("t.zzz");
  obs::add_counter("t.aaa");
  const std::string snap = obs::registry().snapshot();
  EXPECT_EQ(snap.rfind("obs-snapshot v1\n", 0), 0u);
  EXPECT_LT(snap.find("counter t.aaa"), snap.find("counter t.zzz"));
}

TEST_F(ObsTest, SpansAreBoundedWithDropAccounting) {
  const std::size_t cap = obs::registry().span_capacity();
  for (std::size_t i = 0; i < cap + 3; ++i) {
    obs::record_span("t.span", i, i + 1);
  }
  EXPECT_EQ(obs::registry().spans().size(), cap);
  const std::string snap = obs::registry().snapshot();
  EXPECT_NE(snap.find("spans_dropped 3"), std::string::npos);
}

TEST_F(ObsTest, TickSpanRecordsSimTicks) {
  std::uint64_t tick = 100;
  {
    obs::TickSpan span("t.window", tick);
    tick += 42;
  }
  const auto spans = obs::registry().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "t.window");
  EXPECT_EQ(spans[0].begin, 100u);
  EXPECT_EQ(spans[0].end, 142u);
}

TEST_F(ObsTest, ProfileScopeSeparatesTicksFromWallClock) {
  std::uint64_t tick = 0;
  {
    obs::ProfileScope scope("t.scope", &tick);
    tick = 17;
  }
  const auto profiles = obs::registry().profile_values();
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].first, "t.scope");
  EXPECT_EQ(profiles[0].second.calls, 1u);
  EXPECT_EQ(profiles[0].second.ticks, 17u);
  // The deterministic snapshot must carry the tick cost but never wall_ns.
  const std::string snap = obs::registry().snapshot();
  EXPECT_NE(snap.find("profile t.scope calls=1 ticks=17"), std::string::npos);
  EXPECT_EQ(snap.find("wall"), std::string::npos);
  // Wall time lives only in the quarantined side channel.
  EXPECT_NE(obs::registry().profile_wall_ns().find("t.scope"),
            std::string::npos);
}

TEST_F(ObsTest, BridgedThreadRejectionsAppearInSnapshot) {
  const std::string snap = obs::registry().snapshot();
  EXPECT_NE(snap.find("counter mgt.threads.rejected " +
                      std::to_string(util::thread_env_rejections())),
            std::string::npos);
}

// ---------------------------------------------------- bench JSON export --

TEST_F(ObsTest, BenchJsonCarriesSchemaTableAndMetrics) {
  obs::add_counter("t.bench.counter", 3);
  ReportTable table("Fig X", {"metric", "paper", "measured", "verdict"});
  table.add_row({"eye width", "0.8 UI", "0.79 UI", "OK"});
  const std::string doc = obs::bench_json(table, "fig_x");
  EXPECT_NE(doc.find("\"schema\": \"mgt-bench-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"bench\": \"fig_x\""), std::string::npos);
  EXPECT_NE(doc.find("\"title\": \"Fig X\""), std::string::npos);
  EXPECT_NE(doc.find("\"eye width\""), std::string::npos);
  EXPECT_NE(doc.find("\"t.bench.counter\": 3"), std::string::npos);
  EXPECT_NE(doc.find("\"wallclock_ns\""), std::string::npos);
}

TEST_F(ObsTest, BenchJsonEscapesControlCharacters) {
  ReportTable table("quote \" and\nnewline", {"h"});
  table.add_row({"back\\slash"});
  const std::string doc = obs::bench_json(table, "esc");
  EXPECT_NE(doc.find("quote \\\" and\\nnewline"), std::string::npos);
  EXPECT_NE(doc.find("back\\\\slash"), std::string::npos);
}

TEST(ObsBenchName, StripsPathAndPrefix) {
  EXPECT_EQ(obs::bench_name_from_argv0("build/bench/bench_fig07_eye_2g5"),
            "fig07_eye_2g5");
  EXPECT_EQ(obs::bench_name_from_argv0("bench_x"), "x");
  EXPECT_EQ(obs::bench_name_from_argv0("custom"), "custom");
}

// ------------------------------------------------- determinism contract --

/// A mixed workload touching every instrumented subsystem: one eye
/// acquisition (signal render + eye accumulation through the PECL mux),
/// one wafer probe, one clean ARQ transfer, and a short vortex run.
void run_workload() {
  core::TestSystem sys(core::presets::optical_testbed(), 17);
  sys.program_prbs(7, 0xACE1u);
  sys.start();
  (void)sys.measure_eye(512);

  minitester::TesterArray::Config array_config;
  array_config.testers = 8;
  array_config.bist_bits = 64;
  minitester::TesterArray array(array_config, 23);
  (void)array.probe_wafer(64);

  const fault::FaultPlan empty;
  link::LinkChannel channel(link::LinkChannel::Config{},
                            link::make_fault_transport(empty, "link.fwd"),
                            link::make_fault_transport(empty, "link.rev"));
  Rng rng(31);
  std::vector<BitVector> payloads;
  for (int i = 0; i < 8; ++i) {
    payloads.push_back(
        BitVector::random(channel.codec().user_bits(), rng));
  }
  (void)channel.transfer(payloads);

  vortex::DataVortex fabric(vortex::Geometry::for_heights(8, 4));
  for (std::uint64_t id = 0; id < 16; ++id) {
    vortex::Packet p;
    p.id = id;
    p.destination = static_cast<std::uint32_t>(id % 8);
    p.payload = BitVector::random(128, rng);
    std::vector<vortex::Delivery> deliveries;
    (void)fabric.inject_with_retry(p, id % 8, 32, deliveries);
  }
  std::vector<vortex::Delivery> deliveries;
  (void)fabric.drain(deliveries, 256);
}

std::string snapshot_at(std::size_t threads) {
  util::ScopedThreads scoped(threads);
  obs::registry().reset();
  // Snapshot determinism means "pure function of the workload": world state
  // the workload reads must also be identical per run, so drop the render
  // cache the previous repetition populated (its hit/miss counters are in
  // the snapshot and would legitimately differ on a warm cache).
  sig::RenderCache::instance().clear();
  run_workload();
  return obs::registry().snapshot();
}

TEST_F(ObsTest, SnapshotByteIdenticalAcrossThreadCounts) {
  const std::string serial = snapshot_at(0);
  // The workload must have actually recorded something.
  EXPECT_NE(serial.find("counter render.chunks"), std::string::npos);
  EXPECT_NE(serial.find("counter eye.samples"), std::string::npos);
  EXPECT_NE(serial.find("counter minitester.dies"), std::string::npos);
  EXPECT_NE(serial.find("counter link.delivered"), std::string::npos);
  EXPECT_NE(serial.find("counter vortex.injected"), std::string::npos);
  EXPECT_EQ(snapshot_at(1), serial) << "1 thread vs serial";
  EXPECT_EQ(snapshot_at(8), serial) << "8 threads vs serial";
}

TEST_F(ObsTest, SimulationResultsIdenticalEnabledVsDisabled) {
  auto eye_fingerprint = [] {
    core::TestSystem sys(core::presets::optical_testbed(), 99);
    sys.program_prbs(7, 0xBEEFu);
    sys.start();
    const ana::EyeMetrics m = sys.measure_eye(256);
    return std::to_string(m.jitter.rms.ps()) + "|" +
           std::to_string(m.eye_height.mv()) + "|" +
           std::to_string(m.jitter.count);
  };
  obs::registry().set_enabled(true);
  const std::string with_obs = eye_fingerprint();
  obs::registry().set_enabled(false);
  const std::string without_obs = eye_fingerprint();
  EXPECT_EQ(with_obs, without_obs);
}

TEST_F(ObsTest, SelfTestReportsObsComponent) {
  core::TestSystem sys(core::presets::optical_testbed(), 5);
  const fault::HealthReport report = sys.self_test();
  const fault::ComponentHealth* obs_health = report.find("obs");
  ASSERT_NE(obs_health, nullptr);
  EXPECT_EQ(obs_health->status, fault::HealthStatus::kOk);
  EXPECT_NE(obs_health->detail.find("counters"), std::string::npos);
}

TEST_F(ObsTest, SelfTestReportsDisabledMetrics) {
  obs::registry().set_enabled(false);
  core::TestSystem sys(core::presets::optical_testbed(), 6);
  const fault::HealthReport report = sys.self_test();
  const fault::ComponentHealth* obs_health = report.find("obs");
  ASSERT_NE(obs_health, nullptr);
  EXPECT_EQ(obs_health->detail, "metrics disabled");
}

}  // namespace
}  // namespace mgt
