// Unit tests for src/analysis: eye metrics, crossover jitter, rise/fall,
// BER, bathtub, and timing-accuracy analysis.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/ber.hpp"
#include "analysis/berextrap.hpp"
#include "analysis/decompose.hpp"
#include "analysis/eye.hpp"
#include "analysis/risefall.hpp"
#include "analysis/timing.hpp"
#include "signal/render.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mgt::ana {
namespace {

using mgt::BitVector;
using mgt::Rng;
using sig::Crossing;
using sig::EdgeStream;
using sig::FilterChain;
using sig::PeclLevels;

// ----------------------------------------------------- crossover jitter --

std::vector<Crossing> synthetic_crossings(std::size_t n, double ui,
                                          double spread_pp,
                                          double center_phase, Rng& rng) {
  std::vector<Crossing> out;
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double jitter = rng.uniform(-spread_pp / 2.0, spread_pp / 2.0);
    out.push_back({Picoseconds{static_cast<double>(k + 1) * ui +
                               center_phase + jitter},
                   k % 2 == 0});
  }
  return out;
}

TEST(CrossoverJitter, RecoversKnownSpread) {
  Rng rng(5);
  const auto crossings = synthetic_crossings(20000, 400.0, 40.0, 0.0, rng);
  const auto j = measure_crossover_jitter(crossings, Picoseconds{400.0});
  EXPECT_EQ(j.count, 20000u);
  EXPECT_NEAR(j.peak_to_peak.ps(), 40.0, 1.0);
  // Uniform distribution: sigma = pp / sqrt(12).
  EXPECT_NEAR(j.rms.ps(), 40.0 / std::sqrt(12.0), 0.5);
}

TEST(CrossoverJitter, HandlesWraparoundAtUiBoundary) {
  // Crossings centered exactly on the fold boundary (phase 0 == UI) must
  // not split into two clusters.
  Rng rng(6);
  const auto crossings = synthetic_crossings(5000, 400.0, 30.0, 0.0, rng);
  const auto j = measure_crossover_jitter(crossings, Picoseconds{400.0});
  EXPECT_LT(j.peak_to_peak.ps(), 35.0);  // would be ~400 if split
}

TEST(CrossoverJitter, PhaseOffsetRecovered) {
  Rng rng(7);
  const auto crossings = synthetic_crossings(2000, 400.0, 10.0, 123.0, rng);
  const auto j = measure_crossover_jitter(crossings, Picoseconds{400.0});
  EXPECT_NEAR(j.mean_phase.ps(), 123.0, 1.0);
}

TEST(CrossoverJitter, EmptyInput) {
  const auto j = measure_crossover_jitter({}, Picoseconds{400.0});
  EXPECT_EQ(j.count, 0u);
  EXPECT_EQ(j.peak_to_peak.ps(), 0.0);
}

TEST(EdgeJitter, FiltersByDirection) {
  Rng rng(8);
  std::vector<Crossing> crossings;
  for (std::size_t k = 0; k < 1000; ++k) {
    // Rising edges tight, falling edges spread.
    const bool rising = k % 2 == 0;
    const double jitter =
        rising ? rng.uniform(-1.0, 1.0) : rng.uniform(-20.0, 20.0);
    crossings.push_back(
        {Picoseconds{static_cast<double>(k + 1) * 400.0 + jitter}, rising});
  }
  const auto rising = measure_edge_jitter(crossings, Picoseconds{400.0}, true);
  const auto falling =
      measure_edge_jitter(crossings, Picoseconds{400.0}, false);
  EXPECT_LT(rising.peak_to_peak.ps(), 3.0);
  EXPECT_GT(falling.peak_to_peak.ps(), 30.0);
  EXPECT_EQ(rising.count + falling.count, crossings.size());
}

// ------------------------------------------------------------ EyeDiagram --

EyeDiagram::Config basic_eye_config() {
  EyeDiagram::Config config;
  config.ui = Picoseconds{400.0};
  config.t_ref = Picoseconds{0.0};
  config.v_lo = Millivolts{1400.0};
  config.v_hi = Millivolts{2600.0};
  config.threshold = Millivolts{2000.0};
  return config;
}

TEST(EyeDiagram, CleanEyeHasFullOpening) {
  Rng rng(9);
  const auto bits = BitVector::random(4000, rng);
  const auto s = EdgeStream::from_bits(bits, Picoseconds{400.0});
  FilterChain chain;
  chain.add_pole_rise_2080(Picoseconds{60.0});

  EyeDiagram eye(basic_eye_config());
  sig::RenderConfig render_config;
  render_config.levels = PeclLevels{Millivolts{2400.0}, Millivolts{1600.0}};
  sig::render(s, chain, render_config, Picoseconds{800.0},
              Picoseconds{400.0 * 3999.0}, {&eye});

  const auto metrics = eye.metrics();
  // Deterministic edges: only the pole's tiny ISI spreads the crossings.
  EXPECT_GT(metrics.eye_opening.ui(), 0.97);
  EXPECT_GT(metrics.eye_height.mv(), 600.0);
  EXPECT_NEAR(metrics.level_high.mv(), 2400.0, 10.0);
  EXPECT_NEAR(metrics.level_low.mv(), 1600.0, 10.0);
  EXPECT_GT(eye.total_samples(), 1000u);
}

TEST(EyeDiagram, JitterClosesTheEyeProportionally) {
  Rng data_rng(10);
  Rng jitter_rng(11);
  const auto bits = BitVector::random(8000, data_rng);
  const double dj = 60.0;
  auto offset = [&](std::size_t, Picoseconds) {
    return Picoseconds{jitter_rng.chance(0.5) ? dj / 2.0 : -dj / 2.0};
  };
  const auto s =
      EdgeStream::from_bits(bits, Picoseconds{400.0}, Picoseconds{0.0}, offset);
  FilterChain chain;
  chain.add_pole_rise_2080(Picoseconds{40.0});

  EyeDiagram eye(basic_eye_config());
  sig::RenderConfig render_config;
  render_config.levels = PeclLevels{Millivolts{2400.0}, Millivolts{1600.0}};
  sig::render(s, chain, render_config, Picoseconds{800.0},
              Picoseconds{400.0 * 7999.0}, {&eye});

  const auto metrics = eye.metrics();
  // TJ ~= DJ of 60 ps -> opening ~= 1 - 60/400 = 0.85 UI.
  EXPECT_NEAR(metrics.jitter.peak_to_peak.ps(), dj, 8.0);
  EXPECT_NEAR(metrics.eye_opening.ui(), 1.0 - dj / 400.0, 0.03);
}

TEST(EyeDiagram, AsciiArtHasExpectedShape) {
  Rng rng(12);
  const auto bits = BitVector::random(2000, rng);
  const auto s = EdgeStream::from_bits(bits, Picoseconds{400.0});
  FilterChain chain;
  chain.add_pole_rise_2080(Picoseconds{60.0});
  EyeDiagram eye(basic_eye_config());
  sig::RenderConfig render_config;
  render_config.levels = PeclLevels{Millivolts{2400.0}, Millivolts{1600.0}};
  sig::render(s, chain, render_config, Picoseconds{800.0},
              Picoseconds{400.0 * 1999.0}, {&eye});
  const auto art = eye.ascii_art(64, 16);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 16);
  EXPECT_NE(art.find('@'), std::string::npos);  // dense rails
  EXPECT_NE(art.find(' '), std::string::npos);  // open eye center
}

TEST(EyeDiagram, InvalidConfigThrows) {
  auto config = basic_eye_config();
  config.v_hi = config.v_lo;
  EXPECT_THROW(EyeDiagram{config}, mgt::Error);
  config = basic_eye_config();
  config.time_bins = 0;
  EXPECT_THROW(EyeDiagram{config}, mgt::Error);
  config = basic_eye_config();
  config.center_window = 0.7;
  EXPECT_THROW(EyeDiagram{config}, mgt::Error);
}

// -------------------------------------------------------------- risefall --

TEST(RiseFall, SinglePoleAnalyticRiseTime) {
  const auto s = EdgeStream::from_bits(BitVector::alternating(40),
                                       Picoseconds{2000.0});
  FilterChain chain;
  const double tau = 50.0;
  chain.add_pole(Picoseconds{tau});
  RiseFallMeter meter(Millivolts{1600.0}, Millivolts{2400.0});
  sig::RenderConfig render_config;
  render_config.levels = PeclLevels{Millivolts{2400.0}, Millivolts{1600.0}};
  sig::render(s, chain, render_config, Picoseconds{0.0},
              Picoseconds{2000.0 * 39.0}, {&meter});

  EXPECT_GT(meter.rise().count(), 10u);
  EXPECT_GT(meter.fall().count(), 10u);
  EXPECT_NEAR(meter.mean_rise().ps(), tau * std::log(4.0), 0.5);
  EXPECT_NEAR(meter.mean_fall().ps(), tau * std::log(4.0), 0.5);
}

TEST(RiseFall, IncompleteTransitionsAreNotCounted) {
  // At 5 Gbps with a very slow pole, single-bit pulses never reach 80 %.
  const auto s = EdgeStream::from_bits(BitVector::alternating(200),
                                       Picoseconds{100.0});
  FilterChain chain;
  chain.add_pole(Picoseconds{400.0});  // rise >> UI
  RiseFallMeter meter(Millivolts{1600.0}, Millivolts{2400.0});
  sig::RenderConfig render_config;
  render_config.levels = PeclLevels{Millivolts{2400.0}, Millivolts{1600.0}};
  sig::render(s, chain, render_config, Picoseconds{0.0},
              Picoseconds{100.0 * 199.0}, {&meter});
  EXPECT_EQ(meter.rise().count(), 0u);
  EXPECT_EQ(meter.fall().count(), 0u);
}

TEST(RiseFall, InvalidLevelsThrow) {
  EXPECT_THROW(RiseFallMeter(Millivolts{2400.0}, Millivolts{1600.0}),
               mgt::Error);
}

// ------------------------------------------------------------------- ber --

TEST(Ber, CompareCountsMismatches) {
  const auto a = BitVector::from_string("10110010");
  const auto b = BitVector::from_string("10010011");
  const auto r = compare_bits(a, b);
  EXPECT_EQ(r.bits_compared, 8u);
  EXPECT_EQ(r.errors, 2u);
  EXPECT_DOUBLE_EQ(r.ber(), 0.25);
}

TEST(Ber, AlignedFindsShift) {
  Rng rng(13);
  const auto expected = BitVector::random(400, rng);
  BitVector captured = BitVector::from_string("110");
  captured.append(expected);
  const auto r = compare_bits_aligned(captured, expected, 8);
  EXPECT_EQ(r.alignment, 3u);
  EXPECT_EQ(r.errors, 0u);
}

TEST(Ber, AlignedNoShiftNeeded) {
  const auto v = BitVector::from_string("1100110011");
  const auto r = compare_bits_aligned(v, v, 4);
  EXPECT_EQ(r.alignment, 0u);
  EXPECT_EQ(r.errors, 0u);
}

TEST(Ber, EmptyComparableIsTotalFailure) {
  const BitVector empty;
  const auto r = compare_bits(empty, empty);
  EXPECT_EQ(r.bits_compared, 0u);
  EXPECT_DOUBLE_EQ(r.ber(), 1.0);
}

TEST(Bathtub, OpeningMeasuresPassingRun) {
  std::vector<BathtubPoint> scan;
  for (int i = 0; i <= 20; ++i) {
    BathtubPoint p;
    p.strobe_offset = Picoseconds{static_cast<double>(i) * 10.0};
    p.ber = (i >= 5 && i <= 15) ? 0.0 : 0.4;
    scan.push_back(p);
  }
  EXPECT_DOUBLE_EQ(bathtub_opening(scan, 1e-3).ps(), 110.0);
  EXPECT_DOUBLE_EQ(bathtub_opening(scan, 0.5).ps(), 210.0);
  EXPECT_DOUBLE_EQ(bathtub_opening({}, 0.5).ps(), 0.0);
}

// ---------------------------------------------------------------- timing --

TEST(Timing, PlacementAccuracyAgainstKnownOffsets) {
  std::vector<Picoseconds> programmed;
  std::vector<Crossing> measured;
  for (int k = 0; k < 100; ++k) {
    const double t = 1000.0 * (k + 1);
    programmed.push_back(Picoseconds{t});
    const double error = (k % 2 == 0) ? 12.0 : -8.0;
    measured.push_back({Picoseconds{t + error}, true});
  }
  const auto acc = measure_placement(measured, programmed);
  EXPECT_EQ(acc.count, 100u);
  EXPECT_NEAR(acc.max_abs_error.ps(), 12.0, 1e-9);
  EXPECT_NEAR(acc.mean_error.ps(), 2.0, 1e-9);
  EXPECT_TRUE(acc.within(Picoseconds{25.0}));
  EXPECT_FALSE(acc.within(Picoseconds{10.0}));
}

TEST(Timing, PlacementRequiresSortedProgrammed) {
  EXPECT_THROW(
      measure_placement({}, {Picoseconds{10.0}, Picoseconds{5.0}}),
      mgt::Error);
}

TEST(Timing, DelayLinearityFitRecoversGainAndOffset) {
  std::vector<double> codes;
  std::vector<Picoseconds> delays;
  for (int c = 0; c < 256; ++c) {
    codes.push_back(c);
    // gain 10.05 ps/code, offset 3 ps, bounded bow INL.
    const double inl = 4.0 * std::sin(c / 255.0 * 3.14159);
    delays.push_back(Picoseconds{3.0 + 10.05 * c + inl});
  }
  const auto fit = fit_delay_linearity(codes, delays);
  EXPECT_NEAR(fit.gain_ps_per_code, 10.05, 0.05);
  EXPECT_NEAR(fit.offset.ps(), 3.0, 3.0);
  EXPECT_LT(fit.max_inl.ps(), 6.0);
  EXPECT_TRUE(fit.monotonic);
}

TEST(Timing, DelayLinearityDetectsNonMonotonicity) {
  const std::vector<double> codes = {0, 1, 2, 3};
  const std::vector<Picoseconds> delays = {
      Picoseconds{0.0}, Picoseconds{10.0}, Picoseconds{8.0},
      Picoseconds{30.0}};
  const auto fit = fit_delay_linearity(codes, delays);
  EXPECT_FALSE(fit.monotonic);
  EXPECT_GT(fit.max_dnl.ps(), 5.0);
}

TEST(Timing, DelayLinearityNeedsTwoPoints) {
  EXPECT_THROW(fit_delay_linearity({1.0}, {Picoseconds{10.0}}), mgt::Error);
}

// -------------------------------------------- BER extrapolation (Q scale) --

TEST(BerExtrap, QScaleMatchesNormalQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(q_of_ber(0.5 * std::erfc(1.0 / std::sqrt(2.0))), 1.0, 1e-7);
  EXPECT_NEAR(q_of_ber(1e-3), 3.0902, 1e-3);
  EXPECT_NEAR(q_of_ber(1e-12), 7.0345, 1e-3);
  EXPECT_THROW(inverse_normal_cdf(0.0), mgt::Error);
  EXPECT_THROW(inverse_normal_cdf(1.0), mgt::Error);
  EXPECT_THROW(q_of_ber(0.0), mgt::Error);
}

/// BER of a Gaussian wall at Q sigmas into the tail (inverse of q_of_ber).
double ber_of_q(double q) { return 0.5 * std::erfc(q / std::sqrt(2.0)); }

TEST(BerExtrap, FitRecoversKnownDualDiracWalls) {
  // Synthesize a bathtub exactly on the dual-Dirac model: left edge at
  // 30 ps / sigma 3 ps, right edge at 370 ps / sigma 4 ps.
  const double mu_l = 30.0, sigma_l = 3.0;
  const double mu_r = 370.0, sigma_r = 4.0;
  std::vector<BathtubPoint> scan;
  for (double q = 0.5; q <= 4.5; q += 0.5) {
    scan.push_back({Picoseconds{mu_l + q * sigma_l}, ber_of_q(q), 0, 0});
  }
  scan.push_back({Picoseconds{200.0}, 1e-15, 0, 0});  // eye center (best)
  for (double q = 4.5; q >= 0.5; q -= 0.5) {
    scan.push_back({Picoseconds{mu_r - q * sigma_r}, ber_of_q(q), 0, 0});
  }

  const auto fit = fit_bathtub(scan);
  ASSERT_TRUE(fit.valid());
  EXPECT_NEAR(fit.left_mu.ps(), mu_l, 0.05);
  EXPECT_NEAR(fit.left_sigma.ps(), sigma_l, 0.05);
  EXPECT_NEAR(fit.right_mu.ps(), mu_r, 0.05);
  EXPECT_NEAR(fit.right_sigma.ps(), sigma_r, 0.05);
  EXPECT_NEAR(fit.rj_sigma().ps(), (sigma_l + sigma_r) / 2.0, 0.05);

  // Extrapolated opening at BER 1e-12 follows TJ = DJ + 2*Q*RJ.
  const double q12 = q_of_ber(1e-12);
  const double expected =
      (mu_r - q12 * sigma_r) - (mu_l + q12 * sigma_l);
  EXPECT_NEAR(fit.eye_at_ber(1e-12).ps(), expected, 0.5);
  // A deeper BER target always shrinks the extrapolated eye.
  EXPECT_LT(fit.eye_at_ber(1e-12).ps(), fit.eye_at_ber(1e-9).ps());
}

TEST(BerExtrap, DegenerateScansAreInvalid) {
  EXPECT_FALSE(fit_bathtub({}).valid());
  // Too few points.
  std::vector<BathtubPoint> tiny = {{Picoseconds{0.0}, 0.3, 0, 0},
                                    {Picoseconds{10.0}, 1e-9, 0, 0},
                                    {Picoseconds{20.0}, 0.3, 0, 0}};
  EXPECT_FALSE(fit_bathtub(tiny).valid());
  // All points outside the fit band (passing region only).
  std::vector<BathtubPoint> flat;
  for (int i = 0; i < 8; ++i) {
    flat.push_back({Picoseconds{double(i) * 10.0}, 1e-12, 0, 0});
  }
  EXPECT_FALSE(fit_bathtub(flat).valid());
}

// ------------------------------------------------- jitter decomposition --

TEST(Decompose, RecoversKnownRjDjSplit) {
  // Crossings drawn from an exact dual-Dirac + Gaussian model: two Dirac
  // components dj_pp apart, each blurred by rj_sigma of random jitter.
  const double ui = 400.0;
  const double rj_sigma = 3.0;
  const double dj_pp = 20.0;
  Rng rng(2024);
  std::vector<Crossing> crossings;
  for (std::size_t k = 0; k < 20000; ++k) {
    const double dirac = (k % 2 == 0) ? -dj_pp / 2.0 : dj_pp / 2.0;
    const double t = double(k) * ui + ui / 2.0 + dirac +
                     rng.gaussian(0.0, rj_sigma);
    crossings.push_back({Picoseconds{t}, k % 2 == 0});
  }

  const auto split = decompose_jitter(crossings, Picoseconds{ui});
  ASSERT_TRUE(split.valid);
  EXPECT_EQ(split.samples, crossings.size());
  // Dual-Dirac estimates carry the method's documented bias: the mixture
  // CDF inflates the fitted sigma slightly and pulls the Dirac means
  // inward (RJ reads high, DJ(dd) reads low) — but the TJ extrapolation
  // the split exists for stays accurate.
  EXPECT_GE(split.rj_sigma.ps(), rj_sigma - 0.2);
  EXPECT_LE(split.rj_sigma.ps(), rj_sigma + 0.6);
  EXPECT_GE(split.dj_pp.ps(), dj_pp - 4.5);
  EXPECT_LE(split.dj_pp.ps(), dj_pp + 1.0);
  const double tj_true = dj_pp + 2.0 * q_of_ber(1e-12) * rj_sigma;
  EXPECT_NEAR(split.tj_at_ber(1e-12).ps(), tj_true, 4.0);
}

TEST(Decompose, PureGaussianJitterHasNoDeterministicPart) {
  const double ui = 400.0;
  const double rj_sigma = 3.2;
  Rng rng(7);
  std::vector<Crossing> crossings;
  for (std::size_t k = 0; k < 20000; ++k) {
    const double t = double(k) * ui + ui / 2.0 + rng.gaussian(0.0, rj_sigma);
    crossings.push_back({Picoseconds{t}, k % 2 == 0});
  }
  const auto split = decompose_jitter(crossings, Picoseconds{ui});
  ASSERT_TRUE(split.valid);
  EXPECT_NEAR(split.rj_sigma.ps(), rj_sigma, 0.4);
  EXPECT_LT(split.dj_pp.ps(), 1.5);
}

TEST(Decompose, TooFewCrossingsAreInvalid) {
  std::vector<Crossing> few;
  for (std::size_t k = 0; k < 99; ++k) {
    few.push_back({Picoseconds{double(k) * 400.0 + 200.0}, true});
  }
  EXPECT_FALSE(decompose_jitter(few, Picoseconds{400.0}).valid);
}

}  // namespace
}  // namespace mgt::ana
