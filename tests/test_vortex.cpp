// Tests for src/vortex: geometry/movement rules, deflection fabric
// invariants, and the electro-optic conversion chain.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "vortex/fabric.hpp"
#include "vortex/node.hpp"
#include "vortex/optics.hpp"
#include "vortex/packet.hpp"

namespace mgt::vortex {
namespace {

using mgt::BitVector;
using mgt::Error;
using mgt::Rng;

// --------------------------------------------------------------- geometry --

TEST(Geometry, ForHeights) {
  const auto g = Geometry::for_heights(16, 4);
  EXPECT_EQ(g.height_count, 16u);
  EXPECT_EQ(g.address_bits, 4u);
  EXPECT_EQ(g.cylinder_count, 5u);
  EXPECT_EQ(g.node_count(), 5u * 4u * 16u);
  EXPECT_THROW(Geometry::for_heights(12, 4), Error);  // not a power of two
  EXPECT_THROW(Geometry::for_heights(16, 1), Error);
}

TEST(Geometry, HopTogglesResponsibleHeightBit) {
  const auto g = Geometry::for_heights(16, 4);
  const NodeAddress from{1, 2, 0b1010};
  const auto to = g.hop(from);
  EXPECT_EQ(to.cylinder, 1u);
  EXPECT_EQ(to.angle, 3u);
  EXPECT_EQ(to.height, 0b1110u);  // bit for cylinder 1 (second MSB) toggled
}

TEST(Geometry, HopWrapsAngle) {
  const auto g = Geometry::for_heights(8, 4);
  const auto to = g.hop({0, 3, 0});
  EXPECT_EQ(to.angle, 0u);
}

TEST(Geometry, CoreHopKeepsHeight) {
  const auto g = Geometry::for_heights(8, 4);
  const auto to = g.hop({3, 1, 5});  // innermost cylinder of 4
  EXPECT_EQ(to.height, 5u);
  EXPECT_EQ(to.angle, 2u);
}

TEST(Geometry, DescendPreservesHeight) {
  const auto g = Geometry::for_heights(16, 4);
  const auto to = g.descend({2, 1, 9});
  EXPECT_EQ(to.cylinder, 3u);
  EXPECT_EQ(to.height, 9u);
  EXPECT_THROW((void)g.descend({4, 0, 0}), Error);
}

TEST(Geometry, FlatIndexIsBijective) {
  const auto g = Geometry::for_heights(8, 3);
  std::set<std::size_t> seen;
  for (std::size_t c = 0; c < g.cylinder_count; ++c) {
    for (std::size_t a = 0; a < g.angle_count; ++a) {
      for (std::size_t h = 0; h < g.height_count; ++h) {
        const auto idx = g.flat_index({c, a, h});
        EXPECT_LT(idx, g.node_count());
        EXPECT_TRUE(seen.insert(idx).second);
      }
    }
  }
}

TEST(Packet, HeaderBitIsMsbFirst) {
  Packet p;
  p.destination = 0b1010;
  EXPECT_TRUE(p.header_bit(0, 4));
  EXPECT_FALSE(p.header_bit(1, 4));
  EXPECT_TRUE(p.header_bit(2, 4));
  EXPECT_FALSE(p.header_bit(3, 4));
  EXPECT_THROW((void)p.header_bit(4, 4), Error);
}

// ----------------------------------------------------------------- fabric --

TEST(Fabric, SinglePacketReachesItsPort) {
  DataVortex fabric(Geometry::for_heights(16, 4));
  Packet p;
  p.id = 1;
  p.destination = 11;
  ASSERT_TRUE(fabric.inject(std::move(p), 3));

  std::vector<Delivery> out;
  ASSERT_TRUE(fabric.drain(out, 100));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].output_port, 11u);
  EXPECT_EQ(out[0].packet.id, 1u);
  // An uncontended packet never deflects.
  EXPECT_EQ(out[0].packet.deflections, 0u);
  // It needs at least one hop per cylinder.
  EXPECT_GE(out[0].packet.hops, 5u);
}

class AllPairs : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AllPairs, EverySourceReachesEveryDestination) {
  const std::size_t ports = GetParam();
  for (std::size_t src = 0; src < ports; ++src) {
    for (std::size_t dst = 0; dst < ports; ++dst) {
      DataVortex fabric(Geometry::for_heights(ports, 4));
      Packet p;
      p.id = src * ports + dst;
      p.destination = static_cast<std::uint32_t>(dst);
      ASSERT_TRUE(fabric.inject(std::move(p), src));
      std::vector<Delivery> out;
      ASSERT_TRUE(fabric.drain(out, 200)) << src << "->" << dst;
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(out[0].output_port, dst);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PortCounts, AllPairs, ::testing::Values(4, 8, 16));

TEST(Fabric, ConservationUnderLoad) {
  // Nothing lost, nothing duplicated, everything correctly routed.
  DataVortex fabric(Geometry::for_heights(16, 4));
  Rng rng(7);
  std::map<std::uint64_t, std::uint32_t> expected_port;
  std::uint64_t next_id = 1;
  std::size_t injected = 0;

  std::vector<Delivery> deliveries;
  for (int slot = 0; slot < 500; ++slot) {
    for (std::size_t port = 0; port < 16; ++port) {
      if (!rng.chance(0.4)) {
        continue;
      }
      Packet p;
      p.id = next_id++;
      p.destination = static_cast<std::uint32_t>(rng.below(16));
      const std::uint32_t dest = p.destination;
      if (fabric.inject(std::move(p), port)) {
        expected_port[next_id - 1] = dest;
        ++injected;
      }
    }
    auto out = fabric.step();
    deliveries.insert(deliveries.end(), out.begin(), out.end());
  }
  ASSERT_TRUE(fabric.drain(deliveries, 10000));

  EXPECT_EQ(deliveries.size(), injected);
  std::set<std::uint64_t> seen;
  for (const auto& d : deliveries) {
    EXPECT_TRUE(seen.insert(d.packet.id).second) << "duplicate packet";
    ASSERT_TRUE(expected_port.contains(d.packet.id));
    EXPECT_EQ(d.output_port, expected_port[d.packet.id]);
  }
  EXPECT_EQ(fabric.stats().injected, injected);
  EXPECT_EQ(fabric.stats().delivered, injected);
  EXPECT_EQ(fabric.occupancy(), 0u);
}

TEST(Fabric, LatencyAndDeflectionsGrowWithLoad) {
  double latency_at_load[2];
  double deflections_at_load[2];
  int i = 0;
  for (double load : {0.05, 0.9}) {
    DataVortex fabric(Geometry::for_heights(16, 4));
    Rng rng(11);
    std::uint64_t id = 1;
    std::vector<Delivery> deliveries;
    for (int slot = 0; slot < 400; ++slot) {
      for (std::size_t port = 0; port < 16; ++port) {
        if (rng.chance(load)) {
          Packet p;
          p.id = id++;
          p.destination = static_cast<std::uint32_t>(rng.below(16));
          fabric.inject(std::move(p), port);
        }
      }
      auto out = fabric.step();
      deliveries.insert(deliveries.end(), out.begin(), out.end());
    }
    fabric.drain(deliveries, 10000);
    double lat_sum = 0.0;
    double defl_sum = 0.0;
    for (const auto& d : deliveries) {
      lat_sum += static_cast<double>(d.latency_slots());
      defl_sum += static_cast<double>(d.packet.deflections);
    }
    latency_at_load[i] = lat_sum / static_cast<double>(deliveries.size());
    deflections_at_load[i] = defl_sum / static_cast<double>(deliveries.size());
    ++i;
  }
  EXPECT_GT(latency_at_load[1], latency_at_load[0]);
  EXPECT_GT(deflections_at_load[1], deflections_at_load[0] + 0.1);
}

TEST(Fabric, InjectionBackpressure) {
  DataVortex fabric(Geometry::for_heights(4, 2));
  Packet a;
  a.destination = 0;
  ASSERT_TRUE(fabric.can_inject(0));
  ASSERT_TRUE(fabric.inject(std::move(a), 0));
  EXPECT_FALSE(fabric.can_inject(0));
  Packet b;
  b.destination = 1;
  EXPECT_FALSE(fabric.inject(std::move(b), 0));
  EXPECT_EQ(fabric.stats().rejected_injections, 1u);
  fabric.step();
  EXPECT_TRUE(fabric.can_inject(0));
}

TEST(Fabric, BackpressureAccountingStaysExactUnderSustainedFullLoad) {
  // Regression for the inject/stats contract: offer a packet at EVERY port
  // on EVERY slot (sustained saturation, far past the fabric's capacity)
  // and require the books to balance the whole way through:
  //   attempts == injected + rejected_injections   (nothing vanishes at
  //                                                 the input)
  //   injected == delivered + dropped + occupancy  (nothing vanishes
  //                                                 inside)
  DataVortex fabric(Geometry::for_heights(16, 4));
  Rng rng(23);
  std::uint64_t attempts = 0;
  std::uint64_t accepted = 0;
  std::vector<Delivery> deliveries;
  for (int slot = 0; slot < 300; ++slot) {
    for (std::size_t port = 0; port < 16; ++port) {
      Packet p;
      p.id = attempts + 1;
      p.destination = static_cast<std::uint32_t>(rng.below(16));
      ++attempts;
      if (fabric.inject(std::move(p), port)) {
        ++accepted;
      }
    }
    auto out = fabric.step();
    deliveries.insert(deliveries.end(), out.begin(), out.end());
    // The invariants hold at every slot boundary, not just at the end.
    const FabricStats& s = fabric.stats();
    ASSERT_EQ(attempts, s.injected + s.rejected_injections) << slot;
    ASSERT_EQ(s.injected, s.delivered + s.dropped + fabric.occupancy())
        << slot;
    ASSERT_EQ(s.in_flight(), fabric.occupancy()) << slot;
  }
  ASSERT_TRUE(fabric.drain(deliveries, 10000));

  const FabricStats& stats = fabric.stats();
  EXPECT_EQ(stats.injected, accepted);
  EXPECT_EQ(attempts, stats.injected + stats.rejected_injections);
  // Saturation must actually exercise backpressure...
  EXPECT_GT(stats.rejected_injections, 0u);
  // ...and a healthy fabric never drops: every accepted packet comes out.
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.delivered, accepted);
  EXPECT_EQ(deliveries.size(), accepted);
  EXPECT_EQ(fabric.occupancy(), 0u);
}

TEST(Fabric, InvalidPortsThrow) {
  DataVortex fabric(Geometry::for_heights(8, 4));
  Packet p;
  p.destination = 9;  // out of range
  EXPECT_THROW(fabric.inject(std::move(p), 0), Error);
  Packet q;
  q.destination = 0;
  EXPECT_THROW(fabric.inject(std::move(q), 8), Error);
  EXPECT_THROW((void)fabric.can_inject(8), Error);
}

// ----------------------------------------------------------------- optics --

TEST(Optics, LinkBudgetArithmetic) {
  LaserDriver::Config laser;
  laser.launch_power_dbm = 3.0;
  OpticalPath::Config path;
  path.fiber_length_m = 1000.0;
  path.fiber_loss_db_per_km = 0.25;
  path.combiner_loss_db = 3.5;
  path.splitter_loss_db = 3.5;
  Photodetector::Config detector;
  detector.sensitivity_dbm = -18.0;

  const auto budget = compute_link_budget(laser, path, detector);
  EXPECT_NEAR(budget.loss_db, 7.25, 1e-9);
  EXPECT_NEAR(budget.received_dbm, -4.25, 1e-9);
  EXPECT_NEAR(budget.margin_db(), 13.75, 1e-9);
}

TEST(Optics, DetectorRejectsWeakSignal) {
  Photodetector detector(Photodetector::Config{}, Rng(1));
  OpticalStream weak;
  weak.power_dbm = -30.0;
  EXPECT_FALSE(detector.detects(weak));
  EXPECT_THROW(detector.detect(weak), Error);
}

TEST(Optics, EndToEndPreservesData) {
  LaserDriver laser(LaserDriver::Config{}, Rng(2));
  OpticalPath path(OpticalPath::Config{});
  Photodetector detector(Photodetector::Config{}, Rng(3));

  Rng rng(4);
  const auto bits = BitVector::random(1000, rng);
  const Picoseconds ui{400.0};
  const auto electrical = sig::EdgeStream::from_bits(bits, ui);

  const auto launched = laser.modulate(electrical);
  const auto received = path.propagate(launched);
  ASSERT_TRUE(detector.detects(received));
  const auto recovered = detector.detect(received);

  const Picoseconds total_delay{laser.config().prop_delay.ps() +
                                path.delay().ps() +
                                detector.config().prop_delay.ps()};
  EXPECT_EQ(recovered.to_bits(1000, ui, total_delay), bits);
  EXPECT_TRUE(recovered.well_formed());
}

TEST(Optics, PathDelayScalesWithFiberLength) {
  OpticalPath::Config config;
  config.fiber_length_m = 2.0;
  const OpticalPath path(config);
  EXPECT_NEAR(path.delay().ps(), 9800.0, 1e-6);
}

}  // namespace
}  // namespace mgt::vortex
