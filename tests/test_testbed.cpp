// Tests for src/testbed: Fig 4 slot format, transmitter, source-
// synchronous receiver, and the end-to-end optical test bed.
#include <gtest/gtest.h>

#include "testbed/framing.hpp"
#include "testbed/receiver.hpp"
#include "testbed/testbed.hpp"
#include "testbed/transmitter.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mgt::testbed {
namespace {

using mgt::BitVector;
using mgt::Error;
using mgt::RecoverableError;
using mgt::Rng;

TestbedPacket random_packet(Rng& rng) {
  TestbedPacket p;
  for (auto& lane : p.payload) {
    lane = BitVector::random(32, rng);
  }
  p.header = static_cast<std::uint8_t>(rng.below(16));
  return p;
}

// ---------------------------------------------------------------- framing --

TEST(SlotFormat, Fig4NumbersCloseExactly) {
  const SlotFormat fmt;
  EXPECT_NO_THROW(fmt.validate());
  // Paper callouts on Fig 4:
  EXPECT_DOUBLE_EQ(fmt.slot_duration().ns(), 25.6);    // 64 x 400 ps
  EXPECT_DOUBLE_EQ(fmt.data_duration().ns(), 12.8);    // 32 x 400 ps
  EXPECT_DOUBLE_EQ(fmt.window_duration().ns(), 18.4);  // 46 x 400 ps
  EXPECT_DOUBLE_EQ(fmt.guard_bits * fmt.ui.ps(), 2000.0);  // 2.0 ns
  EXPECT_DOUBLE_EQ(fmt.dead_bits * fmt.ui.ps(), 3200.0);   // 3.2 ns
  EXPECT_EQ(fmt.window_start(), 13u);
  EXPECT_EQ(fmt.data_start(), 20u);
  EXPECT_EQ(fmt.data_end(), 52u);
  EXPECT_EQ(fmt.window_end(), 59u);
}

TEST(SlotFormat, InconsistentLayoutThrows) {
  SlotFormat fmt;
  fmt.guard_bits = 6;  // 8 + 12 + 46 != 64
  EXPECT_THROW(fmt.validate(), Error);
  fmt = SlotFormat{};
  fmt.pre_clock_bits = 8;  // 8 + 32 + 7 != 46
  EXPECT_THROW(fmt.validate(), Error);
}

TEST(Framing, BuildSlotShapes) {
  const SlotFormat fmt;
  Rng rng(1);
  const auto packet = random_packet(rng);
  const auto slot = build_slot(fmt, packet);

  // Clock toggles through the window only: 46 transitions.
  EXPECT_EQ(slot.clock.transition_count(), 46u);
  EXPECT_FALSE(slot.clock.get(0));
  EXPECT_FALSE(slot.clock.get(63));
  // Frame spans exactly the data window.
  EXPECT_EQ(slot.frame.popcount(), 32u);
  EXPECT_TRUE(slot.frame.get(fmt.data_start()));
  EXPECT_FALSE(slot.frame.get(fmt.data_start() - 1));
  // Data channels idle outside the data window.
  for (const auto& ch : slot.data) {
    EXPECT_EQ(ch.size(), 64u);
    for (std::size_t i = 0; i < fmt.data_start(); ++i) {
      EXPECT_FALSE(ch.get(i));
    }
  }
}

class FramingRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FramingRoundTrip, ParseInvertsBuild) {
  const SlotFormat fmt;
  Rng rng(GetParam());
  const auto packet = random_packet(rng);
  const auto slot = build_slot(fmt, packet);
  const auto parsed = parse_slot(fmt, slot);
  EXPECT_EQ(parsed.header, packet.header);
  for (std::size_t ch = 0; ch < kDataChannels; ++ch) {
    EXPECT_EQ(parsed.payload[ch], packet.payload[ch]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FramingRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Framing, WrongPayloadWidthThrows) {
  const SlotFormat fmt;
  TestbedPacket packet;
  packet.payload[0] = BitVector(31);
  packet.payload[1] = BitVector(32);
  packet.payload[2] = BitVector(32);
  packet.payload[3] = BitVector(32);
  EXPECT_THROW(build_slot(fmt, packet), Error);
}

// ------------------------------------------------------------ transmitter --

class TransmitterTest : public ::testing::Test {
protected:
  OpticalTransmitter::Config make_config() {
    OpticalTransmitter::Config config;
    config.channel = core::presets::optical_testbed();
    return config;
  }
};

TEST_F(TransmitterTest, OutputCarriesSlotBits) {
  OpticalTransmitter tx(make_config(), 5);
  Rng rng(6);
  const auto packet = random_packet(rng);
  const auto out = tx.transmit(packet, Picoseconds{0.0});

  // Each high-speed channel, sampled on the grid, carries its slot bits.
  for (std::size_t ch = 0; ch < kDataChannels; ++ch) {
    EXPECT_EQ(out.data[ch].to_bits(64, out.ui,
                                   Picoseconds{out.grid_origin.ps()}),
              out.bits.data[ch])
        << "channel " << ch;
  }
  EXPECT_EQ(out.clock.to_bits(64, out.ui, Picoseconds{out.grid_origin.ps()}),
            out.bits.clock);
}

TEST_F(TransmitterTest, ChannelDelayLinesShiftChannels) {
  OpticalTransmitter tx(make_config(), 7);
  Rng rng(8);
  const auto packet = random_packet(rng);

  const auto before = tx.transmit(packet, Picoseconds{0.0});
  tx.set_channel_delay_code(0, 100);  // +1 ns on data channel 0
  const auto after = tx.transmit(packet, Picoseconds{0.0});

  const double shift = after.data[0].transitions()[0].time.ps() -
                       before.data[0].transitions()[0].time.ps();
  // Tolerance covers the per-edge RJ of two independent acquisitions.
  EXPECT_NEAR(shift, tx.channel_delay(0).actual_delay(100).ps(), 20.0);
  // Other channels unmoved (within jitter).
  const double other = after.data[1].transitions()[0].time.ps() -
                       before.data[1].transitions()[0].time.ps();
  EXPECT_NEAR(other, 0.0, 20.0);
}

TEST_F(TransmitterTest, SidebandTimingTracksDataPath) {
  OpticalTransmitter tx(make_config(), 9);
  Rng rng(10);
  const auto out = tx.transmit(random_packet(rng), Picoseconds{0.0});
  // The frame rises near the data-start boundary of the high-speed grid.
  ASSERT_FALSE(out.frame.empty());
  const double frame_rise = out.frame.transitions()[0].time.ps();
  const double expected =
      out.grid_origin.ps() + 20.0 * out.ui.ps();  // data_start = bit 20
  EXPECT_NEAR(frame_rise, expected, 150.0);  // CMOS path, looser alignment
}

// --------------------------------------------------------------- receiver --

TEST(Receiver, RecoversCleanSlot) {
  OpticalTransmitter::Config config;
  config.channel = core::presets::optical_testbed();
  OpticalTransmitter tx(config, 11);
  Receiver rx(Receiver::Config{});
  Rng rng(12);
  const auto packet = random_packet(rng);
  const auto signals = tx.transmit(packet, Picoseconds{0.0});
  const auto result = rx.receive(signals, Picoseconds{0.0});

  EXPECT_TRUE(result.captured);
  EXPECT_TRUE(result.frame_ok);
  EXPECT_EQ(result.clock_edges_seen, 46u);
  EXPECT_EQ(result.packet.header, packet.header);
  for (std::size_t ch = 0; ch < kDataChannels; ++ch) {
    EXPECT_EQ(result.packet.payload[ch], packet.payload[ch]);
  }
}

TEST(Receiver, MisalignedDataChannelCorrupts_ThenDelayFixesIt) {
  OpticalTransmitter::Config config;
  config.channel = core::presets::optical_testbed();
  OpticalTransmitter tx(config, 13);
  Receiver rx(Receiver::Config{});
  Rng rng(14);
  const auto packet = random_packet(rng);

  // Skew data channel 0 by ~half a UI: wrong bits sampled.
  tx.set_channel_delay_code(0, 22);  // 220 ps late
  const auto skewed = tx.transmit(packet, Picoseconds{0.0});
  const auto bad = rx.receive(skewed, Picoseconds{0.0});
  EXPECT_NE(bad.packet.payload[0], packet.payload[0]);

  // Re-align every channel with the same programmed delay: clean again.
  for (std::size_t ch = 0; ch < kHighSpeedChannels; ++ch) {
    tx.set_channel_delay_code(ch, 22);
  }
  const auto aligned = tx.transmit(packet, Picoseconds{0.0});
  const auto good = rx.receive(aligned, Picoseconds{0.0});
  for (std::size_t ch = 0; ch < kDataChannels; ++ch) {
    EXPECT_EQ(good.packet.payload[ch], packet.payload[ch]);
  }
}

TEST(Receiver, DeadClockMeansNoCapture) {
  OpticalTransmitter::Config config;
  config.channel = core::presets::optical_testbed();
  OpticalTransmitter tx(config, 15);
  Receiver rx(Receiver::Config{});
  Rng rng(16);
  auto signals = tx.transmit(random_packet(rng), Picoseconds{0.0});
  signals.clock = sig::EdgeStream{false};  // clock channel died
  const auto result = rx.receive(signals, Picoseconds{0.0});
  EXPECT_FALSE(result.captured);
}

// ---------------------------------------------------------------- testbed --

TEST(OpticalTestbed, SinglePacketEndToEnd) {
  OpticalTestbed tb(OpticalTestbed::Config{}, 17);
  Rng rng(18);
  const auto packet = random_packet(rng);
  const auto result = tb.send_one(packet);
  EXPECT_TRUE(result.captured);
  EXPECT_TRUE(result.frame_ok);
  EXPECT_TRUE(result.header_ok);
  EXPECT_EQ(result.payload_bit_errors, 0u);
}

TEST(OpticalTestbed, RunDeliversEverythingErrorFree) {
  OpticalTestbed::Config config;
  config.signal_check_period = 4;
  OpticalTestbed tb(config, 19);
  const auto stats = tb.run(0.3, 150);

  EXPECT_GT(stats.fabric.injected, 200u);
  EXPECT_EQ(stats.fabric.delivered, stats.fabric.injected);
  EXPECT_GT(stats.signal_checks, 20u);
  EXPECT_EQ(stats.payload_bit_errors, 0u);
  EXPECT_EQ(stats.header_errors, 0u);
  EXPECT_EQ(stats.frame_failures, 0u);
  EXPECT_GT(stats.mean_latency_slots, 4.0);
  EXPECT_GT(stats.budget.margin_db(), 3.0);  // healthy optical link
}

TEST(OpticalTestbed, LinkBudgetFailureDegradesInsteadOfThrowing) {
  OpticalTestbed::Config config;
  config.path.fiber_length_m = 100000.0;  // 100 km of fiber: hopeless
  config.path.fiber_loss_db_per_km = 0.25;
  OpticalTestbed tb(config, 20);
  Rng rng(21);
  // Every channel goes dark, but the transfer completes in degraded mode:
  // nothing captured, every payload bit counted as an error.
  const auto result = tb.send_one(random_packet(rng));
  EXPECT_EQ(result.los_channels, kHighSpeedChannels);
  EXPECT_FALSE(result.captured);
  EXPECT_EQ(result.payload_bit_errors, kDataChannels * SlotFormat{}.data_bits);
}

TEST(OpticalTestbed, DetectorStillThrowsRecoverableErrorDirectly) {
  // The underlying contract is unchanged for direct users: a budget
  // violation at the detector is a RecoverableError (and an Error).
  vortex::Photodetector detector(vortex::Photodetector::Config{}, Rng(5));
  vortex::OpticalStream weak;
  weak.power_dbm = -40.0;
  EXPECT_THROW(detector.detect(weak), RecoverableError);
}

}  // namespace
}  // namespace mgt::testbed
