// Unit tests for src/util: units, RNG, bit vectors, statistics, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>

#include "util/bitvec.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace mgt {
namespace {

using namespace mgt::literals;

// ---------------------------------------------------------------- units --

TEST(Units, PicosecondArithmetic) {
  const Picoseconds a{400.0};
  const Picoseconds b{100.0};
  EXPECT_DOUBLE_EQ((a + b).ps(), 500.0);
  EXPECT_DOUBLE_EQ((a - b).ps(), 300.0);
  EXPECT_DOUBLE_EQ((a * 2.0).ps(), 800.0);
  EXPECT_DOUBLE_EQ((a / 4.0).ps(), 100.0);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
  EXPECT_LT(b, a);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(Picoseconds::from_ns(25.6).ps(), 25600.0);
  EXPECT_DOUBLE_EQ(Picoseconds{25600.0}.ns(), 25.6);
  EXPECT_DOUBLE_EQ(Millivolts{800.0}.volts(), 0.8);
  EXPECT_DOUBLE_EQ(Gigahertz{1.25}.period().ps(), 800.0);
  EXPECT_DOUBLE_EQ(GbitsPerSec{2.5}.unit_interval().ps(), 400.0);
  EXPECT_DOUBLE_EQ(GbitsPerSec::from_ui(Picoseconds{200.0}).gbps(), 5.0);
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ((400_ps).ps(), 400.0);
  EXPECT_DOUBLE_EQ((1.6_ns).ps(), 1600.0);
  EXPECT_DOUBLE_EQ((800_mV).mv(), 800.0);
  EXPECT_DOUBLE_EQ((2.5_Gbps).unit_interval().ps(), 400.0);
  EXPECT_DOUBLE_EQ((1.25_GHz).mhz(), 1250.0);
}

TEST(Units, CompoundAssignment) {
  Picoseconds t{100.0};
  t += Picoseconds{50.0};
  EXPECT_DOUBLE_EQ(t.ps(), 150.0);
  t -= Picoseconds{25.0};
  EXPECT_DOUBLE_EQ(t.ps(), 125.0);
  t *= 2.0;
  EXPECT_DOUBLE_EQ(t.ps(), 250.0);
}

TEST(Units, NegationAndScalarOrdering) {
  EXPECT_DOUBLE_EQ((-Picoseconds{40.0}).ps(), -40.0);
  EXPECT_DOUBLE_EQ((2.0 * Picoseconds{40.0}).ps(), 80.0);
  EXPECT_EQ(Picoseconds{40.0}, Picoseconds{40.0});
  EXPECT_GT(Picoseconds{40.0}, -Picoseconds{40.0});
  EXPECT_LE(Millivolts{0.0}, Millivolts{0.0});
}

TEST(Units, RatioEdgeCases) {
  // Ratio of like quantities is dimensionless, including the signed and
  // infinite cases a bathtub fit can produce.
  EXPECT_DOUBLE_EQ(Picoseconds{-200.0} / Picoseconds{400.0}, -0.5);
  EXPECT_DOUBLE_EQ(Picoseconds{0.0} / Picoseconds{400.0}, 0.0);
  EXPECT_TRUE(std::isinf(Picoseconds{1.0} / Picoseconds{0.0}));
  EXPECT_TRUE(std::isnan(Picoseconds{0.0} / Picoseconds{0.0}));
}

TEST(Units, PeriodAndUnitIntervalRoundTrips) {
  // f -> period -> f and rate -> UI -> rate are exact inverses.
  const Gigahertz f{1.25};
  EXPECT_DOUBLE_EQ(1e3 / f.period().ps(), f.ghz());
  const GbitsPerSec rate{5.0};
  EXPECT_DOUBLE_EQ(GbitsPerSec::from_ui(rate.unit_interval()).gbps(),
                   rate.gbps());
}

TEST(Units, UnitIntervalsScaleToAbsoluteTime) {
  const UnitIntervals opening{0.88};
  EXPECT_DOUBLE_EQ(opening.ui(), 0.88);
  EXPECT_DOUBLE_EQ(opening.at(Picoseconds{400.0}).ps(), 352.0);
  EXPECT_LT(UnitIntervals{0.5}, UnitIntervals{0.88});
}

TEST(Units, SlewRateDimensionalAnalysis) {
  const MvPerPs slope = Millivolts{800.0} / Picoseconds{120.0};
  EXPECT_NEAR(slope.mv_per_ps(), 6.6667, 1e-3);
  // slope * dt recovers the voltage change, in either operand order.
  EXPECT_NEAR((slope * Picoseconds{120.0}).mv(), 800.0, 1e-9);
  EXPECT_NEAR((Picoseconds{60.0} * slope).mv(), 400.0, 1e-9);
}

// ---------------------------------------------------------------- error --

TEST(Error, CheckWithMessagePassesSilently) {
  EXPECT_NO_THROW(MGT_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(MGT_CHECK(true, "never shown"));
}

TEST(Error, CheckFailureNamesConditionAndLocation) {
  const int lanes = 0;
  try {
    MGT_CHECK(lanes > 0);  // this line number appears in the message
    FAIL() << "MGT_CHECK did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lanes > 0"), std::string::npos) << what;
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("check failed"), std::string::npos) << what;
    // file:line formatting with a plausible line number.
    EXPECT_NE(what.find(":"), std::string::npos) << what;
  }
}

TEST(Error, CheckCarriesOptionalMessageViaVaOpt) {
  // The __VA_OPT__ branch: a second argument lands in parentheses.
  try {
    MGT_CHECK(2 + 2 == 5, "arithmetic is broken");
    FAIL() << "MGT_CHECK did not throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
    EXPECT_NE(what.find("(arithmetic is broken)"), std::string::npos) << what;
  }
  // And without one, no empty parentheses are appended.
  try {
    MGT_CHECK(false);
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()).find("()"), std::string::npos);
  }
}

TEST(Error, CheckLineNumberMatchesCallSite) {
  const std::size_t expected_line = __LINE__ + 2;  // the MGT_CHECK below
  try {
    MGT_CHECK(false);
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(":" + std::to_string(expected_line) + ":"),
              std::string::npos)
        << what;
  }
}

TEST(Error, ErrorIsARuntimeError) {
  // Callers may catch std::exception; the message must survive the slice.
  try {
    throw Error("bring-up failed");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "bring-up failed");
  }
}

// ------------------------------------------------------------------ rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 5.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.uniform());
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.add(rng.gaussian(3.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), Error);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.fork();
  // Parent and child should not produce the same sequence.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += parent.next() == child.next() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(29);
  Rng b(29);
  Rng ca = a.fork();
  Rng cb = b.fork();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(ca.next(), cb.next());
    EXPECT_EQ(a.next(), b.next());
  }
}

// --------------------------------------------------------------- bitvec --

TEST(BitVector, BasicSetGet) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_FALSE(v.get(42));
  v.set(42, true);
  EXPECT_TRUE(v.get(42));
  EXPECT_TRUE(v[42]);
  v.set(42, false);
  EXPECT_FALSE(v.get(42));
}

TEST(BitVector, OutOfRangeThrows) {
  BitVector v(10);
  EXPECT_THROW(v.get(10), Error);
  EXPECT_THROW(v.set(10, true), Error);
}

TEST(BitVector, FillConstructorKeepsPopcountHonest) {
  BitVector v(70, true);
  EXPECT_EQ(v.popcount(), 70u);
  BitVector w(64, true);
  EXPECT_EQ(w.popcount(), 64u);
}

TEST(BitVector, FromStringIgnoresSeparators) {
  const auto v = BitVector::from_string("1010 1100_11");
  EXPECT_EQ(v.size(), 10u);
  EXPECT_EQ(v.to_string(), "1010110011");
}

TEST(BitVector, PushBackAndAppend) {
  BitVector v;
  for (int i = 0; i < 130; ++i) {
    v.push_back(i % 3 == 0);
  }
  EXPECT_EQ(v.size(), 130u);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_TRUE(v.get(129));

  BitVector w = BitVector::from_string("11");
  w.append(BitVector::from_string("00"));
  EXPECT_EQ(w.to_string(), "1100");
}

TEST(BitVector, HammingDistance) {
  const auto a = BitVector::from_string("10101010");
  const auto b = BitVector::from_string("10011010");
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
  EXPECT_THROW(a.hamming_distance(BitVector(7)), Error);
}

TEST(BitVector, TransitionsAndRuns) {
  const auto v = BitVector::from_string("11100110");
  EXPECT_EQ(v.transition_count(), 3u);
  EXPECT_EQ(v.longest_run(), 3u);
  EXPECT_EQ(BitVector().longest_run(), 0u);
  EXPECT_EQ(BitVector::alternating(10).transition_count(), 9u);
}

TEST(BitVector, Slice) {
  const auto v = BitVector::from_string("0011010111");
  EXPECT_EQ(v.slice(2, 4).to_string(), "1101");
  EXPECT_THROW(v.slice(8, 4), Error);
}

class InterleaveRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InterleaveRoundTrip, DeinterleaveInvertsInterleave) {
  const std::size_t k = GetParam();
  Rng rng(k * 7919);
  std::vector<BitVector> lanes;
  for (std::size_t i = 0; i < k; ++i) {
    lanes.push_back(BitVector::random(64, rng));
  }
  const BitVector serial = BitVector::interleave(lanes);
  EXPECT_EQ(serial.size(), 64 * k);
  const auto back = serial.deinterleave(k);
  ASSERT_EQ(back.size(), k);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(back[i], lanes[i]) << "lane " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Lanes, InterleaveRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(BitVector, InterleaveOrdering) {
  // a0 b0 a1 b1 ...
  const auto a = BitVector::from_string("1111");
  const auto b = BitVector::from_string("0000");
  EXPECT_EQ(BitVector::interleave({a, b}).to_string(), "10101010");
}

TEST(BitVector, InterleaveRequiresEqualLanes) {
  EXPECT_THROW(BitVector::interleave(
                   {BitVector(4), BitVector(5)}),
               Error);
  EXPECT_THROW(BitVector::interleave({}), Error);
  EXPECT_THROW(BitVector(10).deinterleave(3), Error);
}

TEST(BitVector, RandomIsSeedDeterministic) {
  Rng a(5);
  Rng b(5);
  EXPECT_EQ(BitVector::random(999, a), BitVector::random(999, b));
}

// ---------------------------------------------------------------- stats --

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats s;
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 10.0};
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / 5.0;
  double var = 0.0;
  for (double x : xs) {
    var += (x - mean) * (x - mean);
  }
  var /= 5.0;
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.peak_to_peak(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.peak_to_peak(), 0.0);
}

TEST(RunningStats, MergeEqualsSinglePass) {
  Rng rng(31);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(1.0, 3.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.stddev(), whole.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, RmsVersusStddev) {
  RunningStats s;
  s.add(3.0);
  s.add(-3.0);
  EXPECT_DOUBLE_EQ(s.rms(), 3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 3.0);
  RunningStats offset;
  offset.add(5.0);
  offset.add(5.0);
  EXPECT_DOUBLE_EQ(offset.rms(), 5.0);
  EXPECT_DOUBLE_EQ(offset.stddev(), 0.0);
}

TEST(Histogram, CountsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.5);
  h.add(9.99);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Histogram, QuantileLinearInterpolation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<double>(i) + 0.5);
  }
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
  EXPECT_THROW(h.quantile(1.5), Error);
}

TEST(Histogram, ModeBin) {
  Histogram h(0.0, 3.0, 3);
  h.add(1.5);
  h.add(1.6);
  h.add(0.5);
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

// ---------------------------------------------------------------- table --

TEST(ReportTable, PrintsAllCells) {
  ReportTable table("Fig X", {"metric", "paper", "measured", "note"});
  table.add_comparison("jitter p-p", "46.7 ps", "45.1 ps", "");
  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("Fig X"), std::string::npos);
  EXPECT_NE(text.find("46.7 ps"), std::string::npos);
  EXPECT_NE(text.find("45.1 ps"), std::string::npos);
}

TEST(ReportTable, RowWidthMismatchThrows) {
  ReportTable table("t", {"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), Error);
}

TEST(Fmt, Formatting) {
  EXPECT_EQ(fmt(46.71, 1), "46.7");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt_unit(0.88, "UI", 2), "0.88 UI");
}

// ---------------------------------------------------------------- error --

TEST(Error, CheckMacroThrowsWithLocation) {
  try {
    MGT_CHECK(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(MGT_CHECK(2 + 2 == 4));
}

// ------------------------------------------------------------------ env --

TEST(Env, U64AcceptsOnlyWholeInRangeIntegers) {
  EXPECT_EQ(util::parse_env_u64("64"), 64u);
  EXPECT_EQ(util::parse_env_u64("1"), 1u);
  EXPECT_EQ(util::parse_env_u64("18446744073709551615", 1, ~0ULL), ~0ULL);

  // Unset is not a rejection: the caller just keeps its default.
  EXPECT_EQ(util::parse_env_u64(nullptr), std::nullopt);
  EXPECT_EQ(util::parse_env_u64(""), std::nullopt);

  // Malformed values are rejected whole — never partially parsed.
  EXPECT_EQ(util::parse_env_u64("64x"), std::nullopt);
  EXPECT_EQ(util::parse_env_u64(" 64"), std::nullopt);
  EXPECT_EQ(util::parse_env_u64("-3"), std::nullopt);
  EXPECT_EQ(util::parse_env_u64("0x40"), std::nullopt);
  EXPECT_EQ(util::parse_env_u64("6.4"), std::nullopt);
  EXPECT_EQ(util::parse_env_u64("lots"), std::nullopt);
  // Overflow and range violations reject rather than saturate.
  EXPECT_EQ(util::parse_env_u64("18446744073709551616"), std::nullopt);
  EXPECT_EQ(util::parse_env_u64("0", 1), std::nullopt);
  EXPECT_EQ(util::parse_env_u64("9", 1, 8), std::nullopt);
  EXPECT_EQ(util::parse_env_u64("0", 0, 8), 0u);
}

TEST(Env, SizeMbSharesTheU64GrammarAndReturnsBytes) {
  EXPECT_EQ(util::parse_env_size_mb("1"), 1ull << 20);
  EXPECT_EQ(util::parse_env_size_mb("64"), 64ull << 20);
  EXPECT_EQ(util::parse_env_size_mb("4096"), 4096ull << 20);

  EXPECT_EQ(util::parse_env_size_mb(nullptr), std::nullopt);
  EXPECT_EQ(util::parse_env_size_mb(""), std::nullopt);

  // Same strict grammar as parse_env_u64: units, whitespace, fractions
  // and signs are malformed, never partially parsed.
  EXPECT_EQ(util::parse_env_size_mb("64MB"), std::nullopt);
  EXPECT_EQ(util::parse_env_size_mb(" 64"), std::nullopt);
  EXPECT_EQ(util::parse_env_size_mb("-4"), std::nullopt);
  EXPECT_EQ(util::parse_env_size_mb("1.5"), std::nullopt);

  // The MB→bytes conversion cannot overflow: 2^44-1 MB is the largest
  // representable size; anything past it rejects instead of wrapping.
  EXPECT_EQ(util::parse_env_size_mb("17592186044415"), (~0ULL) & ~0xFFFFFull);
  EXPECT_EQ(util::parse_env_size_mb("17592186044416"), std::nullopt);
  // Range bounds are expressed in MB, matching the knob's unit.
  EXPECT_EQ(util::parse_env_size_mb("0"), std::nullopt);
  EXPECT_EQ(util::parse_env_size_mb("9", 1, 8), std::nullopt);
}

TEST(Env, SizeMbReadsEnvironmentAndCountsRejections) {
  util::reset_env_rejections_for_test();
  setenv("MGT_TEST_SIZE_GOOD", "8", 1);
  setenv("MGT_TEST_SIZE_BAD", "8MB", 1);

  const util::EnvValue<std::uint64_t> good =
      util::env_size_mb("MGT_TEST_SIZE_GOOD");
  const util::EnvValue<std::uint64_t> bad =
      util::env_size_mb("MGT_TEST_SIZE_BAD");
  const util::EnvValue<std::uint64_t> unset =
      util::env_size_mb("MGT_TEST_SIZE_UNSET");

  EXPECT_TRUE(good.parsed());
  EXPECT_EQ(good.value, 8ull << 20);
  EXPECT_TRUE(bad.rejected());
  EXPECT_EQ(bad.value_or(123), 123u) << "rejection keeps the caller's default";
  EXPECT_EQ(unset.status, util::EnvParseStatus::kUnset);
  EXPECT_EQ(util::env_rejections(), 1u);
  EXPECT_EQ(util::env_rejected_names(), "MGT_TEST_SIZE_BAD");

  unsetenv("MGT_TEST_SIZE_GOOD");
  unsetenv("MGT_TEST_SIZE_BAD");
  util::reset_env_rejections_for_test();
}

TEST(Env, FlagAcceptsOnlyCanonicalSpellings) {
  EXPECT_EQ(util::parse_env_flag("0"), false);
  EXPECT_EQ(util::parse_env_flag("off"), false);
  EXPECT_EQ(util::parse_env_flag("false"), false);
  EXPECT_EQ(util::parse_env_flag("1"), true);
  EXPECT_EQ(util::parse_env_flag("on"), true);
  EXPECT_EQ(util::parse_env_flag("true"), true);

  EXPECT_EQ(util::parse_env_flag(nullptr), std::nullopt);
  EXPECT_EQ(util::parse_env_flag(""), std::nullopt);
  EXPECT_EQ(util::parse_env_flag("yes"), std::nullopt);
  EXPECT_EQ(util::parse_env_flag("OFF"), std::nullopt);
  EXPECT_EQ(util::parse_env_flag("2"), std::nullopt);
}

TEST(Env, RejectionsAreCountedAndNamed) {
  util::reset_env_rejections_for_test();
  EXPECT_EQ(util::env_rejections(), 0u);
  EXPECT_EQ(util::env_rejected_names(), "");

  setenv("MGT_TEST_KNOB_A", "garbage", 1);
  setenv("MGT_TEST_KNOB_B", "definitely", 1);
  setenv("MGT_TEST_KNOB_C", "32", 1);

  const util::EnvValue<std::uint64_t> a = util::env_u64("MGT_TEST_KNOB_A");
  const util::EnvValue<bool> b = util::env_flag("MGT_TEST_KNOB_B");
  const util::EnvValue<std::uint64_t> c = util::env_u64("MGT_TEST_KNOB_C");
  const util::EnvValue<std::uint64_t> unset =
      util::env_u64("MGT_TEST_KNOB_UNSET");

  EXPECT_TRUE(a.rejected());
  EXPECT_EQ(a.value_or(7), 7u) << "rejection keeps the caller's default";
  EXPECT_TRUE(b.rejected());
  EXPECT_TRUE(c.parsed());
  EXPECT_EQ(c.value_or(7), 32u);
  EXPECT_EQ(unset.status, util::EnvParseStatus::kUnset);

  EXPECT_EQ(util::env_rejections(), 2u);
  EXPECT_EQ(util::env_rejected_names(), "MGT_TEST_KNOB_A,MGT_TEST_KNOB_B");

  // Re-rejecting the same knob counts but does not duplicate the name.
  util::env_u64("MGT_TEST_KNOB_A");
  EXPECT_EQ(util::env_rejections(), 3u);
  EXPECT_EQ(util::env_rejected_names(), "MGT_TEST_KNOB_A,MGT_TEST_KNOB_B");

  // Domain-specific parsers feed the same totals.
  util::note_env_rejection("MGT_TEST_KNOB_D");
  EXPECT_EQ(util::env_rejections(), 4u);
  EXPECT_EQ(util::env_rejected_names(),
            "MGT_TEST_KNOB_A,MGT_TEST_KNOB_B,MGT_TEST_KNOB_D");

  unsetenv("MGT_TEST_KNOB_A");
  unsetenv("MGT_TEST_KNOB_B");
  unsetenv("MGT_TEST_KNOB_C");
  util::reset_env_rejections_for_test();
}

}  // namespace
}  // namespace mgt
