// Unit tests for src/signal: edge streams, jitter, filters, rendering,
// sinks and channels.
#include <gtest/gtest.h>

#include <cmath>

#include "signal/channel.hpp"
#include "signal/edge.hpp"
#include "signal/filter.hpp"
#include "signal/jitter.hpp"
#include "signal/levels.hpp"
#include "signal/render.hpp"
#include "signal/sinks.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mgt::sig {
namespace {

using mgt::BitVector;
using mgt::Rng;
using mgt::RunningStats;

// ------------------------------------------------------------ EdgeStream --

TEST(EdgeStream, FromBitsPlacesTransitionsAtBoundaries) {
  const auto bits = BitVector::from_string("0110");
  const auto s = EdgeStream::from_bits(bits, Picoseconds{400.0});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_FALSE(s.initial_level());
  EXPECT_DOUBLE_EQ(s.transitions()[0].time.ps(), 400.0);
  EXPECT_TRUE(s.transitions()[0].level);
  EXPECT_DOUBLE_EQ(s.transitions()[1].time.ps(), 1200.0);
  EXPECT_FALSE(s.transitions()[1].level);
  EXPECT_TRUE(s.well_formed());
}

class NrzRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(NrzRoundTrip, ToBitsRecoversFromBits) {
  const Picoseconds ui{GetParam()};
  Rng rng(99);
  const auto bits = BitVector::random(500, rng);
  const auto s = EdgeStream::from_bits(bits, ui, Picoseconds{123.0});
  EXPECT_EQ(s.to_bits(500, ui, Picoseconds{123.0}), bits);
}

INSTANTIATE_TEST_SUITE_P(UnitIntervals, NrzRoundTrip,
                         ::testing::Values(1000.0, 400.0, 250.0, 200.0));

TEST(EdgeStream, JitterRoundTripStillRecovers) {
  // Jitter well below UI/2 must not corrupt center-sampled data.
  Rng rng(7);
  Rng jrng(8);
  const Picoseconds ui{400.0};
  const auto bits = BitVector::random(2000, rng);
  auto offset = [&](std::size_t, Picoseconds) {
    return Picoseconds{jrng.gaussian(0.0, 20.0)};
  };
  const auto s = EdgeStream::from_bits(bits, ui, Picoseconds{0.0}, offset);
  EXPECT_TRUE(s.well_formed());
  EXPECT_EQ(s.to_bits(2000, ui), bits);
}

TEST(EdgeStream, ExtremeJitterKeepsMonotonicity) {
  Rng jrng(9);
  const auto bits = BitVector::alternating(1000);
  auto offset = [&](std::size_t, Picoseconds) {
    return Picoseconds{jrng.gaussian(0.0, 300.0)};  // > UI/2: pulse collapse
  };
  const auto s = EdgeStream::from_bits(bits, Picoseconds{400.0},
                                       Picoseconds{0.0}, offset);
  EXPECT_TRUE(s.well_formed());
}

TEST(EdgeStream, Clock) {
  const auto clk = EdgeStream::clock(Picoseconds{800.0}, 3);
  ASSERT_EQ(clk.size(), 6u);
  EXPECT_TRUE(clk.transitions()[0].level);  // rising first
  EXPECT_DOUBLE_EQ(clk.transitions()[0].time.ps(), 0.0);
  EXPECT_DOUBLE_EQ(clk.transitions()[1].time.ps(), 400.0);
  EXPECT_DOUBLE_EQ(clk.transitions()[5].time.ps(), 2000.0);
}

TEST(EdgeStream, LevelAt) {
  const auto s = EdgeStream::from_bits(BitVector::from_string("0101"),
                                       Picoseconds{100.0});
  EXPECT_FALSE(s.level_at(Picoseconds{50.0}));
  EXPECT_TRUE(s.level_at(Picoseconds{150.0}));
  EXPECT_FALSE(s.level_at(Picoseconds{250.0}));
  EXPECT_TRUE(s.level_at(Picoseconds{1e9}));
  EXPECT_FALSE(s.level_at(Picoseconds{-10.0}));
}

TEST(EdgeStream, ShiftAndInvert) {
  const auto s = EdgeStream::from_bits(BitVector::from_string("01"),
                                       Picoseconds{100.0});
  const auto shifted = s.shifted(Picoseconds{37.0});
  EXPECT_DOUBLE_EQ(shifted.transitions()[0].time.ps(), 137.0);
  const auto inv = s.inverted();
  EXPECT_TRUE(inv.initial_level());
  EXPECT_FALSE(inv.transitions()[0].level);
}

TEST(EdgeStream, XorBehavesAsGate) {
  const Picoseconds ui{100.0};
  const auto a_bits = BitVector::from_string("00110101");
  const auto b_bits = BitVector::from_string("01010011");
  const auto a = EdgeStream::from_bits(a_bits, ui);
  const auto b = EdgeStream::from_bits(b_bits, ui);
  const auto x = a.xor_with(b);
  EXPECT_TRUE(x.well_formed());
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(x.level_at(Picoseconds{(static_cast<double>(k) + 0.5) * 100.0}),
              a_bits.get(k) != b_bits.get(k))
        << "bit " << k;
  }
}

TEST(EdgeStream, PushValidation) {
  EdgeStream s(false);
  s.push(Picoseconds{10.0}, true);
  EXPECT_THROW(s.push(Picoseconds{5.0}, false), Error);   // time reversal
  EXPECT_THROW(s.push(Picoseconds{20.0}, true), Error);   // no level change
  s.push(Picoseconds{20.0}, false);
  EXPECT_EQ(s.size(), 2u);
}

TEST(EdgeStream, Window) {
  const auto s = EdgeStream::from_bits(BitVector::alternating(10),
                                       Picoseconds{100.0});
  const auto w = s.window(Picoseconds{250.0}, Picoseconds{650.0});
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w.front().time.ps(), 300.0);
  EXPECT_DOUBLE_EQ(w.back().time.ps(), 600.0);
}

// --------------------------------------------------------------- jitter --

TEST(Jitter, RjSigmaIsRealized) {
  JitterSpec spec;
  spec.rj_sigma = Picoseconds{3.2};
  JitterSource src(spec, Rng(42));
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(src.offset(true, Picoseconds{0.0}).ps());
  }
  EXPECT_NEAR(stats.stddev(), 3.2, 0.1);
  EXPECT_NEAR(stats.mean(), 0.0, 0.1);
}

TEST(Jitter, DualDiracIsBimodalAndBounded) {
  JitterSpec spec;
  spec.dj_pp = Picoseconds{20.0};
  JitterSource src(spec, Rng(43));
  bool saw_plus = false;
  bool saw_minus = false;
  for (int i = 0; i < 1000; ++i) {
    const double dt = src.offset(true, Picoseconds{0.0}).ps();
    EXPECT_TRUE(std::abs(std::abs(dt) - 10.0) < 1e-12);
    saw_plus |= dt > 0;
    saw_minus |= dt < 0;
  }
  EXPECT_TRUE(saw_plus);
  EXPECT_TRUE(saw_minus);
}

TEST(Jitter, DcdSplitsByEdgeDirection) {
  JitterSpec spec;
  spec.dcd_pp = Picoseconds{8.0};
  JitterSource src(spec, Rng(44));
  EXPECT_DOUBLE_EQ(src.offset(true, Picoseconds{0.0}).ps(), 4.0);
  EXPECT_DOUBLE_EQ(src.offset(false, Picoseconds{0.0}).ps(), -4.0);
}

TEST(Jitter, PeriodicJitterFollowsSine) {
  JitterSpec spec;
  spec.pj_amplitude = Picoseconds{5.0};
  spec.pj_frequency = Gigahertz{0.001};  // period = 1e6 ps
  JitterSource src(spec, Rng(45));
  EXPECT_NEAR(src.offset(true, Picoseconds{0.0}).ps(), 0.0, 1e-9);
  EXPECT_NEAR(src.offset(true, Picoseconds{250000.0}).ps(), 5.0, 1e-6);
  EXPECT_NEAR(src.offset(true, Picoseconds{750000.0}).ps(), -5.0, 1e-6);
}

TEST(Jitter, ApplyPreservesWellFormedness) {
  JitterSpec spec;
  spec.rj_sigma = Picoseconds{50.0};
  JitterSource src(spec, Rng(46));
  const auto in = EdgeStream::from_bits(BitVector::alternating(500),
                                        Picoseconds{200.0});
  const auto out = src.apply(in);
  EXPECT_TRUE(out.well_formed());
  EXPECT_EQ(out.size(), in.size());
}

TEST(Jitter, ExpectedGaussianPpGrowsWithN) {
  const double pp_1k = expected_gaussian_pp(1000, 3.2);
  const double pp_10k = expected_gaussian_pp(10000, 3.2);
  EXPECT_GT(pp_10k, pp_1k);
  // Paper's Fig 9: 3.2 ps rms shows ~24 ps p-p on a 10^4-edge acquisition.
  EXPECT_NEAR(pp_10k, 24.0, 2.0);
  EXPECT_EQ(expected_gaussian_pp(0, 3.2), 0.0);
  EXPECT_EQ(expected_gaussian_pp(100, 0.0), 0.0);
}

TEST(Jitter, TotalJitterAddsDjToRj) {
  EXPECT_NEAR(expected_total_jitter_pp(10000, 3.2, 23.0), 47.0, 2.0);
}

// --------------------------------------------------------------- filter --

TEST(Filter, SinglePoleRiseTime) {
  EXPECT_NEAR(single_pole_rise_2080(Picoseconds{50.0}).ps(),
              50.0 * std::log(4.0), 1e-9);
  EXPECT_NEAR(tau_for_rise_2080(Picoseconds{70.0}).ps(), 70.0 / std::log(4.0),
              1e-9);
}

TEST(Filter, StepResponseMatchesAnalytic) {
  FilterChain chain;
  const double tau = 50.0;
  chain.add_pole(Picoseconds{tau});
  chain.reset(Millivolts{0.0});
  // Step to 1000 mV, advance in odd-sized steps; compare to 1 - e^{-t/tau}.
  double t = 0.0;
  for (double dt : {3.0, 7.0, 11.0, 29.0, 50.0, 100.0}) {
    chain.step(Millivolts{1000.0}, Picoseconds{dt});
    t += dt;
    const double expected = 1000.0 * (1.0 - std::exp(-t / tau));
    EXPECT_NEAR(chain.output().mv(), expected, 1e-6) << "t=" << t;
  }
}

TEST(Filter, StepExactnessIndependentOfStepSize) {
  // The exponential update is exact for constant input: fine and coarse
  // stepping must agree to machine precision.
  FilterChain fine;
  FilterChain coarse;
  fine.add_pole(Picoseconds{36.0});
  coarse.add_pole(Picoseconds{36.0});
  fine.reset(Millivolts{0.0});
  coarse.reset(Millivolts{0.0});
  for (int i = 0; i < 1000; ++i) {
    fine.step(Millivolts{500.0}, Picoseconds{0.1});
  }
  coarse.step(Millivolts{500.0}, Picoseconds{100.0});
  EXPECT_NEAR(fine.output().mv(), coarse.output().mv(), 1e-6);
}

TEST(Filter, GainActsAroundMidpoint) {
  FilterChain chain;
  chain.set_gain(0.5, Millivolts{2000.0});
  chain.reset(Millivolts{2400.0});
  EXPECT_NEAR(chain.output().mv(), 2200.0, 1e-9);  // 2000 + 0.5*400
  chain.step(Millivolts{1600.0}, Picoseconds{1.0});
  EXPECT_NEAR(chain.output().mv(), 1800.0, 1e-9);  // no poles: passthrough
}

TEST(Filter, RiseEstimateAndGroupDelay) {
  FilterChain chain;
  chain.add_pole_rise_2080(Picoseconds{60.0});
  chain.add_pole_rise_2080(Picoseconds{80.0});
  EXPECT_NEAR(chain.rise_2080_estimate().ps(), 100.0, 1e-9);  // 3-4-5
  EXPECT_NEAR(chain.group_delay().ps(),
              (60.0 + 80.0) / std::log(4.0), 1e-9);
  EXPECT_EQ(chain.pole_count(), 2u);
}

TEST(Filter, InvalidPoleThrows) {
  FilterChain chain;
  EXPECT_THROW(chain.add_pole(Picoseconds{0.0}), Error);
  EXPECT_THROW(chain.add_pole(Picoseconds{-5.0}), Error);
  EXPECT_THROW(chain.set_gain(0.0, Millivolts{0.0}), Error);
}

// --------------------------------------------------------------- render --

TEST(Render, SquareWaveLevelsAndCrossings) {
  const auto s = EdgeStream::from_bits(BitVector::alternating(20, true),
                                       Picoseconds{400.0});
  FilterChain chain;
  chain.add_pole_rise_2080(Picoseconds{60.0});
  RenderConfig config;
  config.levels = PeclLevels{Millivolts{2400.0}, Millivolts{1600.0}};
  CrossingRecorder crossings(Millivolts{2000.0});
  AmplitudeTracker amplitude(Millivolts{2000.0});
  render(s, chain, config, Picoseconds{0.0}, Picoseconds{8000.0},
         {&crossings, &amplitude});

  // 19 interior transitions -> 19 threshold crossings.
  EXPECT_EQ(crossings.crossings().size(), 19u);
  EXPECT_NEAR(amplitude.settled_high().mv(), 2400.0, 5.0);
  EXPECT_NEAR(amplitude.settled_low().mv(), 1600.0, 5.0);
}

TEST(Render, CrossingTimeMatchesSinglePoleAnalytic) {
  // One rising step through a single pole: 50 % crossing at tau*ln(2).
  EdgeStream s(false);
  s.push(Picoseconds{1000.0}, true);
  FilterChain chain;
  const double tau = 40.0;
  chain.add_pole(Picoseconds{tau});
  RenderConfig config;
  config.levels = PeclLevels{Millivolts{1000.0}, Millivolts{0.0}};
  config.sample_step = Picoseconds{0.5};
  CrossingRecorder crossings(Millivolts{500.0});
  render(s, chain, config, Picoseconds{0.0}, Picoseconds{2000.0},
         {&crossings});
  ASSERT_EQ(crossings.crossings().size(), 1u);
  EXPECT_TRUE(crossings.crossings()[0].rising);
  EXPECT_NEAR(crossings.crossings()[0].time.ps(),
              1000.0 + tau * std::log(2.0), 0.05);
}

TEST(Render, TransitionsWithinOneSampleStepAreExact) {
  // An edge at a non-grid time must not be quantized to the grid.
  EdgeStream s(false);
  s.push(Picoseconds{1000.37}, true);
  FilterChain chain;
  chain.add_pole(Picoseconds{30.0});
  RenderConfig config;
  config.levels = PeclLevels{Millivolts{1000.0}, Millivolts{0.0}};
  config.sample_step = Picoseconds{2.0};  // coarse grid
  CrossingRecorder crossings(Millivolts{500.0});
  render(s, chain, config, Picoseconds{0.0}, Picoseconds{2000.0},
         {&crossings});
  ASSERT_EQ(crossings.crossings().size(), 1u);
  EXPECT_NEAR(crossings.crossings()[0].time.ps(),
              1000.37 + 30.0 * std::log(2.0), 0.1);
}

TEST(Render, EmptyWindowThrows) {
  EdgeStream s(false);
  FilterChain chain;
  RenderConfig config;
  EXPECT_THROW(render(s, chain, config, Picoseconds{10.0}, Picoseconds{10.0},
                      {}),
               Error);
}

// ---------------------------------------------------------------- sinks --

TEST(Sinks, WaveformTraceDecimates) {
  WaveformTrace trace(10);
  for (int i = 0; i < 100; ++i) {
    trace.on_sample(Picoseconds{static_cast<double>(i)}, Millivolts{0.0});
  }
  EXPECT_EQ(trace.size(), 10u);
}

TEST(Sinks, StrobeSamplerCapturesPattern) {
  const auto bits = BitVector::from_string("1011001110001011");
  const Picoseconds ui{200.0};
  const auto s = EdgeStream::from_bits(bits, ui);
  FilterChain chain;
  chain.add_pole_rise_2080(Picoseconds{40.0});

  std::vector<Picoseconds> strobes;
  for (std::size_t k = 1; k + 1 < bits.size(); ++k) {
    // Center of bit k plus the chain's group delay.
    strobes.push_back(Picoseconds{(static_cast<double>(k) + 0.5) * 200.0 +
                                  chain.group_delay().ps()});
  }
  StrobeSampler::Config config;
  config.threshold = Millivolts{2000.0};
  StrobeSampler sampler(strobes, config, Rng(4));

  RenderConfig render_config;
  render_config.levels = PeclLevels{Millivolts{2400.0}, Millivolts{1600.0}};
  render(s, chain, render_config, Picoseconds{0.0},
         Picoseconds{200.0 * 17.0}, {&sampler});

  EXPECT_EQ(sampler.missed(), 0u);
  for (std::size_t k = 1; k + 1 < bits.size(); ++k) {
    EXPECT_EQ(sampler.bits().get(k - 1), bits.get(k)) << "bit " << k;
  }
}

TEST(Sinks, StrobeSamplerRequiresSortedStrobes) {
  StrobeSampler::Config config;
  EXPECT_THROW(StrobeSampler({Picoseconds{10.0}, Picoseconds{5.0}}, config,
                             Rng(1)),
               Error);
}

TEST(Sinks, StrobeSamplerMissedStrobesAreCounted) {
  StrobeSampler::Config config;
  StrobeSampler sampler({Picoseconds{5000.0}}, config, Rng(1));
  sampler.on_sample(Picoseconds{0.0}, Millivolts{0.0});
  sampler.on_sample(Picoseconds{1.0}, Millivolts{0.0});
  sampler.finish();
  EXPECT_EQ(sampler.missed(), 1u);
}

TEST(Sinks, CrossingRecorderInterpolates) {
  CrossingRecorder recorder(Millivolts{500.0});
  recorder.on_sample(Picoseconds{0.0}, Millivolts{0.0});
  recorder.on_sample(Picoseconds{10.0}, Millivolts{1000.0});
  ASSERT_EQ(recorder.crossings().size(), 1u);
  EXPECT_NEAR(recorder.crossings()[0].time.ps(), 5.0, 1e-9);
  EXPECT_TRUE(recorder.crossings()[0].rising);
}

// --------------------------------------------------------------- levels --

TEST(Levels, DerivedQuantities) {
  const PeclLevels levels{Millivolts{2400.0}, Millivolts{1600.0}};
  EXPECT_DOUBLE_EQ(levels.swing().mv(), 800.0);
  EXPECT_DOUBLE_EQ(levels.midpoint().mv(), 2000.0);
  EXPECT_DOUBLE_EQ(levels.at_fraction(0.2).mv(), 1760.0);
}

TEST(Levels, Adjustments) {
  const PeclLevels levels{Millivolts{2400.0}, Millivolts{1600.0}};
  EXPECT_DOUBLE_EQ(levels.with_voh(Millivolts{2300.0}).voh.mv(), 2300.0);
  const auto swung = levels.with_swing(Millivolts{400.0});
  EXPECT_DOUBLE_EQ(swung.swing().mv(), 400.0);
  EXPECT_DOUBLE_EQ(swung.midpoint().mv(), 2000.0);
  const auto moved = levels.with_midpoint(Millivolts{1800.0});
  EXPECT_DOUBLE_EQ(moved.midpoint().mv(), 1800.0);
  EXPECT_DOUBLE_EQ(moved.swing().mv(), 800.0);
  EXPECT_THROW(levels.with_voh(Millivolts{1500.0}), Error);
  EXPECT_THROW(levels.with_swing(Millivolts{-10.0}), Error);
}

TEST(Levels, Attenuated) {
  const PeclLevels levels{Millivolts{2400.0}, Millivolts{1600.0}};
  const auto att = attenuated(levels, 0.5);
  EXPECT_DOUBLE_EQ(att.swing().mv(), 400.0);
  EXPECT_DOUBLE_EQ(att.midpoint().mv(), 2000.0);
}

// -------------------------------------------------------------- channel --

TEST(Channel, PresetsAreValid) {
  for (const auto& channel :
       {Channel::ideal(), Channel::sma_cable(), Channel::compliant_lead(),
        Channel::interposer_trace()}) {
    EXPECT_GT(channel.config().gain, 0.0);
    EXPECT_LE(channel.config().gain, 1.0);
    EXPECT_GE(channel.config().delay.ps(), 0.0);
  }
}

TEST(Channel, PropagateShiftsEdges) {
  const auto s = EdgeStream::from_bits(BitVector::from_string("01"),
                                       Picoseconds{100.0});
  const auto out = Channel::sma_cable().propagate(s);
  EXPECT_DOUBLE_EQ(out.transitions()[0].time.ps(),
                   100.0 + Channel::sma_cable().config().delay.ps());
}

TEST(Channel, ContributeAddsPolesAndGain) {
  FilterChain chain;
  Channel::compliant_lead().contribute(chain, Millivolts{2000.0});
  EXPECT_EQ(chain.pole_count(), 1u);
  EXPECT_LT(chain.gain(), 1.0);
}

TEST(Channel, InvalidGainThrows) {
  Channel::Config config;
  config.gain = 1.5;
  EXPECT_THROW(Channel{config}, Error);
  config.gain = 0.0;
  EXPECT_THROW(Channel{config}, Error);
}

}  // namespace
}  // namespace mgt::sig
