// Property-based sweeps: cross-cutting invariants checked over parameter
// grids and random instances (TEST_P), complementing the per-module unit
// tests.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <functional>
#include <set>
#include <string>
#include <tuple>

#include "analysis/eye.hpp"
#include "digital/dlc.hpp"
#include "digital/jtag.hpp"
#include "digital/pattern.hpp"
#include "digital/sequencer.hpp"
#include "digital/usb.hpp"
#include "minitester/dut.hpp"
#include "pecl/delayline.hpp"
#include "pecl/mux.hpp"
#include "signal/batch.hpp"
#include "signal/render.hpp"
#include "signal/render_cache.hpp"
#include "signal/sinks.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "vortex/fabric.hpp"

namespace mgt {
namespace {

// ---------------------------------------------------------------------------
// Property: NRZ data survives the full analog path (render + sample at
// centers) for any rate/rise/jitter combination where the eye is open.
// ---------------------------------------------------------------------------

class AnalogRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(AnalogRoundTrip, RenderAndSliceRecoverData) {
  const auto [rate_gbps, rise_ps, rj_sigma] = GetParam();
  const Picoseconds ui{1000.0 / rate_gbps};
  Rng data_rng(11);
  Rng jitter_rng(12);
  const auto bits = BitVector::random(600, data_rng);

  auto offset = [&](std::size_t, Picoseconds) {
    return Picoseconds{jitter_rng.gaussian(0.0, rj_sigma)};
  };
  const auto edges = sig::EdgeStream::from_bits(bits, ui, Picoseconds{0.0},
                                                offset);
  sig::FilterChain chain;
  chain.add_pole_rise_2080(Picoseconds{rise_ps});

  std::vector<Picoseconds> strobes;
  for (std::size_t k = 4; k + 4 < bits.size(); ++k) {
    strobes.push_back(Picoseconds{(static_cast<double>(k) + 0.5) * ui.ps() +
                                  chain.group_delay().ps()});
  }
  sig::StrobeSampler sampler(strobes, sig::StrobeSampler::Config{}, Rng(13));
  sig::RenderConfig config;
  config.levels = sig::PeclLevels{};
  sig::render(edges, chain, config, Picoseconds{0.0},
              Picoseconds{static_cast<double>(bits.size()) * ui.ps()},
              {&sampler});

  for (std::size_t k = 4; k + 4 < bits.size(); ++k) {
    ASSERT_EQ(sampler.bits().get(k - 4), bits.get(k))
        << "bit " << k << " at " << rate_gbps << " Gbps, rise " << rise_ps
        << ", rj " << rj_sigma;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AnalogRoundTrip,
    ::testing::Values(std::make_tuple(1.0, 120.0, 5.0),
                      std::make_tuple(2.5, 72.0, 5.0),
                      std::make_tuple(2.5, 120.0, 10.0),
                      std::make_tuple(4.0, 72.0, 8.0),
                      std::make_tuple(5.0, 60.0, 6.0),
                      std::make_tuple(5.0, 100.0, 3.0)));

// ---------------------------------------------------------------------------
// Property: eye opening identity. Inject pure dual-Dirac DJ of known
// peak-to-peak; the measured opening must equal 1 - DJ/UI within a small
// ISI allowance.
// ---------------------------------------------------------------------------

class EyeIdentity : public ::testing::TestWithParam<double> {};

TEST_P(EyeIdentity, OpeningEqualsOneMinusTjOverUi) {
  const double dj = GetParam();
  const Picoseconds ui{400.0};
  Rng data_rng(21);
  Rng jitter_rng(22);
  const auto bits = BitVector::random(6000, data_rng);
  auto offset = [&](std::size_t, Picoseconds) {
    return Picoseconds{jitter_rng.chance(0.5) ? dj / 2.0 : -dj / 2.0};
  };
  const auto edges = sig::EdgeStream::from_bits(bits, ui, Picoseconds{0.0},
                                                offset);
  sig::FilterChain chain;
  chain.add_pole_rise_2080(Picoseconds{40.0});  // fast: tiny ISI

  ana::EyeDiagram::Config config;
  config.ui = ui;
  config.v_lo = Millivolts{1400.0};
  config.v_hi = Millivolts{2600.0};
  config.threshold = Millivolts{2000.0};
  ana::EyeDiagram eye(config);
  sig::RenderConfig render_config;
  render_config.levels = sig::PeclLevels{};
  sig::render(edges, chain, render_config, Picoseconds{800.0},
              Picoseconds{5999.0 * 400.0}, {&eye});
  const auto metrics = eye.metrics();
  EXPECT_NEAR(metrics.eye_opening.ui(), 1.0 - dj / 400.0, 0.02) << "DJ " << dj;
}

INSTANTIATE_TEST_SUITE_P(DjSweep, EyeIdentity,
                         ::testing::Values(20.0, 40.0, 60.0, 80.0, 120.0));

// ---------------------------------------------------------------------------
// Property: serializer round trips for every tree shape.
// ---------------------------------------------------------------------------

class SerializerShapes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializerShapes, DistributeSerializeConsistency) {
  Rng rng(GetParam());
  // Random tree: 1-3 stages, fan-ins from {2,4,8}.
  pecl::SerializerTree::Config config;
  const std::size_t n_stages = 1 + rng.below(3);
  static const std::size_t kFanins[] = {2, 4, 8};
  for (std::size_t s = 0; s < n_stages; ++s) {
    config.stages.push_back(
        pecl::MuxStage{.fan_in = kFanins[rng.below(3)],
                       .skew_pp = Picoseconds{rng.uniform(0.0, 20.0)},
                       .rj_sigma = Picoseconds{rng.uniform(0.0, 2.0)},
                       .prop_delay = Picoseconds{rng.uniform(100.0, 300.0)}});
  }
  pecl::SerializerTree tree(config, rng.fork());
  const std::size_t lanes = tree.total_lanes();

  const auto serial = BitVector::random(lanes * 64, rng);
  // distribute -> interleave is the identity.
  EXPECT_EQ(BitVector::interleave(tree.distribute(serial)), serial);
  // serialize -> center-sample recovers the data (jitter << UI).
  const auto edges = tree.serialize(serial, GbitsPerSec{2.5});
  EXPECT_TRUE(edges.well_formed());
  EXPECT_EQ(edges.to_bits(serial.size(), Picoseconds{400.0},
                          tree.total_prop_delay()),
            serial);
  // skew profile repeats with period = lane count.
  for (std::size_t k = 0; k < lanes; ++k) {
    EXPECT_DOUBLE_EQ(tree.skew_for_bit(k).ps(),
                     tree.skew_for_bit(k + lanes).ps());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerShapes,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Property: USB transactions are never silently wrong. Under any single-
// bit corruption pattern, a register write/read pair either yields the
// correct value or throws — corrupted traffic must not commit bad state.
// ---------------------------------------------------------------------------

class UsbFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UsbFuzz, CorruptionNeverYieldsWrongData) {
  dig::Dlc dlc;
  dig::UsbDevice device(5, dlc.usb_handler());
  dig::UsbHost host(device);
  Rng rng(GetParam());
  host.set_corruptor([&](dig::Wire& wire) {
    // Flip a random bit in ~40 % of packets.
    if (!wire.empty() && rng.chance(0.4)) {
      wire[rng.below(wire.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
  });
  host.set_max_retries(16);

  for (std::uint32_t i = 0; i < 200; ++i) {
    const std::uint32_t value = static_cast<std::uint32_t>(rng.next());
    try {
      host.write_register(dig::reg::kScratch, value);
    } catch (const Error&) {
      continue;  // link gave up: acceptable, state may hold the old value
    }
    try {
      const std::uint32_t read = host.read_register(dig::reg::kScratch);
      EXPECT_EQ(read, value) << "silent corruption at iteration " << i;
    } catch (const Error&) {
      // Read retries exhausted: acceptable.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UsbFuzz,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---------------------------------------------------------------------------
// Property: the TAP state machine always resets, and random scans never
// corrupt IDCODE readout.
// ---------------------------------------------------------------------------

class JtagWalk : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JtagWalk, RandomWalkThenResetAlwaysRecovers) {
  dig::FlashMemory flash(4, 256);
  dig::TapDevice tap(0x2005DA7E, &flash);
  Rng rng(GetParam());
  // Random TMS/TDI walk.
  for (int i = 0; i < 500; ++i) {
    tap.clock(rng.chance(0.5), rng.chance(0.5));
  }
  // Five TMS=1 clocks reset from wherever we ended up.
  for (int i = 0; i < 5; ++i) {
    tap.clock(true, false);
  }
  EXPECT_EQ(tap.state(), dig::TapState::TestLogicReset);
  dig::JtagHost host(tap);
  EXPECT_EQ(host.read_idcode(), 0x2005DA7Eu);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JtagWalk,
                         ::testing::Values(7, 77, 777, 7777));

// ---------------------------------------------------------------------------
// Property: fabric conservation across geometries.
// ---------------------------------------------------------------------------

class FabricGeometries
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(FabricGeometries, ConservationAndCorrectDelivery) {
  const auto [heights, angles] = GetParam();
  vortex::DataVortex fabric(vortex::Geometry::for_heights(heights, angles));
  Rng rng(heights * 31 + angles);
  std::size_t injected = 0;
  std::set<std::uint64_t> ids;
  std::uint64_t next_id = 1;
  std::vector<vortex::Delivery> deliveries;
  for (int slot = 0; slot < 200; ++slot) {
    for (std::size_t port = 0; port < heights; ++port) {
      if (rng.chance(0.5)) {
        vortex::Packet p;
        p.id = next_id++;
        p.destination = static_cast<std::uint32_t>(rng.below(heights));
        if (fabric.inject(std::move(p), port)) {
          ++injected;
        }
      }
    }
    auto out = fabric.step();
    deliveries.insert(deliveries.end(), out.begin(), out.end());
  }
  ASSERT_TRUE(fabric.drain(deliveries, 100000));
  EXPECT_EQ(deliveries.size(), injected);
  for (const auto& d : deliveries) {
    EXPECT_TRUE(ids.insert(d.packet.id).second);
    EXPECT_EQ(d.output_port, d.packet.destination);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FabricGeometries,
    ::testing::Values(std::make_tuple(4, 2), std::make_tuple(4, 5),
                      std::make_tuple(8, 3), std::make_tuple(16, 4),
                      std::make_tuple(32, 4), std::make_tuple(16, 8)));

// ---------------------------------------------------------------------------
// Property: MISR signatures separate distinct streams.
// ---------------------------------------------------------------------------

TEST(MisrProperty, RandomPairsRarelyCollide) {
  Rng rng(9);
  std::size_t collisions = 0;
  for (int i = 0; i < 500; ++i) {
    const auto a = BitVector::random(256, rng);
    auto b = a;
    b.set(rng.below(256), !b.get(rng.below(256)));
    if (a != b && minitester::misr_signature(a) ==
                      minitester::misr_signature(b)) {
      ++collisions;
    }
  }
  // A 16-bit MISR has 2^-16 aliasing probability; 500 trials should see 0.
  EXPECT_EQ(collisions, 0u);
}

TEST(MisrProperty, AllSingleBitErrorsDetected) {
  // Single-bit errors never alias in a MISR (linearity: the signature
  // difference is the error bit's own response, which is nonzero).
  Rng rng(10);
  const auto base = BitVector::random(400, rng);
  const auto golden = minitester::misr_signature(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    auto mutated = base;
    mutated.set(i, !mutated.get(i));
    ASSERT_NE(minitester::misr_signature(mutated), golden) << "bit " << i;
  }
}

// ---------------------------------------------------------------------------
// Property: delay-line parts meet spec across manufacturing instances.
// ---------------------------------------------------------------------------

class DelayLineLot : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DelayLineLot, EveryPartWithinAccuracySpec) {
  pecl::ProgrammableDelay part(pecl::ProgrammableDelay::Config{},
                               Rng(GetParam()));
  EXPECT_LE(part.worst_case_error().ps(), 25.0);
  // Delay strictly increases over spans of 4 codes (local monotonicity
  // within mismatch noise).
  for (std::size_t c = 0; c + 4 < part.code_count(); c += 4) {
    EXPECT_LT(part.actual_delay(c).ps(), part.actual_delay(c + 4).ps());
  }
}

INSTANTIATE_TEST_SUITE_P(Lot, DelayLineLot,
                         ::testing::Range<std::uint64_t>(100, 116));

// ---------------------------------------------------------------------------
// Property: sequencer loops == pattern-memory looping.
// ---------------------------------------------------------------------------

class SequencerVsMemory : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SequencerVsMemory, LoopedBankMatchesLoopedMemory) {
  Rng rng(GetParam());
  const std::size_t cell = 8 + rng.below(24);
  const std::size_t reps = 2 + rng.below(6);
  const auto pattern = BitVector::random(cell, rng);

  std::map<std::uint32_t, BitVector> banks;
  banks[0] = pattern;
  dig::TestSequencer sequencer(
      {dig::seq::emit_pattern(0, static_cast<std::uint32_t>(reps)),
       dig::seq::halt()},
      banks);

  dig::PatternMemory memory;
  memory.load(pattern);
  EXPECT_EQ(sequencer.run(), memory.read(cell * reps));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequencerVsMemory,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Property: RunningStats merge is order-insensitive.
// ---------------------------------------------------------------------------

class StatsMerge : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsMerge, AnySplitMatchesSinglePass) {
  Rng rng(GetParam());
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(rng.gaussian(rng.uniform(-5.0, 5.0), rng.uniform(0.1, 4.0)));
  }
  RunningStats whole;
  for (double x : xs) {
    whole.add(x);
  }
  const std::size_t cut = 1 + rng.below(xs.size() - 2);
  RunningStats a;
  RunningStats b;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < cut ? a : b).add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.stddev(), whole.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsMerge,
                         ::testing::Range<std::uint64_t>(40, 52));

// ---------------------------------------------------------------------------
// Property: for ANY randomly drawn engine configuration, the batched /
// cached / chunked / parallel render pipeline is byte-identical to the
// scalar, cache-off, serial reference. Failures shrink greedily to a
// minimal failing configuration, printed on one line so it can be pasted
// straight into a regression test.
// ---------------------------------------------------------------------------

/// One randomly drawn engine configuration (everything the pipelines vary).
struct EngineConfig {
  std::uint64_t seed = 0;
  std::size_t n_bits = 32;
  double ui_ps = 400.0;
  std::vector<double> taus_ps;
  double gain = 1.0;
  double jitter_ps = 0.0;
  std::size_t chunk_samples = 4096;
  std::size_t settle_samples = 2048;
  std::size_t threads = 0;
};

std::string describe(const EngineConfig& c) {
  std::string s = "seed=" + std::to_string(c.seed) +
                  " n_bits=" + std::to_string(c.n_bits) +
                  " ui_ps=" + std::to_string(c.ui_ps) + " taus=[";
  for (std::size_t i = 0; i < c.taus_ps.size(); ++i) {
    s += (i ? "," : "") + std::to_string(c.taus_ps[i]);
  }
  s += "] gain=" + std::to_string(c.gain) +
       " jitter_ps=" + std::to_string(c.jitter_ps) +
       " chunk=" + std::to_string(c.chunk_samples) +
       " settle=" + std::to_string(c.settle_samples) +
       " threads=" + std::to_string(c.threads);
  return s;
}

EngineConfig draw_config(Rng& rng) {
  EngineConfig c;
  c.seed = rng.next();
  c.n_bits = 8 + rng.below(56);
  c.ui_ps = rng.uniform(100.0, 500.0);
  const std::size_t poles = rng.below(4);  // 0..3
  for (std::size_t i = 0; i < poles; ++i) {
    c.taus_ps.push_back(rng.uniform(5.0, 60.0));
  }
  c.gain = rng.uniform(0.7, 1.0);
  c.jitter_ps = rng.uniform(0.0, 6.0);
  c.chunk_samples = 512 + rng.below(8192);
  c.settle_samples = rng.below(4096);  // 0 allowed: regression territory
  const std::size_t thread_choices[] = {0, 1, 2, 5};
  c.threads = thread_choices[rng.below(4)];
  return c;
}

std::vector<std::uint64_t> eye_bits_fingerprint(const ana::EyeDiagram& eye) {
  std::vector<std::uint64_t> fp;
  fp.push_back(eye.total_samples());
  for (std::size_t tb = 0; tb < eye.config().time_bins; ++tb) {
    for (std::size_t vb = 0; vb < eye.config().volt_bins; ++vb) {
      fp.push_back(eye.count_at(tb, vb));
    }
  }
  for (const sig::Crossing& cr : eye.crossings()) {
    fp.push_back(std::bit_cast<std::uint64_t>(cr.time.ps()));
    fp.push_back(cr.rising ? 1u : 0u);
  }
  fp.push_back(std::bit_cast<std::uint64_t>(eye.eye_height().mv()));
  return fp;
}

ana::EyeDiagram property_eye(const EngineConfig& c,
                             const sig::RenderChunking& chunking) {
  Rng rng(c.seed);
  const auto bits = BitVector::random(c.n_bits, rng);
  // Pure per-index jitter so both pipelines build identical streams.
  const double amp = c.jitter_ps;
  const std::uint64_t jseed = c.seed ^ 0xD6E8FEB86659FD93ULL;
  auto offset = [amp, jseed](std::size_t idx, Picoseconds) {
    std::uint64_t z = jseed + 0x9E3779B97F4A7C15ULL * (idx + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return Picoseconds{(2.0 * static_cast<double>(z >> 11) * 0x1.0p-53 - 1.0) *
                       amp};
  };
  const auto stream = sig::EdgeStream::from_bits(bits, Picoseconds{c.ui_ps},
                                                 Picoseconds{0}, offset);
  sig::FilterChain chain;
  for (double tau : c.taus_ps) {
    chain.add_pole(Picoseconds{tau});
  }
  chain.set_gain(c.gain, sig::PeclLevels{}.midpoint());
  ana::EyeDiagram::Config eye_cfg;
  eye_cfg.ui = Picoseconds{c.ui_ps};
  eye_cfg.time_bins = 32;
  eye_cfg.volt_bins = 16;
  return ana::accumulate_eye(
      stream, chain, sig::RenderConfig{}, Picoseconds{0},
      Picoseconds{static_cast<double>(c.n_bits) * c.ui_ps}, eye_cfg, chunking);
}

/// Property 1: for a FIXED chunk decomposition, the full pipeline (active
/// SIMD backend, cache on — cold then warm — parallel) is byte-identical
/// to the reference (forced scalar, cache off, serial). Holds at ANY
/// settle depth, including the drawn settle_samples == 0.
bool pipeline_equivalence_holds(const EngineConfig& c) {
  const sig::RenderChunking chunking{c.chunk_samples, c.settle_samples};
  std::vector<std::uint64_t> reference;
  {
    sig::ScopedSimdBackend scalar(sig::SimdBackend::kScalar);
    sig::ScopedRenderCache cache_off(false);
    util::ScopedThreads serial(0);
    reference = eye_bits_fingerprint(property_eye(c, chunking));
  }
  sig::ScopedSimdBackend best(sig::compiled_backend());
  sig::ScopedRenderCache cache_on(true);
  util::ScopedThreads threads(c.threads);
  sig::RenderCache::instance().clear();
  const auto cold = eye_bits_fingerprint(property_eye(c, chunking));
  const auto warm = eye_bits_fingerprint(property_eye(c, chunking));
  sig::RenderCache::instance().clear();
  return cold == reference && warm == reference;
}

/// Property 2: at the DEFAULT settle depth (hundreds of time constants for
/// every drawn tau) the chunk decomposition itself is byte-identical to a
/// single-pass render. Shallower settles are documented approximations and
/// are covered by property 1 only.
bool decomposition_equivalence_holds(const EngineConfig& c) {
  sig::ScopedRenderCache cache_off(false);
  util::ScopedThreads serial(0);
  const auto whole = eye_bits_fingerprint(
      property_eye(c, sig::RenderChunking{1u << 26, 32768}));
  const auto chunked = eye_bits_fingerprint(
      property_eye(c, sig::RenderChunking{c.chunk_samples, 32768}));
  return whole == chunked;
}

/// Greedy shrink: repeatedly applies the simplest still-failing reduction
/// until no candidate both simplifies the config and keeps it failing
/// against `holds`.
EngineConfig shrink_config(
    EngineConfig failing,
    const std::function<bool(const EngineConfig&)>& holds) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    std::vector<EngineConfig> candidates;
    if (failing.n_bits > 4) {
      EngineConfig c = failing;
      c.n_bits = std::max<std::size_t>(4, c.n_bits / 2);
      candidates.push_back(c);
    }
    if (!failing.taus_ps.empty()) {
      EngineConfig c = failing;
      c.taus_ps.pop_back();
      candidates.push_back(c);
    }
    if (failing.jitter_ps != 0.0) {
      EngineConfig c = failing;
      c.jitter_ps = 0.0;
      candidates.push_back(c);
    }
    if (failing.gain != 1.0) {
      EngineConfig c = failing;
      c.gain = 1.0;
      candidates.push_back(c);
    }
    if (failing.threads != 0) {
      EngineConfig c = failing;
      c.threads = 0;
      candidates.push_back(c);
    }
    if (failing.settle_samples != 32768) {
      EngineConfig c = failing;
      c.settle_samples = 32768;  // the default depth
      candidates.push_back(c);
    }
    if (failing.chunk_samples < (1u << 26)) {
      EngineConfig c = failing;
      c.chunk_samples = 1u << 26;  // single chunk
      candidates.push_back(c);
    }
    if (failing.ui_ps != 400.0) {
      EngineConfig c = failing;
      c.ui_ps = 400.0;
      candidates.push_back(c);
    }
    for (const EngineConfig& c : candidates) {
      if (!holds(c)) {
        failing = c;
        progressed = true;
        break;
      }
    }
  }
  return failing;
}

/// Checks one property over one config; on violation shrinks and fails
/// with the minimal reproducer on one line.
void expect_property(const std::function<bool(const EngineConfig&)>& holds,
                     const EngineConfig& config, const char* name) {
  if (holds(config)) {
    return;
  }
  const EngineConfig minimal = shrink_config(config, holds);
  FAIL() << name << " violated; minimal failing config: " << describe(minimal)
         << "  (original: " << describe(config) << ")";
}

class PipelineEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineEquivalence, RandomConfigsRoundTripByteIdentically) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ULL + 1);
  for (int i = 0; i < 4; ++i) {
    const EngineConfig config = draw_config(rng);
    expect_property(pipeline_equivalence_holds, config,
                    "SIMD/cache/threads pipeline equivalence");
    if (HasFatalFailure()) {
      return;
    }
  }
}

TEST_P(PipelineEquivalence, RandomConfigsDecomposeByteIdentically) {
  Rng rng(GetParam() * 0xD6E8FEB86659FD93ULL + 3);
  for (int i = 0; i < 2; ++i) {
    const EngineConfig config = draw_config(rng);
    expect_property(decomposition_equivalence_holds, config,
                    "chunk decomposition equivalence");
    if (HasFatalFailure()) {
      return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineEquivalence,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace mgt
