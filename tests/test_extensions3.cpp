// Tests for the third extension wave: jitter spectrum analysis, clock
// distribution trees, and USB bulk transfers.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/spectrum.hpp"
#include "core/presets.hpp"
#include "digital/dlc.hpp"
#include "minitester/minitester.hpp"
#include "digital/usb.hpp"
#include "pecl/clocktree.hpp"
#include "signal/jitter.hpp"
#include "testbed/analog_receiver.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mgt {
namespace {

// ---------------------------------------------------------------- spectrum --

std::vector<sig::Crossing> jittered_edges(std::size_t n, double ui,
                                          const sig::JitterSpec& spec,
                                          Rng rng) {
  sig::JitterSource source(spec, rng);
  std::vector<sig::Crossing> out;
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const Picoseconds nominal{static_cast<double>(k + 1) * ui};
    out.push_back({nominal + source.offset(true, nominal), true});
  }
  return out;
}

TEST(Spectrum, TieExtraction) {
  std::vector<sig::Crossing> crossings = {
      {Picoseconds{403.0}, true},
      {Picoseconds{798.0}, false},
      {Picoseconds{1201.0}, true},
  };
  const auto tie = ana::extract_tie(crossings, Picoseconds{400.0});
  ASSERT_EQ(tie.tie_ps.size(), 3u);
  EXPECT_NEAR(tie.tie_ps[0], 3.0, 1e-9);
  EXPECT_NEAR(tie.tie_ps[1], -2.0, 1e-9);
  EXPECT_NEAR(tie.tie_ps[2], 1.0, 1e-9);
  EXPECT_NEAR(tie.mean_spacing.ps(), (1201.0 - 403.0) / 2.0, 1e-9);
}

TEST(Spectrum, DetectsInjectedPeriodicTone) {
  // Edges every 400 ps with 4 ps 0-peak PJ at 50 MHz.
  sig::JitterSpec spec;
  spec.pj_amplitude = Picoseconds{4.0};
  spec.pj_frequency = Gigahertz{0.05};
  spec.rj_sigma = Picoseconds{0.5};
  const auto crossings = jittered_edges(8192, 400.0, spec, Rng(1));
  const auto tie = ana::extract_tie(crossings, Picoseconds{400.0});
  const auto spectrum = ana::jitter_spectrum(tie, 512);
  ASSERT_FALSE(spectrum.empty());
  const auto tones = ana::find_tones(spectrum);
  ASSERT_FALSE(tones.empty());
  EXPECT_NEAR(tones.front().frequency.ghz(), 0.05, 0.01);
  EXPECT_NEAR(tones.front().amplitude.ps(), 4.0, 1.5);
}

TEST(Spectrum, PureRjHasNoTones) {
  sig::JitterSpec spec;
  spec.rj_sigma = Picoseconds{3.0};
  const auto crossings = jittered_edges(8192, 400.0, spec, Rng(2));
  const auto tie = ana::extract_tie(crossings, Picoseconds{400.0});
  const auto tones = ana::find_tones(ana::jitter_spectrum(tie, 512));
  EXPECT_TRUE(tones.empty());
}

TEST(Spectrum, TooFewEdgesIsEmpty) {
  const auto tie = ana::extract_tie({}, Picoseconds{400.0});
  EXPECT_TRUE(tie.empty());
  EXPECT_TRUE(ana::jitter_spectrum(tie).empty());
}

// --------------------------------------------------------------- clocktree --

TEST(ClockTree, DepthAndBufferCount) {
  pecl::ClockTree small(pecl::ClockTree::Config{.loads = 4,
                                                .fanout_per_buffer = 4},
                        Rng(1));
  EXPECT_EQ(small.depth(), 1u);
  EXPECT_EQ(small.buffer_count(), 1u);

  pecl::ClockTree big(pecl::ClockTree::Config{.loads = 16,
                                              .fanout_per_buffer = 4},
                      Rng(2));
  EXPECT_EQ(big.depth(), 2u);
  EXPECT_EQ(big.buffer_count(), 5u);  // 1 root + 4 leaves

  pecl::ClockTree deep(pecl::ClockTree::Config{.loads = 9,
                                               .fanout_per_buffer = 2},
                       Rng(3));
  EXPECT_EQ(deep.depth(), 4u);  // 2^4 = 16 >= 9
}

TEST(ClockTree, SkewSpreadGrowsWithDepth) {
  double spreads[2];
  int i = 0;
  for (std::size_t fanout : {16u, 2u}) {
    // Same 16 loads, shallow (one 16:1-ish) vs deep (binary) distribution.
    pecl::ClockTree::Config config;
    config.loads = 16;
    config.fanout_per_buffer = fanout;
    pecl::ClockTree tree(config, Rng(7));
    spreads[i++] = tree.skew_spread_pp().ps();
  }
  EXPECT_GT(spreads[1], spreads[0]);  // deeper tree accumulates more skew
}

TEST(ClockTree, DriveMatchesComputedSkew) {
  pecl::ClockTree::Config config;
  config.loads = 16;
  config.fanout_per_buffer = 4;
  config.buffer.rj_sigma = Picoseconds{0.0};  // deterministic check
  pecl::ClockTree tree(config, Rng(11));
  const auto clk = sig::EdgeStream::clock(Picoseconds{800.0}, 8);
  for (std::size_t load : {0u, 5u, 15u}) {
    const auto out = tree.drive(clk, load);
    const double shift =
        out.transitions()[0].time.ps() - clk.transitions()[0].time.ps();
    const double expected =
        static_cast<double>(tree.depth()) * config.buffer.prop_delay.ps() +
        tree.load_skew(load).ps();
    EXPECT_NEAR(shift, expected, 1e-9) << "load " << load;
  }
}

TEST(ClockTree, PathRjScalesWithSqrtDepth) {
  pecl::ClockTree::Config config;
  config.loads = 16;
  config.fanout_per_buffer = 2;  // depth 4
  config.buffer.rj_sigma = Picoseconds{1.0};
  pecl::ClockTree tree(config, Rng(13));
  EXPECT_NEAR(tree.path_rj_sigma().ps(), 2.0, 1e-9);  // sqrt(4)
}

TEST(ClockTree, InvalidLoadThrows) {
  pecl::ClockTree tree(pecl::ClockTree::Config{.loads = 4}, Rng(17));
  const auto clk = sig::EdgeStream::clock(Picoseconds{800.0}, 2);
  EXPECT_THROW(tree.drive(clk, 4), Error);
  EXPECT_THROW((void)tree.load_skew(4), Error);
}

// ---------------------------------------------------------------- usb bulk --

class BulkFixture : public ::testing::Test {
protected:
  BulkFixture() : device_(5, [](const auto&) {
    return std::vector<std::uint8_t>{};
  }), host_(device_) {
    device_.set_bulk_handler(1, [this](const std::vector<std::uint8_t>& p) {
      received_.push_back(p);
    });
  }
  dig::UsbDevice device_;
  dig::UsbHost host_;
  std::vector<std::vector<std::uint8_t>> received_;
};

TEST_F(BulkFixture, MultiChunkTransferReassembles) {
  std::vector<std::uint8_t> payload(200);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }
  host_.bulk_write(1, payload);
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0], payload);
}

TEST_F(BulkFixture, ExactMultipleUsesZeroLengthTerminator) {
  std::vector<std::uint8_t> payload(128, 0xAB);  // 2 x 64
  host_.bulk_write(1, payload);
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].size(), 128u);
}

TEST_F(BulkFixture, ConsecutiveTransfersKeepToggleContinuity) {
  // The regression that bit us: the pipe toggle persists across
  // transfers; a host resetting to DATA0 loses every second transfer.
  for (int t = 0; t < 5; ++t) {
    host_.bulk_write(1, std::vector<std::uint8_t>(10, static_cast<std::uint8_t>(t)));
  }
  ASSERT_EQ(received_.size(), 5u);
  for (int t = 0; t < 5; ++t) {
    EXPECT_EQ(received_[static_cast<std::size_t>(t)][0], t);
  }
}

TEST_F(BulkFixture, CorruptedChunksAreRetriedNotDuplicated) {
  int counter = 0;
  host_.set_corruptor([&](dig::Wire& wire) {
    if (++counter % 4 == 0 && !wire.empty()) {
      wire[wire.size() / 2] ^= 0x20;
    }
  });
  std::vector<std::uint8_t> payload(300, 0x5A);
  host_.bulk_write(1, payload);
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0], payload);  // no loss, no duplication
  EXPECT_GT(host_.retries(), 0u);
}

TEST_F(BulkFixture, UnconfiguredEndpointStalls) {
  EXPECT_THROW(host_.bulk_write(2, {1, 2, 3}), Error);
}

TEST(BulkDlc, PatternUploadMatchesRegisterPath) {
  dig::Dlc dlc;
  dig::Bitstream bitstream;
  bitstream.design_name = "bulk";
  dlc.configure(bitstream);
  dig::UsbDevice device(5, dlc.usb_handler());
  device.set_bulk_handler(1, dlc.usb_bulk_pattern_handler());
  dig::UsbHost host(device);

  Rng rng(3);
  const auto pattern = BitVector::random(777, rng);
  std::vector<std::uint8_t> payload;
  auto put = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      payload.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
    }
  };
  put(3);  // channel
  put(static_cast<std::uint32_t>(pattern.size()));
  for (std::size_t w = 0; w * 32 < pattern.size(); ++w) {
    std::uint32_t word = 0;
    for (std::size_t b = 0; b < 32 && w * 32 + b < pattern.size(); ++b) {
      word |= static_cast<std::uint32_t>(pattern.get(w * 32 + b)) << b;
    }
    put(word);
  }
  host.bulk_write(1, payload);

  host.write_register(dig::reg::kCtrl, dig::reg::kCtrlModePattern);
  host.write_register(dig::reg::kChannelSel, 3);
  EXPECT_EQ(dlc.expected_serial(777), pattern);
}

TEST(BulkDlc, MalformedUploadRejected) {
  dig::Dlc dlc;
  dig::UsbDevice device(5, dlc.usb_handler());
  device.set_bulk_handler(1, dlc.usb_bulk_pattern_handler());
  dig::UsbHost host(device);
  EXPECT_THROW(host.bulk_write(1, {1, 2, 3}), Error);        // too short
  EXPECT_THROW(host.bulk_write(1, std::vector<std::uint8_t>(8, 0)), Error);
}

// ----------------------------------------------------------- capture RAM --

TEST(CaptureRam, StoreAndRegisterReadout) {
  dig::Dlc dlc;
  dig::Bitstream bitstream;
  bitstream.design_name = "cap";
  dlc.configure(bitstream);
  Rng rng(5);
  const auto bits = BitVector::random(100, rng);
  dlc.store_capture(bits);
  EXPECT_EQ(dlc.regs().read(dig::reg::kCapCount), 100u);

  dig::UsbDevice device(5, dlc.usb_handler());
  dig::UsbHost host(device);
  EXPECT_EQ(dig::read_capture(host), bits);
  // A second readout restarts cleanly at address 0.
  EXPECT_EQ(dig::read_capture(host), bits);
}

TEST(CaptureRam, EmptyCaptureReadsEmpty) {
  dig::Dlc dlc;
  dig::Bitstream bitstream;
  bitstream.design_name = "cap";
  dlc.configure(bitstream);
  dig::UsbDevice device(5, dlc.usb_handler());
  dig::UsbHost host(device);
  EXPECT_TRUE(dig::read_capture(host).empty());
}

TEST(CaptureRam, MinitesterLoopbackCaptureReadableOverUsb) {
  minitester::MiniTester tester(minitester::MiniTester::Config{}, 7);
  tester.program_prbs(7, 0xACE1);
  tester.start();
  const auto ber = tester.run_loopback(1024);
  EXPECT_EQ(ber.errors, 0u);
  const auto capture = tester.last_capture_via_usb();
  EXPECT_EQ(capture.size(), ber.bits_compared + ber.alignment);
  // The capture is real data, not a stuck line.
  EXPECT_GT(capture.transition_count(), 100u);
}

// --------------------------------------------------------- analog receiver --

class AnalogRxFixture : public ::testing::Test {
protected:
  testbed::OpticalTransmitter make_tx(std::uint64_t seed,
                                      double swing_mv = 800.0) {
    testbed::OpticalTransmitter::Config config;
    config.channel = core::presets::optical_testbed();
    config.channel.buffer.levels =
        sig::PeclLevels{}.with_swing(Millivolts{swing_mv});
    return testbed::OpticalTransmitter(config, seed);
  }

  testbed::TestbedPacket make_packet(std::uint64_t seed) {
    Rng rng(seed);
    testbed::TestbedPacket p;
    for (auto& lane : p.payload) {
      lane = BitVector::random(32, rng);
    }
    p.header = static_cast<std::uint8_t>(rng.below(16));
    return p;
  }
};

TEST_F(AnalogRxFixture, RecoversCleanSlot) {
  auto tx = make_tx(31);
  testbed::AnalogReceiver rx(testbed::AnalogReceiver::Config{}, Rng(32));
  const auto packet = make_packet(33);
  const auto signals = tx.transmit(packet, Picoseconds{0.0});
  const auto result = rx.receive(signals, Picoseconds{0.0});
  ASSERT_TRUE(result.captured);
  EXPECT_EQ(result.packet.header, packet.header);
  for (std::size_t ch = 0; ch < testbed::kDataChannels; ++ch) {
    EXPECT_EQ(result.packet.payload[ch], packet.payload[ch]) << "ch " << ch;
  }
  EXPECT_GT(result.mean_strobe_margin.mv(), 200.0);
}

TEST_F(AnalogRxFixture, AgreesWithEdgeDomainReceiver) {
  auto tx = make_tx(41);
  testbed::AnalogReceiver analog(testbed::AnalogReceiver::Config{}, Rng(42));
  testbed::Receiver digital(testbed::Receiver::Config{});
  for (std::uint64_t s = 0; s < 4; ++s) {
    const auto packet = make_packet(50 + s);
    const auto signals = tx.transmit(packet, Picoseconds{0.0});
    const auto a = analog.receive(signals, Picoseconds{0.0});
    const auto d = digital.receive(signals, Picoseconds{0.0});
    ASSERT_TRUE(a.captured && d.captured);
    for (std::size_t ch = 0; ch < testbed::kDataChannels; ++ch) {
      EXPECT_EQ(a.packet.payload[ch], d.packet.payload[ch]);
    }
  }
}

TEST_F(AnalogRxFixture, MarginShrinksWithSwing) {
  double margins[2];
  int i = 0;
  for (double swing : {800.0, 300.0}) {
    auto tx = make_tx(61, swing);
    testbed::AnalogReceiver rx(testbed::AnalogReceiver::Config{}, Rng(62));
    const auto result =
        rx.receive(tx.transmit(make_packet(63), Picoseconds{0.0}),
                   Picoseconds{0.0});
    ASSERT_TRUE(result.captured);
    margins[i++] = result.mean_strobe_margin.mv();
  }
  EXPECT_LT(margins[1], 0.5 * margins[0]);
}

TEST_F(AnalogRxFixture, DeadClockMeansNoCapture) {
  auto tx = make_tx(71);
  testbed::AnalogReceiver rx(testbed::AnalogReceiver::Config{}, Rng(72));
  auto signals = tx.transmit(make_packet(73), Picoseconds{0.0});
  signals.clock = sig::EdgeStream{false};
  const auto result = rx.receive(signals, Picoseconds{0.0});
  EXPECT_FALSE(result.captured);
}

}  // namespace
}  // namespace mgt
