// Telemetry hardening suite (`ctest -L telemetry`).
//
// The decoder's contract is adversarial: it must be total over arbitrary
// bytes. This suite proves it with a seeded, deterministic fuzz corpus
// (10k+ mutated / truncated / spliced / garbage-flooded packet streams,
// greedily shrunk on failure), plus exact-accounting checks on both ends
// (offered == encoded + shed + pending, received == decoded + rejected),
// byte-identical encode→decode→re-encode round trips, MGT_THREADS 0/1/8
// byte-identity of the published stream, and MGT_TELEMETRY-off identity of
// the simulation results. CI runs it under TSan, UBSan and ASan.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/eye.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "service/scheduler.hpp"
#include "signal/edge.hpp"
#include "signal/filter.hpp"
#include "signal/render.hpp"
#include "signal/render_cache.hpp"
#include "telemetry/channel.hpp"
#include "telemetry/decoder.hpp"
#include "telemetry/encoder.hpp"
#include "telemetry/hub.hpp"
#include "telemetry/wire.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace mgt {
namespace {

using telemetry::DecodeError;
using telemetry::Decoder;
using telemetry::DecoderStats;
using telemetry::FaultyChannel;
using telemetry::MetricEntry;
using telemetry::MetricSnapshot;
using telemetry::PacketHeader;
using telemetry::PacketType;
using telemetry::PlanSummary;
using telemetry::Record;
using telemetry::StreamEncoder;
using telemetry::WaveformChunk;

// ------------------------------------------------------------ generators --

/// Deterministic record generator: the fuzz corpus and the round-trip
/// tests share it so every case is reproducible from its seed alone.
Record random_record(Rng& rng) {
  Record r;
  r.tick = rng.next() >> 16;
  switch (rng.below(3)) {
    case 0: {
      WaveformChunk wf;
      wf.channel = static_cast<std::uint16_t>(rng.below(8));
      wf.decimation = static_cast<std::uint32_t>(1 + rng.below(64));
      wf.t0_ps = rng.uniform(0.0, 1e6);
      wf.dt_ps = rng.uniform(0.1, 10.0);
      const std::size_t n = rng.below(64);
      for (std::size_t i = 0; i < n; ++i) {
        wf.samples.push_back(rng.gaussian(2000.0, 400.0));
      }
      r.body = std::move(wf);
      break;
    }
    case 1: {
      MetricSnapshot ms;
      const std::size_t n = rng.below(8);
      for (std::size_t i = 0; i < n; ++i) {
        const std::string name = "metric." + std::to_string(rng.below(100));
        if (rng.chance(0.5)) {
          ms.entries.push_back(MetricEntry::counter(name, rng.next()));
        } else {
          ms.entries.push_back(
              MetricEntry::gauge(name, rng.uniform(-1e9, 1e9)));
        }
      }
      r.body = std::move(ms);
      break;
    }
    default: {
      PlanSummary ps;
      ps.plan_id = rng.next();
      ps.kind = static_cast<std::uint8_t>(rng.below(3));
      ps.outcome = static_cast<std::uint8_t>(rng.below(3));
      ps.tenant = "tenant-" + std::to_string(rng.below(16));
      ps.shards = static_cast<std::uint32_t>(rng.below(64));
      ps.shards_completed = ps.shards;
      ps.chunks_completed = rng.below(1024);
      ps.finished_tick = rng.next() >> 20;
      ps.deadline_exceeded = rng.chance(0.1) ? 1 : 0;
      ps.digest = rng.next();
      r.body = std::move(ps);
      break;
    }
  }
  return r;
}

/// A clean wire stream of `n` packets, sequences 0..n-1 on one stream id.
std::vector<std::uint8_t> clean_stream(Rng& rng, std::size_t n,
                                       std::uint16_t stream_id = 7) {
  std::vector<std::uint8_t> bytes;
  for (std::size_t i = 0; i < n; ++i) {
    telemetry::encode_packet(random_record(rng), stream_id,
                             static_cast<std::uint32_t>(i), bytes);
  }
  return bytes;
}

// --------------------------------------------------------------- mutator --

/// One seeded adversarial mutation. Every branch is pure byte surgery, so
/// a failing case replays exactly from (corpus seed, case index).
void mutate(std::vector<std::uint8_t>& bytes, Rng& rng) {
  if (bytes.empty()) {
    return;
  }
  switch (rng.below(6)) {
    case 0: {  // bit flips
      const std::uint64_t flips = 1 + rng.below(8);
      for (std::uint64_t f = 0; f < flips; ++f) {
        const std::uint64_t bit = rng.below(bytes.size() * 8);
        bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      break;
    }
    case 1:  // truncate the tail
      bytes.resize(rng.below(bytes.size()));
      break;
    case 2: {  // delete an interior range (splice the halves)
      const std::size_t a = rng.below(bytes.size());
      const std::size_t b =
          std::min(bytes.size(), a + 1 + rng.below(64));
      bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(a),
                  bytes.begin() + static_cast<std::ptrdiff_t>(b));
      break;
    }
    case 3: {  // insert garbage (sometimes magic-shaped, to bait resync)
      std::vector<std::uint8_t> junk(1 + rng.below(48));
      for (auto& b : junk) {
        b = static_cast<std::uint8_t>(rng.below(256));
      }
      if (rng.chance(0.3) && junk.size() >= 4) {
        std::copy(telemetry::kMagic, telemetry::kMagic + 4, junk.begin());
      }
      const std::size_t at = rng.below(bytes.size() + 1);
      bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   junk.begin(), junk.end());
      break;
    }
    case 4: {  // duplicate a range (stutter / replay)
      const std::size_t a = rng.below(bytes.size());
      const std::size_t len =
          std::min(bytes.size() - a, 1 + rng.below(64));
      std::vector<std::uint8_t> dup(bytes.begin() + static_cast<std::ptrdiff_t>(a),
                                    bytes.begin() + static_cast<std::ptrdiff_t>(a + len));
      const std::size_t at = rng.below(bytes.size() + 1);
      bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   dup.begin(), dup.end());
      break;
    }
    default: {  // splice in a fragment of a foreign clean stream
      Rng foreign(rng.next());
      std::vector<std::uint8_t> other = clean_stream(foreign, 1, 9);
      const std::size_t take = 1 + rng.below(other.size());
      const std::size_t at = rng.below(bytes.size() + 1);
      bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   other.begin(), other.begin() + static_cast<std::ptrdiff_t>(take));
      break;
    }
  }
}

// ------------------------------------------------------------- property --

constexpr std::size_t kFuzzMaxPayload = 2048;
constexpr std::size_t kFuzzBufferCap =
    telemetry::packet_bytes(kFuzzMaxPayload) + 64;

/// The decoder-totality property one fuzz case must satisfy. Returns a
/// failure description, or nullopt when the contract held.
std::optional<std::string> decoder_contract_violation(
    const std::vector<std::uint8_t>& bytes, std::uint64_t chop_seed) {
  Decoder::Config config;
  config.max_payload_bytes = kFuzzMaxPayload;
  config.buffer_cap_bytes = kFuzzBufferCap;
  Decoder decoder(config, [](const PacketHeader&, const Record&) {});

  // Feed in seeded chops so reassembly boundaries are part of the case.
  Rng chop(chop_seed);
  std::size_t at = 0;
  while (at < bytes.size()) {
    const std::size_t n = std::min<std::size_t>(
        bytes.size() - at, 1 + chop.below(97));
    decoder.feed(bytes.data() + at, n);
    at += n;
  }
  decoder.flush();

  const DecoderStats& s = decoder.stats();
  if (!s.accounting_exact()) {
    std::ostringstream why;
    why << "accounting broken: received=" << s.received
        << " decoded=" << s.decoded << " rejected=" << s.rejected;
    return why.str();
  }
  if (s.bytes_fed != bytes.size()) {
    return "bytes_fed drifted from input size";
  }
  if (decoder.buffered_high_water() > config.buffer_cap_bytes) {
    return "buffer grew past its configured cap";
  }
  if (decoder.buffered_bytes() != 0) {
    return "flush() left bytes buffered";
  }
  return std::nullopt;
}

/// Greedy ddmin-style shrink: repeatedly delete chunks while the property
/// still fails, halving the chunk size until single bytes. Deterministic,
/// so the minimized case is stable across runs.
std::vector<std::uint8_t> shrink_failing(
    std::vector<std::uint8_t> bytes,
    const std::function<bool(const std::vector<std::uint8_t>&)>& fails) {
  for (std::size_t chunk = bytes.size() / 2; chunk >= 1; chunk /= 2) {
    bool progress = true;
    while (progress && bytes.size() > 1) {
      progress = false;
      for (std::size_t at = 0; at + chunk <= bytes.size();) {
        std::vector<std::uint8_t> candidate = bytes;
        candidate.erase(
            candidate.begin() + static_cast<std::ptrdiff_t>(at),
            candidate.begin() + static_cast<std::ptrdiff_t>(at + chunk));
        if (fails(candidate)) {
          bytes = std::move(candidate);
          progress = true;
        } else {
          at += chunk;
        }
      }
    }
  }
  return bytes;
}

std::string hex_dump(const std::vector<std::uint8_t>& bytes,
                     std::size_t limit = 96) {
  std::ostringstream out;
  out << std::hex;
  for (std::size_t i = 0; i < bytes.size() && i < limit; ++i) {
    out << (bytes[i] >> 4) << (bytes[i] & 0xF);
  }
  if (bytes.size() > limit) {
    out << "... (" << std::dec << bytes.size() << " bytes)";
  }
  return out.str();
}

// ------------------------------------------------------------ wire tests --

TEST(TelemetryWire, HeaderLayoutIsTheDocumentedLittleEndianImage) {
  Record r;
  r.tick = 0x1122334455667788ull;
  WaveformChunk wf;
  wf.channel = 3;
  wf.decimation = 2;
  wf.samples = {1.0, -2.0};
  r.body = std::move(wf);
  const std::vector<std::uint8_t> p =
      telemetry::encode_packet(r, /*stream_id=*/0xBEEF, /*sequence=*/0x01020304);

  ASSERT_GE(p.size(), telemetry::kHeaderBytes + telemetry::kTrailerBytes);
  // Magic and fixed fields.
  EXPECT_EQ(p[0], 'M');
  EXPECT_EQ(p[1], 'G');
  EXPECT_EQ(p[2], 'T');
  EXPECT_EQ(p[3], 0x7E);
  EXPECT_EQ(p[4], telemetry::kWireVersion);
  EXPECT_EQ(p[5], static_cast<std::uint8_t>(PacketType::kWaveformChunk));
  // Little-endian stream id, sequence, tick, payload length.
  EXPECT_EQ(p[6], 0xEF);
  EXPECT_EQ(p[7], 0xBE);
  EXPECT_EQ(telemetry::get_u32(p.data() + 8), 0x01020304u);
  EXPECT_EQ(telemetry::get_u64(p.data() + 12), 0x1122334455667788ull);
  const std::uint32_t payload_len = telemetry::get_u32(p.data() + 20);
  EXPECT_EQ(p.size(),
            telemetry::kHeaderBytes + payload_len + telemetry::kTrailerBytes);
  // Self-checking header and payload trailer.
  EXPECT_EQ(p[24], telemetry::crc8(p.data(), telemetry::kHeaderBytes - 1));
  EXPECT_EQ(telemetry::get_u32(p.data() + telemetry::kHeaderBytes + payload_len),
            telemetry::crc32(p.data() + telemetry::kHeaderBytes, payload_len));
}

TEST(TelemetryWire, CrcReferenceVectors) {
  const std::uint8_t check[9] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  // CRC-32/ISO-HDLC ("123456789") and CRC-8 poly 0x07 reference values.
  EXPECT_EQ(telemetry::crc32(check, 9), 0xCBF43926u);
  EXPECT_EQ(telemetry::crc8(check, 9), 0xF4u);
  EXPECT_EQ(telemetry::crc32(nullptr, 0), 0x00000000u);
}

TEST(TelemetryWire, PayloadCodecsRoundTripEveryRecordType) {
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    const Record original = random_record(rng);
    std::vector<std::uint8_t> payload;
    telemetry::encode_payload(original, payload);
    Record decoded;
    decoded.tick = original.tick;
    ASSERT_TRUE(telemetry::decode_payload(original.type(), payload.data(),
                                          payload.size(), decoded));
    EXPECT_EQ(original, decoded);
  }
}

TEST(TelemetryWire, PayloadCodecsRejectStructuralLies) {
  Record scratch;
  // Trailing slack after a well-formed body is an inconsistency.
  Record r;
  r.body = WaveformChunk{};
  std::vector<std::uint8_t> payload;
  telemetry::encode_payload(r, payload);
  payload.push_back(0);
  EXPECT_FALSE(telemetry::decode_payload(PacketType::kWaveformChunk,
                                         payload.data(), payload.size(),
                                         scratch));
  // A sample count promising more than the payload holds must fail the
  // pre-check, not reserve a hostile amount.
  std::vector<std::uint8_t> lie;
  telemetry::put_u16(lie, 0);
  telemetry::put_u32(lie, 1);
  telemetry::put_f64(lie, 0.0);
  telemetry::put_f64(lie, 0.0);
  telemetry::put_u32(lie, 0xFFFFFFFFu);  // count: 4 billion samples
  EXPECT_FALSE(telemetry::decode_payload(PacketType::kWaveformChunk,
                                         lie.data(), lie.size(), scratch));
  // Metric entries with an unknown kind byte are rejected.
  MetricSnapshot ms;
  ms.entries.push_back(MetricEntry::counter("x", 1));
  Record rm;
  rm.body = std::move(ms);
  std::vector<std::uint8_t> mp;
  telemetry::encode_payload(rm, mp);
  mp[4] = 9;  // first entry's kind byte
  EXPECT_FALSE(telemetry::decode_payload(PacketType::kMetricSnapshot,
                                         mp.data(), mp.size(), scratch));
}

// ------------------------------------------------------------ round trip --

TEST(TelemetryRoundTrip, DecodeThenReencodeIsByteIdentical) {
  Rng rng(1234);
  std::vector<Record> records;
  for (int i = 0; i < 64; ++i) {
    records.push_back(random_record(rng));
  }
  std::vector<std::uint8_t> original;
  for (std::size_t i = 0; i < records.size(); ++i) {
    telemetry::encode_packet(records[i], /*stream_id=*/5,
                             static_cast<std::uint32_t>(i), original);
  }

  std::vector<PacketHeader> headers;
  std::vector<Record> decoded;
  Decoder decoder(Decoder::Config{},
                  [&](const PacketHeader& h, const Record& r) {
                    headers.push_back(h);
                    decoded.push_back(r);
                  });
  decoder.feed(original);
  decoder.flush();

  ASSERT_EQ(decoded.size(), records.size());
  EXPECT_EQ(decoder.stats().rejected, 0u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded[i], records[i]);
  }
  // Re-encoding what was decoded reproduces the wire image bit for bit.
  std::vector<std::uint8_t> reencoded;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    telemetry::encode_packet(decoded[i], headers[i].stream_id,
                             headers[i].sequence, reencoded);
  }
  EXPECT_EQ(reencoded, original);
}

// ------------------------------------------------------------------ fuzz --

TEST(TelemetryFuzz, DecoderIsTotalOverTenThousandMutatedStreams) {
  constexpr std::uint64_t kCorpusSeed = 0xC0FFEE;
  constexpr int kCases = 10'000;
  for (int i = 0; i < kCases; ++i) {
    Rng rng(util::mix_seed(kCorpusSeed, static_cast<std::uint64_t>(i)));
    std::vector<std::uint8_t> bytes = clean_stream(rng, 1 + rng.below(4));
    const std::uint64_t mutations = 1 + rng.below(4);
    for (std::uint64_t m = 0; m < mutations; ++m) {
      mutate(bytes, rng);
    }
    const std::uint64_t chop_seed = rng.next();
    const auto violation = decoder_contract_violation(bytes, chop_seed);
    if (violation) {
      const auto minimized = shrink_failing(bytes, [&](const auto& b) {
        return decoder_contract_violation(b, chop_seed).has_value();
      });
      FAIL() << "case " << i << " (seed " << kCorpusSeed << "): " << *violation
             << "\nminimized to " << minimized.size()
             << " bytes: " << hex_dump(minimized);
    }
  }
}

TEST(TelemetryFuzz, PureGarbageFloodStaysBoundedAndDecodesNothing) {
  Decoder::Config config;
  config.max_payload_bytes = kFuzzMaxPayload;
  config.buffer_cap_bytes = kFuzzBufferCap;
  Decoder decoder(config, [](const PacketHeader&, const Record&) {
    FAIL() << "garbage must not decode";
  });
  Rng rng(99);
  std::vector<std::uint8_t> junk(1 << 20);
  for (auto& b : junk) {
    // Heavy in magic bytes, to keep the resync scanner honest.
    b = rng.chance(0.25) ? 0x4D : static_cast<std::uint8_t>(rng.below(256));
  }
  decoder.feed(junk);
  decoder.flush();
  const DecoderStats& s = decoder.stats();
  EXPECT_EQ(s.decoded, 0u);
  EXPECT_TRUE(s.accounting_exact());
  EXPECT_LE(decoder.buffered_high_water(), config.buffer_cap_bytes);
  EXPECT_EQ(s.bytes_fed, junk.size());
}

TEST(TelemetryFuzz, ShrinkerFindsAMinimalFailingCase) {
  // Sanity-check the shrinking harness itself on a synthetic property
  // ("contains byte 0xAB"): it must minimize to exactly that byte.
  std::vector<std::uint8_t> noisy(257, 0x00);
  noisy[131] = 0xAB;
  const auto minimal = shrink_failing(noisy, [](const auto& b) {
    return std::find(b.begin(), b.end(), 0xAB) != b.end();
  });
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], 0xAB);
}

// ---------------------------------------------------------------- resync --

TEST(TelemetryResync, OneCorruptPayloadLosesOnlyThatPacket) {
  Rng rng(7);
  const std::size_t kPackets = 10;
  std::vector<std::uint8_t> bytes = clean_stream(rng, kPackets);

  // Find packet 3's start and flip a payload byte (past the header).
  std::size_t offset = 0;
  for (int skip = 0; skip < 3; ++skip) {
    const std::uint32_t len = telemetry::get_u32(bytes.data() + offset + 20);
    offset += telemetry::packet_bytes(len);
  }
  const std::uint32_t len3 = telemetry::get_u32(bytes.data() + offset + 20);
  ASSERT_GT(len3, 0u) << "regenerate: packet 3 needs a payload to corrupt";
  bytes[offset + telemetry::kHeaderBytes + len3 / 2] ^= 0x40;

  Decoder decoder(Decoder::Config{},
                  [](const PacketHeader&, const Record&) {});
  decoder.feed(bytes);
  decoder.flush();
  const DecoderStats& s = decoder.stats();
  EXPECT_TRUE(s.accounting_exact());
  EXPECT_GE(s.decoded, kPackets - 2);
  EXPECT_GE(s.rejected, 1u);
  EXPECT_GE(s.errors[static_cast<std::size_t>(DecodeError::kPayloadCrc)], 1u);
  EXPECT_GE(s.resyncs, 1u);
}

TEST(TelemetryResync, VersionSkewSkipsWholePacketAndContinues) {
  Rng rng(8);
  std::vector<std::uint8_t> bytes = clean_stream(rng, 2);
  // Bump packet 0's version and re-seal its header CRC: a structurally
  // valid packet from a future version.
  bytes[4] = telemetry::kWireVersion + 1;
  bytes[24] = telemetry::crc8(bytes.data(), telemetry::kHeaderBytes - 1);

  Decoder decoder(Decoder::Config{},
                  [](const PacketHeader&, const Record&) {});
  decoder.feed(bytes);
  decoder.flush();
  const DecoderStats& s = decoder.stats();
  EXPECT_EQ(s.decoded, 1u);  // the second packet
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.errors[static_cast<std::size_t>(DecodeError::kBadVersion)], 1u);
  EXPECT_TRUE(s.accounting_exact());
}

TEST(TelemetryResync, OversizedLengthClaimIsRejectedBeforeBuffering) {
  Rng rng(9);
  std::vector<std::uint8_t> bytes = clean_stream(rng, 2);
  // Claim a payload far past the decoder's cap, CRC-sealed so only the
  // kOversized check can stop it.
  const std::uint32_t hostile = 1u << 30;
  bytes[20] = static_cast<std::uint8_t>(hostile & 0xFF);
  bytes[21] = static_cast<std::uint8_t>((hostile >> 8) & 0xFF);
  bytes[22] = static_cast<std::uint8_t>((hostile >> 16) & 0xFF);
  bytes[23] = static_cast<std::uint8_t>((hostile >> 24) & 0xFF);
  bytes[24] = telemetry::crc8(bytes.data(), telemetry::kHeaderBytes - 1);

  Decoder::Config config;
  config.max_payload_bytes = kFuzzMaxPayload;
  config.buffer_cap_bytes = kFuzzBufferCap;
  Decoder decoder(config, [](const PacketHeader&, const Record&) {});
  decoder.feed(bytes);
  decoder.flush();
  const DecoderStats& s = decoder.stats();
  EXPECT_GE(s.errors[static_cast<std::size_t>(DecodeError::kOversized)], 1u);
  EXPECT_TRUE(s.accounting_exact());
  EXPECT_LE(decoder.buffered_high_water(), config.buffer_cap_bytes);
}

TEST(TelemetryResync, TruncatedTailIsTypedAtFlush) {
  Rng rng(10);
  std::vector<std::uint8_t> bytes = clean_stream(rng, 3);
  bytes.resize(bytes.size() - 5);  // cut into the last packet

  Decoder decoder(Decoder::Config{},
                  [](const PacketHeader&, const Record&) {});
  decoder.feed(bytes);
  EXPECT_GT(decoder.buffered_bytes(), 0u) << "partial packet should wait";
  decoder.flush();
  const DecoderStats& s = decoder.stats();
  EXPECT_EQ(s.decoded, 2u);
  EXPECT_GE(s.errors[static_cast<std::size_t>(DecodeError::kTruncated)], 1u);
  EXPECT_TRUE(s.accounting_exact());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

// ---------------------------------------------------------- backpressure --

TEST(TelemetryBackpressure, ShedsOldestFirstWithExactAccounting) {
  StreamEncoder enc({/*stream_id=*/1, "test", /*capacity_records=*/4});
  for (std::uint64_t i = 0; i < 10; ++i) {
    Record r;
    r.tick = i;
    r.body = PlanSummary{};
    enc.offer(std::move(r));
    EXPECT_TRUE(enc.stats().accounting_exact()) << "after offer " << i;
  }
  EXPECT_EQ(enc.stats().offered, 10u);
  EXPECT_EQ(enc.stats().shed, 6u);
  EXPECT_EQ(enc.stats().pending, 4u);

  // Drain: survivors are the 4 freshest records (ticks 6..9), and the
  // sequence numbers are consecutive from zero.
  std::vector<std::uint64_t> ticks;
  std::vector<std::uint32_t> sequences;
  const std::size_t emitted = enc.drain([&](std::vector<std::uint8_t>&& p) {
    ticks.push_back(telemetry::get_u64(p.data() + 12));
    sequences.push_back(telemetry::get_u32(p.data() + 8));
  });
  EXPECT_EQ(emitted, 4u);
  EXPECT_EQ(ticks, (std::vector<std::uint64_t>{6, 7, 8, 9}));
  EXPECT_EQ(sequences, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(enc.stats().encoded, 4u);
  EXPECT_EQ(enc.stats().pending, 0u);
  EXPECT_TRUE(enc.stats().accounting_exact());
}

TEST(TelemetryBackpressure, PendingMemoryIsBoundedUnderSustainedOverload) {
  StreamEncoder enc({/*stream_id=*/1, "soak", /*capacity_records=*/64});
  Rng rng(11);
  for (int i = 0; i < 100'000; ++i) {
    Record r;
    r.tick = static_cast<std::uint64_t>(i);
    WaveformChunk wf;
    wf.decimation = 1;
    wf.samples.assign(32, rng.uniform());
    r.body = std::move(wf);
    enc.offer(std::move(r));
  }
  EXPECT_TRUE(enc.stats().accounting_exact());
  EXPECT_EQ(enc.stats().pending, 64u);
  // 64 records of ~32 samples: the high-water must reflect the ring bound,
  // not the 100k offers.
  EXPECT_LE(enc.stats().pending_bytes_high_water, 64 * 2048u);
}

// --------------------------------------------------------- fault channel --

TEST(TelemetryChannel, EmptyFaultPlanIsByteIdenticalPassThrough) {
  Rng rng(12);
  FaultyChannel channel{fault::ComponentFaults{}};
  std::vector<std::vector<std::uint8_t>> sent;
  std::vector<std::vector<std::uint8_t>> got;
  for (int i = 0; i < 16; ++i) {
    std::vector<std::uint8_t> packet =
        telemetry::encode_packet(random_record(rng), 1,
                                 static_cast<std::uint32_t>(i));
    sent.push_back(packet);
    channel.send(std::move(packet),
                 [&](std::vector<std::uint8_t>&& p) { got.push_back(std::move(p)); });
  }
  channel.flush([&](std::vector<std::uint8_t>&& p) { got.push_back(std::move(p)); });
  EXPECT_EQ(got, sent);
  EXPECT_EQ(channel.stats().corrupted, 0u);
  EXPECT_EQ(channel.stats().truncated, 0u);
  EXPECT_EQ(channel.stats().reordered, 0u);
}

TEST(TelemetryChannel, CorruptionIsDeterministicAndDecoderAccountsForIt) {
  fault::FaultPlan plan(21);
  plan.schedule({fault::FaultKind::kTelemetryCorruption, "telemetry",
                 fault::FaultSpec::kAllIndices, /*severity=*/0.5,
                 /*start=*/2, /*duration=*/4});
  auto run = [&] {
    Rng rng(13);
    FaultyChannel channel{plan.component("telemetry")};
    std::vector<std::uint8_t> wire;
    for (int i = 0; i < 10; ++i) {
      channel.send(telemetry::encode_packet(random_record(rng), 1,
                                            static_cast<std::uint32_t>(i)),
                   [&](std::vector<std::uint8_t>&& p) {
                     wire.insert(wire.end(), p.begin(), p.end());
                   });
    }
    channel.flush([&](std::vector<std::uint8_t>&& p) {
      wire.insert(wire.end(), p.begin(), p.end());
    });
    return wire;
  };
  const std::vector<std::uint8_t> first = run();
  EXPECT_EQ(first, run()) << "fault damage must replay exactly";

  Decoder decoder(Decoder::Config{},
                  [](const PacketHeader&, const Record&) {});
  decoder.feed(first);
  decoder.flush();
  const DecoderStats& s = decoder.stats();
  EXPECT_TRUE(s.accounting_exact());
  EXPECT_GE(s.rejected + s.resyncs, 1u) << "window [2,6) must damage packets";
  EXPECT_GE(s.decoded, 4u) << "packets outside the fault window survive";
}

TEST(TelemetryChannel, ReorderSwapsAdjacentPacketsIntact) {
  fault::FaultPlan plan(22);
  plan.schedule({fault::FaultKind::kTelemetryReorder, "telemetry",
                 fault::FaultSpec::kAllIndices, /*severity=*/1.0,
                 /*start=*/0, /*duration=*/1});
  FaultyChannel channel{plan.component("telemetry")};
  Rng rng(14);
  const std::vector<std::uint8_t> a =
      telemetry::encode_packet(random_record(rng), 1, 0);
  const std::vector<std::uint8_t> b =
      telemetry::encode_packet(random_record(rng), 1, 1);
  std::vector<std::vector<std::uint8_t>> got;
  auto sink = [&](std::vector<std::uint8_t>&& p) { got.push_back(std::move(p)); };
  channel.send(a, sink);
  channel.send(b, sink);
  channel.flush(sink);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], b);
  EXPECT_EQ(got[1], a);
  EXPECT_EQ(channel.stats().reordered, 1u);

  // Reordered packets are intact: both still decode; the sequence numbers
  // expose the swap to any consumer that cares.
  std::vector<std::uint32_t> sequences;
  Decoder decoder(Decoder::Config{},
                  [&](const PacketHeader& h, const Record&) {
                    sequences.push_back(h.sequence);
                  });
  decoder.feed(got[0]);
  decoder.feed(got[1]);
  decoder.flush();
  EXPECT_EQ(decoder.stats().decoded, 2u);
  EXPECT_EQ(sequences, (std::vector<std::uint32_t>{1, 0}));
}

// ------------------------------------------------------------------- hub --

/// One deterministic eye workload with telemetry as configured by the
/// caller; returns (drained wire bytes, eye fingerprint).
std::pair<std::vector<std::uint8_t>, std::vector<std::uint64_t>>
eye_workload_with_telemetry() {
  telemetry::Hub::instance().reset_for_test();
  const Picoseconds ui{400.0};
  const sig::EdgeStream stream = sig::EdgeStream::clock(ui, 64);
  sig::FilterChain chain;
  chain.add_pole(Picoseconds{30.0});
  ana::EyeDiagram::Config eye_config;
  eye_config.ui = ui;
  eye_config.time_bins = 64;
  eye_config.volt_bins = 32;
  const ana::EyeDiagram eye = ana::accumulate_eye(
      stream, chain, sig::RenderConfig{}, Picoseconds{0},
      Picoseconds{64 * 2 * ui.ps()}, eye_config,
      sig::RenderChunking{4096, 2048});

  // A direct serial render exercises the waveform tap.
  sig::RecordingSink record;
  sig::render(stream, chain, sig::RenderConfig{}, Picoseconds{0},
              Picoseconds{8 * ui.ps()}, {&record});

  std::vector<std::uint8_t> wire;
  telemetry::Hub::instance().drain([&](std::vector<std::uint8_t>&& p) {
    wire.insert(wire.end(), p.begin(), p.end());
  });
  std::vector<std::uint64_t> fp;
  fp.push_back(eye.total_samples());
  fp.push_back(eye.crossings().size());
  for (double v : record.samples()) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    fp.push_back(bits);
  }
  return {std::move(wire), std::move(fp)};
}

TEST(TelemetryHub, DisabledMeansZeroPacketsAndUntouchedResults) {
  std::vector<std::uint64_t> fp_off1, fp_off2, fp_on;
  std::vector<std::uint8_t> wire_off, wire_on;
  {
    telemetry::ScopedTelemetry off(false);
    std::tie(wire_off, fp_off1) = eye_workload_with_telemetry();
  }
  {
    telemetry::ScopedTelemetry on(true);
    std::tie(wire_on, fp_on) = eye_workload_with_telemetry();
  }
  {
    telemetry::ScopedTelemetry off(false);
    std::tie(wire_off, fp_off2) = eye_workload_with_telemetry();
  }
  EXPECT_TRUE(wire_off.empty()) << "MGT_TELEMETRY off must emit nothing";
  EXPECT_FALSE(wire_on.empty());
  // Telemetry observes; it never changes what the simulation computes.
  EXPECT_EQ(fp_off1, fp_on);
  EXPECT_EQ(fp_off1, fp_off2);
  const telemetry::Hub::Stats stats = telemetry::Hub::instance().stats();
  EXPECT_TRUE(stats.waveform.accounting_exact());
  EXPECT_TRUE(stats.metrics.accounting_exact());
  EXPECT_TRUE(stats.plans.accounting_exact());
}

TEST(TelemetryHub, PublishedStreamByteIdenticalAcrossThreadCounts) {
  telemetry::ScopedTelemetry on(true);
  sig::ScopedRenderCache cache_off(false);
  std::vector<std::uint8_t> serial, one, eight;
  std::vector<std::uint64_t> fp0, fp1, fp8;
  {
    util::ScopedThreads t(0);
    std::tie(serial, fp0) = eye_workload_with_telemetry();
  }
  {
    util::ScopedThreads t(1);
    std::tie(one, fp1) = eye_workload_with_telemetry();
  }
  {
    util::ScopedThreads t(8);
    std::tie(eight, fp8) = eye_workload_with_telemetry();
  }
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, one);
  EXPECT_EQ(serial, eight);
  EXPECT_EQ(fp0, fp1);
  EXPECT_EQ(fp0, fp8);

  // And the stream decodes cleanly end to end.
  Decoder decoder(Decoder::Config{},
                  [](const PacketHeader&, const Record&) {});
  decoder.feed(serial);
  decoder.flush();
  EXPECT_GT(decoder.stats().decoded, 0u);
  EXPECT_EQ(decoder.stats().rejected, 0u);
}

TEST(TelemetryHub, SchedulerFinalizePublishesDecodablePlanSummaries) {
  telemetry::ScopedTelemetry on(true);
  telemetry::Hub::instance().reset_for_test();

  service::Scheduler::Config config;
  config.fleet.sites = 4;
  service::Scheduler sched(config, /*seed=*/3);
  service::TestPlan plan;
  plan.tenant = "alpha";
  plan.shards = 3;
  plan.chunks_per_shard = 2;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sched.submit(plan).accepted);
  }
  ASSERT_TRUE(sched.drain(10'000));

  std::vector<PlanSummary> summaries;
  std::size_t snapshots = 0;
  Decoder decoder(Decoder::Config{},
                  [&](const PacketHeader&, const Record& r) {
                    if (const auto* ps = std::get_if<PlanSummary>(&r.body)) {
                      summaries.push_back(*ps);
                    } else if (std::holds_alternative<MetricSnapshot>(r.body)) {
                      ++snapshots;
                    }
                  });
  telemetry::Hub::instance().drain([&](std::vector<std::uint8_t>&& p) {
    decoder.feed(p);
  });
  decoder.flush();

  ASSERT_EQ(summaries.size(), 4u);
  const std::vector<service::PlanResult> results = sched.finished_results();
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(summaries[i].plan_id, results[i].plan_id);
    EXPECT_EQ(summaries[i].tenant, results[i].tenant);
    EXPECT_EQ(summaries[i].shards, results[i].shards);
    EXPECT_EQ(summaries[i].chunks_completed, results[i].chunks_completed);
    EXPECT_EQ(summaries[i].digest, results[i].digest);
    EXPECT_EQ(summaries[i].outcome,
              static_cast<std::uint8_t>(results[i].outcome));
  }
  EXPECT_GE(snapshots, 1u) << "drain() publishes an obs snapshot";
  EXPECT_EQ(decoder.stats().rejected, 0u);
}

TEST(TelemetryHub, ObsSnapshotsAreChunkedUnderTheEntryCeiling) {
  telemetry::ScopedTelemetry on(true);
  telemetry::Hub::instance().reset_for_test();
  // More registry entries than fit in one packet: the snapshot must chunk.
  constexpr std::size_t kCounters = telemetry::Hub::kMaxSnapshotEntries + 50;
  for (std::size_t i = 0; i < kCounters; ++i) {
    obs::add_counter("telemetry.test.chunk." + std::to_string(i));
  }
  telemetry::Hub::instance().publish_obs_snapshot(/*tick=*/1);
  std::size_t entries = 0;
  std::size_t packets = 0;
  Decoder decoder(
      Decoder::Config{}, [&](const PacketHeader&, const Record& r) {
        const auto& ms = std::get<MetricSnapshot>(r.body);
        EXPECT_LE(ms.entries.size(), telemetry::Hub::kMaxSnapshotEntries);
        entries += ms.entries.size();
        ++packets;
      });
  telemetry::Hub::instance().drain([&](std::vector<std::uint8_t>&& p) {
    decoder.feed(p);
  });
  decoder.flush();
  EXPECT_GE(entries, kCounters);
  EXPECT_GE(packets, 2u) << "the ceiling must force a second packet";
  EXPECT_EQ(decoder.stats().rejected, 0u);
}

}  // namespace
}  // namespace mgt
