// The 10G+ extension matrix suite (ctest label `extension`): the vernier
// sub-picosecond timing mode, the TimingMode knob parsing matrix, the
// parameterized mux-tree builders behind the scenario shmoo, the scenario
// monotonicity checks, and the golden-pin byte-identity guarantees the
// matrix bench (bench_extension_10gbps) relies on: MGT_THREADS 0/1/8,
// empty fault plans, and vernier == stepped at exactly coinciding codes.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "analysis/faultsweep.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "pecl/delayline.hpp"
#include "pecl/sampler.hpp"
#include "pecl/vernier.hpp"
#include "util/parallel.hpp"

namespace mgt {
namespace {

// ----------------------------------------------------------- TimingMode --

TEST(TimingMode, ParseMatrix) {
  EXPECT_EQ(pecl::parse_timing_mode("stepped"), pecl::TimingMode::kStepped);
  EXPECT_EQ(pecl::parse_timing_mode("vernier"), pecl::TimingMode::kVernier);
  // Unset means "default", not an error.
  EXPECT_EQ(pecl::parse_timing_mode(nullptr), std::nullopt);
  EXPECT_EQ(pecl::parse_timing_mode(""), std::nullopt);
  // Malformed values must be rejections, never silent fallbacks.
  EXPECT_EQ(pecl::parse_timing_mode("Stepped"), std::nullopt);
  EXPECT_EQ(pecl::parse_timing_mode("VERNIER"), std::nullopt);
  EXPECT_EQ(pecl::parse_timing_mode("vernier "), std::nullopt);
  EXPECT_EQ(pecl::parse_timing_mode(" stepped"), std::nullopt);
  EXPECT_EQ(pecl::parse_timing_mode("verniers"), std::nullopt);
  EXPECT_EQ(pecl::parse_timing_mode("0"), std::nullopt);
}

TEST(TimingMode, ToStringRoundTrips) {
  for (const auto mode :
       {pecl::TimingMode::kStepped, pecl::TimingMode::kVernier}) {
    EXPECT_EQ(pecl::parse_timing_mode(
                  std::string(pecl::to_string(mode)).c_str()),
              mode);
  }
}

TEST(TimingMode, PresetCarriesRequestedMode) {
  EXPECT_EQ(core::presets::strobe_delay(pecl::TimingMode::kStepped).mode,
            pecl::TimingMode::kStepped);
  EXPECT_EQ(core::presets::strobe_delay(pecl::TimingMode::kVernier).mode,
            pecl::TimingMode::kVernier);
}

// ------------------------------------------------------ VernierTimebase --

TEST(VernierTimebase, SubPicosecondStepAndRange) {
  const pecl::VernierTimebase vernier({}, Rng(1));
  EXPECT_LT(vernier.step().ps(), 1.0);  // below any physical tap pitch
  EXPECT_DOUBLE_EQ(vernier.step().ps(), 0.67);
  // 16384 codes at 0.67 ps cover the stepped lines' ~10 ns range.
  EXPECT_GT(static_cast<double>(vernier.code_count() - 1) *
                vernier.step().ps(),
            10000.0);
  // The detuned clock is one beat step short of the main period.
  EXPECT_DOUBLE_EQ(vernier.vernier_period().ps(),
                   vernier.config().main_clock.period().ps() - 0.67);
  EXPECT_EQ(vernier.codes_per_beat(),
            static_cast<std::size_t>(
                std::floor(vernier.config().main_clock.period().ps() / 0.67)));
}

TEST(VernierTimebase, CodeZeroIsCoincidence) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const pecl::VernierTimebase vernier({}, Rng(seed));
    EXPECT_EQ(vernier.actual_delay(0).ps(), 0.0) << "part " << seed;
    EXPECT_EQ(vernier.programmed_delay(0).ps(), 0.0);
  }
}

TEST(VernierTimebase, ProgrammedDelayIsLinearInCode) {
  const pecl::VernierTimebase vernier({}, Rng(2));
  for (const std::size_t code : {std::size_t{1}, std::size_t{100},
                                 std::size_t{4096}, std::size_t{16383}}) {
    EXPECT_DOUBLE_EQ(vernier.programmed_delay(code).ps(),
                     static_cast<double>(code) * 0.67);
  }
}

TEST(VernierTimebase, WorstCaseErrorWithinModelBounds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    pecl::VernierTimebase::Config config;
    const pecl::VernierTimebase vernier(config, Rng(seed));
    const double range =
        static_cast<double>(config.code_count - 1) * config.step.ps();
    // Gain error is bounded by the ratio error over the full range; the
    // accumulated walk is clamped to walk_bound.
    const double bound =
        config.ratio_error * range + config.walk_bound.ps() + 1e-9;
    EXPECT_LE(vernier.worst_case_error().ps(), bound) << "part " << seed;
    EXPECT_GT(vernier.worst_case_error().ps(), 0.0);  // real PLLs, not ideal
    // Far better than the stepped parts' ~25 ps placement accuracy.
    EXPECT_LT(vernier.worst_case_error().ps(), 25.0);
  }
}

TEST(VernierTimebase, ErrorFreeConfigIsExact) {
  pecl::VernierTimebase::Config config;
  config.ratio_error = 0.0;
  config.walk_sigma = Picoseconds{0.0};
  config.walk_bound = Picoseconds{0.0};
  const pecl::VernierTimebase vernier(config, Rng(3));
  EXPECT_EQ(vernier.worst_case_error().ps(), 0.0);
  EXPECT_EQ(vernier.actual_delay(12345).ps(),
            vernier.programmed_delay(12345).ps());
}

TEST(VernierTimebase, InstancesDiffer) {
  const pecl::VernierTimebase a({}, Rng(4));
  const pecl::VernierTimebase b({}, Rng(5));
  EXPECT_NE(a.actual_delay(8000).ps(), b.actual_delay(8000).ps());
}

TEST(VernierTimebase, InvalidConfigThrows) {
  pecl::VernierTimebase::Config bad;
  bad.step = Picoseconds{0.0};
  EXPECT_THROW(pecl::VernierTimebase(bad, Rng(6)), Error);
  bad = {};
  bad.code_count = 1;
  EXPECT_THROW(pecl::VernierTimebase(bad, Rng(7)), Error);
  bad = {};
  bad.step = Picoseconds{500.0};  // not far below the 800 ps main period
  EXPECT_THROW(pecl::VernierTimebase(bad, Rng(8)), Error);
  bad = {};
  bad.ratio_error = -1e-6;
  EXPECT_THROW(pecl::VernierTimebase(bad, Rng(9)), Error);
}

// ---------------------------------------------- ProgrammableDelay modes --

TEST(VernierDelayLine, ModeSelectsStepAndCodeCount) {
  pecl::ProgrammableDelay::Config config;
  config.mode = pecl::TimingMode::kVernier;
  pecl::ProgrammableDelay delay(config, Rng(10));
  EXPECT_EQ(delay.mode(), pecl::TimingMode::kVernier);
  EXPECT_DOUBLE_EQ(delay.step().ps(), 0.67);
  EXPECT_EQ(delay.code_count(), 16384u);
  EXPECT_NEAR(delay.full_range().ns(), 10.98, 0.01);
  EXPECT_THROW(delay.set_code(16384), Error);
  EXPECT_NO_THROW(delay.set_code(16383));

  pecl::ProgrammableDelay stepped(pecl::ProgrammableDelay::Config{}, Rng(10));
  EXPECT_EQ(stepped.mode(), pecl::TimingMode::kStepped);
  EXPECT_DOUBLE_EQ(stepped.step().ps(), 10.0);
  EXPECT_EQ(stepped.code_count(), 1024u);
}

TEST(VernierDelayLine, ApplyShiftsEdgesLikeStepped) {
  pecl::ProgrammableDelay::Config config;
  config.mode = pecl::TimingMode::kVernier;
  config.rj_sigma = Picoseconds{0.0};
  pecl::ProgrammableDelay delay(config, Rng(11));
  delay.set_code(1000);
  const auto in = sig::EdgeStream::clock(Picoseconds{800.0}, 4);
  const auto out = delay.apply(in);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(out.transitions()[i].time.ps() - in.transitions()[i].time.ps(),
                config.insertion_delay.ps() + delay.insertion_offset().ps() +
                    delay.actual_delay(1000).ps(),
                1e-9);
  }
}

TEST(VernierDelayLine, SteppedInstancesUnchangedByVernierSupport) {
  // The vernier branch must not disturb the stepped draw order: a stepped
  // part seeded identically before and after this feature realizes the
  // same error profile (golden results depend on it).
  pecl::ProgrammableDelay a(pecl::ProgrammableDelay::Config{}, Rng(12));
  pecl::ProgrammableDelay b(pecl::ProgrammableDelay::Config{}, Rng(12));
  for (std::size_t code = 0; code < a.code_count(); code += 97) {
    EXPECT_EQ(a.actual_delay(code).ps(), b.actual_delay(code).ps());
  }
  EXPECT_EQ(a.insertion_offset().ps(), b.insertion_offset().ps());
}

/// Error-free stepped/vernier configs whose steps are binary-exact
/// (10 ps and 0.625 ps = 2^-4 * 10 ps): stepped code s and vernier code
/// 16 s program *exactly* the same delay in floating point.
std::pair<pecl::ProgrammableDelay::Config, pecl::ProgrammableDelay::Config>
coinciding_configs() {
  pecl::ProgrammableDelay::Config stepped;
  stepped.step = Picoseconds{10.0};
  stepped.code_count = 64;
  stepped.offset_error = Picoseconds{0.0};
  stepped.gain_error = 0.0;
  stepped.inl_bound = Picoseconds{0.0};
  stepped.rj_sigma = Picoseconds{0.0};

  pecl::ProgrammableDelay::Config vernier = stepped;
  vernier.mode = pecl::TimingMode::kVernier;
  vernier.vernier.step = Picoseconds{0.625};
  vernier.vernier.code_count = 1024;
  vernier.vernier.ratio_error = 0.0;
  vernier.vernier.walk_sigma = Picoseconds{0.0};
  vernier.vernier.walk_bound = Picoseconds{0.0};
  return {stepped, vernier};
}

TEST(VernierDelayLine, CoincidingCodesAreByteIdentical) {
  const auto [stepped_cfg, vernier_cfg] = coinciding_configs();
  pecl::ProgrammableDelay stepped(stepped_cfg, Rng(13));
  pecl::ProgrammableDelay vernier(vernier_cfg, Rng(13));
  for (std::size_t code = 0; code < stepped_cfg.code_count; ++code) {
    EXPECT_EQ(stepped.actual_delay(code).ps(),
              vernier.actual_delay(16 * code).ps())
        << "code " << code;
    EXPECT_EQ(stepped.programmed_delay().ps(), vernier.programmed_delay().ps());
  }

  // And through apply(): identical edge times, bit for bit.
  pecl::ProgrammableDelay s2(stepped_cfg, Rng(14));
  pecl::ProgrammableDelay v2(vernier_cfg, Rng(14));
  s2.set_code(37);
  v2.set_code(16 * 37);
  const auto in = sig::EdgeStream::clock(Picoseconds{800.0}, 8);
  const auto out_s = s2.apply(in);
  const auto out_v = v2.apply(in);
  ASSERT_EQ(out_s.transitions().size(), out_v.transitions().size());
  for (std::size_t i = 0; i < out_s.transitions().size(); ++i) {
    EXPECT_EQ(out_s.transitions()[i].time.ps(),
              out_v.transitions()[i].time.ps());
  }
}

// ------------------------------------------------- scenario monotonicity --

ana::ScenarioCell cell(double rate, const char* tree, const char* mode,
                       double severity, double eye) {
  ana::ScenarioCell c;
  c.rate = GbitsPerSec{rate};
  c.tree = tree;
  c.timing_mode = mode;
  c.severity = severity;
  c.eye = UnitIntervals{eye};
  return c;
}

TEST(ScenarioMatrix, MonotoneInRateAcceptsPhysicalCells) {
  const std::vector<ana::ScenarioCell> cells = {
      cell(5.0, "a", "stepped", 0.0, 0.80),
      cell(10.0, "a", "stepped", 0.0, 0.60),
      cell(5.0, "b", "stepped", 0.0, 0.70),
      cell(10.0, "b", "stepped", 0.0, 0.70),  // flat is still non-increasing
  };
  EXPECT_TRUE(ana::eye_nonincreasing_in_rate(cells));
  EXPECT_TRUE(ana::eye_nonincreasing_in_rate({}));  // vacuously true
}

TEST(ScenarioMatrix, MonotoneInRateRejectsEyeThatOpens) {
  const std::vector<ana::ScenarioCell> cells = {
      cell(5.0, "a", "stepped", 0.0, 0.60),
      cell(10.0, "a", "stepped", 0.0, 0.75),
  };
  EXPECT_FALSE(ana::eye_nonincreasing_in_rate(cells));
  // ... unless the climb is inside the stated measurement tolerance.
  EXPECT_TRUE(ana::eye_nonincreasing_in_rate(cells, UnitIntervals{0.2}));
}

TEST(ScenarioMatrix, RateCheckGroupsByOtherAxes) {
  // An eye that "opens with rate" across *different* trees or severities
  // is not a violation; groups must never mix.
  const std::vector<ana::ScenarioCell> cells = {
      cell(10.0, "a", "stepped", 1.0, 0.30),
      cell(5.0, "b", "stepped", 0.0, 0.20),
      cell(10.0, "a", "vernier", 0.0, 0.90),
  };
  EXPECT_TRUE(ana::eye_nonincreasing_in_rate(cells));
}

TEST(ScenarioMatrix, MonotoneInSeverity) {
  std::vector<ana::ScenarioCell> cells = {
      cell(10.0, "a", "stepped", 0.0, 0.60),
      cell(10.0, "a", "stepped", 0.5, 0.50),
      cell(10.0, "a", "stepped", 1.0, 0.35),
  };
  EXPECT_TRUE(ana::eye_nonincreasing_in_severity(cells));
  cells[2].eye = UnitIntervals{0.55};  // worse fault, better eye: a model regression
  EXPECT_FALSE(ana::eye_nonincreasing_in_severity(cells));
  EXPECT_TRUE(ana::eye_nonincreasing_in_severity(cells, UnitIntervals{0.1}));
}

TEST(ScenarioMatrix, CellOrderDoesNotMatter) {
  std::vector<ana::ScenarioCell> cells = {
      cell(10.0, "a", "stepped", 1.0, 0.35),
      cell(10.0, "a", "stepped", 0.0, 0.60),
      cell(10.0, "a", "stepped", 0.5, 0.50),
  };
  EXPECT_TRUE(ana::eye_nonincreasing_in_severity(cells));
  std::swap(cells[0], cells[1]);
  EXPECT_TRUE(ana::eye_nonincreasing_in_severity(cells));
}

// ----------------------------------------- golden-pin identity guarantees --

core::ChannelConfig matrix_channel(const fault::FaultPlan& plan) {
  core::ChannelConfig config;
  config.rate = GbitsPerSec{10.0};
  config.design_name = "tenGig-extension";
  config.serializer = pecl::SerializerTree::extension_32lane();
  config.buffer.rise_2080 = Picoseconds{35.0};
  config.buffer.rj_sigma = Picoseconds{1.8};
  config.clock.frequency = Gigahertz{2.5};
  config.clock.rj_sigma = Picoseconds{0.8};
  config.hookup = sig::Channel::ideal().config();
  config.faults = plan;
  return config;
}

/// Stimulus plus a vernier-strobed capture of it: the full signal path a
/// matrix cell exercises, reduced to comparable bytes.
std::pair<core::Stimulus, BitVector> acquire_vernier_cell(
    const fault::FaultPlan& plan) {
  core::TestSystem sys(matrix_channel(plan), 77);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  core::Stimulus stim = sys.generate(256);

  pecl::ProgrammableDelay delay(
      core::presets::strobe_delay(pecl::TimingMode::kVernier), Rng(21));
  pecl::PeclSampler sampler(pecl::PeclSampler::Config{}, Rng(22));
  sampler.set_threshold(stim.levels.midpoint());
  const auto mid_code =
      static_cast<std::size_t>(stim.ui.ps() / 2.0 / delay.step().ps());
  const std::size_t n_capture = 256 - 17;
  const Picoseconds first{stim.t0.ps() + 16.0 * stim.ui.ps() +
                          delay.actual_delay(mid_code).ps()};
  const auto strobes =
      pecl::PeclSampler::strobe_schedule(first, stim.ui, n_capture);
  BitVector bits =
      sampler.capture(stim.edges, stim.chain, stim.levels, strobes).bits;
  return {std::move(stim), std::move(bits)};
}

void expect_same_stimulus(const core::Stimulus& a, const core::Stimulus& b) {
  EXPECT_EQ(a.bits, b.bits);
  ASSERT_EQ(a.edges.transitions().size(), b.edges.transitions().size());
  for (std::size_t i = 0; i < a.edges.transitions().size(); ++i) {
    ASSERT_EQ(a.edges.transitions()[i].time.ps(),
              b.edges.transitions()[i].time.ps())
        << "edge " << i;
    ASSERT_EQ(a.edges.transitions()[i].level, b.edges.transitions()[i].level);
  }
}

TEST(ExtensionGoldenPins, VernierCellByteIdenticalAcrossThreadCounts) {
  std::vector<std::pair<core::Stimulus, BitVector>> runs;
  for (const std::size_t threads : {0u, 1u, 8u}) {
    util::ScopedThreads scoped(threads);
    runs.push_back(acquire_vernier_cell(fault::FaultPlan{}));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    expect_same_stimulus(runs[0].first, runs[i].first);
    EXPECT_EQ(runs[0].second, runs[i].second) << "thread variant " << i;
  }
}

TEST(ExtensionGoldenPins, EmptyFaultPlanIsByteIdentical) {
  const auto healthy = acquire_vernier_cell(fault::FaultPlan{});
  const auto empty_plan = acquire_vernier_cell(fault::FaultPlan{12345});
  expect_same_stimulus(healthy.first, empty_plan.first);
  EXPECT_EQ(healthy.second, empty_plan.second);
}

TEST(ExtensionGoldenPins, SteppedAndVernierCapturesCoincide) {
  // Same stimulus, strobes programmed through the two modes at exactly
  // coinciding codes: the captured bytes must match bit for bit.
  core::TestSystem sys(matrix_channel(fault::FaultPlan{}), 77);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  const core::Stimulus stim = sys.generate(256);

  const auto [stepped_cfg, vernier_cfg] = coinciding_configs();
  pecl::ProgrammableDelay stepped(stepped_cfg, Rng(23));
  pecl::ProgrammableDelay vernier(vernier_cfg, Rng(23));
  pecl::PeclSampler sampler_s(pecl::PeclSampler::Config{}, Rng(24));
  pecl::PeclSampler sampler_v(pecl::PeclSampler::Config{}, Rng(24));
  sampler_s.set_threshold(stim.levels.midpoint());
  sampler_v.set_threshold(stim.levels.midpoint());

  const std::size_t n_capture = 256 - 17;
  for (const std::size_t code : {std::size_t{0}, std::size_t{5}}) {
    const Picoseconds first_s{stim.t0.ps() + 16.0 * stim.ui.ps() +
                              stepped.actual_delay(code).ps()};
    const Picoseconds first_v{stim.t0.ps() + 16.0 * stim.ui.ps() +
                              vernier.actual_delay(16 * code).ps()};
    ASSERT_EQ(first_s.ps(), first_v.ps());
    const auto strobes_s =
        pecl::PeclSampler::strobe_schedule(first_s, stim.ui, n_capture);
    const auto strobes_v =
        pecl::PeclSampler::strobe_schedule(first_v, stim.ui, n_capture);
    EXPECT_EQ(
        sampler_s.capture(stim.edges, stim.chain, stim.levels, strobes_s).bits,
        sampler_v.capture(stim.edges, stim.chain, stim.levels, strobes_v)
            .bits)
        << "code " << code;
  }
}

}  // namespace
}  // namespace mgt
