// Serial == parallel equivalence suite for the deterministic parallel
// layer (util/parallel) plus golden-value regression pins.
//
// Every pipeline that went multi-threaded — waveform rendering / eye
// accumulation, the optical-testbed transmitter and optics, wafer probing,
// shmoo sweeps, and vortex traffic generation — is run at MGT_THREADS
// 0 (serial fallback), 1, 2 and 8 and must produce byte-identical
// stimulus, histograms and metrics. The golden pins then tie the parallel
// paths to the paper-calibrated numbers (Figs 6-11, 16-19 presets) so a
// determinism bug that shifted values without breaking self-consistency
// would still be caught.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "analysis/eye.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "minitester/array.hpp"
#include "minitester/minitester.hpp"
#include "minitester/shmoo.hpp"
#include "testbed/testbed.hpp"
#include "testbed/transmitter.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "vortex/traffic.hpp"

namespace mgt {
namespace {

// Thread settings every equivalence case must agree across. 0 is the
// serial in-caller fallback (the reference); 8 oversubscribes this
// machine's cores on purpose.
constexpr std::size_t kThreadSettings[] = {0, 1, 2, 8};

void expect_streams_equal(const sig::EdgeStream& a, const sig::EdgeStream& b,
                          const char* what) {
  EXPECT_EQ(a.initial_level(), b.initial_level()) << what;
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit-exact: the parallel path must reproduce the serial doubles.
    ASSERT_EQ(a.transitions()[i].time.ps(), b.transitions()[i].time.ps())
        << what << " transition " << i;
    ASSERT_EQ(a.transitions()[i].level, b.transitions()[i].level)
        << what << " transition " << i;
  }
}

// Everything except the settled rail means, which EyeDiagram tracks with
// RunningStats: the chunked path combines those with a Welford merge whose
// floating-point order differs from one sequential accumulation, so they
// agree only to the last ulp against a single-pass render (and exactly
// between any two chunked runs).
void expect_eyes_equal_except_rails(const ana::EyeDiagram& a,
                                    const ana::EyeDiagram& b) {
  ASSERT_EQ(a.total_samples(), b.total_samples());
  for (std::size_t tb = 0; tb < a.config().time_bins; ++tb) {
    for (std::size_t vb = 0; vb < a.config().volt_bins; ++vb) {
      ASSERT_EQ(a.count_at(tb, vb), b.count_at(tb, vb))
          << "histogram bin (" << tb << ", " << vb << ")";
    }
  }
  ASSERT_EQ(a.crossings().size(), b.crossings().size());
  for (std::size_t i = 0; i < a.crossings().size(); ++i) {
    ASSERT_EQ(a.crossings()[i].time.ps(), b.crossings()[i].time.ps())
        << "crossing " << i;
    ASSERT_EQ(a.crossings()[i].rising, b.crossings()[i].rising)
        << "crossing " << i;
  }
  const auto ma = a.metrics();
  const auto mb = b.metrics();
  EXPECT_EQ(ma.jitter.count, mb.jitter.count);
  EXPECT_EQ(ma.jitter.peak_to_peak.ps(), mb.jitter.peak_to_peak.ps());
  EXPECT_EQ(ma.jitter.rms.ps(), mb.jitter.rms.ps());
  EXPECT_EQ(ma.eye_opening.ui(), mb.eye_opening.ui());
  EXPECT_EQ(ma.eye_height.mv(), mb.eye_height.mv());
}

void expect_eyes_equal(const ana::EyeDiagram& a, const ana::EyeDiagram& b) {
  expect_eyes_equal_except_rails(a, b);
  EXPECT_EQ(a.level_high().mv(), b.level_high().mv());
  EXPECT_EQ(a.level_low().mv(), b.level_low().mv());
}

testbed::TestbedPacket make_packet(Rng& rng) {
  testbed::TestbedPacket p;
  for (auto& lane : p.payload) {
    lane = BitVector::random(32, rng);
  }
  p.header = static_cast<std::uint8_t>(rng.below(16));
  return p;
}

// ------------------------------------------------------------ util layer --

TEST(ParallelLayer, MixSeedIsStableAndDecorrelated) {
  EXPECT_EQ(util::mix_seed(1, 2), util::mix_seed(1, 2));
  EXPECT_NE(util::mix_seed(1, 2), util::mix_seed(1, 3));
  EXPECT_NE(util::mix_seed(1, 2), util::mix_seed(2, 2));
  // Neighboring task streams must diverge immediately.
  Rng a = util::task_rng(42, 0);
  Rng b = util::task_rng(42, 1);
  EXPECT_NE(a.next(), b.next());
  // And re-deriving the same stream replays it.
  Rng c = util::task_rng(42, 0);
  Rng d = util::task_rng(42, 0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(c.next(), d.next());
  }
}

TEST(ParallelLayer, ScopedThreadsOverridesAndRestores) {
  const std::size_t before = util::thread_count();
  {
    util::ScopedThreads two(2);
    EXPECT_EQ(util::thread_count(), 2u);
    {
      util::ScopedThreads zero(0);
      EXPECT_EQ(util::thread_count(), 0u);
    }
    EXPECT_EQ(util::thread_count(), 2u);
  }
  EXPECT_EQ(util::thread_count(), before);
}

TEST(ParallelLayer, ParallelForCoversEveryIndexExactlyOnce) {
  for (std::size_t threads : kThreadSettings) {
    util::ScopedThreads scoped(threads);
    std::vector<int> hits(257, 0);
    util::parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " at " << threads
                            << " threads";
    }
  }
}

TEST(ParallelLayer, OrderedReduceIsOrderInsensitiveToThreads) {
  // Floating-point accumulation is order sensitive, so agreement across
  // thread counts proves the fold really runs in task-index order.
  auto run = [](std::size_t threads) {
    util::ScopedThreads scoped(threads);
    double acc = 0.0;
    util::parallel_ordered_reduce<double>(
        1000, acc, [](std::size_t i) { return 1.0 / (1.0 + double(i)); },
        [](double& a, double r) { a = (a + r) * 1.0000001; });
    return acc;
  };
  const double reference = run(0);
  for (std::size_t threads : kThreadSettings) {
    EXPECT_EQ(run(threads), reference) << threads << " threads";
  }
}

TEST(ParallelLayer, FirstTaskExceptionPropagates) {
  for (std::size_t threads : kThreadSettings) {
    util::ScopedThreads scoped(threads);
    EXPECT_THROW(util::parallel_for(64,
                                    [](std::size_t i) {
                                      if (i == 37) {
                                        throw std::runtime_error("task 37");
                                      }
                                    }),
                 std::runtime_error)
        << threads << " threads";
    // The pool must stay usable after an exceptional batch.
    std::atomic<int> ran{0};
    util::parallel_for(16, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 16) << threads << " threads";
  }
}

TEST(ParallelLayer, NestedParallelForRunsInline) {
  util::ScopedThreads scoped(4);
  std::atomic<int> ran{0};
  util::parallel_for(4, [&](std::size_t) {
    util::parallel_for(4, [&](std::size_t) { ++ran; });
  });
  EXPECT_EQ(ran.load(), 16);
}

// ------------------------------------------------------- chunked render --

TEST(ChunkedRender, SampleCountMatchesRenderLoop) {
  sig::RenderConfig rc;
  rc.sample_step = Picoseconds{0.5};
  // Window lengths chosen around exact-multiple boundaries.
  EXPECT_EQ(sig::render_sample_count(rc, Picoseconds{0.0}, Picoseconds{0.5}),
            1u);
  EXPECT_EQ(sig::render_sample_count(rc, Picoseconds{0.0}, Picoseconds{0.6}),
            2u);
  EXPECT_EQ(sig::render_sample_count(rc, Picoseconds{0.0}, Picoseconds{1.0}),
            2u);
  const sig::RenderChunking chunking{.chunk_samples = 100,
                                     .settle_samples = 10};
  EXPECT_EQ(sig::render_chunk_count(rc, Picoseconds{0.0}, Picoseconds{50.0},
                                    chunking),
            1u);
  EXPECT_EQ(sig::render_chunk_count(rc, Picoseconds{0.0}, Picoseconds{100.0},
                                    chunking),
            2u);
}

TEST(ChunkedRender, ManySmallChunksMatchSinglePassExactly) {
  core::TestSystem sys(core::presets::optical_testbed(), 7);
  sys.program_prbs(7, 0xBEEF);
  sys.start();
  auto stimulus = sys.generate(800);

  const Picoseconds t_begin{stimulus.t0.ps() + 16.0 * stimulus.ui.ps()};
  const Picoseconds t_end{stimulus.t0.ps() + 800.0 * stimulus.ui.ps()};
  sig::RenderConfig rc;
  rc.levels = stimulus.levels;
  ana::EyeDiagram::Config eye_config{
      .ui = stimulus.ui,
      .t_ref = stimulus.t0,
      .v_lo = Millivolts{stimulus.levels.vol.mv() - 200.0},
      .v_hi = Millivolts{stimulus.levels.voh.mv() + 200.0},
      .threshold = stimulus.levels.midpoint(),
  };

  ana::EyeDiagram single_pass(eye_config);
  sig::render(stimulus.edges, stimulus.chain, rc, t_begin, t_end,
              {&single_pass});

  // ~19 chunks with a deep-enough settle window; the chain state contracts
  // exponentially so the chunked samples land on the same doubles.
  const sig::RenderChunking chunking{.chunk_samples = 1u << 15,
                                     .settle_samples = 1u << 14};
  auto accumulate = [&](std::size_t threads) {
    util::ScopedThreads scoped(threads);
    return ana::accumulate_eye(stimulus.edges, stimulus.chain, rc, t_begin,
                               t_end, eye_config, chunking);
  };
  const auto chunked_serial = accumulate(0);

  // Chunked vs single pass: samples, histograms, crossings and metrics are
  // bit-exact; the settled rail means agree to the last ulp only (Welford
  // merge vs sequential accumulation).
  expect_eyes_equal_except_rails(single_pass, chunked_serial);
  EXPECT_NEAR(single_pass.level_high().mv(), chunked_serial.level_high().mv(),
              1e-8);
  EXPECT_NEAR(single_pass.level_low().mv(), chunked_serial.level_low().mv(),
              1e-8);

  // Chunked vs chunked across thread counts: bit-exact everywhere.
  for (std::size_t threads : kThreadSettings) {
    SCOPED_TRACE(testing::Message() << threads << " threads");
    expect_eyes_equal(chunked_serial, accumulate(threads));
  }
}

// -------------------------------------------------- pipeline equivalence --

TEST(Equivalence, TransmitterStimulusIsByteIdentical) {
  testbed::OpticalTransmitter::Config config;
  config.channel = core::presets::optical_testbed();
  Rng packet_rng(99);
  const auto packet = make_packet(packet_rng);

  util::ScopedThreads serial(0);
  testbed::OpticalTransmitter reference_tx(config, 21);
  const auto reference = reference_tx.transmit(packet, Picoseconds{0.0});

  for (std::size_t threads : kThreadSettings) {
    util::ScopedThreads scoped(threads);
    testbed::OpticalTransmitter tx(config, 21);
    const auto out = tx.transmit(packet, Picoseconds{0.0});
    for (std::size_t ch = 0; ch < testbed::kDataChannels; ++ch) {
      expect_streams_equal(reference.data[ch], out.data[ch], "data");
      ASSERT_EQ(reference.bits.data[ch], out.bits.data[ch]);
    }
    expect_streams_equal(reference.clock, out.clock, "clock");
    expect_streams_equal(reference.frame, out.frame, "frame");
    for (std::size_t h = 0; h < testbed::kHeaderChannels; ++h) {
      expect_streams_equal(reference.header[h], out.header[h], "header");
    }
    ASSERT_EQ(reference.bits.clock, out.bits.clock);
  }
}

TEST(Equivalence, EyeAcquisitionIsByteIdentical) {
  // 3000 bits x 800 samples/bit = 2.4 M samples: a multi-chunk window at
  // the default chunking, so the merge path really runs.
  auto acquire = [](std::size_t threads) {
    util::ScopedThreads scoped(threads);
    core::TestSystem sys(core::presets::optical_testbed(), 42);
    sys.program_prbs(7, 0xACE1);
    sys.start();
    return sys.acquire_eye(3000);
  };
  const auto reference = acquire(0);
  EXPECT_GT(reference.total_samples(), (std::size_t{1} << 20));
  for (std::size_t threads : kThreadSettings) {
    SCOPED_TRACE(testing::Message() << threads << " threads");
    expect_eyes_equal(reference, acquire(threads));
  }
}

TEST(Equivalence, JitterAndAmplitudeMetricsAreByteIdentical) {
  auto measure = [](std::size_t threads) {
    util::ScopedThreads scoped(threads);
    core::TestSystem sys(core::presets::optical_testbed(), 42);
    sys.program_prbs(7, 1);
    sys.start();
    const auto jitter = sys.measure_single_edge_jitter(1500, false);
    const auto amplitude = sys.measure_amplitude(1000);
    return std::make_pair(jitter, amplitude);
  };
  const auto [ref_jitter, ref_amplitude] = measure(0);
  EXPECT_GT(ref_jitter.count, 0u);
  for (std::size_t threads : kThreadSettings) {
    const auto [jitter, amplitude] = measure(threads);
    EXPECT_EQ(jitter.count, ref_jitter.count) << threads << " threads";
    EXPECT_EQ(jitter.peak_to_peak.ps(), ref_jitter.peak_to_peak.ps())
        << threads << " threads";
    EXPECT_EQ(jitter.rms.ps(), ref_jitter.rms.ps()) << threads << " threads";
    EXPECT_EQ(jitter.mean_phase.ps(), ref_jitter.mean_phase.ps())
        << threads << " threads";
    EXPECT_EQ(amplitude.settled_high.mv(), ref_amplitude.settled_high.mv())
        << threads << " threads";
    EXPECT_EQ(amplitude.settled_low.mv(), ref_amplitude.settled_low.mv())
        << threads << " threads";
    EXPECT_EQ(amplitude.peak_to_peak.mv(), ref_amplitude.peak_to_peak.mv())
        << threads << " threads";
  }
}

TEST(Equivalence, WaferProbeCountsAreIdentical) {
  minitester::TesterArray::Config config;
  config.testers = 4;
  config.defect_rate = 0.15;
  config.bist_bits = 128;
  auto probe = [&](std::size_t threads) {
    util::ScopedThreads scoped(threads);
    minitester::TesterArray array(config, 12);
    return array.probe_wafer(16);
  };
  const auto reference = probe(0);
  EXPECT_EQ(reference.dies, 16u);
  for (std::size_t threads : kThreadSettings) {
    const auto result = probe(threads);
    EXPECT_EQ(result.dies, reference.dies) << threads << " threads";
    EXPECT_EQ(result.touchdowns, reference.touchdowns)
        << threads << " threads";
    EXPECT_EQ(result.fails, reference.fails) << threads << " threads";
    EXPECT_EQ(result.escapes, reference.escapes) << threads << " threads";
    EXPECT_EQ(result.overkills, reference.overkills)
        << threads << " threads";
    EXPECT_EQ(result.total_time_s, reference.total_time_s)
        << threads << " threads";
  }
}

TEST(Equivalence, ShmooGridIsIdentical) {
  // A real (signal-level) measure: fresh tester per point, per the
  // run_shmoo purity contract.
  auto sweep = [](std::size_t threads) {
    util::ScopedThreads scoped(threads);
    return minitester::run_shmoo(
        "strobe code", {0.0, 10.0, 20.0}, "rate Gbps", {1.0, 2.5},
        [](double code, double rate) {
          minitester::MiniTester::Config config;
          config.channel = core::presets::minitester(GbitsPerSec{rate});
          minitester::MiniTester tester(config, 11);
          tester.program_prbs(7, 0xACE1);
          tester.start();
          tester.set_strobe_code(static_cast<std::size_t>(code));
          return tester.run_loopback(256).ber();
        });
  };
  const auto reference = sweep(0);
  for (std::size_t threads : kThreadSettings) {
    const auto shmoo = sweep(threads);
    ASSERT_EQ(shmoo.ber.size(), reference.ber.size());
    for (std::size_t yi = 0; yi < reference.ber.size(); ++yi) {
      ASSERT_EQ(shmoo.ber[yi].size(), reference.ber[yi].size());
      for (std::size_t xi = 0; xi < reference.ber[yi].size(); ++xi) {
        ASSERT_EQ(shmoo.ber[yi][xi], reference.ber[yi][xi])
            << "(" << xi << ", " << yi << ") at " << threads << " threads";
      }
    }
  }
}

TEST(Equivalence, VortexTrafficResultsAreIdentical) {
  const auto geometry = vortex::Geometry::for_heights(16, 4);
  auto run = [&](std::size_t threads, vortex::TrafficPattern pattern) {
    util::ScopedThreads scoped(threads);
    return vortex::run_traffic(geometry, pattern, 0.5, 200, 77);
  };
  for (auto pattern : {vortex::TrafficPattern::Uniform,
                       vortex::TrafficPattern::Hotspot,
                       vortex::TrafficPattern::Tornado}) {
    const auto reference = run(0, pattern);
    EXPECT_GT(reference.throughput_per_port, 0.0);
    for (std::size_t threads : kThreadSettings) {
      const auto result = run(threads, pattern);
      EXPECT_EQ(result.throughput_per_port, reference.throughput_per_port);
      EXPECT_EQ(result.mean_latency_slots, reference.mean_latency_slots);
      EXPECT_EQ(result.p99_latency_slots, reference.p99_latency_slots);
      EXPECT_EQ(result.mean_deflections, reference.mean_deflections);
      EXPECT_EQ(result.injection_block_rate, reference.injection_block_rate);
      EXPECT_EQ(result.fairness, reference.fairness);
      EXPECT_EQ(result.reorder_rate, reference.reorder_rate);
    }
  }
}

// ------------------------------------------------------------------ stress --

TEST(Stress, TestbedPipelineFiftyTimesAtVaryingThreadCounts) {
  // 50 consecutive end-to-end transfers where the worker count changes
  // between (not during) sends. The stateful testbed must stay in lockstep
  // with an all-serial twin: any scheduling dependence in the TX/optics
  // paths would desynchronize the sequence within a few packets.
  testbed::OpticalTestbed::Config config;
  Rng packet_rng(123);
  std::vector<testbed::TestbedPacket> packets;
  for (int i = 0; i < 50; ++i) {
    packets.push_back(make_packet(packet_rng));
  }

  testbed::OpticalTestbed reference(config, 5);
  testbed::OpticalTestbed varying(config, 5);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    util::ScopedThreads serial(0);
    const auto expected = reference.send_one(packets[i]);
    const std::size_t threads =
        kThreadSettings[i % std::size(kThreadSettings)];
    util::ScopedThreads scoped(threads);
    const auto got = varying.send_one(packets[i]);
    ASSERT_EQ(got.frame_ok, expected.frame_ok) << "packet " << i;
    ASSERT_EQ(got.captured, expected.captured) << "packet " << i;
    ASSERT_EQ(got.header_ok, expected.header_ok) << "packet " << i;
    ASSERT_EQ(got.payload_bit_errors, expected.payload_bit_errors)
        << "packet " << i;
    for (std::size_t ch = 0; ch < testbed::kDataChannels; ++ch) {
      ASSERT_EQ(got.received.payload[ch], expected.received.payload[ch])
          << "packet " << i << " lane " << ch;
    }
  }
}

// ------------------------------------------------------------ golden pins --

// The pins below rerun the bench reproductions (same presets, seeds and
// acquisition sizes) as hard assertions, with the bench tolerances. They
// hold at every thread setting; 2 threads is used so the parallel path is
// the one being pinned.

TEST(GoldenPin, Fig7EyeAt2G5) {
  util::ScopedThreads scoped(2);
  core::TestSystem sys(core::presets::optical_testbed(GbitsPerSec{2.5}), 42);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  const auto metrics = sys.measure_eye(20000);
  EXPECT_NEAR(metrics.jitter.peak_to_peak.ps(), 46.7, 6.0);
  EXPECT_NEAR(metrics.eye_opening.ui(), 0.88, 0.03);
  EXPECT_GT(metrics.eye_height.mv(), 0.0);
}

TEST(GoldenPin, Fig9SingleEdgeJitter) {
  util::ScopedThreads scoped(2);
  core::TestSystem sys(core::presets::optical_testbed(), 42);
  sys.program_prbs(7, 1);
  sys.start();
  const auto falling = sys.measure_single_edge_jitter(10000, false);
  EXPECT_NEAR(falling.peak_to_peak.ps(), 24.0, 4.0);
  EXPECT_NEAR(falling.rms.ps(), 3.2, 0.5);
}

TEST(GoldenPin, Fig19MinitesterEyeAt5G0) {
  util::ScopedThreads scoped(2);
  core::TestSystem sys(core::presets::minitester(GbitsPerSec{5.0}), 99);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  const auto metrics = sys.measure_eye(20000);
  EXPECT_NEAR(metrics.jitter.peak_to_peak.ps(), 50.0, 7.0);
  EXPECT_NEAR(metrics.eye_opening.ui(), 0.75, 0.03);
}

TEST(GoldenPin, AmplitudeRailsAtLvpeclDefaults) {
  util::ScopedThreads scoped(2);
  core::TestSystem sys(core::presets::optical_testbed(), 42);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  const auto amplitude = sys.measure_amplitude(2000);
  EXPECT_NEAR(amplitude.settled_high.mv(), 2400.0, 60.0);
  EXPECT_NEAR(amplitude.settled_low.mv(), 1600.0, 60.0);
  EXPECT_NEAR(amplitude.peak_to_peak.mv(), 800.0, 100.0);
}

}  // namespace
}  // namespace mgt
