// SIMD/batch equivalence gate (ctest label: simd).
//
// The batched waveform engine is only allowed to exist because every result
// it produces is byte-identical to the scalar per-sample engine. This suite
// is that gate:
//
//   - kernel level: scalar and SSE2 variants of every batch kernel agree
//     bitwise on random data, including empty/odd/boundary lengths;
//   - sink level: block delivery produces the same state as per-sample
//     delivery for ANY partitioning of the sample sequence into blocks;
//   - pipeline level: a full chunked eye accumulation is bitwise identical
//     under forced-scalar and compiled-best backends;
//   - cache level: cache-off, cache-cold and cache-warm runs of the same
//     workload are bitwise identical, near-miss keys never alias to a hit,
//     and hit/miss totals are pure functions of the render sequence;
//   - parallel level: a mixed eye + shmoo workload is bitwise identical at
//     MGT_THREADS 0, 1 and 8;
//   - plus the chunk-boundary regression the harness exposed: a zero
//     settle depth must not silently drop the context sample (and with it
//     every crossing pair that straddles a chunk boundary).

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "analysis/eye.hpp"
#include "minitester/shmoo.hpp"
#include "obs/obs.hpp"
#include "signal/batch.hpp"
#include "signal/batch_kernels.hpp"
#include "signal/edge.hpp"
#include "signal/filter.hpp"
#include "signal/render.hpp"
#include "signal/render_cache.hpp"
#include "signal/sinks.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace mgt;

std::uint64_t dbits(double x) { return std::bit_cast<std::uint64_t>(x); }

// ---------------------------------------------------------------- data ----

std::vector<double> random_walk(std::uint64_t seed, std::size_t n,
                                double center, double step) {
  Rng rng(seed);
  std::vector<double> v(n);
  double x = center;
  for (std::size_t i = 0; i < n; ++i) {
    x += rng.uniform(-step, step);
    v[i] = x;
  }
  return v;
}

// Deterministic per-edge jitter that needs no shared RNG state: hash the
// bit index, map to a small offset. Pure function of the index, so streams
// built from it are identical however they are constructed.
sig::EdgeOffsetFn hash_jitter(std::uint64_t seed, double amplitude_ps) {
  return [seed, amplitude_ps](std::size_t bit_index, Picoseconds) {
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (bit_index + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
    return Picoseconds{(2.0 * u - 1.0) * amplitude_ps};
  };
}

sig::EdgeStream test_stream(std::uint64_t seed, std::size_t n_bits,
                            Picoseconds ui) {
  Rng rng(seed);
  BitVector bits = BitVector::random(n_bits, rng);
  return sig::EdgeStream::from_bits(bits, ui, Picoseconds{0},
                                    hash_jitter(seed, 3.0));
}

sig::FilterChain test_chain() {
  sig::FilterChain chain;
  chain.add_pole(Picoseconds{40.0})
      .add_pole(Picoseconds{25.0})
      .set_gain(0.9, Millivolts{2000.0});
  return chain;
}

ana::EyeDiagram::Config eye_config(Picoseconds ui) {
  ana::EyeDiagram::Config cfg;
  cfg.ui = ui;
  cfg.time_bins = 64;
  cfg.volt_bins = 32;
  return cfg;
}

// Everything observable about an accumulated eye, bit-exact.
std::vector<std::uint64_t> fingerprint(const ana::EyeDiagram& eye) {
  std::vector<std::uint64_t> fp;
  fp.push_back(eye.total_samples());
  const auto& cfg = eye.config();
  for (std::size_t tb = 0; tb < cfg.time_bins; ++tb) {
    for (std::size_t vb = 0; vb < cfg.volt_bins; ++vb) {
      fp.push_back(eye.count_at(tb, vb));
    }
  }
  for (const sig::Crossing& c : eye.crossings()) {
    fp.push_back(dbits(c.time.ps()));
    fp.push_back(c.rising ? 1 : 0);
  }
  const ana::EyeMetrics m = eye.metrics();
  fp.push_back(m.jitter.count);
  fp.push_back(dbits(m.jitter.peak_to_peak.ps()));
  fp.push_back(dbits(m.jitter.rms.ps()));
  fp.push_back(dbits(m.jitter.mean_phase.ps()));
  fp.push_back(dbits(m.eye_opening.ui()));
  fp.push_back(dbits(m.eye_width.ps()));
  fp.push_back(dbits(m.eye_height.mv()));
  fp.push_back(dbits(m.level_high.mv()));
  fp.push_back(dbits(m.level_low.mv()));
  return fp;
}

std::uint64_t counter_value(const char* name) {
  return obs::registry().counter(name).value();
}

struct CacheCounters {
  std::uint64_t hits, misses, inserts, collisions;
  static CacheCounters read() {
    return {counter_value("render_cache.hits"),
            counter_value("render_cache.misses"),
            counter_value("render_cache.inserts"),
            counter_value("render_cache.collisions")};
  }
  CacheCounters delta_since(const CacheCounters& base) const {
    return {hits - base.hits, misses - base.misses, inserts - base.inserts,
            collisions - base.collisions};
  }
};

// ------------------------------------------------------- kernel gate ----

const std::size_t kLens[] = {0, 1, 2, 3, 31, 63, 64, 65, 127, 511, 512};

TEST(KernelEquiv, RangeMinmaxBackendsByteIdentical) {
  for (std::size_t n : kLens) {
    const auto v = random_walk(0xA11CEull + n, n, 2000.0, 35.0);
    double smin = 0, smax = 0, vmin = 0, vmax = 0;
    sig::kern::range_minmax_scalar(v.data(), n, &smin, &smax);
    sig::kern::range_minmax_sse2(v.data(), n, &vmin, &vmax);
    EXPECT_EQ(dbits(smin), dbits(vmin)) << "n=" << n;
    EXPECT_EQ(dbits(smax), dbits(vmax)) << "n=" << n;
    // Reference: plain fold.
    double rmin = std::numeric_limits<double>::infinity();
    double rmax = -std::numeric_limits<double>::infinity();
    for (double x : v) {
      rmin = std::min(rmin, x);
      rmax = std::max(rmax, x);
    }
    EXPECT_EQ(dbits(smin), dbits(rmin)) << "n=" << n;
    EXPECT_EQ(dbits(smax), dbits(rmax)) << "n=" << n;
  }
}

TEST(KernelEquiv, FindStraddlesBackendsIdentical) {
  const double th = 2000.0;
  for (std::size_t n : kLens) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      const auto v = random_walk(seed * 7919 + n, n, 2000.0, 40.0);
      const double prev0 = (seed % 2 == 0) ? 1990.0 : 2010.0;
      std::vector<std::uint32_t> a(n + 1), b(n + 1);
      const std::size_t na =
          sig::kern::find_straddles_scalar(prev0, v.data(), n, th, a.data());
      const std::size_t nb =
          sig::kern::find_straddles_sse2(prev0, v.data(), n, th, b.data());
      ASSERT_EQ(na, nb) << "n=" << n << " seed=" << seed;
      for (std::size_t i = 0; i < na; ++i) {
        EXPECT_EQ(a[i], b[i]) << "n=" << n << " seed=" << seed;
      }
      // Reference: pairwise scan.
      std::vector<std::uint32_t> ref;
      double prev = prev0;
      for (std::size_t i = 0; i < n; ++i) {
        if ((prev < th) != (v[i] < th)) {
          ref.push_back(static_cast<std::uint32_t>(i));
        }
        prev = v[i];
      }
      ASSERT_EQ(na, ref.size()) << "n=" << n << " seed=" << seed;
      for (std::size_t i = 0; i < na; ++i) {
        EXPECT_EQ(a[i], ref[i]);
      }
    }
  }
}

TEST(KernelEquiv, Scale01BackendsByteIdentical) {
  const double lo = 1500.0;
  const double span = 1000.0;
  for (std::size_t n : kLens) {
    const auto v = random_walk(0xBEEFull + n, n, 2000.0, 50.0);
    std::vector<double> a(n + 1, -1.0), b(n + 1, -1.0);
    sig::kern::scale01_scalar(v.data(), n, lo, span, a.data());
    sig::kern::scale01_sse2(v.data(), n, lo, span, b.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(dbits(a[i]), dbits(b[i])) << "n=" << n << " i=" << i;
      EXPECT_EQ(dbits(a[i]), dbits((v[i] - lo) / span));
    }
  }
}

TEST(KernelEquiv, SimdEnvParsing) {
  using sig::SimdBackend;
  EXPECT_EQ(sig::parse_simd_backend("0"), SimdBackend::kScalar);
  EXPECT_EQ(sig::parse_simd_backend("off"), SimdBackend::kScalar);
  EXPECT_EQ(sig::parse_simd_backend("scalar"), SimdBackend::kScalar);
  EXPECT_EQ(sig::parse_simd_backend("1"), sig::compiled_backend());
  EXPECT_EQ(sig::parse_simd_backend("on"), sig::compiled_backend());
  EXPECT_EQ(sig::parse_simd_backend("auto"), sig::compiled_backend());
  EXPECT_EQ(sig::parse_simd_backend(nullptr), sig::compiled_backend());
  EXPECT_EQ(sig::parse_simd_backend(""), sig::compiled_backend());
  EXPECT_EQ(sig::parse_simd_backend("avx999"), std::nullopt);
  EXPECT_EQ(sig::parse_simd_backend("2"), std::nullopt);
}

TEST(KernelEquiv, ScopedBackendOverrides) {
  {
    sig::ScopedSimdBackend forced(sig::SimdBackend::kScalar);
    EXPECT_EQ(sig::active_backend(), sig::SimdBackend::kScalar);
    {
      sig::ScopedSimdBackend inner(sig::compiled_backend());
      EXPECT_EQ(sig::active_backend(), sig::compiled_backend());
    }
    EXPECT_EQ(sig::active_backend(), sig::SimdBackend::kScalar);
  }
}

// ------------------------------------------------ block delivery gate ----

// Feeds the same sample sequence to `per_sample` one sample at a time and
// to `blocked` in blocks whose sizes cycle through `parts`. Afterwards the
// two sinks must be in identical states (checked by the caller).
void feed_both(sig::WaveformSink& per_sample, sig::WaveformSink& blocked,
               const std::vector<double>& ts, const std::vector<double>& vs,
               const std::vector<std::size_t>& parts) {
  for (std::size_t i = 0; i < ts.size(); ++i) {
    per_sample.on_sample(Picoseconds{ts[i]}, Millivolts{vs[i]});
  }
  sig::SampleBlock block;
  std::size_t pi = 0;
  std::size_t i = 0;
  while (i < ts.size()) {
    const std::size_t want =
        std::min(std::min(parts[pi % parts.size()], sig::SampleBlock::kCapacity),
                 ts.size() - i);
    ++pi;
    block.clear();
    for (std::size_t k = 0; k < want; ++k, ++i) {
      block.push(ts[i], vs[i]);
    }
    blocked.on_block(block);
  }
  per_sample.finish();
  blocked.finish();
}

struct Synth {
  std::vector<double> ts, vs;
};

Synth synth_waveform(std::size_t n) {
  Synth s;
  s.ts.reserve(n);
  s.vs.reserve(n);
  Rng rng(0x5EEDull);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = 0.5 * static_cast<double>(i);
    // Band-limited-ish squarish wave with noise: plenty of threshold
    // straddles, flat stretches for the slope gate, excursions for min/max.
    const double phase = std::fmod(t, 800.0) / 800.0;
    const double base = phase < 0.5 ? 2400.0 : 1600.0;
    s.ts.push_back(t);
    s.vs.push_back(base + rng.uniform(-30.0, 30.0));
  }
  return s;
}

const std::vector<std::size_t> kPartitions[] = {
    {1}, {7}, {512}, {3, 64, 1, 500, 2},
};

TEST(BlockDelivery, CrossingRecorderPartitionInvariant) {
  const Synth s = synth_waveform(4000);
  for (const auto& parts : kPartitions) {
    sig::CrossingRecorder a{Millivolts{2000.0}};
    sig::CrossingRecorder b{Millivolts{2000.0}};
    feed_both(a, b, s.ts, s.vs, parts);
    ASSERT_EQ(a.crossings().size(), b.crossings().size());
    for (std::size_t i = 0; i < a.crossings().size(); ++i) {
      EXPECT_EQ(dbits(a.crossings()[i].time.ps()),
                dbits(b.crossings()[i].time.ps()));
      EXPECT_EQ(a.crossings()[i].rising, b.crossings()[i].rising);
    }
  }
}

TEST(BlockDelivery, AmplitudeTrackerPartitionInvariant) {
  const Synth s = synth_waveform(4000);
  for (const auto& parts : kPartitions) {
    sig::AmplitudeTracker a{Millivolts{2000.0}};
    sig::AmplitudeTracker b{Millivolts{2000.0}};
    feed_both(a, b, s.ts, s.vs, parts);
    EXPECT_EQ(dbits(a.v_max().mv()), dbits(b.v_max().mv()));
    EXPECT_EQ(dbits(a.v_min().mv()), dbits(b.v_min().mv()));
    EXPECT_EQ(dbits(a.settled_high().mv()), dbits(b.settled_high().mv()));
    EXPECT_EQ(dbits(a.settled_low().mv()), dbits(b.settled_low().mv()));
  }
}

TEST(BlockDelivery, StrobeSamplerPartitionInvariant) {
  const Synth s = synth_waveform(4000);
  std::vector<Picoseconds> strobes;
  for (double t = 100.0; t < 1900.0; t += 400.0) {
    strobes.push_back(Picoseconds{t});
  }
  sig::StrobeSampler::Config cfg;
  for (const auto& parts : kPartitions) {
    sig::StrobeSampler a{strobes, cfg, Rng(7)};
    sig::StrobeSampler b{strobes, cfg, Rng(7)};
    feed_both(a, b, s.ts, s.vs, parts);
    ASSERT_EQ(a.bits().size(), b.bits().size());
    for (std::size_t i = 0; i < a.bits().size(); ++i) {
      EXPECT_EQ(a.bits()[i], b.bits()[i]);
      EXPECT_EQ(dbits(a.analog()[i].mv()), dbits(b.analog()[i].mv()));
    }
    EXPECT_EQ(a.missed(), b.missed());
  }
}

TEST(BlockDelivery, EyeDiagramPartitionInvariant) {
  const Synth s = synth_waveform(8000);
  for (const auto& parts : kPartitions) {
    ana::EyeDiagram a{eye_config(Picoseconds{400.0})};
    ana::EyeDiagram b{eye_config(Picoseconds{400.0})};
    feed_both(a, b, s.ts, s.vs, parts);
    EXPECT_EQ(fingerprint(a), fingerprint(b));
  }
}

// ---------------------------------------------------- pipeline gate ----

// One chunked eye accumulation over a jittered pseudorandom pattern: small
// chunks so several boundaries (and their settle windows) are exercised.
ana::EyeDiagram run_eye_workload(std::uint64_t seed) {
  const Picoseconds ui{400.0};
  const std::size_t n_bits = 96;
  const sig::EdgeStream stream = test_stream(seed, n_bits, ui);
  const sig::FilterChain chain = test_chain();
  const sig::RenderConfig rc;
  const sig::RenderChunking chunking{4096, 2048};
  return ana::accumulate_eye(stream, chain, rc, Picoseconds{0},
                             Picoseconds{static_cast<double>(n_bits) * ui.ps()},
                             eye_config(ui), chunking);
}

TEST(PipelineEquiv, SimdMatchesScalarOverFullEye) {
  sig::ScopedRenderCache cache_off(false);
  std::vector<std::uint64_t> fp_scalar, fp_best;
  {
    sig::ScopedSimdBackend forced(sig::SimdBackend::kScalar);
    fp_scalar = fingerprint(run_eye_workload(11));
  }
  {
    sig::ScopedSimdBackend forced(sig::compiled_backend());
    fp_best = fingerprint(run_eye_workload(11));
  }
  // On non-x86 builds both runs use the scalar kernels and this still
  // verifies determinism of the engine; on x86-64 it is the real SIMD ==
  // scalar byte-identity contract.
  EXPECT_EQ(fp_scalar, fp_best);
}

TEST(PipelineEquiv, BlockedEngineMatchesPlainRenderSinglePass) {
  // render() (single pass, never chunked or cached) against the chunked
  // accumulate path over a single-chunk window: the documented identity.
  const Picoseconds ui{400.0};
  const std::size_t n_bits = 24;
  const sig::EdgeStream stream = test_stream(3, n_bits, ui);
  const sig::FilterChain chain = test_chain();
  const sig::RenderConfig rc;
  const Picoseconds t_end{static_cast<double>(n_bits) * ui.ps()};

  ana::EyeDiagram direct{eye_config(ui)};
  std::vector<sig::WaveformSink*> sinks{&direct};
  sig::render(stream, chain, rc, Picoseconds{0}, t_end, sinks);

  sig::ScopedRenderCache cache_off(false);
  const sig::RenderChunking one_chunk{1u << 26, 2048};
  const ana::EyeDiagram chunked = ana::accumulate_eye(
      stream, chain, rc, Picoseconds{0}, t_end, eye_config(ui), one_chunk);
  EXPECT_EQ(fingerprint(direct), fingerprint(chunked));
}

// ------------------------------------------------------- cache gate ----

TEST(CacheEquiv, OffColdAndWarmRunsByteIdentical) {
  sig::RenderCache& cache = sig::RenderCache::instance();

  cache.clear();
  std::vector<std::uint64_t> fp_off;
  CacheCounters off_delta{};
  {
    sig::ScopedRenderCache off(false);
    const CacheCounters before = CacheCounters::read();
    fp_off = fingerprint(run_eye_workload(42));
    off_delta = CacheCounters::read().delta_since(before);
  }
  // Kill switch means fully bypassed: no counter moves at all.
  EXPECT_EQ(off_delta.hits, 0u);
  EXPECT_EQ(off_delta.misses, 0u);
  EXPECT_EQ(off_delta.inserts, 0u);

  sig::ScopedRenderCache on(true);
  cache.clear();
  const CacheCounters before_cold = CacheCounters::read();
  const std::vector<std::uint64_t> fp_cold = fingerprint(run_eye_workload(42));
  const CacheCounters cold = CacheCounters::read().delta_since(before_cold);
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_GT(cold.misses, 0u);
  EXPECT_EQ(cold.inserts, cold.misses);
  EXPECT_GT(cache.entry_count(), 0u);
  EXPECT_GT(cache.entry_bytes(), 0u);

  const CacheCounters before_warm = CacheCounters::read();
  const std::vector<std::uint64_t> fp_warm = fingerprint(run_eye_workload(42));
  const CacheCounters warm = CacheCounters::read().delta_since(before_warm);
  EXPECT_EQ(warm.misses, 0u);
  EXPECT_EQ(warm.hits, cold.misses);

  EXPECT_EQ(fp_off, fp_cold);
  EXPECT_EQ(fp_off, fp_warm);
  cache.clear();
}

TEST(CacheEquiv, KeyDigestSeparatesEveryField) {
  sig::RenderCacheKey base;
  base.stream_digest = 0x1111;
  base.chain_digest = 0x2222;
  base.voh = Millivolts{2400.0};
  base.vol = Millivolts{1600.0};
  base.sample_step = Picoseconds{0.5};
  base.t_begin = Picoseconds{0.0};
  base.k_emit = 1u << 20;
  base.k_end = 2u << 20;
  base.settle = 32768;

  std::vector<sig::RenderCacheKey> near_misses;
  auto add = [&](auto&& mutate) {
    sig::RenderCacheKey k = base;
    mutate(k);
    near_misses.push_back(k);
  };
  add([](auto& k) { k.stream_digest ^= 1; });
  add([](auto& k) { k.chain_digest ^= 1; });
  add([](auto& k) {
    k.voh = Millivolts{std::nextafter(k.voh.mv(), 1e9)};
  });
  add([](auto& k) {
    k.vol = Millivolts{std::nextafter(k.vol.mv(), 1e9)};
  });
  add([](auto& k) {
    k.sample_step = Picoseconds{std::nextafter(k.sample_step.ps(), 1.0)};
  });
  add([](auto& k) {
    k.t_begin = Picoseconds{std::nextafter(k.t_begin.ps(), 1.0)};
  });
  add([](auto& k) { k.k_emit += 1; });  // different chunk bounds
  add([](auto& k) { k.k_end += 1; });
  add([](auto& k) { k.settle += 1; });

  for (std::size_t i = 0; i < near_misses.size(); ++i) {
    EXPECT_FALSE(near_misses[i] == base) << "field " << i;
    EXPECT_NE(near_misses[i].digest(), base.digest()) << "field " << i;
  }
}

TEST(CacheEquiv, NearMissWorkloadsNeverAliasToHits) {
  sig::ScopedRenderCache on(true);
  sig::RenderCache& cache = sig::RenderCache::instance();
  cache.clear();

  const Picoseconds ui{400.0};
  const std::size_t n_bits = 48;
  const Picoseconds t_end{static_cast<double>(n_bits) * ui.ps()};
  const sig::EdgeStream stream = test_stream(99, n_bits, ui);
  const sig::RenderConfig rc;
  const sig::RenderChunking chunking{4096, 2048};

  auto run = [&](const sig::EdgeStream& s, const sig::FilterChain& c,
                 const sig::RenderChunking& ch) {
    const CacheCounters before = CacheCounters::read();
    (void)ana::accumulate_eye(s, c, rc, Picoseconds{0}, t_end, eye_config(ui),
                              ch);
    return CacheCounters::read().delta_since(before);
  };

  // Warm the cache with the base configuration.
  const CacheCounters base = run(stream, test_chain(), chunking);
  EXPECT_EQ(base.hits, 0u);
  EXPECT_GT(base.misses, 0u);

  // A filter-chain parameter one ULP off must miss on every chunk.
  sig::FilterChain chain_off;
  chain_off.add_pole(Picoseconds{std::nextafter(40.0, 41.0)})
      .add_pole(Picoseconds{25.0})
      .set_gain(0.9, Millivolts{2000.0});
  const CacheCounters ulp = run(stream, chain_off, chunking);
  EXPECT_EQ(ulp.hits, 0u);
  EXPECT_GT(ulp.misses, 0u);
  EXPECT_EQ(ulp.collisions, 0u);

  // Different chunk bounds over the same window: same samples eventually,
  // but the chunk windows differ, so nothing may alias. (Bounds whose
  // decompositions share a window — e.g. halving 4096 to 2048 makes the
  // final partial chunks coincide exactly — legitimately hit, because an
  // equal key really does mean byte-identical samples; 3000 shares no
  // window with the 4096 decomposition over this sample count.)
  const CacheCounters bounds = run(stream, test_chain(), {3000, 2048});
  EXPECT_EQ(bounds.hits, 0u);
  EXPECT_GT(bounds.misses, 0u);

  // A stream nudged in time misses everywhere.
  const CacheCounters nudged =
      run(stream.shifted(Picoseconds{1.0 / 4096.0}), test_chain(), chunking);
  EXPECT_EQ(nudged.hits, 0u);

  // The exact base configuration again: all hits, zero misses.
  const CacheCounters again = run(stream, test_chain(), chunking);
  EXPECT_EQ(again.misses, 0u);
  EXPECT_EQ(again.hits, base.misses);
  cache.clear();
}

// ----------------------------------------------------- parallel gate ----

// Mixed workload: a chunked eye pass, a warm repeat of it, and a small
// shmoo whose cells each run a nested eye accumulation. Returns every
// result double bit-cast, plus the cache hit/miss deltas — all of which
// must be identical at every worker count.
std::vector<std::uint64_t> mixed_workload() {
  sig::RenderCache::instance().clear();
  std::vector<std::uint64_t> out;

  const CacheCounters before = CacheCounters::read();
  const auto fp1 = fingerprint(run_eye_workload(1234));
  out.insert(out.end(), fp1.begin(), fp1.end());
  const auto fp2 = fingerprint(run_eye_workload(1234));  // warm repeat
  out.insert(out.end(), fp2.begin(), fp2.end());

  const minitester::Shmoo shmoo = minitester::run_shmoo(
      "tau_ps", {20.0, 30.0, 40.0}, "jitter_ps", {0.0, 2.0, 5.0},
      [](double tau_ps, double jitter_ps) {
        const Picoseconds ui{400.0};
        const std::size_t n_bits = 32;
        Rng rng(77);
        const BitVector bits = BitVector::random(n_bits, rng);
        const sig::EdgeStream stream = sig::EdgeStream::from_bits(
            bits, ui, Picoseconds{0},
            hash_jitter(static_cast<std::uint64_t>(jitter_ps * 1000.0) + 5,
                        jitter_ps));
        sig::FilterChain chain;
        chain.add_pole(Picoseconds{tau_ps});
        const ana::EyeDiagram eye = ana::accumulate_eye(
            stream, chain, sig::RenderConfig{}, Picoseconds{0},
            Picoseconds{static_cast<double>(n_bits) * ui.ps()},
            eye_config(ui), sig::RenderChunking{4096, 2048});
        return 1.0 - eye.metrics().eye_opening.ui();
      });
  for (const auto& row : shmoo.ber) {
    for (double x : row) {
      out.push_back(dbits(x));
    }
  }
  const CacheCounters delta = CacheCounters::read().delta_since(before);
  out.push_back(delta.hits);
  out.push_back(delta.misses);
  out.push_back(delta.inserts);
  out.push_back(delta.collisions);
  sig::RenderCache::instance().clear();
  return out;
}

TEST(ParallelEquiv, MixedEyeShmooWorkloadByteIdenticalAcrossThreadCounts) {
  sig::ScopedRenderCache on(true);
  std::vector<std::uint64_t> serial, one, eight;
  {
    util::ScopedThreads t(0);  // serial fallback
    serial = mixed_workload();
  }
  {
    util::ScopedThreads t(1);
    one = mixed_workload();
  }
  {
    util::ScopedThreads t(8);
    eight = mixed_workload();
  }
  EXPECT_EQ(serial, one);
  EXPECT_EQ(serial, eight);
}

// ------------------------------------------- chunk-boundary regression ----

// The scalar-equivalence harness exposed this latent chunked-path bug: with
// settle_samples == 0 a chunk past the first starts with k_start == k_emit,
// so the `k + 1 == k_emit` context branch in run_window is unreachable and
// on_context() is never called. Pairwise sinks then silently drop every
// adjacent-sample pair that straddles a chunk boundary — for a pole-free
// chain (which genuinely needs no settling) that loses real crossings. The
// fix keeps at least one settle sample for chunks past the first, restoring
// the render.hpp promise that pairwise sinks see every adjacent pair
// exactly once.
TEST(ChunkedRenderRegression, ZeroSettleMustNotDropBoundaryCrossings) {
  sig::ScopedRenderCache cache_off(false);

  // Ideal square wave through a pole-free chain: transitions at t = 0, 50,
  // 100, ... ps. At the 0.5 ps grid every transition lands exactly on
  // sample index 100*m — which chunk_samples = 100 places at a chunk
  // boundary, so every crossing straddles a boundary pair.
  const sig::EdgeStream stream =
      sig::EdgeStream::clock(Picoseconds{100.0}, 24);
  sig::FilterChain chain;  // no poles: passthrough, exact at any settle
  const sig::RenderConfig rc;
  const Picoseconds t_end{2400.0};
  const Millivolts th = rc.levels.midpoint();

  sig::CrossingRecorder whole{th};
  std::vector<sig::WaveformSink*> whole_sinks{&whole};
  sig::render(stream, chain, rc, Picoseconds{0}, t_end, whole_sinks);
  ASSERT_GT(whole.crossings().size(), 10u);

  const sig::RenderChunking chunking{100, 0};
  const std::size_t n_chunks =
      sig::render_chunk_count(rc, Picoseconds{0}, t_end, chunking);
  ASSERT_GT(n_chunks, 10u);
  sig::CrossingRecorder merged{th};
  for (std::size_t c = 0; c < n_chunks; ++c) {
    sig::CrossingRecorder part{th};
    std::vector<sig::WaveformSink*> sinks{&part};
    sig::render_chunk(stream, chain, rc, Picoseconds{0}, t_end, chunking, c,
                      sinks);
    merged.merge(part);
  }

  ASSERT_EQ(merged.crossings().size(), whole.crossings().size());
  for (std::size_t i = 0; i < merged.crossings().size(); ++i) {
    EXPECT_EQ(dbits(merged.crossings()[i].time.ps()),
              dbits(whole.crossings()[i].time.ps()));
    EXPECT_EQ(merged.crossings()[i].rising, whole.crossings()[i].rising);
  }
}

}  // namespace
