// Tests for the test-as-a-service session layer (src/service).
//
// The contract pillars under test:
//   1. Exact accounting: admitted == completed + partial + abandoned, and
//      per plan shards == shards_completed + shards_abandoned — under
//      deadlines, chaos plans and drain-budget exhaustion alike.
//   2. Determinism: replay fingerprints are byte-identical across
//      MGT_THREADS 0/1/8, an empty chaos plan is byte-identical to a
//      fault-free scheduler, and completed-plan digests are invariant to
//      retries and site reassignment.
//   3. Circuit breakers: CLOSED -> OPEN on consecutive failures,
//      time-driven OPEN -> HALF_OPEN, probed reinstatement, and doubling
//      capped quarantine — all in virtual ticks.
//   4. Admission control: typed rejections for invalid plans, full tenant
//      queues and global shed; shedding is never silent.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "service/breaker.hpp"
#include "service/plan.hpp"
#include "service/scheduler.hpp"
#include "service/site.hpp"
#include "util/parallel.hpp"

namespace mgt {
namespace {

using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultSpec;
using service::BreakerState;
using service::CircuitBreaker;
using service::PlanKind;
using service::PlanOutcome;
using service::RejectReason;
using service::Scheduler;
using service::TestPlan;

// Restores the ambient thread configuration when a test body returns.
struct ThreadOverrideGuard {
  ~ThreadOverrideGuard() { util::clear_thread_override(); }
};

TestPlan plan(std::string tenant, std::size_t shards = 4,
              std::size_t chunks = 3, std::uint64_t cost = 2) {
  TestPlan p;
  p.kind = PlanKind::kEyeScan;
  p.tenant = std::move(tenant);
  p.shards = shards;
  p.chunks_per_shard = chunks;
  p.chunk_cost_ticks = cost;
  return p;
}

FaultSpec site_fault(FaultKind kind, std::size_t site, std::uint64_t start,
                     std::uint64_t duration, double severity = 1.0) {
  FaultSpec spec;
  spec.kind = kind;
  spec.component = "site";
  spec.index = site;
  spec.start = start;
  spec.duration = duration;
  spec.severity = severity;
  return spec;
}

void expect_accounting_exact(const Scheduler& sched) {
  const service::ServiceStats& s = sched.stats();
  EXPECT_EQ(s.submitted, s.admitted + s.rejected());
  EXPECT_EQ(s.admitted, s.completed + s.partial + s.abandoned);
  for (const service::PlanResult& r : sched.finished_results()) {
    EXPECT_TRUE(r.accounting_exact()) << "plan " << r.plan_id;
  }
}

// --------------------------------------------------------------- breaker --

TEST(CircuitBreaker, TripsAfterConsecutiveFailures) {
  CircuitBreaker::Config config;
  config.failure_threshold = 3;
  config.quarantine_ticks = 10;
  CircuitBreaker breaker(config);

  EXPECT_EQ(breaker.state(0), BreakerState::kClosed);
  breaker.record_failure(1);
  breaker.record_failure(2);
  EXPECT_EQ(breaker.state(2), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 2u);

  // A success resets the streak: two more failures do not trip.
  breaker.record_success(3);
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
  breaker.record_failure(4);
  breaker.record_failure(5);
  EXPECT_EQ(breaker.state(5), BreakerState::kClosed);

  breaker.record_failure(6);  // third consecutive: trip
  EXPECT_EQ(breaker.state(6), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_EQ(breaker.reopen_tick(), 16u);
}

TEST(CircuitBreaker, QuarantineElapsesIntoHalfOpen) {
  CircuitBreaker::Config config;
  config.failure_threshold = 1;
  config.quarantine_ticks = 8;
  CircuitBreaker breaker(config);

  breaker.record_failure(100);
  EXPECT_EQ(breaker.state(100), BreakerState::kOpen);
  EXPECT_EQ(breaker.state(107), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allows_work(107));
  EXPECT_FALSE(breaker.wants_probe(107));
  // The OPEN -> HALF_OPEN transition is time-driven, not event-driven.
  EXPECT_EQ(breaker.state(108), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.wants_probe(108));
  EXPECT_FALSE(breaker.allows_work(108));
}

TEST(CircuitBreaker, ProbeSuccessReinstatesAndResetsEscalation) {
  CircuitBreaker::Config config;
  config.failure_threshold = 1;
  config.quarantine_ticks = 4;
  config.max_quarantine_ticks = 16;
  CircuitBreaker breaker(config);

  breaker.record_failure(0);           // trip #1: quarantine 4
  EXPECT_EQ(breaker.reopen_tick(), 4u);
  breaker.record_failure(4);           // failed probe: doubled to 8
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_EQ(breaker.reopen_tick(), 12u);
  breaker.record_failure(12);          // failed probe: doubled to 16
  EXPECT_EQ(breaker.reopen_tick(), 28u);
  breaker.record_failure(28);          // capped at 16
  EXPECT_EQ(breaker.reopen_tick(), 44u);

  breaker.record_success(44);          // probe ok: reinstated
  EXPECT_EQ(breaker.state(44), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allows_work(44));

  breaker.record_failure(50);          // escalation forgotten: base window
  EXPECT_EQ(breaker.reopen_tick(), 54u);
}

TEST(CircuitBreaker, FailuresWhileOpenDoNotRetrip) {
  CircuitBreaker::Config config;
  config.failure_threshold = 1;
  config.quarantine_ticks = 100;
  CircuitBreaker breaker(config);

  breaker.record_failure(0);
  EXPECT_EQ(breaker.trips(), 1u);
  // Late verdicts for work assigned before the trip arrive while OPEN.
  breaker.record_failure(1);
  breaker.record_failure(2);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_EQ(breaker.reopen_tick(), 100u);
}

// ------------------------------------------------------------- admission --

TEST(ServiceAdmission, TypedRejectionsAndExactCounts) {
  Scheduler::Config config;
  config.fleet.sites = 2;
  config.tenant_queue_limit = 2;
  config.global_queue_limit = 3;
  Scheduler sched(config, /*seed=*/1);

  // Invalid plans: empty tenant, zero shards, zero chunks, zero cost.
  EXPECT_EQ(sched.submit(plan("")).reason, RejectReason::kInvalidPlan);
  EXPECT_EQ(sched.submit(plan("a", 0)).reason, RejectReason::kInvalidPlan);
  EXPECT_EQ(sched.submit(plan("a", 1, 0)).reason, RejectReason::kInvalidPlan);
  EXPECT_EQ(sched.submit(plan("a", 1, 1, 0)).reason,
            RejectReason::kInvalidPlan);

  const service::Admission first = sched.submit(plan("a"));
  ASSERT_TRUE(first.accepted);
  EXPECT_EQ(first.plan_id, 1u);
  ASSERT_TRUE(sched.submit(plan("a")).accepted);

  // Tenant "a" is at its bound; tenant "b" still fits under the global cap.
  EXPECT_EQ(sched.submit(plan("a")).reason, RejectReason::kTenantQueueFull);
  ASSERT_TRUE(sched.submit(plan("b")).accepted);
  // Global limit (3 unfinished) now sheds everyone — typed as kGlobalShed.
  EXPECT_EQ(sched.submit(plan("c")).reason, RejectReason::kGlobalShed);

  const service::ServiceStats& s = sched.stats();
  EXPECT_EQ(s.submitted, 9u);
  EXPECT_EQ(s.admitted, 3u);
  EXPECT_EQ(s.rejected_invalid, 4u);
  EXPECT_EQ(s.rejected_tenant_queue_full, 1u);
  EXPECT_EQ(s.rejected_global_shed, 1u);
  EXPECT_EQ(s.submitted, s.admitted + s.rejected());

  // Draining frees quota: the tenant can submit again.
  ASSERT_TRUE(sched.drain(10'000));
  EXPECT_TRUE(sched.submit(plan("a")).accepted);
  ASSERT_TRUE(sched.drain(10'000));
  expect_accounting_exact(sched);
}

TEST(ServiceScheduler, FaultFreePlansCompleteWithExactAccounting) {
  Scheduler::Config config;
  config.fleet.sites = 4;
  Scheduler sched(config, /*seed=*/7);

  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    const service::Admission a =
        sched.submit(plan("tenant" + std::to_string(i % 3), 5, 3, 2));
    ASSERT_TRUE(a.accepted);
    ids.push_back(a.plan_id);
  }
  ASSERT_TRUE(sched.drain(10'000));

  const service::ServiceStats& s = sched.stats();
  EXPECT_EQ(s.admitted, 6u);
  EXPECT_EQ(s.completed, 6u);
  EXPECT_EQ(s.partial, 0u);
  EXPECT_EQ(s.abandoned, 0u);
  EXPECT_EQ(s.chunks_completed, 6u * 5u * 3u);
  EXPECT_EQ(s.chunks_retried, 0u);
  EXPECT_EQ(s.breaker_trips, 0u);

  for (const std::uint64_t id : ids) {
    const service::PlanResult* r = sched.result(id);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->outcome, PlanOutcome::kCompleted);
    EXPECT_EQ(r->shards_completed, 5u);
    EXPECT_EQ(r->chunks_completed, 15u);
    EXPECT_EQ(r->chunks_abandoned, 0u);
    EXPECT_FALSE(r->deadline_exceeded);
    EXPECT_TRUE(r->accounting_exact());
    EXPECT_NE(r->digest, 0u);
  }
  expect_accounting_exact(sched);
}

TEST(ServiceScheduler, ResultLookupIsNullUntilFinished) {
  Scheduler sched(Scheduler::Config{}, 1);
  EXPECT_EQ(sched.result(0), nullptr);
  EXPECT_EQ(sched.result(1), nullptr);   // never admitted
  const service::Admission a = sched.submit(plan("t", 1, 1, 4));
  ASSERT_TRUE(a.accepted);
  EXPECT_EQ(sched.result(a.plan_id), nullptr);  // still running
  ASSERT_TRUE(sched.drain(100));
  ASSERT_NE(sched.result(a.plan_id), nullptr);
  EXPECT_EQ(sched.result(a.plan_id)->outcome, PlanOutcome::kCompleted);
}

// ------------------------------------------------- seeds and fingerprints --

TEST(ServiceScheduler, SameSaltDedupsDifferentTenantsDiverge) {
  Scheduler sched(Scheduler::Config{}, 21);
  const auto a1 = sched.submit(plan("alice", 2, 2, 1));
  const auto a2 = sched.submit(plan("alice", 2, 2, 1));  // same namespace+salt
  const auto b = sched.submit(plan("bob", 2, 2, 1));     // other namespace
  TestPlan salted = plan("alice", 2, 2, 1);
  salted.seed_salt = 99;
  const auto a3 = sched.submit(salted);
  ASSERT_TRUE(sched.drain(10'000));

  const std::uint64_t d1 = sched.result(a1.plan_id)->digest;
  const std::uint64_t d2 = sched.result(a2.plan_id)->digest;
  const std::uint64_t db = sched.result(b.plan_id)->digest;
  const std::uint64_t d3 = sched.result(a3.plan_id)->digest;
  EXPECT_EQ(d1, d2) << "identical plan+salt in one tenant must dedup";
  EXPECT_NE(d1, db) << "tenant namespaces must not collide";
  EXPECT_NE(d1, d3) << "salts must separate results within a tenant";
}

TEST(ServiceScheduler, SchedulerSeedNamespacesResults) {
  std::uint64_t digests[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    Scheduler sched(Scheduler::Config{}, /*seed=*/100 + i);
    const auto a = sched.submit(plan("t", 1, 2, 1));
    ASSERT_TRUE(sched.drain(1'000));
    digests[i] = sched.result(a.plan_id)->digest;
  }
  EXPECT_NE(digests[0], digests[1]);
}

// ---------------------------------------------------------------- chaos ---

FaultPlan chaos_plan(std::uint64_t seed) {
  FaultPlan chaos(seed);
  // Site 0 hangs for a long window: hang aborts, breaker trip, quarantine,
  // probed reinstatement after the window ends.
  chaos.schedule(site_fault(FaultKind::kSiteHang, 0, 5, 60));
  // Site 1 refuses a third of the work it is offered for a while.
  chaos.schedule(site_fault(FaultKind::kSpuriousBusy, 1, 0, 80, 0.33));
  // Site 2 runs degraded (slow) the whole time.
  chaos.schedule(site_fault(FaultKind::kSiteSlow, 2, 0, FaultSpec::kForever,
                            1.0));
  return chaos;
}

Scheduler::Config chaos_config(const FaultPlan& chaos) {
  Scheduler::Config config;
  config.fleet.sites = 4;
  config.fleet.slow_multiplier = 4;
  config.fleet.faults = chaos;
  config.hang_budget_ticks = 3;
  config.breaker.failure_threshold = 2;
  config.breaker.quarantine_ticks = 8;
  config.breaker.max_quarantine_ticks = 64;
  config.work_iterations = 64;
  return config;
}

std::string run_chaos_scenario(const Scheduler::Config& config,
                               std::uint64_t seed) {
  Scheduler sched(config, seed);
  for (int i = 0; i < 12; ++i) {
    TestPlan p = plan("tenant" + std::to_string(i % 4), 4, 3, 2);
    p.kind = static_cast<PlanKind>(i % 4);
    if (i % 5 == 4) {
      p.deadline_ticks = 12;  // some plans race a tight deadline
    }
    EXPECT_TRUE(sched.submit(p).accepted);
  }
  EXPECT_TRUE(sched.drain(100'000));
  expect_accounting_exact(sched);
  return sched.replay_fingerprint();
}

TEST(ServiceChaos, AccountingStaysExactUnderChaos) {
  Scheduler sched(chaos_config(chaos_plan(404)), /*seed=*/11);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sched.submit(plan("t" + std::to_string(i % 2), 3, 3, 2))
                    .accepted);
  }
  ASSERT_TRUE(sched.drain(100'000));

  const service::ServiceStats& s = sched.stats();
  EXPECT_EQ(s.admitted, s.completed + s.partial + s.abandoned);
  EXPECT_GT(s.chunks_retried, 0u) << "chaos plan produced no retry pressure";
  EXPECT_GT(s.breaker_trips, 0u) << "chaos plan tripped no breaker";
  for (const service::PlanResult& r : sched.finished_results()) {
    EXPECT_TRUE(r.accounting_exact());
    EXPECT_EQ(r.chunks_completed + r.chunks_abandoned,
              static_cast<std::uint64_t>(r.shards) * 3u);
  }
}

TEST(ServiceChaos, EmptyChaosPlanIsByteIdenticalToFaultFree) {
  Scheduler::Config fault_free;
  fault_free.fleet.sites = 4;
  fault_free.work_iterations = 64;

  Scheduler::Config empty_chaos = fault_free;
  empty_chaos.fleet.faults = FaultPlan(1234);  // seeded but empty

  const std::string a = run_chaos_scenario(fault_free, 5);
  const std::string b = run_chaos_scenario(empty_chaos, 5);
  EXPECT_EQ(a, b);
}

TEST(ServiceChaos, ReplayIsByteIdenticalAcrossThreadCounts) {
  ThreadOverrideGuard guard;
  const Scheduler::Config config = chaos_config(chaos_plan(777));

  std::vector<std::string> fingerprints;
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                    std::size_t{8}}) {
    util::set_thread_override(threads);
    fingerprints.push_back(run_chaos_scenario(config, 42));
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]) << "serial (0) vs 1 thread";
  EXPECT_EQ(fingerprints[0], fingerprints[2]) << "serial (0) vs 8 threads";
}

TEST(ServiceChaos, CompletedPlanDigestSurvivesChaos) {
  // The same plan shape completes under chaos (on healthy sites, with
  // retries) and fault-free; completed digests must match because chunk
  // results are keyed on identity, never on site or attempt count.
  Scheduler clean(chaos_config(FaultPlan(0)), /*seed=*/9);
  Scheduler chaotic(chaos_config(chaos_plan(31337)), /*seed=*/9);

  const auto a = clean.submit(plan("t", 4, 3, 2));
  const auto b = chaotic.submit(plan("t", 4, 3, 2));
  ASSERT_TRUE(clean.drain(100'000));
  ASSERT_TRUE(chaotic.drain(100'000));

  const service::PlanResult* rc = clean.result(a.plan_id);
  const service::PlanResult* rx = chaotic.result(b.plan_id);
  ASSERT_NE(rc, nullptr);
  ASSERT_NE(rx, nullptr);
  ASSERT_EQ(rc->outcome, PlanOutcome::kCompleted);
  if (rx->outcome == PlanOutcome::kCompleted) {
    EXPECT_EQ(rc->digest, rx->digest);
  } else {
    GTEST_SKIP() << "chaos abandoned shards; digest comparison not defined";
  }
}

// ------------------------------------------------ breakers in the fleet ---

TEST(ServiceBreakers, HangingSiteTripsQuarantinesAndReinstated) {
  FaultPlan chaos(55);
  chaos.schedule(site_fault(FaultKind::kSiteHang, 0, 0, 40));
  Scheduler::Config config;
  config.fleet.sites = 2;
  config.fleet.faults = chaos;
  config.hang_budget_ticks = 2;
  config.breaker.failure_threshold = 1;
  config.breaker.quarantine_ticks = 16;
  config.breaker.max_quarantine_ticks = 64;
  Scheduler sched(config, 3);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sched.submit(plan("t", 2, 2, 2)).accepted);
  }
  ASSERT_TRUE(sched.drain(100'000));
  // The queue drains on site 1 before site 0's quarantine elapses; probes
  // keep running on idle ticks, so step past the fault window until the
  // recovered site is probed back into rotation.
  sched.run_for(200);

  const service::ServiceStats& s = sched.stats();
  EXPECT_GE(s.breaker_trips, 1u);
  EXPECT_GE(s.probes, 1u);
  EXPECT_GE(s.breaker_reinstated, 1u)
      << "site 0 recovers at tick 40 and must be probed back in";
  EXPECT_EQ(sched.breaker_state(0), BreakerState::kClosed);
  EXPECT_EQ(sched.breaker(0).trips(), s.breaker_trips);
  // Everything still completed: site 1 carried the load meanwhile.
  EXPECT_EQ(s.completed, 4u);
  expect_accounting_exact(sched);
}

TEST(ServiceBreakers, AllSitesDeadDegradesGracefully) {
  FaultPlan chaos(66);
  chaos.schedule(site_fault(FaultKind::kSpuriousBusy, FaultSpec::kAllIndices,
                            0, FaultSpec::kForever, 1.0));
  Scheduler::Config config;
  config.fleet.sites = 2;
  config.fleet.faults = chaos;
  config.max_shard_retries = 2;
  config.breaker.failure_threshold = 2;
  config.breaker.quarantine_ticks = 4;
  Scheduler sched(config, 8);

  TestPlan dead = plan("t", 3, 2, 1);
  dead.deadline_ticks = 40;  // bounds the wait on a fleet that never heals
  ASSERT_TRUE(sched.submit(dead).accepted);
  ASSERT_TRUE(sched.drain(100'000))
      << "deadline must terminate the plan even with every breaker open";

  const service::ServiceStats& s = sched.stats();
  EXPECT_EQ(s.abandoned, 1u);
  EXPECT_EQ(s.completed, 0u);
  const service::PlanResult* r = sched.result(1);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->outcome, PlanOutcome::kAbandoned);
  EXPECT_TRUE(r->deadline_exceeded);
  EXPECT_EQ(r->shards_abandoned, 3u);
  EXPECT_EQ(r->chunks_completed, 0u);
  EXPECT_EQ(r->chunks_abandoned, 6u);
  EXPECT_EQ(r->digest, 0u) << "no completed shards, empty fold";

  const fault::HealthReport health = sched.self_test();
  EXPECT_EQ(health.worst(), fault::HealthStatus::kFailed)
      << "every breaker open must surface as a failed self-test";
}

// -------------------------------------------------------------- deadlines --

TEST(ServiceDeadlines, TightDeadlineYieldsPartialResults) {
  Scheduler::Config config;
  config.fleet.sites = 1;  // serialize shards so the deadline bites
  Scheduler sched(config, 2);

  TestPlan p = plan("t", 4, 2, 3);  // 24 healthy ticks of work on one site
  p.deadline_ticks = 10;
  const auto a = sched.submit(p);
  ASSERT_TRUE(a.accepted);
  ASSERT_TRUE(sched.drain(10'000));

  const service::PlanResult* r = sched.result(a.plan_id);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->deadline_exceeded);
  EXPECT_EQ(r->outcome, PlanOutcome::kPartial);
  EXPECT_GT(r->shards_completed, 0u);
  EXPECT_GT(r->shards_abandoned, 0u);
  EXPECT_TRUE(r->accounting_exact());
  EXPECT_GT(sched.stats().partial, 0u);
}

TEST(ServiceDeadlines, DeadlineZeroMeansNone) {
  Scheduler::Config config;
  config.fleet.sites = 1;
  Scheduler sched(config, 2);
  ASSERT_TRUE(sched.submit(plan("t", 8, 4, 4)).accepted);  // 128 ticks
  ASSERT_TRUE(sched.drain(10'000));
  EXPECT_EQ(sched.stats().completed, 1u);
  EXPECT_FALSE(sched.finished_results()[0].deadline_exceeded);
}

// ------------------------------------------------------- drain exhaustion --

TEST(ServiceScheduler, DrainBudgetExhaustionForceFinalizesExactly) {
  FaultPlan chaos(77);
  chaos.schedule(site_fault(FaultKind::kSiteHang, FaultSpec::kAllIndices, 0,
                            FaultSpec::kForever));
  Scheduler::Config config;
  config.fleet.sites = 2;
  config.fleet.faults = chaos;
  config.breaker.quarantine_ticks = 1'000'000;  // nothing ever recovers
  config.breaker.max_quarantine_ticks = 1'000'000;
  Scheduler sched(config, 4);

  ASSERT_TRUE(sched.submit(plan("t", 2, 2, 1)).accepted);
  ASSERT_TRUE(sched.submit(plan("u", 2, 2, 1)).accepted);
  EXPECT_FALSE(sched.drain(200)) << "permanently hung fleet cannot drain";

  // Even on the forced path the termination identity holds exactly.
  const service::ServiceStats& s = sched.stats();
  EXPECT_EQ(s.in_flight(), 0u);
  EXPECT_EQ(s.admitted, s.completed + s.partial + s.abandoned);
  for (const service::PlanResult& r : sched.finished_results()) {
    EXPECT_TRUE(r.accounting_exact());
  }
}

// -------------------------------------------------------------- self-test --

TEST(ServiceSelfTest, ReportsSchedulerAndFleetComponents) {
  Scheduler sched(Scheduler::Config{}, 1);
  fault::HealthReport report = sched.self_test();
  EXPECT_EQ(report.worst(), fault::HealthStatus::kOk);
  bool saw_scheduler = false;
  bool saw_fleet = false;
  for (const fault::ComponentHealth& entry : report.components()) {
    saw_scheduler |= entry.component == "scheduler";
    saw_fleet |= entry.component.rfind("fleet.site", 0) == 0;
  }
  EXPECT_TRUE(saw_scheduler);
  EXPECT_TRUE(saw_fleet);
}

TEST(ServiceSelfTest, DeepProbeRunsCoreSelfTest) {
  FaultPlan chaos(88);
  chaos.schedule(site_fault(FaultKind::kSiteHang, 0, 0, 20));
  Scheduler::Config config;
  config.fleet.sites = 2;
  config.fleet.deep_probe = true;  // HALF_OPEN probes run core::TestSystem
  config.fleet.faults = chaos;
  config.hang_budget_ticks = 1;
  config.breaker.failure_threshold = 1;
  config.breaker.quarantine_ticks = 4;
  Scheduler sched(config, 12);

  ASSERT_TRUE(sched.submit(plan("t", 2, 2, 1)).accepted);
  ASSERT_TRUE(sched.drain(100'000));
  sched.run_for(100);  // step past the fault window so a deep probe passes
  EXPECT_GE(sched.stats().probes, 1u);
  EXPECT_GE(sched.stats().breaker_reinstated, 1u);
}

}  // namespace
}  // namespace mgt
