// Tests for the second extension wave: jitter decomposition, flow
// reordering statistics, and receiver start-up / protocol-variant
// behavior.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/decompose.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "signal/jitter.hpp"
#include "signal/render.hpp"
#include "signal/sinks.hpp"
#include "testbed/receiver.hpp"
#include "testbed/transmitter.hpp"
#include "util/rng.hpp"
#include "vortex/traffic.hpp"

namespace mgt {
namespace {

// ------------------------------------------------------------- decompose --

/// Crossings with known injected RJ sigma and dual-Dirac DJ.
std::vector<sig::Crossing> synthetic_tie(std::size_t n, double ui,
                                         double rj_sigma, double dj_pp,
                                         Rng& rng) {
  std::vector<sig::Crossing> out;
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    double t = static_cast<double>(k + 1) * ui;
    t += rng.gaussian(0.0, rj_sigma);
    t += rng.chance(0.5) ? dj_pp / 2.0 : -dj_pp / 2.0;
    out.push_back({Picoseconds{t}, k % 2 == 0});
  }
  return out;
}

TEST(Decompose, RecoversPureRj) {
  Rng rng(1);
  const auto crossings = synthetic_tie(50000, 400.0, 3.2, 0.0, rng);
  const auto d = ana::decompose_jitter(crossings, Picoseconds{400.0});
  ASSERT_TRUE(d.valid);
  EXPECT_NEAR(d.rj_sigma.ps(), 3.2, 0.3);
  EXPECT_LT(d.dj_pp.ps(), 1.0);
}

TEST(Decompose, RecoversRjPlusDj) {
  Rng rng(2);
  const auto crossings = synthetic_tie(50000, 400.0, 3.0, 20.0, rng);
  const auto d = ana::decompose_jitter(crossings, Picoseconds{400.0});
  ASSERT_TRUE(d.valid);
  EXPECT_NEAR(d.rj_sigma.ps(), 3.0, 0.5);
  // Dual-Dirac DJ is by construction smaller than the true bimodal p-p
  // (the model's well-known conservatism: DJ(dd) ~ 0.8-0.9 x DJ(pp)).
  EXPECT_GT(d.dj_pp.ps(), 0.75 * 20.0);
  EXPECT_LT(d.dj_pp.ps(), 20.0 + 1.0);
  // TJ extrapolation stays within a few ps of the exact composition.
  EXPECT_NEAR(d.tj_at_ber(1e-12).ps(), 20.0 + 2.0 * 7.034 * 3.0, 7.0);
}

TEST(Decompose, TooFewSamplesIsInvalid) {
  Rng rng(3);
  const auto crossings = synthetic_tie(50, 400.0, 3.0, 0.0, rng);
  EXPECT_FALSE(ana::decompose_jitter(crossings, Picoseconds{400.0}).valid);
}

TEST(Decompose, RealChannelSplitsConsistently) {
  // On the real test-bed channel, decomposition must roughly recover the
  // known budget: RJ sigma ~3.2 ps and DJ tens of ps, with
  // DJ + RJ-spread ~= measured TJ p-p.
  core::TestSystem sys(core::presets::optical_testbed(), 42);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  const auto stim = sys.generate(24000);
  const sig::PeclLevels rails =
      sig::attenuated(stim.levels, stim.chain.gain());
  sig::CrossingRecorder recorder(rails.midpoint());
  sig::RenderConfig config{.levels = stim.levels};
  sig::render(stim.edges, stim.chain, config,
              Picoseconds{stim.t0.ps() + 16.0 * stim.ui.ps()},
              Picoseconds{stim.t0.ps() + 23999.0 * stim.ui.ps()},
              {&recorder});

  const auto d =
      ana::decompose_jitter(recorder.crossings(), stim.ui, stim.t0);
  ASSERT_TRUE(d.valid);
  EXPECT_NEAR(d.rj_sigma.ps(), 3.2, 1.5);
  EXPECT_GT(d.dj_pp.ps(), 10.0);
  EXPECT_LT(d.dj_pp.ps(), 40.0);

  const auto tj = ana::measure_crossover_jitter(recorder.crossings(),
                                                stim.ui, stim.t0);
  EXPECT_NEAR(d.dj_pp.ps() +
                  sig::expected_gaussian_pp(tj.count, d.rj_sigma.ps()),
              tj.peak_to_peak.ps(), 8.0);
}

// -------------------------------------------------------------- reorder --

TEST(Reorder, UncontendedTrafficStaysInOrder) {
  const auto geometry = vortex::Geometry::for_heights(16, 4);
  const auto r = vortex::run_traffic(
      geometry, vortex::TrafficPattern::Neighbor, 0.05, 400, 7);
  EXPECT_EQ(r.reorder_rate, 0.0);
}

TEST(Reorder, ContentionCausesFlowReordering) {
  const auto geometry = vortex::Geometry::for_heights(16, 4);
  const auto light = vortex::run_traffic(
      geometry, vortex::TrafficPattern::Uniform, 0.1, 600, 7);
  const auto heavy = vortex::run_traffic(
      geometry, vortex::TrafficPattern::Uniform, 0.9, 600, 7);
  EXPECT_GE(heavy.reorder_rate, light.reorder_rate);
  EXPECT_GT(heavy.reorder_rate, 0.0);  // deflections reorder flows
}

// ------------------------------------------------- receiver start-up ----

testbed::SlotFormat short_preamble_format(std::size_t pre_clocks) {
  testbed::SlotFormat fmt;
  // Keep the 46-bit window: move bits between pre and post clocks.
  fmt.pre_clock_bits = pre_clocks;
  fmt.post_clock_bits = fmt.window_bits - fmt.data_bits - pre_clocks;
  fmt.validate();
  return fmt;
}

TEST(ReceiverStartup, AmplePreClocksLoseNothing) {
  testbed::OpticalTransmitter::Config config;
  config.format = short_preamble_format(7);
  config.channel = core::presets::optical_testbed();
  testbed::OpticalTransmitter tx(config, 5);
  testbed::Receiver rx(
      testbed::Receiver::Config{.format = config.format, .startup_edges = 3});
  Rng rng(6);
  testbed::TestbedPacket packet;
  for (auto& lane : packet.payload) {
    lane = BitVector::random(32, rng);
  }
  const auto result =
      rx.receive(tx.transmit(packet, Picoseconds{0.0}), Picoseconds{0.0});
  EXPECT_EQ(result.bits_lost_to_startup, 0u);
  for (std::size_t ch = 0; ch < testbed::kDataChannels; ++ch) {
    EXPECT_EQ(result.packet.payload[ch], packet.payload[ch]);
  }
}

TEST(ReceiverStartup, TooFewPreClocksTruncateLeadingBits) {
  // Protocol variant with only 1 pre-clock against a receiver that needs
  // 3 start-up edges: the first two payload bits are lost.
  testbed::OpticalTransmitter::Config config;
  config.format = short_preamble_format(1);
  config.channel = core::presets::optical_testbed();
  testbed::OpticalTransmitter tx(config, 7);
  testbed::Receiver rx(
      testbed::Receiver::Config{.format = config.format, .startup_edges = 3});
  Rng rng(8);
  testbed::TestbedPacket packet;
  for (auto& lane : packet.payload) {
    lane = BitVector(32, true);  // all ones: any lost bit reads as 0
  }
  const auto result =
      rx.receive(tx.transmit(packet, Picoseconds{0.0}), Picoseconds{0.0});
  EXPECT_EQ(result.bits_lost_to_startup, 2u);
  EXPECT_FALSE(result.packet.payload[0].get(0));
  EXPECT_FALSE(result.packet.payload[0].get(1));
  EXPECT_TRUE(result.packet.payload[0].get(2));
}

TEST(ReceiverStartup, ProtocolSweepFindsMinimumPreamble) {
  // The protocol study the test bed exists for: sweep the pre-clock count
  // and find the smallest preamble the receiver tolerates.
  std::size_t minimum = 99;
  for (std::size_t pre = 0; pre <= 7; ++pre) {
    testbed::OpticalTransmitter::Config config;
    config.format = short_preamble_format(pre);
    config.channel = core::presets::optical_testbed();
    testbed::OpticalTransmitter tx(config, 11);
    testbed::Receiver rx(testbed::Receiver::Config{.format = config.format,
                                                   .startup_edges = 3});
    Rng rng(12);
    testbed::TestbedPacket packet;
    for (auto& lane : packet.payload) {
      lane = BitVector::random(32, rng);
    }
    const auto result =
        rx.receive(tx.transmit(packet, Picoseconds{0.0}), Picoseconds{0.0});
    if (result.bits_lost_to_startup == 0 &&
        result.packet.payload[0] == packet.payload[0]) {
      minimum = std::min(minimum, pre);
    }
  }
  EXPECT_EQ(minimum, 3u);  // exactly the receiver's startup requirement
}

}  // namespace
}  // namespace mgt
