// Tests for the resilient link layer (src/link): CRC framing, go-back-N
// ARQ with bounded retry/timeout/backoff, sync-loss resynchronization, and
// degraded-mode rate fallback.
//
// The layer inherits the repo's two determinism pillars and adds one of its
// own, all checked here:
//   1. An empty FaultPlan leaves every payload byte-identical (no retries,
//      no RNG draws).
//   2. Channel corruption is keyed on (plan seed, component, slot tick), so
//      faulted transfers reproduce exactly at every MGT_THREADS setting.
//   3. Exact accounting: offered == delivered + abandoned at every severity,
//      and below the abandonment threshold delivery is lossless.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/faultsweep.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "link/arq.hpp"
#include "link/crc.hpp"
#include "link/frame.hpp"
#include "link/link.hpp"
#include "link/sync.hpp"
#include "testbed/testbed.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace mgt {
namespace {

using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultSpec;
using fault::HealthStatus;
using link::ArqConfig;
using link::ArqReceiver;
using link::FrameCodec;
using link::FrameKind;
using link::LinkChannel;
using link::LinkFrame;
using link::LinkStats;
using link::SendResult;
using link::SyncMonitor;
using link::SyncState;

struct ThreadOverrideGuard {
  ~ThreadOverrideGuard() { util::clear_thread_override(); }
};

std::vector<BitVector> random_payloads(std::size_t n, std::size_t bits,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BitVector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(BitVector::random(bits, rng));
  }
  return out;
}

/// A corruption plan for the forward channel component "link.fwd".
FaultPlan corruption_plan(double severity, std::uint64_t seed = 42) {
  FaultPlan plan(seed);
  FaultSpec spec;
  spec.kind = FaultKind::kFrameCorruption;
  spec.component = "link.fwd";
  spec.severity = severity;
  plan.schedule(spec);
  return plan;
}

LinkChannel make_channel(const FaultPlan& plan, LinkChannel::Config config = {}) {
  return LinkChannel(config, link::make_fault_transport(plan, "link.fwd"),
                     link::make_fault_transport(plan, "link.rev"));
}

// -------------------------------------------------------------------- crc --

TEST(LinkCrc, StandardCheckVectors) {
  const std::vector<std::uint8_t> check = {'1', '2', '3', '4', '5',
                                           '6', '7', '8', '9'};
  EXPECT_EQ(link::crc8(check), 0xF4);
  EXPECT_EQ(link::crc16(check), 0x29B1);
}

TEST(LinkCrc, DetectsSingleBitFlips) {
  Rng rng(7);
  const BitVector bits = BitVector::random(96, rng);
  const std::uint16_t clean = link::crc16(bits);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    BitVector flipped = bits;
    flipped.set(i, !flipped.get(i));
    EXPECT_NE(link::crc16(flipped), clean) << "missed flip at bit " << i;
  }
}

TEST(LinkCrc, PackUnpackRoundTrip) {
  const std::uint64_t value = 0xDEADBEEFCAFE1234ull;
  const BitVector bits = link::pack_bits(value, 64);
  EXPECT_EQ(link::unpack_bits(bits, 0, 64), value);
  EXPECT_EQ(link::unpack_bits(link::pack_bits(0x2B, 8), 0, 8), 0x2Bu);
}

// ------------------------------------------------------------------ codec --

TEST(LinkFrameCodec, RoundTripsAllKinds) {
  const FrameCodec codec{testbed::SlotFormat{}};
  EXPECT_EQ(codec.user_bits(), 4 * testbed::SlotFormat{}.data_bits - 32);

  Rng rng(3);
  for (const FrameKind kind :
       {FrameKind::kData, FrameKind::kAck, FrameKind::kNak, FrameKind::kIdle}) {
    LinkFrame frame;
    frame.kind = kind;
    frame.seq = 0x1234567890ull + static_cast<std::uint64_t>(kind);
    if (kind == FrameKind::kData) {
      frame.payload = BitVector::random(codec.user_bits(), rng);
    } else if (kind != FrameKind::kIdle) {
      frame.payload = link::pack_bits(77, 64);
    }
    const auto decoded = codec.decode(codec.encode(frame));
    EXPECT_TRUE(decoded.ok()) << to_string(kind);
    EXPECT_EQ(decoded.frame.kind, kind);
    EXPECT_EQ(decoded.frame.seq, frame.seq & 0xFFu) << "wire seq is 8 bits";
    if (kind == FrameKind::kData) {
      EXPECT_EQ(decoded.frame.payload, frame.payload);
    }
  }
}

TEST(LinkFrameCodec, FlagsCorruptionInTheRightDomain) {
  const FrameCodec codec{testbed::SlotFormat{}};
  Rng rng(5);
  LinkFrame frame;
  frame.kind = FrameKind::kData;
  frame.seq = 9;
  frame.payload = BitVector::random(codec.user_bits(), rng);
  const testbed::TestbedPacket clean = codec.encode(frame);

  // Flip one user-payload bit: payload CRC must fail, header CRC holds.
  testbed::TestbedPacket payload_hit = clean;
  payload_hit.payload[0].set(3, !payload_hit.payload[0].get(3));
  const auto p = codec.decode(payload_hit);
  EXPECT_TRUE(p.header_ok);
  EXPECT_FALSE(p.payload_ok);

  // Flip a header-channel bit: header CRC must fail.
  testbed::TestbedPacket header_hit = clean;
  header_hit.header ^= 0x1;
  EXPECT_FALSE(codec.decode(header_hit).header_ok);
}

TEST(LinkFrameCodec, NarrowFormatFitsCodecButNotTheLinkProtocol) {
  // A consistent slot geometry whose payload window is too narrow for the
  // 64-bit cumulative ack: the codec accepts it (4*16 = 64 > 32 overhead
  // bits), but LinkChannel must reject it at construction instead of
  // throwing mid-transfer on the first ACK exchange.
  testbed::SlotFormat narrow;
  narrow.data_bits = 16;
  narrow.window_bits = 7 + 16 + 7;
  narrow.slot_bits = 8 + 2 * 5 + narrow.window_bits;
  narrow.validate();

  const FrameCodec codec{narrow};
  EXPECT_EQ(codec.user_bits(), 32u) << "codec alone tolerates the format";

  const FaultPlan empty;
  LinkChannel::Config config;
  config.format = narrow;
  EXPECT_THROW(make_channel(empty, config), Error)
      << "user_bits() < 64 cannot carry the cumulative ack";
}

// ------------------------------------------------------------ arq receiver --

TEST(LinkArqReceiver, ReconstructsFullSequenceAcrossWrap) {
  ArqReceiver rx(8);
  // Drive the expectation to 300 (past the 8-bit wrap).
  for (std::uint64_t s = 0; s < 300; ++s) {
    EXPECT_TRUE(rx.on_data(s).deliver);
  }
  EXPECT_EQ(rx.expected(), 300u);
  EXPECT_EQ(rx.reconstruct(static_cast<std::uint8_t>(300 & 0xFF)), 300u);
  EXPECT_EQ(rx.reconstruct(static_cast<std::uint8_t>(305 & 0xFF)), 305u);
  EXPECT_EQ(rx.reconstruct(static_cast<std::uint8_t>(295 & 0xFF)), 295u);
}

TEST(LinkArqReceiver, BehindStreamStartIsSignalledNotDelivered) {
  // A wire sequence that decodes to before the stream began (only a CRC-8
  // false pass on a corrupted header can produce one) must be reported
  // explicitly — a clamped 0 would equal a fresh receiver's expectation
  // and deliver a wrong payload as payload #0.
  ArqReceiver fresh(8);
  EXPECT_EQ(fresh.reconstruct(0xFF), std::nullopt);
  EXPECT_EQ(fresh.expected(), 0u) << "a behind frame must not advance state";

  // Once the stream is past the wrap distance, "behind" is an ordinary
  // duplicate and still reconstructs.
  ArqReceiver rx(8);
  for (std::uint64_t s = 0; s < 3; ++s) {
    EXPECT_TRUE(rx.on_data(s).deliver);
  }
  EXPECT_EQ(rx.reconstruct(1), 1u);
  EXPECT_TRUE(rx.on_data(1).duplicate);
  EXPECT_EQ(rx.reconstruct(0xFF), std::nullopt) << "still before the start";
}

TEST(LinkArqReceiver, VerdictsAreExclusive) {
  ArqReceiver rx(4);
  const auto first = rx.on_data(0);
  EXPECT_TRUE(first.deliver && !first.duplicate && !first.gap);
  const auto dup = rx.on_data(0);
  EXPECT_TRUE(!dup.deliver && dup.duplicate && !dup.gap);
  const auto gap = rx.on_data(5);
  EXPECT_TRUE(!gap.deliver && !gap.duplicate && gap.gap);
}

// ------------------------------------------------------------ sync monitor --

TEST(LinkSyncMonitor, WalksLockedSuspectHuntingRelock) {
  SyncMonitor sync{SyncMonitor::Config{.hunt_after = 2, .relock_guards = 2}};
  EXPECT_EQ(sync.state(), SyncState::kLocked);

  sync.observe_bad_frame();
  EXPECT_EQ(sync.state(), SyncState::kSuspect);
  sync.observe_good_frame();
  EXPECT_EQ(sync.state(), SyncState::kLocked) << "one bad frame is forgiven";

  sync.observe_bad_frame();
  sync.observe_bad_frame();
  EXPECT_EQ(sync.state(), SyncState::kHunting);
  EXPECT_FALSE(sync.engaged());
  EXPECT_EQ(sync.sync_losses(), 1u);

  sync.observe_guard(true);
  sync.observe_guard(false);  // dirty guard resets the clean run
  sync.observe_guard(true);
  EXPECT_EQ(sync.state(), SyncState::kHunting);
  sync.observe_guard(true);
  EXPECT_EQ(sync.state(), SyncState::kRelock);
  EXPECT_EQ(sync.relocks(), 1u);

  // Probational: a bad frame in RELOCK means the lock was false.
  sync.observe_bad_frame();
  EXPECT_EQ(sync.state(), SyncState::kHunting);
  sync.observe_guard(true);
  sync.observe_guard(true);
  sync.observe_good_frame();
  EXPECT_EQ(sync.state(), SyncState::kLocked);
}

// ----------------------------------------------------------- clean channel --

TEST(LinkChannel, CleanChannelDeliversByteIdenticalWithoutRetries) {
  const FaultPlan empty;
  LinkChannel ch = make_channel(empty);
  const auto payloads = random_payloads(32, ch.codec().user_bits(), 11);

  const auto results = ch.transfer(payloads);
  const LinkStats stats = ch.stats();

  ASSERT_EQ(results.size(), payloads.size());
  for (const SendResult& r : results) {
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.attempts, 1u);
  }
  EXPECT_EQ(ch.delivered_payloads(), payloads) << "byte-identical delivery";
  EXPECT_TRUE(stats.accounting_closed());
  EXPECT_EQ(stats.delivered, payloads.size());
  EXPECT_EQ(stats.abandoned, 0u);
  EXPECT_EQ(stats.retransmissions, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.sync_losses, 0u);
  EXPECT_EQ(stats.raw_fer(), 0.0);
  EXPECT_EQ(stats.residual_fer(), 0.0);
  EXPECT_TRUE(ch.health().all_ok());
}

TEST(LinkChannel, CleanRunsAreByteIdenticalAcrossInstances) {
  const FaultPlan empty;
  const auto payloads =
      random_payloads(16, FrameCodec{testbed::SlotFormat{}}.user_bits(), 23);

  LinkChannel a = make_channel(empty);
  LinkChannel b = make_channel(empty);
  (void)a.transfer(payloads);
  (void)b.transfer(payloads);
  EXPECT_EQ(a.delivered_payloads(), b.delivered_payloads());
  EXPECT_EQ(a.stats().slots, b.stats().slots);
}

// ------------------------------------------------------------- faulted arq --

TEST(LinkChannel, ArqMasksModerateCorruption) {
  // severity is a per-bit flip probability over ~132 frame bits, so 0.003
  // ruins roughly a third of all frames — plenty for the ARQ to sweat
  // without crossing the abandonment threshold.
  const FaultPlan plan = corruption_plan(0.003);
  LinkChannel ch = make_channel(plan);
  const auto payloads = random_payloads(64, ch.codec().user_bits(), 31);

  const auto results = ch.transfer(payloads);
  const LinkStats stats = ch.stats();

  EXPECT_TRUE(stats.accounting_closed());
  EXPECT_GT(stats.retransmissions, 0u) << "channel must actually corrupt";
  EXPECT_EQ(stats.abandoned, 0u) << "moderate severity must be fully masked";
  for (const SendResult& r : results) {
    EXPECT_TRUE(r.delivered);
  }
  EXPECT_EQ(ch.delivered_payloads(), payloads)
      << "ARQ recovery must be byte-exact";
  EXPECT_LT(stats.residual_fer(), stats.raw_fer());
}

TEST(LinkChannel, FullCorruptionAbandonsWithExactAccounting) {
  const FaultPlan plan = corruption_plan(0.5);
  ArqConfig arq;
  arq.max_retries = 3;
  LinkChannel::Config config;
  config.arq = arq;
  LinkChannel ch = make_channel(plan, config);
  const auto payloads = random_payloads(8, ch.codec().user_bits(), 47);

  const auto results = ch.transfer(payloads);
  const LinkStats stats = ch.stats();

  EXPECT_TRUE(stats.accounting_closed());
  EXPECT_EQ(stats.offered, payloads.size());
  EXPECT_GT(stats.abandoned, 0u);
  std::size_t delivered = 0;
  for (const SendResult& r : results) {
    delivered += r.delivered ? 1 : 0;
  }
  EXPECT_EQ(delivered, stats.delivered);
  // Whatever did get through is a prefix-free in-order subset, byte-exact.
  ASSERT_EQ(ch.delivered_payloads().size(), stats.delivered);
  std::size_t at = 0;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    if (results[i].delivered) {
      EXPECT_EQ(ch.delivered_payloads()[at++], payloads[i]);
    }
  }
  // Degradation must be reported, not hidden.
  EXPECT_EQ(ch.health().find("arq")->status, HealthStatus::kDegraded);
}

TEST(LinkChannel, TimeoutsBackOffExponentiallyAndStayBounded) {
  // A reverse channel that is always dark: every round times out, and the
  // transfer must still terminate with bounded, deterministic slot time.
  // The forward channel is clean, so the payload did reach the receiver —
  // retry exhaustion must reconcile it as delivered (an ack loss), not
  // declare it abandoned.
  FaultPlan plan(9);
  FaultSpec los;
  los.kind = FaultKind::kLossOfSignal;
  los.component = "link.rev";
  plan.schedule(los);

  ArqConfig arq;
  arq.window = 1;
  arq.max_retries = 3;
  arq.timeout_slots = 2;
  arq.backoff_base = 2;
  arq.backoff_cap_slots = 8;
  LinkChannel::Config config;
  config.arq = arq;

  LinkChannel ch = make_channel(plan, config);
  const auto payloads = random_payloads(1, ch.codec().user_bits(), 3);
  const auto results = ch.transfer(payloads);

  EXPECT_TRUE(results[0].delivered) << "clean forward channel: ack loss only";
  const LinkStats stats = ch.stats();
  EXPECT_TRUE(stats.accounting_closed());
  EXPECT_EQ(stats.abandoned, 0u);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.reconciled, 1u);
  EXPECT_EQ(ch.delivered_payloads(), payloads);
  EXPECT_EQ(stats.timeouts, 4u) << "initial round + max_retries";
  // Slots: 4 rounds x (1 data + 1 response) + backoffs 2, 4, 8, 8 (capped).
  EXPECT_EQ(stats.slots, 4u * 2u + 2u + 4u + 8u + 8u);

  LinkChannel again = make_channel(plan, config);
  (void)again.transfer(payloads);
  EXPECT_EQ(again.stats().slots, stats.slots) << "protocol time is replayable";
}

TEST(LinkChannel, TotalOutageAbandonsOnlyTrulyUndeliveredPayloads) {
  // Both directions dark: nothing reaches the receiver, so retry
  // exhaustion must abandon — and the delivered stream stays empty.
  FaultPlan plan(21);
  for (const char* component : {"link.fwd", "link.rev"}) {
    FaultSpec los;
    los.kind = FaultKind::kLossOfSignal;
    los.component = component;
    plan.schedule(los);
  }

  ArqConfig arq;
  arq.window = 2;
  arq.max_retries = 2;
  arq.timeout_slots = 1;
  arq.max_resync_slots = 4;
  LinkChannel::Config config;
  config.arq = arq;

  LinkChannel ch = make_channel(plan, config);
  const auto payloads = random_payloads(3, ch.codec().user_bits(), 29);
  const auto results = ch.transfer(payloads);

  const LinkStats stats = ch.stats();
  EXPECT_TRUE(stats.accounting_closed());
  EXPECT_EQ(stats.abandoned, payloads.size());
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_EQ(stats.reconciled, 0u);
  EXPECT_TRUE(ch.delivered_payloads().empty());
  for (const SendResult& r : results) {
    EXPECT_FALSE(r.delivered);
  }
}

TEST(LinkChannel, ReverseOutageSpanningRetryBudgetNeverSubstitutesPayloads) {
  // Regression for the go-back-N abandonment bug: a clean forward channel
  // with a finite reverse-channel outage longer than the retry budget. The
  // receiver advances past the transmitter's acked base during the outage;
  // a recovered cumulative ack must then reconcile cleanly instead of
  // tripping the window-bound check or marking later payloads delivered
  // while delivered_payloads() holds the earlier ones.
  FaultPlan plan(33);
  FaultSpec los;
  los.kind = FaultKind::kLossOfSignal;
  los.component = "link.rev";
  los.start = 0;
  los.duration = 40;
  plan.schedule(los);

  ArqConfig arq;
  arq.window = 4;
  arq.max_retries = 2;
  arq.timeout_slots = 2;
  arq.backoff_base = 2;
  arq.backoff_cap_slots = 8;
  LinkChannel::Config config;
  config.arq = arq;

  LinkChannel ch = make_channel(plan, config);
  const auto payloads = random_payloads(12, ch.codec().user_bits(), 61);
  const auto results = ch.transfer(payloads);

  const LinkStats stats = ch.stats();
  EXPECT_TRUE(stats.accounting_closed());
  EXPECT_GT(stats.timeouts, 0u) << "the outage must actually bite";
  EXPECT_GT(stats.reconciled, 0u)
      << "at least one payload must exhaust its retries during the outage";
  EXPECT_EQ(stats.abandoned, 0u) << "the forward channel never lost a frame";
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].delivered) << "payload " << i;
  }
  EXPECT_EQ(ch.delivered_payloads(), payloads)
      << "the delivered stream must be the offered stream, no substitution";

  LinkChannel again = make_channel(plan, config);
  (void)again.transfer(payloads);
  EXPECT_EQ(again.stats().slots, stats.slots) << "recovery is replayable";
}

// -------------------------------------------------------- sync loss / hunt --

TEST(LinkChannel, SyncLossTriggersHuntAndRelock) {
  // Frame-bit violations for a stretch of slots, then a clean channel.
  FaultPlan plan(17);
  FaultSpec sync_loss;
  sync_loss.kind = FaultKind::kSyncLoss;
  sync_loss.component = "link.fwd";
  sync_loss.start = 2;
  sync_loss.duration = 6;
  plan.schedule(sync_loss);

  LinkChannel::Config config;
  config.sync.hunt_after = 2;
  config.sync.relock_guards = 2;
  LinkChannel ch = make_channel(plan, config);
  const auto payloads = random_payloads(24, ch.codec().user_bits(), 19);

  const auto results = ch.transfer(payloads);
  const LinkStats stats = ch.stats();

  EXPECT_TRUE(stats.accounting_closed());
  EXPECT_GE(stats.sync_losses, 1u) << "the outage must be detected";
  EXPECT_GE(stats.relocks, 1u) << "the link must re-lock afterwards";
  EXPECT_GT(stats.resync_slots, 0u) << "hunting costs guard slots";
  for (const SendResult& r : results) {
    EXPECT_TRUE(r.delivered) << "a 6-slot outage is fully recoverable";
  }
  EXPECT_EQ(ch.delivered_payloads(), payloads);
}

// ---------------------------------------------------------- degraded mode --

TEST(LinkChannel, DegradedModeStepsRateDownAndReportsIt) {
  const FaultPlan plan = corruption_plan(0.5, 77);
  ArqConfig arq;
  arq.max_retries = 2;
  LinkChannel::Config config;
  config.arq = arq;
  config.degrade_window = 4;
  config.degrade_fer_threshold = 0.25;
  config.max_rate_steps = 2;

  LinkChannel ch = make_channel(plan, config);
  const auto payloads = random_payloads(32, ch.codec().user_bits(), 59);
  (void)ch.transfer(payloads);

  EXPECT_GT(ch.rate_steps(), 0u) << "sustained residual FER must step rate";
  EXPECT_LE(ch.rate_steps(), config.max_rate_steps);
  const double factor = std::ldexp(1.0, static_cast<int>(ch.rate_steps()));
  EXPECT_DOUBLE_EQ(ch.current_ui().ps(),
                   testbed::SlotFormat{}.ui.ps() * factor);
  EXPECT_LT(ch.current_rate().gbps(),
            GbitsPerSec::from_ui(testbed::SlotFormat{}.ui).gbps());

  const fault::HealthReport report = ch.health();
  ASSERT_NE(report.find("rate"), nullptr);
  EXPECT_EQ(report.find("rate")->status, HealthStatus::kDegraded);
  EXPECT_EQ(ch.stats().rate_steps, ch.rate_steps());
}

// ------------------------------------------------- determinism (property) --

TEST(LinkProperty, BelowThresholdSeveritiesDeliverByteIdenticalAtAllThreads) {
  // For any seeded plan with severity below the abandonment threshold, the
  // delivered stream equals the offered stream bit for bit, at MGT_THREADS
  // 0, 1 and 8, with identical protocol time and accounting.
  ThreadOverrideGuard guard;
  const std::size_t kPayloads = 24;

  for (const double severity : {0.0005, 0.001, 0.003}) {
    for (const std::uint64_t seed : {1ull, 1234ull, 987654321ull}) {
      const FaultPlan plan = corruption_plan(severity, seed);
      std::vector<LinkStats> stats;
      for (const std::size_t threads : {0u, 1u, 8u}) {
        util::set_thread_override(threads);
        LinkChannel ch = make_channel(plan);
        const auto payloads =
            random_payloads(kPayloads, ch.codec().user_bits(), seed ^ 0xABC);
        const auto results = ch.transfer(payloads);
        for (const SendResult& r : results) {
          ASSERT_TRUE(r.delivered)
              << "severity " << severity << " seed " << seed;
        }
        ASSERT_EQ(ch.delivered_payloads(), payloads)
            << "severity " << severity << " seed " << seed << " threads "
            << threads;
        stats.push_back(ch.stats());
      }
      // The runs must be indistinguishable, not merely all-successful.
      for (std::size_t i = 1; i < stats.size(); ++i) {
        EXPECT_EQ(stats[i].slots, stats[0].slots);
        EXPECT_EQ(stats[i].retransmissions, stats[0].retransmissions);
        EXPECT_EQ(stats[i].integrity_failures, stats[0].integrity_failures);
        EXPECT_TRUE(stats[i].accounting_closed());
      }
    }
  }
}

// -------------------------------------------------------------- faultsweep --

TEST(LinkFaultSweep, ResidualFerStaysStrictlyBelowRawFer) {
  const std::vector<double> severities = {0.0, 0.001, 0.003, 0.005, 0.01};
  const auto sweep = ana::link_fault_sweep(severities, [](double severity) {
    const FaultPlan plan = corruption_plan(severity, 1313);
    ArqConfig arq;
    arq.max_retries = 6;
    LinkChannel::Config config;
    config.arq = arq;
    LinkChannel ch = make_channel(plan, config);
    const auto payloads = random_payloads(48, ch.codec().user_bits(), 8);
    (void)ch.transfer(payloads);
    const LinkStats stats = ch.stats();
    ana::LinkSweepPoint point;
    point.raw_fer = stats.raw_fer();
    point.residual_fer = stats.residual_fer();
    point.offered = stats.offered;
    point.delivered = stats.delivered;
    point.abandoned = stats.abandoned;
    point.retransmissions = stats.retransmissions;
    return point;
  });

  ASSERT_EQ(sweep.size(), severities.size());
  EXPECT_TRUE(ana::residual_below_raw(sweep));
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].raw_fer, 0.0)
        << "nonzero severity must damage frames (severity "
        << sweep[i].severity << ")";
  }
}

// ------------------------------------------------------ testbed transport --

TEST(LinkOverTestbed, EndToEndOverTheAnalogSignalPath) {
  testbed::OpticalTestbed bed(testbed::OpticalTestbed::Config{}, 2024);
  LinkChannel::Config config;
  LinkChannel ch(config, link::make_testbed_transport(bed),
                 link::make_testbed_transport(bed));
  const auto payloads = random_payloads(6, ch.codec().user_bits(), 91);

  const auto results = ch.transfer(payloads);
  const LinkStats stats = ch.stats();
  EXPECT_TRUE(stats.accounting_closed());
  for (const SendResult& r : results) {
    EXPECT_TRUE(r.delivered) << "healthy analog chain must carry the link";
  }
  EXPECT_EQ(ch.delivered_payloads(), payloads);
}

TEST(LinkOverTestbed, EndToEndThroughTheVortexFabric) {
  testbed::OpticalTestbed bed(testbed::OpticalTestbed::Config{}, 4096);
  LinkChannel::Config config;
  // Forward frames deflection-route port 3 -> port 5; responses ride the
  // point-to-point path back.
  LinkChannel ch(config, link::make_routed_transport(bed, 3, 5),
                 link::make_testbed_transport(bed));
  const auto payloads = random_payloads(4, ch.codec().user_bits(), 13);

  const auto results = ch.transfer(payloads);
  EXPECT_TRUE(ch.stats().accounting_closed());
  for (const SendResult& r : results) {
    EXPECT_TRUE(r.delivered) << "healthy fabric must route every frame";
  }
  EXPECT_EQ(ch.delivered_payloads(), payloads);
}

TEST(LinkOverTestbed, SendRoutedReportsLatencyAndDestination) {
  testbed::OpticalTestbed bed(testbed::OpticalTestbed::Config{}, 7);
  Rng rng(55);
  testbed::TestbedPacket packet;
  for (auto& lane : packet.payload) {
    lane = BitVector::random(testbed::SlotFormat{}.data_bits, rng);
  }
  packet.header = 0b1010;

  const auto result = bed.send_routed(packet, 0, 9);
  ASSERT_TRUE(result.routed);
  EXPECT_GT(result.latency_slots, 0u);
  EXPECT_TRUE(result.signal.captured);
  EXPECT_EQ(result.signal.payload_bit_errors, 0u);
}

// --------------------------------------------------- slot-format validate --

TEST(SlotFormatValidate, NamesTheOffendingFieldAndArithmetic) {
  testbed::SlotFormat bad;
  bad.window_bits = 47;  // 8 + 2*5 + 47 != 64 and 7 + 32 + 7 != 47
  try {
    bad.validate();
    FAIL() << "validate() must reject an inconsistent layout";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("slot_bits=64"), std::string::npos) << msg;
    EXPECT_NE(msg.find("dead_bits+2*guard_bits+window_bits"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("8+2*5+47=65"), std::string::npos) << msg;
  }

  testbed::SlotFormat window_bad;
  window_bad.pre_clock_bits = 8;  // 8 + 32 + 7 != 46
  window_bad.slot_bits = 64;
  try {
    window_bad.validate();
    FAIL() << "validate() must reject an inconsistent window";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("window_bits=46"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pre_clock_bits+data_bits+post_clock_bits"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("8+32+7=47"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace mgt
