// Tests for src/core: the TestSystem facade and the paper-calibrated
// presets. These are the tests that pin the reproduction to the paper's
// measured numbers (Figs 6-11 for the test bed channel).
#include <gtest/gtest.h>

#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "digital/registers.hpp"
#include "util/error.hpp"

namespace mgt::core {
namespace {

using mgt::Error;

TEST(TestSystem, BootsThroughJtagAndFlash) {
  TestSystem sys(presets::optical_testbed(), 1);
  EXPECT_TRUE(sys.dlc().configured());
  EXPECT_EQ(sys.dlc().design_name(), "optical-testbed-tx");
  // The USB control path is live.
  EXPECT_EQ(sys.usb().read_register(dig::reg::kId), dig::reg::kIdValue);
}

TEST(TestSystem, GenerateRequiresStart) {
  TestSystem sys(presets::optical_testbed(), 2);
  sys.program_prbs(7, 1);
  EXPECT_THROW(sys.generate(1024), Error);
  sys.start();
  EXPECT_NO_THROW(sys.generate(1024));
  sys.stop();
  EXPECT_THROW(sys.generate(1024), Error);
}

TEST(TestSystem, StimulusCarriesPrbsBits) {
  TestSystem sys(presets::optical_testbed(), 3);
  sys.program_prbs(15, 0xACE1);
  sys.start();
  const auto stim = sys.generate(2048);
  EXPECT_EQ(stim.bits, dig::Lfsr::prbs15(0xACE1).generate(2048));
  EXPECT_TRUE(stim.edges.well_formed());
  EXPECT_DOUBLE_EQ(stim.ui.ps(), 400.0);
  // Edges, sampled on the boundary grid, reproduce the data.
  EXPECT_EQ(stim.edges.to_bits(2048, stim.ui,
                               Picoseconds{stim.t0.ps() -
                                           stim.chain.group_delay().ps()}),
            stim.bits);
}

TEST(TestSystem, PatternModeRoundTrip) {
  TestSystem sys(presets::optical_testbed(), 4);
  const auto pattern = BitVector::from_string("11001010");
  sys.program_pattern(pattern);
  sys.start();
  const auto stim = sys.generate(64);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(stim.bits.get(i), pattern.get(i % 8));
  }
}

TEST(TestSystem, BoundaryGrid) {
  TestSystem sys(presets::optical_testbed(), 5);
  sys.program_prbs(7, 1);
  sys.start();
  const auto stim = sys.generate(64);
  const auto grid = stim.boundary_grid(8);
  ASSERT_EQ(grid.size(), 9u);
  EXPECT_DOUBLE_EQ(grid[1].ps() - grid[0].ps(), 400.0);
  EXPECT_DOUBLE_EQ(grid[0].ps(), stim.t0.ps());
}

// ----- Paper-number pinning (test bed channel) ---------------------------

TEST(PaperNumbers, Fig7EyeAt2G5) {
  TestSystem sys(presets::optical_testbed(GbitsPerSec{2.5}), 42);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  const auto eye = sys.measure_eye(20000);
  // Paper: 46.7 ps p-p, 0.88 UI usable opening.
  EXPECT_NEAR(eye.jitter.peak_to_peak.ps(), 46.7, 6.0);
  EXPECT_NEAR(eye.eye_opening.ui(), 0.88, 0.02);
  EXPECT_GT(eye.eye_height.mv(), 300.0);  // clearly open
}

TEST(PaperNumbers, Fig8EyeAt4G0) {
  TestSystem sys(presets::optical_testbed(GbitsPerSec{4.0}), 42);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  const auto eye = sys.measure_eye(20000);
  // Paper: 47.2 ps p-p, 0.81 UI, "no visible signal attenuation".
  EXPECT_NEAR(eye.jitter.peak_to_peak.ps(), 47.2, 6.0);
  EXPECT_NEAR(eye.eye_opening.ui(), 0.81, 0.025);
}

TEST(PaperNumbers, JitterIsRateIndependent) {
  // The shape claim behind Figs 7/8: TJ p-p barely moves with data rate,
  // so the eye opening in UI shrinks as the UI does.
  double tj[2];
  double ui[2];
  int i = 0;
  for (double rate : {2.5, 4.0}) {
    TestSystem sys(presets::optical_testbed(GbitsPerSec{rate}), 7);
    sys.program_prbs(7, 0xACE1);
    sys.start();
    const auto eye = sys.measure_eye(12000);
    tj[i] = eye.jitter.peak_to_peak.ps();
    ui[i] = eye.eye_opening.ui();
    ++i;
  }
  EXPECT_NEAR(tj[0], tj[1], 5.0);  // same jitter budget
  EXPECT_GT(ui[0], ui[1]);         // smaller opening at the higher rate
}

TEST(PaperNumbers, Fig6RiseFallInSiGeBand) {
  TestSystem sys(presets::optical_testbed(), 42);
  sys.program_prbs(7, 1);
  sys.start();
  const auto rf = sys.measure_risefall(4096);
  // Paper: 70-75 ps 20-80 % on both edges.
  EXPECT_GE(rf.rise_mean.ps(), 68.0);
  EXPECT_LE(rf.rise_mean.ps(), 77.0);
  EXPECT_GE(rf.fall_mean.ps(), 68.0);
  EXPECT_LE(rf.fall_mean.ps(), 77.0);
  EXPECT_GT(rf.rise_count, 500u);
}

TEST(PaperNumbers, Fig9SingleEdgeJitter) {
  TestSystem sys(presets::optical_testbed(), 42);
  sys.program_prbs(7, 1);
  sys.start();
  const auto jitter = sys.measure_single_edge_jitter(10000);
  // Paper: 24 ps p-p, ~3.2 ps rms on an isolated edge.
  EXPECT_NEAR(jitter.peak_to_peak.ps(), 24.0, 5.0);
  EXPECT_NEAR(jitter.rms.ps(), 3.2, 0.6);
  // p-p/rms ratio ~7.5 marks a Gaussian-dominated edge.
  EXPECT_NEAR(jitter.peak_to_peak.ps() / jitter.rms.ps(), 7.5, 1.5);
}

TEST(PaperNumbers, Fig10VohSteps) {
  TestSystem sys(presets::optical_testbed(GbitsPerSec{1.25}), 42);
  sys.program_pattern(BitVector::from_string("11110000"));
  sys.start();
  const double voh_max = sys.buffer().levels().voh.mv();
  double previous = 1e9;
  for (int step = 0; step < 4; ++step) {
    sys.buffer().set_voh(Millivolts{voh_max - 100.0 * step});
    const auto amp = sys.measure_amplitude(2048);
    // Measured high level tracks the programmed 100 mV staircase.
    EXPECT_NEAR(amp.settled_high.mv(),
                sys.buffer().levels().voh.mv(), 25.0);
    EXPECT_LT(amp.settled_high.mv(), previous);
    previous = amp.settled_high.mv();
  }
}

TEST(PaperNumbers, Fig11SwingSteps) {
  TestSystem sys(presets::optical_testbed(GbitsPerSec{2.5}), 42);
  sys.program_pattern(BitVector::from_string("11110000"));
  sys.start();
  const double mid = sys.buffer().levels().midpoint().mv();
  for (double swing : {800.0, 600.0, 400.0, 200.0}) {
    sys.buffer().set_swing(Millivolts{swing});
    const auto amp = sys.measure_amplitude(2048);
    const double measured_swing =
        amp.settled_high.mv() - amp.settled_low.mv();
    EXPECT_NEAR(measured_swing, swing * 0.97 /*hookup loss*/, 40.0);
    EXPECT_NEAR((amp.settled_high.mv() + amp.settled_low.mv()) / 2.0, mid,
                25.0);
  }
}

// ----- Paper-number pinning (mini-tester channel, Figs 16/17/19) ---------

struct MiniEyeCase {
  double rate_gbps;
  double paper_opening_ui;
  double tolerance;
};

class MiniEye : public ::testing::TestWithParam<MiniEyeCase> {};

TEST_P(MiniEye, OpeningMatchesPaper) {
  const auto& param = GetParam();
  TestSystem sys(presets::minitester(GbitsPerSec{param.rate_gbps}), 99);
  sys.program_prbs(7, 0xACE1);
  sys.start();
  const auto eye = sys.measure_eye(20000);
  EXPECT_NEAR(eye.eye_opening.ui(), param.paper_opening_ui, param.tolerance)
      << param.rate_gbps << " Gbps";
  // "low jitter (~50 ps)" across all rates (Section 4).
  EXPECT_NEAR(eye.jitter.peak_to_peak.ps(), 50.0, 8.0);
}

INSTANTIATE_TEST_SUITE_P(
    Figures, MiniEye,
    ::testing::Values(MiniEyeCase{1.0, 0.95, 0.02},    // Fig 16
                      MiniEyeCase{2.5, 0.87, 0.025},   // Fig 17
                      MiniEyeCase{5.0, 0.75, 0.03}));  // Fig 19

TEST(PaperNumbersMini, EyeShrinksMonotonicallyWithRate) {
  double previous = 1.0;
  for (double rate : {1.0, 2.5, 5.0}) {
    TestSystem sys(presets::minitester(GbitsPerSec{rate}), 7);
    sys.program_prbs(7, 0xACE1);
    sys.start();
    const double opening = sys.measure_eye(12000).eye_opening.ui();
    EXPECT_LT(opening, previous) << rate;
    previous = opening;
  }
}

TEST(PaperNumbersMini, Fig18RiseTimeBand) {
  TestSystem sys(presets::minitester(GbitsPerSec{1.0}), 99);
  sys.program_pattern(BitVector::from_string("1111111100000000"));
  sys.start();
  const auto rf = sys.measure_risefall(4096);
  // Paper: ~120 ps 20-80 % for the mini-tester's I/O buffers.
  EXPECT_NEAR(rf.rise_mean.ps(), 120.0, 10.0);
  EXPECT_NEAR(rf.fall_mean.ps(), 120.0, 10.0);
}

// ----- presets ------------------------------------------------------------

TEST(Presets, RateLimitsMatchHardware) {
  EXPECT_NO_THROW(presets::optical_testbed(GbitsPerSec{4.0}));
  EXPECT_THROW(presets::optical_testbed(GbitsPerSec{5.0}), Error);
  EXPECT_NO_THROW(presets::minitester(GbitsPerSec{5.0}));
  EXPECT_THROW(presets::minitester(GbitsPerSec{6.0}), Error);
}

TEST(Presets, ClockStaysInInstrumentRange) {
  for (double rate : {1.0, 2.5, 4.0}) {
    const auto config = presets::optical_testbed(GbitsPerSec{rate});
    EXPECT_GE(config.clock.frequency.ghz(), 0.5);
    EXPECT_LE(config.clock.frequency.ghz(), 2.5);
  }
  for (double rate : {1.0, 2.5, 5.0}) {
    const auto config = presets::minitester(GbitsPerSec{rate});
    EXPECT_GE(config.clock.frequency.ghz(), 0.5);
    EXPECT_LE(config.clock.frequency.ghz(), 2.5);
  }
}

TEST(Presets, MinitesterUsesTwoStageTree) {
  const auto config = presets::minitester();
  EXPECT_EQ(config.serializer.stages.size(), 2u);
  EXPECT_EQ(config.serializer.stages[0].fan_in, 2u);
  EXPECT_EQ(config.serializer.stages[1].fan_in, 8u);
}

TEST(TestSystem, OddBitCountRejected) {
  TestSystem sys(presets::optical_testbed(), 6);
  sys.program_prbs(7, 1);
  sys.start();
  EXPECT_THROW(sys.generate(1001), Error);  // not a multiple of 8 lanes
}

}  // namespace
}  // namespace mgt::core
