#include "link/frame.hpp"

#include "util/error.hpp"

namespace mgt::link {

namespace {

/// Flattens the four payload lanes lane-major into one wire BitVector.
BitVector flatten(const testbed::TestbedPacket& packet,
                  std::size_t data_bits) {
  BitVector flat(testbed::kDataChannels * data_bits);
  for (std::size_t ch = 0; ch < testbed::kDataChannels; ++ch) {
    for (std::size_t k = 0; k < data_bits; ++k) {
      flat.set(ch * data_bits + k, packet.payload[ch].get(k));
    }
  }
  return flat;
}

/// Header-integrity CRC input: the 4-bit control nibble then the 8-bit
/// wire sequence, in wire order.
BitVector header_crc_input(std::uint8_t nibble, std::uint8_t wire_seq) {
  BitVector in = pack_bits(nibble, 4);
  in.append(pack_bits(wire_seq, 8));
  return in;
}

}  // namespace

std::string_view to_string(FrameKind kind) {
  switch (kind) {
    case FrameKind::kIdle:
      return "idle";
    case FrameKind::kData:
      return "data";
    case FrameKind::kAck:
      return "ack";
    case FrameKind::kNak:
      return "nak";
  }
  return "unknown";
}

FrameCodec::FrameCodec(testbed::SlotFormat format) : format_(format) {
  format_.validate();
  const std::size_t capacity = testbed::kDataChannels * format_.data_bits;
  MGT_CHECK(capacity > kFrameOverheadBits,
            "slot payload capacity (" + std::to_string(capacity) +
                " bits) must exceed the frame overhead (" +
                std::to_string(kFrameOverheadBits) + " bits)");
  user_bits_ = capacity - kFrameOverheadBits;
}

testbed::TestbedPacket FrameCodec::encode(const LinkFrame& frame) const {
  BitVector user = frame.payload;
  if (frame.kind == FrameKind::kData) {
    MGT_CHECK(user.size() == user_bits_,
              "data frame payload must be exactly user_bits() long");
  } else {
    MGT_CHECK(user.size() <= user_bits_,
              "control frame payload exceeds user_bits()");
    while (user.size() < user_bits_) {
      user.push_back(false);
    }
  }

  const auto wire_seq = static_cast<std::uint8_t>(frame.seq & 0xFFu);
  const std::uint8_t nibble = static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(frame.kind) & 0x3u) |
      ((wire_seq & 0x3u) << 2));

  BitVector flat = user;
  flat.append(pack_bits(wire_seq, 8));
  flat.append(pack_bits(crc8(header_crc_input(nibble, wire_seq)), 8));
  flat.append(pack_bits(crc16(user), 16));

  testbed::TestbedPacket packet;
  packet.header = nibble;
  for (std::size_t ch = 0; ch < testbed::kDataChannels; ++ch) {
    packet.payload[ch] = flat.slice(ch * format_.data_bits, format_.data_bits);
  }
  return packet;
}

FrameCodec::Decoded FrameCodec::decode(
    const testbed::TestbedPacket& packet) const {
  for (const auto& lane : packet.payload) {
    MGT_CHECK(lane.size() == format_.data_bits,
              "decode: payload lane length must equal data_bits");
  }
  const BitVector flat = flatten(packet, format_.data_bits);

  Decoded out;
  const std::size_t u = user_bits_;
  const auto wire_seq = static_cast<std::uint8_t>(unpack_bits(flat, u, 8));
  const auto crc8_rx = static_cast<std::uint8_t>(unpack_bits(flat, u + 8, 8));
  const auto crc16_rx =
      static_cast<std::uint16_t>(unpack_bits(flat, u + 16, 16));

  const std::uint8_t nibble = packet.header & 0xFu;
  out.header_ok = crc8(header_crc_input(nibble, wire_seq)) == crc8_rx &&
                  ((wire_seq & 0x3u) == ((nibble >> 2) & 0x3u));

  out.frame.kind = static_cast<FrameKind>(nibble & 0x3u);
  out.frame.seq = wire_seq;
  out.frame.payload = flat.slice(0, u);
  out.payload_ok = crc16(out.frame.payload) == crc16_rx;
  return out;
}

}  // namespace mgt::link
