// Sliding-window ARQ: configuration, accounting, and the receiver side.
//
// The protocol is go-back-N with cumulative ACK/NAK responses, bounded
// retransmission, a deterministic timeout measured in packet slots (never
// wall time), and exponential backoff between retries. Accounting follows
// the DataVortex backpressure invariant style: every offered payload ends
// up exactly one of delivered or abandoned —
//
//   offered == delivered + abandoned
//
// with retransmissions counted separately (they are extra work, not extra
// payloads). Sequence numbers advance only on delivery. When the retry
// budget runs out the transmitter cannot distinguish "payload lost" from
// "payload delivered, every ack lost" (the two-generals ambiguity), so the
// LinkChannel — which owns both endpoints, like the controlling PC of the
// paper's test bed — reconciles against the receiver's expectation before
// deciding: a payload the receiver already accepted is counted delivered
// (an ack loss, `LinkStats::reconciled`), and only a payload the receiver
// still expects is abandoned, its sequence slot reused by the next payload.
// Either way the two ends can never drift apart structurally.
#pragma once

#include <cstdint>
#include <optional>

#include "link/frame.hpp"
#include "util/error.hpp"

namespace mgt::link {

/// ARQ protocol knobs. All times are in packet slots.
struct ArqConfig {
  /// Frames in flight per round (go-back-N window). 2*window must fit the
  /// 8-bit wire sequence space so duplicates are never ambiguous.
  std::size_t window = 8;
  /// Rounds without progress before the base payload is abandoned.
  std::size_t max_retries = 8;
  /// Initial reverse-channel timeout, in slots.
  std::uint64_t timeout_slots = 4;
  /// Timeout multiplier per consecutive timeout (exponential backoff).
  std::uint64_t backoff_base = 2;
  /// Backoff ceiling, in slots.
  std::uint64_t backoff_cap_slots = 64;
  /// Guard slots spent per resynchronization attempt before giving up and
  /// letting the retry budget handle the outage.
  std::uint64_t max_resync_slots = 64;

  void validate() const {
    MGT_CHECK(window >= 1 && window <= 64,
              "ArqConfig.window must be in [1, 64], got " +
                  std::to_string(window));
    MGT_CHECK(max_retries >= 1);
    MGT_CHECK(timeout_slots >= 1);
    MGT_CHECK(backoff_base >= 1);
    MGT_CHECK(backoff_cap_slots >= timeout_slots,
              "backoff_cap_slots must be >= timeout_slots");
    MGT_CHECK(max_resync_slots >= 1);
  }
};

/// Outcome of sending one payload. [[nodiscard]]: ignoring whether the
/// link actually delivered defeats the whole layer (see the mgtlint rule
/// no-unchecked-status).
struct [[nodiscard]] SendResult {
  bool delivered = false;
  /// Full sequence number the payload travelled under.
  std::uint64_t seq = 0;
  /// Rounds in which this payload's frame was transmitted.
  std::size_t attempts = 0;
};

/// Exact link accounting. TX-side counters follow the invariant above;
/// RX-side counters describe what the corruption looked like on the wire.
struct LinkStats {
  // TX side.
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t retransmissions = 0;      // data frames sent beyond the first
  std::uint64_t data_frames_sent = 0;     // every data-frame transmission
  std::uint64_t control_frames_sent = 0;  // ACK/NAK exchanges
  std::uint64_t timeouts = 0;             // unusable reverse-channel rounds
  std::uint64_t naks = 0;                 // decodable NAK responses
  std::uint64_t reconciled = 0;           // delivered despite every ack lost
  std::uint64_t rejected_acks = 0;        // decodable but implausible acks
  // RX side.
  std::uint64_t integrity_failures = 0;   // CRC / frame-bit / capture failures
  std::uint64_t frames_lost_hunting = 0;  // arrived while the RX hunted
  std::uint64_t duplicates = 0;           // re-received, re-acked, not re-delivered
  // Synchronization.
  std::uint64_t sync_losses = 0;
  std::uint64_t resync_slots = 0;
  std::uint64_t relocks = 0;
  // Time and fallback.
  std::uint64_t slots = 0;                // deterministic protocol time
  std::size_t rate_steps = 0;             // degraded-mode fallbacks taken

  /// The ARQ accounting invariant (offered == delivered + abandoned).
  [[nodiscard]] bool accounting_closed() const {
    return offered == delivered + abandoned;
  }
  /// Raw injected frame error rate: the fraction of data-frame
  /// transmissions the channel ruined (before any retransmission).
  [[nodiscard]] double raw_fer() const {
    return data_frames_sent == 0
               ? 0.0
               : static_cast<double>(integrity_failures +
                                     frames_lost_hunting) /
                     static_cast<double>(data_frames_sent);
  }
  /// Residual (post-ARQ) frame error rate: payloads lost for good.
  [[nodiscard]] double residual_fer() const {
    return offered == 0
               ? 0.0
               : static_cast<double>(abandoned) / static_cast<double>(offered);
  }
};

/// Receiver-side ARQ state: in-order delivery, duplicate suppression, and
/// the cumulative acknowledgment (the count of in-order payloads accepted,
/// which is also the next expected full sequence number).
class ArqReceiver {
public:
  explicit ArqReceiver(std::size_t window) : window_(window) {
    MGT_CHECK(window_ >= 1 && window_ <= 64);
  }

  /// Next expected full sequence number == cumulative ack.
  [[nodiscard]] std::uint64_t expected() const { return expected_; }

  /// Rebuilds the full sequence number from its 8 wire bits, assuming the
  /// sender is within +/- window of this receiver's expectation (the
  /// window bound guarantees it). Returns nullopt for a sequence that
  /// decodes to before the start of the stream — such a frame can only be
  /// a corrupted header that slipped past CRC-8, and the caller must treat
  /// it as a duplicate, never deliver it.
  [[nodiscard]] std::optional<std::uint64_t> reconstruct(
      std::uint8_t wire_seq) const;

  /// Verdict on an integrity-checked data frame.
  struct Verdict {
    bool deliver = false;    // accepted in order: payload is new
    bool duplicate = false;  // already delivered: re-ack only
    bool gap = false;        // ahead of expectation: NAK territory
  };
  Verdict on_data(std::uint64_t full_seq);

private:
  std::uint64_t expected_ = 0;
  std::size_t window_;
};

}  // namespace mgt::link
