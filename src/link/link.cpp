#include "link/link.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace mgt::link {

LinkChannel::LinkChannel(Config config, Transport forward, Transport reverse)
    : config_(config),
      codec_(config.format),
      forward_(std::move(forward)),
      reverse_(std::move(reverse)),
      sync_(config.sync),
      rx_(config.arq.window) {
  config_.format.validate();
  config_.arq.validate();
  MGT_CHECK(static_cast<bool>(forward_), "LinkChannel needs a forward transport");
  MGT_CHECK(static_cast<bool>(reverse_), "LinkChannel needs a reverse transport");
  // Control frames carry the 64-bit cumulative ack in the user payload, so
  // a format the codec accepts can still be too narrow for the protocol.
  // Fail at construction, not at the first ACK exchange mid-transfer.
  MGT_CHECK(codec_.user_bits() >= 64,
            "LinkChannel needs user_bits() >= 64 to carry the cumulative "
            "ack; SlotFormat.data_bits = " +
                std::to_string(config_.format.data_bits) + " leaves only " +
                std::to_string(codec_.user_bits()) + " bits");
  MGT_CHECK(config_.degrade_fer_threshold >= 0.0 &&
                config_.degrade_fer_threshold <= 1.0,
            "degrade_fer_threshold must be in [0, 1]");
}

double LinkChannel::margin() const {
  return std::ldexp(1.0, -static_cast<int>(rate_steps_));
}

Picoseconds LinkChannel::current_ui() const {
  return Picoseconds{config_.format.ui.ps() *
                     std::ldexp(1.0, static_cast<int>(rate_steps_))};
}

GbitsPerSec LinkChannel::current_rate() const {
  return GbitsPerSec::from_ui(current_ui());
}

void LinkChannel::deliver_to_rx(const LinkFrame& frame) {
  const TransferOutcome out =
      forward_(codec_.encode(frame), tick_++, margin());
  if (!sync_.engaged()) {
    // A hunting receiver sees only energy where the guard pattern should
    // be dark — the frame is lost and the hunt resets.
    ++stats_.frames_lost_hunting;
    sync_.observe_guard(false);
    return;
  }
  if (!out.captured || !out.frame_ok) {
    ++stats_.integrity_failures;
    sync_.observe_bad_frame();
    return;
  }
  const FrameCodec::Decoded dec = codec_.decode(out.packet);
  if (!dec.ok() || dec.frame.kind != FrameKind::kData) {
    ++stats_.integrity_failures;
    sync_.observe_bad_frame();
    return;
  }
  sync_.observe_good_frame();
  const std::optional<std::uint64_t> full = rx_.reconstruct(
      static_cast<std::uint8_t>(dec.frame.seq & 0xFFu));
  if (!full.has_value()) {
    // A sequence from before the stream began: a corrupted header that
    // slipped past CRC-8. Re-ack territory, never delivery.
    ++stats_.duplicates;
    return;
  }
  const ArqReceiver::Verdict v = rx_.on_data(*full);
  if (v.deliver) {
    delivered_.push_back(dec.frame.payload);
  }
  if (v.duplicate) {
    ++stats_.duplicates;
  }
  if (v.gap) {
    rx_saw_gap_ = true;
  }
}

std::optional<std::uint64_t> LinkChannel::exchange_response() {
  LinkFrame response;
  if (sync_.engaged()) {
    response.kind = rx_saw_gap_ ? FrameKind::kNak : FrameKind::kAck;
    response.seq = rx_.expected();
    response.payload = pack_bits(rx_.expected(), 64);
  } else {
    response.kind = FrameKind::kIdle;  // a hunting RX has nothing to say
  }
  rx_saw_gap_ = false;
  ++stats_.control_frames_sent;

  const TransferOutcome out =
      reverse_(codec_.encode(response), tick_++, margin());
  if (!out.captured || !out.frame_ok) {
    return std::nullopt;
  }
  const FrameCodec::Decoded dec = codec_.decode(out.packet);
  if (!dec.ok() || (dec.frame.kind != FrameKind::kAck &&
                    dec.frame.kind != FrameKind::kNak)) {
    return std::nullopt;
  }
  if (dec.frame.kind == FrameKind::kNak) {
    ++stats_.naks;
  }
  return unpack_bits(dec.frame.payload, 0, 64);
}

void LinkChannel::resynchronize() {
  std::uint64_t spent = 0;
  while (!sync_.engaged() && spent < config_.arq.max_resync_slots) {
    // A guard/training slot: the idle frame carries no payload energy, so
    // the receiver can check the guard/dead-time pattern against it. The
    // channel's integrity at this tick decides whether it looks clean.
    const TransferOutcome out =
        forward_(codec_.encode(LinkFrame{FrameKind::kIdle, 0, {}}), tick_++,
                 margin());
    ++stats_.resync_slots;
    ++spent;
    sync_.observe_guard(out.captured && out.frame_ok);
  }
}

void LinkChannel::note_completion(bool was_abandoned) {
  if (config_.degrade_window == 0) {
    return;
  }
  ++window_completed_;
  if (was_abandoned) {
    ++window_abandoned_;
  }
  if (window_completed_ < config_.degrade_window) {
    return;
  }
  const double fer = static_cast<double>(window_abandoned_) /
                     static_cast<double>(window_completed_);
  if (fer > config_.degrade_fer_threshold &&
      rate_steps_ < config_.max_rate_steps) {
    ++rate_steps_;  // UI doubles: more margin, half the effective severity
  }
  window_completed_ = 0;
  window_abandoned_ = 0;
}

SendResult LinkChannel::send_payload(const BitVector& payload) {
  return transfer({payload}).front();
}

std::vector<SendResult> LinkChannel::transfer(
    const std::vector<BitVector>& payloads) {
  for (const BitVector& p : payloads) {
    MGT_CHECK(p.size() == codec_.user_bits(),
              "link payload must be exactly codec().user_bits() = " +
                  std::to_string(codec_.user_bits()) + " bits, got " +
                  std::to_string(p.size()));
  }
  const std::size_t n = payloads.size();
  std::vector<SendResult> results(n);
  std::vector<std::size_t> attempts(n, 0);
  stats_.offered += n;
  // The transfer loop is strictly serial (one channel, one tick domain),
  // so a span over the protocol-tick range and delta counters recorded at
  // the end are as deterministic as stats_ itself.
  const obs::TickSpan span("link.transfer", tick_);
  const obs::ProfileScope profile("link.transfer", &tick_);
  const LinkStats before = stats_;

  std::size_t base = 0;
  std::size_t retries = 0;  // rounds without progress for the current base
  std::uint64_t backoff = config_.arq.timeout_slots;

  while (base < n) {
    if (!sync_.engaged()) {
      resynchronize();
    }

    // Send the window [base, end). The base payload always travels as
    // sequence tx_acked_: sequence numbers advance only on delivery.
    const std::size_t end = std::min(base + config_.arq.window, n);
    for (std::size_t s = base; s < end; ++s) {
      ++attempts[s];
      if (attempts[s] > 1) {
        ++stats_.retransmissions;
      }
      ++stats_.data_frames_sent;
      LinkFrame frame;
      frame.kind = FrameKind::kData;
      frame.seq = tx_acked_ + (s - base);
      frame.payload = payloads[s];
      deliver_to_rx(frame);
    }

    std::optional<std::uint64_t> ack = exchange_response();
    // Plausibility gate: a genuine cumulative ack lies in
    // [tx_acked_, tx_acked_ + (end - base)] — the receiver's expectation
    // is monotonic and it cannot have accepted beyond what this window
    // sent. Anything else is a corrupted control frame that slipped past
    // CRC-16; discard it like an undecodable response instead of letting
    // a garbage count drive the window (or abort the transfer).
    if (ack.has_value() &&
        (*ack < tx_acked_ || *ack > tx_acked_ + (end - base))) {
      ++stats_.rejected_acks;
      ack.reset();
    }
    bool progress = false;
    if (ack.has_value()) {
      const std::uint64_t c = *ack;
      if (c > tx_acked_) {
        const std::uint64_t delta = c - tx_acked_;
        for (std::uint64_t d = 0; d < delta; ++d) {
          results[base + d] = SendResult{true, tx_acked_ + d,
                                         attempts[base + d]};
          ++stats_.delivered;
          note_completion(false);
        }
        base += delta;
        tx_acked_ = c;
        retries = 0;
        backoff = config_.arq.timeout_slots;
        progress = true;
      }
    } else {
      // Undecodable response: wait out the (exponentially backed off)
      // timeout before going back.
      ++stats_.timeouts;
      tick_ += backoff;
      backoff = std::min(backoff * config_.arq.backoff_base,
                         config_.arq.backoff_cap_slots);
    }

    if (!progress && !ack.has_value()) {
      ++retries;
    } else if (!progress) {
      ++retries;  // decodable NAK / duplicate ack: immediate go-back
    }

    if (retries > config_.arq.max_retries) {
      // Bounded retry exhausted. From acks alone the TX cannot tell
      // "payload lost" from "payload delivered, every ack lost" — and
      // guessing wrong either aborts on the first recovered ack or
      // silently substitutes payloads in the delivered stream. This
      // channel owns both endpoints (exactly like the controlling PC of
      // the paper's test bed), so reconcile against the receiver before
      // deciding the payload's fate.
      if (rx_.expected() > tx_acked_) {
        // The receiver accepted this sequence: the payload is in
        // delivered_payloads() and only the acks were lost. Count it
        // delivered and consume its sequence slot.
        results[base] = SendResult{true, tx_acked_, attempts[base]};
        ++stats_.delivered;
        ++stats_.reconciled;
        ++tx_acked_;
        note_completion(false);
      } else {
        // The receiver still expects this sequence: truly undelivered.
        // Its slot is NOT consumed — the next payload reuses it, so the
        // receiver's in-order expectation stays aligned.
        results[base] = SendResult{false, tx_acked_, attempts[base]};
        ++stats_.abandoned;
        note_completion(true);
      }
      ++base;
      retries = 0;
      backoff = config_.arq.timeout_slots;
    }
  }
  obs::add_counter("link.offered", n);
  obs::add_counter("link.delivered", stats_.delivered - before.delivered);
  obs::add_counter("link.abandoned", stats_.abandoned - before.abandoned);
  obs::add_counter("link.reconciled", stats_.reconciled - before.reconciled);
  obs::add_counter("link.retransmissions",
                   stats_.retransmissions - before.retransmissions);
  obs::add_counter("link.timeouts", stats_.timeouts - before.timeouts);
  obs::add_counter("link.rejected_acks",
                   stats_.rejected_acks - before.rejected_acks);
  obs::add_counter("link.resync_slots",
                   stats_.resync_slots - before.resync_slots);
  obs::set_gauge("link.rate_steps", static_cast<double>(rate_steps_));
  return results;
}

LinkStats LinkChannel::stats() const {
  LinkStats s = stats_;
  s.sync_losses = sync_.sync_losses();
  s.relocks = sync_.relocks();
  s.slots = tick_;
  s.rate_steps = rate_steps_;
  return s;
}

fault::HealthReport LinkChannel::health() const {
  const LinkStats s = stats();
  fault::HealthReport report;

  if (!s.accounting_closed()) {
    report.add("arq", fault::HealthStatus::kFailed,
               "frame accounting violated: offered=" +
                   std::to_string(s.offered) + " != delivered=" +
                   std::to_string(s.delivered) + " + abandoned=" +
                   std::to_string(s.abandoned));
  } else if (s.abandoned > 0) {
    report.add("arq", fault::HealthStatus::kDegraded,
               std::to_string(s.abandoned) + "/" + std::to_string(s.offered) +
                   " payloads abandoned after " +
                   std::to_string(config_.arq.max_retries) + " retries");
  } else if (s.reconciled > 0) {
    report.add("arq", fault::HealthStatus::kDegraded,
               std::to_string(s.reconciled) + "/" + std::to_string(s.offered) +
                   " payloads delivered but every ack lost "
                   "(endpoint reconciliation)");
  } else {
    report.add("arq", fault::HealthStatus::kOk,
               s.retransmissions == 0
                   ? ""
                   : std::to_string(s.retransmissions) +
                         " retransmissions masked all channel errors");
  }

  report.add(
      "sync",
      s.sync_losses == 0 ? fault::HealthStatus::kOk
                         : fault::HealthStatus::kDegraded,
      s.sync_losses == 0
          ? ""
          : std::to_string(s.sync_losses) + " sync losses, " +
                std::to_string(s.resync_slots) + " slots hunting, " +
                std::to_string(s.relocks) + " relocks");

  if (rate_steps_ == 0) {
    report.add("rate", fault::HealthStatus::kOk, "");
  } else {
    report.add("rate", fault::HealthStatus::kDegraded,
               "stepped down " +
                   std::to_string(GbitsPerSec::from_ui(config_.format.ui)
                                      .gbps()) +
                   " -> " + std::to_string(current_rate().gbps()) +
                   " Gbps (ui " + std::to_string(config_.format.ui.ps()) +
                   " -> " + std::to_string(current_ui().ps()) + " ps)");
  }
  return report;
}

// ------------------------------------------------------------- transports --

LinkChannel::Transport make_fault_transport(const fault::FaultPlan& plan,
                                            const std::string& component) {
  return [slice = plan.component(component)](
             const testbed::TestbedPacket& packet, std::uint64_t tick,
             double severity_scale) {
    LinkChannel::TransferOutcome out;
    out.packet = packet;
    if (!slice.any()) {
      return out;  // empty plan: byte-identical, zero RNG draws
    }
    if (slice.active(fault::FaultKind::kLossOfSignal, tick)) {
      out.captured = false;
      return out;
    }
    if (slice.active(fault::FaultKind::kSyncLoss, tick)) {
      out.frame_ok = false;
    }
    const double severity =
        slice.severity(fault::FaultKind::kFrameCorruption, tick) *
        severity_scale;
    if (severity > 0.0) {
      // Decisions keyed on (plan seed, component, tick) only: the stream
      // is reproducible at every MGT_THREADS and any call order.
      Rng rng = slice.rng(tick);
      for (std::size_t ch = 0; ch < testbed::kDataChannels; ++ch) {
        BitVector& lane = out.packet.payload[ch];
        for (std::size_t k = 0; k < lane.size(); ++k) {
          if (rng.chance(severity)) {
            lane.set(k, !lane.get(k));
          }
        }
      }
      for (std::size_t h = 0; h < testbed::kHeaderChannels; ++h) {
        if (rng.chance(severity)) {
          out.packet.header ^= static_cast<std::uint8_t>(1u << h);
        }
      }
    }
    return out;
  };
}

LinkChannel::Transport make_testbed_transport(testbed::OpticalTestbed& bed) {
  return [&bed](const testbed::TestbedPacket& packet, std::uint64_t /*tick*/,
                double /*severity_scale*/) {
    const testbed::OpticalTestbed::SingleResult result = bed.send_one(packet);
    return LinkChannel::TransferOutcome{result.received, result.frame_ok,
                                        result.captured};
  };
}

LinkChannel::Transport make_routed_transport(testbed::OpticalTestbed& bed,
                                             std::size_t input_port,
                                             std::uint32_t destination) {
  return [&bed, input_port, destination](
             const testbed::TestbedPacket& packet, std::uint64_t /*tick*/,
             double /*severity_scale*/) {
    const testbed::OpticalTestbed::RoutedResult result =
        bed.send_routed(packet, input_port, destination);
    if (!result.routed) {
      return LinkChannel::TransferOutcome{packet, false, false};
    }
    return LinkChannel::TransferOutcome{result.signal.received,
                                        result.signal.frame_ok,
                                        result.signal.captured};
  };
}

}  // namespace mgt::link
