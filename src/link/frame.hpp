// Link-frame codec over the Fig 4 slot format.
//
// A LinkFrame rides one TestbedPacket: the four header channels carry the
// frame's control nibble (2-bit kind + the sequence number's low two bits,
// so sequence information is visible on the slow header lanes exactly as
// the slot format intends), and the four payload lanes carry, flattened
// lane-major into 4 * data_bits wire bits:
//
//   [0, U)        user payload (U = 4*data_bits - 32)
//   [U, U+8)      8-bit wire sequence number
//   [U+8, U+16)   CRC-8 over control nibble + sequence (header integrity)
//   [U+16, U+32)  CRC-16-CCITT over the user payload (payload integrity)
//
// The codec is pure and deterministic: encode/decode are exact inverses on
// an unfaulted channel, and any single corrupted region is flagged by the
// CRC that covers it.
#pragma once

#include <cstdint>

#include "link/crc.hpp"
#include "testbed/framing.hpp"

namespace mgt::link {

/// Frame kinds on the wire (2 bits). kIdle doubles as "undecodable".
enum class FrameKind : std::uint8_t {
  kIdle = 0,  // guard/training slot; carries no protected content
  kData = 1,
  kAck = 2,
  kNak = 3,
};

[[nodiscard]] std::string_view to_string(FrameKind kind);

/// One protocol frame before encoding / after decoding.
struct LinkFrame {
  FrameKind kind = FrameKind::kData;
  /// Full sequence number; only the low 8 bits travel on the wire (the
  /// receiver reconstructs the rest from its in-order expectation).
  std::uint64_t seq = 0;
  /// User payload for kData (codec.user_bits() long); for kAck/kNak the
  /// field carries the cumulative acknowledgment (see ArqReceiver).
  BitVector payload;
};

/// Bits of frame overhead appended after the user payload.
inline constexpr std::size_t kFrameOverheadBits = 8 + 8 + 16;

class FrameCodec {
public:
  /// Validates the format; requires 4*data_bits > kFrameOverheadBits.
  explicit FrameCodec(testbed::SlotFormat format);

  /// User payload capacity per frame in bits.
  [[nodiscard]] std::size_t user_bits() const { return user_bits_; }
  [[nodiscard]] const testbed::SlotFormat& format() const { return format_; }

  /// Encodes a frame into a slot packet. kData frames must carry exactly
  /// user_bits() of payload; kAck/kNak/kIdle payloads are zero-padded.
  [[nodiscard]] testbed::TestbedPacket encode(const LinkFrame& frame) const;

  /// Decode verdict: the frame plus which protection domains held.
  struct Decoded {
    LinkFrame frame;
    bool header_ok = false;   // CRC-8 over control nibble + sequence
    bool payload_ok = false;  // CRC-16 over user payload
    [[nodiscard]] bool ok() const { return header_ok && payload_ok; }
  };

  [[nodiscard]] Decoded decode(const testbed::TestbedPacket& packet) const;

private:
  testbed::SlotFormat format_;
  std::size_t user_bits_ = 0;
};

}  // namespace mgt::link
