// Receiver frame-synchronization state machine.
//
// A source-synchronous receiver that has drifted off the slot boundary does
// not see "slightly wrong" frames — it sees garbage (CRC failures, frame-bit
// violations). The monitor turns that observation stream into an explicit
// lock state, mirroring receiver start-up against the Fig 4 guard/dead
// pattern:
//
//   LOCKED  --bad frame-->  SUSPECT  --more bad-->  HUNTING
//     ^                        |                     ^   |
//     |<------good frame-------+      bad frame      |   | clean guard/dead
//     |                         (false lock)         |   v  observations
//     +<------------- good frame ------------------ RELOCK
//
// While HUNTING the receiver discards everything and watches only for the
// guard/dead-time pattern; after `relock_guards` consecutive clean guard
// observations it enters RELOCK, a probational lock: capture re-engages,
// the first good frame confirms LOCKED, but a single bad frame means the
// lock was false and the receiver resumes hunting. The machine is pure
// state (no RNG, no clocks), so it is deterministic by construction.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/error.hpp"

namespace mgt::link {

enum class SyncState {
  kLocked,   // frames are being captured and checked normally
  kSuspect,  // recent integrity failure(s); still capturing
  kHunting,  // lock lost; discarding frames, watching for guard pattern
  kRelock,   // guard pattern reacquired; probational capture
};

[[nodiscard]] std::string_view to_string(SyncState state);

class SyncMonitor {
public:
  struct Config {
    /// Consecutive integrity failures (CRC or frame-bit) that demote
    /// SUSPECT to HUNTING. Must be >= 2: one failure is only suspicious.
    std::size_t hunt_after = 3;
    /// Consecutive clean guard/dead observations HUNTING needs to RELOCK.
    std::size_t relock_guards = 2;
  };

  SyncMonitor() : SyncMonitor(Config{}) {}
  explicit SyncMonitor(Config config) : config_(config) {
    MGT_CHECK(config_.hunt_after >= 2,
              "hunt_after must be >= 2 (one bad frame is SUSPECT, not lost)");
    MGT_CHECK(config_.relock_guards >= 1);
  }

  [[nodiscard]] SyncState state() const { return state_; }
  /// True when the receiver captures frames (every state except HUNTING).
  [[nodiscard]] bool engaged() const { return state_ != SyncState::kHunting; }

  /// A frame passed every integrity check.
  void observe_good_frame();
  /// A frame failed CRC or violated the frame-bit pattern.
  void observe_bad_frame();
  /// One guard/dead-time window observed while hunting; `clean` is true
  /// when the pattern matched (no light where the slot must be dark).
  void observe_guard(bool clean);

  /// Lifetime counters.
  [[nodiscard]] std::uint64_t sync_losses() const { return sync_losses_; }
  [[nodiscard]] std::uint64_t slots_hunting() const { return slots_hunting_; }
  [[nodiscard]] std::uint64_t relocks() const { return relocks_; }

private:
  Config config_;
  SyncState state_ = SyncState::kLocked;
  std::size_t consecutive_bad_ = 0;
  std::size_t consecutive_clean_guards_ = 0;
  std::uint64_t sync_losses_ = 0;
  std::uint64_t slots_hunting_ = 0;
  std::uint64_t relocks_ = 0;
};

}  // namespace mgt::link
