#include "link/crc.hpp"

#include "util/error.hpp"

namespace mgt::link {

namespace {

/// One bit through the CRC-8 shift register.
std::uint8_t crc8_step(std::uint8_t crc, bool bit) {
  const bool top = (crc & 0x80u) != 0;
  crc = static_cast<std::uint8_t>(crc << 1);
  if (top != bit) {
    crc ^= 0x07u;
  }
  return crc;
}

/// One bit through the CRC-16 shift register.
std::uint16_t crc16_step(std::uint16_t crc, bool bit) {
  const bool top = (crc & 0x8000u) != 0;
  crc = static_cast<std::uint16_t>(crc << 1);
  if (top != bit) {
    crc ^= 0x1021u;
  }
  return crc;
}

}  // namespace

std::uint8_t crc8(const BitVector& bits) {
  std::uint8_t crc = 0x00;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    crc = crc8_step(crc, bits.get(i));
  }
  return crc;
}

std::uint16_t crc16(const BitVector& bits) {
  std::uint16_t crc = 0xFFFFu;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    crc = crc16_step(crc, bits.get(i));
  }
  return crc;
}

std::uint8_t crc8(const std::vector<std::uint8_t>& bytes) {
  std::uint8_t crc = 0x00;
  for (const std::uint8_t byte : bytes) {
    for (int b = 7; b >= 0; --b) {
      crc = crc8_step(crc, ((byte >> b) & 1u) != 0);
    }
  }
  return crc;
}

std::uint16_t crc16(const std::vector<std::uint8_t>& bytes) {
  std::uint16_t crc = 0xFFFFu;
  for (const std::uint8_t byte : bytes) {
    for (int b = 7; b >= 0; --b) {
      crc = crc16_step(crc, ((byte >> b) & 1u) != 0);
    }
  }
  return crc;
}

BitVector pack_bits(std::uint64_t value, std::size_t n) {
  MGT_CHECK(n <= 64, "pack_bits packs at most 64 bits");
  BitVector out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.set(i, ((value >> i) & 1u) != 0);
  }
  return out;
}

std::uint64_t unpack_bits(const BitVector& bits, std::size_t begin,
                          std::size_t n) {
  MGT_CHECK(n <= 64, "unpack_bits reads at most 64 bits");
  MGT_CHECK(begin + n <= bits.size(), "unpack_bits range out of bounds");
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (bits.get(begin + i)) {
      value |= 1ull << i;
    }
  }
  return value;
}

}  // namespace mgt::link
