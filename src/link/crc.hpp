// Cyclic redundancy checks for the link layer.
//
// Two generators cover the Fig 4 slot format's two protection domains:
// CRC-8 (poly 0x07, the ATM HEC generator) guards the short header+sequence
// field, CRC-16-CCITT (poly 0x1021, init 0xFFFF — the "CCITT-FALSE"
// variant every serial-link test bench speaks) guards the payload. Both are
// implemented bit-serially over BitVector so they consume bits in exactly
// the order the slot transmits them; byte overloads exist for the standard
// check-vector tests ("123456789" -> 0xF4 / 0x29B1).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitvec.hpp"

namespace mgt::link {

/// CRC-8, polynomial x^8+x^2+x+1 (0x07), init 0x00, no reflection.
/// Bits are consumed in BitVector index order (index 0 first on the wire).
[[nodiscard]] std::uint8_t crc8(const BitVector& bits);

/// CRC-16-CCITT-FALSE, polynomial 0x1021, init 0xFFFF, no reflection.
[[nodiscard]] std::uint16_t crc16(const BitVector& bits);

/// Byte-wise overloads (each byte fed MSB-first, the standard convention)
/// so the classic "123456789" check values apply directly.
[[nodiscard]] std::uint8_t crc8(const std::vector<std::uint8_t>& bytes);
[[nodiscard]] std::uint16_t crc16(const std::vector<std::uint8_t>& bytes);

/// Packs the low `n` bits of `value` into a BitVector, LSB first (matching
/// BitVector's wire order). Requires n <= 64.
[[nodiscard]] BitVector pack_bits(std::uint64_t value, std::size_t n);

/// Inverse of pack_bits: reads `n` bits of `bits` starting at `begin`,
/// LSB first. Requires begin + n <= bits.size() and n <= 64.
[[nodiscard]] std::uint64_t unpack_bits(const BitVector& bits,
                                        std::size_t begin, std::size_t n);

}  // namespace mgt::link
