#include "link/arq.hpp"

namespace mgt::link {

std::optional<std::uint64_t> ArqReceiver::reconstruct(
    std::uint8_t wire_seq) const {
  // Modular distance from the expectation's low byte. Deltas in the front
  // half of the sequence space are "at or ahead of" the expectation, the
  // back half is "behind" (duplicates of already-acked frames).
  const std::uint8_t delta =
      static_cast<std::uint8_t>(wire_seq - (expected_ & 0xFFu));
  if (delta < 128) {
    return expected_ + delta;
  }
  const std::uint64_t back = 256u - delta;
  // A sequence from before the stream started cannot exist (it takes a
  // CRC-8 false pass on a corrupted header to get here). Signal "behind"
  // explicitly rather than clamping: a clamped value of 0 would equal a
  // fresh receiver's expectation and deliver a wrong payload as #0.
  if (expected_ < back) {
    return std::nullopt;
  }
  return expected_ - back;
}

ArqReceiver::Verdict ArqReceiver::on_data(std::uint64_t full_seq) {
  Verdict v;
  if (full_seq == expected_) {
    v.deliver = true;
    ++expected_;
  } else if (full_seq < expected_) {
    v.duplicate = true;
  } else {
    v.gap = true;  // an earlier frame of the window was ruined
  }
  return v;
}

}  // namespace mgt::link
