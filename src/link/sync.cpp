#include "link/sync.hpp"

namespace mgt::link {

std::string_view to_string(SyncState state) {
  switch (state) {
    case SyncState::kLocked:
      return "locked";
    case SyncState::kSuspect:
      return "suspect";
    case SyncState::kHunting:
      return "hunting";
    case SyncState::kRelock:
      return "relock";
  }
  return "unknown";
}

void SyncMonitor::observe_good_frame() {
  MGT_CHECK(engaged(),
            "a hunting receiver cannot capture frames; observe_guard first");
  state_ = SyncState::kLocked;
  consecutive_bad_ = 0;
}

void SyncMonitor::observe_bad_frame() {
  MGT_CHECK(engaged(),
            "a hunting receiver cannot capture frames; observe_guard first");
  if (state_ == SyncState::kRelock) {
    // First slot after relock failed again: the lock was false.
    state_ = SyncState::kHunting;
    ++sync_losses_;
    consecutive_clean_guards_ = 0;
    return;
  }
  ++consecutive_bad_;
  if (consecutive_bad_ >= config_.hunt_after) {
    state_ = SyncState::kHunting;
    ++sync_losses_;
    consecutive_bad_ = 0;
    consecutive_clean_guards_ = 0;
  } else {
    state_ = SyncState::kSuspect;
  }
}

void SyncMonitor::observe_guard(bool clean) {
  MGT_CHECK(state_ == SyncState::kHunting,
            "guard hunting only happens after sync loss");
  ++slots_hunting_;
  if (!clean) {
    consecutive_clean_guards_ = 0;
    return;
  }
  if (++consecutive_clean_guards_ >= config_.relock_guards) {
    state_ = SyncState::kRelock;
    ++relocks_;
    consecutive_clean_guards_ = 0;
  }
}

}  // namespace mgt::link
