// The resilient link layer: CRC-protected framing + sliding-window ARQ +
// sync-loss recovery + degraded-mode rate fallback, end to end over the
// Fig 4 slot format.
//
// A LinkChannel owns both protocol endpoints of one simplex data link (the
// simulation sees both ends, exactly like the controlling PC of the paper's
// test bed does) and a pair of transports that carry encoded slots across
// the physical channel — either the deterministic fault-injection channel
// (make_fault_transport) or the full analog signal path of the optical
// test bed (make_testbed_transport: TX serializers -> E/O -> fiber -> O/E
// -> source-synchronous RX).
//
// Determinism contracts (the same two every layer in this repo obeys):
//  1. With an empty FaultPlan the channel never corrupts, the ARQ never
//     retries, and every output is byte-identical to an unprotected run.
//  2. All protocol time is counted in packet slots; all channel randomness
//     is keyed on (plan seed, component, slot tick), so results are
//     identical at every MGT_THREADS setting.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "link/arq.hpp"
#include "link/frame.hpp"
#include "link/sync.hpp"
#include "testbed/testbed.hpp"

namespace mgt::link {

class LinkChannel {
public:
  /// What one slot transfer did to the encoded packet.
  struct TransferOutcome {
    testbed::TestbedPacket packet;
    bool frame_ok = true;  // frame-bit pattern held at the receiver
    bool captured = true;  // receiver captured the slot at all
  };

  /// Carries one encoded slot across the channel. `tick` is the protocol
  /// slot index (the determinism key); `severity_scale` is the link-rate
  /// margin in (0, 1] — degraded-mode fallback widens the UI, which adds
  /// margin and scales the effective corruption severity down.
  using Transport = std::function<TransferOutcome(
      const testbed::TestbedPacket& packet, std::uint64_t tick,
      double severity_scale)>;

  struct Config {
    testbed::SlotFormat format{};
    ArqConfig arq{};
    SyncMonitor::Config sync{};
    /// Degraded-mode fallback: every `degrade_window` completed payloads
    /// the residual FER of that window is compared against the threshold;
    /// above it the link steps its rate down (UI doubles). 0 disables.
    std::size_t degrade_window = 0;
    double degrade_fer_threshold = 0.25;
    std::size_t max_rate_steps = 2;
  };

  /// `forward` carries data/guard frames TX -> RX, `reverse` carries
  /// ACK/NAK responses RX -> TX. Both may corrupt.
  LinkChannel(Config config, Transport forward, Transport reverse);

  /// Sends one user payload (codec().user_bits() bits) with full ARQ
  /// protection. Returns whether it was delivered and at what cost.
  SendResult send_payload(const BitVector& payload);

  /// Sends a stream of payloads through the sliding window. Results are
  /// index-aligned with the input.
  [[nodiscard]] std::vector<SendResult> transfer(
      const std::vector<BitVector>& payloads);

  /// Exact accounting so far (offered == delivered + abandoned always).
  [[nodiscard]] LinkStats stats() const;

  /// In-order payloads accepted by the receiver end. Below the abandonment
  /// threshold this is byte-identical to the offered stream.
  [[nodiscard]] const std::vector<BitVector>& delivered_payloads() const {
    return delivered_;
  }

  [[nodiscard]] const FrameCodec& codec() const { return codec_; }
  [[nodiscard]] const SyncMonitor& sync() const { return sync_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Rate after degraded-mode fallback: each step doubles the UI.
  [[nodiscard]] std::size_t rate_steps() const { return rate_steps_; }
  [[nodiscard]] Picoseconds current_ui() const;
  [[nodiscard]] GbitsPerSec current_rate() const;

  /// Health verdict in HealthReport form: "arq" (accounting + abandonment),
  /// "sync" (lock history), "rate" (fallback state). Merges cleanly into
  /// core::TestSystem::self_test() reports under a "link." prefix.
  [[nodiscard]] fault::HealthReport health() const;

private:
  /// One data frame through the forward channel into the RX pipeline.
  void deliver_to_rx(const LinkFrame& frame);
  /// One ACK/NAK/idle response through the reverse channel back to TX.
  /// Returns the cumulative ack when the response was usable.
  [[nodiscard]] std::optional<std::uint64_t> exchange_response();
  /// Guard-slot hunting until the receiver re-engages (bounded).
  void resynchronize();
  /// Degraded-mode bookkeeping at payload completion.
  void note_completion(bool was_abandoned);
  /// Effective severity scale after rate fallback (2^-rate_steps).
  [[nodiscard]] double margin() const;

  Config config_;
  FrameCodec codec_;
  Transport forward_;
  Transport reverse_;
  SyncMonitor sync_;
  ArqReceiver rx_;
  LinkStats stats_{};
  std::vector<BitVector> delivered_;
  std::uint64_t tick_ = 0;      // protocol slot clock
  std::uint64_t tx_acked_ = 0;  // cumulative ack == seq of the base payload
  std::size_t rate_steps_ = 0;
  bool rx_saw_gap_ = false;     // within the current round
  std::size_t window_completed_ = 0;  // degraded-mode window counters
  std::size_t window_abandoned_ = 0;
};

/// Deterministic corruption channel driven by `plan`'s slice for
/// `component`. Consumed fault kinds (tick = protocol slot):
///   kFrameCorruption  severity = per-bit flip probability (payload+header)
///   kSyncLoss         frame-bit violation for the window's duration
///   kLossOfSignal     slot not captured at all (link dark)
/// An empty slice transfers every packet untouched and draws no RNG.
[[nodiscard]] LinkChannel::Transport make_fault_transport(
    const fault::FaultPlan& plan, const std::string& component);

/// Full signal-path transport over an OpticalTestbed (no fabric: the pure
/// point-to-point optical link). Ignores severity_scale — the analog chain
/// is its own severity.
[[nodiscard]] LinkChannel::Transport make_testbed_transport(
    testbed::OpticalTestbed& bed);

/// Signal-path transport that additionally deflection-routes every slot
/// through the Data Vortex fabric from `input_port` to `destination`
/// before the analog check (transmitter -> vortex fabric -> receiver).
/// A packet the fabric drops (failed nodes) arrives uncaptured.
[[nodiscard]] LinkChannel::Transport make_routed_transport(
    testbed::OpticalTestbed& bed, std::size_t input_port,
    std::uint32_t destination);

}  // namespace mgt::link
