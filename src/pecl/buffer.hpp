// Output buffers.
//
// The final output stage sets the analog character of the stimulus: the
// optical test bed uses SiGe buffers with 70-75 ps (20-80 %) transitions
// and very low added jitter (Section 3); the mini-tester's differential
// I/O buffers show ~120 ps rise (Section 4). Both offer programmable
// high/low levels and midpoint bias through voltage-tuning DACs (Figs 10
// and 11).
#pragma once

#include "signal/edge.hpp"
#include "signal/filter.hpp"
#include "signal/levels.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace mgt::pecl {

class OutputBuffer {
public:
  struct Config {
    Picoseconds rise_2080{72.0};    // SiGe default (paper: 70-75 ps)
    Picoseconds prop_delay{160.0};
    Picoseconds rj_sigma{2.4};      // "very little jitter"
    sig::PeclLevels levels{};
    /// Voltage-tuning DAC resolution; programmed levels snap to this grid.
    Millivolts dac_step{20.0};
    /// DAC compliance range for either rail.
    Millivolts v_min{1000.0};
    Millivolts v_max{3000.0};
    /// Bandwidth realized as this many cascaded poles (2 = S-shaped edges).
    int pole_count = 2;
  };

  OutputBuffer(Config config, Rng rng);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const sig::PeclLevels& levels() const { return config_.levels; }

  /// Programs the high level (snapped to the DAC grid); Fig 10 operation.
  void set_voh(Millivolts voh);
  /// Programs the low level (snapped to the DAC grid).
  void set_vol(Millivolts vol);
  /// Programs the swing, keeping the midpoint (Fig 11 operation).
  void set_swing(Millivolts swing);
  /// Programs the midpoint bias, keeping the swing.
  void set_midpoint(Millivolts mid);

  /// Applies propagation delay and the buffer's additive RJ to the edges.
  sig::EdgeStream apply(const sig::EdgeStream& input);

  /// Appends this buffer's bandwidth poles to a render chain.
  void contribute(sig::FilterChain& chain) const;

  /// Complete filter chain for rendering just this buffer's output.
  [[nodiscard]] sig::FilterChain make_chain() const;

  /// 20-80 % step-response rise time of the realized pole cascade.
  [[nodiscard]] Picoseconds realized_rise_2080() const;

private:
  [[nodiscard]] Millivolts snap(Millivolts v) const;

  Config config_;
  Rng rng_;
};

}  // namespace mgt::pecl
