#include "pecl/delayline.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace mgt::pecl {

ProgrammableDelay::ProgrammableDelay(Config config, Rng rng)
    : config_(config), rng_(rng) {
  MGT_CHECK(config_.step.ps() > 0.0);
  MGT_CHECK(config_.code_count >= 2);
  offset_ps_ = rng_.uniform(-config_.offset_error.ps(),
                            config_.offset_error.ps());
  gain_ = 1.0 + rng_.uniform(-config_.gain_error, config_.gain_error);

  if (config_.mode == TimingMode::kVernier) {
    vernier_.emplace(config_.vernier, rng_.fork());
    return;
  }

  // INL: a slow bow (typical of tapped delay chains) plus small per-code
  // mismatch, both bounded by inl_bound.
  inl_ps_.resize(config_.code_count);
  const double bow_amp = 0.6 * config_.inl_bound.ps();
  const double noise_amp = 0.35 * config_.inl_bound.ps();
  const double phase = rng_.uniform(0.0, 2.0 * std::numbers::pi);
  for (std::size_t c = 0; c < config_.code_count; ++c) {
    const double x = static_cast<double>(c) /
                     static_cast<double>(config_.code_count - 1);
    const double bow = bow_amp * std::sin(std::numbers::pi * x + phase) *
                       std::sin(std::numbers::pi * x);
    const double mismatch = rng_.uniform(-noise_amp, noise_amp);
    inl_ps_[c] = bow + mismatch;
  }
  inl_ps_[0] = 0.0;  // code 0 is the calibration reference
}

void ProgrammableDelay::set_faults(fault::ComponentFaults faults) {
  faults_ = std::move(faults);
}

Picoseconds ProgrammableDelay::fault_drift(std::uint64_t tick) const {
  if (!faults_.any(fault::FaultKind::kDelayDrift)) {
    return Picoseconds{0.0};
  }
  return Picoseconds{faults_.severity(fault::FaultKind::kDelayDrift, tick) *
                     kDriftFullScalePs};
}

Picoseconds ProgrammableDelay::step() const {
  return vernier_ ? vernier_->step() : config_.step;
}

std::size_t ProgrammableDelay::code_count() const {
  return vernier_ ? vernier_->code_count() : config_.code_count;
}

void ProgrammableDelay::set_code(std::size_t code) {
  MGT_CHECK(code < code_count(), "delay code out of range");
  code_ = code;
}

Picoseconds ProgrammableDelay::programmed_delay() const {
  return Picoseconds{static_cast<double>(code_) * step().ps()};
}

Picoseconds ProgrammableDelay::actual_delay(std::size_t code) const {
  if (vernier_) {
    return vernier_->actual_delay(code);
  }
  MGT_CHECK(code < config_.code_count, "delay code out of range");
  const double ideal = static_cast<double>(code) * config_.step.ps();
  return Picoseconds{gain_ * ideal + inl_ps_[code]};
}

Picoseconds ProgrammableDelay::worst_case_error() const {
  if (vernier_) {
    return vernier_->worst_case_error();
  }
  double worst = 0.0;
  for (std::size_t c = 0; c < config_.code_count; ++c) {
    const double ideal = static_cast<double>(c) * config_.step.ps();
    worst = std::max(worst, std::abs(actual_delay(c).ps() - ideal));
  }
  return Picoseconds{worst};
}

sig::EdgeStream ProgrammableDelay::apply(const sig::EdgeStream& input) {
  const double base =
      config_.insertion_delay.ps() + offset_ps_ + actual_delay(code_).ps();
  const bool drifting = faults_.any(fault::FaultKind::kDelayDrift);
  sig::EdgeStream out(input.initial_level());
  double last = -1e300;
  std::uint64_t edge = 0;
  for (const auto& tr : input.transitions()) {
    double t = tr.time.ps() + base;
    if (config_.rj_sigma.ps() > 0.0) {
      t += rng_.gaussian(0.0, config_.rj_sigma.ps());
    }
    if (drifting) {
      t += fault_drift(edge).ps();
    }
    ++edge;
    t = std::max(t, last + 1e-3);
    out.push(Picoseconds{t}, tr.level);
    last = t;
  }
  return out;
}

}  // namespace mgt::pecl
