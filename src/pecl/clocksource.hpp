// RF clock source.
//
// An external low-jitter (picosecond-class) RF instrument provides the
// master timing reference for every timing-critical signal (Fig 1:
// "Low-Jitter Clock 0.5~2.5 GHz"). White phase noise is modeled as an
// independent Gaussian offset per edge, which is what a scope triggered on
// the source itself observes.
#pragma once

#include <vector>

#include "fault/fault.hpp"
#include "signal/edge.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace mgt::pecl {

class ClockSource {
public:
  struct Config {
    Gigahertz frequency{1.25};
    Picoseconds rj_sigma{1.0};  // instrument-grade phase jitter
    /// Supported tuning range of the instrument (Fig 1).
    Gigahertz min_frequency{0.5};
    Gigahertz max_frequency{2.5};
  };

  /// Fraction of edges a severity-1.0 kClockGlitch fault displaces, and
  /// the displacement as a fraction of the clock period.
  static constexpr double kGlitchEdgeFraction = 0.1;
  static constexpr double kGlitchPeriodFraction = 0.35;

  ClockSource(Config config, Rng rng);

  /// Attaches this source's fault slice (kind kClockGlitch; tick = edge
  /// index counting every transition). Glitched edges are displaced by
  /// kGlitchPeriodFraction * period * severity; which edges glitch is
  /// decided by a fault-plan RNG keyed on the edge index, so the healthy
  /// jitter sequence is unchanged by scheduling faults.
  void set_faults(fault::ComponentFaults faults);
  [[nodiscard]] const fault::ComponentFaults& faults() const { return faults_; }

  [[nodiscard]] Gigahertz frequency() const { return config_.frequency; }
  [[nodiscard]] Picoseconds period() const { return config_.frequency.period(); }
  [[nodiscard]] Picoseconds rj_sigma() const { return config_.rj_sigma; }

  /// Retunes the instrument; throws outside the supported range.
  void set_frequency(Gigahertz f);

  /// Generates n_cycles of the clock waveform starting at t0.
  sig::EdgeStream generate(std::size_t n_cycles, Picoseconds t0 = Picoseconds{0});

  /// Nominal rising-edge times (the ideal timing grid downstream logic is
  /// calibrated against).
  [[nodiscard]] std::vector<Picoseconds> rising_edge_grid(
      std::size_t n, Picoseconds t0 = Picoseconds{0}) const;

private:
  Config config_;
  Rng rng_;
  fault::ComponentFaults faults_;
};

}  // namespace mgt::pecl
