#include "pecl/clocktree.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mgt::pecl {

ClockTree::ClockTree(Config config, Rng rng) : config_(config) {
  MGT_CHECK(config_.loads >= 1);
  MGT_CHECK(config_.fanout_per_buffer >= 2);
  config_.buffer.outputs = config_.fanout_per_buffer;

  // Depth needed so fanout^depth >= loads.
  depth_ = 1;
  std::size_t reach = config_.fanout_per_buffer;
  while (reach < config_.loads) {
    reach *= config_.fanout_per_buffer;
    ++depth_;
  }

  // Instantiate every buffer on some root-to-load path.
  for (std::size_t load = 0; load < config_.loads; ++load) {
    for (const Hop& hop : path_of(load)) {
      const auto key = std::make_pair(hop.level, hop.index);
      if (!buffers_.contains(key)) {
        buffers_.emplace(key, ClockFanout(config_.buffer, rng.fork()));
      }
    }
  }
}

std::vector<ClockTree::Hop> ClockTree::path_of(std::size_t load) const {
  MGT_CHECK(load < config_.loads, "load index out of range");
  std::vector<Hop> path(depth_);
  // Interpret `load` in base-fanout digits, most significant hop first:
  // buffer index at level L is the prefix of digits above it.
  std::size_t rem = load;
  for (std::size_t level = depth_; level-- > 0;) {
    path[level] =
        Hop{level, rem / config_.fanout_per_buffer,
            rem % config_.fanout_per_buffer};
    rem /= config_.fanout_per_buffer;
  }
  return path;
}

ClockFanout& ClockTree::buffer_at(std::size_t level, std::size_t index) {
  const auto it = buffers_.find(std::make_pair(level, index));
  MGT_CHECK(it != buffers_.end(), "internal: missing tree buffer");
  return it->second;
}

Picoseconds ClockTree::load_skew(std::size_t load) const {
  double skew = 0.0;
  for (const Hop& hop : path_of(load)) {
    const auto it = buffers_.find(std::make_pair(hop.level, hop.index));
    MGT_CHECK(it != buffers_.end());
    skew += it->second.skew_of(hop.port).ps();
  }
  return Picoseconds{skew};
}

Picoseconds ClockTree::skew_spread_pp() const {
  double lo = 1e300;
  double hi = -1e300;
  for (std::size_t load = 0; load < config_.loads; ++load) {
    const double s = load_skew(load).ps();
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  return Picoseconds{hi - lo};
}

Picoseconds ClockTree::path_rj_sigma() const {
  const double per = config_.buffer.rj_sigma.ps();
  return Picoseconds{per * std::sqrt(static_cast<double>(depth_))};
}

void ClockTree::set_faults(fault::ComponentFaults faults) {
  faults_ = std::move(faults);
}

sig::EdgeStream ClockTree::drive(const sig::EdgeStream& input,
                                 std::size_t load) {
  sig::EdgeStream stream = input;
  for (const Hop& hop : path_of(load)) {
    stream = buffer_at(hop.level, hop.index).drive(stream, hop.port);
  }
  if (!faults_.any(fault::FaultKind::kClockGlitch)) {
    return stream;
  }
  // Displace glitched edges late by severity * half the gap to the next
  // edge; bounding by the gap keeps the stream well-formed by construction.
  const auto& trs = stream.transitions();
  sig::EdgeStream out(stream.initial_level());
  for (std::size_t k = 0; k < trs.size(); ++k) {
    double t = trs[k].time.ps();
    if (faults_.active(fault::FaultKind::kClockGlitch, k, load) &&
        k + 1 < trs.size()) {
      const double gap = trs[k + 1].time.ps() - t;
      t += 0.5 * gap * faults_.severity(fault::FaultKind::kClockGlitch, k, load);
    }
    out.push(Picoseconds{t}, trs[k].level);
  }
  return out;
}

}  // namespace mgt::pecl
