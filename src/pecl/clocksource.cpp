#include "pecl/clocksource.hpp"

#include "util/error.hpp"

namespace mgt::pecl {

ClockSource::ClockSource(Config config, Rng rng)
    : config_(config), rng_(rng) {
  set_frequency(config_.frequency);
  MGT_CHECK(config_.rj_sigma.ps() >= 0.0);
}

void ClockSource::set_frequency(Gigahertz f) {
  MGT_CHECK(f.ghz() >= config_.min_frequency.ghz() &&
                f.ghz() <= config_.max_frequency.ghz(),
            "RF source frequency outside instrument range");
  config_.frequency = f;
}

sig::EdgeStream ClockSource::generate(std::size_t n_cycles, Picoseconds t0) {
  const Picoseconds period = config_.frequency.period();
  auto jitter = [this](std::size_t, Picoseconds) {
    return Picoseconds{rng_.gaussian(0.0, config_.rj_sigma.ps())};
  };
  return sig::EdgeStream::clock(period, n_cycles, t0,
                                config_.rj_sigma.ps() > 0.0
                                    ? sig::EdgeOffsetFn(jitter)
                                    : sig::EdgeOffsetFn(nullptr));
}

std::vector<Picoseconds> ClockSource::rising_edge_grid(std::size_t n,
                                                       Picoseconds t0) const {
  std::vector<Picoseconds> grid;
  grid.reserve(n);
  const double period = config_.frequency.period().ps();
  for (std::size_t k = 0; k < n; ++k) {
    grid.push_back(Picoseconds{t0.ps() + static_cast<double>(k) * period});
  }
  return grid;
}

}  // namespace mgt::pecl
