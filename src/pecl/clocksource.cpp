#include "pecl/clocksource.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mgt::pecl {

ClockSource::ClockSource(Config config, Rng rng)
    : config_(config), rng_(rng) {
  set_frequency(config_.frequency);
  MGT_CHECK(config_.rj_sigma.ps() >= 0.0);
}

void ClockSource::set_frequency(Gigahertz f) {
  MGT_CHECK(f.ghz() >= config_.min_frequency.ghz() &&
                f.ghz() <= config_.max_frequency.ghz(),
            "RF source frequency outside instrument range");
  config_.frequency = f;
}

void ClockSource::set_faults(fault::ComponentFaults faults) {
  faults_ = std::move(faults);
}

sig::EdgeStream ClockSource::generate(std::size_t n_cycles, Picoseconds t0) {
  const Picoseconds period = config_.frequency.period();
  const bool glitching = faults_.any(fault::FaultKind::kClockGlitch);
  auto jitter = [this, period, glitching](std::size_t edge, Picoseconds) {
    double dt = 0.0;
    if (config_.rj_sigma.ps() > 0.0) {
      dt = rng_.gaussian(0.0, config_.rj_sigma.ps());
    }
    if (glitching && faults_.active(fault::FaultKind::kClockGlitch, edge)) {
      // Keyed on the edge index, not rng_, so scheduling a fault leaves
      // the healthy jitter sequence byte-identical.
      Rng fault_rng = faults_.rng(edge);
      const double sev = faults_.severity(fault::FaultKind::kClockGlitch, edge);
      if (fault_rng.chance(std::min(1.0, kGlitchEdgeFraction * sev))) {
        dt += kGlitchPeriodFraction * period.ps() * sev;
      }
    }
    return Picoseconds{dt};
  };
  const bool need_offset = config_.rj_sigma.ps() > 0.0 || glitching;
  return sig::EdgeStream::clock(period, n_cycles, t0,
                                need_offset ? sig::EdgeOffsetFn(jitter)
                                            : sig::EdgeOffsetFn(nullptr));
}

std::vector<Picoseconds> ClockSource::rising_edge_grid(std::size_t n,
                                                       Picoseconds t0) const {
  std::vector<Picoseconds> grid;
  grid.reserve(n);
  const double period = config_.frequency.period().ps();
  for (std::size_t k = 0; k < n; ++k) {
    grid.push_back(Picoseconds{t0.ps() + static_cast<double>(k) * period});
  }
  return grid;
}

}  // namespace mgt::pecl
