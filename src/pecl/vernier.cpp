#include "pecl/vernier.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/env.hpp"
#include "util/error.hpp"

namespace mgt::pecl {

std::string_view to_string(TimingMode mode) {
  switch (mode) {
    case TimingMode::kStepped:
      return "stepped";
    case TimingMode::kVernier:
      return "vernier";
  }
  return "unknown";
}

std::optional<TimingMode> parse_timing_mode(const char* raw) {
  if (raw == nullptr || raw[0] == '\0') {
    return std::nullopt;
  }
  const std::string_view value(raw);
  if (value == "stepped") {
    return TimingMode::kStepped;
  }
  if (value == "vernier") {
    return TimingMode::kVernier;
  }
  return std::nullopt;
}

TimingMode default_timing_mode() {
  static const TimingMode mode = [] {
    // NOLINTNEXTLINE(concurrency-mt-unsafe) - parsed once, before threads
    const char* raw = std::getenv("MGT_TIMING_MODE");
    if (raw == nullptr || raw[0] == '\0') {
      return TimingMode::kStepped;
    }
    const auto parsed = parse_timing_mode(raw);
    if (!parsed) {
      util::note_env_rejection("MGT_TIMING_MODE");
      return TimingMode::kStepped;
    }
    return *parsed;
  }();
  return mode;
}

VernierTimebase::VernierTimebase(Config config, Rng rng) : config_(config) {
  MGT_CHECK(config_.step.ps() > 0.0, "vernier step must be positive");
  MGT_CHECK(config_.code_count >= 2, "vernier needs at least two codes");
  MGT_CHECK(config_.main_clock.ghz() > 0.0);
  MGT_CHECK(config_.step.ps() < config_.main_clock.period().ps() / 2.0,
            "beat step must be far below the main period");
  MGT_CHECK(config_.ratio_error >= 0.0 && config_.walk_sigma.ps() >= 0.0 &&
            config_.walk_bound.ps() >= 0.0);

  gain_ = 1.0 + rng.uniform(-config_.ratio_error, config_.ratio_error);

  // Accumulated phase walk: within one beat period the pair free-runs and
  // error integrates as a bounded random walk; at each re-coincidence the
  // detector pulls the accumulated error back toward zero. Code 0 is the
  // anchored coincidence itself.
  walk_ps_.resize(config_.code_count);
  const std::size_t beat = codes_per_beat();
  const double per_code_sigma =
      config_.walk_sigma.ps() / std::sqrt(static_cast<double>(beat));
  double walk = 0.0;
  for (std::size_t c = 0; c < config_.code_count; ++c) {
    if (c == 0) {
      walk_ps_[0] = 0.0;
      continue;
    }
    if (beat > 0 && c % beat == 0) {
      walk *= 0.5;  // coincidence detector realigns the pair
    }
    walk += rng.gaussian(0.0, per_code_sigma);
    walk = std::clamp(walk, -config_.walk_bound.ps(), config_.walk_bound.ps());
    walk_ps_[c] = walk;
  }
}

Picoseconds VernierTimebase::vernier_period() const {
  return config_.main_clock.period() - config_.step;
}

std::size_t VernierTimebase::codes_per_beat() const {
  return static_cast<std::size_t>(
      std::floor(config_.main_clock.period().ps() / config_.step.ps()));
}

Picoseconds VernierTimebase::programmed_delay(std::size_t code) const {
  MGT_CHECK(code < config_.code_count, "vernier code out of range");
  return Picoseconds{static_cast<double>(code) * config_.step.ps()};
}

Picoseconds VernierTimebase::actual_delay(std::size_t code) const {
  MGT_CHECK(code < config_.code_count, "vernier code out of range");
  const double ideal = static_cast<double>(code) * config_.step.ps();
  return Picoseconds{gain_ * ideal + walk_ps_[code]};
}

Picoseconds VernierTimebase::worst_case_error() const {
  double worst = 0.0;
  for (std::size_t c = 0; c < config_.code_count; ++c) {
    worst = std::max(worst, std::abs(actual_delay(c).ps() -
                                     programmed_delay(c).ps()));
  }
  return Picoseconds{worst};
}

}  // namespace mgt::pecl
