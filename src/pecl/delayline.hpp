// Programmable delay lines.
//
// Both applications require edge placement with 10 ps resolution over a
// 10 ns range with about +-25 ps absolute accuracy (Sections 1, 3, 4). The
// stepped model is a digitally programmed tap chain: delay = gain*code*step
// + INL(code) relative to code 0, where the INL profile is a fixed property
// of the physical part (drawn once, deterministic per instance) and bounded
// so total placement error stays within the accuracy spec. The part's fixed
// insertion-delay error (offset) shifts every edge equally and is reported
// separately (insertion_offset()); it never appears in the code-relative
// delay, which is pinned to zero at the code-0 calibration reference.
//
// TimingMode::kVernier swaps the tap chain for the dual-clock beat
// interpolator (vernier.hpp): sub-picosecond effective steps (0.67 ps per
// arXiv 2502.04948) behind the same code/delay interface, so strobe
// placement, bathtub scans and shmoo drivers work unchanged in either mode.
#pragma once

#include <optional>
#include <vector>

#include "fault/fault.hpp"
#include "pecl/vernier.hpp"
#include "signal/edge.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace mgt::pecl {

class ProgrammableDelay {
public:
  struct Config {
    /// Code-to-time mapping: stepped tap chain or vernier interpolator.
    TimingMode mode = TimingMode::kStepped;
    Picoseconds step{10.0};          // stepped-mode resolution
    std::size_t code_count = 1024;   // range = step * (code_count-1) ~ 10 ns
    Picoseconds offset_error{4.0};   // fixed insertion-delay error bound
    double gain_error = 0.0008;      // proportional error bound (0.08 %)
    Picoseconds inl_bound{10.0};     // max integral nonlinearity
    Picoseconds rj_sigma{0.3};       // delay-cell random jitter
    Picoseconds insertion_delay{900.0};  // nominal through-delay
    /// Vernier-mode parameters (step/code_count/error model); only
    /// consulted when mode == TimingMode::kVernier.
    VernierTimebase::Config vernier{};
  };

  /// Full-scale drift (ps) a severity-1.0 kDelayDrift fault adds: more
  /// than half a unit interval at 5 Gbps, enough to walk a strobe out of
  /// any eye this library produces.
  static constexpr double kDriftFullScalePs = 120.0;

  /// The part's error profile is drawn once from `rng` at construction.
  ProgrammableDelay(Config config, Rng rng);

  /// Attaches this part's fault slice (kind kDelayDrift; tick = edge
  /// index). An empty slice leaves apply()/fault_drift() untouched.
  void set_faults(fault::ComponentFaults faults);
  [[nodiscard]] const fault::ComponentFaults& faults() const { return faults_; }

  /// Extra delay the scheduled drift faults contribute at `tick`
  /// (severity * kDriftFullScalePs; zero when healthy).
  [[nodiscard]] Picoseconds fault_drift(std::uint64_t tick = 0) const;

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] TimingMode mode() const { return config_.mode; }
  /// Effective programming resolution of the active mode (10 ps stepped,
  /// the beat step in vernier mode). Call sites derive code math from this
  /// so selecting the mode never requires code changes.
  [[nodiscard]] Picoseconds step() const;
  [[nodiscard]] std::size_t code_count() const;
  [[nodiscard]] Picoseconds full_range() const {
    return Picoseconds{step().ps() *
                       static_cast<double>(code_count() - 1)};
  }

  void set_code(std::size_t code);
  [[nodiscard]] std::size_t code() const { return code_; }

  /// Programmed (ideal) delay for the current code, relative to code 0.
  [[nodiscard]] Picoseconds programmed_delay() const;

  /// Actual delay the hardware realizes for `code` relative to code 0
  /// (actual_delay(0) is exactly 0; insertion delay and the fixed offset
  /// error are excluded), including gain/INL errors of the active mode.
  [[nodiscard]] Picoseconds actual_delay(std::size_t code) const;

  /// The part's realized fixed insertion-delay error: applied by apply()
  /// on top of the nominal insertion delay, never part of the
  /// code-relative placement (a calibration soaks it up).
  [[nodiscard]] Picoseconds insertion_offset() const {
    return Picoseconds{offset_ps_};
  }

  /// Worst-case |actual - programmed| across all codes: the placement
  /// accuracy of this specific part (paper: about +-25 ps).
  [[nodiscard]] Picoseconds worst_case_error() const;

  /// Delays every edge of `input` by insertion + offset + actual delay
  /// + RJ.
  sig::EdgeStream apply(const sig::EdgeStream& input);

private:
  Config config_;
  Rng rng_;
  fault::ComponentFaults faults_;
  std::size_t code_ = 0;
  double offset_ps_;
  double gain_;
  std::vector<double> inl_ps_;  // per-code INL profile (stepped mode)
  std::optional<VernierTimebase> vernier_;  // engaged in vernier mode
};

}  // namespace mgt::pecl
