// Programmable delay lines.
//
// Both applications require edge placement with 10 ps resolution over a
// 10 ns range with about +-25 ps absolute accuracy (Sections 1, 3, 4). The
// model is a digitally programmed vernier: delay = offset + gain*code*step
// + INL(code), where the INL profile is a fixed property of the physical
// part (drawn once, deterministic per instance) and bounded so total
// placement error stays within the accuracy spec.
#pragma once

#include <vector>

#include "fault/fault.hpp"
#include "signal/edge.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace mgt::pecl {

class ProgrammableDelay {
public:
  struct Config {
    Picoseconds step{10.0};          // programmable resolution
    std::size_t code_count = 1024;   // range = step * (code_count-1) ~ 10 ns
    Picoseconds offset_error{4.0};   // fixed insertion-delay error bound
    double gain_error = 0.0008;      // proportional error bound (0.08 %)
    Picoseconds inl_bound{10.0};     // max integral nonlinearity
    Picoseconds rj_sigma{0.3};       // delay-cell random jitter
    Picoseconds insertion_delay{900.0};  // nominal through-delay
  };

  /// Full-scale drift (ps) a severity-1.0 kDelayDrift fault adds: more
  /// than half a unit interval at 5 Gbps, enough to walk a strobe out of
  /// any eye this library produces.
  static constexpr double kDriftFullScalePs = 120.0;

  /// The part's error profile is drawn once from `rng` at construction.
  ProgrammableDelay(Config config, Rng rng);

  /// Attaches this part's fault slice (kind kDelayDrift; tick = edge
  /// index). An empty slice leaves apply()/fault_drift() untouched.
  void set_faults(fault::ComponentFaults faults);
  [[nodiscard]] const fault::ComponentFaults& faults() const { return faults_; }

  /// Extra delay the scheduled drift faults contribute at `tick`
  /// (severity * kDriftFullScalePs; zero when healthy).
  [[nodiscard]] Picoseconds fault_drift(std::uint64_t tick = 0) const;

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::size_t code_count() const { return config_.code_count; }
  [[nodiscard]] Picoseconds full_range() const {
    return Picoseconds{config_.step.ps() *
                       static_cast<double>(config_.code_count - 1)};
  }

  void set_code(std::size_t code);
  [[nodiscard]] std::size_t code() const { return code_; }

  /// Programmed (ideal) delay for the current code, relative to code 0.
  [[nodiscard]] Picoseconds programmed_delay() const;

  /// Actual delay the hardware realizes for `code` (relative to code 0,
  /// excluding insertion delay), including offset/gain/INL errors.
  [[nodiscard]] Picoseconds actual_delay(std::size_t code) const;

  /// Worst-case |actual - programmed| across all codes: the placement
  /// accuracy of this specific part (paper: about +-25 ps).
  [[nodiscard]] Picoseconds worst_case_error() const;

  /// Delays every edge of `input` by insertion + actual delay + RJ.
  sig::EdgeStream apply(const sig::EdgeStream& input);

private:
  Config config_;
  Rng rng_;
  fault::ComponentFaults faults_;
  std::size_t code_ = 0;
  double offset_ps_;
  double gain_;
  std::vector<double> inl_ps_;  // per-code INL profile
};

}  // namespace mgt::pecl
