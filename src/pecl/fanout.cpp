#include "pecl/fanout.hpp"

#include "util/error.hpp"

namespace mgt::pecl {

ClockFanout::ClockFanout(Config config, Rng rng)
    : config_(config), rng_(rng) {
  MGT_CHECK(config_.outputs > 0);
  skews_.reserve(config_.outputs);
  for (std::size_t i = 0; i < config_.outputs; ++i) {
    skews_.push_back(Picoseconds{
        rng_.uniform(-config_.skew_pp.ps() / 2.0, config_.skew_pp.ps() / 2.0)});
  }
}

Picoseconds ClockFanout::skew_of(std::size_t output) const {
  MGT_CHECK(output < skews_.size(), "fanout output index out of range");
  return skews_[output];
}

sig::EdgeStream ClockFanout::drive(const sig::EdgeStream& input,
                                   std::size_t output) {
  MGT_CHECK(output < skews_.size(), "fanout output index out of range");
  const double base = config_.prop_delay.ps() + skews_[output].ps();
  sig::EdgeStream out(input.initial_level());
  double last = -1e300;
  for (const auto& tr : input.transitions()) {
    double t = tr.time.ps() + base;
    if (config_.rj_sigma.ps() > 0.0) {
      t += rng_.gaussian(0.0, config_.rj_sigma.ps());
    }
    t = std::max(t, last + 1e-3);
    out.push(Picoseconds{t}, tr.level);
    last = t;
  }
  return out;
}

sig::EdgeStream divide_clock(const sig::EdgeStream& clock,
                             std::size_t divisor) {
  MGT_CHECK(divisor >= 1, "divisor must be at least 1");
  if (divisor == 1) {
    return clock;
  }
  sig::EdgeStream out(false);
  bool level = false;
  std::size_t rising_seen = 0;
  for (const auto& tr : clock.transitions()) {
    if (!tr.level) {
      continue;  // count rising edges only
    }
    if (rising_seen++ % divisor == 0) {
      level = !level;
      out.push(tr.time, level);
    }
  }
  return out;
}

sig::EdgeStream XorGate::combine(const sig::EdgeStream& a,
                                 const sig::EdgeStream& b) {
  sig::EdgeStream ideal = a.xor_with(b);
  sig::EdgeStream out(ideal.initial_level());
  double last = -1e300;
  for (const auto& tr : ideal.transitions()) {
    double t = tr.time.ps() + config_.prop_delay.ps();
    if (config_.rj_sigma.ps() > 0.0) {
      t += rng_.gaussian(0.0, config_.rj_sigma.ps());
    }
    t = std::max(t, last + 1e-3);
    out.push(Picoseconds{t}, tr.level);
    last = t;
  }
  return out;
}

sig::EdgeStream XorGate::double_clock(const sig::EdgeStream& clock,
                                      Picoseconds quarter_period) {
  MGT_CHECK(quarter_period.ps() > 0.0);
  return combine(clock, clock.shifted(quarter_period));
}

}  // namespace mgt::pecl
