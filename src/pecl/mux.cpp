#include "pecl/mux.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace mgt::pecl {

namespace {
/// Builder bounds: the widest PECL parts the model characterizes and a
/// lane ceiling that keeps skew tables and bit math comfortably in range.
constexpr std::size_t kMaxFanIn = 64;
constexpr std::size_t kMaxStages = 6;
constexpr std::size_t kMaxLanes = 4096;
}  // namespace

SerializerTree::SerializerTree(Config config, Rng rng)
    : config_(std::move(config)), rng_(rng) {
  MGT_CHECK(!config_.stages.empty(), "serializer needs at least one stage");
  MGT_CHECK(config_.stages.size() <= kMaxStages,
            "serializer tree too deep (max 6 stages)");
  std::size_t lanes = 1;
  for (const auto& stage : config_.stages) {
    MGT_CHECK(stage.fan_in >= 2, "mux stage fan-in must be at least 2");
    MGT_CHECK(stage.fan_in <= kMaxFanIn, "mux stage fan-in above part range");
    MGT_CHECK(stage.skew_pp.ps() >= 0.0 && stage.rj_sigma.ps() >= 0.0 &&
                  stage.prop_delay.ps() >= 0.0,
              "mux stage parameters must be non-negative");
    lanes *= stage.fan_in;
    MGT_CHECK(lanes <= kMaxLanes, "serializer tree exceeds the lane ceiling");
  }
  for (const auto& stage : config_.stages) {
    std::vector<Picoseconds> stage_skews;
    stage_skews.reserve(stage.fan_in);
    for (std::size_t i = 0; i < stage.fan_in; ++i) {
      stage_skews.push_back(Picoseconds{rng_.uniform(
          -stage.skew_pp.ps() / 2.0, stage.skew_pp.ps() / 2.0)});
    }
    skews_.push_back(std::move(stage_skews));
  }
}

std::size_t SerializerTree::total_lanes() const {
  std::size_t lanes = 1;
  for (const auto& stage : config_.stages) {
    lanes *= stage.fan_in;
  }
  return lanes;
}

Picoseconds SerializerTree::total_prop_delay() const {
  double d = 0.0;
  for (const auto& stage : config_.stages) {
    d += stage.prop_delay.ps();
  }
  return Picoseconds{d};
}

Picoseconds SerializerTree::skew_for_bit(std::size_t k) const {
  // Decompose the serial index: the final stage's input selects fastest.
  double skew = 0.0;
  std::size_t rem = k;
  for (std::size_t s = 0; s < config_.stages.size(); ++s) {
    const std::size_t input = rem % config_.stages[s].fan_in;
    rem /= config_.stages[s].fan_in;
    skew += skews_[s][input].ps();
  }
  return Picoseconds{skew};
}

Picoseconds SerializerTree::skew_profile_pp() const {
  const std::size_t lanes = total_lanes();
  double lo = 1e300;
  double hi = -1e300;
  for (std::size_t k = 0; k < lanes; ++k) {
    const double s = skew_for_bit(k).ps();
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  return Picoseconds{hi - lo};
}

Picoseconds SerializerTree::total_rj_sigma() const {
  double sum_sq = config_.clock_rj_sigma.ps() * config_.clock_rj_sigma.ps();
  for (const auto& stage : config_.stages) {
    sum_sq += stage.rj_sigma.ps() * stage.rj_sigma.ps();
  }
  return Picoseconds{std::sqrt(sum_sq)};
}

void SerializerTree::set_faults(fault::ComponentFaults faults) {
  faults_ = std::move(faults);
}

BitVector SerializerTree::faulted_bits(const BitVector& bits) const {
  const std::size_t lanes = total_lanes();
  BitVector out = bits;
  // The NRZ stream's level before serial bit 0 is bit 0's own value
  // (sig::EdgeStream::from_bits seeds its initial level from bits[0]), so
  // a dropout hitting bit 0 holds that level rather than forcing 0.
  bool previous = bits.empty() ? false : bits.get(0);
  for (std::size_t k = 0; k < out.size(); ++k) {
    const std::size_t lane = lane_for_bit(k);
    bool value = out.get(k);
    for (const fault::FaultSpec& spec : faults_.specs()) {
      if (!spec.active_at(k)) {
        continue;
      }
      // kAllIndices + severity selects the low `severity` fraction of the
      // lane bus (how a failing mux part takes out adjacent inputs).
      const bool hits =
          spec.index == fault::FaultSpec::kAllIndices
              ? static_cast<double>(lane) <
                    spec.severity * static_cast<double>(lanes)
              : spec.index == lane;
      if (!hits) {
        continue;
      }
      if (spec.kind == fault::FaultKind::kMuxStuckAt) {
        value = spec.stuck_high;
      } else if (spec.kind == fault::FaultKind::kMuxDropout) {
        value = previous;  // lane contributes no transition
      }
    }
    out.set(k, value);
    previous = value;
  }
  return out;
}

sig::EdgeStream SerializerTree::serialize(const BitVector& bits,
                                          GbitsPerSec rate, Picoseconds t0) {
  MGT_CHECK(rate.gbps() > 0.0);
  obs::add_counter("pecl.mux.serializations");
  obs::add_counter("pecl.mux.bits", bits.size());
  if (faults_.any()) {
    obs::add_counter("pecl.mux.faulted_serializations");
  }
  const double sigma = total_rj_sigma().ps();
  const Picoseconds start = t0 + total_prop_delay();
  auto offset = [this, sigma](std::size_t bit_index, Picoseconds) {
    // The edge launching bit k is timed by the path that sources bit k.
    double dt = skew_for_bit(bit_index).ps();
    if (sigma > 0.0) {
      dt += rng_.gaussian(0.0, sigma);
    }
    return Picoseconds{dt};
  };
  if (faults_.any()) {
    return sig::EdgeStream::from_bits(faulted_bits(bits), rate.unit_interval(),
                                      start, offset);
  }
  return sig::EdgeStream::from_bits(bits, rate.unit_interval(), start, offset);
}

std::vector<BitVector> SerializerTree::distribute(const BitVector& serial) const {
  const std::size_t lanes = total_lanes();
  MGT_CHECK(serial.size() % lanes == 0,
            "serial length must divide into the lane count");
  return serial.deinterleave(lanes);
}

SerializerTree::Config SerializerTree::testbed_8to1() {
  Config config;
  config.stages = {MuxStage{.fan_in = 8,
                            .skew_pp = Picoseconds{30.0},
                            .rj_sigma = Picoseconds{1.6},
                            .prop_delay = Picoseconds{220.0}}};
  config.clock_rj_sigma = Picoseconds{1.2};
  return config;
}

SerializerTree::Config SerializerTree::minitester_16to1() {
  Config config;
  // Final 2:1 stage (fastest part, tightest skew), then the two 8:1 stages.
  config.stages = {MuxStage{.fan_in = 2,
                            .skew_pp = Picoseconds{14.0},
                            .rj_sigma = Picoseconds{1.4},
                            .prop_delay = Picoseconds{180.0}},
                   MuxStage{.fan_in = 8,
                            .skew_pp = Picoseconds{22.0},
                            .rj_sigma = Picoseconds{1.2},
                            .prop_delay = Picoseconds{220.0}}};
  config.clock_rj_sigma = Picoseconds{1.2};
  return config;
}

MuxStage SerializerTree::stage_for_fan_in(std::size_t fan_in,
                                          double skew_scale) {
  MGT_CHECK(fan_in >= 2 && fan_in <= kMaxFanIn,
            "mux part fan-in must be in [2, 64]");
  MGT_CHECK(skew_scale >= 0.0, "skew scale must be non-negative");
  // Linearized part family anchored on the 2005 data points: the 2:1 final
  // stage (14 ps skew, 180 ps prop) and the 8:1 stages (22 ps, 220 ps).
  // Wider parts pay more input routing skew and propagation delay; their
  // per-stage RJ shrinks slightly because fewer cascaded retimers follow.
  const double n = static_cast<double>(fan_in);
  return MuxStage{
      .fan_in = fan_in,
      .skew_pp = Picoseconds{(10.0 + 1.5 * n) * skew_scale},
      .rj_sigma = Picoseconds{1.0 + 1.0 / std::sqrt(n)},
      .prop_delay = Picoseconds{150.0 + 10.0 * n},
  };
}

SerializerTree::Config SerializerTree::from_fan_ins(
    const std::vector<std::size_t>& fan_ins, double skew_scale) {
  MGT_CHECK(!fan_ins.empty(), "serializer needs at least one stage");
  MGT_CHECK(fan_ins.size() <= kMaxStages,
            "serializer tree too deep (max 6 stages)");
  Config config;
  std::size_t lanes = 1;
  for (const std::size_t fan_in : fan_ins) {
    config.stages.push_back(stage_for_fan_in(fan_in, skew_scale));
    lanes *= fan_in;
    MGT_CHECK(lanes <= kMaxLanes, "serializer tree exceeds the lane ceiling");
  }
  config.clock_rj_sigma = Picoseconds{1.2};
  return config;
}

SerializerTree::Config SerializerTree::serializer_16to1(double skew_scale) {
  return from_fan_ins({16}, skew_scale);
}

SerializerTree::Config SerializerTree::extension_32lane(double skew_scale) {
  Config config;
  config.stages = {MuxStage{.fan_in = 4,
                            .skew_pp = Picoseconds{12.0 * skew_scale},
                            .rj_sigma = Picoseconds{1.4},
                            .prop_delay = Picoseconds{160.0}},
                   MuxStage{.fan_in = 8,
                            .skew_pp = Picoseconds{22.0 * skew_scale},
                            .rj_sigma = Picoseconds{1.2},
                            .prop_delay = Picoseconds{220.0}}};
  config.clock_rj_sigma = Picoseconds{1.0};
  return config;
}

}  // namespace mgt::pecl
