// High-speed PECL sampling circuit (the mini-tester's capture path,
// Fig 15 "Data Capture" + "Clock Delay"). A strobe derived from the RF
// clock through a programmable delay samples the returned waveform with
// 10 ps placement resolution; the latch has a finite aperture (setup/hold)
// window within which capture is metastable.
#pragma once

#include <vector>

#include "signal/edge.hpp"
#include "signal/filter.hpp"
#include "signal/levels.hpp"
#include "signal/sinks.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace mgt::pecl {

class PeclSampler {
public:
  struct Config {
    Millivolts threshold{2000.0};
    Picoseconds strobe_rj_sigma{1.5};
    Picoseconds aperture{8.0};
    /// Render step used when digitizing the waveform under test.
    Picoseconds sample_step{0.5};
  };

  PeclSampler(Config config, Rng rng) : config_(config), rng_(rng) {}

  [[nodiscard]] const Config& config() const { return config_; }
  void set_threshold(Millivolts threshold) { config_.threshold = threshold; }

  /// Uniform strobe schedule: first strobe at `first`, then every `period`.
  static std::vector<Picoseconds> strobe_schedule(Picoseconds first,
                                                  Picoseconds period,
                                                  std::size_t count);

  /// Result of one capture run.
  struct Capture {
    BitVector bits;
    std::vector<Millivolts> analog;
  };

  /// Renders `stream` (levels + bandwidth chain) and captures it at the
  /// given strobes. The render window automatically pads around the
  /// strobes so the filter is settled.
  Capture capture(const sig::EdgeStream& stream,
                  const sig::FilterChain& chain,
                  const sig::PeclLevels& levels,
                  const std::vector<Picoseconds>& strobes);

private:
  Config config_;
  Rng rng_;
};

}  // namespace mgt::pecl
