// Clock fanout buffers, frequency dividers and the XOR gate.
//
// The PECL section distributes the RF clock to muxes, delay lines and the
// DUT (Fig 15 "Clock Fanout"). Each fanout output adds a fixed skew and a
// small additive random jitter; dividers derive the lane-rate clocks; the
// XOR gate implements edge combining and clock doubling.
#pragma once

#include <vector>

#include "signal/edge.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace mgt::pecl {

/// 1:N clock fanout buffer.
class ClockFanout {
public:
  struct Config {
    std::size_t outputs = 4;
    Picoseconds prop_delay{120.0};   // PECL buffer propagation delay
    Picoseconds skew_pp{8.0};        // output-to-output skew, peak-to-peak
    Picoseconds rj_sigma{0.4};       // additive jitter per output
  };

  /// Output skews are drawn once at construction (they are a property of
  /// the physical part, not of the signal).
  ClockFanout(Config config, Rng rng);

  [[nodiscard]] std::size_t outputs() const { return config_.outputs; }
  [[nodiscard]] Picoseconds skew_of(std::size_t output) const;

  /// Produces output `output` for the given input clock/signal.
  sig::EdgeStream drive(const sig::EdgeStream& input, std::size_t output);

private:
  Config config_;
  Rng rng_;
  std::vector<Picoseconds> skews_;
};

/// Synchronous divide-by-N: output toggles at every Nth rising edge of the
/// input, producing a divided clock with 50% duty (for even division of a
/// 50% clock).
sig::EdgeStream divide_clock(const sig::EdgeStream& clock, std::size_t divisor);

/// PECL XOR gate with propagation delay and additive jitter. Classic use:
/// doubling a clock by XOR with a quarter-period-delayed copy of itself.
class XorGate {
public:
  struct Config {
    Picoseconds prop_delay{150.0};
    Picoseconds rj_sigma{0.5};
  };

  XorGate(Config config, Rng rng) : config_(config), rng_(rng) {}

  sig::EdgeStream combine(const sig::EdgeStream& a, const sig::EdgeStream& b);

  /// Frequency-doubles `clock` via XOR with a copy delayed by a quarter
  /// period.
  sig::EdgeStream double_clock(const sig::EdgeStream& clock,
                               Picoseconds quarter_period);

private:
  Config config_;
  Rng rng_;
};

}  // namespace mgt::pecl
