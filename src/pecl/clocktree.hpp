// Clock distribution trees.
//
// The boards distribute one RF clock to many loads (mux stages, delay
// lines, the DUT, the sampler strobes — Figs 1 and 15). Every fanout
// buffer in the path adds propagation delay, a fixed output skew, and a
// little random jitter; a distribution tree therefore trades fanout per
// buffer against accumulated depth. This model builds the whole tree from
// physical per-buffer parameters and exposes the per-load timing.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fault/fault.hpp"
#include "pecl/fanout.hpp"
#include "signal/edge.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace mgt::pecl {

class ClockTree {
public:
  struct Config {
    std::size_t loads = 16;
    std::size_t fanout_per_buffer = 4;
    ClockFanout::Config buffer{};  // per-buffer electrical parameters
  };

  /// Builds the tree; every buffer instance draws its own skews.
  ClockTree(Config config, Rng rng);

  [[nodiscard]] std::size_t loads() const { return config_.loads; }
  /// Buffer stages between the root input and any load.
  [[nodiscard]] std::size_t depth() const { return depth_; }
  /// Total number of buffer parts the tree uses (board cost).
  [[nodiscard]] std::size_t buffer_count() const { return buffers_.size(); }

  /// Deterministic skew of one load relative to the tree input
  /// (propagation delay excluded; it is common mode).
  [[nodiscard]] Picoseconds load_skew(std::size_t load) const;

  /// Peak-to-peak spread of load skews (the tree's clock-skew budget).
  [[nodiscard]] Picoseconds skew_spread_pp() const;

  /// RJ sigma accumulated along any root-to-load path (buffers RSS).
  [[nodiscard]] Picoseconds path_rj_sigma() const;

  /// Attaches this tree's fault slice (kind kClockGlitch; index = load,
  /// tick = edge index). A glitched load's edges are displaced late by
  /// severity * half the inter-edge spacing of the driven clock.
  void set_faults(fault::ComponentFaults faults);
  [[nodiscard]] const fault::ComponentFaults& faults() const { return faults_; }

  /// Drives the input clock to the given load through the buffer chain
  /// (applies delays, skews and per-edge jitter of every stage).
  sig::EdgeStream drive(const sig::EdgeStream& input, std::size_t load);

private:
  /// Buffer at (level, index); level 0 is the root.
  [[nodiscard]] ClockFanout& buffer_at(std::size_t level, std::size_t index);
  /// Path of (level, buffer index, output port) triples for a load.
  struct Hop {
    std::size_t level;
    std::size_t index;
    std::size_t port;
  };
  [[nodiscard]] std::vector<Hop> path_of(std::size_t load) const;

  Config config_;
  std::size_t depth_ = 1;
  fault::ComponentFaults faults_;
  std::map<std::pair<std::size_t, std::size_t>, ClockFanout> buffers_;
};

}  // namespace mgt::pecl
