#include "pecl/buffer.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mgt::pecl {

OutputBuffer::OutputBuffer(Config config, Rng rng)
    : config_(config), rng_(rng) {
  MGT_CHECK(config_.rise_2080.ps() > 0.0);
  MGT_CHECK(config_.pole_count >= 1);
  MGT_CHECK(config_.dac_step.mv() > 0.0);
  MGT_CHECK(config_.levels.voh > config_.levels.vol);
}

Millivolts OutputBuffer::snap(Millivolts v) const {
  MGT_CHECK(v >= config_.v_min && v <= config_.v_max,
            "level outside DAC compliance range");
  const double steps = std::round(v.mv() / config_.dac_step.mv());
  return Millivolts{steps * config_.dac_step.mv()};
}

void OutputBuffer::set_voh(Millivolts voh) {
  config_.levels = config_.levels.with_voh(snap(voh));
}

void OutputBuffer::set_vol(Millivolts vol) {
  config_.levels = config_.levels.with_vol(snap(vol));
}

void OutputBuffer::set_swing(Millivolts swing) {
  const sig::PeclLevels target = config_.levels.with_swing(swing);
  config_.levels = sig::PeclLevels{snap(target.voh), snap(target.vol)};
}

void OutputBuffer::set_midpoint(Millivolts mid) {
  const sig::PeclLevels target = config_.levels.with_midpoint(mid);
  config_.levels = sig::PeclLevels{snap(target.voh), snap(target.vol)};
}

sig::EdgeStream OutputBuffer::apply(const sig::EdgeStream& input) {
  sig::EdgeStream out(input.initial_level());
  double last = -1e300;
  for (const auto& tr : input.transitions()) {
    double t = tr.time.ps() + config_.prop_delay.ps();
    if (config_.rj_sigma.ps() > 0.0) {
      t += rng_.gaussian(0.0, config_.rj_sigma.ps());
    }
    t = std::max(t, last + 1e-3);
    out.push(Picoseconds{t}, tr.level);
    last = t;
  }
  return out;
}

void OutputBuffer::contribute(sig::FilterChain& chain) const {
  // Split the rise budget across the poles so the cascade's RSS rise time
  // equals the configured value.
  const double per_pole = config_.rise_2080.ps() /
                          std::sqrt(static_cast<double>(config_.pole_count));
  for (int i = 0; i < config_.pole_count; ++i) {
    chain.add_pole_rise_2080(Picoseconds{per_pole});
  }
}

sig::FilterChain OutputBuffer::make_chain() const {
  sig::FilterChain chain;
  contribute(chain);
  return chain;
}

Picoseconds OutputBuffer::realized_rise_2080() const {
  return make_chain().rise_2080_estimate();
}

}  // namespace mgt::pecl
