// PECL multiplexers and serializer trees.
//
// The central trick of the paper: the DLC's wide, moderate-speed outputs
// are serialized by PECL muxes into a few multi-Gbps signals. The optical
// test bed uses one 8:1 parallel-to-serial stage per channel; the mini-
// tester combines two 8:1 stages with a final 2:1 stage to reach 5 Gbps
// (Fig 15). Each stage contributes input-to-input skew (a fixed property
// of the part and its routing) and additive random jitter; the serial
// edge timing is referenced to the (jittered) RF clock.
#pragma once

#include <cstddef>
#include <vector>

#include "fault/fault.hpp"
#include "signal/edge.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace mgt::pecl {

/// One mux stage, listed from the output (fastest, final) stage inward.
struct MuxStage {
  std::size_t fan_in = 8;
  /// Input-to-input deterministic skew, peak-to-peak.
  Picoseconds skew_pp{12.0};
  /// Additive random jitter of the stage.
  Picoseconds rj_sigma{1.0};
  Picoseconds prop_delay{200.0};
};

/// A tree of mux stages serializing DLC lanes to one multi-Gbps stream.
class SerializerTree {
public:
  struct Config {
    /// Stages from the final (output) 2:1/8:1 backwards; total lane count
    /// is the product of fan-ins.
    std::vector<MuxStage> stages;
    /// RJ of the serializing clock as seen at the retiming flip-flops
    /// (RF source + fanout path).
    Picoseconds clock_rj_sigma{1.2};
  };

  /// Per-input skews are drawn once at construction.
  SerializerTree(Config config, Rng rng);

  /// Attaches this tree's fault slice (kinds kMuxStuckAt / kMuxDropout;
  /// index = lane, tick = serial bit index, kAllIndices + severity = the
  /// affected lane fraction). An empty slice leaves serialize() untouched.
  void set_faults(fault::ComponentFaults faults);
  [[nodiscard]] const fault::ComponentFaults& faults() const { return faults_; }

  /// DLC lane that sources serial bit k (final-stage input varies fastest).
  [[nodiscard]] std::size_t lane_for_bit(std::size_t k) const {
    return k % total_lanes();
  }

  [[nodiscard]] std::size_t total_lanes() const;
  [[nodiscard]] Picoseconds total_prop_delay() const;

  /// Deterministic skew seen by serial bit k (sum over stages of the skew
  /// of the input that sources bit k).
  [[nodiscard]] Picoseconds skew_for_bit(std::size_t k) const;

  /// Peak-to-peak of the per-bit skew profile (the DJ this tree adds).
  [[nodiscard]] Picoseconds skew_profile_pp() const;

  /// Combined per-edge Gaussian sigma (clock RSS'd with every stage).
  [[nodiscard]] Picoseconds total_rj_sigma() const;

  /// Serializes `bits` at `rate`: bit k occupies
  /// [t0 + k*UI, t0 + (k+1)*UI) shifted by the tree's propagation delay,
  /// with each transition perturbed by skew and RJ.
  sig::EdgeStream serialize(const BitVector& bits, GbitsPerSec rate,
                            Picoseconds t0 = Picoseconds{0});

  /// Splits a serial stream into the DLC lane streams this tree's wiring
  /// expects (inverse of the interleave the hardware performs). Lane order:
  /// final-stage input index varies fastest.
  [[nodiscard]] std::vector<BitVector> distribute(const BitVector& serial) const;

  /// Standard configurations used by the two projects.
  /// 8:1 single stage (optical test bed transmitter channel).
  static Config testbed_8to1();
  /// Two 8:1 stages + final 2:1 (mini-tester, Fig 15), reaching 5 Gbps.
  static Config minitester_16to1();

  // -- Parameterized N:1 depth builders -----------------------------------
  // The two presets above are hand-tuned to the 2005 parts; the builders
  // extend the same part family to arbitrary validated stage lists so the
  // 10G+ scenario matrix can sweep mux depth as an axis.

  /// Part characterization for one fan-in in [2, 64], scaled from the 2005
  /// family: wider muxes carry more input-to-input skew and propagation
  /// delay, faster (narrower) final stages run tighter. `skew_scale`
  /// stresses the deterministic skew (1.0 = nominal part).
  static MuxStage stage_for_fan_in(std::size_t fan_in, double skew_scale = 1.0);

  /// Validated tree from an output-first fan-in list (e.g. {4, 8} is a
  /// final 4:1 fed by 8:1 stages -> 32 lanes). Each fan-in must be in
  /// [2, 64], at most 6 stages, total lanes at most 4096.
  static Config from_fan_ins(const std::vector<std::size_t>& fan_ins,
                             double skew_scale = 1.0);

  /// Single-stage 16:1 serializer (arXiv 2401.15755, 5 Gbps class).
  static Config serializer_16to1(double skew_scale = 1.0);

  /// 4:1 + 8:1, 32 DLC lanes: the Section-1 extension tree reaching
  /// 10 Gbps at 312.5 Mbps/lane. Values match the original extension
  /// study so historical bench rows stay comparable.
  static Config extension_32lane(double skew_scale = 1.0);

private:
  /// Applies scheduled mux faults to the serial sequence: stuck lanes pin
  /// their bits, dropped-out lanes hold the previous serial value.
  [[nodiscard]] BitVector faulted_bits(const BitVector& bits) const;

  Config config_;
  Rng rng_;
  fault::ComponentFaults faults_;
  std::vector<std::vector<Picoseconds>> skews_;  // [stage][input]
};

}  // namespace mgt::pecl
