// Vernier dual-clock time-interval generation.
//
// The stepped delay lines (delayline.hpp) bottom out at the paper's 10 ps
// tap pitch. The vernier architecture (arXiv 2502.04948: "An Arbitrary
// Time Interval Generator Based on Vernier Clocks with 0.67 ps Adjustable
// Steps Implemented in FPGA") gets far below that with two PLL clocks
// detuned by a tiny period difference: starting both from a coincidence,
// the edge separation after c cycles is c * (T_main - T_vernier), so the
// *beat step* delta — not any physical tap — sets the resolution. Whole
// main-clock periods provide the coarse range, the beat interpolation the
// sub-picosecond fine placement.
//
// Error model: the coarse counts ride the main clock and are exact by
// construction; the fine interpolation carries a frequency-ratio (gain)
// error from the PLL pair plus a bounded accumulated phase walk that the
// coincidence detector re-anchors once per beat period. Code 0 is the
// coincidence itself and is the calibration reference: actual_delay(0) is
// exactly zero, matching the stepped delay line's code-0 contract.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace mgt::pecl {

/// How a programmable delay realizes its code-to-time mapping: the paper's
/// 10 ps stepped tap chain, or the dual-clock vernier interpolator.
/// Selection is pure configuration — every ProgrammableDelay call site
/// works unchanged in either mode.
enum class TimingMode {
  kStepped,
  kVernier,
};

[[nodiscard]] std::string_view to_string(TimingMode mode);

/// Strict parse of a timing-mode knob value: exactly "stepped" or
/// "vernier"; nullptr/empty mean "unset". Anything else is malformed and
/// returns nullopt. Pure, so the rejection matrix is unit-testable.
[[nodiscard]] std::optional<TimingMode> parse_timing_mode(const char* raw);

/// Process-wide default mode from the MGT_TIMING_MODE environment knob,
/// parsed once. Unset or malformed values fall back to kStepped; malformed
/// values are counted through util::note_env_rejection so a typo'd knob is
/// visible in metrics snapshots and self-test reports.
[[nodiscard]] TimingMode default_timing_mode();

/// The dual-clock interpolator behind TimingMode::kVernier.
class VernierTimebase {
public:
  struct Config {
    /// Main PLL output; its period supplies the coarse delay quanta.
    Gigahertz main_clock{1.25};
    /// Effective beat step T_main - T_vernier (0.67 ps per the source
    /// generator). Must be positive and far below the main period.
    Picoseconds step{0.67};
    /// Programmable range = step * (code_count - 1); 16384 codes at
    /// 0.67 ps cover the ~10 ns placement range of the stepped lines.
    std::size_t code_count = 16384;
    /// Relative error bound of the synthesized frequency ratio: a gain
    /// error on the beat step (the PLLs lock, but to slightly wrong N/M).
    double ratio_error = 2e-5;
    /// Scale of the phase error accumulated across one beat period before
    /// the coincidence detector re-anchors the pair.
    Picoseconds walk_sigma{0.4};
    /// Hard bound on the accumulated walk (detector realignment range).
    Picoseconds walk_bound{2.0};
  };

  /// The part's error profile is drawn once from `rng` at construction.
  VernierTimebase(Config config, Rng rng);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::size_t code_count() const { return config_.code_count; }
  [[nodiscard]] Picoseconds step() const { return config_.step; }
  /// Period of the detuned (vernier) clock, T_main - step.
  [[nodiscard]] Picoseconds vernier_period() const;
  /// Codes per beat period: how many fine steps fit one main period before
  /// the clock pair re-coincides.
  [[nodiscard]] std::size_t codes_per_beat() const;

  /// Programmed (ideal) delay for `code`, relative to code 0.
  [[nodiscard]] Picoseconds programmed_delay(std::size_t code) const;

  /// Delay the interpolator realizes for `code` (relative to code 0 —
  /// actual_delay(0) is exactly 0), including ratio and walk errors.
  [[nodiscard]] Picoseconds actual_delay(std::size_t code) const;

  /// Worst-case |actual - programmed| across all codes.
  [[nodiscard]] Picoseconds worst_case_error() const;

private:
  Config config_;
  double gain_ = 1.0;
  std::vector<double> walk_ps_;  // per-code accumulated phase error
};

}  // namespace mgt::pecl
