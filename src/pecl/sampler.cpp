#include "pecl/sampler.hpp"

#include "signal/render.hpp"
#include "util/error.hpp"

namespace mgt::pecl {

std::vector<Picoseconds> PeclSampler::strobe_schedule(Picoseconds first,
                                                      Picoseconds period,
                                                      std::size_t count) {
  MGT_CHECK(period.ps() > 0.0);
  std::vector<Picoseconds> strobes;
  strobes.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    strobes.push_back(
        Picoseconds{first.ps() + static_cast<double>(k) * period.ps()});
  }
  return strobes;
}

PeclSampler::Capture PeclSampler::capture(
    const sig::EdgeStream& stream, const sig::FilterChain& chain,
    const sig::PeclLevels& levels, const std::vector<Picoseconds>& strobes) {
  MGT_CHECK(!strobes.empty(), "capture needs at least one strobe");

  sig::StrobeSampler::Config sampler_config{
      .threshold = config_.threshold,
      .strobe_rj_sigma = config_.strobe_rj_sigma,
      .aperture = config_.aperture,
  };
  sig::StrobeSampler sampler(strobes, sampler_config, rng_.fork());

  // Pad generously: RJ can move strobes, and the chain needs settling.
  const Picoseconds pad{2000.0};
  const Picoseconds t_begin = strobes.front() - pad;
  const Picoseconds t_end = strobes.back() + pad;

  sig::RenderConfig render_config{.levels = levels,
                                  .sample_step = config_.sample_step};
  sig::render(stream, chain, render_config, t_begin, t_end, {&sampler});
  MGT_CHECK(sampler.missed() == 0, "strobes fell outside the render window");

  Capture out;
  out.bits = sampler.bits();
  out.analog = sampler.analog();
  return out;
}

}  // namespace mgt::pecl
