#include "minitester/dut.hpp"

#include "util/error.hpp"

namespace mgt::minitester {

std::uint16_t misr_signature(const BitVector& bits, std::uint16_t seed) {
  std::uint16_t state = seed;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const bool fb = ((state >> 15) & 1u) != bits.get(i);
    state = static_cast<std::uint16_t>(state << 1);
    if (fb) {
      state ^= 0x100B;  // x^16 + x^12 + x^3 + x + 1 (primitive)
    }
  }
  return state;
}

WlpDut::WlpDut(Config config)
    : config_(config),
      lead_in_(config.lead_in),
      lead_out_(config.lead_out),
      interposer_(config.interposer) {}

sig::EdgeStream WlpDut::respond(const sig::EdgeStream& stimulus) const {
  switch (config_.defect) {
    case Defect::StuckLow:
      return sig::EdgeStream{false};
    case Defect::StuckHigh:
      return sig::EdgeStream{true};
    default:
      break;
  }
  return stimulus.shifted(loopback_delay());
}

void WlpDut::contribute(sig::FilterChain& chain, Millivolts midpoint) const {
  interposer_.contribute(chain, midpoint);
  lead_in_.contribute(chain, midpoint);
  lead_out_.contribute(chain, midpoint);
  switch (config_.defect) {
    case Defect::SlowLead:
      // Cracked lead: a hefty extra pole.
      chain.add_pole_rise_2080(Picoseconds{220.0});
      break;
    case Defect::WeakDrive:
      chain.set_gain(0.35 * chain.gain(), midpoint);
      break;
    default:
      break;
  }
}

Picoseconds WlpDut::loopback_delay() const {
  return Picoseconds{config_.interposer.delay.ps() +
                     config_.lead_in.delay.ps() +
                     config_.lead_out.delay.ps() +
                     config_.internal_delay.ps()};
}

std::uint16_t WlpDut::bist_signature(const BitVector& received) const {
  switch (config_.defect) {
    case Defect::StuckLow:
      return misr_signature(BitVector(received.size(), false));
    case Defect::StuckHigh:
      return misr_signature(BitVector(received.size(), true));
    default:
      return misr_signature(received);
  }
}

}  // namespace mgt::minitester
