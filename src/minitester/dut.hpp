// Wafer-level-packaged DUT model (Section 4, Fig 12).
//
// The device under test sits behind WLP compliant leads and an interposer
// redistribution layer. The mini-tester demonstrates ~5 Gbps signal
// propagation through those lead structures: stimulus enters through one
// lead, loops through an internal buffer, and returns through another.
// The DUT also carries a BIST block (a multiple-input signature register)
// so production test can use few signals per die (Fig 13's parallel-test
// strategy). Defects are injectable to give pass/fail structure.
#pragma once

#include <cstdint>

#include "signal/channel.hpp"
#include "signal/edge.hpp"
#include "signal/filter.hpp"
#include "util/bitvec.hpp"
#include "util/units.hpp"

namespace mgt::minitester {

/// 16-bit multiple-input signature register (x^16 + x^12 + x^3 + x + 1).
/// The DUT compacts the bits it receives into this signature; the tester
/// compares against the golden value.
std::uint16_t misr_signature(const BitVector& bits,
                             std::uint16_t seed = 0xFFFF);

/// Injectable manufacturing defects.
enum class Defect {
  None,
  StuckLow,    // output lead shorted low
  StuckHigh,   // output lead shorted high
  SlowLead,    // cracked/thin compliant lead: extra bandwidth loss
  WeakDrive,   // degraded output buffer: heavy attenuation
};

class WlpDut {
public:
  struct Config {
    sig::Channel::Config lead_in = sig::Channel::compliant_lead().config();
    sig::Channel::Config lead_out = sig::Channel::compliant_lead().config();
    sig::Channel::Config interposer = sig::Channel::interposer_trace().config();
    Picoseconds internal_delay{180.0};  // on-die loopback buffer
    Defect defect = Defect::None;
  };

  explicit WlpDut(Config config);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] Defect defect() const { return config_.defect; }

  /// Edge-domain response: the loopback path's delays applied to the
  /// stimulus. Stuck faults pin the output.
  [[nodiscard]] sig::EdgeStream respond(const sig::EdgeStream& stimulus) const;

  /// Appends the round-trip analog path (interposer + both leads + defect
  /// effects) to a render chain.
  void contribute(sig::FilterChain& chain, Millivolts midpoint) const;

  /// Total nominal propagation delay of the loopback path.
  [[nodiscard]] Picoseconds loopback_delay() const;

  /// On-die BIST: the DUT samples the incoming bits at its internal
  /// flip-flops and compacts them. Stuck faults force the sampled value.
  [[nodiscard]] std::uint16_t bist_signature(const BitVector& received) const;

private:
  Config config_;
  sig::Channel lead_in_;
  sig::Channel lead_out_;
  sig::Channel interposer_;
};

}  // namespace mgt::minitester
