#include "minitester/minitester.hpp"

#include <algorithm>
#include <cmath>

#include "signal/render.hpp"
#include "util/error.hpp"

namespace mgt::minitester {

MiniTester::MiniTester(Config config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      system_(config.channel, seed ^ 0x31A17E57E5ull),
      dut_(config.dut),
      strobe_delay_(config.strobe_delay, rng_.fork()),
      sampler_(config.sampler, rng_.fork()) {
  // Default strobe: mid-UI (center of the ideal eye). Code math comes
  // from the instance's mode-aware step so vernier mode works unchanged.
  const double ui = config_.channel.rate.unit_interval().ps();
  const double step = strobe_delay_.step().ps();
  strobe_delay_.set_code(static_cast<std::size_t>(ui / 2.0 / step));
  // The strobe delay line consumes the "strobe" slice of the channel's
  // fault plan (kDelayDrift walks the sampling point across the eye).
  strobe_delay_.set_faults(config_.channel.faults.component("strobe"));
}

void MiniTester::set_strobe_code(std::size_t code) {
  strobe_delay_.set_code(code);
}

void MiniTester::program_prbs(unsigned order, std::uint64_t seed) {
  system_.program_prbs(order, seed);
}

void MiniTester::program_pattern(const BitVector& pattern) {
  system_.program_pattern(pattern);
}

void MiniTester::start() { system_.start(); }

MiniTester::Path MiniTester::through_dut(std::size_t n_bits) {
  core::Stimulus stim = system_.generate(n_bits);
  Path path;
  path.edges = dut_.respond(stim.edges);
  path.chain = stim.chain;
  const Picoseconds stimulus_group_delay = path.chain.group_delay();
  dut_.contribute(path.chain, stim.levels.midpoint());
  path.levels = stim.levels;
  // Deskew: stim.t0 already accounts for the stimulus chain's group delay;
  // add only what the DUT's leads contribute on top.
  path.t0 = stim.t0 + dut_.loopback_delay() +
            (path.chain.group_delay() - stimulus_group_delay);
  path.ui = stim.ui;
  path.bits = stim.bits;
  return path;
}

ana::BerResult MiniTester::run_loopback(std::size_t n_bits) {
  MGT_CHECK(n_bits > config_.warmup_bits + 1,
            "need more bits than the warmup consumes");
  Path path = through_dut(n_bits);

  // Strobe placement: the delay line's insertion delay is calibrated out;
  // the programmed code positions the strobe within the unit interval.
  const std::size_t n_capture = n_bits - config_.warmup_bits - 1;
  const Picoseconds first{
      path.t0.ps() + static_cast<double>(config_.warmup_bits) * path.ui.ps() +
      strobe_delay_.actual_delay(strobe_delay_.code()).ps() +
      strobe_delay_.fault_drift().ps()};
  const auto strobes =
      pecl::PeclSampler::strobe_schedule(first, path.ui, n_capture);

  const sig::PeclLevels rails = sig::attenuated(path.levels, path.chain.gain());
  sampler_.set_threshold(rails.midpoint());
  const auto capture =
      sampler_.capture(path.edges, path.chain, path.levels, strobes);

  // The capture lands in the DLC's capture memory; the controlling PC can
  // read it back over USB (last_capture_via_usb).
  system_.dlc().store_capture(capture.bits);

  // The programmed delay selects which bit each strobe lands in; alignment
  // search mirrors the pattern-sync a BERT performs.
  const BitVector expected =
      path.bits.slice(config_.warmup_bits, n_capture);
  return ana::compare_bits_aligned(capture.bits, expected, 4);
}

std::vector<ana::BathtubPoint> MiniTester::bathtub(std::size_t n_bits,
                                                   std::size_t code_step) {
  MGT_CHECK(code_step >= 1);
  const std::size_t saved_code = strobe_delay_.code();
  const double ui = config_.channel.rate.unit_interval().ps();
  const double step = strobe_delay_.step().ps();
  const auto max_code = static_cast<std::size_t>(std::ceil(ui / step));

  std::vector<ana::BathtubPoint> scan;
  for (std::size_t code = 0; code <= max_code; code += code_step) {
    strobe_delay_.set_code(code);
    const auto ber = run_loopback(n_bits);
    ana::BathtubPoint point;
    point.strobe_offset = Picoseconds{static_cast<double>(code) * step};
    point.ber = ber.ber();
    point.errors = ber.errors;
    point.bits = ber.bits_compared;
    scan.push_back(point);
  }
  strobe_delay_.set_code(saved_code);
  return scan;
}

std::size_t MiniTester::center_strobe(std::size_t n_bits) {
  const auto scan = bathtub(n_bits, 2);
  // Longest run of minimum-BER points; center the strobe within it.
  double best_ber = 1.0;
  for (const auto& p : scan) {
    best_ber = std::min(best_ber, p.ber);
  }
  std::size_t best_start = 0;
  std::size_t best_len = 0;
  std::size_t run_start = 0;
  std::size_t run_len = 0;
  for (std::size_t i = 0; i < scan.size(); ++i) {
    if (scan[i].ber <= best_ber) {
      if (run_len == 0) {
        run_start = i;
      }
      ++run_len;
      if (run_len > best_len) {
        best_len = run_len;
        best_start = run_start;
      }
    } else {
      run_len = 0;
    }
  }
  const std::size_t center_idx = best_start + best_len / 2;
  const double step = strobe_delay_.step().ps();
  const auto code = static_cast<std::size_t>(
      scan[center_idx].strobe_offset.ps() / step);
  strobe_delay_.set_code(code);
  return code;
}

MiniTester::BistResult MiniTester::run_bist(std::size_t n_bits) {
  MGT_CHECK(n_bits > config_.warmup_bits + 1,
            "need more bits than the warmup consumes");
  // The DUT's internal flip-flops sample the incoming stream at bit
  // centers; the compacted signature comes back over the low-speed test
  // bus and is compared against the golden signature of the programmed
  // pattern.
  Path path = through_dut(n_bits);
  const std::size_t n = n_bits - config_.warmup_bits - 1;
  const BitVector expected = path.bits.slice(config_.warmup_bits, n);

  const sig::PeclLevels rails = sig::attenuated(path.levels, path.chain.gain());
  sampler_.set_threshold(rails.midpoint());
  const Picoseconds first{path.t0.ps() +
                          (static_cast<double>(config_.warmup_bits) + 0.5) *
                              path.ui.ps()};
  const auto strobes = pecl::PeclSampler::strobe_schedule(first, path.ui, n);
  const BitVector received =
      sampler_.capture(path.edges, path.chain, path.levels, strobes).bits;

  BistResult out;
  out.expected = misr_signature(expected);
  out.actual = misr_signature(received);
  return out;
}

ana::EyeMetrics MiniTester::measure_loopback_eye(std::size_t n_bits) {
  Path path = through_dut(n_bits);
  MGT_CHECK(!path.edges.empty(), "cannot take an eye of a stuck output");
  const sig::PeclLevels rails = sig::attenuated(path.levels, path.chain.gain());
  const double margin = 0.25 * rails.swing().mv();
  ana::EyeDiagram::Config config{
      .ui = path.ui,
      .t_ref = path.t0,
      .v_lo = Millivolts{rails.vol.mv() - margin},
      .v_hi = Millivolts{rails.voh.mv() + margin},
      .threshold = rails.midpoint(),
  };
  ana::EyeDiagram eye(config);
  const Picoseconds t_begin{path.t0.ps() +
                            static_cast<double>(config_.warmup_bits) *
                                path.ui.ps()};
  const Picoseconds t_end{path.t0.ps() +
                          static_cast<double>(n_bits) * path.ui.ps()};
  sig::render(path.edges, path.chain, sig::RenderConfig{.levels = path.levels},
              t_begin, t_end, {&eye});
  return eye.metrics();
}

}  // namespace mgt::minitester
