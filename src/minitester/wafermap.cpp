#include "minitester/wafermap.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mgt::minitester {

WaferMap::WaferMap(Config config, Rng rng) : config_(config) {
  MGT_CHECK(config_.diameter_dies >= 4);
  const std::size_t n = config_.diameter_dies;
  defects_.assign(n, std::vector<Defect>(n, Defect::None));

  // Cluster centers (may fall anywhere on the wafer).
  struct Cluster {
    double cx, cy;
  };
  std::vector<Cluster> clusters;
  for (std::size_t c = 0; c < config_.cluster_count; ++c) {
    clusters.push_back({rng.uniform(0.0, static_cast<double>(n)),
                        rng.uniform(0.0, static_cast<double>(n))});
  }

  static const Defect kDefects[] = {Defect::StuckLow, Defect::StuckHigh,
                                    Defect::SlowLead, Defect::WeakDrive};
  for (std::size_t y = 0; y < n; ++y) {
    for (std::size_t x = 0; x < n; ++x) {
      if (!in_wafer(x, y)) {
        continue;
      }
      ++die_count_;
      double p = config_.background_defect_rate;
      for (const auto& cluster : clusters) {
        const double dx = static_cast<double>(x) + 0.5 - cluster.cx;
        const double dy = static_cast<double>(y) + 0.5 - cluster.cy;
        if (std::sqrt(dx * dx + dy * dy) <= config_.cluster_radius_dies) {
          p = std::max(p, config_.cluster_defect_rate);
        }
      }
      if (rng.chance(p)) {
        defects_[y][x] = kDefects[rng.below(std::size(kDefects))];
        ++defect_count_;
      }
    }
  }
}

bool WaferMap::in_wafer(std::size_t x, std::size_t y) const {
  const double r = static_cast<double>(config_.diameter_dies) / 2.0;
  const double dx = static_cast<double>(x) + 0.5 - r;
  const double dy = static_cast<double>(y) + 0.5 - r;
  return std::sqrt(dx * dx + dy * dy) <= r;
}

Defect WaferMap::defect_at(std::size_t x, std::size_t y) const {
  MGT_CHECK(x < config_.diameter_dies && y < config_.diameter_dies);
  return defects_[y][x];
}

std::string WaferMap::ProbeOutcome::ascii_art() const {
  std::string art;
  for (const auto& row : map) {
    for (DieResult r : row) {
      switch (r) {
        case DieResult::NotPresent:
          art.push_back(' ');
          break;
        case DieResult::Pass:
          art.push_back('.');
          break;
        case DieResult::Fail:
          art.push_back('X');
          break;
      }
    }
    art.push_back('\n');
  }
  return art;
}

}  // namespace mgt::minitester
