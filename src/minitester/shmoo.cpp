#include "minitester/shmoo.hpp"

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mgt::minitester {

double Shmoo::pass_fraction(double pass_threshold) const {
  std::size_t pass = 0;
  std::size_t total = 0;
  for (const auto& row : ber) {
    for (double b : row) {
      ++total;
      if (b <= pass_threshold) {
        ++pass;
      }
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(pass) / static_cast<double>(total);
}

std::string Shmoo::ascii_art(double pass_threshold) const {
  std::string art;
  for (auto row = ber.rbegin(); row != ber.rend(); ++row) {
    for (double b : *row) {
      if (b <= pass_threshold) {
        art.push_back('.');
      } else if (b <= 10.0 * pass_threshold) {
        art.push_back('x');
      } else {
        art.push_back('#');
      }
    }
    art.push_back('\n');
  }
  return art;
}

Shmoo run_shmoo(std::string x_label, std::vector<double> xs,
                std::string y_label, std::vector<double> ys,
                const std::function<double(double, double)>& measure) {
  MGT_CHECK(!xs.empty() && !ys.empty(), "shmoo axes must be non-empty");
  MGT_CHECK(static_cast<bool>(measure));
  Shmoo out;
  out.x_label = std::move(x_label);
  out.y_label = std::move(y_label);
  out.xs = std::move(xs);
  out.ys = std::move(ys);
  // Every grid point is an independent task writing its own cell, so the
  // sweep parallelizes with results identical at every thread count
  // (measure() must be a pure function of (x, y) — see the header).
  const std::size_t nx = out.xs.size();
  const std::size_t ny = out.ys.size();
  out.ber.assign(ny, std::vector<double>(nx, 0.0));
  util::parallel_for(nx * ny, [&](std::size_t i) {
    const std::size_t yi = i / nx;
    const std::size_t xi = i % nx;
    out.ber[yi][xi] = measure(out.xs[xi], out.ys[yi]);
  });
  return out;
}

}  // namespace mgt::minitester
