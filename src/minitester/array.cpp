#include "minitester/array.hpp"

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace mgt::minitester {

TesterArray::TesterArray(Config config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  MGT_CHECK(config_.testers >= 1);
  MGT_CHECK(config_.defect_rate >= 0.0 && config_.defect_rate <= 1.0);
}

double TesterArray::wafer_time_s(std::size_t n_dies, std::size_t n_testers,
                                 double touchdown_overhead_s,
                                 double per_die_test_s) {
  MGT_CHECK(n_testers >= 1);
  const std::size_t touchdowns = (n_dies + n_testers - 1) / n_testers;
  // Sites within a touchdown run in parallel, so a touchdown costs one
  // die-test time plus the mechanical overhead.
  return static_cast<double>(touchdowns) *
         (touchdown_overhead_s + per_die_test_s);
}

TesterArray::WaferResult TesterArray::probe_wafer(std::size_t n_dies) {
  const obs::ProfileScope profile("minitester.probe_wafer");
  WaferResult out;
  out.dies = n_dies;
  out.touchdowns = (n_dies + config_.testers - 1) / config_.testers;
  out.total_time_s =
      wafer_time_s(n_dies, config_.testers, config_.touchdown_overhead_s,
                   config_.per_die_test_s);

  static const Defect kDefects[] = {Defect::StuckLow, Defect::StuckHigh,
                                    Defect::SlowLead, Defect::WeakDrive};

  // Every die site is an independent task with its own Rng stream derived
  // from (seed, die): defect injection and the full signal-level BIST run
  // never touch shared state, so the sites execute concurrently — exactly
  // the array-of-testers parallelism of Fig 13 — with results identical at
  // every thread count.
  struct DieOutcome {
    bool fail = false;
    bool escape = false;
    bool overkill = false;
    bool masked = false;
  };
  const fault::ComponentFaults array_faults =
      config_.faults.component("array");
  std::vector<DieOutcome> outcomes(n_dies);
  util::parallel_for(n_dies, [&](std::size_t die) {
    // Dead-pin masking: a die lands on site (die % testers) during
    // touchdown (die / testers); when that site's pin or probe contact is
    // faulted, the die is skipped — the array keeps probing the rest —
    // and flagged for retest. Decided purely from (plan, site, touchdown),
    // so masking is identical at every thread count.
    if (array_faults.any()) {
      const std::size_t site_index = die % config_.testers;
      const std::uint64_t touchdown = die / config_.testers;
      if (array_faults.active(fault::FaultKind::kDeadPin, touchdown,
                              site_index) ||
          array_faults.active(fault::FaultKind::kProbeContactLoss, touchdown,
                              site_index)) {
        outcomes[die] = DieOutcome{.masked = true};
        return;
      }
    }
    Rng rng = util::task_rng(seed_, die);
    const bool defective = rng.chance(config_.defect_rate);
    MiniTester::Config site = config_.site;
    site.dut.defect =
        defective ? kDefects[rng.below(std::size(kDefects))] : Defect::None;

    MiniTester tester(site, rng.next());
    tester.program_prbs(7, 0xACE1F00Dull + die);
    tester.start();
    const bool pass = tester.run_bist(config_.bist_bits).pass();

    outcomes[die] = DieOutcome{.fail = !pass,
                               .escape = defective && pass,
                               .overkill = !defective && !pass};
  });
  // Fixed-order reduction (die order) into the wafer totals.
  for (const DieOutcome& o : outcomes) {
    out.fails += o.fail ? 1 : 0;
    out.escapes += o.escape ? 1 : 0;
    out.overkills += o.overkill ? 1 : 0;
    out.masked += o.masked ? 1 : 0;
  }
  // Serial epilogue: totals come from the ordered reduction, so every value
  // is identical at any worker count. The span covers the wafer in its
  // natural tick domain — touchdown count accumulated across wafers.
  obs::record_span("minitester.wafer", touchdowns_done_,
                   touchdowns_done_ + out.touchdowns);
  touchdowns_done_ += out.touchdowns;
  obs::add_counter("minitester.wafers");
  obs::add_counter("minitester.dies", out.dies);
  obs::add_counter("minitester.fails", out.fails);
  obs::add_counter("minitester.escapes", out.escapes);
  obs::add_counter("minitester.overkills", out.overkills);
  obs::add_counter("minitester.masked", out.masked);
  return out;
}

}  // namespace mgt::minitester
