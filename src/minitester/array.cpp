#include "minitester/array.hpp"

#include "util/error.hpp"

namespace mgt::minitester {

TesterArray::TesterArray(Config config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  MGT_CHECK(config_.testers >= 1);
  MGT_CHECK(config_.defect_rate >= 0.0 && config_.defect_rate <= 1.0);
}

double TesterArray::wafer_time_s(std::size_t n_dies, std::size_t n_testers,
                                 double touchdown_overhead_s,
                                 double per_die_test_s) {
  MGT_CHECK(n_testers >= 1);
  const std::size_t touchdowns = (n_dies + n_testers - 1) / n_testers;
  // Sites within a touchdown run in parallel, so a touchdown costs one
  // die-test time plus the mechanical overhead.
  return static_cast<double>(touchdowns) *
         (touchdown_overhead_s + per_die_test_s);
}

TesterArray::WaferResult TesterArray::probe_wafer(std::size_t n_dies) {
  WaferResult out;
  out.dies = n_dies;
  out.touchdowns = (n_dies + config_.testers - 1) / config_.testers;
  out.total_time_s =
      wafer_time_s(n_dies, config_.testers, config_.touchdown_overhead_s,
                   config_.per_die_test_s);

  static const Defect kDefects[] = {Defect::StuckLow, Defect::StuckHigh,
                                    Defect::SlowLead, Defect::WeakDrive};

  for (std::size_t die = 0; die < n_dies; ++die) {
    const bool defective = rng_.chance(config_.defect_rate);
    MiniTester::Config site = config_.site;
    site.dut.defect =
        defective ? kDefects[rng_.below(std::size(kDefects))] : Defect::None;

    MiniTester tester(site, rng_.next());
    tester.program_prbs(7, 0xACE1F00Dull + die);
    tester.start();
    const bool pass = tester.run_bist(config_.bist_bits).pass();

    if (!pass) {
      ++out.fails;
    }
    if (defective && pass) {
      ++out.escapes;
    }
    if (!defective && !pass) {
      ++out.overkills;
    }
  }
  return out;
}

}  // namespace mgt::minitester
