// Wafer maps with spatially clustered defects.
//
// The Fig 13 parallel-probing flow ultimately produces a wafer map. Real
// defects cluster (edge rings, scratches, particles), which changes how a
// stepped array covers them; this model seeds both a uniform background
// defect rate and circular clusters, probes the map with an N-site array,
// and reports yield plus an ASCII rendering.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "minitester/dut.hpp"
#include "util/rng.hpp"

namespace mgt::minitester {

class WaferMap {
public:
  struct Config {
    std::size_t diameter_dies = 20;   // dies across the wafer
    double background_defect_rate = 0.02;
    std::size_t cluster_count = 2;
    double cluster_radius_dies = 2.5;
    double cluster_defect_rate = 0.75;
  };

  /// Seeds the defect map deterministically from `rng`.
  WaferMap(Config config, Rng rng);

  /// Die present at (x, y)? (circular wafer outline)
  [[nodiscard]] bool in_wafer(std::size_t x, std::size_t y) const;
  [[nodiscard]] std::size_t die_count() const { return die_count_; }
  [[nodiscard]] std::size_t defect_count() const { return defect_count_; }

  /// Defect of the die at (x, y); Defect::None when healthy.
  [[nodiscard]] Defect defect_at(std::size_t x, std::size_t y) const;

  /// Probe result per die.
  enum class DieResult : std::uint8_t { NotPresent, Pass, Fail };

  struct ProbeOutcome {
    std::vector<std::vector<DieResult>> map;  // [y][x]
    std::size_t tested = 0;
    std::size_t fails = 0;
    std::size_t touchdowns = 0;
    double yield = 0.0;

    /// '.' pass, 'X' fail, ' ' outside the wafer.
    [[nodiscard]] std::string ascii_art() const;
  };

  /// Probes every die with `array_sites` dies per touchdown, running the
  /// given per-die test (returns pass/fail given the die's defect).
  template <typename TestFn>
  ProbeOutcome probe(std::size_t array_sites, TestFn&& test_die) const {
    ProbeOutcome out;
    out.map.assign(config_.diameter_dies,
                   std::vector<DieResult>(config_.diameter_dies,
                                          DieResult::NotPresent));
    std::size_t in_touchdown = 0;
    for (std::size_t y = 0; y < config_.diameter_dies; ++y) {
      for (std::size_t x = 0; x < config_.diameter_dies; ++x) {
        if (!in_wafer(x, y)) {
          continue;
        }
        if (in_touchdown == 0) {
          ++out.touchdowns;
        }
        in_touchdown = (in_touchdown + 1) % array_sites;
        const bool pass = test_die(defect_at(x, y));
        out.map[y][x] = pass ? DieResult::Pass : DieResult::Fail;
        ++out.tested;
        out.fails += pass ? 0 : 1;
      }
    }
    out.yield = out.tested == 0
                    ? 0.0
                    : 1.0 - static_cast<double>(out.fails) /
                                static_cast<double>(out.tested);
    return out;
  }

  [[nodiscard]] const Config& config() const { return config_; }

private:
  Config config_;
  std::vector<std::vector<Defect>> defects_;  // [y][x]
  std::size_t die_count_ = 0;
  std::size_t defect_count_ = 0;
};

}  // namespace mgt::minitester
