// Shmoo plots: 2D pass/fail characterization maps.
//
// Production bring-up of a tester like this sweeps two parameters (strobe
// position vs data rate, strobe vs amplitude, ...) and records BER at each
// grid point; the "shmoo" shape shows the operating region.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace mgt::minitester {

/// A 2D sweep result: ber[yi][xi] for ys.size() rows of xs.size() columns.
struct Shmoo {
  std::string x_label;
  std::string y_label;
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<std::vector<double>> ber;

  /// Fraction of grid points at or below `pass_threshold`.
  [[nodiscard]] double pass_fraction(double pass_threshold) const;

  /// ASCII rendering: '.' pass, 'x' marginal (< 10x threshold), '#' fail.
  [[nodiscard]] std::string ascii_art(double pass_threshold) const;
};

/// Runs a generic shmoo: `measure(x, y)` returns the BER at that point.
/// Grid points are independent tasks executed via util::parallel_for, so
/// `measure` must be a pure, thread-safe function of (x, y): build a fresh
/// tester (seeded from x/y or a constant) inside the lambda rather than
/// capturing one by reference.
Shmoo run_shmoo(std::string x_label, std::vector<double> xs,
                std::string y_label, std::vector<double> ys,
                const std::function<double(double x, double y)>& measure);

}  // namespace mgt::minitester
