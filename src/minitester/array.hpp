// Parallel wafer probing with arrays of mini-testers (Fig 13).
//
// When WLP compliant leads exist on every die site, the mini-tester is
// replicated so a single touchdown tests many dies at once. Because each
// tester needs only power, clock and USB, the probe-card complexity stays
// manageable and functional test throughput rises by roughly the array
// size ("an order of magnitude", Section 4).
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "minitester/minitester.hpp"

namespace mgt::minitester {

class TesterArray {
public:
  struct Config {
    std::size_t testers = 16;            // array size (sites per touchdown)
    MiniTester::Config site{};           // per-site tester configuration
    double defect_rate = 0.05;           // fraction of defective dies
    std::size_t bist_bits = 320;         // BIST pattern length per die
    /// Mechanical/thermal time per touchdown (stepping the chuck).
    double touchdown_overhead_s = 1.5;
    /// Electrical test time per die (dominated by the BIST run).
    double per_die_test_s = 0.8;
    /// Scheduled faults; the array consumes the "array" slice (kinds
    /// kDeadPin / kProbeContactLoss; index = site, tick = touchdown).
    /// A faulted site is masked — skipped but still stepped over — so
    /// the wafer completes with those dies flagged for retest.
    fault::FaultPlan faults{};
  };

  TesterArray(Config config, std::uint64_t seed);

  /// Result of probing a whole wafer.
  struct WaferResult {
    std::size_t dies = 0;
    std::size_t touchdowns = 0;
    std::size_t fails = 0;
    std::size_t escapes = 0;       // defective dies the test passed
    std::size_t overkills = 0;     // good dies the test failed
    /// Dies skipped because their site's pin/probe contact was faulted;
    /// they are untested (not fails) and flagged for retest.
    std::size_t masked = 0;
    double total_time_s = 0.0;

    [[nodiscard]] double dies_per_hour() const {
      return total_time_s == 0.0 ? 0.0
                                 : 3600.0 * static_cast<double>(dies) /
                                       total_time_s;
    }
  };

  /// Probes `n_dies`, injecting defects at the configured rate, running
  /// the BIST flow on every die through the signal-level simulation. Dies
  /// are independent tasks (per-die Rng streams derived from the array
  /// seed) executed via util::parallel_for; results are identical at every
  /// MGT_THREADS setting.
  WaferResult probe_wafer(std::size_t n_dies);

  /// Pure throughput model (no signal simulation): wall time to probe
  /// `n_dies` with `n_testers` sites per touchdown.
  static double wafer_time_s(std::size_t n_dies, std::size_t n_testers,
                             double touchdown_overhead_s,
                             double per_die_test_s);

  [[nodiscard]] const Config& config() const { return config_; }

private:
  Config config_;
  std::uint64_t seed_;
  /// Cumulative touchdown count across probe_wafer calls: the tick domain
  /// for the "minitester.wafer" trace spans.
  std::uint64_t touchdowns_done_ = 0;
};

}  // namespace mgt::minitester
