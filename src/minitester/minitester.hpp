// The self-contained miniature tester (Section 4, Figs 14-15).
//
// Sits on the probe card; needs only DC power, one RF clock, and USB. The
// stimulus side is a full TestSystem (DLC + 2x8:1 + 2:1 PECL mux tree +
// output buffer, up to 5 Gbps with 10 ps edge placement); the capture side
// is a PECL sampling flip-flop strobed through a programmable delay line
// with 10 ps resolution. Loopback and BIST tests run against a WLP DUT
// model behind compliant-lead channels.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/ber.hpp"
#include "analysis/eye.hpp"
#include "core/presets.hpp"
#include "core/test_system.hpp"
#include "minitester/dut.hpp"
#include "pecl/delayline.hpp"
#include "pecl/sampler.hpp"

namespace mgt::minitester {

class MiniTester {
public:
  struct Config {
    core::ChannelConfig channel = core::presets::minitester();
    pecl::PeclSampler::Config sampler{};
    /// Follows the MGT_TIMING_MODE knob by default (stepped or vernier).
    pecl::ProgrammableDelay::Config strobe_delay =
        core::presets::strobe_delay();
    WlpDut::Config dut{};
    /// Bits skipped at the head of each capture (chain settling).
    std::size_t warmup_bits = 16;
  };

  MiniTester(Config config, std::uint64_t seed);

  [[nodiscard]] core::TestSystem& system() { return system_; }
  [[nodiscard]] WlpDut& dut() { return dut_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Programs the capture strobe delay (strobe_delay().step() per code:
  /// 10 ps stepped, sub-ps in vernier mode).
  void set_strobe_code(std::size_t code);
  [[nodiscard]] std::size_t strobe_code() const { return strobe_delay_.code(); }
  [[nodiscard]] const pecl::ProgrammableDelay& strobe_delay() const {
    return strobe_delay_;
  }

  /// Programs the stimulus source (PRBS through the DLC over USB).
  void program_prbs(unsigned order, std::uint64_t seed);
  void program_pattern(const BitVector& pattern);
  void start();

  /// Loopback BER test: stimulus -> DUT -> capture at the current strobe
  /// code -> compare against the expected pattern. The raw capture is
  /// deposited in the DLC capture memory.
  ana::BerResult run_loopback(std::size_t n_bits);

  /// Reads the last loopback capture back through the USB register
  /// protocol, exactly as the controlling PC does.
  BitVector last_capture_via_usb() { return dig::read_capture(system_.usb()); }

  /// Bathtub scan: sweeps the strobe across (just over) one UI in
  /// `code_step` delay codes and records BER at each position.
  std::vector<ana::BathtubPoint> bathtub(std::size_t n_bits,
                                         std::size_t code_step = 2);

  /// Places the strobe at the center of the eye (best position found by a
  /// quick scan); returns the chosen code.
  std::size_t center_strobe(std::size_t n_bits = 640);

  /// BIST production test: the DUT compacts what it receives; the tester
  /// compares the signature against the golden value.
  struct BistResult {
    std::uint16_t expected = 0;
    std::uint16_t actual = 0;
    [[nodiscard]] bool pass() const { return expected == actual; }
  };
  BistResult run_bist(std::size_t n_bits);

  /// Eye of the DUT's returned signal as the sampler sees it
  /// (Figs 16/17/19 are measured at this plane for the mini-tester).
  ana::EyeMetrics measure_loopback_eye(std::size_t n_bits);

private:
  /// Stimulus + DUT response and the full analog chain at the sampler.
  struct Path {
    sig::EdgeStream edges;
    sig::FilterChain chain;
    sig::PeclLevels levels;
    Picoseconds t0{0.0};  // bit-boundary grid origin at the sampler
    Picoseconds ui{200.0};
    BitVector bits;
  };
  Path through_dut(std::size_t n_bits);

  Config config_;
  Rng rng_;
  core::TestSystem system_;
  WlpDut dut_;
  pecl::ProgrammableDelay strobe_delay_;
  pecl::PeclSampler sampler_;
};

}  // namespace mgt::minitester
