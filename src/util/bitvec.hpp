// Compact bit sequence container used for test patterns, captured data, and
// serializer inputs throughout the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mgt {

class Rng;

/// Dynamically sized bit vector, LSB-first within each stored word.
/// Bit index 0 is the first bit transmitted/stored.
class BitVector {
public:
  BitVector() = default;

  /// n bits, all initialized to `fill`.
  explicit BitVector(std::size_t n, bool fill = false);

  /// Parses a string of '0'/'1' characters; other characters (spaces,
  /// underscores) are ignored as visual separators.
  static BitVector from_string(std::string_view bits);

  /// n uniformly random bits drawn from `rng`.
  static BitVector random(std::size_t n, Rng& rng);

  /// Alternating 0101... clock-like pattern of n bits starting with `first`.
  static BitVector alternating(std::size_t n, bool first = false);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  [[nodiscard]] bool operator[](std::size_t i) const { return get(i); }

  void push_back(bool bit);
  void append(const BitVector& other);
  void clear();

  /// Number of positions where this and `other` differ; both must be the
  /// same length.
  [[nodiscard]] std::size_t hamming_distance(const BitVector& other) const;

  /// Number of 1 bits.
  [[nodiscard]] std::size_t popcount() const;

  /// Number of bit transitions between adjacent positions (NRZ edges).
  [[nodiscard]] std::size_t transition_count() const;

  /// Longest run of identical consecutive bits.
  [[nodiscard]] std::size_t longest_run() const;

  /// Sub-vector [begin, begin+len).
  [[nodiscard]] BitVector slice(std::size_t begin, std::size_t len) const;

  /// Interleaves k same-length vectors bit by bit: result is
  /// a0 b0 c0 ... a1 b1 c1 ... (the operation an ideal k:1 mux performs).
  static BitVector interleave(const std::vector<BitVector>& lanes);

  /// Inverse of interleave: splits into k lanes. size() must be divisible
  /// by k.
  [[nodiscard]] std::vector<BitVector> deinterleave(std::size_t k) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const BitVector& a, const BitVector& b) = default;

private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace mgt
