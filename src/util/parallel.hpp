// Deterministic parallel execution layer.
//
// Every pipeline in this library is a metrology simulation: the numbers it
// produces are compared against paper-calibrated golden values, so results
// must be bit-identical no matter how many threads run them. The rules that
// make that possible:
//
//  1. Task decomposition depends only on the problem (chunk sizes, site
//     counts, grid shapes), never on the worker count.
//  2. Each task draws randomness only from its own Rng stream, derived as
//     splitmix64(seed, task_index) via task_rng() — never from a shared
//     generator whose consumption order would depend on scheduling.
//  3. Reductions merge per-task results in task-index order (ordered
//     reduction); no atomics, no "first finished wins".
//
// Under these rules, MGT_THREADS=0 (serial in-caller fallback), 1, 2 and 8
// threads all produce byte-identical stimulus, histograms and metrics —
// tests/test_parallel.cpp enforces exactly that.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "util/rng.hpp"

namespace mgt::util {

/// Stateless splitmix64 mix of (seed, task_index): the canonical way to give
/// task k of a run seeded with s its own decorrelated 64-bit seed.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t task_index);

/// Independent per-task Rng stream for task `task_index` of a run seeded
/// with `seed`. Two distinct (seed, index) pairs yield decorrelated streams.
Rng task_rng(std::uint64_t seed, std::uint64_t task_index);

/// Strict parse of an MGT_THREADS-style worker-count string. Returns the
/// count (nullptr/empty mean "unset" and parse as 0), or nullopt for a
/// malformed or out-of-range value: trailing garbage ("8x"), negatives,
/// and magnitudes strtol can only saturate ("999...9" -> LONG_MAX) are all
/// rejections, never silent truncations. Pure; exposed for the test matrix.
std::optional<std::size_t> parse_thread_count(const char* raw);

/// How many times the MGT_THREADS environment value was rejected by
/// parse_thread_count and replaced with the serial fallback. Bridged into
/// the obs registry as counter "mgt.threads.rejected" so misconfiguration
/// is visible in metrics snapshots and self_test reports.
std::uint64_t thread_env_rejections();

/// Worker count this process would use for parallel sections:
///   - set_thread_override(n) wins if called (tests, benches),
///   - else the MGT_THREADS environment variable (parsed once),
///   - else 0.
/// 0 means "serial fallback": parallel_for runs tasks inline on the caller.
std::size_t thread_count();

/// Overrides the worker count (0 = serial fallback). Takes effect on the
/// next parallel_for. Intended for tests/benches; not thread safe against
/// concurrent parallel_for calls.
void set_thread_override(std::size_t n);

/// Removes the override, returning to the MGT_THREADS environment value.
void clear_thread_override();

/// RAII worker-count override for tests and benches.
class ScopedThreads {
 public:
  explicit ScopedThreads(std::size_t n);
  ~ScopedThreads();
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  std::size_t previous_;
  bool had_previous_;
};

/// Fixed-size pool of workers executing index ranges with static chunk
/// assignment: worker w of W always gets tasks [w*n/W, (w+1)*n/W). The
/// assignment is deterministic, but correctness must never rely on it —
/// tasks have to be independent.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t workers() const;

  /// Runs task(i) for every i in [0, n) across the workers; blocks until
  /// all complete. The first exception thrown by any task is rethrown on
  /// the caller after the batch finishes.
  void run(std::size_t n, const std::function<void(std::size_t)>& task);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Executes task(i) for i in [0, n). With thread_count() == 0 (or n < 2)
/// the tasks run inline on the caller in index order; otherwise they run on
/// a shared ThreadPool with static chunk assignment. Tasks must be
/// independent and must not share mutable state; any result whose value
/// could depend on execution order must instead be produced per-task and
/// combined afterwards in index order (see parallel_ordered_reduce).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& task);

/// Produces produce(i) for i in [0, n) (in parallel) and folds the results
/// into `acc` strictly in index order: acc = combine(acc, r_0), then r_1,
/// ... r_{n-1}. This is the fixed-order reduction every parallel merge in
/// the library must use.
template <typename T, typename Produce, typename Combine>
void parallel_ordered_reduce(std::size_t n, T& acc, Produce&& produce,
                             Combine&& combine) {
  std::vector<T> partial(n);
  parallel_for(n, [&](std::size_t i) { partial[i] = produce(i); });
  for (std::size_t i = 0; i < n; ++i) {
    combine(acc, partial[i]);
  }
}

}  // namespace mgt::util
