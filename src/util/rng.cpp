#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace mgt {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  MGT_CHECK(n > 0);
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t x = next();
  while (x >= limit) {
    x = next();
  }
  return x % n;
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, r2;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    r2 = u * u + v * v;
  } while (r2 >= 1.0 || r2 == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(r2) / r2);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::gaussian(double mean, double sigma) {
  return mean + sigma * gaussian();
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::fork() {
  // xoshiro256++ jump polynomial: advances this generator by 2^128 steps and
  // hands the pre-jump state to the child so parent/child never overlap.
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  Rng child = *this;
  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t jump_word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (jump_word & (1ULL << bit)) {
        for (int i = 0; i < 4; ++i) {
          acc[static_cast<std::size_t>(i)] ^= s_[static_cast<std::size_t>(i)];
        }
      }
      next();
    }
  }
  s_ = acc;
  child.has_cached_gaussian_ = false;
  return child;
}

}  // namespace mgt
