// Strong unit types used throughout the mgt library.
//
// All times are picoseconds, all voltages are millivolts, all data rates are
// gigabits per second, all frequencies are gigahertz. The types are thin
// wrappers over double that make unit mistakes a compile error while staying
// trivially copyable and as cheap as raw doubles.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>

namespace mgt {

namespace detail {

/// CRTP base providing arithmetic for a strong scalar unit.
template <typename Derived>
struct Scalar {
  double v = 0.0;

  constexpr Scalar() = default;
  constexpr explicit Scalar(double value) : v(value) {}

  [[nodiscard]] constexpr double value() const { return v; }

  friend constexpr auto operator<=>(const Derived& a, const Derived& b) {
    return a.v <=> b.v;
  }
  friend constexpr bool operator==(const Derived& a, const Derived& b) {
    return a.v == b.v;
  }
  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.v + b.v};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.v - b.v};
  }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.v}; }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived{a.v * s};
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived{a.v * s};
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived{a.v / s};
  }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) { return a.v / b.v; }
  constexpr Derived& operator+=(Derived o) {
    v += o.v;
    return *static_cast<Derived*>(this);
  }
  constexpr Derived& operator-=(Derived o) {
    v -= o.v;
    return *static_cast<Derived*>(this);
  }
  constexpr Derived& operator*=(double s) {
    v *= s;
    return *static_cast<Derived*>(this);
  }
};

}  // namespace detail

/// Time in picoseconds.
struct Picoseconds : detail::Scalar<Picoseconds> {
  using Scalar::Scalar;
  [[nodiscard]] constexpr double ps() const { return v; }
  [[nodiscard]] constexpr double ns() const { return v * 1e-3; }
  [[nodiscard]] constexpr double us() const { return v * 1e-6; }
  [[nodiscard]] static constexpr Picoseconds from_ns(double ns) {
    return Picoseconds{ns * 1e3};
  }
};

/// Voltage in millivolts.
struct Millivolts : detail::Scalar<Millivolts> {
  using Scalar::Scalar;
  [[nodiscard]] constexpr double mv() const { return v; }
  [[nodiscard]] constexpr double volts() const { return v * 1e-3; }
};

/// Frequency in gigahertz.
struct Gigahertz : detail::Scalar<Gigahertz> {
  using Scalar::Scalar;
  [[nodiscard]] constexpr double ghz() const { return v; }
  [[nodiscard]] constexpr double mhz() const { return v * 1e3; }
  /// Period of one cycle.
  [[nodiscard]] constexpr Picoseconds period() const {
    return Picoseconds{1e3 / v};
  }
};

/// Dimensionless time expressed in unit intervals (bit periods). Used for
/// eye openings and jitter budgets quoted "in UI" the way the paper does.
struct UnitIntervals : detail::Scalar<UnitIntervals> {
  using Scalar::Scalar;
  [[nodiscard]] constexpr double ui() const { return v; }
  /// Absolute time at a given bit period.
  [[nodiscard]] constexpr Picoseconds at(Picoseconds unit_interval) const {
    return Picoseconds{v * unit_interval.ps()};
  }
};

/// Voltage slew rate in millivolts per picosecond (scope-style dV/dt).
struct MvPerPs : detail::Scalar<MvPerPs> {
  using Scalar::Scalar;
  [[nodiscard]] constexpr double mv_per_ps() const { return v; }
};

/// dV/dt of a voltage change over a time span.
constexpr MvPerPs operator/(Millivolts dv, Picoseconds dt) {
  return MvPerPs{dv.mv() / dt.ps()};
}
/// Voltage change accumulated at a slew rate over a time span.
constexpr Millivolts operator*(MvPerPs slope, Picoseconds dt) {
  return Millivolts{slope.mv_per_ps() * dt.ps()};
}
constexpr Millivolts operator*(Picoseconds dt, MvPerPs slope) {
  return slope * dt;
}

/// Data rate in gigabits per second.
struct GbitsPerSec : detail::Scalar<GbitsPerSec> {
  using Scalar::Scalar;
  [[nodiscard]] constexpr double gbps() const { return v; }
  [[nodiscard]] constexpr double mbps() const { return v * 1e3; }
  /// Unit interval (bit period).
  [[nodiscard]] constexpr Picoseconds unit_interval() const {
    return Picoseconds{1e3 / v};
  }
  [[nodiscard]] static constexpr GbitsPerSec from_ui(Picoseconds ui) {
    return GbitsPerSec{1e3 / ui.ps()};
  }
};

namespace literals {
constexpr Picoseconds operator""_ps(long double x) {
  return Picoseconds{static_cast<double>(x)};
}
constexpr Picoseconds operator""_ps(unsigned long long x) {
  return Picoseconds{static_cast<double>(x)};
}
constexpr Picoseconds operator""_ns(long double x) {
  return Picoseconds{static_cast<double>(x) * 1e3};
}
constexpr Picoseconds operator""_ns(unsigned long long x) {
  return Picoseconds{static_cast<double>(x) * 1e3};
}
constexpr Millivolts operator""_mV(long double x) {
  return Millivolts{static_cast<double>(x)};
}
constexpr Millivolts operator""_mV(unsigned long long x) {
  return Millivolts{static_cast<double>(x)};
}
constexpr Gigahertz operator""_GHz(long double x) {
  return Gigahertz{static_cast<double>(x)};
}
constexpr Gigahertz operator""_GHz(unsigned long long x) {
  return Gigahertz{static_cast<double>(x)};
}
constexpr GbitsPerSec operator""_Gbps(long double x) {
  return GbitsPerSec{static_cast<double>(x)};
}
constexpr GbitsPerSec operator""_Gbps(unsigned long long x) {
  return GbitsPerSec{static_cast<double>(x)};
}
}  // namespace literals

}  // namespace mgt
