// Deterministic random number generation.
//
// All stochastic behavior in the library (jitter, pattern noise, traffic)
// draws from explicitly seeded xoshiro256++ streams so that every test and
// bench result is exactly reproducible. Never seed from wall clock.
#pragma once

#include <array>
#include <cstdint>

namespace mgt {

/// xoshiro256++ PRNG (Blackman & Vigna). Fast, high quality, 2^256-1 period.
class Rng {
public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  // UniformRandomBitGenerator interface so <random> distributions also work.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Standard normal deviate (Marsaglia polar method, cached pair).
  double gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double gaussian(double mean, double sigma);

  /// Bernoulli draw with probability p of true.
  bool chance(double p);

  /// Creates an independent stream by jumping this generator's sequence;
  /// used to give each component its own decorrelated noise source.
  Rng fork();

private:
  std::array<std::uint64_t, 4> s_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace mgt
