#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace mgt {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  sum_sq_ += x * x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::stddev() const {
  if (n_ == 0) {
    return 0.0;
  }
  return std::sqrt(m2_ / static_cast<double>(n_));
}

double RunningStats::rms() const {
  if (n_ == 0) {
    return 0.0;
  }
  return std::sqrt(sum_sq_ / static_cast<double>(n_));
}

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }
double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

double RunningStats::peak_to_peak() const {
  return n_ == 0 ? 0.0 : max_ - min_;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  sum_sq_ += other.sum_sq_;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  MGT_CHECK(hi > lo, "histogram range must be non-empty");
  MGT_CHECK(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, counts_.size() - 1);  // guard float edge at hi_
  ++counts_[idx];
}

double Histogram::bin_center(std::size_t i) const {
  MGT_CHECK(i < counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::quantile(double q) const {
  MGT_CHECK(q >= 0.0 && q <= 1.0);
  const std::size_t in_range = total_ - underflow_ - overflow_;
  MGT_CHECK(in_range > 0, "quantile of empty histogram");
  // The populated support: empty leading/trailing bins carry no sample
  // mass, so no quantile may ever land inside them.
  std::size_t first = 0;
  while (counts_[first] == 0) {
    ++first;
  }
  std::size_t last = counts_.size() - 1;
  while (counts_[last] == 0) {
    --last;
  }
  if (q == 0.0) {
    return lo_ + static_cast<double>(first) * width_;
  }
  if (q == 1.0) {
    return lo_ + static_cast<double>(last + 1) * width_;
  }
  const double target = q * static_cast<double>(in_range);
  double cum = 0.0;
  for (std::size_t i = first; i <= last; ++i) {
    // Skip bins with no mass: `cum + 0 >= target` can hold at a bin the
    // target sits exactly on top of, and interpolating into it would
    // report a value no recorded sample reaches.
    if (counts_[i] == 0) {
      continue;
    }
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cum = next;
  }
  return lo_ + static_cast<double>(last + 1) * width_;
}

std::size_t Histogram::mode_bin() const {
  MGT_CHECK(total_ - underflow_ - overflow_ > 0, "mode of empty histogram");
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), std::size_t{0});
  underflow_ = overflow_ = total_ = 0;
}

}  // namespace mgt
