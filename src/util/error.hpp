// Error handling for the mgt library.
//
// Precondition violations are programming errors and throw mgt::Error with a
// message that names the violated condition and its source location.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace mgt {

/// Exception thrown on contract violations and unrecoverable configuration
/// errors anywhere in the mgt library.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Exception for hardware-style failures a degraded-mode caller is expected
/// to recover from: a dead channel at calibration, an optical link below
/// sensitivity, a convergence loop that ran out of attempts. Carries the
/// failing component's name so recovery code can attribute it in a
/// HealthReport. Derives from Error, so callers that do not opt into
/// recovery keep today's fail-fast behavior.
class RecoverableError : public Error {
public:
  RecoverableError(std::string component, const std::string& what)
      : Error(component + ": " + what), component_(std::move(component)) {}

  [[nodiscard]] const std::string& component() const { return component_; }

private:
  std::string component_;
};

namespace detail {
[[noreturn]] inline void raise_check_failure(const char* cond,
                                             const std::string& msg,
                                             const std::source_location& loc) {
  std::string full = std::string(loc.file_name()) + ":" +
                     std::to_string(loc.line()) + ": check failed: " + cond;
  if (!msg.empty()) {
    full += " (" + msg + ")";
  }
  throw Error(full);
}
}  // namespace detail

/// Verify a precondition; throws mgt::Error naming the condition on failure.
inline void check(bool ok, const char* cond, const std::string& msg = {},
                  const std::source_location loc =
                      std::source_location::current()) {
  if (!ok) {
    detail::raise_check_failure(cond, msg, loc);
  }
}

}  // namespace mgt

/// Contract check macro: MGT_CHECK(x > 0) or MGT_CHECK(x > 0, "x is a size").
#define MGT_CHECK(cond, ...) ::mgt::check((cond), #cond __VA_OPT__(, ) __VA_ARGS__)
