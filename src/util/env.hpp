// Strict environment-variable parsing.
//
// Every MGT_* knob goes through these helpers so misconfiguration behaves
// the same everywhere: a malformed value is *rejected* (the caller keeps
// its safe default) and *counted*, never silently truncated or partially
// parsed. The rejection totals are bridged into the obs registry as the
// counter "mgt.env.rejected" (see obs::refresh_bridged) so a typo'd knob
// is visible in every metrics snapshot and self-test report — the same
// discipline util::parse_thread_count established for MGT_THREADS.
//
// The parse_* functions are pure (they take the raw string) so the whole
// rejection matrix is unit-testable; the env_* wrappers read getenv and
// count rejections.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace mgt::util {

/// Strict parse of a positive integer knob (e.g. MGT_RENDER_CACHE_MB).
/// nullptr/empty mean "unset" and return nullopt WITHOUT counting a
/// rejection; trailing garbage ("64x"), negatives, zero when `min` > 0,
/// non-digits and out-of-range magnitudes are malformed. Pure.
std::optional<std::uint64_t> parse_env_u64(const char* raw,
                                           std::uint64_t min = 1,
                                           std::uint64_t max = ~0ULL);

/// Strict parse of an on/off knob (e.g. MGT_RENDER_CACHE, MGT_OBS).
/// Accepts exactly "0"/"off"/"false" (false) and "1"/"on"/"true" (true);
/// nullptr/empty mean "unset". Anything else is malformed. Pure.
std::optional<bool> parse_env_flag(const char* raw);

/// Strict parse of a size-in-mebibytes knob (MGT_RENDER_CACHE_MB,
/// MGT_TELEMETRY_BUF_MB): the digits-only grammar of parse_env_u64 with
/// the MB→bytes conversion applied and overflow-checked, so every size
/// knob shares one grammar and one failure mode. Returns BYTES.
/// `min_mb`/`max_mb` bound the accepted value in MB; values whose byte
/// count would overflow 64 bits are malformed. Pure.
std::optional<std::uint64_t> parse_env_size_mb(
    const char* raw, std::uint64_t min_mb = 1,
    std::uint64_t max_mb = (~0ULL) >> 20);

/// Outcome of an env_* read, distinguishing "knob absent" from "knob
/// malformed" so call sites can count and report the latter.
enum class EnvParseStatus { kUnset, kParsed, kRejected };

template <typename T>
struct EnvValue {
  EnvParseStatus status = EnvParseStatus::kUnset;
  T value{};  // meaningful only when status == kParsed

  [[nodiscard]] bool parsed() const { return status == EnvParseStatus::kParsed; }
  [[nodiscard]] bool rejected() const {
    return status == EnvParseStatus::kRejected;
  }
  /// The parsed value, or `fallback` when unset/rejected.
  [[nodiscard]] T value_or(T fallback) const {
    return parsed() ? value : fallback;
  }
};

/// Reads and strictly parses an integer knob from the environment. A
/// malformed value increments the process-wide rejection count (tagged
/// with `name` for the log line) and reports kRejected.
EnvValue<std::uint64_t> env_u64(const char* name, std::uint64_t min = 1,
                                std::uint64_t max = ~0ULL);

/// Reads and strictly parses an on/off knob from the environment.
EnvValue<bool> env_flag(const char* name);

/// Reads and strictly parses a size-in-MB knob; `value` is in BYTES.
EnvValue<std::uint64_t> env_size_mb(const char* name, std::uint64_t min_mb = 1,
                                    std::uint64_t max_mb = (~0ULL) >> 20);

/// Records a rejection decided by a domain-specific parser (e.g. MGT_SIMD's
/// backend-name parse in sig::parse_simd_backend) so every knob feeds the
/// same rejection total regardless of its value grammar.
void note_env_rejection(const char* name);

/// How many environment knob values were rejected by env_u64/env_flag in
/// this process. Bridged into obs as counter "mgt.env.rejected".
std::uint64_t env_rejections();

/// Comma-separated "NAME,NAME,..." list of the knobs that were rejected
/// (each name once, in first-rejection order); empty when none. Used by
/// self-test details so the offending variable is named, not just counted.
std::string env_rejected_names();

/// Test hook: zeroes the rejection count and name list.
void reset_env_rejections_for_test();

}  // namespace mgt::util
