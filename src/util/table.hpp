// Plain-text report tables for the benchmark harness.
//
// Every bench binary prints a "paper vs measured" table through this helper
// so EXPERIMENTS.md rows can be regenerated mechanically.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mgt {

/// Fixed-width text table with a title, column headers and string cells.
class ReportTable {
public:
  ReportTable(std::string title, std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience for the common "metric | paper | measured | note" shape.
  void add_comparison(const std::string& metric, const std::string& paper,
                      const std::string& measured,
                      const std::string& note = {});

  void print(std::ostream& os) const;

  // Structured access for exporters (obs::write_bench_json).
  [[nodiscard]] const std::string& title() const { return title_; }
  [[nodiscard]] const std::vector<std::string>& headers() const {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals, e.g. fmt(46.71, 1)
/// -> "46.7".
std::string fmt(double value, int digits = 2);

/// Formats "value unit", e.g. fmt_unit(46.7, "ps").
std::string fmt_unit(double value, const std::string& unit, int digits = 2);

}  // namespace mgt
