#include "util/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <vector>

namespace mgt::util {

namespace {

// Rejection bookkeeping: counted under a mutex (never on a hot path — env
// knobs are read once per process at component construction).
std::mutex g_mutex;
std::uint64_t g_rejections = 0;
std::vector<std::string> g_rejected_names;

void count_rejection(const char* name) {
  std::lock_guard<std::mutex> lock(g_mutex);
  ++g_rejections;
  for (const std::string& seen : g_rejected_names) {
    if (seen == name) {
      return;
    }
  }
  g_rejected_names.emplace_back(name);
}

}  // namespace

std::optional<std::uint64_t> parse_env_u64(const char* raw, std::uint64_t min,
                                           std::uint64_t max) {
  if (raw == nullptr || *raw == '\0') {
    return std::nullopt;  // unset, not malformed
  }
  const std::string_view text{raw};
  // Hand-rolled digits-only scan: strtoul would silently accept leading
  // whitespace, a '+' sign, and saturate out-of-range magnitudes — all of
  // which we want to reject, matching parse_thread_count's strictness.
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (~0ULL - digit) / 10) {
      return std::nullopt;  // would overflow
    }
    value = value * 10 + digit;
  }
  if (value < min || value > max) {
    return std::nullopt;
  }
  return value;
}

std::optional<bool> parse_env_flag(const char* raw) {
  if (raw == nullptr || *raw == '\0') {
    return std::nullopt;
  }
  const std::string_view text{raw};
  if (text == "0" || text == "off" || text == "false") {
    return false;
  }
  if (text == "1" || text == "on" || text == "true") {
    return true;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> parse_env_size_mb(const char* raw,
                                               std::uint64_t min_mb,
                                               std::uint64_t max_mb) {
  // Clamp the caller's ceiling so the MB→bytes shift below cannot
  // overflow even when max_mb is the default "anything".
  const std::uint64_t cap_mb =
      std::min<std::uint64_t>(max_mb, (~0ULL) >> 20);
  const std::optional<std::uint64_t> mb = parse_env_u64(raw, min_mb, cap_mb);
  if (!mb.has_value()) {
    return std::nullopt;
  }
  return *mb << 20;
}

EnvValue<std::uint64_t> env_u64(const char* name, std::uint64_t min,
                                std::uint64_t max) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return {EnvParseStatus::kUnset, 0};
  }
  const std::optional<std::uint64_t> parsed = parse_env_u64(raw, min, max);
  if (!parsed.has_value()) {
    count_rejection(name);
    return {EnvParseStatus::kRejected, 0};
  }
  return {EnvParseStatus::kParsed, *parsed};
}

EnvValue<bool> env_flag(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return {EnvParseStatus::kUnset, false};
  }
  const std::optional<bool> parsed = parse_env_flag(raw);
  if (!parsed.has_value()) {
    count_rejection(name);
    return {EnvParseStatus::kRejected, false};
  }
  return {EnvParseStatus::kParsed, *parsed};
}

EnvValue<std::uint64_t> env_size_mb(const char* name, std::uint64_t min_mb,
                                    std::uint64_t max_mb) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') {
    return {EnvParseStatus::kUnset, 0};
  }
  const std::optional<std::uint64_t> parsed =
      parse_env_size_mb(raw, min_mb, max_mb);
  if (!parsed.has_value()) {
    count_rejection(name);
    return {EnvParseStatus::kRejected, 0};
  }
  return {EnvParseStatus::kParsed, *parsed};
}

void note_env_rejection(const char* name) { count_rejection(name); }

std::uint64_t env_rejections() {
  std::lock_guard<std::mutex> lock(g_mutex);
  return g_rejections;
}

std::string env_rejected_names() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::string out;
  for (const std::string& name : g_rejected_names) {
    if (!out.empty()) {
      out += ",";
    }
    out += name;
  }
  return out;
}

void reset_env_rejections_for_test() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_rejections = 0;
  g_rejected_names.clear();
}

}  // namespace mgt::util
