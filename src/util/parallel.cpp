#include "util/parallel.hpp"

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "util/error.hpp"

namespace mgt::util {

namespace {

std::uint64_t splitmix64_next(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::atomic<std::uint64_t> g_env_rejections{0};

std::size_t env_thread_count() {
  const std::optional<std::size_t> parsed =
      parse_thread_count(std::getenv("MGT_THREADS"));
  if (!parsed.has_value()) {
    // Misconfiguration falls back to the serial path (always correct) and
    // is counted so metrics snapshots / self_test can surface it.
    g_env_rejections.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  return *parsed;
}

// Override state: -1 = no override, >= 0 = forced worker count.
long long g_override = -1;

}  // namespace

std::optional<std::size_t> parse_thread_count(const char* raw) {
  if (raw == nullptr || *raw == '\0') {
    return 0;  // unset, not malformed
  }
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') {
    return std::nullopt;  // no digits, or trailing garbage ("8x", "8 ")
  }
  if (errno == ERANGE || parsed < 0) {
    return std::nullopt;  // strtol saturated at LONG_MIN/MAX, or negative
  }
  return static_cast<std::size_t>(parsed);
}

std::uint64_t thread_env_rejections() {
  return g_env_rejections.load(std::memory_order_relaxed);
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t task_index) {
  // Two dependent splitmix64 rounds: the first whitens the seed, the second
  // folds in the index, so (s, 0) and (s+1, ...) streams stay decorrelated.
  std::uint64_t x = seed;
  const std::uint64_t whitened = splitmix64_next(x);
  x = whitened ^ (task_index * 0xBF58476D1CE4E5B9ULL + 0x94D049BB133111EBULL);
  return splitmix64_next(x);
}

Rng task_rng(std::uint64_t seed, std::uint64_t task_index) {
  return Rng(mix_seed(seed, task_index));
}

std::size_t thread_count() {
  if (g_override >= 0) {
    return static_cast<std::size_t>(g_override);
  }
  static const std::size_t env = env_thread_count();
  return env;
}

void set_thread_override(std::size_t n) {
  g_override = static_cast<long long>(n);
}

void clear_thread_override() { g_override = -1; }

ScopedThreads::ScopedThreads(std::size_t n)
    : previous_(g_override >= 0 ? static_cast<std::size_t>(g_override) : 0),
      had_previous_(g_override >= 0) {
  set_thread_override(n);
}

ScopedThreads::~ScopedThreads() {
  if (had_previous_) {
    set_thread_override(previous_);
  } else {
    clear_thread_override();
  }
}

// ---------------------------------------------------------------- pool ----

struct ThreadPool::Impl {
  explicit Impl(std::size_t n_workers) : workers(n_workers == 0 ? 1 : n_workers) {
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      shutdown = true;
    }
    wake.notify_all();
    for (auto& t : threads) {
      // Shutdown is already signalled; workers exit their loop on the next
      // wake, so this join is bounded in practice and must not time out
      // (losing a worker mid-teardown would leak the pool's state).
      t.join();  // mgtlint:allow(no-unbounded-wait)
    }
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& task) {
    std::unique_lock<std::mutex> lock(mutex);
    current_task = &task;
    task_total = n;
    ++generation;
    pending = workers;
    first_error = nullptr;
    wake.notify_all();
    // The chunk tasks are finite and exceptions are captured per worker, so
    // completion is guaranteed; a timeout here could only hide a real bug
    // by returning with tasks still running on the pool.
    done.wait(lock, [this] { return pending == 0; });  // mgtlint:allow(no-unbounded-wait)
    current_task = nullptr;
    if (first_error) {
      std::exception_ptr err = first_error;
      first_error = nullptr;
      std::rethrow_exception(err);
    }
  }

  void worker_loop(std::size_t worker_index) {
    std::uint64_t seen_generation = 0;
    while (true) {
      const std::function<void(std::size_t)>* task = nullptr;
      std::size_t n = 0;
      {
        std::unique_lock<std::mutex> lock(mutex);
        // Idle workers are *meant* to park indefinitely between batches;
        // shutdown wakes them, so the wait cannot outlive the pool.
        wake.wait(lock, [&] {  // mgtlint:allow(no-unbounded-wait)
          return shutdown || generation != seen_generation;
        });
        if (shutdown) {
          return;
        }
        seen_generation = generation;
        task = current_task;
        n = task_total;
      }
      // Static chunk assignment: worker w always owns [w*n/W, (w+1)*n/W).
      const std::size_t begin = worker_index * n / workers;
      const std::size_t end = (worker_index + 1) * n / workers;
      std::exception_ptr err = nullptr;
      for (std::size_t i = begin; i < end; ++i) {
        try {
          (*task)(i);
        } catch (...) {
          if (!err) {
            err = std::current_exception();
          }
        }
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (err && !first_error) {
          first_error = err;
        }
        if (--pending == 0) {
          done.notify_all();
        }
      }
    }
  }

  const std::size_t workers;
  std::vector<std::thread> threads;
  std::mutex mutex;
  std::condition_variable wake;
  std::condition_variable done;
  const std::function<void(std::size_t)>* current_task = nullptr;
  std::size_t task_total = 0;
  std::uint64_t generation = 0;
  std::size_t pending = 0;
  bool shutdown = false;
  std::exception_ptr first_error = nullptr;
};

ThreadPool::ThreadPool(std::size_t workers)
    : impl_(std::make_unique<Impl>(workers)) {}

ThreadPool::~ThreadPool() = default;

std::size_t ThreadPool::workers() const { return impl_->workers; }

void ThreadPool::run(std::size_t n,
                     const std::function<void(std::size_t)>& task) {
  if (n == 0) {
    return;
  }
  impl_->run(n, task);
}

namespace {

/// Shared pool, rebuilt when the configured worker count changes. Guarded
/// by a mutex so nested/concurrent parallel_for calls from different
/// threads serialize on pool access rather than racing pool recreation.
std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& task) {
  const std::size_t workers = thread_count();
  if (workers <= 1 || n < 2) {
    // Serial fallback: identical results by construction, since the task
    // decomposition never depends on the worker count.
    for (std::size_t i = 0; i < n; ++i) {
      task(i);
    }
    return;
  }
  std::unique_lock<std::mutex> lock(g_pool_mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    // A parallel section is already active (nested call from inside a
    // task): run inline rather than deadlocking on the shared pool.
    for (std::size_t i = 0; i < n; ++i) {
      task(i);
    }
    return;
  }
  if (!g_pool || g_pool->workers() != workers) {
    g_pool = std::make_unique<ThreadPool>(workers);
  }
  g_pool->run(n, task);
}

}  // namespace mgt::util
