// FNV-1a 64-bit content digests.
//
// Used for content-addressed keys (the render cache) and cheap structural
// fingerprints. Deterministic across processes and platforms: the digest is
// a pure function of the mixed-in bytes, with doubles folded in by bit
// pattern so two values collide only when they are the same double.
#pragma once

#include <bit>
#include <cstdint>

namespace mgt::util {

/// Incremental FNV-1a 64-bit hasher.
class Fnv64 {
public:
  void mix_u64(std::uint64_t x) {
    for (int byte = 0; byte < 8; ++byte) {
      h_ ^= (x >> (8 * byte)) & 0xFFu;
      h_ *= kPrime;
    }
  }

  void mix_bool(bool b) { mix_u64(b ? 1 : 0); }

  /// Folds in the exact bit pattern (distinguishes -0.0 from +0.0, which is
  /// the conservative choice for cache keys).
  void mix_double(double d) { mix_u64(std::bit_cast<std::uint64_t>(d)); }

  [[nodiscard]] std::uint64_t digest() const { return h_; }

private:
  static constexpr std::uint64_t kOffset = 1469598103934665603ULL;
  static constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t h_ = kOffset;
};

}  // namespace mgt::util
