#include "util/bitvec.hpp"

#include <bit>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mgt {

namespace {
constexpr std::size_t kBitsPerWord = 64;

std::size_t words_for(std::size_t bits) {
  return (bits + kBitsPerWord - 1) / kBitsPerWord;
}
}  // namespace

BitVector::BitVector(std::size_t n, bool fill)
    : words_(words_for(n), fill ? ~0ULL : 0ULL), size_(n) {
  if (fill && n % kBitsPerWord != 0) {
    // Keep unused high bits of the last word zero so popcount stays honest.
    words_.back() &= (1ULL << (n % kBitsPerWord)) - 1;
  }
}

BitVector BitVector::from_string(std::string_view bits) {
  BitVector out;
  for (char c : bits) {
    if (c == '0' || c == '1') {
      out.push_back(c == '1');
    }
  }
  return out;
}

BitVector BitVector::random(std::size_t n, Rng& rng) {
  BitVector out(n);
  for (std::size_t w = 0; w < out.words_.size(); ++w) {
    out.words_[w] = rng.next();
  }
  if (n % kBitsPerWord != 0 && !out.words_.empty()) {
    out.words_.back() &= (1ULL << (n % kBitsPerWord)) - 1;
  }
  return out;
}

BitVector BitVector::alternating(std::size_t n, bool first) {
  BitVector out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.set(i, (i % 2 == 0) == first);
  }
  return out;
}

bool BitVector::get(std::size_t i) const {
  MGT_CHECK(i < size_, "BitVector index out of range");
  return (words_[i / kBitsPerWord] >> (i % kBitsPerWord)) & 1ULL;
}

void BitVector::set(std::size_t i, bool value) {
  MGT_CHECK(i < size_, "BitVector index out of range");
  const std::uint64_t mask = 1ULL << (i % kBitsPerWord);
  if (value) {
    words_[i / kBitsPerWord] |= mask;
  } else {
    words_[i / kBitsPerWord] &= ~mask;
  }
}

void BitVector::push_back(bool bit) {
  if (size_ % kBitsPerWord == 0) {
    words_.push_back(0);
  }
  ++size_;
  set(size_ - 1, bit);
}

void BitVector::append(const BitVector& other) {
  for (std::size_t i = 0; i < other.size(); ++i) {
    push_back(other.get(i));
  }
}

void BitVector::clear() {
  words_.clear();
  size_ = 0;
}

std::size_t BitVector::hamming_distance(const BitVector& other) const {
  MGT_CHECK(size_ == other.size_, "hamming_distance requires equal lengths");
  std::size_t distance = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    distance += static_cast<std::size_t>(
        std::popcount(words_[w] ^ other.words_[w]));
  }
  return distance;
}

std::size_t BitVector::popcount() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) {
    n += static_cast<std::size_t>(std::popcount(w));
  }
  return n;
}

std::size_t BitVector::transition_count() const {
  std::size_t n = 0;
  for (std::size_t i = 1; i < size_; ++i) {
    if (get(i) != get(i - 1)) {
      ++n;
    }
  }
  return n;
}

std::size_t BitVector::longest_run() const {
  if (size_ == 0) {
    return 0;
  }
  std::size_t best = 1;
  std::size_t run = 1;
  for (std::size_t i = 1; i < size_; ++i) {
    if (get(i) == get(i - 1)) {
      ++run;
      best = std::max(best, run);
    } else {
      run = 1;
    }
  }
  return best;
}

BitVector BitVector::slice(std::size_t begin, std::size_t len) const {
  MGT_CHECK(begin + len <= size_, "slice out of range");
  BitVector out(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.set(i, get(begin + i));
  }
  return out;
}

BitVector BitVector::interleave(const std::vector<BitVector>& lanes) {
  MGT_CHECK(!lanes.empty(), "interleave of zero lanes");
  const std::size_t lane_len = lanes.front().size();
  for (const auto& lane : lanes) {
    MGT_CHECK(lane.size() == lane_len, "interleave requires equal lanes");
  }
  BitVector out(lane_len * lanes.size());
  std::size_t pos = 0;
  for (std::size_t i = 0; i < lane_len; ++i) {
    for (const auto& lane : lanes) {
      out.set(pos++, lane.get(i));
    }
  }
  return out;
}

std::vector<BitVector> BitVector::deinterleave(std::size_t k) const {
  MGT_CHECK(k > 0);
  MGT_CHECK(size_ % k == 0, "deinterleave requires size divisible by k");
  std::vector<BitVector> lanes(k, BitVector(size_ / k));
  for (std::size_t i = 0; i < size_; ++i) {
    lanes[i % k].set(i / k, get(i));
  }
  return lanes;
}

std::string BitVector::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    s.push_back(get(i) ? '1' : '0');
  }
  return s;
}

}  // namespace mgt
