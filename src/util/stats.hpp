// Streaming statistics accumulators used by the measurement library.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace mgt {

/// Single-pass accumulator for count / mean / rms / stddev / min / max /
/// peak-to-peak. Uses Welford's algorithm for numerical stability.
class RunningStats {
public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Population standard deviation (what a scope's "rms jitter" reports
  /// after mean removal).
  [[nodiscard]] double stddev() const;
  /// Root mean square of the raw samples (no mean removal).
  [[nodiscard]] double rms() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// max - min; 0 when empty.
  [[nodiscard]] double peak_to_peak() const;

  void merge(const RunningStats& other);
  void reset();

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;        // sum of squared deviations from mean
  double sum_sq_ = 0.0;    // raw sum of squares, for rms()
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram over [lo, hi). Out-of-range samples are counted in
/// saturating under/overflow bins so nothing is silently dropped.
class Histogram {
public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t bin(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double bin_center(std::size_t i) const;
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Value below which `q` (0..1) of the in-range samples fall, by linear
  /// interpolation within the containing bin. Empty bins are skipped until
  /// sample mass is actually crossed; q=0 and q=1 return the lower edge of
  /// the first and the upper edge of the last populated bin, so the result
  /// always lies within the recorded support. Requires in-range samples.
  [[nodiscard]] double quantile(double q) const;

  /// Index of the fullest bin. Requires in-range samples (an empty
  /// histogram has no mode to report).
  [[nodiscard]] std::size_t mode_bin() const;

  void reset();

private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace mgt
