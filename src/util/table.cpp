#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace mgt {

ReportTable::ReportTable(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  MGT_CHECK(!headers_.empty());
}

void ReportTable::add_row(std::vector<std::string> cells) {
  MGT_CHECK(cells.size() == headers_.size(),
            "row width must match header width");
  rows_.push_back(std::move(cells));
}

void ReportTable::add_comparison(const std::string& metric,
                                 const std::string& paper,
                                 const std::string& measured,
                                 const std::string& note) {
  add_row({metric, paper, measured, note});
}

void ReportTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c]
         << " | ";
    }
    os << '\n';
  };
  auto print_rule = [&] {
    os << '+';
    for (std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };

  os << "\n=== " << title_ << " ===\n";
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_rule();
}

std::string fmt(double value, int digits) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(digits) << value;
  return ss.str();
}

std::string fmt_unit(double value, const std::string& unit, int digits) {
  return fmt(value, digits) + " " + unit;
}

}  // namespace mgt
