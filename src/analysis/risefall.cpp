#include "analysis/risefall.hpp"

#include "util/error.hpp"

namespace mgt::ana {

RiseFallMeter::RiseFallMeter(Millivolts vol, Millivolts voh) {
  MGT_CHECK(voh > vol, "VOH must exceed VOL");
  const double swing = voh.mv() - vol.mv();
  v20_ = vol.mv() + 0.2 * swing;
  v80_ = vol.mv() + 0.8 * swing;
}

void RiseFallMeter::on_sample(Picoseconds t, Millivolts v) {
  const double tv = t.ps();
  const double vv = v.mv();
  if (have_prev_) {
    auto crossing_up = [&](double level) {
      return prev_v_ < level && vv >= level;
    };
    auto crossing_down = [&](double level) {
      return prev_v_ > level && vv <= level;
    };
    auto interp = [&](double level) {
      return prev_t_ + (level - prev_v_) / (vv - prev_v_) * (tv - prev_t_);
    };

    switch (phase_) {
      case Phase::Idle:
        if (crossing_up(v20_)) {
          phase_ = Phase::Rising;
          start_time_ = interp(v20_);
          // A fast edge may cross both thresholds within one step.
          if (crossing_up(v80_)) {
            rise_.add(interp(v80_) - start_time_);
            phase_ = Phase::Idle;
          }
        } else if (crossing_down(v80_)) {
          phase_ = Phase::Falling;
          start_time_ = interp(v80_);
          if (crossing_down(v20_)) {
            fall_.add(interp(v20_) - start_time_);
            phase_ = Phase::Idle;
          }
        }
        break;
      case Phase::Rising:
        if (crossing_up(v80_)) {
          rise_.add(interp(v80_) - start_time_);
          phase_ = Phase::Idle;
        } else if (vv < prev_v_) {
          // Reversal before reaching 80 %: incomplete transition, discard.
          phase_ = Phase::Idle;
          // The reversal may itself begin a fall if it started high enough,
          // but an incomplete rise never reached 80 %, so nothing to do.
        }
        break;
      case Phase::Falling:
        if (crossing_down(v20_)) {
          fall_.add(interp(v20_) - start_time_);
          phase_ = Phase::Idle;
        } else if (vv > prev_v_) {
          phase_ = Phase::Idle;
        }
        break;
    }
  }
  prev_t_ = tv;
  prev_v_ = vv;
  have_prev_ = true;
}

}  // namespace mgt::ana
