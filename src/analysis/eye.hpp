// Eye-diagram construction and crossover jitter measurement.
//
// These functions implement the measurements the paper reports from its
// sampling oscilloscope: peak-to-peak and rms jitter of the threshold
// crossings at the eye crossover point, and the usable eye opening in unit
// intervals (UI), defined as 1 - TJpp/UI exactly as in Figs 7, 8, 16, 17
// and 19.
#pragma once

#include <string>
#include <vector>

#include "signal/render.hpp"
#include "signal/sinks.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace mgt::ana {

/// Crossover jitter statistics extracted from threshold crossings.
struct CrossoverJitter {
  std::size_t count = 0;
  Picoseconds peak_to_peak{0.0};
  Picoseconds rms{0.0};
  /// Mean crossing phase within the UI, relative to the UI grid origin.
  Picoseconds mean_phase{0.0};
};

/// Folds crossing times onto a single unit interval and measures their
/// spread. `t_ref` is any time on the ideal bit-boundary grid.
CrossoverJitter measure_crossover_jitter(
    const std::vector<sig::Crossing>& crossings, Picoseconds ui,
    Picoseconds t_ref = Picoseconds{0});

/// Restriction of the same measurement to rising or falling edges only
/// (Fig 9 measures a single falling edge's jitter).
CrossoverJitter measure_edge_jitter(const std::vector<sig::Crossing>& crossings,
                                    Picoseconds ui, bool rising,
                                    Picoseconds t_ref = Picoseconds{0});

/// Summary eye metrics in the units the paper uses.
struct EyeMetrics {
  CrossoverJitter jitter;
  UnitIntervals eye_opening{0.0};  // 1 - TJpp/UI
  Picoseconds eye_width{0.0};    // UI - TJpp
  Millivolts eye_height{0.0};    // vertical opening at eye center
  Millivolts level_high{0.0};    // settled logic-high voltage
  Millivolts level_low{0.0};     // settled logic-low voltage
};

/// 2D-folded eye diagram: time (phase within 2 UI) x voltage histogram,
/// plus the vertical-opening bookkeeping needed for EyeMetrics.
class EyeDiagram final : public sig::WaveformSink {
public:
  struct Config {
    Picoseconds ui{400.0};
    Picoseconds t_ref{0.0};        // a bit-boundary time
    Millivolts v_lo{1500.0};
    Millivolts v_hi{2500.0};
    Millivolts threshold{2000.0};  // decision threshold / crossover level
    std::size_t time_bins = 128;   // across 2 UI
    std::size_t volt_bins = 64;
    /// Half-width of the "eye center" phase window used for the vertical
    /// opening, as a fraction of UI. Keep narrow enough that band-limited
    /// edge tails at high rates stay outside it.
    double center_window = 0.1;
  };

  explicit EyeDiagram(Config config);

  void on_sample(Picoseconds t, Millivolts v) override;
  /// Batched accumulation: the crossing scan and the voltage-to-bin-fraction
  /// transform run through the SIMD kernels over the SoA arrays; the phase
  /// fold and center-window statistics stay scalar in sample order. Result
  /// state is byte-identical to per-sample delivery.
  void on_block(const sig::SampleBlock& block) override;
  void on_context(Picoseconds t, Millivolts v) override;

  /// Folds another eye accumulated over a later, disjoint part of the same
  /// acquisition into this one (histograms add, crossings append). Merges
  /// must run in chunk order so the crossing record stays time-ordered —
  /// the fixed-order-reduction rule of the parallel layer.
  void merge(const EyeDiagram& later);

  /// Density count at (time_bin, volt_bin).
  [[nodiscard]] std::size_t count_at(std::size_t time_bin,
                                     std::size_t volt_bin) const;
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] std::size_t total_samples() const { return total_; }

  /// Vertical eye opening measured in the center window: the gap between
  /// the lowest sample of the high rail and the highest sample of the low
  /// rail. Zero or negative means a closed eye.
  [[nodiscard]] Millivolts eye_height() const;

  /// Mean settled rail voltages within the center window.
  [[nodiscard]] Millivolts level_high() const;
  [[nodiscard]] Millivolts level_low() const;

  /// Crossings of the decision threshold observed while accumulating.
  [[nodiscard]] const std::vector<sig::Crossing>& crossings() const {
    return crossings_.crossings();
  }

  /// Full metric set; `n_expected_edges` is unused but documents intent.
  [[nodiscard]] EyeMetrics metrics() const;

  /// ASCII-art rendering (rows = voltage top-down, cols = phase across 2 UI)
  /// using density shading, for examples and debug output.
  [[nodiscard]] std::string ascii_art(std::size_t cols = 64,
                                      std::size_t rows = 20) const;

private:
  Config config_;
  std::vector<std::size_t> grid_;  // time_bins x volt_bins
  std::size_t total_ = 0;
  sig::CrossingRecorder crossings_;
  // Vertical-opening trackers within the center window.
  double center_min_high_ = 1e300;
  double center_max_low_ = -1e300;
  RunningStats center_high_;
  RunningStats center_low_;
};

/// Accumulates an eye over [t_begin, t_end) of the rendered stream using
/// the fixed chunk decomposition of sig::render_chunk, with the chunks
/// executed by util::parallel_for and merged in chunk order. Byte-identical
/// results at every thread count (including the MGT_THREADS=0 serial
/// fallback) by construction; single-chunk windows are additionally
/// byte-identical to a plain sig::render pass.
EyeDiagram accumulate_eye(const sig::EdgeStream& stream,
                          const sig::FilterChain& chain,
                          const sig::RenderConfig& render_config,
                          Picoseconds t_begin, Picoseconds t_end,
                          const EyeDiagram::Config& eye_config,
                          const sig::RenderChunking& chunking = {});

}  // namespace mgt::ana
