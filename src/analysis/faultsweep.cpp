#include "analysis/faultsweep.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "util/error.hpp"

namespace mgt::ana {

namespace {

/// Groups cells by `key`, sorts each group by `axis`, and verifies the eye
/// never climbs by more than `tol` along the axis.
template <typename KeyFn, typename AxisFn>
bool eye_nonincreasing_along(const std::vector<ScenarioCell>& cells,
                             const KeyFn& key, const AxisFn& axis,
                             UnitIntervals tol) {
  MGT_CHECK(tol.ui() >= 0.0, "tolerance must be non-negative");
  std::map<decltype(key(cells.front())),
           std::vector<std::pair<double, UnitIntervals>>>
      groups;
  for (const ScenarioCell& cell : cells) {
    groups[key(cell)].emplace_back(axis(cell), cell.eye);
  }
  for (auto& [unused, points] : groups) {
    std::sort(points.begin(), points.end());
    for (std::size_t i = 1; i < points.size(); ++i) {
      if (points[i].second > points[i - 1].second + tol) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

std::vector<FaultSweepPoint> fault_sweep(const std::vector<double>& severities,
                                         const FaultRunner& run,
                                         const EyeProbe& eye_probe) {
  MGT_CHECK(static_cast<bool>(run), "fault_sweep needs a runner");
  std::vector<FaultSweepPoint> sweep;
  sweep.reserve(severities.size());
  for (const double severity : severities) {
    MGT_CHECK(severity >= 0.0 && severity <= 1.0,
              "fault severity must be in [0, 1]");
    const BerResult ber = run(severity);
    FaultSweepPoint point;
    point.severity = severity;
    point.ber = ber.ber();
    point.errors = ber.errors;
    point.bits = ber.bits_compared;
    if (eye_probe) {
      point.eye_opening = eye_probe(severity);
    }
    sweep.push_back(point);
  }
  return sweep;
}

bool ber_monotonic_nondecreasing(const std::vector<FaultSweepPoint>& sweep,
                                 double tolerance) {
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].ber + tolerance < sweep[i - 1].ber) {
      return false;
    }
  }
  return true;
}

bool eye_nonincreasing_in_rate(const std::vector<ScenarioCell>& cells,
                               UnitIntervals tol) {
  if (cells.empty()) {
    return true;
  }
  return eye_nonincreasing_along(
      cells,
      [](const ScenarioCell& c) {
        return std::make_tuple(c.tree, c.timing_mode, c.severity);
      },
      [](const ScenarioCell& c) { return c.rate.gbps(); }, tol);
}

bool eye_nonincreasing_in_severity(const std::vector<ScenarioCell>& cells,
                                   UnitIntervals tol) {
  if (cells.empty()) {
    return true;
  }
  return eye_nonincreasing_along(
      cells,
      [](const ScenarioCell& c) {
        return std::make_tuple(c.rate.gbps(), c.tree, c.timing_mode);
      },
      [](const ScenarioCell& c) { return c.severity; }, tol);
}

std::vector<LinkSweepPoint> link_fault_sweep(
    const std::vector<double>& severities, const LinkRunner& run) {
  MGT_CHECK(static_cast<bool>(run), "link_fault_sweep needs a runner");
  std::vector<LinkSweepPoint> sweep;
  sweep.reserve(severities.size());
  for (const double severity : severities) {
    MGT_CHECK(severity >= 0.0 && severity <= 1.0,
              "fault severity must be in [0, 1]");
    LinkSweepPoint point = run(severity);
    point.severity = severity;
    sweep.push_back(point);
  }
  return sweep;
}

bool residual_below_raw(const std::vector<LinkSweepPoint>& sweep) {
  for (const LinkSweepPoint& p : sweep) {
    if (!p.accounting_closed()) {
      return false;
    }
    if (p.severity == 0.0 || p.raw_fer == 0.0) {
      // A clean channel must stay clean end to end.
      if (p.residual_fer != 0.0 || p.raw_fer != 0.0) {
        return false;
      }
      continue;
    }
    if (p.residual_fer >= p.raw_fer) {
      return false;
    }
  }
  return true;
}

}  // namespace mgt::ana
