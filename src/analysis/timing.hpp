// Edge-placement (timing accuracy) analysis.
//
// The paper's headline timing claim is 10 ps programmable resolution with
// about +-25 ps placement accuracy over a 10 ns range (Sections 1, 3, 4 and
// the Summary). These helpers quantify placement error of measured edges
// against their programmed positions, and characterize a programmable delay
// line the way an ATE calibration pass would (sweep codes, fit, residuals).
#pragma once

#include <cstddef>
#include <vector>

#include "signal/sinks.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace mgt::ana {

/// Placement-error summary over a set of edges.
struct PlacementAccuracy {
  std::size_t count = 0;
  Picoseconds mean_error{0.0};
  Picoseconds max_abs_error{0.0};
  Picoseconds rms_error{0.0};

  [[nodiscard]] bool within(Picoseconds bound) const {
    return max_abs_error.ps() <= bound.ps();
  }
};

/// Matches each measured crossing to the nearest programmed edge time and
/// accumulates the error statistics. `programmed` must be sorted.
PlacementAccuracy measure_placement(const std::vector<sig::Crossing>& measured,
                                    const std::vector<Picoseconds>& programmed);

/// Linear-fit characterization of a delay-vs-code transfer curve, the way a
/// tester calibrates a programmable delay line: fit delay = gain*code +
/// offset, then report step size, monotonicity, and worst residual (INL).
struct DelayLinearity {
  double gain_ps_per_code = 0.0;   // fitted step size
  Picoseconds offset{0.0};         // fitted fixed delay
  Picoseconds max_inl{0.0};        // worst deviation from the fit
  Picoseconds max_dnl{0.0};        // worst step-to-step deviation from gain
  bool monotonic = true;
};

DelayLinearity fit_delay_linearity(const std::vector<double>& codes,
                                   const std::vector<Picoseconds>& delays);

}  // namespace mgt::ana
